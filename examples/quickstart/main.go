// Quickstart: concurrent bank transfers under transactional memory.
//
// Eight workers shuffle money between 64 accounts; an auditor thread keeps
// re-checking the global invariant inside read-only transactions. Swap the
// system name to any of stamp.Systems() — the code does not change, which
// is the suite's portability claim in one file.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/stamp-go/stamp"
)

const (
	accounts           = 64
	total              = 64_000
	workers            = 8
	transfersPerWorker = 20_000
)

func main() {
	arena := stamp.NewArena(1 << 12)
	accts := make([]stamp.Addr, accounts)
	d := stamp.Direct{A: arena}
	for i := range accts {
		accts[i] = arena.Alloc(1)
	}
	d.Store(accts[0], total)

	sys, err := stamp.NewSystem("stm-lazy", stamp.Config{Arena: arena, Threads: workers + 1})
	if err != nil {
		log.Fatal(err)
	}
	team := stamp.NewTeam(workers + 1)
	audits, torn := 0, 0
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		if tid == workers {
			// Auditor: the invariant must hold inside every transaction.
			for i := 0; i < 5_000; i++ {
				th.Atomic(func(tx stamp.Tx) {
					var sum uint64
					for _, a := range accts {
						sum += tx.Load(a)
					}
					if sum != total {
						torn++
					}
				})
				audits++
			}
			return
		}
		seed := uint64(tid)*2654435761 + 1
		next := func(n int) int {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			return int(seed % uint64(n))
		}
		for i := 0; i < transfersPerWorker; i++ {
			from, to := accts[next(accounts)], accts[next(accounts)]
			amount := uint64(next(5) + 1)
			th.Atomic(func(tx stamp.Tx) {
				f := tx.Load(from)
				if f < amount {
					return
				}
				tx.Store(from, f-amount)
				tx.Store(to, tx.Load(to)+amount)
			})
		}
	})

	var sum uint64
	for _, a := range accts {
		sum += d.Load(a)
	}
	st := sys.Stats()
	fmt.Printf("system        %s\n", sys.Name())
	fmt.Printf("transactions  %d committed, %d aborted attempts\n", st.Total.Commits, st.Total.Aborts)
	fmt.Printf("audits        %d, torn snapshots observed: %d\n", audits, torn)
	fmt.Printf("final total   %d (want %d)\n", sum, total)
	if sum != total || torn != 0 {
		log.Fatal("invariant violated")
	}
	fmt.Println("ok: atomicity and isolation held")
}
