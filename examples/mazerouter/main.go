// Mazerouter: labyrinth-style transactional path routing on the public API.
//
// Each route is one long transaction: privatize the grid with uninstrumented
// Peek reads, run a breadth-first wavefront on the private copy, then
// revalidate and claim the path with real barriers — conflicts restart the
// whole route with a fresh copy. This is the paper's privatization pattern
// in miniature.
//
// Run: go run ./examples/mazerouter
package main

import (
	"fmt"
	"log"

	"github.com/stamp-go/stamp"
)

const (
	width   = 24
	height  = 24
	routes  = 20
	workers = 4
)

func cellIdx(x, y int) int { return y*width + x }

func main() {
	arena := stamp.NewArena(1 << 16)
	d := stamp.Direct{A: arena}
	grid := make([]stamp.Addr, width*height)
	for i := range grid {
		grid[i] = arena.Alloc(1)
	}
	// Route endpoints: short local hops scattered over the grid. In a
	// single-layer maze, long crossing routes wall each other off, so real
	// routers keep nets local; a few conflicts (and retries) remain.
	jobs := stamp.NewQueue(d, routes+1)
	for r := 0; r < routes; r++ {
		sx, sy := (r*5)%(width-6), (r*9)%(height-5)
		src := cellIdx(sx, sy)
		dst := cellIdx(sx+4, sy+3)
		jobs.Push(d, uint64(src)<<32|uint64(dst))
	}

	sys, err := stamp.NewSystem("stm-eager", stamp.Config{Arena: arena, Threads: workers})
	if err != nil {
		log.Fatal(err)
	}
	team := stamp.NewTeam(workers)
	okRoutes := make([]int, workers)
	failed := make([]int, workers)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		private := make([]int32, width*height)
		for {
			var job uint64
			have := false
			th.Atomic(func(tx stamp.Tx) { job, have = jobs.Pop(tx) })
			if !have {
				return
			}
			src, dst := int(job>>32), int(job&0xffffffff)
			routed := false
			th.Atomic(func(tx stamp.Tx) {
				routed = false
				for i, a := range grid {
					if tx.Peek(a) == 0 {
						private[i] = 0
					} else {
						private[i] = -1
					}
				}
				if private[src] != 0 || private[dst] != 0 {
					return
				}
				// Wavefront.
				private[src] = 1
				frontier := []int{src}
				for len(frontier) > 0 && private[dst] == 0 {
					var next []int
					for _, c := range frontier {
						x, y := c%width, c/width
						for _, n := range [4]int{c - 1, c + 1, c - width, c + width} {
							switch {
							case n == c-1 && x == 0, n == c+1 && x == width-1,
								n < 0, n >= width*height:
								continue
							}
							if private[n] == 0 {
								private[n] = private[c] + 1
								next = append(next, n)
							}
						}
						_ = y
					}
					frontier = next
				}
				if private[dst] == 0 {
					return
				}
				// Traceback, then claim transactionally.
				var path []int
				cur := dst
				for cur != src {
					path = append(path, cur)
					x := cur % width
					for _, n := range [4]int{cur - 1, cur + 1, cur - width, cur + width} {
						if (n == cur-1 && x == 0) || (n == cur+1 && x == width-1) || n < 0 || n >= width*height {
							continue
						}
						if private[n] == private[cur]-1 && private[n] > 0 {
							cur = n
							break
						}
					}
				}
				path = append(path, src)
				for _, c := range path {
					if tx.Load(grid[c]) != 0 {
						tx.Restart() // someone claimed a cell since our copy
					}
				}
				for _, c := range path {
					tx.Store(grid[c], job)
				}
				routed = true
			})
			if routed {
				okRoutes[tid]++
			} else {
				failed[tid]++
			}
		}
	})

	// Audit: claimed cells must belong to exactly one route id.
	owners := map[uint64]int{}
	for _, a := range grid {
		if v := d.Load(a); v != 0 {
			owners[v]++
		}
	}
	totalOK, totalFail := 0, 0
	for tid := range okRoutes {
		totalOK += okRoutes[tid]
		totalFail += failed[tid]
	}
	st := sys.Stats()
	fmt.Printf("system   %s\n", sys.Name())
	fmt.Printf("routes   %d ok, %d unroutable (of %d)\n", totalOK, totalFail, routes)
	fmt.Printf("retries  %.3f per transaction\n", st.RetriesPerTx())
	fmt.Printf("claimed  %d cells across %d routes\n", func() int {
		n := 0
		for _, c := range owners {
			n += c
		}
		return n
	}(), len(owners))
	if totalOK+totalFail != routes || len(owners) != totalOK {
		log.Fatal("routing audit failed")
	}
	fmt.Println("ok: all paths disjoint and accounted for")
}
