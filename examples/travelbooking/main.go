// Travelbooking: a miniature reservation service in the style of the
// vacation benchmark, written directly against the public API.
//
// A red-black tree maps flight ids to seat records; clients book and cancel
// seats in coarse-grain transactions, the natural way to write this code —
// no lock ordering to design, no deadlock to avoid.
//
// Run: go run ./examples/travelbooking
package main

import (
	"fmt"
	"log"

	"github.com/stamp-go/stamp"
)

const (
	flights  = 200
	seats    = 50
	clients  = 6
	sessions = 30_000
)

// Seat record layout: [free, booked].
const (
	recFree   = 0
	recBooked = 1
	recWords  = 2
)

func main() {
	arena := stamp.NewArena(1 << 20)
	d := stamp.Direct{A: arena}
	table := stamp.NewRBTree(d)
	for id := 1; id <= flights; id++ {
		rec := arena.Alloc(recWords)
		d.Store(rec+recFree, seats)
		d.Store(rec+recBooked, 0)
		table.Insert(d, uint64(id), uint64(rec))
	}

	sys, err := stamp.NewSystem("hybrid-lazy", stamp.Config{Arena: arena, Threads: clients})
	if err != nil {
		log.Fatal(err)
	}
	team := stamp.NewTeam(clients)
	booked := make([]int, clients)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		seed := uint64(tid)*0x9e3779b9 + 7
		next := func(n int) int {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			return int(seed % uint64(n))
		}
		for s := 0; s < sessions/clients; s++ {
			id := uint64(next(flights) + 1)
			cancel := next(10) == 0
			th.Atomic(func(tx stamp.Tx) {
				recA, ok := table.Get(tx, id)
				if !ok {
					return
				}
				rec := stamp.Addr(recA)
				free := tx.Load(rec + recFree)
				bookedN := tx.Load(rec + recBooked)
				if cancel {
					if bookedN > 0 {
						tx.Store(rec+recBooked, bookedN-1)
						tx.Store(rec+recFree, free+1)
						booked[tid]--
					}
					return
				}
				if free > 0 {
					tx.Store(rec+recFree, free-1)
					tx.Store(rec+recBooked, bookedN+1)
					booked[tid]++
				}
			})
		}
	})

	totalBooked := 0
	for _, b := range booked {
		totalBooked += b
	}
	// Audit: per-flight accounting must balance exactly.
	tableBooked := 0
	ok := true
	table.Each(d, func(id, recA uint64) bool {
		rec := stamp.Addr(recA)
		free, bookedN := d.Load(rec+recFree), d.Load(rec+recBooked)
		if free+bookedN != seats {
			fmt.Printf("flight %d out of balance: %d free + %d booked\n", id, free, bookedN)
			ok = false
		}
		tableBooked += int(bookedN)
		return true
	})
	st := sys.Stats()
	fmt.Printf("system        %s\n", sys.Name())
	fmt.Printf("sessions      %d committed, %.3f retries/tx\n", st.Total.Commits, st.RetriesPerTx())
	fmt.Printf("booked seats  %d (client ledgers) vs %d (flight table)\n", totalBooked, tableBooked)
	if !ok || totalBooked != tableBooked {
		log.Fatal("accounting mismatch")
	}
	fmt.Println("ok: every booking is accounted for")
}
