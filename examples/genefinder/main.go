// Genefinder: genome-style parallel deduplication on the public API.
//
// Threads pour overlapping DNA reads into a shared transactional hash set;
// duplicates are filtered concurrently and the unique k-mers are counted —
// the first phase of the genome benchmark, usable as a pattern for any
// parallel dedup pipeline.
//
// Run: go run ./examples/genefinder
package main

import (
	"fmt"
	"log"

	"github.com/stamp-go/stamp"
)

const (
	geneLen = 2048
	k       = 24
	reads   = 40_000
	workers = 8
)

func main() {
	// Deterministic pseudo-gene.
	gene := make([]byte, geneLen)
	seed := uint64(42)
	for i := range gene {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		gene[i] = "ACGT"[seed%4]
	}
	// Sampled reads (positions wrap deterministically).
	positions := make([]int, reads)
	for i := range positions {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		positions[i] = int(seed % uint64(geneLen-k))
	}

	arena := stamp.NewArena(1 << 22)
	d := stamp.Direct{A: arena}
	set := stamp.NewHashtable(d, 4096)
	sys, err := stamp.NewSystem("htm-eager", stamp.Config{Arena: arena, Threads: workers})
	if err != nil {
		log.Fatal(err)
	}

	hash := func(s []byte) uint64 {
		h := uint64(0xcbf29ce484222325)
		for _, c := range s {
			h ^= uint64(c)
			h *= 0x100000001b3
		}
		return h
	}

	team := stamp.NewTeam(workers)
	uniqueBy := make([]int, workers)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		lo, hi := tid*reads/workers, (tid+1)*reads/workers
		for i := lo; i < hi; i++ {
			read := gene[positions[i] : positions[i]+k]
			h := hash(read)
			inserted := false
			th.Atomic(func(tx stamp.Tx) {
				inserted = set.Insert(tx, h, uint64(positions[i]))
			})
			if inserted {
				uniqueBy[tid]++
			}
		}
	})

	// Sequential reference: unique k-mer hashes among the sampled reads.
	ref := map[uint64]bool{}
	for _, p := range positions {
		ref[hash(gene[p:p+k])] = true
	}
	unique := 0
	for _, u := range uniqueBy {
		unique += u
	}
	st := sys.Stats()
	fmt.Printf("system     %s\n", sys.Name())
	fmt.Printf("reads      %d sampled, %d unique k-mers (reference %d)\n", reads, unique, len(ref))
	fmt.Printf("set size   %d entries\n", set.Len(d))
	fmt.Printf("retries    %.3f per transaction\n", st.RetriesPerTx())
	if unique != len(ref) || set.Len(d) != len(ref) {
		log.Fatal("dedup mismatch")
	}
	fmt.Println("ok: concurrent dedup matches the sequential reference")
}
