// Package stamp is a from-scratch Go reproduction of STAMP — the Stanford
// Transactional Applications for Multi-Processing benchmark suite (Cao Minh,
// Chung, Kozyrakis, Olukotun; IISWC 2008) — together with eleven
// transactional-memory runtimes: the seven the paper evaluates, two NOrec
// STM variants, a multi-version STM whose read-only transactions never
// abort, and an adaptive meta-runtime that picks the protocol online.
//
// The package exposes three layers:
//
//   - A portable transactional-memory API (System, Thread, Tx) over a
//     word-addressed shared-memory Arena, with eleven interchangeable
//     runtimes: a sequential baseline, TL2-style lazy and eager STMs,
//     NOrec STMs with value-based validation ("stm-norec", and
//     "stm-norec-ro" with the read-only commit fast path), "stm-mv" —
//     multi-version: writers keep per-stripe rings of Config.MVVersions
//     committed values, and blocks registered through NewROBlock read a
//     begin-time snapshot with zero validation and zero aborts —
//     simulated TCC-style (lazy) and LogTM-style (eager) HTMs, SigTM-style
//     lazy and eager hybrids, and "stm-adaptive", which wraps two of the
//     STMs
//     (NOrec and TL2 by default, Config.AdaptiveRead/AdaptiveWrite) and
//     switches between them online from sampled commit/abort and
//     read/write-set signals, quiescing in-flight transactions at each
//     handoff. TMSystems() stays the paper's six evaluated systems;
//     Systems() lists everything registered.
//   - A transactional container library (sorted list, FIFO queue, hash
//     table, red-black tree, binary heap, vector, bitmap) that works both
//     inside transactions and with the non-transactional Direct accessor.
//   - The eight STAMP applications with their 30 Table IV configurations,
//     and the harness that regenerates the paper's Table VI
//     characterization and Figure 1 speedup curves.
//   - A serving mode (Serve, ServerOptions, RunLoad, LoadOptions; the
//     cmd/stampd daemon) that runs the vacation workload as a long-lived
//     service: a persistent arena, a worker pool of Thread slots, and a
//     bounded admission queue that sheds load with ErrQueueFull when
//     full, with client-observed p50/p99/p999 latency histograms and the
//     same per-block transactional statistics as batch runs.
//
// The measurement entrypoints take one consolidated Options struct —
// Run("vacation-high", Options{System: "stm-mv", Threads: 8}) — whose
// Validate reports every invalid field at once; the positional RunCM /
// RunOpts / CharacterizeCM / CharacterizeOpts / MeasureSpeedupCM /
// MeasureSpeedupOpts forms are deprecated wrappers kept for source
// compatibility.
//
// Contention management is pluggable. Every software-managed runtime draws
// a per-thread, seeded policy from a registry — CMNames() lists "randlin"
// (the paper's randomized linear backoff, the STM/hybrid default), "expo"
// (exponential backoff), "greedy" (timestamp priority: older wins, younger
// aborts), "karma" (priority accrued across aborted attempts), "serialize"
// (delay, then guaranteed irrevocable escalation after SerializeAfter
// aborts), and "none" (immediate restart, the simulated HTMs' default).
// Select one with Config.CM or the -cm flag of the commands; leave it
// empty for each runtime's historical default. Priority policies arbitrate
// at encounter-time conflict points; per-policy delay and serialization
// counts are reported in Stats.
//
// Liveness is a layer of its own, inherited by every policy and runtime:
// past Config.StarveAfter consecutive aborts (or Config.StarveAfterNs of
// age) a block escalates to irrevocable mode — it acquires a global
// token, drains in-flight peers, runs alone, and must commit
// (Stats.Escalations/EscalatedCommits; displaced victims abort with the
// "killed-for-irrevocable" cause). Deterministic fault injection
// (Config.Chaos or -chaos, spec "seed:site:prob[,...]"; ChaosSites lists
// the failpoints, -list-chaos prints them) arms spurious aborts, bounded
// lock-holding stalls, and dropped CM waits in the runtimes' conflict and
// commit paths, at zero cost when off. A progress watchdog
// (Options.ProgressTimeout or -timeout) halts a run whose commit count
// stays flat, dumps diagnostics, and fails with ErrStalled instead of
// hanging.
//
// The TM hot path's shared serial points are configurable too. The TL2
// commit clock is a pluggable scheme (ClockNames: "gv1" fetch-add — the
// default, "gv4" pass-on-failure CAS, "gv5" no-tick; Config.Clock or the
// -clock flag), transactional allocation draws from thread-private,
// line-aligned reservation chunks (Config.AllocChunk; one contended
// atomic per chunk instead of per tx.Alloc), and the TL2 stripe-lock
// table is sized from the arena instead of a fixed 8 MiB
// (Config.LockTableBits). Allocation is transactional in both
// directions: tx.Free defers to commit and feeds per-thread free lists,
// aborted attempts' allocations are reclaimed, and abandoned chunk
// tails are retired, so balanced churn runs at a bounded arena
// high-water (Config.NoRecycle restores the original suite's leaky
// tmalloc as an ablation arm). Arena exhaustion is typed and
// recoverable, not a panic: tx.Alloc aborts with the "alloc-exhausted"
// cause and the run fails with an error matching ErrArenaFull.
//
// Statistics can be attributed per atomic-block call site: register a site
// with NewBlock and run it with Thread.AtomicAt, and Stats.Blocks() breaks
// the run down into per-block commits, aborts, mean set sizes, and — under
// stm-adaptive — the protocol residency of each block (the paper's
// per-region view; cmd/stamp prints the table).
//
// Every abort is attributed to a cause from a closed taxonomy
// (AbortCause; CauseNames lists them: "unknown" — always zero on a
// healthy runtime — "read-validation", "stripe-lock-busy", "seq-changed",
// "write-write", "mv-version-missing", "signature-conflict",
// "htm-conflict", "htm-capacity", "cm-kill", "explicit-retry",
// "killed-for-irrevocable", and "alloc-exhausted"), stamped at the
// conflict site inside
// the runtime: Stats.AbortCauses() sums to exactly Total.Aborts, and the
// per-block rows carry the same breakdown. Aborts also feed a conflict
// heatmap of the hottest contended locations (Stats.TopConflicts: address,
// stripe, or line key, per-cause counts, and the majority blamed block).
// A sampled event tracer (Config.Trace, or -trace on cmd/stamp) records
// begin/abort/commit/wait events into per-thread fixed rings with zero
// allocation; WriteChromeTrace exports them as Chrome trace-event JSON
// (Perfetto-loadable; -trace-out on cmd/stamp), and harness workers carry
// pprof labels (app, system, thread) so CPU profiles slice the same way.
//
// Quick start:
//
//	arena := stamp.NewArena(1 << 16)
//	acct := arena.Alloc(1)
//	sys, _ := stamp.NewSystem("stm-lazy", stamp.Config{Arena: arena, Threads: 4, CM: "greedy"})
//	// ... from worker goroutine i:
//	sys.Thread(i).Atomic(func(tx stamp.Tx) {
//	    tx.Store(acct, tx.Load(acct)+1)
//	})
//
// See README.md for the runtime and policy rosters with quickstart command
// lines, and docs/ARCHITECTURE.md for the layer map, the transaction
// lifecycle, and where the contention-manager plug-in sits.
package stamp
