package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestVariantRegistryShape(t *testing.T) {
	all := Variants()
	if len(all) != 30 {
		t.Fatalf("Table IV has 30 variants, registry has %d", len(all))
	}
	sim := SimVariants()
	if len(sim) != 20 {
		t.Fatalf("20 simulation variants expected, got %d", len(sim))
	}
	apps := map[string]int{}
	names := map[string]bool{}
	for _, v := range all {
		if names[v.Name] {
			t.Fatalf("duplicate variant %q", v.Name)
		}
		names[v.Name] = true
		apps[v.App]++
		if v.Args == "" {
			t.Fatalf("variant %q missing Table IV args", v.Name)
		}
		if v.Make == nil {
			t.Fatalf("variant %q missing constructor", v.Name)
		}
	}
	if len(apps) != 8 {
		t.Fatalf("8 applications expected, got %d: %v", len(apps), apps)
	}
	for _, app := range []string{"kmeans", "vacation"} {
		if apps[app] != 6 {
			t.Fatalf("%s should have 6 variants, has %d", app, apps[app])
		}
	}
}

func TestFindVariant(t *testing.T) {
	v, err := FindVariant("kmeans-low+")
	if err != nil || v.App != "kmeans" {
		t.Fatalf("FindVariant: %v %v", v, err)
	}
	if _, err := FindVariant("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunVariantSmoke(t *testing.T) {
	for _, name := range []string{"genome", "kmeans-high", "ssca2", "vacation-low"} {
		v, err := FindVariant(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunVariant(v, Options{Scale: 0.05, System: "stm-lazy", Threads: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Verify != nil {
			t.Fatalf("%s failed verification: %v", name, r.Verify)
		}
		if r.Stats.Total.Commits == 0 {
			t.Fatalf("%s: no commits", name)
		}
	}
}

// TestRunVariantNOrec drives the NOrec runtimes through the harness on the
// workloads the NOrec paper argues about (read-dominated genome/vacation,
// tiny-transaction kmeans): results must verify and every started block
// must eventually commit at 4 threads.
func TestRunVariantNOrec(t *testing.T) {
	for _, sysName := range []string{"stm-norec", "stm-norec-ro"} {
		for _, name := range []string{"genome", "vacation-low", "kmeans-high"} {
			v, err := FindVariant(name)
			if err != nil {
				t.Fatal(err)
			}
			r, err := RunVariant(v, Options{Scale: 0.05, System: sysName, Threads: 4})
			if err != nil {
				t.Fatalf("%s on %s: %v", name, sysName, err)
			}
			if r.Verify != nil {
				t.Fatalf("%s on %s failed verification: %v", name, sysName, r.Verify)
			}
			if r.Stats.Total.Commits == 0 {
				t.Fatalf("%s on %s: no commits", name, sysName)
			}
			if r.Stats.Total.Starts != r.Stats.Total.Commits {
				t.Fatalf("%s on %s: starts %d != commits %d", name, sysName,
					r.Stats.Total.Starts, r.Stats.Total.Commits)
			}
		}
	}
}

func TestCharacterizeSmoke(t *testing.T) {
	v, err := FindVariant("kmeans-high")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Characterize(v, Options{Scale: 0.1, RetryThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.TxCount == 0 || c.MeanStores == 0 {
		t.Fatalf("empty characterization: %+v", c)
	}
	if len(c.Retries) != 6 {
		t.Fatalf("retries for %d systems, want 6", len(c.Retries))
	}
	// kmeans transactions write D+1 accumulator words ~ small write set.
	if c.WriteSetP90 > 32 {
		t.Fatalf("kmeans write set implausibly large: %d lines", c.WriteSetP90)
	}
	var buf bytes.Buffer
	WriteTableVI(&buf, []Characterization{c})
	if !strings.Contains(buf.String(), "kmeans-high") {
		t.Fatal("table output missing row")
	}
	q := Bucketize(c)
	if q.RWSet != "Small" {
		t.Fatalf("kmeans bucketized as %q read/write set, want Small", q.RWSet)
	}
	var buf3 bytes.Buffer
	WriteTableIII(&buf3, []Qualitative{q})
	if !strings.Contains(buf3.String(), "kmeans-high") {
		t.Fatal("table III output missing row")
	}
}

func TestMeasureSpeedupSmoke(t *testing.T) {
	v, err := FindVariant("ssca2")
	if err != nil {
		t.Fatal(err)
	}
	s, err := MeasureSpeedup(v, Options{Scale: 0.05, ThreadCounts: []int{1, 2}, Systems: []string{"stm-lazy", "htm-lazy"}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Baseline <= 0 {
		t.Fatal("no baseline")
	}
	for _, sys := range []string{"stm-lazy", "htm-lazy"} {
		if len(s.Wall[sys]) != 2 {
			t.Fatalf("%s: %d samples", sys, len(s.Wall[sys]))
		}
		if s.Speedup(sys, 0) <= 0 {
			t.Fatalf("%s: non-positive speedup", sys)
		}
	}
	var buf bytes.Buffer
	WriteFigure1(&buf, []SpeedupSeries{s})
	if !strings.Contains(buf.String(), "ssca2") {
		t.Fatal("figure output missing variant")
	}
	var csv bytes.Buffer
	WriteFigure1CSV(&csv, []SpeedupSeries{s})
	if !strings.Contains(csv.String(), "ssca2,stm-lazy,2") {
		t.Fatal("csv output missing row")
	}
}

func TestModelSpeedupOrdering(t *testing.T) {
	// With identical measured stats, the model must rank HTM >= hybrid >=
	// STM (hardware pays less per barrier).
	base := Result{Wall: 1e9}
	mk := func(sys string) Result {
		r := Result{System: sys, Threads: 4, Wall: 5e8}
		r.Stats.Total.Loads = 1e6
		r.Stats.Total.Stores = 1e5
		return r
	}
	htm := ModelSpeedup(base, mk("htm-lazy"))
	hyb := ModelSpeedup(base, mk("hybrid-lazy"))
	stm := ModelSpeedup(base, mk("stm-lazy"))
	if !(htm >= hyb && hyb >= stm) {
		t.Fatalf("model ordering broken: htm %.2f hybrid %.2f stm %.2f", htm, hyb, stm)
	}
	if htm <= 0 || stm <= 0 {
		t.Fatal("model produced non-positive speedups")
	}
}
