package harness

import (
	"strings"
	"testing"
	"time"
)

func TestOptionsValidateZeroValue(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero Options must validate: %v", err)
	}
}

func TestOptionsValidateFull(t *testing.T) {
	// A fully-populated valid Options round-trips through Validate.
	opt := Options{
		System: "stm-mv", Threads: 4, Scale: 0.5,
		Profile: true, CM: "greedy", Clock: "gv4",
		Trace: 64, TraceBuf: 256, MVVersions: 4,
		Chaos:        "1:tl2-lock-acquire:0.5",
		AdaptiveRead: "stm-mv", AdaptiveWrite: "stm-eager",
		ProgressTimeout: time.Second,
		RetryThreads:    8, ExtraRetrySystems: []string{"stm-norec"},
		ThreadCounts: []int{1, 2}, Systems: []string{"stm-lazy"},
	}
	if err := opt.Validate(); err != nil {
		t.Fatalf("valid Options rejected: %v", err)
	}
}

// TestOptionsValidatePerField: each field's invalid value must be reported
// with a recognizable message.
func TestOptionsValidatePerField(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		want string
	}{
		{"system", Options{System: "stm-nope"}, "unknown system"},
		{"threads", Options{Threads: -1}, "threads"},
		{"seq-threads", Options{System: "seq", Threads: 4}, "seq"},
		{"scale", Options{Scale: -0.5}, "scale"},
		{"cm", Options{CM: "nope"}, "unknown contention manager"},
		{"clock", Options{Clock: "gv9"}, "unknown clock scheme"},
		{"trace", Options{Trace: -1}, "trace sampling"},
		{"tracebuf", Options{TraceBuf: -1}, "trace ring"},
		{"mvversions", Options{MVVersions: -1}, "mv version-ring"},
		{"chaos", Options{Chaos: "not-a-spec"}, "chaos spec"},
		{"adaptive-read", Options{AdaptiveRead: "stm-nope"}, "adaptive-read"},
		{"adaptive-read-seq", Options{AdaptiveRead: "seq"}, "cannot be"},
		{"adaptive-write", Options{AdaptiveWrite: "stm-adaptive"}, "cannot be"},
		{"adaptive-equal", Options{AdaptiveRead: "stm-lazy"}, "must differ"},
		{"timeout", Options{ProgressTimeout: -time.Second}, "progress timeout"},
		{"retry-threads", Options{RetryThreads: -1}, "retry threads"},
		{"thread-counts", Options{ThreadCounts: []int{2, 0}}, "thread counts"},
		{"systems", Options{Systems: []string{"nope"}}, "unknown system"},
		{"systems-seq", Options{Systems: []string{"seq"}}, "baseline"},
		{"extra-retry", Options{ExtraRetrySystems: []string{"nope"}}, "ExtraRetrySystems"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opt.Validate()
			if err == nil {
				t.Fatalf("%+v validated", tc.opt)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestOptionsValidateAllAtOnce: multiple invalid fields must all surface in
// one call — the whole point of Validate over failing at NewSystem.
func TestOptionsValidateAllAtOnce(t *testing.T) {
	err := Options{
		System: "stm-nope",
		CM:     "nope",
		Clock:  "gv9",
		Chaos:  "bad",
		Trace:  -1,
	}.Validate()
	if err == nil {
		t.Fatal("invalid Options validated")
	}
	for _, want := range []string{
		"unknown system", "unknown contention manager",
		"unknown clock scheme", "chaos spec", "trace sampling",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error %q is missing %q", err, want)
		}
	}
}

// TestRunOneRejectsInvalidOptions: the runner must refuse invalid options
// before building anything.
func TestRunOneRejectsInvalidOptions(t *testing.T) {
	if _, err := RunOne(okApp{}, "ok", Options{System: "stm-lazy", Trace: -1}); err == nil {
		t.Fatal("invalid options accepted by RunOne")
	}
	if _, err := RunOne(okApp{}, "ok", Options{}); err == nil ||
		!strings.Contains(err.Error(), "System") {
		t.Fatalf("missing System not reported: %v", err)
	}
}
