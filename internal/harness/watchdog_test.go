package harness

import (
	"errors"
	"testing"
	"time"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// stallApp is a workload that never commits: every attempt ends in an
// explicit Restart, so the global commit count stays flat forever. The
// progress watchdog is the only thing standing between it and a hang.
type stallApp struct{}

func (stallApp) Name() string            { return "stall" }
func (stallApp) ArenaWords() int         { return 64 }
func (stallApp) Setup(*mem.Arena)        {}
func (stallApp) Verify(*mem.Arena) error { return nil }

func (stallApp) Run(sys tm.System, team *thread.Team) {
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for {
			th.Atomic(func(tx tm.Tx) { tx.Restart() })
		}
	})
}

// okApp commits a handful of increments per thread and finishes; the
// watchdog must stay silent.
type okApp struct{}

func (okApp) Name() string            { return "ok" }
func (okApp) ArenaWords() int         { return 64 }
func (okApp) Setup(*mem.Arena)        {}
func (okApp) Verify(*mem.Arena) error { return nil }

func (okApp) Run(sys tm.System, team *thread.Team) {
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for i := 0; i < 8; i++ {
			th.Atomic(func(tx tm.Tx) { tx.Store(0, tx.Load(0)+1) })
		}
	})
}

func TestWatchdogStallsAreReported(t *testing.T) {
	_, err := RunOne(stallApp{}, "stall", Options{
		System: "stm-lazy", Threads: 2,
		ProgressTimeout: 100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("stalled run returned no error")
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("stall error does not match ErrStalled: %v", err)
	}
}

func TestWatchdogSilentOnProgress(t *testing.T) {
	res, err := RunOne(okApp{}, "ok", Options{
		System: "stm-lazy", Threads: 2,
		ProgressTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("watched run failed: %v", err)
	}
	if got := res.Stats.Total.Commits; got != 16 {
		t.Fatalf("commits = %d, want 16", got)
	}
}
