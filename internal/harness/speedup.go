package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SpeedupSeries is one Figure 1 panel: speedups over the sequential
// baseline for each TM system across thread counts.
type SpeedupSeries struct {
	Variant  string
	Threads  []int
	Baseline float64 // sequential wall ns

	// Wall[sys][i] is the wall ns at Threads[i]; Speedup = Baseline/Wall.
	Wall map[string][]float64
	// ModelSpeedup[sys][i] applies the documented cycle model (see
	// EXPERIMENTS.md): it discounts the software cost of simulating
	// hardware barriers so HTM/hybrid systems are compared the way the
	// paper's simulator compares them.
	ModelSpeedup map[string][]float64
}

// DefaultThreads is the paper's core sweep.
var DefaultThreads = []int{1, 2, 4, 8, 16}

// MeasureSpeedup runs the full Figure 1 sweep for one variant at
// opt.Scale: opt.Systems (nil = the paper's six) at each of
// opt.ThreadCounts (nil = DefaultThreads) against the sequential baseline.
// The remaining per-run knobs of opt (e.g. CM) apply to every TM run — the
// sequential baseline has no contention to manage. opt.System and
// opt.Threads are ignored: the sweep picks its own per cell.
func MeasureSpeedup(v Variant, opt Options) (SpeedupSeries, error) {
	s := SpeedupSeries{
		Variant:      v.Name,
		Wall:         map[string][]float64{},
		ModelSpeedup: map[string][]float64{},
	}
	if err := opt.Validate(); err != nil {
		return s, fmt.Errorf("harness: invalid options: %w", err)
	}
	opt = opt.withDefaults()
	threads := opt.ThreadCounts
	if len(threads) == 0 {
		threads = DefaultThreads
	}
	systems := opt.Systems
	if len(systems) == 0 {
		systems = TMSystems()
	}
	s.Threads = threads
	app := v.Make(opt.Scale)
	base, err := RunOne(app, v.Name, Options{System: "seq", Threads: 1})
	if err != nil {
		return s, err
	}
	if base.Verify != nil {
		return s, fmt.Errorf("speedup %s: seq baseline failed verification: %w", v.Name, base.Verify)
	}
	s.Baseline = float64(base.Wall.Nanoseconds())
	for _, sysName := range systems {
		for _, t := range threads {
			ro := opt
			ro.System = sysName
			ro.Threads = t
			r, err := RunOne(app, v.Name, ro)
			if err != nil {
				return s, err
			}
			if r.Verify != nil {
				return s, fmt.Errorf("speedup %s: %s@%d failed verification: %w", v.Name, sysName, t, r.Verify)
			}
			s.Wall[sysName] = append(s.Wall[sysName], float64(r.Wall.Nanoseconds()))
			s.ModelSpeedup[sysName] = append(s.ModelSpeedup[sysName], ModelSpeedup(base, r))
		}
	}
	return s, nil
}

// Speedup returns Baseline/Wall for a system at threads index i.
func (s SpeedupSeries) Speedup(sys string, i int) float64 {
	w := s.Wall[sys]
	if i >= len(w) || w[i] == 0 {
		return 0
	}
	return s.Baseline / w[i]
}

// seriesSystems returns the systems measured in s: the paper's six first
// (Figure 1 legend order), then any extra runtimes (e.g. stm-norec) sorted
// by name, so non-paper systems still render in the text output.
func seriesSystems(s SpeedupSeries) []string {
	seen := make(map[string]bool)
	var systems []string
	for _, sys := range TMSystems() {
		if _, ok := s.Wall[sys]; ok {
			systems = append(systems, sys)
			seen[sys] = true
		}
	}
	var extra []string
	for sys := range s.Wall {
		if !seen[sys] {
			extra = append(extra, sys)
		}
	}
	sort.Strings(extra)
	return append(systems, extra...)
}

// WriteFigure1 renders the series as aligned text (one block per variant,
// like one panel of Figure 1). Model speedups are shown in parentheses.
func WriteFigure1(w io.Writer, series []SpeedupSeries) {
	for _, s := range series {
		fmt.Fprintf(w, "== %s (seq baseline %.1f ms)\n", s.Variant, s.Baseline/1e6)
		fmt.Fprintf(w, "%-14s", "cores")
		for _, t := range s.Threads {
			fmt.Fprintf(w, "%16d", t)
		}
		fmt.Fprintln(w)
		for _, sys := range seriesSystems(s) {
			fmt.Fprintf(w, "%-14s", sys)
			for i := range s.Threads {
				fmt.Fprintf(w, "%8.2f (%4.1f)", s.Speedup(sys, i), s.ModelSpeedup[sys][i])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}

// WriteFigure1CSV renders the series as CSV rows:
// variant,system,threads,wall_ns,speedup,model_speedup.
func WriteFigure1CSV(w io.Writer, series []SpeedupSeries) {
	fmt.Fprintln(w, "variant,system,threads,wall_ns,speedup,model_speedup")
	for _, s := range series {
		for sys, walls := range s.Wall {
			for i, t := range s.Threads {
				fmt.Fprintf(w, "%s,%s,%d,%.0f,%.4f,%.4f\n",
					s.Variant, sys, t, walls[i], s.Speedup(sys, i), s.ModelSpeedup[sys][i])
			}
		}
	}
}

// ModelSpeedup estimates the speedup a hardware implementation of the
// system would achieve, from the measured run. The model is deliberately
// simple and fully documented in EXPERIMENTS.md:
//
//	perThreadWork = seqWall/threads            (perfect division of real work)
//	barrierCost   = committed barriers × cost(system) / threads
//	wastedWork    = wasted barriers × (seq ns per barrier) / threads
//	modelWall     = perThreadWork + barrierCost + wastedWork
//
// cost(system) reflects who pays for conflict detection in hardware: ~0 ns
// for HTM barriers (cache-transparent), a small constant for hybrids
// (signature insert), larger constants for STM read/write barriers. The
// model keeps the real abort counts and the real sequential work; only the
// bookkeeping overhead of *simulating* hardware in software is discounted.
func ModelSpeedup(base, r Result) float64 {
	if r.Wall <= 0 || base.Wall <= 0 {
		return 0
	}
	var perBarrier float64
	switch {
	case strings.HasPrefix(r.System, "htm"):
		perBarrier = 0
	case strings.HasPrefix(r.System, "hybrid"):
		perBarrier = 4
	default: // stm
		perBarrier = 25
	}
	threads := float64(r.Threads)
	seqNs := float64(base.Wall.Nanoseconds())
	barriers := float64(r.Stats.Total.Loads + r.Stats.Total.Stores)
	// ns of real work a barrier's transaction carries, for costing retries.
	var nsPerBarrier float64
	if barriers > 0 {
		nsPerBarrier = seqNs / barriers
	}
	wasted := float64(r.Stats.Total.Wasted) * nsPerBarrier
	modelWall := seqNs/threads + barriers*perBarrier/threads + wasted/threads
	if modelWall <= 0 {
		return 0
	}
	return seqNs / modelWall
}
