// Package harness drives the paper's evaluation: it owns the Table IV
// variant registry, runs app × system × thread-count combinations, and
// regenerates Table VI (transactional characterization) and Figure 1
// (speedup curves).
package harness

import (
	"fmt"
	"sort"

	"github.com/stamp-go/stamp/internal/apps"
	"github.com/stamp-go/stamp/internal/apps/bayes"
	"github.com/stamp-go/stamp/internal/apps/genome"
	"github.com/stamp-go/stamp/internal/apps/intruder"
	"github.com/stamp-go/stamp/internal/apps/kmeans"
	"github.com/stamp-go/stamp/internal/apps/labyrinth"
	"github.com/stamp-go/stamp/internal/apps/ssca2"
	"github.com/stamp-go/stamp/internal/apps/vacation"
	"github.com/stamp-go/stamp/internal/apps/yada"
)

// Variant is one row of Table IV: an application plus its recommended
// configuration and data set.
type Variant struct {
	Name string // e.g. "kmeans-high+"
	App  string // e.g. "kmeans"
	Args string // the Table IV argument string, verbatim
	Sim  bool   // true for non-'++' variants (the simulation-scale inputs)

	// Make constructs the app instance. scale in (0, 1] shrinks the data
	// set proportionally (scale 1 = the paper's configuration); tests and
	// quick benches use small scales.
	Make func(scale float64) apps.App
}

func scaled(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		return min
	}
	return v
}

const defaultSeed = 1

// variants is the registry of all 30 Table IV rows.
var variants = []Variant{
	{
		Name: "bayes", App: "bayes", Args: "-v32 -r1024 -n2 -p20 -i2 -e2", Sim: true,
		Make: func(s float64) apps.App {
			return bayes.New(bayes.Config{Vars: scaled(32, s, 8), Records: scaled(1024, s, 64),
				NumParent: 2, PercentParent: 20, InsertPenalty: 2, MaxEdgeLearn: 2, Seed: defaultSeed})
		},
	},
	{
		Name: "bayes+", App: "bayes", Args: "-v32 -r4096 -n2 -p20 -i2 -e2", Sim: true,
		Make: func(s float64) apps.App {
			return bayes.New(bayes.Config{Vars: scaled(32, s, 8), Records: scaled(4096, s, 64),
				NumParent: 2, PercentParent: 20, InsertPenalty: 2, MaxEdgeLearn: 2, Seed: defaultSeed})
		},
	},
	{
		Name: "bayes++", App: "bayes", Args: "-v32 -r4096 -n10 -p40 -i2 -e8 -s1", Sim: false,
		Make: func(s float64) apps.App {
			return bayes.New(bayes.Config{Vars: scaled(32, s, 8), Records: scaled(4096, s, 64),
				NumParent: 10, PercentParent: 40, InsertPenalty: 2, MaxEdgeLearn: 8, Seed: 1})
		},
	},
	{
		Name: "genome", App: "genome", Args: "-g256 -s16 -n16384", Sim: true,
		Make: func(s float64) apps.App {
			return genome.New(genome.Config{GeneLength: scaled(256, s, 64), SegmentLength: 16,
				Segments: scaled(16384, s, 1024), Seed: defaultSeed})
		},
	},
	{
		Name: "genome+", App: "genome", Args: "-g512 -s32 -n32768", Sim: true,
		Make: func(s float64) apps.App {
			return genome.New(genome.Config{GeneLength: scaled(512, s, 96), SegmentLength: 32,
				Segments: scaled(32768, s, 1024), Seed: defaultSeed})
		},
	},
	{
		Name: "genome++", App: "genome", Args: "-g16384 -s64 -n16777216", Sim: false,
		Make: func(s float64) apps.App {
			return genome.New(genome.Config{GeneLength: scaled(16384, s, 128), SegmentLength: 64,
				Segments: scaled(16777216, s, 2048), Seed: defaultSeed})
		},
	},
	{
		Name: "intruder", App: "intruder", Args: "-a10 -l4 -n2048 -s1", Sim: true,
		Make: func(s float64) apps.App {
			return intruder.New(intruder.Config{AttackPercent: 10, MaxPackets: 4,
				Flows: scaled(2048, s, 128), Seed: 1})
		},
	},
	{
		Name: "intruder+", App: "intruder", Args: "-a10 -l16 -n4096 -s1", Sim: true,
		Make: func(s float64) apps.App {
			return intruder.New(intruder.Config{AttackPercent: 10, MaxPackets: 16,
				Flows: scaled(4096, s, 128), Seed: 1})
		},
	},
	{
		Name: "intruder++", App: "intruder", Args: "-a10 -l128 -n262144 -s1", Sim: false,
		Make: func(s float64) apps.App {
			return intruder.New(intruder.Config{AttackPercent: 10, MaxPackets: 128,
				Flows: scaled(262144, s, 256), Seed: 1})
		},
	},
	{
		Name: "kmeans-high", App: "kmeans", Args: "-m15 -n15 -t0.05 -i random-n2048-d16-c16", Sim: true,
		Make: func(s float64) apps.App {
			return kmeans.New(kmeans.Config{MinClusters: 15, MaxClusters: 15, Threshold: 0.05,
				Points: scaled(2048, s, 256), Dims: 16, GenCenters: 16, Seed: defaultSeed})
		},
	},
	{
		Name: "kmeans-high+", App: "kmeans", Args: "-m15 -n15 -t0.05 -i random-n16384-d24-c16", Sim: true,
		Make: func(s float64) apps.App {
			return kmeans.New(kmeans.Config{MinClusters: 15, MaxClusters: 15, Threshold: 0.05,
				Points: scaled(16384, s, 256), Dims: 24, GenCenters: 16, Seed: defaultSeed})
		},
	},
	{
		Name: "kmeans-high++", App: "kmeans", Args: "-m15 -n15 -t0.00001 -i random-n65536-d32-c16", Sim: false,
		Make: func(s float64) apps.App {
			return kmeans.New(kmeans.Config{MinClusters: 15, MaxClusters: 15, Threshold: 0.00001,
				Points: scaled(65536, s, 256), Dims: 32, GenCenters: 16, Seed: defaultSeed})
		},
	},
	{
		Name: "kmeans-low", App: "kmeans", Args: "-m40 -n40 -t0.05 -i random-n2048-d16-c16", Sim: true,
		Make: func(s float64) apps.App {
			return kmeans.New(kmeans.Config{MinClusters: 40, MaxClusters: 40, Threshold: 0.05,
				Points: scaled(2048, s, 256), Dims: 16, GenCenters: 16, Seed: defaultSeed})
		},
	},
	{
		Name: "kmeans-low+", App: "kmeans", Args: "-m40 -n40 -t0.05 -i random-n16384-d24-c16", Sim: true,
		Make: func(s float64) apps.App {
			return kmeans.New(kmeans.Config{MinClusters: 40, MaxClusters: 40, Threshold: 0.05,
				Points: scaled(16384, s, 256), Dims: 24, GenCenters: 16, Seed: defaultSeed})
		},
	},
	{
		Name: "kmeans-low++", App: "kmeans", Args: "-m40 -n40 -t0.00001 -i random-n65536-d32-c16", Sim: false,
		Make: func(s float64) apps.App {
			return kmeans.New(kmeans.Config{MinClusters: 40, MaxClusters: 40, Threshold: 0.00001,
				Points: scaled(65536, s, 256), Dims: 32, GenCenters: 16, Seed: defaultSeed})
		},
	},
	{
		Name: "labyrinth", App: "labyrinth", Args: "-i random-x32-y32-z3-n96", Sim: true,
		Make: func(s float64) apps.App {
			return labyrinth.New(labyrinth.Config{X: 32, Y: 32, Z: 3,
				Paths: scaled(96, s, 8), Seed: defaultSeed})
		},
	},
	{
		Name: "labyrinth+", App: "labyrinth", Args: "-i random-x48-y48-z3-n64", Sim: true,
		Make: func(s float64) apps.App {
			return labyrinth.New(labyrinth.Config{X: 48, Y: 48, Z: 3,
				Paths: scaled(64, s, 8), Seed: defaultSeed})
		},
	},
	{
		Name: "labyrinth++", App: "labyrinth", Args: "-i random-x512-y512-z7-n512", Sim: false,
		Make: func(s float64) apps.App {
			return labyrinth.New(labyrinth.Config{X: 512, Y: 512, Z: 7,
				Paths: scaled(512, s, 8), Seed: defaultSeed})
		},
	},
	{
		Name: "ssca2", App: "ssca2", Args: "-s13 -i1.0 -u1.0 -l3 -p3", Sim: true,
		Make: func(s float64) apps.App {
			return ssca2.New(ssca2.Config{Scale: scaledScale(13, s), ProbInter: 1.0, ProbUnidirect: 1.0,
				MaxPathLen: 3, MaxParallel: 3, Seed: defaultSeed})
		},
	},
	{
		Name: "ssca2+", App: "ssca2", Args: "-s14 -i1.0 -u1.0 -l9 -p9", Sim: true,
		Make: func(s float64) apps.App {
			return ssca2.New(ssca2.Config{Scale: scaledScale(14, s), ProbInter: 1.0, ProbUnidirect: 1.0,
				MaxPathLen: 9, MaxParallel: 9, Seed: defaultSeed})
		},
	},
	{
		Name: "ssca2++", App: "ssca2", Args: "-s20 -i1.0 -u1.0 -l3 -p3", Sim: false,
		Make: func(s float64) apps.App {
			return ssca2.New(ssca2.Config{Scale: scaledScale(20, s), ProbInter: 1.0, ProbUnidirect: 1.0,
				MaxPathLen: 3, MaxParallel: 3, Seed: defaultSeed})
		},
	},
	{
		Name: "vacation-high", App: "vacation", Args: "-n4 -q60 -u90 -r16384 -t4096", Sim: true,
		Make: func(s float64) apps.App {
			return vacation.New(vacation.Config{QueriesPerTx: 4, QueryRange: 60, PercentUser: 90,
				Records: scaled(16384, s, 256), Transactions: scaled(4096, s, 256), Seed: defaultSeed})
		},
	},
	{
		Name: "vacation-high+", App: "vacation", Args: "-n4 -q60 -u90 -r1048576 -t4096", Sim: true,
		Make: func(s float64) apps.App {
			return vacation.New(vacation.Config{QueriesPerTx: 4, QueryRange: 60, PercentUser: 90,
				Records: scaled(1048576, s, 256), Transactions: scaled(4096, s, 256), Seed: defaultSeed})
		},
	},
	{
		Name: "vacation-high++", App: "vacation", Args: "-n4 -q60 -u90 -r1048576 -t4194304", Sim: false,
		Make: func(s float64) apps.App {
			return vacation.New(vacation.Config{QueriesPerTx: 4, QueryRange: 60, PercentUser: 90,
				Records: scaled(1048576, s, 256), Transactions: scaled(4194304, s, 256), Seed: defaultSeed})
		},
	},
	{
		Name: "vacation-low", App: "vacation", Args: "-n2 -q90 -u98 -r16384 -t4096", Sim: true,
		Make: func(s float64) apps.App {
			return vacation.New(vacation.Config{QueriesPerTx: 2, QueryRange: 90, PercentUser: 98,
				Records: scaled(16384, s, 256), Transactions: scaled(4096, s, 256), Seed: defaultSeed})
		},
	},
	{
		Name: "vacation-low+", App: "vacation", Args: "-n2 -q90 -u98 -r1048576 -t4096", Sim: true,
		Make: func(s float64) apps.App {
			return vacation.New(vacation.Config{QueriesPerTx: 2, QueryRange: 90, PercentUser: 98,
				Records: scaled(1048576, s, 256), Transactions: scaled(4096, s, 256), Seed: defaultSeed})
		},
	},
	{
		Name: "vacation-low++", App: "vacation", Args: "-n2 -q90 -u98 -r1048576 -t4194304", Sim: false,
		Make: func(s float64) apps.App {
			return vacation.New(vacation.Config{QueriesPerTx: 2, QueryRange: 90, PercentUser: 98,
				Records: scaled(1048576, s, 256), Transactions: scaled(4194304, s, 256), Seed: defaultSeed})
		},
	},
	{
		Name: "yada", App: "yada", Args: "-a20 -i 633.2", Sim: true,
		Make: func(s float64) apps.App {
			return yada.New(yada.Config{MinAngle: 20, Elements: scaled(1264, s, 64), Seed: defaultSeed})
		},
	},
	{
		Name: "yada+", App: "yada", Args: "-a10 -i ttimeu10000.2", Sim: true,
		Make: func(s float64) apps.App {
			return yada.New(yada.Config{MinAngle: 10, Elements: scaled(19998, s, 64), Seed: defaultSeed})
		},
	},
	{
		Name: "yada++", App: "yada", Args: "-a15 -i ttimeu1000000.2", Sim: false,
		Make: func(s float64) apps.App {
			return yada.New(yada.Config{MinAngle: 15, Elements: scaled(1999998, s, 64), Seed: defaultSeed})
		},
	},
}

// scaledScale shrinks a log2 graph scale: halving the workload removes one
// scale step.
func scaledScale(base int, s float64) int {
	v := base
	for s < 0.6 && v > 6 {
		v--
		s *= 2
	}
	return v
}

// Variants returns all registry entries, in Table IV order.
func Variants() []Variant { return variants }

// SimVariants returns the 20 non-'++' variants used in the paper's
// simulation experiments (Table VI, Figure 1).
func SimVariants() []Variant {
	var out []Variant
	for _, v := range variants {
		if v.Sim {
			out = append(out, v)
		}
	}
	return out
}

// FindVariant looks up a variant by name.
func FindVariant(name string) (Variant, error) {
	for _, v := range variants {
		if v.Name == name {
			return v, nil
		}
	}
	var known []string
	for _, v := range variants {
		known = append(known, v.Name)
	}
	sort.Strings(known)
	return Variant{}, fmt.Errorf("harness: unknown variant %q (known: %v)", name, known)
}
