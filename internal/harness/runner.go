package harness

import (
	"errors"
	"fmt"
	"time"

	"github.com/stamp-go/stamp/internal/apps"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/factory"
)

// Options is the single per-run configuration struct of the harness: what
// to run on (System, Threads, Scale) plus every per-run knob. The zero
// value is valid everywhere a field is documented as having a default;
// Validate reports every invalid field at once.
type Options struct {
	// System names the TM runtime to run on (factory.Names / stamp.Systems).
	// Required by RunOne and RunVariant; Characterize and MeasureSpeedup
	// choose their own systems per column and ignore it.
	System string
	// Threads is the worker count (0 = 1). Required to be 1 for "seq",
	// which has no concurrency control.
	Threads int
	// Scale shrinks the workload relative to the paper's configuration
	// (0 = 1.0, the full Table IV arguments). Used wherever a Variant is
	// constructed (RunVariant, Characterize, MeasureSpeedup); RunOne takes
	// an already-built app and ignores it.
	Scale float64

	// Profile makes the run track read/write line sets (Table VI columns).
	Profile bool
	// CM selects the contention-management policy (tm.CMNames); empty keeps
	// each runtime's default.
	CM string
	// Clock selects the TL2 commit-clock scheme (tm.ClockNames); empty
	// keeps the default (gv1). Runtimes without a version clock ignore it.
	Clock string
	// Trace samples every Nth atomic block into per-thread event rings
	// (0 = tracing off; see tm.Config.Trace).
	Trace int
	// TraceBuf overrides the per-thread ring capacity in events
	// (0 = tm.DefaultTraceBuf).
	TraceBuf int
	// MVVersions sizes the stm-mv per-stripe version ring
	// (0 = tm.DefaultMVVersions; see tm.Config.MVVersions). Other runtimes
	// ignore it.
	MVVersions int
	// Chaos arms deterministic failpoints in the runtime's conflict and
	// commit paths ("" = off; see tm.Config.Chaos for the spec grammar).
	Chaos string
	// AdaptiveRead and AdaptiveWrite name the stm-adaptive meta-runtime's
	// two delegates ("" = the tm.Config defaults, stm-norec-ro and
	// stm-lazy). Other runtimes ignore them.
	AdaptiveRead  string
	AdaptiveWrite string
	// ProgressTimeout arms the progress watchdog: if the run's global commit
	// count is flat for a full window, the run is halted, diagnostics are
	// dumped to stderr, and RunOne returns an ErrStalled-wrapped error
	// instead of hanging (0 = watchdog off).
	ProgressTimeout time.Duration

	// RetryThreads is the thread count of Characterize's retries-per-
	// transaction columns (0 = 16, the paper's). Only Characterize reads it.
	RetryThreads int
	// ExtraRetrySystems adds Characterize retry columns for runtimes beyond
	// the paper's six (e.g. "stm-norec"). Only Characterize reads it.
	ExtraRetrySystems []string
	// ThreadCounts is MeasureSpeedup's sweep (nil = DefaultThreads, the
	// paper's 1..16). Only MeasureSpeedup reads it.
	ThreadCounts []int
	// Systems is MeasureSpeedup's runtime set (nil = TMSystems(), the
	// paper's six). "seq" is rejected: it is already every panel's
	// baseline. Only MeasureSpeedup reads it.
	Systems []string
}

// withDefaults resolves the zero values that mean "default".
func (o Options) withDefaults() Options {
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.RetryThreads == 0 {
		o.RetryThreads = 16
	}
	return o
}

// Validate checks every field against its registry and returns all
// problems at once (errors.Join), instead of failing one-at-a-time the way
// constructing the system would — so a CLI or server config with three
// typos reports three errors in one round trip. A zero Options is valid;
// System is checked when set and independently required by RunOne.
func (o Options) Validate() error {
	var errs []error
	bad := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	knownSystem := func(name string) bool {
		for _, s := range factory.Names() {
			if s == name {
				return true
			}
		}
		return false
	}
	if o.System != "" && !knownSystem(o.System) {
		bad("unknown system %q (known: %v)", o.System, factory.Names())
	}
	if o.Threads < 0 {
		bad("threads must be >= 0 (0 = 1), got %d", o.Threads)
	}
	if o.System == "seq" && o.Threads > 1 {
		bad("seq is the sequential baseline (no concurrency control) and cannot run at %d threads", o.Threads)
	}
	if o.Scale < 0 {
		bad("scale must be >= 0 (0 = the paper's configuration), got %g", o.Scale)
	}
	if o.CM != "" {
		found := false
		for _, name := range tm.CMNames() {
			if name == o.CM {
				found = true
				break
			}
		}
		if !found {
			bad("unknown contention manager %q (known: %v)", o.CM, tm.CMNames())
		}
	}
	if o.Clock != "" {
		found := false
		for _, name := range tm.ClockNames() {
			if name == o.Clock {
				found = true
				break
			}
		}
		if !found {
			bad("unknown clock scheme %q (known: %v)", o.Clock, tm.ClockNames())
		}
	}
	if o.Trace < 0 {
		bad("trace sampling interval must be >= 0, got %d", o.Trace)
	}
	if o.TraceBuf < 0 {
		bad("trace ring capacity must be >= 0, got %d", o.TraceBuf)
	}
	if o.MVVersions < 0 {
		bad("mv version-ring depth must be >= 0 (0 = default), got %d", o.MVVersions)
	}
	if o.Chaos != "" {
		if _, err := chaos.Parse(o.Chaos); err != nil {
			bad("chaos spec: %v", err)
		}
	}
	// Resolve the delegate defaults the way tm.Config.Defaults will, so an
	// explicit delegate that collides with the other side's default is
	// caught here and not at NewSystem.
	ar, aw := o.AdaptiveRead, o.AdaptiveWrite
	if ar == "" {
		ar = "stm-norec-ro"
	}
	if aw == "" {
		aw = "stm-lazy"
	}
	for side, name := range map[string]string{"adaptive-read": o.AdaptiveRead, "adaptive-write": o.AdaptiveWrite} {
		if name == "" {
			continue
		}
		if !knownSystem(name) {
			bad("unknown %s delegate %q (known: %v)", side, name, factory.Names())
		} else if name == "seq" || name == "stm-adaptive" {
			bad("%s delegate cannot be %q", side, name)
		}
	}
	if (o.AdaptiveRead != "" || o.AdaptiveWrite != "") && ar == aw {
		bad("adaptive delegates must differ, both resolve to %q", ar)
	}
	if o.ProgressTimeout < 0 {
		bad("progress timeout must be >= 0, got %v", o.ProgressTimeout)
	}
	if o.RetryThreads < 0 {
		bad("retry threads must be >= 0 (0 = 16), got %d", o.RetryThreads)
	}
	for _, t := range o.ThreadCounts {
		if t < 1 {
			bad("thread counts must be >= 1, got %d", t)
		}
	}
	for _, s := range o.Systems {
		if !knownSystem(s) {
			bad("unknown system %q in Systems (known: %v)", s, factory.Names())
		} else if s == "seq" {
			bad("seq is the baseline of every speedup panel and cannot be swept")
		}
	}
	for _, s := range o.ExtraRetrySystems {
		if !knownSystem(s) {
			bad("unknown system %q in ExtraRetrySystems (known: %v)", s, factory.Names())
		}
	}
	return errors.Join(errs...)
}

// Result is the outcome of one app × system × thread-count run.
type Result struct {
	Variant string
	System  string
	Threads int
	CM      string // contention manager requested ("" = runtime default)
	Clock   string // commit-clock scheme requested ("" = gv1)

	Wall   time.Duration // wall time of the parallel region (app.Run)
	Stats  tm.Stats
	Trace  []tm.TraceEvent // sampled tracer events (nil when Options.Trace == 0)
	Verify error
}

// RetriesPerTx is a convenience accessor.
func (r Result) RetriesPerTx() float64 { return r.Stats.RetriesPerTx() }

// Blocks is the per-block breakdown of the run (one row per annotated
// atomic-block call site, with protocol residency — see tm.NewBlock).
func (r Result) Blocks() []tm.BlockRow { return r.Stats.Blocks() }

// TxTimeFraction estimates the share of execution time spent inside
// transactions: summed per-thread transaction wall time over total thread
// time (threads × region wall time).
func (r Result) TxTimeFraction() float64 {
	total := float64(r.Threads) * float64(r.Wall.Nanoseconds())
	if total == 0 {
		return 0
	}
	f := float64(r.Stats.Total.TxTimeNs) / total
	if f > 1 {
		f = 1
	}
	return f
}

// RunOne stages app into a fresh arena and executes it once on opt.System
// at opt.Threads workers (opt.Scale is ignored: the app is already built).
func RunOne(app apps.App, variant string, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, fmt.Errorf("harness: invalid options: %w", err)
	}
	if opt.System == "" {
		return Result{}, fmt.Errorf("harness: Options.System is required (known: %v)", factory.Names())
	}
	opt = opt.withDefaults()
	arena := mem.NewArena(app.ArenaWords())
	app.Setup(arena)
	var watch *tm.Watch
	if opt.ProgressTimeout > 0 {
		watch = tm.NewWatch(opt.Threads)
	}
	sys, err := factory.New(opt.System, tm.Config{
		Arena:              arena,
		Threads:            opt.Threads,
		EnableEarlyRelease: true,
		ProfileSets:        opt.Profile,
		CM:                 opt.CM,
		Clock:              opt.Clock,
		Trace:              opt.Trace,
		TraceBuf:           opt.TraceBuf,
		MVVersions:         opt.MVVersions,
		Chaos:              opt.Chaos,
		AdaptiveRead:       opt.AdaptiveRead,
		AdaptiveWrite:      opt.AdaptiveWrite,
		Watch:              watch,
	})
	if err != nil {
		return Result{}, fmt.Errorf("harness: %w", err)
	}
	team := thread.NewTeam(opt.Threads)
	team.SetLabels("app", variant, "system", opt.System)
	start := time.Now()
	if watch == nil {
		if err := runApp(app, sys, team); err != nil {
			return Result{}, err
		}
	} else if err := runWatched(app, sys, team, watch, opt.ProgressTimeout); err != nil {
		return Result{}, err
	}
	wall := time.Since(start)
	return Result{
		Variant: variant,
		System:  opt.System,
		Threads: opt.Threads,
		CM:      opt.CM,
		Clock:   opt.Clock,
		Wall:    wall,
		Stats:   sys.Stats(),
		Trace:   tm.TraceEvents(sys),
		Verify:  app.Verify(arena),
	}, nil
}

// runApp executes the parallel region, converting an arena-exhaustion
// unwind (tm.AllocFailure, re-raised by the worker team) into a typed error
// matching mem.ErrArenaFull with errors.Is. Any other panic is the
// application's and propagates.
func runApp(app apps.App, sys tm.System, team *thread.Team) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if af, ok := r.(tm.AllocFailure); ok {
			err = fmt.Errorf("harness: %s: %w", sys.Name(), af.Err)
			return
		}
		panic(r)
	}()
	app.Run(sys, team)
	return nil
}

// RunVariant constructs the variant at opt.Scale and runs it on opt.System
// at opt.Threads workers.
func RunVariant(v Variant, opt Options) (Result, error) {
	return RunOne(v.Make(opt.withDefaults().Scale), v.Name, opt)
}
