package harness

import (
	"fmt"
	"time"

	"github.com/stamp-go/stamp/internal/apps"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/factory"
)

// Options carries the per-run knobs beyond system and thread count.
type Options struct {
	// Profile makes the run track read/write line sets (Table VI columns).
	Profile bool
	// CM selects the contention-management policy (tm.CMNames); empty keeps
	// each runtime's default.
	CM string
	// Clock selects the TL2 commit-clock scheme (tm.ClockNames); empty
	// keeps the default (gv1). Runtimes without a version clock ignore it.
	Clock string
	// Trace samples every Nth atomic block into per-thread event rings
	// (0 = tracing off; see tm.Config.Trace).
	Trace int
	// TraceBuf overrides the per-thread ring capacity in events
	// (0 = tm.DefaultTraceBuf).
	TraceBuf int
	// MVVersions sizes the stm-mv per-stripe version ring
	// (0 = tm.DefaultMVVersions; see tm.Config.MVVersions). Other runtimes
	// ignore it.
	MVVersions int
	// Chaos arms deterministic failpoints in the runtime's conflict and
	// commit paths ("" = off; see tm.Config.Chaos for the spec grammar).
	Chaos string
	// ProgressTimeout arms the progress watchdog: if the run's global commit
	// count is flat for a full window, the run is halted, diagnostics are
	// dumped to stderr, and RunOne returns an ErrStalled-wrapped error
	// instead of hanging (0 = watchdog off).
	ProgressTimeout time.Duration
}

// Result is the outcome of one app × system × thread-count run.
type Result struct {
	Variant string
	System  string
	Threads int
	CM      string // contention manager requested ("" = runtime default)
	Clock   string // commit-clock scheme requested ("" = gv1)

	Wall   time.Duration // wall time of the parallel region (app.Run)
	Stats  tm.Stats
	Trace  []tm.TraceEvent // sampled tracer events (nil when Options.Trace == 0)
	Verify error
}

// RetriesPerTx is a convenience accessor.
func (r Result) RetriesPerTx() float64 { return r.Stats.RetriesPerTx() }

// Blocks is the per-block breakdown of the run (one row per annotated
// atomic-block call site, with protocol residency — see tm.NewBlock).
func (r Result) Blocks() []tm.BlockRow { return r.Stats.Blocks() }

// TxTimeFraction estimates the share of execution time spent inside
// transactions: summed per-thread transaction wall time over total thread
// time (threads × region wall time).
func (r Result) TxTimeFraction() float64 {
	total := float64(r.Threads) * float64(r.Wall.Nanoseconds())
	if total == 0 {
		return 0
	}
	f := float64(r.Stats.Total.TxTimeNs) / total
	if f > 1 {
		f = 1
	}
	return f
}

// RunOne stages app into a fresh arena and executes it once.
func RunOne(app apps.App, variant, sysName string, threads int, opt Options) (Result, error) {
	arena := mem.NewArena(app.ArenaWords())
	app.Setup(arena)
	var watch *tm.Watch
	if opt.ProgressTimeout > 0 {
		watch = tm.NewWatch(threads)
	}
	sys, err := factory.New(sysName, tm.Config{
		Arena:              arena,
		Threads:            threads,
		EnableEarlyRelease: true,
		ProfileSets:        opt.Profile,
		CM:                 opt.CM,
		Clock:              opt.Clock,
		Trace:              opt.Trace,
		TraceBuf:           opt.TraceBuf,
		MVVersions:         opt.MVVersions,
		Chaos:              opt.Chaos,
		Watch:              watch,
	})
	if err != nil {
		return Result{}, fmt.Errorf("harness: %w", err)
	}
	team := thread.NewTeam(threads)
	team.SetLabels("app", variant, "system", sysName)
	start := time.Now()
	if watch == nil {
		app.Run(sys, team)
	} else if err := runWatched(app, sys, team, watch, opt.ProgressTimeout); err != nil {
		return Result{}, err
	}
	wall := time.Since(start)
	return Result{
		Variant: variant,
		System:  sysName,
		Threads: threads,
		CM:      opt.CM,
		Clock:   opt.Clock,
		Wall:    wall,
		Stats:   sys.Stats(),
		Trace:   tm.TraceEvents(sys),
		Verify:  app.Verify(arena),
	}, nil
}

// RunVariant constructs the variant at the given scale and runs it.
func RunVariant(v Variant, scale float64, sysName string, threads int, opt Options) (Result, error) {
	return RunOne(v.Make(scale), v.Name, sysName, threads, opt)
}
