package harness

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Characterization is one Table VI row, with the paper's "instructions per
// transaction" replaced by two documented proxies (barriers per transaction
// and sequential ns per transaction — see DESIGN.md substitution 2).
type Characterization struct {
	Variant string

	TxCount     uint64  // committed transactions (seq run)
	NsPerTx     float64 // mean wall ns per transaction on seq (instr proxy)
	MeanLoads   float64 // read barriers per transaction
	MeanStores  float64 // write barriers per transaction
	ReadSetP90  int     // 90th pctile read set, 32-byte lines (lazy HTM)
	WriteSetP90 int     // 90th pctile write set, 32-byte lines (lazy HTM)
	TxTimePct   float64 // % of execution time in transactions (lazy HTM)

	// Retries per transaction at the given thread count, per system.
	Retries map[string]float64

	ArenaWords int // workload footprint (working-set proxy)
}

// Characterize reproduces one Table VI row for a variant at opt.Scale: the
// seq run provides the barrier counts and the per-transaction time proxy,
// the lazy HTM provides read/write sets and time-in-transactions (as in
// the paper), and every TM system at opt.RetryThreads threads (0 = 16, the
// paper's) provides retries per transaction. The remaining per-run knobs
// of opt apply to the retry-column runs (contention management and the
// commit-clock scheme are what those columns vary; the zero Options keeps
// each runtime's defaults). opt.ExtraRetrySystems adds retry columns for
// runtimes beyond the paper's six (e.g. "stm-norec"); opt.System and
// opt.Threads are ignored — the columns pick their own.
func Characterize(v Variant, opt Options) (Characterization, error) {
	c := Characterization{Variant: v.Name, Retries: map[string]float64{}}
	if err := opt.Validate(); err != nil {
		return c, fmt.Errorf("harness: invalid options: %w", err)
	}
	opt = opt.withDefaults()
	app := v.Make(opt.Scale)
	c.ArenaWords = app.ArenaWords()

	seq, err := RunOne(app, v.Name, Options{System: "seq", Threads: 1, Profile: true})
	if err != nil {
		return c, err
	}
	if seq.Verify != nil {
		return c, fmt.Errorf("characterize %s: seq run failed verification: %w", v.Name, seq.Verify)
	}
	c.TxCount = seq.Stats.Total.Commits
	if c.TxCount > 0 {
		c.NsPerTx = float64(seq.Stats.Total.TxTimeNs) / float64(c.TxCount)
	}
	c.MeanLoads = seq.Stats.MeanLoads()
	c.MeanStores = seq.Stats.MeanStores()

	htm, err := RunOne(app, v.Name, Options{System: "htm-lazy", Threads: 1, Profile: true})
	if err != nil {
		return c, err
	}
	if htm.Verify != nil {
		return c, fmt.Errorf("characterize %s: htm-lazy run failed verification: %w", v.Name, htm.Verify)
	}
	c.ReadSetP90 = htm.Stats.ReadSetP90()
	c.WriteSetP90 = htm.Stats.WriteSetP90()
	c.TxTimePct = htm.TxTimeFraction() * 100

	for _, sysName := range append(TMSystems(), opt.ExtraRetrySystems...) {
		ro := opt
		ro.System = sysName
		ro.Threads = opt.RetryThreads
		r, err := RunOne(app, v.Name, ro)
		if err != nil {
			return c, err
		}
		if r.Verify != nil {
			return c, fmt.Errorf("characterize %s: %s run failed verification: %w", v.Name, sysName, r.Verify)
		}
		c.Retries[sysName] = r.RetriesPerTx()
	}
	return c, nil
}

// TMSystems returns the six TM systems in the paper's Table VI column
// order: HTM lazy/eager, STM lazy/eager (retry columns), with hybrids
// included for completeness.
func TMSystems() []string {
	return []string{"htm-lazy", "htm-eager", "hybrid-lazy", "hybrid-eager", "stm-lazy", "stm-eager"}
}

// extraRetrySystems collects retry-column systems beyond the paper's six
// present in any row, sorted, so Table VI grows columns instead of dropping
// measurements.
func extraRetrySystems(rows []Characterization) []string {
	paper := make(map[string]bool)
	for _, sys := range TMSystems() {
		paper[sys] = true
	}
	seen := make(map[string]bool)
	var extra []string
	for _, c := range rows {
		for sys := range c.Retries {
			if !paper[sys] && !seen[sys] {
				seen[sys] = true
				extra = append(extra, sys)
			}
		}
	}
	sort.Strings(extra)
	return extra
}

// WriteTableVI renders characterization rows in the shape of Table VI. Any
// retry measurements beyond the paper's six systems are appended as extra
// columns headed by the system name.
func WriteTableVI(w io.Writer, rows []Characterization) {
	extra := extraRetrySystems(rows)
	fmt.Fprintf(w, "%-16s %10s %12s %8s %8s %8s %8s %7s %8s %8s %8s %8s %8s %8s",
		"Application", "Txs", "ns/Tx(seq)", "RdBar", "WrBar", "RdSet90", "WrSet90", "TxTime",
		"rHTMlz", "rHTMeg", "rHYBlz", "rHYBeg", "rSTMlz", "rSTMeg")
	for _, sys := range extra {
		fmt.Fprintf(w, " %14s", "r:"+sys)
	}
	fmt.Fprintf(w, " %10s\n", "Footprint")
	for _, c := range rows {
		fmt.Fprintf(w, "%-16s %10d %12.0f %8.1f %8.1f %8d %8d %6.0f%% %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f",
			c.Variant, c.TxCount, c.NsPerTx, c.MeanLoads, c.MeanStores,
			c.ReadSetP90, c.WriteSetP90, c.TxTimePct,
			c.Retries["htm-lazy"], c.Retries["htm-eager"],
			c.Retries["hybrid-lazy"], c.Retries["hybrid-eager"],
			c.Retries["stm-lazy"], c.Retries["stm-eager"])
		for _, sys := range extra {
			fmt.Fprintf(w, " %14.2f", c.Retries[sys])
		}
		fmt.Fprintf(w, " %9.1fMB\n", float64(c.ArenaWords)*8/(1<<20))
	}
}

// Qualitative is one Table III row derived from measured data.
type Qualitative struct {
	Variant    string
	TxLength   string // Short / Medium / Long
	RWSet      string // Small / Medium / Large
	TxTime     string // Low / Medium / High
	Contention string // Low / Medium / High
}

// Bucketize derives the paper's Table III qualitative labels from a
// characterization row, using thresholds chosen so the paper's own numbers
// land in the paper's own buckets.
func Bucketize(c Characterization) Qualitative {
	q := Qualitative{Variant: c.Variant}
	switch {
	case c.NsPerTx < 2000:
		q.TxLength = "Short"
	case c.NsPerTx < 40000:
		q.TxLength = "Medium"
	default:
		q.TxLength = "Long"
	}
	set := c.ReadSetP90 + c.WriteSetP90
	switch {
	case set < 40:
		q.RWSet = "Small"
	case set < 300:
		q.RWSet = "Medium"
	default:
		q.RWSet = "Large"
	}
	switch {
	case c.TxTimePct < 25:
		q.TxTime = "Low"
	case c.TxTimePct < 70:
		q.TxTime = "Medium"
	default:
		q.TxTime = "High"
	}
	worst := 0.0
	for _, r := range c.Retries {
		if r > worst {
			worst = r
		}
	}
	switch {
	case worst < 0.3:
		q.Contention = "Low"
	case worst < 2:
		q.Contention = "Medium"
	default:
		q.Contention = "High"
	}
	return q
}

// WriteTableIII renders qualitative rows in the shape of Table III.
func WriteTableIII(w io.Writer, rows []Qualitative) {
	fmt.Fprintf(w, "%-16s %-8s %-8s %-8s %-10s\n", "Application", "TxLen", "R/W Set", "TxTime", "Contention")
	for _, q := range rows {
		fmt.Fprintf(w, "%-16s %-8s %-8s %-8s %-10s\n", q.Variant, q.TxLength, q.RWSet, q.TxTime, q.Contention)
	}
}

// FormatDuration pretty-prints a wall time for report output.
func FormatDuration(d time.Duration) string { return d.Round(time.Millisecond).String() }
