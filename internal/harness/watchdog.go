package harness

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/stamp-go/stamp/internal/apps"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// ErrStalled reports that a run made no commit progress for a full
// Options.ProgressTimeout window and was halted by the progress watchdog.
// Errors returned by RunOne for a stalled run match it with errors.Is, so
// drivers can distinguish "the workload livelocked or deadlocked" from an
// ordinary construction or verification failure.
var ErrStalled = errors.New("harness: run stalled (no commit progress)")

// runWatched executes app.Run under the progress watchdog: a monitor
// compares the watch's global commit count once per window and, if a full
// window passes without a single commit anywhere in the team, halts the
// watch (unwinding every worker via tm.HaltSignal), dumps diagnostics to
// stderr, and reports the stall as an ErrStalled-wrapped error instead of
// letting the process hang.
func runWatched(app apps.App, sys tm.System, team *thread.Team, w *tm.Watch, window time.Duration) error {
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		app.Run(sys, team)
	}()
	ticker := time.NewTicker(window)
	defer ticker.Stop()
	last := w.Commits()
	for {
		select {
		case r := <-done:
			if r == nil {
				return nil
			}
			if hs, ok := r.(tm.HaltSignal); ok {
				// A halt raced run completion; still a stall.
				return fmt.Errorf("%w: %s", ErrStalled, hs.Reason)
			}
			if af, ok := r.(tm.AllocFailure); ok {
				// Arena exhaustion is a typed, recoverable outcome, not a
				// stall and not an application bug.
				return fmt.Errorf("harness: %s: %w", sys.Name(), af.Err)
			}
			panic(r) // application panic: not ours to swallow
		case <-ticker.C:
			if now := w.Commits(); now != last {
				last = now
				continue
			}
			reason := fmt.Sprintf("no commit progress for %v (commits stuck at %d)", window, last)
			w.Halt(reason)
			// Grace period: let the workers observe the halt and unwind, so
			// the diagnostics below can read quiesced (exact) statistics.
			grace := window
			if grace < time.Second {
				grace = time.Second
			}
			quiesced := true
			select {
			case <-done:
			case <-time.After(grace):
				quiesced = false // a worker is wedged somewhere unpolled
			}
			dumpStall(os.Stderr, sys, w, reason, quiesced)
			return fmt.Errorf("%w: %s", ErrStalled, reason)
		}
	}
}

// dumpStall writes the post-mortem for a halted run: the abort-cause table,
// the conflict heatmap's hottest rows, and the tail of the sampled trace —
// enough to tell a livelocked protocol from a wedged workload without
// re-running under a debugger. When the team did not quiesce within the
// grace period only the watchdog's own counters are reported (the
// per-thread statistics would be racy to read).
func dumpStall(out io.Writer, sys tm.System, w *tm.Watch, reason string, quiesced bool) {
	fmt.Fprintf(out, "harness: progress watchdog: %s\n", reason)
	fmt.Fprintf(out, "harness: system=%s commits=%d\n", sys.Name(), w.Commits())
	if !quiesced {
		fmt.Fprintf(out, "harness: team did not quiesce within the grace period; partial diagnostics only\n")
		return
	}
	st := sys.Stats()
	fmt.Fprintf(out, "  starts=%d commits=%d aborts=%d escalations=%d\n",
		st.Total.Starts, st.Total.Commits, st.Total.Aborts, st.Total.Escalations)
	names := tm.CauseNames()
	for c, n := range st.AbortCauses() {
		if n != 0 {
			fmt.Fprintf(out, "  cause %-24s %d\n", names[c], n)
		}
	}
	conflicts := st.TopConflicts()
	if len(conflicts) > 8 {
		conflicts = conflicts[:8]
	}
	for _, row := range conflicts {
		fmt.Fprintf(out, "  conflict %-16s aborts=%d\n", row.Key.String(), row.Count)
	}
	events := tm.TraceEvents(sys)
	if len(events) > 16 {
		events = events[len(events)-16:]
	}
	for _, ev := range events {
		fmt.Fprintf(out, "  trace t=%dns kind=%d cause=%s thread=%d block=%d\n",
			ev.TimeNs, ev.Kind, names[ev.Cause], ev.Thread, ev.Block)
	}
}
