package tm

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/trace"
)

// ContentionManager is the per-thread contention-management policy a runtime
// consults around its retry loop. The runtime drives the three lifecycle
// hooks — OnStart when an atomic block is entered, OnAbort after each failed
// attempt (where the policy applies its delay), OnCommit when the block
// finally commits (where per-block state such as abort counters and
// timestamps resets, uniformly across runtimes) — and, at conflict points
// where the enemy transaction is identifiable, asks ShouldAbort whether to
// abort itself or wait the enemy out.
//
// Lifecycle hooks are called only by the owning thread. Priority and
// ShouldAbort are also called by *other* threads' arbitration, so
// implementations must keep any state those methods read atomic.
//
// Policies are registered by name (see CMNames) and selected per run through
// Config.CM, so ablations sweep policies without touching runtime code.
type ContentionManager interface {
	// Name returns the registry name of the policy (e.g. "randlin").
	Name() string
	// OnStart is called once when an atomic block is entered, before the
	// first attempt (timestamp policies stamp the block here; the serialize
	// policy joins the global reader group).
	OnStart()
	// OnAbort is called after the aborts-th failed attempt of the current
	// block (1 = first abort). The policy applies its delay before
	// returning; the runtime then retries the block.
	OnAbort(aborts int)
	// OnCommit is called when the current block commits. All per-block
	// policy state (timestamps, consecutive-abort escalation) resets here,
	// so a block's aborts never bleed into the next block's priority or
	// delay — every runtime gets the same reset semantics for free.
	OnCommit()
	// Priority returns the arbitration priority other transactions compare
	// against; higher wins. Delay-only policies return 0.
	Priority() uint64
	// ShouldAbort reports whether the calling transaction should abort
	// itself at a conflict with enemy (true), or wait briefly for enemy to
	// finish and re-probe the conflicting location (false). A nil enemy
	// (unidentifiable, e.g. NOrec's value-validation failures) always
	// aborts the caller.
	ShouldAbort(enemy ContentionManager) bool
}

// DefaultCM is the policy STMs and hybrids use when Config.CM is empty: the
// paper's randomized linear backoff.
const DefaultCM = "randlin"

// NoCM is the policy the simulated HTMs use when Config.CM is empty:
// immediate restart with no delay (Section IV: aborted hardware transactions
// restart immediately; the eager HTM has its own priority escape).
const NoCM = "none"

// cmEntry is one registered policy.
type cmEntry struct {
	description string
	make        func(p *CMPool, id int, st *ThreadStats) ContentionManager
}

var cmRegistry = map[string]cmEntry{
	"randlin": {
		description: "randomized linear backoff after BackoffAfter aborts (the paper's policy; default)",
		make: func(p *CMPool, id int, st *ThreadStats) ContentionManager {
			return &randlinCM{cmBase: p.base(id, st), after: p.cfg.BackoffAfter}
		},
	},
	"expo": {
		description: "randomized exponential backoff after BackoffAfter aborts, capped",
		make: func(p *CMPool, id int, st *ThreadStats) ContentionManager {
			return &expoCM{cmBase: p.base(id, st), after: p.cfg.BackoffAfter}
		},
	},
	"greedy": {
		description: "timestamp priority: older transaction wins, younger aborts, winner waits (Guerraoui et al.)",
		make: func(p *CMPool, id int, st *ThreadStats) ContentionManager {
			return &greedyCM{cmBase: p.base(id, st)}
		},
	},
	"karma": {
		description: "work-based priority accrued across aborted attempts; ties lose, plus linear delay",
		make: func(p *CMPool, id int, st *ThreadStats) ContentionManager {
			return &karmaCM{cmBase: p.base(id, st), after: p.cfg.BackoffAfter}
		},
	},
	"serialize": {
		description: "randlin, then irrevocable escalation: after SerializeAfter aborts the block drains peers and runs alone",
		make: func(p *CMPool, id int, st *ThreadStats) ContentionManager {
			return &serializeCM{cmBase: p.base(id, st), after: p.cfg.BackoffAfter}
		},
	},
	"none": {
		description: "no delay, requester always aborts (immediate restart; the HTM simulators' default)",
		make: func(p *CMPool, id int, st *ThreadStats) ContentionManager {
			return noneCM{}
		},
	},
}

// CMNames returns every registered contention-manager policy name, sorted.
func CMNames() []string {
	names := make([]string, 0, len(cmRegistry))
	for n := range cmRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CMDescription returns the one-line description of a registered policy
// (empty for unknown names).
func CMDescription(name string) string { return cmRegistry[name].description }

// CMPool holds one TM system's contention-management state: the selected
// policy, the cross-thread pieces some policies need (the greedy timestamp
// clock), and the liveness layer's shared state — the irrevocability gate
// every governor coordinates through, the fault injector, and the watchdog.
// Runtime constructors create one pool and draw a per-thread manager for
// each worker slot.
type CMPool struct {
	name  string
	cfg   Config
	entry cmEntry

	clock atomic.Uint64 // greedy timestamps, shared by the pool's managers

	// Liveness layer (see governor.go). flags[i] != 0 means worker i is
	// inside an atomic block; gatePending counts escalations queued or
	// running; gateLock is the irrevocability token, a CAS spinlock so
	// every wait on it can poll the watch.
	flags       []PaddedUint64
	gateLock    atomic.Uint32
	gatePending atomic.Int32

	chaos *chaos.Injector
	watch *Watch

	starveAfter int   // consecutive-abort escalation threshold (<= 0: off)
	starveNs    int64 // age-based escalation threshold (0: off)
	serializeAt int   // the serialize policy's own threshold (0 for others)
}

// NewCMPool validates Config.CM against the registry and returns the pool.
// An empty Config.CM selects fallback — the runtime's historical default
// (DefaultCM for STMs and hybrids, NoCM for the simulated HTMs), keeping
// default behavior identical to the pre-plug-in runtimes. The pool also
// builds the system's fault injector from Config.Chaos and carries the
// escalation thresholds and watchdog, so every runtime inherits the
// liveness layer through the one seam it already has.
func NewCMPool(cfg Config, fallback string) (*CMPool, error) {
	name := cfg.CM
	if name == "" {
		name = fallback
	}
	entry, ok := cmRegistry[name]
	if !ok {
		return nil, fmt.Errorf("tm: unknown contention manager %q (known: %v)", name, CMNames())
	}
	inj, err := chaos.New(cfg.Chaos, cfg.Threads)
	if err != nil {
		return nil, fmt.Errorf("tm: %w", err)
	}
	threads := cfg.Threads
	if threads < 1 {
		threads = 1
	}
	p := &CMPool{
		name:        name,
		cfg:         cfg,
		entry:       entry,
		flags:       make([]PaddedUint64, threads),
		chaos:       inj,
		watch:       cfg.Watch,
		starveAfter: cfg.StarveAfter,
		starveNs:    cfg.StarveAfterNs,
	}
	if name == "serialize" {
		p.serializeAt = cfg.SerializeAfter
	}
	return p, nil
}

// Name returns the resolved policy name.
func (p *CMPool) Name() string { return p.name }

// Chaos returns the pool's fault injector (nil when Config.Chaos is empty).
// Runtimes fetch it once at construction and test it per failpoint site.
func (p *CMPool) Chaos() *chaos.Injector { return p.chaos }

// ForThread returns worker slot id's manager, recording its delay statistics
// into st. The selected policy is wrapped in the liveness governor, which
// adds starvation escalation, watchdog polling, and displacement arbitration
// uniformly across policies (see governor.go).
func (p *CMPool) ForThread(id int, st *ThreadStats) ContentionManager {
	return &governor{inner: p.entry.make(p, id, st), pool: p, id: id, st: st}
}

func (p *CMPool) base(id int, st *ThreadStats) cmBase {
	return cmBase{pool: p, id: id, st: st, r: rng.New(p.cfg.Seed + uint64(id)*0x9e3779b97f4a7c15)}
}

// cmBase is the state shared by the policy implementations: the pool, the
// owning thread's id and statistics record, and a per-thread jitter stream.
type cmBase struct {
	pool *CMPool
	id   int
	st   *ThreadStats
	r    *rng.Rand
}

// delay spins for n iterations and accounts the wait in the thread's stats
// (and, when the current block is being traced, as an EvWait event).
func (b *cmBase) delay(n int) {
	if n <= 0 {
		return
	}
	b.st.CMWaits++
	b.st.Tracer.Emit(trace.EvWait, trace.CauseUnknown, b.id, int32(NoBlock), 0)
	t0 := time.Now()
	Spin(n)
	b.st.CMWaitNs += int64(time.Since(t0))
}

// maxConflictProbes bounds how many times a waiting policy may re-probe one
// conflict before the runtime forces the requester to abort anyway, so no
// policy choice can deadlock or livelock a runtime.
const maxConflictProbes = 512

// WaitOrAbort is the conflict-point arbitration helper runtimes call when
// the enemy transaction is identifiable. It returns true when the caller
// must abort its attempt now; false means the policy chose to wait — a short
// spin has already been applied and the caller should re-probe the
// conflicting location. probe counts the caller's re-probes of this
// conflict; past maxConflictProbes the wait is cut off.
func WaitOrAbort(self, enemy ContentionManager, probe int) bool {
	if self == nil || probe >= maxConflictProbes || self.ShouldAbort(enemy) {
		return true
	}
	// Spin briefly, then yield: the enemy we are waiting out may need this
	// core to finish (or to notice it lost the arbitration and roll back),
	// notably on hosts with fewer cores than worker threads.
	Spin(64)
	runtime.Gosched()
	return false
}

// randlin is the paper's contention manager: no delay for the first `after`
// aborts, then a delay drawn uniformly from a linearly growing budget.
type randlinCM struct {
	cmBase
	after int
}

func (c *randlinCM) Name() string       { return "randlin" }
func (c *randlinCM) OnStart()           {}
func (c *randlinCM) OnAbort(aborts int) { c.delay(c.delayFor(aborts)) }
func (c *randlinCM) OnCommit()          {}
func (c *randlinCM) Priority() uint64   { return 0 }

func (c *randlinCM) ShouldAbort(ContentionManager) bool { return true }

func (c *randlinCM) delayFor(aborts int) int {
	if aborts <= c.after {
		return 0
	}
	return c.r.Intn((aborts-c.after)*backoffUnit) + 1
}

// expoCM backs off exponentially: the delay budget doubles per abort past
// the threshold, capped so the worst delay stays sub-millisecond.
type expoCM struct {
	cmBase
	after int
}

// expoUnit is the spin budget of the first exponential step; expoCap bounds
// the doubling (2^10 * 300 spins ≈ a few hundred microseconds).
const (
	expoUnit = 300
	expoCap  = 10
)

func (c *expoCM) Name() string       { return "expo" }
func (c *expoCM) OnStart()           {}
func (c *expoCM) OnAbort(aborts int) { c.delay(c.delayFor(aborts)) }
func (c *expoCM) OnCommit()          {}
func (c *expoCM) Priority() uint64   { return 0 }

func (c *expoCM) ShouldAbort(ContentionManager) bool { return true }

func (c *expoCM) delayFor(aborts int) int {
	if aborts <= c.after {
		return 0
	}
	exp := aborts - c.after
	if exp > expoCap {
		exp = expoCap
	}
	return c.r.Intn((1<<uint(exp))*expoUnit) + 1
}

// greedyCM is the Greedy manager (Guerraoui, Herlihy & Pochon): every block
// takes a timestamp from the pool clock at OnStart and keeps it across
// retries, so a transaction only ages. At a conflict the younger transaction
// aborts itself and the older waits, which bounds how often any block can
// lose and rules out the mutual-abort livelock of symmetric policies.
type greedyCM struct {
	cmBase
	ts atomic.Uint64 // timestamp of the current block; 0 = not in a block
}

func (c *greedyCM) Name() string { return "greedy" }
func (c *greedyCM) OnStart()     { c.ts.Store(c.pool.clock.Add(1)) }

// OnAbort applies a short randomized hold-off (priority is retained across
// retries). Without it a loser restarts so fast that its conflict-detection
// footprint is re-published before the waiting winner can re-probe, and the
// winner starves behind a loser that can never get past it — the hold-off
// opens the window the winner's wait loop needs.
func (c *greedyCM) OnAbort(int) { c.delay(c.r.Intn(backoffUnit) + 1) }
func (c *greedyCM) OnCommit()   { c.ts.Store(0) }
func (c *greedyCM) Priority() uint64 {
	t := c.ts.Load()
	if t == 0 {
		return 0
	}
	return ^t // older (smaller timestamp) = higher priority
}

func (c *greedyCM) ShouldAbort(enemy ContentionManager) bool {
	if enemy == nil {
		return true
	}
	return enemy.Priority() > c.Priority()
}

// karmaCM accrues priority with every aborted attempt — the invested
// (wasted) attempts are the transaction's karma — and resets it at commit.
// Ties lose, so two fresh transactions behave like requester-loses, while a
// long-starved block eventually outranks everyone. A short randomized linear
// delay keeps equal-karma storms from spinning hot.
type karmaCM struct {
	cmBase
	after int
	karma atomic.Uint64
}

func (c *karmaCM) Name() string { return "karma" }
func (c *karmaCM) OnStart()     {}
func (c *karmaCM) OnAbort(aborts int) {
	c.karma.Add(1)
	if aborts > c.after {
		c.delay(c.r.Intn((aborts-c.after)*backoffUnit/4) + 1)
	}
}
func (c *karmaCM) OnCommit()        { c.karma.Store(0) }
func (c *karmaCM) Priority() uint64 { return c.karma.Load() }

func (c *karmaCM) ShouldAbort(enemy ContentionManager) bool {
	if enemy == nil {
		return true
	}
	return enemy.Priority() >= c.Priority()
}

// serializeCM is randlin-style delay; its signature trait — escalating a
// block that aborted SerializeAfter times to run alone and irrevocably — is
// implemented by the governor, which watches CMPool.serializeAt (set only for
// this policy). Moving the escalation into the governor turned it from a
// policy-local mutual-exclusion fallback into the same guaranteed-commit path
// every policy's starvation watchdog uses.
type serializeCM struct {
	cmBase
	after int
}

func (c *serializeCM) Name() string { return "serialize" }
func (c *serializeCM) OnStart()     {}
func (c *serializeCM) OnAbort(aborts int) {
	if aborts > c.after {
		c.delay(c.r.Intn((aborts-c.after)*backoffUnit) + 1)
	}
}
func (c *serializeCM) OnCommit()                          {}
func (c *serializeCM) Priority() uint64                   { return 0 }
func (c *serializeCM) ShouldAbort(ContentionManager) bool { return true }

// noneCM applies no delay and always aborts the requester — the simulated
// HTMs' immediate-restart behavior, and a useful ablation baseline.
type noneCM struct{}

func (noneCM) Name() string                       { return "none" }
func (noneCM) OnStart()                           {}
func (noneCM) OnAbort(int)                        {}
func (noneCM) OnCommit()                          {}
func (noneCM) Priority() uint64                   { return 0 }
func (noneCM) ShouldAbort(ContentionManager) bool { return true }
