package tm

import (
	"testing"
	"time"

	"github.com/stamp-go/stamp/internal/mem"
)

// unwrap strips the liveness governor off a ForThread manager so tests can
// reach the wrapped policy's internals.
func unwrap(cm ContentionManager) ContentionManager {
	return cm.(*governor).inner
}

func cmPool(t *testing.T, name string) *CMPool {
	t.Helper()
	cfg := Config{Arena: mem.NewArena(64), Threads: 4, CM: name}.Defaults()
	p, err := NewCMPool(cfg, DefaultCM)
	if err != nil {
		t.Fatalf("NewCMPool(%s): %v", name, err)
	}
	return p
}

func TestCMRegistry(t *testing.T) {
	names := CMNames()
	want := []string{"expo", "greedy", "karma", "none", "randlin", "serialize"}
	if len(names) != len(want) {
		t.Fatalf("CMNames() = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("CMNames()[%d] = %q, want %q (sorted)", i, names[i], n)
		}
		if CMDescription(n) == "" {
			t.Fatalf("policy %q has no description", n)
		}
	}
	if CMDescription("nope") != "" {
		t.Fatal("unknown policy has a description")
	}
}

func TestNewCMPoolUnknown(t *testing.T) {
	cfg := Config{Arena: mem.NewArena(64), Threads: 1, CM: "nope"}.Defaults()
	if _, err := NewCMPool(cfg, DefaultCM); err == nil {
		t.Fatal("unknown CM accepted")
	}
}

func TestNewCMPoolFallback(t *testing.T) {
	cfg := Config{Arena: mem.NewArena(64), Threads: 1}.Defaults()
	p, err := NewCMPool(cfg, NoCM)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "none" {
		t.Fatalf("empty CM resolved to %q, want fallback %q", p.Name(), "none")
	}
	var st ThreadStats
	if got := p.ForThread(0, &st).Name(); got != "none" {
		t.Fatalf("manager name = %q", got)
	}
}

// TestRandlinDelayGrowth: no delay up to the threshold, then a delay drawn
// from a linearly growing budget.
func TestRandlinDelayGrowth(t *testing.T) {
	var st ThreadStats
	c := unwrap(cmPool(t, "randlin").ForThread(0, &st)).(*randlinCM)
	for aborts := 1; aborts <= c.after; aborts++ {
		if d := c.delayFor(aborts); d != 0 {
			t.Fatalf("delay before threshold: %d at %d aborts", d, aborts)
		}
	}
	for k := 1; k <= 20; k++ {
		d := c.delayFor(c.after + k)
		if d < 1 || d > k*backoffUnit {
			t.Fatalf("randlin delay at +%d aborts = %d, want [1, %d]", k, d, k*backoffUnit)
		}
	}
}

// TestExpoDelayGrowth: the budget doubles per abort past the threshold and
// is capped at 2^expoCap steps.
func TestExpoDelayGrowth(t *testing.T) {
	var st ThreadStats
	c := unwrap(cmPool(t, "expo").ForThread(0, &st)).(*expoCM)
	if d := c.delayFor(c.after); d != 0 {
		t.Fatalf("delay at threshold: %d", d)
	}
	for k := 1; k <= expoCap+5; k++ {
		exp := k
		if exp > expoCap {
			exp = expoCap
		}
		d := c.delayFor(c.after + k)
		if d < 1 || d > (1<<uint(exp))*expoUnit {
			t.Fatalf("expo delay at +%d aborts = %d, want [1, %d]", k, d, (1<<uint(exp))*expoUnit)
		}
	}
}

// TestGreedyArbitration: older (earlier OnStart) wins; the younger aborts;
// a nil or idle enemy always aborts the requester / never beats a runner.
func TestGreedyArbitration(t *testing.T) {
	p := cmPool(t, "greedy")
	var st0, st1 ThreadStats
	older := p.ForThread(0, &st0)
	younger := p.ForThread(1, &st1)
	older.OnStart()
	younger.OnStart()
	if !younger.ShouldAbort(older) {
		t.Fatal("younger did not yield to older")
	}
	if older.ShouldAbort(younger) {
		t.Fatal("older yielded to younger")
	}
	if !older.ShouldAbort(nil) {
		t.Fatal("nil enemy must abort the requester")
	}
	// Commit resets the timestamp: a committed manager has no priority.
	older.OnCommit()
	if older.Priority() != 0 {
		t.Fatalf("priority after commit = %d", older.Priority())
	}
	if younger.ShouldAbort(older) {
		t.Fatal("running block yielded to an idle manager")
	}
}

// TestKarmaPriority: priority accrues per aborted attempt and resets at
// commit; ties lose (requester aborts).
func TestKarmaPriority(t *testing.T) {
	p := cmPool(t, "karma")
	var st0, st1 ThreadStats
	rich := p.ForThread(0, &st0)
	poor := p.ForThread(1, &st1)
	rich.OnStart()
	poor.OnStart()
	if !rich.ShouldAbort(poor) || !poor.ShouldAbort(rich) {
		t.Fatal("equal karma must behave requester-loses on both sides")
	}
	for i := 1; i <= 3; i++ {
		rich.OnAbort(i)
	}
	poor.OnAbort(1)
	if rich.Priority() != 3 || poor.Priority() != 1 {
		t.Fatalf("karma = %d/%d, want 3/1", rich.Priority(), poor.Priority())
	}
	if !poor.ShouldAbort(rich) {
		t.Fatal("low-karma requester did not yield")
	}
	if rich.ShouldAbort(poor) {
		t.Fatal("high-karma requester yielded")
	}
	rich.OnCommit()
	if rich.Priority() != 0 {
		t.Fatalf("karma after commit = %d", rich.Priority())
	}
}

// TestSerializeEscalation: past the threshold the block escalates to
// irrevocable mode through the governor's gate (counted in CMSerialized and
// Escalations) and stalls other blocks' OnStart until it commits.
func TestSerializeEscalation(t *testing.T) {
	cfg := Config{Arena: mem.NewArena(64), Threads: 2, CM: "serialize", SerializeAfter: 2}.Defaults()
	p, err := NewCMPool(cfg, DefaultCM)
	if err != nil {
		t.Fatal(err)
	}
	var st0, st1 ThreadStats
	a := p.ForThread(0, &st0)
	b := p.ForThread(1, &st1)

	a.OnStart()
	a.OnAbort(1)
	if st0.CMSerialized != 0 {
		t.Fatal("escalated below the threshold")
	}
	a.OnAbort(2) // reaches SerializeAfter: acquires the irrevocability token
	if st0.CMSerialized != 1 {
		t.Fatalf("CMSerialized = %d, want 1", st0.CMSerialized)
	}
	if st0.Escalations != 1 {
		t.Fatalf("Escalations = %d, want 1", st0.Escalations)
	}

	entered := make(chan struct{})
	go func() {
		b.OnStart() // must park until a commits
		close(entered)
		b.OnCommit()
	}()
	select {
	case <-entered:
		t.Fatal("peer entered a block while the escalated transaction held the token")
	case <-time.After(20 * time.Millisecond):
	}
	a.OnCommit()
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("peer still blocked after the escalated transaction committed")
	}
	if st0.EscalatedCommits != 1 {
		t.Fatalf("EscalatedCommits = %d, want 1", st0.EscalatedCommits)
	}

	// The escalation state must not leak into a's next block.
	a.OnStart()
	a.OnCommit()
	if st0.CMSerialized != 1 || st0.Escalations != 1 {
		t.Fatalf("escalation counters after clean block = %d/%d", st0.CMSerialized, st0.Escalations)
	}
}

// TestWaitOrAbortBounds: requester-loses policies abort immediately; a
// waiting policy is cut off after maxConflictProbes.
func TestWaitOrAbortBounds(t *testing.T) {
	if !WaitOrAbort(nil, nil, 0) {
		t.Fatal("nil self must abort")
	}
	var st ThreadStats
	rl := cmPool(t, "randlin").ForThread(0, &st)
	if !WaitOrAbort(rl, nil, 0) {
		t.Fatal("randlin must abort at any conflict")
	}
	p := cmPool(t, "greedy")
	var st0, st1 ThreadStats
	older := p.ForThread(0, &st0)
	younger := p.ForThread(1, &st1)
	older.OnStart()
	younger.OnStart()
	if WaitOrAbort(older, younger, 0) {
		t.Fatal("older greedy transaction must wait, not abort")
	}
	if !WaitOrAbort(older, younger, maxConflictProbes) {
		t.Fatal("probe bound did not cut the wait off")
	}
}

// TestCMWaitStats: applied delays are counted and timed in ThreadStats.
func TestCMWaitStats(t *testing.T) {
	var st ThreadStats
	c := cmPool(t, "randlin").ForThread(0, &st)
	c.OnStart()
	c.OnAbort(10) // well past the threshold: a delay must be applied
	c.OnCommit()
	if st.CMWaits != 1 {
		t.Fatalf("CMWaits = %d, want 1", st.CMWaits)
	}
	if st.CMWaitNs <= 0 {
		t.Fatalf("CMWaitNs = %d, want > 0", st.CMWaitNs)
	}
}

// TestCMStatsMerge: the new counters aggregate across thread records.
func TestCMStatsMerge(t *testing.T) {
	a := &ThreadStats{CMWaits: 2, CMWaitNs: 100, CMSerialized: 1}
	b := &ThreadStats{CMWaits: 3, CMWaitNs: 50}
	s := Aggregate([]*ThreadStats{a, b})
	if s.Total.CMWaits != 5 || s.Total.CMWaitNs != 150 || s.Total.CMSerialized != 1 {
		t.Fatalf("merged CM stats = %+v", s.Total)
	}
}
