package hybrid

import (
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/sig"
	"github.com/stamp-go/stamp/internal/tm/trace"
	"github.com/stamp-go/stamp/internal/tm/txset"
)

// Eager is the eager SigTM variant: software undo log with in-place writes,
// hardware signatures for conflict detection at encounter time. Conflicts
// are detected by the requester (insert-then-probe: each barrier publishes
// its own signature bit before probing everyone else's, so of two racing
// conflicting transactions at least one sees the other) and resolved by the
// configured contention manager — by default the requester aborts itself
// with randomized linear backoff, the policy mix that makes this system
// livelock-prone on genome, exactly as the paper reports; priority policies
// (greedy, karma) arbitrate at these same probe points instead.
type Eager struct {
	cfg     tm.Config
	threads []*eagerThread
	txs     []*eagerTx
	cms     []tm.ContentionManager // per-slot, for conflict arbitration
	chaos   *chaos.Injector        // nil unless Config.Chaos armed failpoints
}

// NewEager constructs the eager hybrid.
func NewEager(cfg tm.Config) (*Eager, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool, err := tm.NewCMPool(cfg, tm.DefaultCM)
	if err != nil {
		return nil, err
	}
	s := &Eager{cfg: cfg, chaos: pool.Chaos()}
	s.threads = make([]*eagerThread, cfg.Threads)
	s.txs = make([]*eagerTx, cfg.Threads)
	s.cms = make([]tm.ContentionManager, cfg.Threads)
	for i := range s.threads {
		x := &eagerTx{sys: s, slot: i, res: cfg.NewReserver()}
		if cfg.ProfileSets {
			x.readLines = make(map[mem.Line]struct{})
			x.writeLines = make(map[mem.Line]struct{})
		}
		s.txs[i] = x
		t := &eagerThread{id: i, sys: s, tx: x}
		t.stats.Tracer = cfg.NewTracer()
		t.cm = pool.ForThread(i, &t.stats)
		s.cms[i] = t.cm
		x.cm = t.cm
		s.threads[i] = t
	}
	return s, nil
}

// Name implements tm.System.
func (s *Eager) Name() string { return "hybrid-eager" }

// Arena implements tm.System.
func (s *Eager) Arena() *mem.Arena { return s.cfg.Arena }

// NThreads implements tm.System.
func (s *Eager) NThreads() int { return s.cfg.Threads }

// Thread implements tm.System.
func (s *Eager) Thread(id int) tm.Thread { return s.threads[id] }

// Stats implements tm.System.
func (s *Eager) Stats() tm.Stats {
	per := make([]*tm.ThreadStats, len(s.threads))
	for i, t := range s.threads {
		per[i] = &t.stats
	}
	return tm.Aggregate(per)
}

// blockOf returns the atomic block the transaction in slot is currently
// executing (tm.NoBlock when idle), for blaming the enemy's call site at
// signature-probe conflicts.
func (s *Eager) blockOf(slot int) tm.BlockID {
	if slot >= 0 && slot < len(s.threads) {
		return tm.BlockID(s.threads[slot].curBlock.Load())
	}
	return tm.NoBlock
}

type eagerThread struct {
	id    int
	sys   *Eager
	stats tm.ThreadStats
	tx    *eagerTx
	cm    tm.ContentionManager
	timer tm.AtomicTimer

	// curBlock publishes the block this thread is currently inside, so
	// enemies that abort against our signatures can blame the call site.
	curBlock atomic.Int32
}

func (t *eagerThread) ID() int                { return t.id }
func (t *eagerThread) Stats() *tm.ThreadStats { return &t.stats }

func (t *eagerThread) Atomic(fn func(tm.Tx)) { t.AtomicAt(tm.NoBlock, fn) }

func (t *eagerThread) AtomicAt(b tm.BlockID, fn func(tm.Tx)) {
	t.timer.BeginBlock()
	t.stats.Starts++
	t.stats.Tracer.SampleBlock(t.id, int32(b))
	t.curBlock.Store(int32(b))
	t.cm.OnStart()
	aborts := 0
	for {
		t.tx.begin()
		if tm.Attempt(t.tx, fn) {
			t.tx.commit()
			break
		}
		t.tx.rollback()
		aborts++
		t.stats.Aborts++
		t.stats.RecordAbort(b, t.tx.info.Cause, t.tx.info.Key, t.tx.info.Blame)
		t.stats.Tracer.Emit(trace.EvAbort, t.tx.info.Cause, t.id, int32(b), t.tx.info.Key)
		t.stats.Wasted += t.tx.loads + t.tx.stores
		t.tx.res.OnAbort()
		if t.tx.info.Err != nil {
			// Terminal alloc exhaustion: the abort is accounted, rollback
			// replayed the undo log and cleared the signatures — unwind
			// instead of retrying.
			t.curBlock.Store(int32(tm.NoBlock))
			tm.AbandonBlock(t.cm)
			t.tx.info.BailAlloc()
		}
		t.cm.OnAbort(aborts)
	}
	t.tx.res.OnCommit()
	t.curBlock.Store(int32(tm.NoBlock))
	t.cm.OnCommit()
	t.stats.Commits++
	t.stats.Tracer.Emit(trace.EvCommit, tm.CauseUnknown, t.id, int32(b), 0)
	t.stats.RecordBlock(b, "hybrid-eager", uint64(aborts), t.tx.loads, t.tx.stores)
	t.stats.Loads += t.tx.loads
	t.stats.Stores += t.tx.stores
	t.stats.LoadsHist.Add(int(t.tx.loads))
	t.stats.StoresHist.Add(int(t.tx.stores))
	if t.tx.readLines != nil {
		t.stats.ReadLinesHist.Add(len(t.tx.readLines))
		t.stats.WriteLinesHist.Add(len(t.tx.writeLines))
	}
	t.stats.TxTimeNs += int64(t.timer.EndBlock())
}

type eagerTx struct {
	sys  *Eager
	slot int
	cm   tm.ContentionManager
	res  *mem.Reserver // thread-private allocation chunk

	active atomic.Bool
	info   tm.AbortInfo // pending-abort cause/location/blame registers

	readSig  sig.Signature
	writeSig sig.Signature
	undo     txset.WriteSet // addr → old value; doubles as the written-set

	loads  uint64
	stores uint64

	readLines  map[mem.Line]struct{} // profiling only
	writeLines map[mem.Line]struct{}
}

func (x *eagerTx) begin() {
	x.loads, x.stores = 0, 0
	x.info.Reset()
	x.readSig.Clear()
	x.writeSig.Clear()
	x.undo.Reset()
	if x.readLines != nil {
		clear(x.readLines)
		clear(x.writeLines)
	}
	x.active.Store(true)
}

// rollback replays the undo log before clearing signatures, so a racing
// reader that passes a cleared signature can only observe restored data.
func (x *eagerTx) rollback() {
	undo := x.undo.Entries()
	for i := len(undo) - 1; i >= 0; i-- {
		x.sys.cfg.Arena.Store(undo[i].Addr, undo[i].Val)
	}
	x.undo.Reset()
	x.readSig.Clear()
	x.writeSig.Clear()
	x.active.Store(false)
}

// commit needs no validation: a writer that would have invalidated one of
// our reads saw our read signature and aborted itself instead.
func (x *eagerTx) commit() {
	x.undo.Reset()
	x.readSig.Clear()
	x.writeSig.Clear()
	x.active.Store(false)
}

// Load publishes the line in the read signature, then probes every other
// active transaction's write signature; a hit means that line may carry
// in-place speculative data. The contention manager arbitrates the
// conflict: requester-loses policies abort here, priority policies may wait
// the writer out and re-probe.
func (x *eagerTx) Load(a mem.Addr) uint64 {
	x.loads++
	l := uint32(mem.LineOf(a))
	x.readSig.Insert(l)
	for _, other := range x.sys.txs {
		if other.slot == x.slot {
			continue
		}
		for probe := 0; other.active.Load() && other.writeSig.Test(l); probe++ {
			if tm.WaitOrAbort(x.cm, x.sys.cms[other.slot], probe) {
				x.info.Fail(tm.CauseOrDisplaced(x.cm, tm.CauseSignatureConflict), trace.LineKey(uint64(l)),
					x.sys.blockOf(other.slot))
			}
		}
	}
	if x.readLines != nil {
		x.readLines[mem.LineOf(a)] = struct{}{}
	}
	return x.sys.cfg.Arena.Load(a)
}

// Store publishes the line in the write signature, probes every other
// active transaction's read and write signatures, then writes in place
// under the undo log.
func (x *eagerTx) Store(a mem.Addr, v uint64) {
	x.stores++
	l := uint32(mem.LineOf(a))
	// Failpoint: a spurious abort at the write-barrier probe looks exactly
	// like a Bloom-signature hit, so it carries that site's natural cause.
	if x.sys.chaos.Fire(chaos.HybridSigCheck, x.slot) {
		x.info.Fail(tm.CauseSignatureConflict, trace.LineKey(uint64(l)), tm.NoBlock)
	}
	x.writeSig.Insert(l)
	for _, other := range x.sys.txs {
		if other.slot == x.slot {
			continue
		}
		for probe := 0; other.active.Load() && (other.readSig.Test(l) || other.writeSig.Test(l)); probe++ {
			if tm.WaitOrAbort(x.cm, x.sys.cms[other.slot], probe) {
				x.info.Fail(tm.CauseOrDisplaced(x.cm, tm.CauseSignatureConflict), trace.LineKey(uint64(l)),
					x.sys.blockOf(other.slot))
			}
		}
	}
	// Log the old value only on the first store to a.
	if !x.undo.Contains(a) {
		x.undo.Insert(a, x.sys.cfg.Arena.Load(a))
	}
	x.sys.cfg.Arena.Store(a, v)
	if x.writeLines != nil {
		x.writeLines[mem.LineOf(a)] = struct{}{}
	}
}

// Alloc draws from the thread-private reservation chunk; line-aligned
// chunks also keep one thread's allocations off another's signature lines
// (recycled free-list blocks weaken that disjointness, trading spurious
// signature hits for a bounded arena high-water). A real capacity miss
// unwinds terminally via FailAlloc; the alloc-exhaust failpoint injects
// only the abort (the undo log makes either a plain rollback).
func (x *eagerTx) Alloc(n int) mem.Addr {
	if x.sys.chaos.Fire(chaos.AllocExhaust, x.slot) {
		x.info.Fail(tm.CauseAllocExhausted, 0, tm.NoBlock)
	}
	a, err := x.res.TxAlloc(n)
	if err != nil {
		x.info.FailAlloc(err)
	}
	return a
}

// Free defers the release to commit time (rollback drops it), recycling the
// block through the thread's free lists.
func (x *eagerTx) Free(a mem.Addr, n int) { x.res.TxFree(a, n) }

// EarlyRelease is unsupported on signatures (no removal from a Bloom
// filter); it is a no-op, as on the lazy hybrid.
func (x *eagerTx) EarlyRelease(mem.Addr) {}

// Peek is an uninstrumented read; with eager versioning it may observe
// in-flight speculative data (see the eager STM note — the only sanctioned
// use revalidates transactionally).
func (x *eagerTx) Peek(a mem.Addr) uint64 { return x.sys.cfg.Arena.Load(a) }

// Restart implements tm.Tx.
func (x *eagerTx) Restart() { x.info.Fail(tm.CauseExplicitRetry, 0, tm.NoBlock) }
