// Package hybrid implements the paper's two hybrid TM systems, modelled on
// SigTM: data versioning stays in software (a write buffer for the lazy
// variant, an undo log for the eager one) while conflict detection uses
// per-transaction hardware signatures — 2048-bit Bloom filters over 32-byte
// line addresses (Table V). Conflict detection is therefore at line
// granularity and conservative (false positives), and isolation is strong
// with respect to transactional peers. Contention management defaults to
// the STMs' randomized linear backoff after three aborts, and is pluggable
// through tm.Config.CM like every software-managed runtime; the eager
// variant additionally consults the policy's arbitration at its
// encounter-time signature conflicts.
package hybrid

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/sig"
	"github.com/stamp-go/stamp/internal/tm/trace"
	"github.com/stamp-go/stamp/internal/tm/txset"
)

// Lazy is the SigTM-style lazy hybrid: software write buffer, read/write
// signatures, committer-wins conflict detection at commit.
type Lazy struct {
	cfg      tm.Config
	commitMu sync.Mutex
	epoch    atomic.Uint64
	threads  []*lazyThread
	txs      []*lazyTx
	chaos    *chaos.Injector // nil unless Config.Chaos armed failpoints
}

// NewLazy constructs the lazy hybrid.
func NewLazy(cfg tm.Config) (*Lazy, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool, err := tm.NewCMPool(cfg, tm.DefaultCM)
	if err != nil {
		return nil, err
	}
	s := &Lazy{cfg: cfg, chaos: pool.Chaos()}
	s.threads = make([]*lazyThread, cfg.Threads)
	s.txs = make([]*lazyTx, cfg.Threads)
	for i := range s.threads {
		x := &lazyTx{sys: s, slot: i, res: cfg.NewReserver()}
		if cfg.ProfileSets {
			x.readLines = make(map[mem.Line]struct{})
			x.writeLines = make(map[mem.Line]struct{})
		}
		s.txs[i] = x
		t := &lazyThread{id: i, sys: s, tx: x}
		t.stats.Tracer = cfg.NewTracer()
		t.cm = pool.ForThread(i, &t.stats)
		s.threads[i] = t
	}
	return s, nil
}

// Name implements tm.System.
func (s *Lazy) Name() string { return "hybrid-lazy" }

// Arena implements tm.System.
func (s *Lazy) Arena() *mem.Arena { return s.cfg.Arena }

// NThreads implements tm.System.
func (s *Lazy) NThreads() int { return s.cfg.Threads }

// Thread implements tm.System.
func (s *Lazy) Thread(id int) tm.Thread { return s.threads[id] }

// Stats implements tm.System.
func (s *Lazy) Stats() tm.Stats {
	per := make([]*tm.ThreadStats, len(s.threads))
	for i, t := range s.threads {
		per[i] = &t.stats
	}
	return tm.Aggregate(per)
}

// blockOf returns the atomic block the transaction in slot is currently
// executing (tm.NoBlock when idle), for blaming the killer's call site.
func (s *Lazy) blockOf(slot int) tm.BlockID {
	if slot >= 0 && slot < len(s.threads) {
		return tm.BlockID(s.threads[slot].curBlock.Load())
	}
	return tm.NoBlock
}

type lazyThread struct {
	id    int
	sys   *Lazy
	stats tm.ThreadStats
	tx    *lazyTx
	cm    tm.ContentionManager
	timer tm.AtomicTimer

	// curBlock publishes the block this thread is currently inside, so a
	// committer that flags us can blame the call site.
	curBlock atomic.Int32
}

func (t *lazyThread) ID() int                { return t.id }
func (t *lazyThread) Stats() *tm.ThreadStats { return &t.stats }

func (t *lazyThread) Atomic(fn func(tm.Tx)) { t.AtomicAt(tm.NoBlock, fn) }

func (t *lazyThread) AtomicAt(b tm.BlockID, fn func(tm.Tx)) {
	t.timer.BeginBlock()
	t.stats.Starts++
	t.stats.Tracer.SampleBlock(t.id, int32(b))
	t.curBlock.Store(int32(b))
	t.cm.OnStart()
	aborts := 0
	for {
		t.tx.begin()
		ok := tm.Attempt(t.tx, fn) && t.tx.commit()
		t.tx.end()
		if ok {
			break
		}
		aborts++
		t.stats.Aborts++
		t.stats.RecordAbort(b, t.tx.info.Cause, t.tx.info.Key, t.tx.info.Blame)
		t.stats.Tracer.Emit(trace.EvAbort, t.tx.info.Cause, t.id, int32(b), t.tx.info.Key)
		t.stats.Wasted += t.tx.loads + t.tx.stores
		t.tx.res.OnAbort()
		if t.tx.info.Err != nil {
			// Terminal alloc exhaustion: the abort is accounted and end
			// already cleared the signatures — unwind instead of retrying.
			t.curBlock.Store(int32(tm.NoBlock))
			tm.AbandonBlock(t.cm)
			t.tx.info.BailAlloc()
		}
		// Conflicts here are commit-time (committer wins, victims are only
		// flagged), so there is no encounter-time arbitration point; the
		// delay hooks are the whole policy surface on this runtime.
		t.cm.OnAbort(aborts)
	}
	t.tx.res.OnCommit()
	t.curBlock.Store(int32(tm.NoBlock))
	t.cm.OnCommit()
	t.stats.Commits++
	t.stats.Tracer.Emit(trace.EvCommit, tm.CauseUnknown, t.id, int32(b), 0)
	t.stats.RecordBlock(b, "hybrid-lazy", uint64(aborts), t.tx.loads, t.tx.stores)
	t.stats.Loads += t.tx.loads
	t.stats.Stores += t.tx.stores
	t.stats.LoadsHist.Add(int(t.tx.loads))
	t.stats.StoresHist.Add(int(t.tx.stores))
	if t.tx.readLines != nil {
		t.stats.ReadLinesHist.Add(len(t.tx.readLines))
		t.stats.WriteLinesHist.Add(len(t.tx.writeLines))
	}
	t.stats.TxTimeNs += int64(t.timer.EndBlock())
}

type lazyTx struct {
	sys  *Lazy
	slot int
	res  *mem.Reserver // thread-private allocation chunk

	active   atomic.Bool
	aborted  atomic.Bool
	killedBy atomic.Uint64 // who flagged us and on what line (see tm.KillPack)
	info     tm.AbortInfo  // pending-abort cause/location/blame registers

	readSig  sig.Signature
	writeSig sig.Signature
	wset     txset.WriteSet // redo log (insertion order = writeback order)

	loads  uint64
	stores uint64

	readLines  map[mem.Line]struct{} // profiling only
	writeLines map[mem.Line]struct{}
}

func (x *lazyTx) begin() {
	x.loads, x.stores = 0, 0
	x.info.Reset()
	x.killedBy.Store(0)
	x.readSig.Clear()
	x.writeSig.Clear()
	x.wset.Reset()
	if x.readLines != nil {
		clear(x.readLines)
		clear(x.writeLines)
	}
	x.aborted.Store(false)
	x.active.Store(true)
}

// end closes the conflict window: once active is clear, peers stop probing
// these signatures, and clearing them keeps no stale conflict state between
// transactions.
func (x *lazyTx) end() {
	x.active.Store(false)
	x.readSig.Clear()
	x.writeSig.Clear()
}

// setKilled stamps the pending abort from the killedBy word a committer
// deposited before flagging us. All flag aborts here are signature hits —
// possibly false positives, which is exactly why the cause is its own bucket.
func (x *lazyTx) setKilled() {
	blame, key := tm.KillUnpack(x.killedBy.Load())
	x.info.Set(tm.CauseSignatureConflict, key, blame)
}

func (x *lazyTx) failKilled() {
	x.setKilled()
	tm.Retry()
}

// Load: write-buffer lookup, then a signature-tracked read. The epoch
// seqlock (see commit) guarantees a read that overlaps a commit is redone,
// so doomed transactions never hold an inconsistent snapshot.
func (x *lazyTx) Load(a mem.Addr) uint64 {
	x.loads++
	if v, ok := x.wset.Get(a); ok {
		return v
	}
	l := mem.LineOf(a)
	for {
		if x.aborted.Load() {
			x.failKilled()
		}
		e := x.sys.epoch.Load()
		if e&1 == 1 {
			runtime.Gosched()
			continue
		}
		x.readSig.Insert(uint32(l))
		v := x.sys.cfg.Arena.Load(a)
		if x.sys.epoch.Load() == e {
			// Recheck the flag after the stable-epoch confirmation: a commit
			// that flagged us can complete entirely between the loop-top flag
			// poll and the first epoch load, so the poll alone can read a
			// stale false and return the committed value while earlier loads
			// predate the writeback (see htmsim/lazy.go).
			if x.aborted.Load() {
				x.failKilled()
			}
			if x.readLines != nil {
				x.readLines[l] = struct{}{}
			}
			return v
		}
	}
}

// Store buffers the word and records the line in the write signature.
func (x *lazyTx) Store(a mem.Addr, v uint64) {
	x.stores++
	if x.aborted.Load() {
		x.failKilled()
	}
	x.wset.Put(a, v)
	x.writeSig.Insert(uint32(mem.LineOf(a)))
	if x.writeLines != nil {
		x.writeLines[mem.LineOf(a)] = struct{}{}
	}
}

// Alloc draws from the thread-private reservation chunk; line-aligned
// chunks also keep one thread's allocations off another's signature lines
// (recycled free-list blocks weaken that disjointness, trading spurious
// signature hits for a bounded arena high-water). A real capacity miss
// unwinds terminally via FailAlloc; the alloc-exhaust failpoint injects
// only the abort.
func (x *lazyTx) Alloc(n int) mem.Addr {
	if x.sys.chaos.Fire(chaos.AllocExhaust, x.slot) {
		x.info.Fail(tm.CauseAllocExhausted, 0, tm.NoBlock)
	}
	a, err := x.res.TxAlloc(n)
	if err != nil {
		x.info.FailAlloc(err)
	}
	return a
}

// Free defers the release to commit time (abort drops it), recycling the
// block through the thread's free lists.
func (x *lazyTx) Free(a mem.Addr, n int) { x.res.TxFree(a, n) }

// EarlyRelease cannot remove a line from a Bloom filter; like SigTM, the
// hybrid simply does not support it (labyrinth avoids needing it on hybrids
// by using uninstrumented Peek reads, as the paper explains).
func (x *lazyTx) EarlyRelease(mem.Addr) {}

// Peek is an uninstrumented read; does not see own buffered writes.
func (x *lazyTx) Peek(a mem.Addr) uint64 { return x.sys.cfg.Arena.Load(a) }

// Restart implements tm.Tx.
func (x *lazyTx) Restart() { x.info.Fail(tm.CauseExplicitRetry, 0, tm.NoBlock) }

// commit arbitrates exactly like the TCC HTM, but probes signatures instead
// of precise line sets: flag every active transaction whose read or write
// signature admits one of our write lines, then write back.
func (x *lazyTx) commit() bool {
	if x.wset.Len() == 0 {
		if x.aborted.Load() {
			x.setKilled()
			return false
		}
		return true
	}
	// Failpoint: a spurious abort at the committer's signature sweep looks
	// exactly like being flagged by a racing committer (a signature hit).
	if x.sys.chaos.Fire(chaos.HybridSigCheck, x.slot) {
		x.info.Set(tm.CauseSignatureConflict, 0, tm.NoBlock)
		return false
	}
	x.sys.commitMu.Lock()
	if x.aborted.Load() {
		x.sys.commitMu.Unlock()
		x.setKilled()
		return false
	}
	writes := x.wset.Entries()
	myBlock := x.sys.blockOf(x.slot)
	x.sys.epoch.Add(1)
	for _, other := range x.sys.txs {
		if other.slot == x.slot || !other.active.Load() {
			continue
		}
		for _, e := range writes {
			l := uint32(mem.LineOf(e.Addr))
			if other.readSig.Test(l) || other.writeSig.Test(l) {
				other.killedBy.Store(tm.KillPack(myBlock, mem.LineOf(e.Addr)))
				other.aborted.Store(true)
				break
			}
		}
	}
	for _, e := range writes {
		x.sys.cfg.Arena.Store(e.Addr, e.Val)
	}
	x.sys.epoch.Add(1)
	x.sys.commitMu.Unlock()
	return true
}
