package hybrid

import (
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

func TestLazySignaturesClearBetweenTransactions(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	a := arena.AllocLines(1)
	sys, err := NewLazy(tm.Config{Arena: arena, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	th := sys.Thread(0)
	th.Atomic(func(tx tm.Tx) { tx.Store(a, 1) })
	x := sys.txs[0]
	// After commit the write signature is cleared (conflict window closed).
	if !x.writeSig.Empty() || !x.readSig.Empty() {
		t.Fatal("signatures survive commit")
	}
}

func TestEagerSignatureConflictRequesterLoses(t *testing.T) {
	// A reader probing a line held in another active transaction's write
	// signature must retry until the writer finishes.
	arena := mem.NewArena(1 << 12)
	a := arena.AllocLines(1)
	sys, err := NewEager(tm.Config{Arena: arena, Threads: 2, BackoffAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	team := thread.NewTeam(2)
	hold := make(chan struct{})
	started := make(chan struct{})
	var readerRetries int
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		if tid == 0 {
			th.Atomic(func(tx tm.Tx) {
				tx.Store(a, 42)
				select {
				case <-started:
				default:
					close(started)
				}
				<-hold // keep the speculative write live
			})
			return
		}
		<-started
		attempts := 0
		th.Atomic(func(tx tm.Tx) {
			attempts++
			if attempts == 1 {
				// First attempt must observe the conflict... but only the
				// runtime knows; we just release the writer after our first
				// pass so the retry can succeed.
				defer close(hold)
			}
			if got := tx.Load(a); got != 0 && got != 42 {
				t.Errorf("torn read: %d", got)
			}
		})
		readerRetries = attempts - 1
	})
	if arena.Load(a) != 42 {
		t.Fatalf("writer lost: %d", arena.Load(a))
	}
	if readerRetries < 1 {
		t.Fatalf("reader never conflicted with the live writer (retries=%d)", readerRetries)
	}
}

func TestLazyCommitterWins(t *testing.T) {
	// A committing writer must doom a concurrent reader of the same line;
	// the reader's retry then sees the committed value.
	arena := mem.NewArena(1 << 12)
	a := arena.AllocLines(1)
	sys, err := NewLazy(tm.Config{Arena: arena, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	team := thread.NewTeam(2)
	readerIn := make(chan struct{})
	writerDone := make(chan struct{})
	sawOld, sawNew := false, false
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		if tid == 0 {
			<-readerIn
			th.Atomic(func(tx tm.Tx) { tx.Store(a, 7) })
			close(writerDone)
			return
		}
		th.Atomic(func(tx tm.Tx) {
			v := tx.Load(a)
			select {
			case <-readerIn:
			default:
				close(readerIn)
			}
			<-writerDone // hold the transaction open across the commit
			switch v {
			case 0:
				sawOld = true
			case 7:
				sawNew = true
			}
		})
	})
	// The reader either got doomed and retried (seeing 7) or had already
	// read 0 and was flagged; its *final committed attempt* must be
	// consistent: if it read 0, the commit must have failed and retried.
	if !sawNew && !sawOld {
		t.Fatal("reader observed nothing")
	}
	if arena.Load(a) != 7 {
		t.Fatalf("final value %d", arena.Load(a))
	}
}

func TestEagerHybridFalseConflictsAcceptable(t *testing.T) {
	// Signatures may produce false conflicts but never lost updates:
	// hammer many distinct lines concurrently and check sums.
	const threads = 8
	const cells = 128
	const perT = 300
	arena := mem.NewArena(1 << 16)
	addrs := make([]mem.Addr, cells)
	for i := range addrs {
		addrs[i] = arena.AllocLines(1)
	}
	sys, err := NewEager(tm.Config{Arena: arena, Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	team := thread.NewTeam(threads)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for i := 0; i < perT; i++ {
			a := addrs[(tid*perT+i)%cells]
			th.Atomic(func(tx tm.Tx) {
				tx.Store(a, tx.Load(a)+1)
			})
		}
	})
	var sum uint64
	for _, a := range addrs {
		sum += arena.Load(a)
	}
	if sum != threads*perT {
		t.Fatalf("sum = %d, want %d", sum, threads*perT)
	}
}
