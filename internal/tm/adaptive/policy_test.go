package adaptive

import "testing"

// TestDesire pins the selection policy's decision table: thread-count
// prior, write-heavy and read-dominated bands, the dead band keeping the
// current mode, and the abort-rate escape hatch.
func TestDesire(t *testing.T) {
	cases := []struct {
		name                           string
		cur                            int32
		threads                        int
		commits, aborts, loads, stores uint64
		want                           int32
	}{
		{"low-threads-never-write", modeRead, 2, 100, 90, 100, 900, modeRead},
		{"low-threads-forces-read", modeWrite, 2, 100, 0, 100, 900, modeRead},
		{"write-heavy", modeRead, 8, 100, 0, 800, 200, modeWrite},
		{"read-dominated", modeWrite, 8, 100, 0, 1000, 10, modeRead},
		{"dead-band-keeps-read", modeRead, 8, 100, 0, 900, 100, modeRead},
		{"dead-band-keeps-write", modeWrite, 8, 100, 0, 900, 100, modeWrite},
		{"aborts-with-writes-select-write", modeRead, 8, 70, 30, 900, 100, modeWrite},
		{"aborts-pure-read-stay-read", modeRead, 8, 70, 30, 1000, 0, modeRead},
		{"empty-window-keeps-current", modeWrite, 8, 0, 0, 0, 0, modeWrite},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := desire(c.cur, c.threads, c.commits, c.aborts, c.loads, c.stores)
			if got != c.want {
				t.Fatalf("desire(cur=%d threads=%d c=%d a=%d l=%d s=%d) = %d, want %d",
					c.cur, c.threads, c.commits, c.aborts, c.loads, c.stores, got, c.want)
			}
		})
	}
}
