// Integration tests for the stm-adaptive meta-runtime. They live in an
// external test package so they can build systems through the factory
// (which imports this package to register stm-adaptive).
package adaptive_test

import (
	"sync/atomic"
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/adaptive"
	"github.com/stamp-go/stamp/internal/tm/factory"
)

func newAdaptive(t *testing.T, cfg tm.Config) *adaptive.System {
	t.Helper()
	sys, err := factory.New("stm-adaptive", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys.(*adaptive.System)
}

// TestDelegateValidation pins the constructor's rejections: self-nesting,
// the sequential baseline, identical delegates, unknown names.
func TestDelegateValidation(t *testing.T) {
	arena := mem.NewArena(1 << 8)
	base := tm.Config{Arena: arena, Threads: 2}
	for _, c := range []struct {
		name string
		cfg  tm.Config
	}{
		{"self-nesting", tm.Config{Arena: arena, Threads: 2, AdaptiveRead: "stm-adaptive"}},
		{"seq-delegate", tm.Config{Arena: arena, Threads: 2, AdaptiveWrite: "seq"}},
		{"identical", tm.Config{Arena: arena, Threads: 2, AdaptiveRead: "stm-lazy", AdaptiveWrite: "stm-lazy"}},
		{"unknown", tm.Config{Arena: arena, Threads: 2, AdaptiveRead: "stm-nope"}},
	} {
		if _, err := factory.New("stm-adaptive", c.cfg); err == nil {
			t.Errorf("%s: factory.New accepted %+v", c.name, c.cfg)
		}
	}
	sys := newAdaptive(t, base)
	if read, write := sys.Delegates(); read != "stm-norec-ro" || write != "stm-lazy" {
		t.Fatalf("default delegates = %s, %s", read, write)
	}
	if cur := sys.Current(); cur != "stm-norec-ro" {
		t.Fatalf("initial protocol = %s, want the read delegate", cur)
	}
}

// TestForcedHandoffNoLostUpdates is the switch-correctness test: a team of
// workers increments shared counters while another goroutine forces
// protocol handoffs the whole time, so transactions commit under both
// delegates with many quiesce points in between. Every increment must
// survive (no lost updates across a handoff) and the per-block statistics
// must add up: block commits equal the expected count, and the residency
// split sums to it while naming both protocols.
func TestForcedHandoffNoLostUpdates(t *testing.T) {
	const (
		threads = 8
		perT    = 3000
		cells   = 16
	)
	blk := tm.NewBlock("adaptive-test/increment")
	arena := mem.NewArena(1 << 10)
	base := arena.Alloc(cells)
	sys := newAdaptive(t, tm.Config{
		Arena: arena, Threads: threads,
		// A huge window keeps the sampling policy quiet so the forced
		// handoffs fully control the protocol schedule.
		AdaptiveWindow: 1 << 30,
	})
	read, write := sys.Delegates()

	// Worker 0 forces a handoff between its own blocks every flipEvery
	// commits, so every switch quiesces the other workers' in-flight
	// transactions. Progress-driven (not a timer goroutine) so the flip
	// schedule — and commits under both protocols — survives any
	// scheduling, including race-detector runs on a single CPU.
	const flipEvery = 256
	var forceErr atomic.Value
	team := thread.NewTeam(threads)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for i := 0; i < perT; i++ {
			if tid == 0 && i%flipEvery == 0 {
				target := read
				if (i/flipEvery)%2 == 0 {
					target = write
				}
				if err := sys.ForceMode(target); err != nil {
					forceErr.Store(err)
					return
				}
			}
			a := base + mem.Addr((tid+i)%cells)
			th.AtomicAt(blk, func(tx tm.Tx) {
				tx.Store(a, tx.Load(a)+1)
			})
		}
	})
	if err := forceErr.Load(); err != nil {
		t.Fatalf("ForceMode: %v", err)
	}

	var sum uint64
	for i := 0; i < cells; i++ {
		sum += arena.Load(base + mem.Addr(i))
	}
	if sum != threads*perT {
		t.Fatalf("lost updates across handoffs: counters sum to %d, want %d", sum, threads*perT)
	}
	if sys.Switches() == 0 {
		t.Fatal("no handoff happened; the test exercised nothing")
	}

	st := sys.Stats()
	if st.Total.Commits != threads*perT {
		t.Fatalf("commits = %d, want %d", st.Total.Commits, threads*perT)
	}
	rows := st.Blocks()
	var row *tm.BlockRow
	for i := range rows {
		if rows[i].Name == "adaptive-test/increment" {
			row = &rows[i]
		}
	}
	if row == nil {
		t.Fatalf("per-block stats have no row for the annotated block: %+v", rows)
	}
	if row.Commits != threads*perT {
		t.Fatalf("block commits = %d, want %d", row.Commits, threads*perT)
	}
	res := row.Residency()
	var residency uint64
	for _, n := range res {
		residency += n
	}
	if residency != row.Commits {
		t.Fatalf("residency sums to %d, want %d (%v)", residency, row.Commits, res)
	}
	if res[read] == 0 || res[write] == 0 {
		t.Fatalf("expected commits under both protocols, got %v", res)
	}
	// Each committed attempt did one read and one write barrier.
	if row.Loads != row.Commits || row.Stores != row.Commits {
		t.Fatalf("block barriers = %d loads / %d stores, want %d each",
			row.Loads, row.Stores, row.Commits)
	}
}

// TestPolicySwitchesOnline drives the sampling policy itself: a write-heavy
// phase must move the runtime onto the write delegate, and a following
// read-dominated phase must bring it back — protocol residency following
// the phases of one workload, which is the point of the meta-runtime.
func TestPolicySwitchesOnline(t *testing.T) {
	const threads = 4
	arena := mem.NewArena(1 << 12)
	cells := arena.Alloc(1 << 8)
	sys := newAdaptive(t, tm.Config{
		Arena: arena, Threads: threads,
		AdaptiveWindow: 64, AdaptiveHysteresis: 2,
	})
	read, write := sys.Delegates()
	team := thread.NewTeam(threads)

	// Write-heavy phase: every transaction stores as much as it loads.
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for i := 0; i < 4000; i++ {
			th.Atomic(func(tx tm.Tx) {
				for k := 0; k < 4; k++ {
					a := cells + mem.Addr((tid*61+i*7+k)%(1<<8))
					tx.Store(a, tx.Load(a)+1)
				}
			})
		}
	})
	if cur := sys.Current(); cur != write {
		t.Fatalf("after write-heavy phase the protocol is %s, want %s", cur, write)
	}

	// Read-dominated phase: pure readers.
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		var sink uint64
		for i := 0; i < 4000; i++ {
			th.Atomic(func(tx tm.Tx) {
				for k := 0; k < 8; k++ {
					sink += tx.Load(cells + mem.Addr((tid*31+i*5+k)%(1<<8)))
				}
			})
		}
		_ = sink
	})
	if cur := sys.Current(); cur != read {
		t.Fatalf("after read-dominated phase the protocol is %s, want %s", cur, read)
	}
	if sys.Switches() < 2 {
		t.Fatalf("switches = %d, want at least the two phase handoffs", sys.Switches())
	}
}
