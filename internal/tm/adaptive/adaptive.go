// Package adaptive implements stm-adaptive, a meta-runtime that wraps two
// delegate STMs over the same arena and switches between them online. It
// automates the central STAMP finding — no single TM design wins across the
// workload mix, protocol choice is the dominant performance variable — by
// measuring each workload phase and picking the protocol instead of asking
// the user to.
//
// # Delegates
//
// The two delegates are constructed by name through the factory (injected
// as a Ctor to avoid the package cycle) from tm.Config.AdaptiveRead and
// tm.Config.AdaptiveWrite:
//
//   - the read delegate (default stm-norec-ro) is preferred in
//     read-dominated / low-contention phases: NOrec's barrier has no lock
//     table to probe, read-only commits are free, and value-based
//     validation rarely fires when the clock rarely moves;
//   - the write delegate (default stm-lazy, i.e. TL2) is preferred under
//     write-heavy commit pressure: per-stripe locks commit disjoint write
//     sets in parallel, where NOrec serializes every writeback through one
//     sequence lock and each commit forces every in-flight reader to
//     revalidate.
//
// Both delegates share the arena but own disjoint metadata (TL2's lock
// table and clock vs NOrec's sequence lock), so correctness only requires
// that the two protocols are never concurrently active — which the epoch
// gate below enforces.
//
// # Signals and policy
//
// Each worker samples its blocks' outcomes — failed attempts and
// read/write barrier counts, read as deltas off the delegates' own
// cumulative per-thread accounting — and deposits them into a global
// window once per flushEvery blocks, so the per-block fast path does no
// sampling at all. When a window fills (tm.Config.AdaptiveWindow committed
// blocks), one thread evaluates:
//
//	writeFrac = stores / (loads + stores)   // write-set share of barriers
//	abortRate = aborts / (aborts + commits) // contention proxy
//
// Write-heavy pressure (writeFrac above writeHeavyFrac, or an elevated
// abortRate while writes are present) selects the write delegate;
// read-dominated windows (writeFrac below readDomFrac and low abortRate)
// select the read delegate; anything between is a dead band that keeps the
// current protocol. Thread count is a static prior: below minWriteThreads
// the sequence lock cannot be a bottleneck, so the policy never leaves the
// read delegate. Hysteresis on top of the dead band: the desired protocol
// must win tm.Config.AdaptiveHysteresis consecutive windows before a
// handoff, and after a handoff the policy sleeps for cooldownWindows
// windows so residency is never shorter than a few windows.
//
// # Quiesce / handoff
//
// Protocol switches use an epoch gate built from one padded per-thread
// flag: a worker entering a block claims the current mode by storing
// mode+1 into its own flag and then re-checking mode (a Dekker-style
// store/load pair; Go's sync/atomic operations are sequentially
// consistent), and clears the flag when the block completes. A handoff
// first parks the mode at modeSwitching, which stops new blocks from
// claiming, then waits until every flag is clear — a full quiesce: every
// in-flight transaction has committed and no new one can start — and only
// then installs the new mode. No transaction ever straddles protocols, and
// the two delegates are never concurrently active; the flag-clear /
// mode-load atomics give the happens-before edge from every old-protocol
// transaction to every new-protocol one. The fast path costs two stores
// and two loads on the worker's own cache line plus one shared read-only
// mode load — cheaper than a reader-writer lock's shared-word RMWs, which
// matters on the tiny-transaction workloads (kmeans-sized blocks) this
// runtime must not tax. The handoff itself is performed by whichever
// worker thread evaluated the window — between its own blocks, with its
// own flag clear, so the quiesce cannot deadlock on itself.
//
// Per-block statistics need no extra plumbing: each delegate records every
// commit under its own runtime name, so the merged tm.Stats of a run show
// exactly how each atomic block's commits were split across protocols
// (BlockStats.Residency()).
package adaptive

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
)

// Ctor constructs a delegate runtime by registry name. The factory injects
// its own New so this package does not import it (factory imports adaptive
// to register stm-adaptive).
type Ctor func(name string, cfg tm.Config) (tm.System, error)

// Modes index the delegate pair; modeSwitching parks the runtime mid-
// handoff (no delegate claimable while the quiesce drains).
const (
	modeRead      int32 = 0  // read-optimized delegate active
	modeWrite     int32 = 1  // write-optimized delegate active
	modeSwitching int32 = -1 // handoff in progress, entries spin
)

// flushEvery batches a worker's sampled signals before they touch the
// shared window counters, keeping the sampling cost off the per-block fast
// path (4 shared atomic adds per flushEvery blocks instead of per block).
const flushEvery = 8

// Policy thresholds. writeFrac is the stores share of all barriers in a
// window, abortRate the failed-attempt share of all attempts.
const (
	// writeHeavyFrac: a window whose barrier mix is at least this much
	// stores counts as write-heavy commit pressure.
	writeHeavyFrac = 0.15
	// readDomFrac: a window with at most this much stores counts as
	// read-dominated. Between the two fractions is a dead band that keeps
	// the current protocol.
	readDomFrac = 0.05
	// abortHeavy: an abort rate at or above this marks contention the read
	// delegate handles badly (NOrec validation failures under commit
	// pressure) when writes are present at all.
	abortHeavy = 0.20
	// minWriteThreads: below this thread count the write delegate is never
	// selected — a single sequence lock cannot bottleneck one or two
	// threads, and NOrec's cheaper barriers win (the Synchrobench
	// low-thread-count observation).
	minWriteThreads = 4
	// cooldownWindows: windows skipped after a handoff, bounding how often
	// the gate can quiesce the team.
	cooldownWindows = 4
)

// System is the stm-adaptive meta-runtime: one tm.System facade over two
// delegate systems and the selection machinery.
type System struct {
	cfg  tm.Config
	dels [2]tm.System // [modeRead], [modeWrite]

	// mode is the active delegate index (or modeSwitching). Written only
	// under switchMu; claimed per block through the per-thread flag
	// protocol (see adaptiveThread.AtomicAt).
	mode atomic.Int32
	// switchMu serializes handoffs (policy-driven and forced).
	switchMu sync.Mutex

	switches atomic.Uint64 // completed handoffs

	// Sampling window accumulators (shared, reset by swap at evaluation).
	wCommits atomic.Uint64
	wAborts  atomic.Uint64
	wLoads   atomic.Uint64
	wStores  atomic.Uint64

	// ctl is the evaluator's state; TryLock keeps window evaluation off
	// every other thread's fast path.
	ctl struct {
		sync.Mutex
		pending  int32 // mode the recent windows argue for
		streak   int   // consecutive windows agreeing on pending
		cooldown int   // windows left to skip after a handoff
	}

	threads []*adaptiveThread

	// chaos is the meta-runtime's own injector for the handoff failpoint
	// (each delegate builds its own for its protocol-level sites).
	chaos *chaos.Injector
}

// New constructs the stm-adaptive runtime, building both delegates through
// mk from cfg.AdaptiveRead / cfg.AdaptiveWrite.
func New(cfg tm.Config, mk Ctor) (*System, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.AdaptiveRead == cfg.AdaptiveWrite {
		return nil, fmt.Errorf("adaptive: delegates must differ, both are %q", cfg.AdaptiveRead)
	}
	inj, err := chaos.New(cfg.Chaos, cfg.Threads)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, chaos: inj}
	for i, name := range []string{cfg.AdaptiveRead, cfg.AdaptiveWrite} {
		d, err := mk(name, cfg)
		if err != nil {
			return nil, fmt.Errorf("adaptive: delegate %q: %w", name, err)
		}
		s.dels[i] = d
	}
	s.threads = make([]*adaptiveThread, cfg.Threads)
	for i := range s.threads {
		s.threads[i] = &adaptiveThread{
			id:  i,
			sys: s,
			del: [2]tm.Thread{s.dels[modeRead].Thread(i), s.dels[modeWrite].Thread(i)},
		}
	}
	return s, nil
}

// Name implements tm.System.
func (s *System) Name() string { return "stm-adaptive" }

// Arena implements tm.System.
func (s *System) Arena() *mem.Arena { return s.cfg.Arena }

// NThreads implements tm.System.
func (s *System) NThreads() int { return s.cfg.Threads }

// Thread implements tm.System.
func (s *System) Thread(id int) tm.Thread { return s.threads[id] }

// Stats implements tm.System: the merge of both delegates' per-thread
// records (each delegate attributes its commits to itself in the per-block
// residency, so the merged view shows the protocol split per call site).
func (s *System) Stats() tm.Stats {
	per := make([]*tm.ThreadStats, 0, 2*s.cfg.Threads)
	for _, d := range s.dels {
		for i := 0; i < s.cfg.Threads; i++ {
			per = append(per, d.Thread(i).Stats())
		}
	}
	st := tm.Aggregate(per)
	st.Threads = s.cfg.Threads
	return st
}

// TraceEvents exposes both delegates' sampled tracer events (the tm layer's
// optional event source). The per-thread Stats facade returns fresh merged
// records that carry no ring, so the rings are read straight off the
// delegates' own worker records instead; tm.TraceEvents time-sorts the
// concatenation.
func (s *System) TraceEvents() []tm.TraceEvent {
	var evs []tm.TraceEvent
	for _, d := range s.dels {
		for i := 0; i < s.cfg.Threads; i++ {
			evs = append(evs, d.Thread(i).Stats().Tracer.Snapshot()...)
		}
	}
	return evs
}

// Current returns the registry name of the active delegate (waiting out an
// in-progress handoff, so it never reports the transient switching state).
func (s *System) Current() string {
	for {
		if m := s.mode.Load(); m >= 0 {
			return s.dels[m].Name()
		}
		runtime.Gosched()
	}
}

// Delegates returns the (read, write) delegate names.
func (s *System) Delegates() (read, write string) {
	return s.dels[modeRead].Name(), s.dels[modeWrite].Name()
}

// Switches returns how many protocol handoffs have completed.
func (s *System) Switches() uint64 { return s.switches.Load() }

// ForceMode performs an immediate quiesce-and-handoff to the named
// delegate, bypassing the sampling policy (test and experiment hook; the
// policy may switch back at the next window). It must not be called from
// inside an atomic block.
func (s *System) ForceMode(name string) error {
	for m := int32(0); m < 2; m++ {
		if s.dels[m].Name() == name {
			s.switchTo(m)
			return nil
		}
	}
	read, write := s.Delegates()
	return fmt.Errorf("adaptive: %q is not a delegate (have %s, %s)", name, read, write)
}

// switchTo performs the epoch handoff to mode m: park the mode at
// modeSwitching so no new block can claim a delegate, wait until every
// worker's flag is clear (all in-flight blocks committed — the quiesce),
// then install m. A no-op without a handoff if m is already active.
func (s *System) switchTo(m int32) {
	s.switchMu.Lock()
	defer s.switchMu.Unlock()
	if s.mode.Load() == m {
		return
	}
	s.mode.Store(modeSwitching)
	for _, t := range s.threads {
		for t.active.Load() != 0 {
			s.cfg.Watch.Poll()
			runtime.Gosched()
		}
	}
	// Failpoint: stall the handoff while the whole team is quiesced — the
	// widest window the meta-runtime can hold everyone parked.
	s.chaos.Stall(chaos.AdaptiveHandoff, 0)
	// The outgoing delegate's tenure may have invalidated state the
	// incoming one caches off the shared arena (stm-mv's version rings, to
	// which the other delegate's commits never append). Notify the
	// delegate being activated while the team is quiesced, so no
	// transaction can observe the stale state.
	if h, ok := s.dels[m].(handoffAware); ok {
		h.OnHandoff()
	}
	s.mode.Store(m)
	s.switches.Add(1)
}

// handoffAware is the optional delegate interface for runtimes that cache
// arena-derived state another delegate's tenure can silently invalidate.
// OnHandoff is called on the delegate about to be activated, after the
// quiesce completes and before any of its transactions can start.
type handoffAware interface {
	OnHandoff()
}

// flush deposits one worker's batched signals into the shared window and,
// when the batch crossed a window boundary, evaluates the selection
// policy. Called between blocks — never with the caller's epoch flag set —
// so the evaluator's switchTo cannot deadlock on its own thread.
func (s *System) flush(commits, aborts, loads, stores uint64) {
	if aborts != 0 {
		s.wAborts.Add(aborts)
	}
	s.wLoads.Add(loads)
	s.wStores.Add(stores)
	n := s.wCommits.Add(commits)
	w := uint64(s.cfg.AdaptiveWindow)
	if n/w == (n-commits)/w {
		return
	}
	s.evaluate()
}

// evaluate snapshots the window, applies the policy with hysteresis, and
// performs the handoff when the signals have persisted. TryLock: if some
// other thread is mid-evaluation the window is simply dropped — sampling,
// not accounting.
func (s *System) evaluate() {
	if !s.ctl.TryLock() {
		return
	}
	defer s.ctl.Unlock()
	commits := s.wCommits.Swap(0)
	aborts := s.wAborts.Swap(0)
	loads := s.wLoads.Swap(0)
	stores := s.wStores.Swap(0)
	if s.ctl.cooldown > 0 {
		s.ctl.cooldown--
		return
	}
	cur := s.mode.Load()
	desired := desire(cur, s.cfg.Threads, commits, aborts, loads, stores)
	if desired == cur {
		s.ctl.streak = 0
		return
	}
	if s.ctl.pending != desired {
		s.ctl.pending, s.ctl.streak = desired, 1
	} else {
		s.ctl.streak++
	}
	if s.ctl.streak < s.cfg.AdaptiveHysteresis {
		return
	}
	s.ctl.streak = 0
	s.ctl.cooldown = cooldownWindows
	s.switchTo(desired)
}

// desire is the pure selection policy: which delegate the window's signals
// argue for, given the current mode (the dead band between readDomFrac and
// writeHeavyFrac resolves to cur).
func desire(cur int32, threads int, commits, aborts, loads, stores uint64) int32 {
	if threads < minWriteThreads {
		return modeRead
	}
	barriers := loads + stores
	if barriers == 0 || aborts+commits == 0 {
		return cur
	}
	writeFrac := float64(stores) / float64(barriers)
	abortRate := float64(aborts) / float64(aborts+commits)
	switch {
	case writeFrac >= writeHeavyFrac,
		abortRate >= abortHeavy && writeFrac > readDomFrac:
		return modeWrite
	case writeFrac <= readDomFrac && abortRate < abortHeavy:
		return modeRead
	default:
		return cur
	}
}

// adaptiveThread is the per-worker facade over the two delegate threads.
type adaptiveThread struct {
	id  int
	sys *System
	del [2]tm.Thread

	// active is the worker's epoch flag: 0 while idle, mode+1 while a
	// block runs on that delegate. Stored by the owner, read by switchTo.
	active atomic.Int32

	// Batched window sampling, owner-thread only (see flushEvery):
	// bCommits counts blocks since the last flush; last* remember the
	// delegates' cumulative counters at that flush, so the flush reads one
	// delta per batch instead of one per block.
	bCommits                          uint64
	lastAborts, lastLoads, lastStores uint64

	_ [64]byte // pad flags apart (switchTo scans them cross-thread)
}

// ID implements tm.Thread.
func (t *adaptiveThread) ID() int { return t.id }

// Stats implements tm.Thread: a merged snapshot of this worker's records in
// both delegates. Unlike the static runtimes' accessor it returns a fresh
// record per call, not a live one.
func (t *adaptiveThread) Stats() *tm.ThreadStats {
	merged := &tm.ThreadStats{}
	merged.Merge(t.del[modeRead].Stats())
	merged.Merge(t.del[modeWrite].Stats())
	return merged
}

// Atomic implements tm.Thread.
func (t *adaptiveThread) Atomic(fn func(tm.Tx)) { t.AtomicAt(tm.NoBlock, fn) }

// AtomicAt implements tm.Thread: claim the active delegate through the
// epoch-flag protocol, run the block on it, then sample its outcome from
// the delegate's own accounting (delta of the per-thread record, which
// only this worker writes).
func (t *adaptiveThread) AtomicAt(b tm.BlockID, fn func(tm.Tx)) {
	s := t.sys
	var m int32
	for {
		m = s.mode.Load()
		if m < 0 {
			// Handoff in progress: wait for the new mode to install.
			s.cfg.Watch.Poll()
			runtime.Gosched()
			continue
		}
		// Claim m, then re-check it. The store/load pair pairs with
		// switchTo's mode store / flag scan (both sequentially consistent):
		// either we see the parked mode and retreat, or switchTo sees our
		// claim and waits the block out.
		t.active.Store(m + 1)
		if s.mode.Load() == m {
			break
		}
		t.active.Store(0)
	}
	t.runOn(t.del[m], b, fn)

	t.bCommits++
	if t.bCommits >= flushEvery {
		t.flushBatch()
	}
}

// runOn executes the block on the claimed delegate. The epoch flag is
// cleared on a defer so a panic escaping the block (an application bug
// re-raised by tm.Attempt) cannot leave the claim set and wedge every
// later handoff into a whole-team hang — the flag must be clear by the
// time the caller flushes the window, because a window evaluation may
// perform a handoff that waits on this very flag.
func (t *adaptiveThread) runOn(d tm.Thread, b tm.BlockID, fn func(tm.Tx)) {
	defer t.active.Store(0)
	d.AtomicAt(b, fn)
}

// flushBatch deposits the last flushEvery blocks' signals into the window.
// The delta is read off the delegates' cumulative per-thread counters
// (which only this worker advances), so the per-block fast path does no
// sampling at all — one pair of counter reads per batch. The window does
// not care which delegate generated the barriers: it samples the workload's
// shape, not the protocol's.
func (t *adaptiveThread) flushBatch() {
	var aborts, loads, stores uint64
	for _, d := range t.del {
		st := d.Stats()
		aborts += st.Aborts
		loads += st.Loads
		stores += st.Stores
	}
	t.sys.flush(t.bCommits, aborts-t.lastAborts, loads-t.lastLoads, stores-t.lastStores)
	t.lastAborts, t.lastLoads, t.lastStores = aborts, loads, stores
	t.bCommits = 0
}
