package tm

import (
	"testing"
	"testing/quick"

	"github.com/stamp-go/stamp/internal/mem"
)

func TestHistMeanAndPercentile(t *testing.T) {
	var h Hist
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if mean := h.Mean(); mean != 50.5 {
		t.Fatalf("mean = %v", mean)
	}
	if p := h.Percentile(0.90); p != 90 {
		t.Fatalf("p90 = %d", p)
	}
	if p := h.Percentile(1.0); p != 100 {
		t.Fatalf("p100 = %d", p)
	}
	if p := h.Percentile(0.0); p != 1 {
		t.Fatalf("p0 = %d", p)
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Mean() != 0 || h.Percentile(0.9) != 0 || h.N() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
}

func TestHistNegativeClamped(t *testing.T) {
	var h Hist
	h.Add(-5)
	if h.Percentile(1) != 0 {
		t.Fatal("negative observation not clamped to 0")
	}
}

func TestHistOverflowBucket(t *testing.T) {
	var h Hist
	h.Add(histCap + 100)
	if p := h.Percentile(0.99); p != histCap {
		t.Fatalf("overflow percentile = %d, want %d", p, histCap)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for i := 0; i < 10; i++ {
		a.Add(1)
		b.Add(3)
	}
	a.Merge(&b)
	if a.N() != 20 || a.Mean() != 2 {
		t.Fatalf("merge: N=%d mean=%v", a.N(), a.Mean())
	}
}

func TestHistPercentileMatchesExact(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var h Hist
		counts := make([]int, 256)
		for _, v := range raw {
			h.Add(int(v))
			counts[v]++
		}
		// exact p90: smallest v with cumulative >= ceil-ish target
		target := int(0.9 * float64(len(raw)))
		if target == 0 {
			target = 1
		}
		cum, exact := 0, 255
		for v, c := range counts {
			cum += c
			if cum >= target {
				exact = v
				break
			}
		}
		return h.Percentile(0.9) == exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregate(t *testing.T) {
	a := &ThreadStats{Starts: 3, Commits: 3, Aborts: 1, Loads: 10, Stores: 5}
	b := &ThreadStats{Starts: 2, Commits: 2, Aborts: 3, Loads: 4, Stores: 1}
	s := Aggregate([]*ThreadStats{a, b})
	if s.Threads != 2 || s.Total.Commits != 5 || s.Total.Aborts != 4 {
		t.Fatalf("aggregate wrong: %+v", s.Total)
	}
	if r := s.RetriesPerTx(); r != 0.8 {
		t.Fatalf("retries/tx = %v", r)
	}
}

func TestRetriesPerTxEmpty(t *testing.T) {
	var s Stats
	if s.RetriesPerTx() != 0 {
		t.Fatal("empty stats retries != 0")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Threads != 1 || c.CapacityLines != 2048 || c.BackoffAfter != 3 || c.PriorityAfter != 32 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{Threads: 7, CapacityLines: 16}.Defaults()
	if c2.Threads != 7 || c2.CapacityLines != 16 {
		t.Fatalf("explicit values overwritten: %+v", c2)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Threads: 1}).Validate(); err == nil {
		t.Fatal("nil arena accepted")
	}
	a := mem.NewArena(64)
	if err := (Config{Arena: a, Threads: 0}).Validate(); err == nil {
		t.Fatal("zero threads accepted")
	}
	if err := (Config{Arena: a, Threads: 65}).Validate(); err == nil {
		t.Fatal("65 threads accepted")
	}
	if err := (Config{Arena: a, Threads: 16}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestSpinReturns(t *testing.T) {
	Spin(0)
	Spin(10_000)
}

func TestAttemptConvertsRetry(t *testing.T) {
	arena := mem.NewArena(64)
	s, err := NewSeq(Config{Arena: arena, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	th := s.threads[0]
	th.tx.reset()
	if ok := Attempt(&th.tx, func(Tx) { Retry() }); ok {
		t.Fatal("retry reported as success")
	}
	if ok := Attempt(&th.tx, func(Tx) {}); !ok {
		t.Fatal("clean attempt reported as failure")
	}
}

func TestAttemptPropagatesRealPanic(t *testing.T) {
	arena := mem.NewArena(64)
	s, _ := NewSeq(Config{Arena: arena, Threads: 1})
	th := s.threads[0]
	defer func() {
		if recover() == nil {
			t.Fatal("application panic swallowed")
		}
	}()
	Attempt(&th.tx, func(Tx) { panic("app bug") })
}

func TestSeqProfileSets(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	s, err := NewSeq(Config{Arena: arena, Threads: 1, ProfileSets: true})
	if err != nil {
		t.Fatal(err)
	}
	base := arena.AllocLines(3 * mem.WordsPerLine)
	th := s.Thread(0)
	th.Atomic(func(tx Tx) {
		tx.Load(base)                        // line 1
		tx.Load(base + 1)                    // same line
		tx.Load(base + mem.WordsPerLine)     // line 2
		tx.Store(base+2*mem.WordsPerLine, 1) // line 3
	})
	st := s.Stats()
	if got := st.ReadSetP90(); got != 2 {
		t.Fatalf("read lines = %d, want 2", got)
	}
	if got := st.WriteSetP90(); got != 1 {
		t.Fatalf("write lines = %d, want 1", got)
	}
	if st.MeanLoads() != 3 || st.MeanStores() != 1 {
		t.Fatalf("barrier means = %v/%v", st.MeanLoads(), st.MeanStores())
	}
}

func TestSeqEarlyReleaseDropsProfiledLine(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	s, _ := NewSeq(Config{Arena: arena, Threads: 1, ProfileSets: true})
	base := arena.AllocLines(mem.WordsPerLine)
	s.Thread(0).Atomic(func(tx Tx) {
		tx.Load(base)
		tx.EarlyRelease(base)
	})
	if got := s.Stats().ReadSetP90(); got != 0 {
		t.Fatalf("read lines after release = %d", got)
	}
}

func TestFloatHelpers(t *testing.T) {
	arena := mem.NewArena(64)
	d := mem.Direct{A: arena}
	a := arena.Alloc(1)
	StoreF64(d, a, -3.25)
	if got := LoadF64(d, a); got != -3.25 {
		t.Fatalf("LoadF64 = %v", got)
	}
	StoreInt(d, a, -42)
	if got := LoadInt(d, a); got != -42 {
		t.Fatalf("LoadInt = %v", got)
	}
}
