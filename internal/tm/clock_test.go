package tm

import (
	"testing"
	"unsafe"
)

func TestClockNames(t *testing.T) {
	want := []string{"gv1", "gv4", "gv5"}
	got := ClockNames()
	if len(got) != len(want) {
		t.Fatalf("ClockNames() = %v", got)
	}
	for i, n := range want {
		if got[i] != n {
			t.Fatalf("ClockNames() = %v, want %v", got, want)
		}
		if ClockDescription(n) == "" {
			t.Fatalf("scheme %q has no description", n)
		}
	}
	if ClockDescription("gv9") != "" {
		t.Fatal("unknown scheme has a description")
	}
}

func TestNewVersionClockSelection(t *testing.T) {
	if c, err := NewVersionClock(Config{}); err != nil || c.Name() != DefaultClock {
		t.Fatalf("empty Clock: clock=%v err=%v", c, err)
	}
	for _, name := range ClockNames() {
		c, err := NewVersionClock(Config{Clock: name})
		if err != nil || c.Name() != name {
			t.Fatalf("Clock=%q: clock=%v err=%v", name, c, err)
		}
	}
	if _, err := NewVersionClock(Config{Clock: "gv9"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// TestGV1Semantics: every commit fetch-adds; validation is skipped exactly
// when no commit intervened since begin.
func TestGV1Semantics(t *testing.T) {
	c, _ := NewVersionClock(Config{Clock: "gv1"})
	rv := c.Begin()
	wv, validate := c.CommitTick(rv)
	if wv != rv+1 || validate {
		t.Fatalf("uncontended tick: wv=%d validate=%v (rv=%d)", wv, validate, rv)
	}
	// A commit between begin and tick forces validation.
	rv = c.Begin()
	c.CommitTick(c.Begin()) // an intervening committer
	wv, validate = c.CommitTick(rv)
	if wv != rv+2 || !validate {
		t.Fatalf("contended tick: wv=%d validate=%v (rv=%d)", wv, validate, rv)
	}
	c.OnAbort(rv)
	if c.Now() != wv {
		t.Fatal("gv1 OnAbort moved the clock")
	}
}

// TestGV4PassOnFailure: a tick that loses the CAS race adopts the winner's
// value (strictly newer than the loser's snapshot) without writing the
// clock, and an uncontended tick from the snapshot skips validation.
func TestGV4PassOnFailure(t *testing.T) {
	g := &gv4Clock{}
	rv := g.Begin()
	wv, validate := g.CommitTick(rv)
	if wv != rv+1 || validate {
		t.Fatalf("uncontended tick: wv=%d validate=%v", wv, validate)
	}
	// Simulate the pass-on-failure window: the clock advances between the
	// committer's load and its CAS. The committer must adopt a value > rv
	// and must not advance the clock further.
	rv = g.Begin()
	g.c.Add(3) // three committers win the race
	now := g.Now()
	wv, validate = g.CommitTick(rv)
	if !validate {
		t.Fatal("contended tick skipped validation")
	}
	if wv <= rv {
		t.Fatalf("wv=%d not newer than rv=%d", wv, rv)
	}
	// The tick CASed from its own load of the current value, so it either
	// installed now+1 or (if it lost another race) adopted a newer value;
	// either way the clock moved at most one past the pre-tick value.
	if g.Now() > now+1 {
		t.Fatalf("clock overshot: %d, pre-tick %d", g.Now(), now)
	}
}

// TestGV5NoTickAndAbortBump: commits never write the clock; the abort hook
// advances a stuck epoch by exactly one.
func TestGV5NoTickAndAbortBump(t *testing.T) {
	g := &gv5Clock{}
	rv := g.Begin()
	for i := 0; i < 5; i++ {
		wv, validate := g.CommitTick(rv)
		if wv != rv+1 || !validate {
			t.Fatalf("tick %d: wv=%d validate=%v", i, wv, validate)
		}
	}
	if g.Now() != rv {
		t.Fatalf("gv5 commit moved the clock to %d", g.Now())
	}
	g.OnAbort(rv)
	if g.Now() != rv+1 {
		t.Fatalf("OnAbort: clock=%d, want %d", g.Now(), rv+1)
	}
	// A second abort from the old snapshot must not double-advance.
	g.OnAbort(rv)
	if g.Now() != rv+1 {
		t.Fatalf("stale OnAbort moved the clock to %d", g.Now())
	}
}

// TestPaddedUint64Isolation pins the layout contract: the atomic word of
// two adjacent PaddedUint64s can never land on the same cache line, and
// the accessors behave like sync/atomic.
func TestPaddedUint64Isolation(t *testing.T) {
	var pair [2]PaddedUint64
	a0 := uintptr(unsafe.Pointer(&pair[0].v))
	a1 := uintptr(unsafe.Pointer(&pair[1].v))
	if d := a1 - a0; d < 64 {
		t.Fatalf("padded words only %d bytes apart", d)
	}
	pair[0].Store(41)
	if pair[0].Add(1) != 42 || pair[0].Load() != 42 {
		t.Fatal("Add/Load broken")
	}
	if !pair[0].CompareAndSwap(42, 7) || pair[0].Load() != 7 {
		t.Fatal("CompareAndSwap broken")
	}
	if pair[1].Load() != 0 {
		t.Fatal("neighbor clobbered")
	}
}
