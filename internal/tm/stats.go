package tm

import "github.com/stamp-go/stamp/internal/tm/trace"

// Hist is a simple exact histogram over small non-negative integers, used
// for per-transaction read/write-set sizes and barrier counts (Table VI
// reports means and 90th percentiles of these distributions).
type Hist struct {
	counts   []uint64
	overflow uint64 // values >= histCap
	n        uint64
	sum      uint64
}

// histCap bounds histogram memory; transactional set sizes beyond this are
// folded into the overflow bucket (still counted in mean as histCap).
const histCap = 1 << 16

// Add records one observation.
func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
	}
	h.n++
	h.sum += uint64(v)
	if v >= histCap {
		h.overflow++
		return
	}
	if v >= len(h.counts) {
		grow := make([]uint64, v+1)
		copy(grow, h.counts)
		h.counts = grow
	}
	h.counts[v]++
}

// N returns the number of observations.
func (h *Hist) N() uint64 { return h.n }

// Mean returns the arithmetic mean (0 for an empty histogram).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Percentile returns the smallest value v such that at least p (0..1) of the
// observations are <= v. Overflowed observations report histCap.
func (h *Hist) Percentile(p float64) int {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(p * float64(h.n))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for v, c := range h.counts {
		cum += c
		if cum >= target {
			return v
		}
	}
	return histCap
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	h.n += o.n
	h.sum += o.sum
	h.overflow += o.overflow
	if len(o.counts) > len(h.counts) {
		grow := make([]uint64, len(o.counts))
		copy(grow, h.counts)
		h.counts = grow
	}
	for v, c := range o.counts {
		h.counts[v] += c
	}
}

// BlockStats attributes transactional outcomes to one atomic-block call
// site (see NewBlock / Thread.AtomicAt). Loads and Stores count the
// barriers of committed attempts, so Loads/Commits and Stores/Commits are
// the block's mean read- and write-set sizes in barrier terms (the same
// convention as the aggregate LoadsHist/StoresHist means). Residency()
// reports commits per runtime name: on a static runtime all under that
// runtime's own name, while merged stm-adaptive records show how the
// block's commits were split across the delegate protocols.
type BlockStats struct {
	Commits uint64
	Aborts  uint64
	Loads   uint64 // read barriers in committed attempts
	Stores  uint64 // write barriers in committed attempts

	// Causes breaks Aborts down by AbortCause (see RecordAbort); entries
	// sum to Aborts once the block's attempts have all completed.
	Causes [trace.NumCauses]uint64

	// Protocol residency. A live per-thread record only ever sees its own
	// runtime's name, so the hot path (RecordBlock, once per commit) is an
	// inline pointer-equal string compare and an add — no map operation. A
	// second protocol appears only when records are merged (stm-adaptive
	// folding its two delegates together), which spills into the map.
	proto        string
	protoCommits uint64
	spill        map[string]uint64
}

// addResidency credits n commits under proto (see the field comment for
// why the single-protocol case stays off the map).
func (b *BlockStats) addResidency(proto string, n uint64) {
	switch {
	case b.proto == proto:
		b.protoCommits += n
	case b.proto == "" && b.spill == nil:
		b.proto, b.protoCommits = proto, n
	default:
		if b.spill == nil {
			b.spill = make(map[string]uint64, 2)
		}
		b.spill[proto] += n
	}
}

// Residency returns the block's commits per runtime name (a fresh map per
// call).
func (b *BlockStats) Residency() map[string]uint64 {
	m := make(map[string]uint64, 1+len(b.spill))
	if b.protoCommits != 0 {
		m[b.proto] = b.protoCommits
	}
	for proto, n := range b.spill {
		m[proto] += n
	}
	return m
}

// MeanLoads returns the block's mean read barriers per committed block.
func (b BlockStats) MeanLoads() float64 {
	if b.Commits == 0 {
		return 0
	}
	return float64(b.Loads) / float64(b.Commits)
}

// MeanStores returns the block's mean write barriers per committed block.
func (b BlockStats) MeanStores() float64 {
	if b.Commits == 0 {
		return 0
	}
	return float64(b.Stores) / float64(b.Commits)
}

// merge folds o into b.
func (b *BlockStats) merge(o *BlockStats) {
	b.Commits += o.Commits
	b.Aborts += o.Aborts
	b.Loads += o.Loads
	b.Stores += o.Stores
	for c := range o.Causes {
		b.Causes[c] += o.Causes[c]
	}
	if o.protoCommits != 0 {
		b.addResidency(o.proto, o.protoCommits)
	}
	for proto, n := range o.spill {
		b.addResidency(proto, n)
	}
}

// ThreadStats accumulates one worker's transactional statistics. Workers
// update their own record without synchronization; records are merged after
// the team joins.
type ThreadStats struct {
	Starts  uint64 // atomic blocks entered
	Commits uint64 // atomic blocks committed (== Starts after completion)
	Aborts  uint64 // failed attempts (retries)

	Loads  uint64 // read barriers in committed attempts
	Stores uint64 // write barriers in committed attempts
	Wasted uint64 // barriers in aborted attempts (lost work proxy)

	TxTimeNs int64 // wall time inside Atomic, all attempts

	// Contention-manager accounting (see tm.ContentionManager).
	CMWaits      uint64 // delays applied by the policy's OnAbort hook
	CMWaitNs     int64  // time spent in those delays
	CMSerialized uint64 // escalations triggered by the serialize policy's threshold

	// Starvation-escalation accounting (see Config.StarveAfter): blocks
	// that acquired the irrevocability token, and the commits they then
	// performed alone. Escalations == EscalatedCommits on a completed run
	// (an escalated block always commits — that is the guarantee).
	Escalations      uint64
	EscalatedCommits uint64

	// NOrec commit-combining accounting (see internal/tm/norec).
	CombinedCommits  uint64 // commits absorbed by another thread's lock acquisition
	CombineFallbacks uint64 // combining requests rejected (read set invalid under the combiner)

	// Per committed transaction distributions.
	LoadsHist      Hist // read barriers
	StoresHist     Hist // write barriers
	ReadLinesHist  Hist // unique 32-byte lines read
	WriteLinesHist Hist // unique 32-byte lines written

	// AbortCauses breaks Aborts down by taxonomy cause (see RecordAbort);
	// the conformance suite asserts the entries sum to Aborts with the
	// CauseUnknown slot at zero.
	AbortCauses [trace.NumCauses]uint64

	// Conflicts is the per-thread top-K heatmap of contended locations
	// (RecordAbort feeds it; sketches merge at aggregation).
	Conflicts trace.ConflictSketch

	// Tracer is the thread's sampled event ring (nil when tracing is off;
	// see Config.NewTracer). Rings are not merged — TraceEvents collects
	// them.
	Tracer *trace.Ring

	// Blocks attributes the counters above to atomic-block call sites,
	// indexed by BlockID (grown on demand; see RecordBlock).
	Blocks []BlockStats

	_ [64]byte // pad against false sharing between worker slots
}

// blockAt returns the call site's BlockStats slot, growing Blocks on demand
// (shared by RecordBlock and RecordAbort).
func (s *ThreadStats) blockAt(b BlockID) *BlockStats {
	if int(b) >= len(s.Blocks) {
		n := NumBlocks()
		if n <= int(b) {
			n = int(b) + 1
		}
		grow := make([]BlockStats, n)
		copy(grow, s.Blocks)
		s.Blocks = grow
	}
	return &s.Blocks[b]
}

// RecordAbort attributes one failed attempt of call site b: the taxonomy
// cause (both aggregate and per block) and, when the abort has an
// identifiable location, the conflict-heatmap entry with the enemy's block
// where known. Runtimes call it once per abort inside the retry loop,
// right where they bump the aggregate Aborts counter; it does not bump
// Aborts itself.
func (s *ThreadStats) RecordAbort(b BlockID, cause trace.AbortCause, key trace.Key, blame BlockID) {
	s.AbortCauses[cause]++
	s.blockAt(b).Causes[cause]++
	s.Conflicts.Record(key, cause, int32(blame))
}

// RecordBlock attributes one committed atomic block to call site b: one
// commit under runtime proto, the attempt's failed tries, and the committed
// attempt's barrier counts. Runtimes call it once per completed Atomic /
// AtomicAt, right where they bump the aggregate Commits counter.
func (s *ThreadStats) RecordBlock(b BlockID, proto string, aborts, loads, stores uint64) {
	blk := s.blockAt(b)
	blk.Commits++
	blk.Aborts += aborts
	blk.Loads += loads
	blk.Stores += stores
	blk.addResidency(proto, 1)
}

// Merge folds o into s. It exists for aggregation across worker records
// (and, in the adaptive meta-runtime, across delegate records); workers
// never share a record during a run.
func (s *ThreadStats) Merge(o *ThreadStats) { s.merge(o) }

// merge folds o into s (used for aggregation only).
func (s *ThreadStats) merge(o *ThreadStats) {
	s.Starts += o.Starts
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.Wasted += o.Wasted
	s.TxTimeNs += o.TxTimeNs
	s.CMWaits += o.CMWaits
	s.CMWaitNs += o.CMWaitNs
	s.CMSerialized += o.CMSerialized
	s.Escalations += o.Escalations
	s.EscalatedCommits += o.EscalatedCommits
	s.CombinedCommits += o.CombinedCommits
	s.CombineFallbacks += o.CombineFallbacks
	for c := range o.AbortCauses {
		s.AbortCauses[c] += o.AbortCauses[c]
	}
	s.Conflicts.Merge(&o.Conflicts)
	s.LoadsHist.Merge(&o.LoadsHist)
	s.StoresHist.Merge(&o.StoresHist)
	s.ReadLinesHist.Merge(&o.ReadLinesHist)
	s.WriteLinesHist.Merge(&o.WriteLinesHist)
	if len(o.Blocks) > len(s.Blocks) {
		grow := make([]BlockStats, len(o.Blocks))
		copy(grow, s.Blocks)
		s.Blocks = grow
	}
	for i := range o.Blocks {
		s.Blocks[i].merge(&o.Blocks[i])
	}
}

// Stats is the aggregate view over all worker slots of a system.
type Stats struct {
	Total   ThreadStats
	Threads int
}

// Aggregate merges per-thread records into a Stats value.
func Aggregate(per []*ThreadStats) Stats {
	var s Stats
	s.Threads = len(per)
	for _, t := range per {
		s.Total.merge(t)
	}
	return s
}

// BlockRow is one per-block line of a run report: the registered call-site
// name plus its attributed counters.
type BlockRow struct {
	ID   BlockID
	Name string
	BlockStats
}

// Blocks returns the per-block breakdown of the run: one row per registered
// call site with any committed blocks, in registry (registration) order.
// Rows for NoBlock appear under "(unattributed)".
func (s Stats) Blocks() []BlockRow {
	var rows []BlockRow
	for i := range s.Total.Blocks {
		b := s.Total.Blocks[i]
		if b.Commits == 0 && b.Aborts == 0 {
			continue
		}
		rows = append(rows, BlockRow{ID: BlockID(i), Name: BlockName(BlockID(i)), BlockStats: b})
	}
	return rows
}

// AbortCauses returns the aggregate per-cause abort counters, indexed by
// AbortCause (CauseNames gives the matching display names). Entries sum to
// Total.Aborts on a completed run, with the CauseUnknown slot at zero.
func (s Stats) AbortCauses() [trace.NumCauses]uint64 { return s.Total.AbortCauses }

// TopConflicts returns the run's conflict heatmap, hottest location first:
// contended addresses/stripes/lines with their abort-cause mix and the
// majority-blamed enemy block (NoBlock when no owner was identifiable).
func (s Stats) TopConflicts() []trace.ConflictRow { return s.Total.Conflicts.Top() }

// RetriesPerTx returns mean aborts per committed transaction.
func (s Stats) RetriesPerTx() float64 {
	if s.Total.Commits == 0 {
		return 0
	}
	return float64(s.Total.Aborts) / float64(s.Total.Commits)
}

// MeanLoads returns mean read barriers per committed transaction.
func (s Stats) MeanLoads() float64 { return s.Total.LoadsHist.Mean() }

// MeanStores returns mean write barriers per committed transaction.
func (s Stats) MeanStores() float64 { return s.Total.StoresHist.Mean() }

// ReadSetP90 returns the 90th percentile read-set size in 32-byte lines.
func (s Stats) ReadSetP90() int { return s.Total.ReadLinesHist.Percentile(0.90) }

// WriteSetP90 returns the 90th percentile write-set size in 32-byte lines.
func (s Stats) WriteSetP90() int { return s.Total.WriteLinesHist.Percentile(0.90) }
