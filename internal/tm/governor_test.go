package tm

import (
	"testing"
	"time"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm/trace"
)

func governorPool(t *testing.T, cfg Config) *CMPool {
	t.Helper()
	p, err := NewCMPool(cfg.Defaults(), DefaultCM)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestIrrevocableHolderNeverAborted pins the uniform arbitration guarantee:
// under every registered policy, ShouldAbort against an irrevocable
// (escalated or serialized) holder returns false — the requester waits the
// bounded probe window instead of killing a transaction that must commit.
func TestIrrevocableHolderNeverAborted(t *testing.T) {
	for _, name := range CMNames() {
		cfg := Config{Arena: mem.NewArena(64), Threads: 2, CM: name}
		p := governorPool(t, cfg)
		var st0, st1 ThreadStats
		holder := p.ForThread(0, &st0).(*governor)
		requester := p.ForThread(1, &st1)
		holder.OnStart()
		requester.OnStart()
		holder.irrevocable.Store(true)
		if requester.ShouldAbort(holder) {
			t.Errorf("%s: requester aborted an irrevocable holder", name)
		}
		if holder.Priority() != ^uint64(0) {
			t.Errorf("%s: irrevocable holder priority = %d", name, holder.Priority())
		}
		if holder.ShouldAbort(requester) {
			t.Errorf("%s: irrevocable holder yielded to a requester", name)
		}
		holder.irrevocable.Store(false)
	}
}

// TestStarvationEscalation: past StarveAfter aborts, any policy (here karma)
// escalates to irrevocable mode, commits, and resets all per-block policy
// state at commit so escalation bias does not leak into the next block.
func TestStarvationEscalation(t *testing.T) {
	cfg := Config{Arena: mem.NewArena(64), Threads: 2, CM: "karma", StarveAfter: 3}
	p := governorPool(t, cfg)
	var st ThreadStats
	g := p.ForThread(0, &st).(*governor)

	g.OnStart()
	g.OnAbort(1)
	g.OnAbort(2)
	if st.Escalations != 0 {
		t.Fatal("escalated below StarveAfter")
	}
	g.OnAbort(3)
	if st.Escalations != 1 {
		t.Fatalf("Escalations = %d, want 1", st.Escalations)
	}
	if !g.irrevocable.Load() {
		t.Fatal("not irrevocable after escalation")
	}
	if p.gatePending.Load() != 1 || p.gateLock.Load() != 1 {
		t.Fatal("gate not held after escalation")
	}
	g.OnCommit()
	if st.EscalatedCommits != 1 {
		t.Fatalf("EscalatedCommits = %d, want 1", st.EscalatedCommits)
	}
	if g.irrevocable.Load() {
		t.Fatal("still irrevocable after commit")
	}
	if p.gatePending.Load() != 0 || p.gateLock.Load() != 0 {
		t.Fatal("gate not released after escalated commit")
	}
	// Centralized OnCommit reset: karma accrued during the starving block
	// (one per abort) must be gone.
	if g.Priority() != 0 {
		t.Fatalf("karma after escalated commit = %d", g.Priority())
	}
}

// TestAgeEscalation: with StarveAfterNs armed, a long-lived block escalates
// on its next abort even though its abort count is below StarveAfter.
func TestAgeEscalation(t *testing.T) {
	cfg := Config{Arena: mem.NewArena(64), Threads: 1, CM: "randlin", StarveAfterNs: 1}
	p := governorPool(t, cfg)
	var st ThreadStats
	g := p.ForThread(0, &st).(*governor)
	g.OnStart()
	time.Sleep(time.Millisecond)
	g.OnAbort(1)
	if st.Escalations != 1 {
		t.Fatalf("Escalations = %d, want 1 (age trigger)", st.Escalations)
	}
	g.OnCommit()
}

// TestStarveAfterDisabled: a negative StarveAfter turns abort-count
// escalation off entirely.
func TestStarveAfterDisabled(t *testing.T) {
	cfg := Config{Arena: mem.NewArena(64), Threads: 1, CM: "none", StarveAfter: -1}
	p := governorPool(t, cfg)
	if p.starveAfter > 0 {
		t.Fatalf("starveAfter = %d, want disabled", p.starveAfter)
	}
	var st ThreadStats
	g := p.ForThread(0, &st).(*governor)
	g.OnStart()
	g.OnAbort(100000)
	if st.Escalations != 0 {
		t.Fatal("escalated with StarveAfter < 0")
	}
	g.OnCommit()
}

// TestDisplacedCause: a requester that yields to a pending escalation is
// stamped killed-for-irrevocable by CauseOrDisplaced; the flag is one-shot,
// and a chaos-dropped wait keeps the site's natural cause.
func TestDisplacedCause(t *testing.T) {
	cfg := Config{Arena: mem.NewArena(64), Threads: 2, CM: "karma"}
	p := governorPool(t, cfg)
	var st0, st1 ThreadStats
	a := p.ForThread(0, &st0)
	b := p.ForThread(1, &st1)
	a.OnStart()
	b.OnStart()

	p.gatePending.Add(1) // simulate a third party announcing escalation
	if !b.ShouldAbort(a) {
		t.Fatal("requester did not yield to the pending escalation")
	}
	if got := CauseOrDisplaced(b, trace.CauseWriteWrite); got != trace.CauseKilledForIrrevocable {
		t.Fatalf("cause = %v, want killed-for-irrevocable", got)
	}
	if got := CauseOrDisplaced(b, trace.CauseWriteWrite); got != trace.CauseWriteWrite {
		t.Fatalf("displaced flag not consumed: second cause = %v", got)
	}
	p.gatePending.Add(-1)

	// Without a pending escalation the natural cause stands.
	if got := CauseOrDisplaced(b, trace.CauseStripeLockBusy); got != trace.CauseStripeLockBusy {
		t.Fatalf("cause without displacement = %v", got)
	}
	// Non-governor managers pass through.
	if got := CauseOrDisplaced(noneCM{}, trace.CauseSeqChanged); got != trace.CauseSeqChanged {
		t.Fatalf("non-governor pass-through = %v", got)
	}
}

// TestChaosWaitDrop: an armed cm-wait-drop site forces conflicts to abort
// (requester-loses) without touching the displaced flag, so the natural
// cause is kept.
func TestChaosWaitDrop(t *testing.T) {
	cfg := Config{Arena: mem.NewArena(64), Threads: 2, CM: "greedy", Chaos: "7:cm-wait-drop:1"}
	p := governorPool(t, cfg)
	var st0, st1 ThreadStats
	older := p.ForThread(0, &st0)
	younger := p.ForThread(1, &st1)
	older.OnStart()
	younger.OnStart()
	// Greedy would normally let the older transaction wait; the injector
	// drops the wait.
	if !older.ShouldAbort(younger) {
		t.Fatal("cm-wait-drop did not force the abort")
	}
	if got := CauseOrDisplaced(older, trace.CauseWriteWrite); got != trace.CauseWriteWrite {
		t.Fatalf("chaos drop changed the cause to %v", got)
	}
}

// TestEscalationDrainsPeers: an escalating block waits for the in-flight
// peer to finish its attempt, and newcomers park until the escalated block
// commits.
func TestEscalationDrainsPeers(t *testing.T) {
	cfg := Config{Arena: mem.NewArena(64), Threads: 2, CM: "none", StarveAfter: 1}
	p := governorPool(t, cfg)
	var st0, st1 ThreadStats
	a := p.ForThread(0, &st0)
	b := p.ForThread(1, &st1)

	b.OnStart() // peer is mid-attempt
	a.OnStart()
	escalated := make(chan struct{})
	go func() {
		a.OnAbort(1) // must block draining b's flag
		close(escalated)
	}()
	select {
	case <-escalated:
		t.Fatal("escalation completed while a peer was still in its attempt")
	case <-time.After(20 * time.Millisecond):
	}
	b.OnCommit() // peer drains
	select {
	case <-escalated:
	case <-time.After(2 * time.Second):
		t.Fatal("escalation still blocked after the peer drained")
	}
	// Newcomer parks until the escalated block commits.
	entered := make(chan struct{})
	go func() {
		b.OnStart()
		close(entered)
	}()
	select {
	case <-entered:
		t.Fatal("newcomer entered during an escalated block")
	case <-time.After(20 * time.Millisecond):
	}
	a.OnCommit()
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("newcomer still parked after the escalated commit")
	}
	b.OnCommit()
}

// TestWatchBasics: commit accounting, halt latch, and Poll unwinding.
func TestWatchBasics(t *testing.T) {
	var nilWatch *Watch
	nilWatch.Bump(0)
	nilWatch.Poll()
	if nilWatch.Commits() != 0 || nilWatch.Halted() || nilWatch.Reason() != "" {
		t.Fatal("nil watch is not inert")
	}

	w := NewWatch(2)
	w.Bump(0)
	w.Bump(1)
	w.Bump(1)
	if got := w.Commits(); got != 3 {
		t.Fatalf("Commits() = %d, want 3", got)
	}
	w.Poll() // not halted: no panic
	w.Halt("stalled for test")
	w.Halt("late reason loses")
	if !w.Halted() || w.Reason() != "stalled for test" {
		t.Fatalf("halt latch: halted=%v reason=%q", w.Halted(), w.Reason())
	}
	defer func() {
		hs, ok := recover().(HaltSignal)
		if !ok || hs.Reason != "stalled for test" {
			t.Fatalf("Poll recovered %v", hs)
		}
	}()
	w.Poll()
	t.Fatal("Poll did not panic after Halt")
}

// TestWatchUnparksGate: a worker parked at the governor's gate unwinds with
// HaltSignal when the watch halts, instead of spinning forever.
func TestWatchUnparksGate(t *testing.T) {
	w := NewWatch(2)
	cfg := Config{Arena: mem.NewArena(64), Threads: 2, CM: "none", Watch: w}
	p := governorPool(t, cfg)
	var st ThreadStats
	g := p.ForThread(0, &st)

	p.gatePending.Add(1) // a never-finishing escalation keeps the gate shut
	unwound := make(chan HaltSignal, 1)
	go func() {
		defer func() {
			if hs, ok := recover().(HaltSignal); ok {
				unwound <- hs
			}
		}()
		g.OnStart() // parks at the gate
	}()
	time.Sleep(10 * time.Millisecond)
	w.Halt("watchdog test")
	select {
	case hs := <-unwound:
		if hs.Reason != "watchdog test" {
			t.Fatalf("HaltSignal reason = %q", hs.Reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked worker did not unwind after Halt")
	}
	p.gatePending.Add(-1)
}
