package tm

import (
	"testing"

	"github.com/stamp-go/stamp/internal/tm/trace"
)

// TestThreadStatsMergeAsymmetric merges two worker records whose Blocks
// slices have different lengths (one worker saw a high block ID, the other
// only a low one) in both directions, asserting no per-cause counter,
// per-block cause entry, or conflict-sketch row is dropped either way —
// the silent-stats-loss regression this PR's aggregation changes guard
// against.
func TestThreadStatsMergeAsymmetric(t *testing.T) {
	mk := func() (long, short *ThreadStats) {
		long = &ThreadStats{}
		long.Aborts = 2
		long.RecordAbort(3, trace.CauseWriteWrite, trace.AddrKey(42), 2)
		long.RecordAbort(3, trace.CauseReadValidation, trace.AddrKey(42), 2)
		long.Commits = 1
		long.RecordBlock(3, "stm-lazy", 2, 10, 5)

		short = &ThreadStats{}
		short.Aborts = 1
		short.RecordAbort(1, trace.CauseSeqChanged, trace.StripeKey(7), 0)
		short.Commits = 1
		short.RecordBlock(1, "stm-norec", 1, 4, 2)
		return long, short
	}

	check := func(t *testing.T, dir string, m *ThreadStats) {
		t.Helper()
		if m.Aborts != 3 || m.Commits != 2 {
			t.Fatalf("%s: aborts/commits = %d/%d, want 3/2", dir, m.Aborts, m.Commits)
		}
		var sum uint64
		for _, n := range m.AbortCauses {
			sum += n
		}
		if sum != 3 {
			t.Errorf("%s: merged cause counters sum to %d, want 3 (%v)", dir, sum, m.AbortCauses)
		}
		for cause, want := range map[trace.AbortCause]uint64{
			trace.CauseWriteWrite:     1,
			trace.CauseReadValidation: 1,
			trace.CauseSeqChanged:     1,
		} {
			if m.AbortCauses[cause] != want {
				t.Errorf("%s: AbortCauses[%v] = %d, want %d", dir, cause, m.AbortCauses[cause], want)
			}
		}
		if len(m.Blocks) < 4 {
			t.Fatalf("%s: merged Blocks len = %d, want >= 4", dir, len(m.Blocks))
		}
		if m.Blocks[3].Causes[trace.CauseWriteWrite] != 1 ||
			m.Blocks[3].Causes[trace.CauseReadValidation] != 1 {
			t.Errorf("%s: block 3 causes = %v", dir, m.Blocks[3].Causes)
		}
		if m.Blocks[1].Causes[trace.CauseSeqChanged] != 1 {
			t.Errorf("%s: block 1 causes = %v", dir, m.Blocks[1].Causes)
		}
		rows := m.Conflicts.Top()
		if len(rows) != 2 {
			t.Fatalf("%s: merged heatmap rows = %+v, want 2 rows", dir, rows)
		}
		if rows[0].Key != trace.AddrKey(42) || rows[0].Count != 2 || rows[0].Blame != 2 {
			t.Errorf("%s: hottest row = %+v, want addr 42 count 2 blame 2", dir, rows[0])
		}
		if rows[1].Key != trace.StripeKey(7) || rows[1].Count != 1 {
			t.Errorf("%s: second row = %+v, want stripe 7 count 1", dir, rows[1])
		}
	}

	long, short := mk()
	long.Merge(short)
	check(t, "short into long", long)

	long, short = mk()
	short.Merge(long)
	check(t, "long into short", short)
}
