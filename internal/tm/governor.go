package tm

import (
	"runtime"
	"sync/atomic"
	"time"

	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/trace"
)

// The governor is the liveness layer every contention-management policy runs
// under. CMPool.ForThread wraps the selected policy in one, so all ten
// runtimes inherit three guarantees without touching their retry loops:
//
//   - starvation escalation: past Config.StarveAfter consecutive aborts (or
//     Config.StarveAfterNs of age, or the serialize policy's own threshold),
//     the block acquires the pool's global irrevocability token, drains
//     every in-flight peer, and runs alone with fault injection suppressed —
//     so it must commit. This is a guarantee, not a heuristic: it works
//     under every policy, including "none".
//   - watchdog polling: every attempt boundary and every wait loop the
//     governor owns polls Config.Watch, so a halted run unwinds with
//     HaltSignal instead of spinning forever.
//   - commit accounting: the governor bumps the watch's per-thread commit
//     slot and delegates OnCommit to the wrapped policy, which is where all
//     per-block policy state (karma, greedy timestamps, abort counters)
//     resets — an escalated block does not stay escalation-biased.
//
// The gate is a Dekker-style epoch protocol, not a reader-writer mutex, so
// every wait loop in it can poll the watch: each worker publishes an
// in-a-block flag on its own padded line (flags[id].Store(1), then re-check
// gatePending — sequentially consistent atomics make the store/load pair
// safe); an escalator publishes gatePending, then waits each flag out.
// Either the worker sees the pending escalation and parks, or the escalator
// sees the claim and waits for that attempt to finish — OnAbort and OnCommit
// run with no protocol locks held, so every in-flight attempt drains without
// the escalator's help, and the drain cannot deadlock.
type governor struct {
	inner ContentionManager
	pool  *CMPool
	id    int
	st    *ThreadStats

	// irrevocable is read cross-thread (Priority/ShouldAbort arbitration).
	irrevocable atomic.Bool
	// displaced is owner-thread only: set when ShouldAbort aborted the
	// caller to yield to a pending escalation, consumed by
	// CauseOrDisplaced at the abort site.
	displaced bool
	// t0 is the block's first-attempt wall clock (ns), stamped only when
	// the age trigger is armed.
	t0 int64
}

// Name returns the wrapped policy's registry name, so Result.CM and the
// stats surface keep reporting the selected policy.
func (g *governor) Name() string { return g.inner.Name() }

func (g *governor) OnStart() {
	p := g.pool
	p.watch.Poll()
	g.displaced = false
	if p.starveNs > 0 {
		g.t0 = time.Now().UnixNano()
	}
	g.enterGate()
	g.inner.OnStart()
}

// enterGate joins the in-a-block group, parking while an escalation is
// pending or running.
func (g *governor) enterGate() {
	p := g.pool
	for {
		p.flags[g.id].Store(1)
		if p.gatePending.Load() == 0 {
			return
		}
		// An escalator is draining or running: retreat and wait it out.
		p.flags[g.id].Store(0)
		for p.gatePending.Load() != 0 {
			p.watch.Poll()
			Spin(64)
			runtime.Gosched()
		}
	}
}

func (g *governor) OnAbort(aborts int) {
	p := g.pool
	if g.irrevocable.Load() {
		// Already alone; only an explicit Restart (or an HTM capacity
		// retry) can abort us here, and the next attempt keeps the token.
		p.watch.Poll()
		return
	}
	p.watch.Poll()
	viaSerialize := p.serializeAt > 0 && aborts >= p.serializeAt
	starving := p.starveAfter > 0 && aborts >= p.starveAfter
	if !starving && p.starveNs > 0 && g.t0 != 0 &&
		time.Now().UnixNano()-g.t0 >= p.starveNs {
		starving = true
	}
	if viaSerialize || starving {
		g.escalate(viaSerialize)
		return
	}
	if p.gatePending.Load() > 0 {
		// Someone else is escalating: leave the group so their drain
		// completes, wait, and rejoin before retrying.
		p.flags[g.id].Store(0)
		g.enterGate()
	}
	g.inner.OnAbort(aborts)
}

// escalate acquires the irrevocability token: publish the pending count
// (parking new entrants), leave the in-a-block group (we already rolled
// back, and a queued second escalator must not wait on our flag), take the
// token lock, drain every peer's flag, and rejoin as the sole runner with
// fault injection suppressed.
func (g *governor) escalate(viaSerialize bool) {
	p := g.pool
	p.gatePending.Add(1)
	p.flags[g.id].Store(0)
	for !p.gateLock.CompareAndSwap(0, 1) {
		p.watch.Poll()
		Spin(64)
		runtime.Gosched()
	}
	for i := range p.flags {
		if i == g.id {
			continue
		}
		for p.flags[i].Load() != 0 {
			p.watch.Poll()
			Spin(64)
			runtime.Gosched()
		}
	}
	p.flags[g.id].Store(1)
	p.chaos.Suppress(g.id, true)
	g.irrevocable.Store(true)
	g.st.Escalations++
	if viaSerialize {
		g.st.CMSerialized++
	}
}

func (g *governor) OnCommit() {
	p := g.pool
	if g.irrevocable.Load() {
		g.st.EscalatedCommits++
		g.irrevocable.Store(false)
		p.chaos.Suppress(g.id, false)
		p.flags[g.id].Store(0)
		p.gateLock.Store(0)
		p.gatePending.Add(-1)
	} else {
		p.flags[g.id].Store(0)
	}
	g.t0 = 0
	// The wrapped policy's OnCommit is the centralized reset point for all
	// per-block state (karma, greedy timestamps), escalated or not.
	g.inner.OnCommit()
	p.watch.Bump(g.id)
}

func (g *governor) Priority() uint64 {
	if g.irrevocable.Load() {
		return ^uint64(0)
	}
	return g.inner.Priority()
}

func (g *governor) ShouldAbort(enemy ContentionManager) bool {
	if g.irrevocable.Load() {
		// We run alone; any apparent conflict is stale metadata about to
		// clear. Wait it out (bounded by maxConflictProbes).
		return false
	}
	if e, ok := enemy.(*governor); ok && e.irrevocable.Load() {
		// Never abort at a conflict with an irrevocable (or serialized)
		// holder: it is guaranteed to commit and release promptly, so
		// waiting is bounded and aborting is wasted work — uniformly,
		// regardless of the wrapped policy.
		return false
	}
	p := g.pool
	if p.chaos.Fire(chaos.CMWaitDrop, g.id) {
		return true
	}
	if p.gatePending.Load() > 0 {
		// An escalator is waiting for us to finish: yield now rather than
		// probe the conflict for up to maxConflictProbes rounds. The
		// abort site stamps this as killed-for-irrevocable via
		// CauseOrDisplaced.
		g.displaced = true
		return true
	}
	return g.inner.ShouldAbort(enemy)
}

// AbandonBlock releases a block's contention-manager claims without a
// commit. The terminal alloc-exhaustion path calls it from the retry loop
// after the final abort is accounted, just before unwinding the block with
// AllocFailure: the thread leaves the in-a-block gate group (so a later
// escalator's drain never waits on a thread that is gone), and if the block
// itself had escalated to irrevocable mode it releases the token — parked
// peers resume — without counting an escalated commit. Per-block policy
// state resets through the wrapped policy's OnCommit, exactly as on a real
// block end. Safe on any ContentionManager; non-governor managers carry no
// cross-thread claims and need no cleanup.
func AbandonBlock(cm ContentionManager) {
	g, ok := cm.(*governor)
	if !ok {
		return
	}
	p := g.pool
	if g.irrevocable.Load() {
		g.irrevocable.Store(false)
		p.chaos.Suppress(g.id, false)
		p.flags[g.id].Store(0)
		p.gateLock.Store(0)
		p.gatePending.Add(-1)
	} else {
		p.flags[g.id].Store(0)
	}
	g.t0 = 0
	g.inner.OnCommit()
}

// CauseOrDisplaced resolves the abort cause at a WaitOrAbort conflict site:
// if cm's arbitration just aborted the caller to yield to a pending
// irrevocable escalation, the abort is attributed to killed-for-irrevocable;
// otherwise the site's natural cause stands. The displaced flag is consumed.
func CauseOrDisplaced(cm ContentionManager, natural trace.AbortCause) trace.AbortCause {
	if g, ok := cm.(*governor); ok && g.displaced {
		g.displaced = false
		return trace.CauseKilledForIrrevocable
	}
	return natural
}
