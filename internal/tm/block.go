package tm

import "sync"

// BlockID identifies one atomic-block call site for per-block statistics
// attribution (the paper's per-region breakdowns: genome's phases, the
// vacation action mix, ...). Call sites obtain a stable ID once with
// NewBlock and pass it to Thread.AtomicAt; plain Thread.Atomic attributes
// to NoBlock. IDs are also the sensing granularity of the stm-adaptive
// meta-runtime, which reads per-block commit/abort and set-size signals off
// these records.
type BlockID int32

// NoBlock is the pre-registered ID every unattributed atomic block is
// accounted under, so per-block totals always sum to the aggregate counts.
const NoBlock BlockID = 0

// noBlockName is NoBlock's registry entry.
const noBlockName = "(unattributed)"

var blockReg = struct {
	sync.RWMutex
	ids   map[string]BlockID
	names []string
	ro    []bool // parallel to names: site declared read-mostly
}{
	ids:   map[string]BlockID{noBlockName: NoBlock},
	names: []string{noBlockName},
	ro:    []bool{false},
}

// NewBlock registers an atomic-block call site under a stable name
// (conventionally "app/phase", e.g. "genome/dedup") and returns its ID.
// Registration is idempotent: the same name always yields the same ID, so
// package-level block variables stay stable across repeated app
// constructions and test runs.
func NewBlock(name string) BlockID { return newBlock(name, false) }

// NewROBlock registers an atomic-block call site like NewBlock and marks it
// read-mostly: the block's common path performs no Store, so runtimes with a
// read-optimized begin path (stm-mv's snapshot reads) may start its attempts
// on that path. The mark is a hint, not a contract — a marked block that
// does store still commits correctly everywhere (stm-mv falls back to its
// ordinary TL2-style write commit) — and runtimes without a read-only path
// ignore it. The mark is sticky: re-registering a marked name through plain
// NewBlock (the idempotent lookup idiom) does not clear it.
func NewROBlock(name string) BlockID { return newBlock(name, true) }

func newBlock(name string, ro bool) BlockID {
	if name == "" {
		return NoBlock
	}
	blockReg.Lock()
	defer blockReg.Unlock()
	if id, ok := blockReg.ids[name]; ok {
		if ro {
			blockReg.ro[id] = true
		}
		return id
	}
	id := BlockID(len(blockReg.names))
	blockReg.ids[name] = id
	blockReg.names = append(blockReg.names, name)
	blockReg.ro = append(blockReg.ro, ro)
	return id
}

// BlockReadOnly reports whether id was registered through NewROBlock (false
// for unknown IDs and NoBlock).
func BlockReadOnly(id BlockID) bool {
	blockReg.RLock()
	defer blockReg.RUnlock()
	if id < 0 || int(id) >= len(blockReg.ro) {
		return false
	}
	return blockReg.ro[id]
}

// BlockName returns the registered name of id ("" for an unknown ID).
func BlockName(id BlockID) string {
	blockReg.RLock()
	defer blockReg.RUnlock()
	if id < 0 || int(id) >= len(blockReg.names) {
		return ""
	}
	return blockReg.names[id]
}

// NumBlocks returns how many block IDs are registered (including NoBlock).
func NumBlocks() int {
	blockReg.RLock()
	defer blockReg.RUnlock()
	return len(blockReg.names)
}
