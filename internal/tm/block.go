package tm

import "sync"

// BlockID identifies one atomic-block call site for per-block statistics
// attribution (the paper's per-region breakdowns: genome's phases, the
// vacation action mix, ...). Call sites obtain a stable ID once with
// NewBlock and pass it to Thread.AtomicAt; plain Thread.Atomic attributes
// to NoBlock. IDs are also the sensing granularity of the stm-adaptive
// meta-runtime, which reads per-block commit/abort and set-size signals off
// these records.
type BlockID int32

// NoBlock is the pre-registered ID every unattributed atomic block is
// accounted under, so per-block totals always sum to the aggregate counts.
const NoBlock BlockID = 0

// noBlockName is NoBlock's registry entry.
const noBlockName = "(unattributed)"

var blockReg = struct {
	sync.RWMutex
	ids   map[string]BlockID
	names []string
}{
	ids:   map[string]BlockID{noBlockName: NoBlock},
	names: []string{noBlockName},
}

// NewBlock registers an atomic-block call site under a stable name
// (conventionally "app/phase", e.g. "genome/dedup") and returns its ID.
// Registration is idempotent: the same name always yields the same ID, so
// package-level block variables stay stable across repeated app
// constructions and test runs.
func NewBlock(name string) BlockID {
	if name == "" {
		return NoBlock
	}
	blockReg.Lock()
	defer blockReg.Unlock()
	if id, ok := blockReg.ids[name]; ok {
		return id
	}
	id := BlockID(len(blockReg.names))
	blockReg.ids[name] = id
	blockReg.names = append(blockReg.names, name)
	return id
}

// BlockName returns the registered name of id ("" for an unknown ID).
func BlockName(id BlockID) string {
	blockReg.RLock()
	defer blockReg.RUnlock()
	if id < 0 || int(id) >= len(blockReg.names) {
		return ""
	}
	return blockReg.names[id]
}

// NumBlocks returns how many block IDs are registered (including NoBlock).
func NumBlocks() int {
	blockReg.RLock()
	defer blockReg.RUnlock()
	return len(blockReg.names)
}
