package tm

import (
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm/trace"
)

// Seq is the sequential baseline system: no concurrency control at all.
// It is the denominator of every Figure 1 speedup curve ("normalized to
// sequential execution with code that does not have extra overhead from the
// annotations") and, with ProfileSets, the measurement vehicle for the
// per-transaction characterization proxies in Table VI.
//
// Seq supports any thread count so the harness can reuse the same driver
// code, but correctness is only guaranteed at Threads == 1 (it performs no
// synchronization, exactly like the original sequential builds).
type Seq struct {
	cfg     Config
	threads []*seqThread
}

// NewSeq constructs the sequential system.
func NewSeq(cfg Config) (*Seq, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Seq{cfg: cfg}
	s.threads = make([]*seqThread, cfg.Threads)
	for i := range s.threads {
		t := &seqThread{id: i, sys: s}
		t.tx.t = t
		t.tx.res = cfg.NewReserver()
		t.stats.Tracer = cfg.NewTracer()
		if cfg.ProfileSets {
			t.tx.readLines = make(map[mem.Line]struct{})
			t.tx.writeLines = make(map[mem.Line]struct{})
		}
		s.threads[i] = t
	}
	return s, nil
}

// Name implements System.
func (s *Seq) Name() string { return "seq" }

// Arena implements System.
func (s *Seq) Arena() *mem.Arena { return s.cfg.Arena }

// NThreads implements System.
func (s *Seq) NThreads() int { return s.cfg.Threads }

// Thread implements System.
func (s *Seq) Thread(id int) Thread { return s.threads[id] }

// Stats implements System.
func (s *Seq) Stats() Stats {
	per := make([]*ThreadStats, len(s.threads))
	for i, t := range s.threads {
		per[i] = &t.stats
	}
	return Aggregate(per)
}

type seqThread struct {
	id    int
	sys   *Seq
	stats ThreadStats
	tx    seqTx
	timer AtomicTimer
}

func (t *seqThread) ID() int             { return t.id }
func (t *seqThread) Stats() *ThreadStats { return &t.stats }

func (t *seqThread) Atomic(fn func(Tx)) { t.AtomicAt(NoBlock, fn) }

func (t *seqThread) AtomicAt(b BlockID, fn func(Tx)) {
	t.timer.BeginBlock()
	t.stats.Starts++
	t.stats.Tracer.SampleBlock(t.id, int32(b))
	aborts := uint64(0)
	for {
		t.tx.reset()
		if Attempt(&t.tx, fn) {
			break
		}
		// A user Restart or a terminal allocation miss gets here; sequential
		// code has no conflicts, so a restart loop would be an application
		// bug, but we honor the retry semantics anyway.
		aborts++
		t.stats.Aborts++
		t.stats.RecordAbort(b, t.tx.info.Cause, t.tx.info.Key, t.tx.info.Blame)
		t.stats.Tracer.Emit(trace.EvAbort, t.tx.info.Cause, t.id, int32(b), 0)
		t.tx.res.OnAbort()
		if t.tx.info.Err != nil {
			t.tx.info.BailAlloc()
		}
	}
	t.tx.res.OnCommit()
	t.stats.Commits++
	t.sys.cfg.Watch.Bump(t.id)
	t.stats.Tracer.Emit(trace.EvCommit, CauseUnknown, t.id, int32(b), 0)
	t.stats.RecordBlock(b, "seq", aborts, t.tx.loads, t.tx.stores)
	t.stats.Loads += t.tx.loads
	t.stats.Stores += t.tx.stores
	t.stats.LoadsHist.Add(int(t.tx.loads))
	t.stats.StoresHist.Add(int(t.tx.stores))
	if t.tx.readLines != nil {
		t.stats.ReadLinesHist.Add(len(t.tx.readLines))
		t.stats.WriteLinesHist.Add(len(t.tx.writeLines))
	}
	t.stats.TxTimeNs += int64(t.timer.EndBlock())
}

// seqTx applies every barrier directly to the arena.
type seqTx struct {
	t          *seqThread
	res        *mem.Reserver
	info       AbortInfo
	loads      uint64
	stores     uint64
	readLines  map[mem.Line]struct{} // nil unless profiling
	writeLines map[mem.Line]struct{}
}

func (x *seqTx) reset() {
	x.info.Reset()
	x.loads, x.stores = 0, 0
	if x.readLines != nil {
		clear(x.readLines)
		clear(x.writeLines)
	}
}

func (x *seqTx) Load(a mem.Addr) uint64 {
	x.loads++
	if x.readLines != nil {
		x.readLines[mem.LineOf(a)] = struct{}{}
	}
	return x.t.sys.cfg.Arena.Load(a)
}

func (x *seqTx) Store(a mem.Addr, v uint64) {
	x.stores++
	if x.writeLines != nil {
		x.writeLines[mem.LineOf(a)] = struct{}{}
	}
	x.t.sys.cfg.Arena.Store(a, v)
}

// Alloc carves from the thread's reserver; a capacity miss unwinds the
// block with AllocFailure (after one accounted alloc-exhausted abort) just
// like the concurrent runtimes, so the harness sees one typed failure shape
// everywhere.
func (x *seqTx) Alloc(n int) mem.Addr {
	a, err := x.res.TxAlloc(n)
	if err != nil {
		x.info.FailAlloc(err)
	}
	return a
}

// Free defers the release to commit time and recycles through the thread's
// free lists (sequential blocks always commit unless explicitly restarted).
func (x *seqTx) Free(a mem.Addr, n int) { x.res.TxFree(a, n) }

func (x *seqTx) EarlyRelease(a mem.Addr) {
	if x.readLines != nil {
		delete(x.readLines, mem.LineOf(a))
	}
}

func (x *seqTx) Peek(a mem.Addr) uint64 { return x.t.sys.cfg.Arena.Load(a) }

func (x *seqTx) Restart() { x.info.Fail(CauseExplicitRetry, 0, NoBlock) }
