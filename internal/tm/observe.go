package tm

import (
	"sort"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm/trace"
)

// Re-exported observability types (see internal/tm/trace for the
// implementations; tm is the layer applications and the harness import).
type (
	// AbortCause classifies why one transactional attempt failed.
	AbortCause = trace.AbortCause
	// ConflictKey names the contended location of an abort (address,
	// stripe, or line; 0 = no identifiable location).
	ConflictKey = trace.Key
	// ConflictRow is one row of the aggregated conflict heatmap
	// (Stats.TopConflicts).
	ConflictRow = trace.ConflictRow
	// TraceEvent is one decoded tracer record (see TraceEvents).
	TraceEvent = trace.Event
	// TraceEventKind discriminates TraceEvent records.
	TraceEventKind = trace.EventKind
)

// Re-exported tracer event kinds (TraceEvent.Kind).
const (
	EvBegin  = trace.EvBegin
	EvAbort  = trace.EvAbort
	EvCommit = trace.EvCommit
	EvWait   = trace.EvWait
)

// The closed abort-cause taxonomy (see the trace package for what each
// cause means; CauseNames lists the display names in this order).
const (
	CauseUnknown           = trace.CauseUnknown
	CauseReadValidation    = trace.CauseReadValidation
	CauseStripeLockBusy    = trace.CauseStripeLockBusy
	CauseSeqChanged        = trace.CauseSeqChanged
	CauseWriteWrite        = trace.CauseWriteWrite
	CauseSignatureConflict = trace.CauseSignatureConflict
	CauseHTMConflict       = trace.CauseHTMConflict
	CauseHTMCapacity       = trace.CauseHTMCapacity
	CauseCMKill            = trace.CauseCMKill
	CauseExplicitRetry     = trace.CauseExplicitRetry
	CauseMVVersionMissing  = trace.CauseMVVersionMissing
	// CauseKilledForIrrevocable marks victims displaced by a starving
	// transaction's escalation to irrevocable mode (see Config.StarveAfter
	// and CauseOrDisplaced).
	CauseKilledForIrrevocable = trace.CauseKilledForIrrevocable
	// CauseAllocExhausted marks a tx.Alloc that found the arena out of
	// capacity; a real miss unwinds the block with AllocFailure after the
	// abort is accounted (see AbortInfo.FailAlloc), while the
	// "alloc-exhaust" chaos site injects only the abort.
	CauseAllocExhausted = trace.CauseAllocExhausted
	NumCauses           = trace.NumCauses
)

// CauseNames returns every abort-cause name in enum order, "unknown" first.
func CauseNames() []string { return trace.CauseNames() }

// DefaultTraceBuf is the per-thread tracer ring capacity (in events) when
// Config.TraceBuf is 0.
const DefaultTraceBuf = 4096

// NewTracer allocates one per-thread event ring according to the config, or
// returns nil when tracing is off (Config.Trace == 0) — the nil ring's
// methods are no-ops, so runtimes store the result unconditionally. Every
// runtime constructor calls this once per worker slot.
func (c Config) NewTracer() *trace.Ring {
	if c.Trace <= 0 {
		return nil
	}
	size := c.TraceBuf
	if size <= 0 {
		size = DefaultTraceBuf
	}
	return trace.NewRing(size, c.Trace)
}

// AbortInfo is the pending-abort registers a transaction carries between
// the conflict site that detects the abort and the retry loop that accounts
// it: the taxonomy cause, the contended location, and the enemy's block
// where the owner was identifiable. Runtimes embed one in their per-attempt
// transaction state, Reset it at attempt start, and stamp it at every abort
// site.
type AbortInfo struct {
	Cause AbortCause
	Key   ConflictKey
	Blame BlockID

	// Err carries a terminal failure through the abort path: set (by
	// FailAlloc) when the abort must not be retried, it makes the retry
	// loop unwind the whole block with AllocFailure after accounting the
	// abort. Nil on every ordinary (retryable) abort.
	Err error
}

// Reset clears the registers for a new attempt.
func (a *AbortInfo) Reset() { *a = AbortInfo{} }

// Set stamps the pending abort's cause, location, and blamed enemy block.
// Used on paths that return false instead of unwinding (commit failures).
func (a *AbortInfo) Set(cause AbortCause, key ConflictKey, blame BlockID) {
	a.Cause, a.Key, a.Blame = cause, key, blame
}

// Fail stamps the registers and unwinds the attempt via Retry. It never
// returns.
func (a *AbortInfo) Fail(cause AbortCause, key ConflictKey, blame BlockID) {
	a.Set(cause, key, blame)
	Retry()
}

// FailAlloc is the one alloc-exhaustion abort site shared by every
// runtime's tx.Alloc: it stamps CauseAllocExhausted, records the terminal
// error, and unwinds the attempt through the normal retry path (so locks,
// logs, and serial modes release exactly as on any abort). The retry loop
// then sees Err set and raises AllocFailure instead of retrying. It never
// returns.
func (a *AbortInfo) FailAlloc(err error) {
	a.Err = err
	a.Fail(CauseAllocExhausted, 0, NoBlock)
}

// BailAlloc finishes a terminal alloc-exhaustion abort from the retry loop:
// called after the abort has been accounted, it clears the pending error
// and unwinds the whole atomic block with AllocFailure. Runtimes call it
// when info.Err is non-nil, after releasing their contention-manager state
// (see AbandonBlock). It never returns.
func (a *AbortInfo) BailAlloc() {
	err := a.Err
	a.Err = nil
	panic(AllocFailure{Err: err})
}

// KillPack encodes a flag-based kill's attribution into one word. Flag-based
// aborts (committer-wins arbitration, priority kills) are detected far from
// the conflicting access: the victim just polls its aborted flag. So the
// killer deposits the attribution — its own current block and the contended
// line — into the victim's killedBy word *before* raising the flag, packed
// into one atomic store. Bit 63 marks the word as set, distinguishing a real
// (block 0, line 0) attribution from "never written".
func KillPack(blk BlockID, line mem.Line) uint64 {
	return 1<<63 | uint64(uint32(blk)&0x7fffffff)<<32 | uint64(line)&0xffffffff
}

// KillUnpack decodes a killedBy word into the blamed block and conflict key
// (NoBlock and no key when the word was never written).
func KillUnpack(k uint64) (BlockID, ConflictKey) {
	if k == 0 {
		return NoBlock, 0
	}
	return BlockID(int32(uint32(k>>32) & 0x7fffffff)), trace.LineKey(k & 0xffffffff)
}

// eventSource is the optional System interface for runtimes whose worker
// rings are not reachable through Thread.Stats() — the adaptive
// meta-runtime implements it to expose both delegates' rings.
type eventSource interface {
	TraceEvents() []TraceEvent
}

// TraceEvents collects a system's sampled tracer events across all worker
// rings, time-sorted. It returns nil when tracing was off. Pass the result
// to trace.WriteChrome for a Perfetto-loadable timeline.
func TraceEvents(sys System) []TraceEvent {
	if src, ok := sys.(eventSource); ok {
		evs := src.TraceEvents()
		sort.Slice(evs, func(i, j int) bool { return evs[i].TimeNs < evs[j].TimeNs })
		return evs
	}
	var evs []TraceEvent
	for id := 0; id < sys.NThreads(); id++ {
		evs = append(evs, sys.Thread(id).Stats().Tracer.Snapshot()...)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].TimeNs < evs[j].TimeNs })
	return evs
}
