package tm

import (
	"runtime"
	"sync/atomic"
)

// backoffUnit is the spin-loop budget per abort past the threshold for the
// delay-based contention managers (see cm.go). Each iteration is an atomic
// load (~a few ns), so the maximum delay stays in the microsecond range for
// realistic abort counts, like the paper's scheme.
const backoffUnit = 1500

var spinSink atomic.Uint64

// Spin busy-waits for roughly n atomic-load iterations. A busy wait (rather
// than time.Sleep) models processor backoff: the thread burns cycles without
// giving up its core, and sub-microsecond delays are actually achievable.
// Every 1024 iterations it yields to the scheduler so that waiting makes
// progress even when goroutines outnumber cores (notably single-CPU hosts,
// where a pure busy wait would block the victim it is waiting for).
func Spin(n int) {
	for i := 0; i < n; i++ {
		if i&1023 == 1023 {
			runtime.Gosched()
		}
		_ = spinSink.Load()
	}
}
