package tm

import (
	"runtime"
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/rng"
)

// Backoff implements the contention-management delay the paper's STMs and
// hybrids use: no delay for the first few aborts, then randomized linear
// backoff (delay grows linearly with the abort count, with random jitter).
type Backoff struct {
	after int // aborts before backoff kicks in
	r     *rng.Rand
}

// NewBackoff returns a policy that starts delaying after `after` aborts.
func NewBackoff(after int, seed uint64) *Backoff {
	if after < 0 {
		after = 0
	}
	return &Backoff{after: after, r: rng.New(seed)}
}

// Wait applies the delay for the given abort count (1 = first abort).
func (b *Backoff) Wait(aborts int) {
	if aborts <= b.after {
		return
	}
	// Randomized linear backoff: up to (aborts-after) * unit spin iterations.
	n := b.r.Intn((aborts-b.after)*backoffUnit) + 1
	Spin(n)
}

// backoffUnit is the spin-loop budget per abort past the threshold. Each
// iteration is an atomic load (~a few ns), so the maximum delay stays in the
// microsecond range for realistic abort counts, like the paper's scheme.
const backoffUnit = 1500

var spinSink atomic.Uint64

// Spin busy-waits for roughly n atomic-load iterations. A busy wait (rather
// than time.Sleep) models processor backoff: the thread burns cycles without
// giving up its core, and sub-microsecond delays are actually achievable.
// Every 1024 iterations it yields to the scheduler so that waiting makes
// progress even when goroutines outnumber cores (notably single-CPU hosts,
// where a pure busy wait would block the victim it is waiting for).
func Spin(n int) {
	for i := 0; i < n; i++ {
		if i&1023 == 1023 {
			runtime.Gosched()
		}
		_ = spinSink.Load()
	}
}
