// Package sig implements the hardware address signatures used by the hybrid
// TM systems (SigTM) and by the eager HTM's overflow path.
//
// Per Table V of the paper each signature register is 2048 bits and is
// indexed by four hash functions of the cache-line address:
//
//  1. the unpermuted line address,
//  2. the line address permuted (bit-mixed) as in Bulk [Ceze et al.],
//  3. hash (2) shifted right by 10 bits,
//  4. a permutation of the lower 16 bits of the line address.
//
// A signature is a Bloom filter: inserts and membership tests never miss a
// real member but may report false positives, which is exactly the source of
// the false-conflict behaviour the paper observes for the eager HTM on bayes
// and labyrinth+.
//
// Signatures are written only by their owning transaction but tested
// concurrently by every other transaction, so all word accesses are atomic.
package sig

import "sync/atomic"

// Bits is the signature register width (Table V: 2048 bits per register).
const Bits = 2048

const words = Bits / 64

// Signature is a 2048-bit Bloom filter over cache-line addresses.
// The zero value is an empty signature.
type Signature struct {
	w [words]atomic.Uint64
}

// hash1..hash4 map a line address to a bit index in [0, Bits).

func hash1(line uint32) uint32 { return line % Bits }

// hash2 permutes the line address with an avalanche mix (standing in for the
// Bulk bit-permutation network, which is also a fixed bijection on bits).
func hash2(line uint32) uint32 {
	x := line
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x % Bits
}

func hash3(line uint32) uint32 {
	x := line
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return (x >> 10) % Bits
}

func hash4(line uint32) uint32 {
	x := line & 0xffff
	x = (x | x<<8) & 0x00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f
	x = (x | x<<2) & 0x33333333
	x = (x | x<<1) & 0x55555555
	return x % Bits
}

// Insert adds a line address to the signature.
func (s *Signature) Insert(line uint32) {
	for _, h := range [4]uint32{hash1(line), hash2(line), hash3(line), hash4(line)} {
		s.w[h/64].Or(1 << (h % 64))
	}
}

// Test reports whether the line address may be present (no false negatives).
func (s *Signature) Test(line uint32) bool {
	for _, h := range [4]uint32{hash1(line), hash2(line), hash3(line), hash4(line)} {
		if s.w[h/64].Load()&(1<<(h%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear empties the signature.
func (s *Signature) Clear() {
	for i := range s.w {
		s.w[i].Store(0)
	}
}

// Empty reports whether no bits are set.
func (s *Signature) Empty() bool {
	for i := range s.w {
		if s.w[i].Load() != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share any set bit position. This is a
// conservative overlap test between two address sets, used for
// signature-vs-signature conflict checks.
func (s *Signature) Intersects(o *Signature) bool {
	for i := range s.w {
		if s.w[i].Load()&o.w[i].Load() != 0 {
			return true
		}
	}
	return false
}

// PopCount returns the number of set bits (occupancy), useful for tests and
// for reasoning about false-positive rates.
func (s *Signature) PopCount() int {
	n := 0
	for i := range s.w {
		v := s.w[i].Load()
		for v != 0 {
			v &= v - 1
			n++
		}
	}
	return n
}
