package sig

import (
	"testing"
	"testing/quick"

	"github.com/stamp-go/stamp/internal/rng"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(lines []uint32) bool {
		var s Signature
		for _, l := range lines {
			s.Insert(l)
		}
		for _, l := range lines {
			if !s.Test(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTestsNegative(t *testing.T) {
	var s Signature
	if !s.Empty() {
		t.Fatal("zero value not empty")
	}
	for l := uint32(0); l < 1000; l++ {
		if s.Test(l) {
			t.Fatalf("empty signature claims membership of %d", l)
		}
	}
}

func TestClear(t *testing.T) {
	var s Signature
	for l := uint32(0); l < 100; l++ {
		s.Insert(l)
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left bits set")
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	// Insert 64 random lines, probe 10k others: with 2048 bits / 4 hashes the
	// false-positive rate should be small (theory ~0.02% at this load; allow
	// a wide margin for hash imperfection).
	r := rng.New(99)
	var s Signature
	inserted := map[uint32]bool{}
	for len(inserted) < 64 {
		l := r.Uint32()
		inserted[l] = true
		s.Insert(l)
	}
	fp := 0
	probes := 0
	for probes < 10000 {
		l := r.Uint32()
		if inserted[l] {
			continue
		}
		probes++
		if s.Test(l) {
			fp++
		}
	}
	if fp > 200 { // 2%
		t.Fatalf("false positive rate too high: %d / %d", fp, probes)
	}
}

func TestFalsePositivesExistWhenSaturated(t *testing.T) {
	// The Bloom filter must be conservative: saturate it and verify it
	// reports (false) conflicts for addresses never inserted — this is the
	// mechanism behind the paper's eager-HTM overflow behaviour.
	var s Signature
	for l := uint32(0); l < 100000; l++ {
		s.Insert(l * 7)
	}
	if !s.Test(3) && !s.Test(123457) && !s.Test(999999999) {
		t.Fatal("saturated filter reported no membership at all; implausible")
	}
}

func TestIntersects(t *testing.T) {
	var a, b Signature
	a.Insert(10)
	b.Insert(20)
	// Not guaranteed disjoint (hash collisions), but same-line must intersect.
	b.Insert(10)
	if !a.Intersects(&b) {
		t.Fatal("signatures sharing a line do not intersect")
	}
	var c Signature
	if a.Intersects(&c) {
		t.Fatal("intersects empty")
	}
}

func TestPopCountGrows(t *testing.T) {
	var s Signature
	if s.PopCount() != 0 {
		t.Fatal("pop count of empty != 0")
	}
	s.Insert(42)
	if n := s.PopCount(); n < 1 || n > 4 {
		t.Fatalf("pop count after one insert = %d, want 1..4", n)
	}
}

func TestHashesInRange(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 10000; i++ {
		l := r.Uint32()
		for _, h := range []uint32{hash1(l), hash2(l), hash3(l), hash4(l)} {
			if h >= Bits {
				t.Fatalf("hash out of range: %d", h)
			}
		}
	}
}
