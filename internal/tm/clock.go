package tm

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// PaddedUint64 is an atomic uint64 alone on its cache line. The TL2 global
// version clock and NOrec's sequence lock are the hottest shared words in
// their systems; padding them keeps commits from false-sharing the line
// with neighboring runtime fields (per-thread slices, stat counters) that
// other cores read on their own fast paths.
type PaddedUint64 struct {
	_ [64]byte
	v atomic.Uint64
	_ [56]byte
}

// Load atomically reads the value.
func (p *PaddedUint64) Load() uint64 { return p.v.Load() }

// Store atomically writes the value.
func (p *PaddedUint64) Store(x uint64) { p.v.Store(x) }

// Add atomically adds d and returns the new value.
func (p *PaddedUint64) Add(d uint64) uint64 { return p.v.Add(d) }

// CompareAndSwap atomically CASes the value.
func (p *PaddedUint64) CompareAndSwap(old, new uint64) bool {
	return p.v.CompareAndSwap(old, new)
}

// VersionClock is the global version clock a TL2-style runtime snapshots at
// begin and advances at writer commit. The scheme — how (and whether) a
// commit moves the clock — is the serial point the Synchrobench-style
// protocol comparisons single out at high thread counts, so it is selected
// per run through Config.Clock (see ClockNames) rather than hard-coded.
//
// The safety contract every scheme relies on: a committer calls CommitTick
// only after acquiring every write-set lock, and publishes the returned wv
// on those locks at release. Under that contract a reader whose snapshot
// rv admits a published version (version <= rv) began after the publishing
// commit held its locks, so it can never observe a pre-commit value of
// that write set unlocked — the standard TL2 argument, which is exactly
// what makes the gv4 "share another committer's value" shortcut sound.
type VersionClock interface {
	// Name returns the registry name of the scheme (e.g. "gv1").
	Name() string
	// Begin returns the read version a starting transaction snapshots.
	Begin() uint64
	// CommitTick produces the write version for a committer whose snapshot
	// is rv, advancing the clock as the scheme prescribes. validate reports
	// whether the committer must re-validate its read set: false only when
	// the scheme can prove no other transaction committed between the
	// caller's begin and this tick (the wv == rv+1 fast path).
	CommitTick(rv uint64) (wv uint64, validate bool)
	// OnAbort lets the scheme react to an aborted attempt that began at rv.
	// gv5 advances the stuck clock here so the retry can admit versions
	// published in the current epoch; the ticking schemes do nothing.
	OnAbort(rv uint64)
	// Now returns the current clock value (a stats/test hook, not part of
	// the protocol).
	Now() uint64
}

// DefaultClock is the scheme used when Config.Clock is empty: the original
// TL2 fetch-add clock, keeping default results comparable with earlier
// revisions.
const DefaultClock = "gv1"

// clockEntry is one registered scheme.
type clockEntry struct {
	description string
	make        func() VersionClock
}

var clockRegistry = map[string]clockEntry{
	"gv1": {
		description: "fetch-add on every writer commit (TL2's original scheme; default)",
		make:        func() VersionClock { return &gv1Clock{} },
	},
	"gv4": {
		description: "pass-on-failure CAS: a failed tick adopts the winning committer's value instead of retrying",
		make:        func() VersionClock { return &gv4Clock{} },
	},
	"gv5": {
		description: "commits publish clock+1 without ticking; aborts advance the clock (near-zero clock writes, rare extra aborts)",
		make:        func() VersionClock { return &gv5Clock{} },
	},
}

// ClockNames returns every registered commit-clock scheme name, sorted.
func ClockNames() []string {
	names := make([]string, 0, len(clockRegistry))
	for n := range clockRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ClockDescription returns the one-line description of a registered scheme
// (empty for unknown names).
func ClockDescription(name string) string { return clockRegistry[name].description }

// NewVersionClock validates Config.Clock against the registry and returns a
// fresh clock instance (one per system; the two TL2 runtimes and the
// adaptive wrapper's TL2 delegate each own their clock). An empty
// Config.Clock selects DefaultClock.
func NewVersionClock(cfg Config) (VersionClock, error) {
	name := cfg.Clock
	if name == "" {
		name = DefaultClock
	}
	entry, ok := clockRegistry[name]
	if !ok {
		return nil, fmt.Errorf("tm: unknown clock scheme %q (known: %v)", name, ClockNames())
	}
	return entry.make(), nil
}

// gv1Clock is TL2's original global clock: every writer commit fetch-adds
// the shared word, so at high commit rates the clock line ping-pongs
// between every committing core.
type gv1Clock struct{ c PaddedUint64 }

func (g *gv1Clock) Name() string   { return "gv1" }
func (g *gv1Clock) Begin() uint64  { return g.c.Load() }
func (g *gv1Clock) Now() uint64    { return g.c.Load() }
func (g *gv1Clock) OnAbort(uint64) {}

func (g *gv1Clock) CommitTick(rv uint64) (uint64, bool) {
	wv := g.c.Add(1)
	return wv, wv != rv+1
}

// gv4Clock is TL2's GV4: one CAS attempt from the current clock value; on
// failure the committer adopts the value the winning CAS installed instead
// of retrying, so a burst of concurrent commits performs one clock write
// total. Committers sharing a wv necessarily held disjoint lock sets at
// overlapping times (both held all their locks before the clock reached
// that wv), which is why sharing is safe under the VersionClock contract.
type gv4Clock struct{ c PaddedUint64 }

func (g *gv4Clock) Name() string   { return "gv4" }
func (g *gv4Clock) Begin() uint64  { return g.c.Load() }
func (g *gv4Clock) Now() uint64    { return g.c.Load() }
func (g *gv4Clock) OnAbort(uint64) {}

func (g *gv4Clock) CommitTick(rv uint64) (uint64, bool) {
	cur := g.c.Load()
	if g.c.CompareAndSwap(cur, cur+1) {
		return cur + 1, cur != rv
	}
	// Pass on failure: another committer advanced the clock in the window
	// since our load (during which we already held every write lock), so
	// its newer value is a valid write version for us too — no retry, and
	// no clock write at all on this path.
	return g.c.Load(), true
}

// gv5Clock is TL2's GV5: writer commits publish clock+1 without moving the
// clock, so the steady-state commit path performs zero shared clock
// writes. The cost is deliberate conservatism: every location committed in
// the current epoch looks "too new" (version clock+1 > any rv <= clock)
// until some aborting reader advances the clock past it via OnAbort — the
// rare-extra-aborts trade the scheme makes for a quiet clock line.
type gv5Clock struct{ c PaddedUint64 }

func (g *gv5Clock) Name() string  { return "gv5" }
func (g *gv5Clock) Begin() uint64 { return g.c.Load() }
func (g *gv5Clock) Now() uint64   { return g.c.Load() }

func (g *gv5Clock) CommitTick(rv uint64) (uint64, bool) {
	// clock+1 is strictly newer than every snapshot taken so far; the read
	// set must always validate because peers commit without ticking.
	return g.c.Load() + 1, true
}

// OnAbort unsticks the epoch: an attempt that began at rv and aborted very
// likely tripped on a version rv+1 published by a non-ticking commit, so
// advance the clock to rv+1 (one attempt; losing the CAS means someone
// else already advanced it) and let the retry's fresh snapshot admit it.
func (g *gv5Clock) OnAbort(rv uint64) {
	g.c.CompareAndSwap(rv, rv+1)
}
