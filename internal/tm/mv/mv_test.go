package mv

import (
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

func newSys(t *testing.T, cfg tm.Config) *System {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSnapshotReadersZeroAbortsZeroLockAcquires is the headline pin of the
// multi-version design: under a contended read-heavy workload, stm-mv
// read-only transactions record zero aborts and zero stripe-lock
// acquisitions while writers commit the whole time. Two writer threads
// keep an a==b invariant across two hot words (every commit increments
// both); two reader threads sum the pair from the snapshot path for the
// writers' entire run. The ring is sized so no version a live snapshot
// can need is ever evicted (perW*2 commits + pre-images < MVVersions even
// if both words hash to one stripe), which makes the zero-abort claim
// deterministic rather than probabilistic. The yields inside the bodies
// force writer commits to land between a reader's two loads on few-core
// machines — the reader then must serve the second load from the version
// ring, and the a==b check proves the ring served the snapshot version,
// not the newer arena value.
func TestSnapshotReadersZeroAbortsZeroLockAcquires(t *testing.T) {
	const (
		threads = 4 // readers 0,1; writers 2,3
		perW    = 100
		ringK   = 256 // > 2*perW + pre-images: eviction can't outrun a snapshot
	)
	blk := tm.NewROBlock("mv-test/headline-sum")
	arena := mem.NewArena(1 << 12)
	a := arena.Alloc(1)
	b := arena.Alloc(1)
	sys := newSys(t, tm.Config{Arena: arena, Threads: threads, MVVersions: ringK})

	var done atomic.Bool
	var torn [2]int64
	team := thread.NewTeam(threads)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		if tid >= 2 { // writer
			for i := 0; i < perW; i++ {
				th.Atomic(func(tx tm.Tx) {
					la := tx.Load(a)
					runtime.Gosched() // let readers interleave mid-attempt
					tx.Store(a, la+1)
					tx.Store(b, tx.Load(b)+1)
				})
			}
			if tid == 3 {
				done.Store(true)
			}
			return
		}
		// Reader: snapshot sums for as long as the writers commit.
		for !done.Load() {
			th.AtomicAt(blk, func(tx tm.Tx) {
				la := tx.Load(a)
				runtime.Gosched() // a commit landing here forces a ring read
				lb := tx.Load(b)
				if la != lb {
					torn[tid]++
				}
			})
		}
	})

	for tid := 0; tid < 2; tid++ {
		if v := torn[tid]; v != 0 {
			t.Errorf("reader %d observed %d torn a/b pairs", tid, v)
		}
		if got := sys.Thread(tid).Stats().Aborts; got != 0 {
			t.Errorf("reader %d recorded %d aborts, want 0", tid, got)
		}
		if got := sys.ThreadLockAcquires(tid); got != 0 {
			t.Errorf("reader %d acquired %d stripe locks, want 0", tid, got)
		}
	}
	if got, want := arena.Load(a), uint64(2*perW); got != want {
		t.Errorf("a = %d, want %d", got, want)
	}
	if arena.Load(a) != arena.Load(b) {
		t.Errorf("final a/b diverged: %d != %d", arena.Load(a), arena.Load(b))
	}
	if got := sys.LockAcquires(); got == 0 {
		t.Error("writers acquired no stripe locks; the workload exercised nothing")
	}
	st := sys.Stats()
	if unattr := st.AbortCauses()[tm.CauseUnknown]; unattr != 0 {
		t.Errorf("%d aborts left unattributed (CauseUnknown)", unattr)
	}
}

// TestRingOverflowAbortsMVVersionMissing pins the closed abort taxonomy of
// the snapshot path: when writers commit a stripe more than MVVersions
// times past a pinned snapshot, the ring no longer retains any version the
// snapshot may read, and the reader aborts with mv-version-missing — the
// snapshot path's only abort cause — then succeeds on the write-path
// retry. The handshake makes the overflow deterministic: the reader pins
// its snapshot with a first load, then waits while the writer commits
// MVVersions+2 times, so the reader's next load finds the stripe advanced
// and every retained version too new.
func TestRingOverflowAbortsMVVersionMissing(t *testing.T) {
	const ringK = 4
	blk := tm.NewROBlock("mv-test/overflow-reader")
	arena := mem.NewArena(1 << 10)
	x := arena.Alloc(1)
	sys := newSys(t, tm.Config{Arena: arena, Threads: 2, MVVersions: ringK})

	writerGo := make(chan struct{})
	writerDone := make(chan struct{})
	var got uint64
	team := thread.NewTeam(2)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		if tid == 1 {
			<-writerGo
			for i := 0; i < ringK+2; i++ {
				th.Atomic(func(tx tm.Tx) {
					tx.Store(x, tx.Load(x)+1)
				})
			}
			close(writerDone)
			return
		}
		attempt := 0
		th.AtomicAt(blk, func(tx tm.Tx) {
			attempt++
			if attempt == 1 {
				_ = tx.Load(x) // pins nothing by itself, but proves rv predates the burst
				close(writerGo)
				<-writerDone
			}
			got = tx.Load(x)
		})
	})

	if want := uint64(ringK + 2); got != want {
		t.Errorf("retried read = %d, want %d", got, want)
	}
	if attempts := sys.Thread(0).Stats().Aborts; attempts == 0 {
		t.Error("reader never aborted; the overflow was not exercised")
	}
	causes := sys.Stats().AbortCauses()
	if causes[tm.CauseMVVersionMissing] == 0 {
		t.Errorf("no abort attributed to mv-version-missing: %v", causes)
	}
	if causes[tm.CauseUnknown] != 0 {
		t.Errorf("%d aborts left unattributed (CauseUnknown)", causes[tm.CauseUnknown])
	}
}

// TestSingleVersionDegrades pins the documented MVVersions=1 semantics: the
// ring holds only the newest committed version, so any snapshot pinned
// before even a single commit to the stripe must miss (the pre-image record
// is immediately evicted by the commit's own value record) — single-version
// TL2-like behavior, reached through the same mv-version-missing cause.
func TestSingleVersionDegrades(t *testing.T) {
	blk := tm.NewROBlock("mv-test/single-version-reader")
	arena := mem.NewArena(1 << 10)
	x := arena.Alloc(1)
	arena.Store(x, 7)
	sys := newSys(t, tm.Config{Arena: arena, Threads: 2, MVVersions: 1})
	if got := sys.RingDepth(); got != 1 {
		t.Fatalf("RingDepth = %d, want 1", got)
	}

	writerGo := make(chan struct{})
	writerDone := make(chan struct{})
	var got uint64
	team := thread.NewTeam(2)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		if tid == 1 {
			<-writerGo
			th.Atomic(func(tx tm.Tx) {
				tx.Store(x, tx.Load(x)+1)
			})
			close(writerDone)
			return
		}
		attempt := 0
		th.AtomicAt(blk, func(tx tm.Tx) {
			attempt++
			if attempt == 1 {
				_ = tx.Load(x)
				close(writerGo)
				<-writerDone
			}
			got = tx.Load(x)
		})
	})

	if got != 8 {
		t.Errorf("retried read = %d, want 8", got)
	}
	if causes := sys.Stats().AbortCauses(); causes[tm.CauseMVVersionMissing] == 0 {
		t.Errorf("single-version ring did not raise mv-version-missing: %v", causes)
	}
}

// TestRingScanHistory drives the version ring directly (white box): after a
// sequence of single-threaded commits, ringScan must return, for every
// snapshot timestamp, exactly the value that was current at it — including
// the pre-commit value through the pre-image record — and miss only below
// the pre-image's version once the ring has evicted it.
func TestRingScanHistory(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	x := arena.Alloc(1)
	arena.Store(x, 7)                                     // pre-ring value
	sys := newSys(t, tm.Config{Arena: arena, Threads: 1}) // default ring depth 8
	if got := sys.RingDepth(); got != tm.DefaultMVVersions {
		t.Fatalf("RingDepth = %d, want the default %d", got, tm.DefaultMVVersions)
	}
	th := sys.Thread(0)
	c0 := sys.ClockNow()
	for i := 1; i <= 5; i++ {
		v := uint64(i * 10)
		th.Atomic(func(tx tm.Tx) { tx.Store(x, v) })
	}
	idx := sys.index(x)
	// gv1 ticks once per writing commit: versions c0+1 .. c0+5.
	wantAt := map[uint64]uint64{
		c0:     7, // pre-image record
		c0 + 1: 10,
		c0 + 2: 20,
		c0 + 3: 30,
		c0 + 4: 40,
		c0 + 5: 50,
		c0 + 9: 50, // newer snapshots see the newest record
	}
	for rv, want := range wantAt {
		got, ok := sys.ringScan(idx, x, rv)
		if !ok || got != want {
			t.Errorf("ringScan(rv=%d) = %d, %v; want %d, true", rv, got, ok, want)
		}
	}
	// A commit burst that overflows the ring evicts oldest-first: the
	// pre-image and the early versions disappear, and old snapshots miss.
	for i := 6; i <= 12; i++ {
		v := uint64(i * 10)
		th.Atomic(func(tx tm.Tx) { tx.Store(x, v) })
	}
	if _, ok := sys.ringScan(idx, x, c0); ok {
		t.Error("ringScan found a record older than the ring retains")
	}
	if got, ok := sys.ringScan(idx, x, c0+12); !ok || got != 120 {
		t.Errorf("ringScan(rv=%d) = %d, %v; want 120, true", c0+12, got, ok)
	}
}

// TestROBlockStoreFallsBack pins the read-only mark's hint-not-contract
// semantics: a marked block that stores still commits correctly — the
// snapshot attempt buffers the store and goes through the ordinary
// write-path commit.
func TestROBlockStoreFallsBack(t *testing.T) {
	blk := tm.NewROBlock("mv-test/ro-that-stores")
	arena := mem.NewArena(1 << 10)
	x := arena.Alloc(1)
	arena.Store(x, 41)
	sys := newSys(t, tm.Config{Arena: arena, Threads: 1})
	sys.Thread(0).AtomicAt(blk, func(tx tm.Tx) {
		tx.Store(x, tx.Load(x)+1)
	})
	if got := arena.Load(x); got != 42 {
		t.Fatalf("x = %d, want 42", got)
	}
	if got := sys.Stats().Total.Commits; got != 1 {
		t.Fatalf("commits = %d, want 1", got)
	}
}

// TestConfigValidation pins the MVVersions config contract: zero resolves
// to the default depth, negatives are rejected, and the table-size clamp
// respects its mv-specific ceiling.
func TestConfigValidation(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	if _, err := New(tm.Config{Arena: arena, Threads: 1, MVVersions: -1}); err == nil {
		t.Error("negative MVVersions accepted")
	}
	sys := newSys(t, tm.Config{Arena: arena, Threads: 1})
	if got := sys.RingDepth(); got != tm.DefaultMVVersions {
		t.Errorf("default ring depth = %d, want %d", got, tm.DefaultMVVersions)
	}
	big := newSys(t, tm.Config{Arena: arena, Threads: 1, LockTableBits: 30})
	if got := big.Stripes(); got != 1<<maxTableBits {
		t.Errorf("stripes = %d, want the clamped %d", got, 1<<maxTableBits)
	}
}
