// Package mv implements stm-mv, a multi-version STM for abort-free
// read-only traffic. Writers run a TL2-style protocol — per-stripe
// versioned locks, a pluggable commit clock (tm.VersionClock), redo-log
// writeback — and additionally append every committed value to a bounded
// per-stripe ring of (version, address, value) records. Read-only
// transactions pick a snapshot timestamp at begin and serve every load
// from that snapshot: the arena when the stripe has not been committed
// past the snapshot, the version ring when it has. Snapshot reads perform
// zero commit-time validation, acquire zero locks, and never abort a
// writer or get aborted by one; their only abort is CauseMVVersionMissing,
// raised when the snapshot predates every version of a location the ring
// still retains (ring overflow — tm.Config.MVVersions sizes the ring, and
// a depth of 1 degrades to single-version TL2-like behavior).
//
// # Which transactions read the snapshot
//
// Atomic blocks registered through tm.NewROBlock begin on the snapshot
// path. The mark is a hint, not a contract: snapshot attempts still record
// their read stripes, so a marked block that stores falls through to the
// ordinary write-path commit, where a ring-served (older-than-memory) read
// simply fails read validation and the block retries on the write path
// with a fresh snapshot. Unmarked blocks run plain TL2.
//
// # Why snapshot reads are consistent (opacity)
//
// Every load of a snapshot attempt returns the newest value of its address
// with version <= rv, the begin timestamp, so the whole attempt observes
// the committed state at rv:
//
//   - A locked stripe is a commit in flight. The reader waits it out
//     (waiting is not aborting) — this also excludes the one dangerous
//     window where a writer has ticked the clock but not yet published its
//     writeback. Once unlocked, every version <= rv is fully published,
//     and any later lock holder commits with wv > rv (the clock schemes'
//     monotonicity: a CommitTick after the reader's Begin exceeds rv).
//   - An unlocked stripe at version <= rv: the arena holds the newest
//     value, whose version is <= rv. Re-reading the lock word after the
//     arena load rejects the race where a writer locked in between.
//   - An unlocked stripe at version > rv: the ring is scanned for the
//     newest record of the address with version <= rv. Per-stripe versions
//     strictly increase (the TL2 acquire guard plus clock monotonicity),
//     so a ring's records for one address appear oldest-first and FIFO
//     eviction removes them oldest-first: if any record of the address
//     with version <= rv survives, the maximum such record is exactly the
//     newest one; otherwise the scan misses and the reader aborts
//     conservatively with mv-version-missing. Re-reading the lock word
//     after the scan discards scans that raced a committing writer's
//     appends or evictions.
//
// The first ring-era write to an address also appends a pre-image record
// (the overwritten arena value at the stripe's pre-commit version), so a
// snapshot that began before the address was ever ring-written can still
// be served.
//
// # Delegate handoffs
//
// As an stm-adaptive delegate, mv's rings go stale whenever the other
// delegate's tenure writes the arena without appending. The meta-runtime
// calls OnHandoff on the delegate it is about to activate (after its
// quiesce, so no snapshot reader is live across tenures); mv bumps a
// global ring epoch, readers treat stale-epoch rings as empty, and writers
// lazily re-initialize a stale ring under the stripe lock at next commit.
package mv

import (
	"runtime"
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/trace"
	"github.com/stamp-go/stamp/internal/tm/txset"
)

// Stripe-table size bounds, in log2 stripes. Same derivation as the TL2
// lock table (one stripe per arena word, clamped), but with a lower
// ceiling: each mv stripe carries a padded header plus MVVersions ring
// slots, so 2^20 stripes would cost hundreds of megabytes where TL2 pays
// eight. Beyond 2^maxTableBits words, addresses hash onto stripes, which
// only adds (rare, harmless) false conflicts — and makes ring sharing
// slightly more likely, which the pre-image records keep correct.
const (
	minTableBits = 12
	maxTableBits = 16
)

func tableBitsFor(cfg tm.Config) int {
	bits := cfg.LockTableBits
	if bits == 0 {
		bits = minTableBits
		for bits < maxTableBits && 1<<bits < cfg.Arena.Cap() {
			bits++
		}
		return bits
	}
	if bits < minTableBits {
		return minTableBits
	}
	if bits > maxTableBits {
		return maxTableBits
	}
	return bits
}

// stripe is one unit of conflict detection and version retention: a
// TL2-encoded versioned lock (version<<1 unlocked, owner<<1|1 locked), the
// ring's validity epoch, and the ring head. head is written only by the
// stripe-lock holder (the lock word's release/acquire chain orders the
// holders); readers never touch it — they scan every slot. Padded so a hot
// stripe does not false-share its neighbors.
type stripe struct {
	lock  atomic.Uint64
	epoch atomic.Uint64
	head  uint32
	_     [44]byte
}

// slot is one ring record. version holds the record's commit version
// biased by +1 (0 = empty or mid-write), so pre-image records at stripe
// version 0 are representable. All three fields are atomics: writers store
// them under the stripe lock in seqlock order (version 0, addr, val,
// version), and concurrent snapshot readers reject torn records by the
// version sandwich plus the caller's stripe-lock recheck.
type slot struct {
	version atomic.Uint64
	val     atomic.Uint64
	addr    atomic.Uint32
}

func lockedBy(e uint64) (owner uint64, locked bool) { return e >> 1, e&1 == 1 }

func versionOf(e uint64) uint64 { return e >> 1 }

type lockRec struct {
	idx uint32
	old uint64 // entry value before acquisition (restored on abort)
}

// System is the stm-mv runtime.
type System struct {
	cfg     tm.Config
	clock   tm.VersionClock
	stripes []stripe
	slots   []slot // stripe i owns slots[i*k : (i+1)*k]
	shift   uint32
	k       int // ring depth (Config.MVVersions)

	// ringEpoch invalidates every stripe ring at once: bumped by OnHandoff
	// when another stm-adaptive delegate may have written the arena behind
	// the rings' back. A stripe whose epoch lags is treated as empty by
	// readers and re-initialized by the next committing writer.
	ringEpoch atomic.Uint64

	threads []*mvThread
	chaos   *chaos.Injector // nil unless Config.Chaos armed failpoints
	cms     []tm.ContentionManager
}

// New constructs the stm-mv runtime.
func New(cfg tm.Config) (*System, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool, err := tm.NewCMPool(cfg, tm.DefaultCM)
	if err != nil {
		return nil, err
	}
	clock, err := tm.NewVersionClock(cfg)
	if err != nil {
		return nil, err
	}
	bits := tableBitsFor(cfg)
	n := 1 << bits
	s := &System{
		cfg:     cfg,
		clock:   clock,
		stripes: make([]stripe, n),
		slots:   make([]slot, n*cfg.MVVersions),
		shift:   uint32(32 - bits),
		k:       cfg.MVVersions,
		chaos:   pool.Chaos(),
	}
	s.threads = make([]*mvThread, cfg.Threads)
	s.cms = make([]tm.ContentionManager, cfg.Threads)
	for i := range s.threads {
		t := &mvThread{id: i, sys: s}
		t.stats.Tracer = cfg.NewTracer()
		t.cm = pool.ForThread(i, &t.stats)
		s.cms[i] = t.cm
		t.tx = &mvTx{sys: s, slot: uint64(i), th: t, res: cfg.NewReserver()}
		if cfg.ProfileSets {
			t.tx.readLines = make(map[mem.Line]struct{})
			t.tx.writeLines = make(map[mem.Line]struct{})
		}
		s.threads[i] = t
	}
	return s, nil
}

// index maps a word address to its stripe (the TL2 Knuth mix; the high
// product bits keep their spread on small tables).
func (s *System) index(a mem.Addr) uint32 {
	return (uint32(a) * 2654435761) >> s.shift
}

// ClockNow returns the current version-clock value (stats/bench hook).
func (s *System) ClockNow() uint64 { return s.clock.Now() }

// Stripes returns the stripe count of this instance's version table.
func (s *System) Stripes() int { return len(s.stripes) }

// RingDepth returns the per-stripe ring depth (Config.MVVersions resolved).
func (s *System) RingDepth() int { return s.k }

// OnHandoff invalidates every stripe's version ring. The stm-adaptive
// meta-runtime calls it on the delegate it is about to activate, after the
// quiesce — so no snapshot reader is live — because the other delegate's
// tenure wrote the arena without maintaining the rings.
func (s *System) OnHandoff() { s.ringEpoch.Add(1) }

// LockAcquires returns how many stripe-lock acquisitions the run performed
// across all threads. Snapshot (read-only) transactions never acquire a
// stripe lock, which ThreadLockAcquires pins per thread.
func (s *System) LockAcquires() uint64 {
	var n uint64
	for _, t := range s.threads {
		n += t.lockAcquires
	}
	return n
}

// ThreadLockAcquires returns thread id's stripe-lock acquisition count
// (read after the team joins; the worker itself advances it).
func (s *System) ThreadLockAcquires(id int) uint64 { return s.threads[id].lockAcquires }

// cmOf returns the contention manager of the transaction occupying slot,
// or nil for an out-of-range slot.
func (s *System) cmOf(slot uint64) tm.ContentionManager {
	if slot < uint64(len(s.cms)) {
		return s.cms[slot]
	}
	return nil
}

// blockOf returns the atomic block the transaction occupying slot is
// currently executing, for blaming the enemy call site.
func (s *System) blockOf(slot uint64) tm.BlockID {
	if slot < uint64(len(s.threads)) {
		return tm.BlockID(s.threads[slot].curBlock.Load())
	}
	return tm.NoBlock
}

// Name implements tm.System.
func (s *System) Name() string { return "stm-mv" }

// Arena implements tm.System.
func (s *System) Arena() *mem.Arena { return s.cfg.Arena }

// NThreads implements tm.System.
func (s *System) NThreads() int { return s.cfg.Threads }

// Thread implements tm.System.
func (s *System) Thread(id int) tm.Thread { return s.threads[id] }

// Stats implements tm.System.
func (s *System) Stats() tm.Stats {
	per := make([]*tm.ThreadStats, len(s.threads))
	for i, t := range s.threads {
		per[i] = &t.stats
	}
	return tm.Aggregate(per)
}

// ringScan returns the newest ring record of address a with version <= rv
// in stripe idx. The caller must have read the stripe lock word unlocked
// before the scan and must re-check it unchanged afterwards before acting
// on the result — that recheck, not the per-slot seqlock alone, is what
// discards scans that raced a committing writer's appends or evictions.
func (s *System) ringScan(idx uint32, a mem.Addr, rv uint64) (val uint64, ok bool) {
	st := &s.stripes[idx]
	if st.epoch.Load() != s.ringEpoch.Load() {
		return 0, false // stale ring: another delegate's tenure wrote the arena
	}
	base := int(idx) * s.k
	var best uint64 // biased: record version + 1
	for i := 0; i < s.k; i++ {
		sl := &s.slots[base+i]
		v1 := sl.version.Load()
		if v1 == 0 || v1 > rv+1 || v1 <= best {
			continue
		}
		addr := sl.addr.Load()
		v := sl.val.Load()
		if sl.version.Load() != v1 || mem.Addr(addr) != a {
			continue
		}
		best, val = v1, v
	}
	return val, best != 0
}

// ringHas reports whether stripe idx retains any record of address a.
// Caller holds the stripe lock.
func (s *System) ringHas(idx uint32, a mem.Addr) bool {
	base := int(idx) * s.k
	for i := 0; i < s.k; i++ {
		sl := &s.slots[base+i]
		if sl.version.Load() != 0 && mem.Addr(sl.addr.Load()) == a {
			return true
		}
	}
	return false
}

// ringAppend writes one record (biased version) at the ring head and
// advances it, evicting the oldest record. Caller holds the stripe lock.
func (s *System) ringAppend(idx uint32, biased uint64, a mem.Addr, val uint64) {
	st := &s.stripes[idx]
	sl := &s.slots[int(idx)*s.k+int(st.head)]
	sl.version.Store(0)
	sl.addr.Store(uint32(a))
	sl.val.Store(val)
	sl.version.Store(biased)
	st.head++
	if st.head == uint32(s.k) {
		st.head = 0
	}
}

// ringReset clears a stale ring and stamps it with the current epoch.
// Caller holds the stripe lock.
func (s *System) ringReset(idx uint32, epoch uint64) {
	base := int(idx) * s.k
	for i := 0; i < s.k; i++ {
		s.slots[base+i].version.Store(0)
	}
	st := &s.stripes[idx]
	st.head = 0
	st.epoch.Store(epoch)
}

type mvThread struct {
	id    int
	sys   *System
	stats tm.ThreadStats
	tx    *mvTx
	cm    tm.ContentionManager
	timer tm.AtomicTimer

	// lockAcquires counts this worker's stripe-lock acquisitions (owner
	// written, read after join) — the headline snapshot-path assertion.
	lockAcquires uint64

	// curBlock publishes the block this thread is currently inside.
	curBlock atomic.Int32
}

func (t *mvThread) ID() int                { return t.id }
func (t *mvThread) Stats() *tm.ThreadStats { return &t.stats }

func (t *mvThread) Atomic(fn func(tm.Tx)) { t.AtomicAt(tm.NoBlock, fn) }

func (t *mvThread) AtomicAt(b tm.BlockID, fn func(tm.Tx)) {
	t.timer.BeginBlock()
	t.stats.Starts++
	t.stats.Tracer.SampleBlock(t.id, int32(b))
	t.curBlock.Store(int32(b))
	t.cm.OnStart()
	ro := tm.BlockReadOnly(b)
	aborts := 0
	for {
		// A marked block begins on the snapshot path; after any abort
		// (a store inside the marked block failing write-path validation
		// against its ring-age snapshot, or a ring overflow) the retry
		// runs plain TL2 so progress never depends on ring retention.
		t.tx.begin(ro && aborts == 0)
		if tm.Attempt(t.tx, fn) && t.tx.commit() {
			break
		}
		t.tx.abort()
		aborts++
		t.stats.Aborts++
		t.stats.RecordAbort(b, t.tx.info.Cause, t.tx.info.Key, t.tx.info.Blame)
		t.stats.Tracer.Emit(trace.EvAbort, t.tx.info.Cause, t.id, int32(b), t.tx.info.Key)
		t.stats.Wasted += t.tx.loads + t.tx.stores
		t.tx.res.OnAbort()
		if t.tx.info.Err != nil {
			// Terminal alloc exhaustion: the abort is accounted, locks are
			// released — unwind the block instead of retrying.
			t.curBlock.Store(int32(tm.NoBlock))
			tm.AbandonBlock(t.cm)
			t.tx.info.BailAlloc()
		}
		t.cm.OnAbort(aborts)
	}
	t.tx.res.OnCommit()
	t.curBlock.Store(int32(tm.NoBlock))
	t.cm.OnCommit()
	t.stats.Commits++
	t.stats.Tracer.Emit(trace.EvCommit, tm.CauseUnknown, t.id, int32(b), 0)
	t.stats.RecordBlock(b, "stm-mv", uint64(aborts), t.tx.loads, t.tx.stores)
	t.stats.Loads += t.tx.loads
	t.stats.Stores += t.tx.stores
	t.stats.LoadsHist.Add(int(t.tx.loads))
	t.stats.StoresHist.Add(int(t.tx.stores))
	if t.tx.readLines != nil {
		t.stats.ReadLinesHist.Add(len(t.tx.readLines))
		t.stats.WriteLinesHist.Add(len(t.tx.writeLines))
	}
	t.stats.TxTimeNs += int64(t.timer.EndBlock())
}

type mvTx struct {
	sys  *System
	th   *mvThread
	slot uint64
	res  *mem.Reserver

	ro       bool // this attempt reads the begin-timestamp snapshot
	rv       uint64
	reads    txset.IndexSet // stripes read, for write-path commit validation
	wset     txset.WriteSet // redo log (insertion order = writeback order)
	acquired []lockRec
	info     tm.AbortInfo

	loads  uint64
	stores uint64

	readLines  map[mem.Line]struct{} // profiling only
	writeLines map[mem.Line]struct{}
}

func (x *mvTx) begin(ro bool) {
	x.ro = ro
	x.rv = x.sys.clock.Begin()
	x.reads.Reset()
	x.wset.Reset()
	x.acquired = x.acquired[:0]
	x.info.Reset()
	x.loads, x.stores = 0, 0
	if x.readLines != nil {
		clear(x.readLines)
		clear(x.writeLines)
	}
}

func (x *mvTx) abort() { x.sys.clock.OnAbort(x.rv) }

// Load is the read barrier: write-buffer lookup, then either the snapshot
// read (marked blocks) or the TL2 validated read.
func (x *mvTx) Load(a mem.Addr) uint64 {
	x.loads++
	if v, ok := x.wset.Get(a); ok {
		return v
	}
	idx := x.sys.index(a)
	if x.ro {
		return x.snapshotLoad(idx, a)
	}
	st := &x.sys.stripes[idx]
	e1 := st.lock.Load()
	for probe := 0; ; probe++ {
		owner, locked := lockedBy(e1)
		if !locked {
			break
		}
		if tm.WaitOrAbort(x.th.cm, x.sys.cmOf(owner), probe) {
			x.info.Fail(tm.CauseOrDisplaced(x.th.cm, tm.CauseStripeLockBusy), trace.AddrKey(uint64(a)), x.sys.blockOf(owner))
		}
		e1 = st.lock.Load()
	}
	v := x.sys.cfg.Arena.Load(a)
	if st.lock.Load() != e1 || versionOf(e1) > x.rv {
		x.info.Fail(tm.CauseReadValidation, trace.AddrKey(uint64(a)), tm.NoBlock)
	}
	x.record(idx, a)
	return v
}

// snapshotLoad serves a load at the begin timestamp without ever acquiring
// a lock or aborting a writer: wait out in-flight commits, read the arena
// when the stripe has not moved past rv, fall back to the version ring
// when it has. The only abort is mv-version-missing (ring overflow).
func (x *mvTx) snapshotLoad(idx uint32, a mem.Addr) uint64 {
	st := &x.sys.stripes[idx]
	for {
		e1 := st.lock.Load()
		if _, locked := lockedBy(e1); locked {
			// A writer is committing this stripe. Waiting (not aborting)
			// both preserves the zero-abort property and excludes the
			// committer that ticked wv <= rv but has not published yet.
			runtime.Gosched()
			continue
		}
		if versionOf(e1) <= x.rv {
			v := x.sys.cfg.Arena.Load(a)
			if st.lock.Load() != e1 {
				continue // a writer locked mid-read; retry
			}
			x.record(idx, a)
			return v
		}
		// Committed past the snapshot: the ring is the only source.
		v, ok := x.sys.ringScan(idx, a, x.rv)
		if st.lock.Load() != e1 {
			continue // the ring mutated under the scan; rescan
		}
		if !ok {
			x.info.Fail(tm.CauseMVVersionMissing, trace.AddrKey(uint64(a)), tm.NoBlock)
		}
		x.record(idx, a)
		return v
	}
}

func (x *mvTx) record(idx uint32, a mem.Addr) {
	x.reads.Add(idx)
	if x.readLines != nil {
		x.readLines[mem.LineOf(a)] = struct{}{}
	}
}

// Store buffers the value (lazy versioning, like TL2). Legal on snapshot
// attempts too: their recorded reads make the write-path commit validation
// sound, at the cost of an abort when a ring-served read is older than
// memory.
func (x *mvTx) Store(a mem.Addr, v uint64) {
	x.stores++
	x.wset.Put(a, v)
	if x.writeLines != nil {
		x.writeLines[mem.LineOf(a)] = struct{}{}
	}
}

// Alloc carves from the thread's reserver; a real capacity miss unwinds
// terminally via FailAlloc, the alloc-exhaust failpoint injects only the
// abort. Snapshot (read-only) attempts allocate too — e.g. query scratch —
// and follow the same path.
func (x *mvTx) Alloc(n int) mem.Addr {
	if x.sys.chaos.Fire(chaos.AllocExhaust, x.th.id) {
		x.info.Fail(tm.CauseAllocExhausted, 0, tm.NoBlock)
	}
	a, err := x.res.TxAlloc(n)
	if err != nil {
		x.info.FailAlloc(err)
	}
	return a
}

// Free defers the release to commit time (abort drops it), recycling the
// block through the thread's free lists.
func (x *mvTx) Free(a mem.Addr, n int) { x.res.TxFree(a, n) }

// EarlyRelease is a no-op, as on the TL2 runtimes.
func (x *mvTx) EarlyRelease(mem.Addr) {}

// Peek is an uninstrumented read; it does not see the transaction's own
// buffered writes (documented on tm.Tx).
func (x *mvTx) Peek(a mem.Addr) uint64 { return x.sys.cfg.Arena.Load(a) }

// Restart implements tm.Tx.
func (x *mvTx) Restart() { x.info.Fail(tm.CauseExplicitRetry, 0, tm.NoBlock) }

func (x *mvTx) releaseAcquired() {
	for _, rec := range x.acquired {
		x.sys.stripes[rec.idx].lock.Store(rec.old)
	}
	x.acquired = x.acquired[:0]
}

// oldVersionOf returns the pre-acquisition version of an acquired stripe.
func (x *mvTx) oldVersionOf(idx uint32) uint64 {
	for _, rec := range x.acquired {
		if rec.idx == idx {
			return versionOf(rec.old)
		}
	}
	return 0 // unreachable: every written stripe is in acquired
}

// commit is the TL2 commit — lock the write set, tick the clock, validate
// the read set, write back, release with the new version — plus the ring
// appends that retain the overwritten history for snapshot readers.
// Read-only transactions (snapshot or not) commit with zero validation.
func (x *mvTx) commit() bool {
	if x.wset.Len() == 0 {
		return true
	}
	// Failpoint: a spurious abort at lock acquisition looks exactly like
	// losing a writer-writer race, so it carries that site's natural cause.
	if x.sys.chaos.Fire(chaos.TL2LockAcquire, x.th.id) {
		x.info.Set(tm.CauseWriteWrite, 0, tm.NoBlock)
		return false
	}
	for _, e := range x.wset.Entries() {
		idx := x.sys.index(e.Addr)
		st := &x.sys.stripes[idx]
		lw := st.lock.Load()
		if owner, locked := lockedBy(lw); locked {
			if owner == x.slot {
				continue // stripe already acquired (another word, same stripe)
			}
			x.info.Set(tm.CauseWriteWrite, trace.AddrKey(uint64(e.Addr)), x.sys.blockOf(owner))
			x.releaseAcquired()
			return false
		}
		if versionOf(lw) > x.rv {
			// Committed past our snapshot; acquiring would hide it from
			// read-set validation (the standard TL2 guard). This is also
			// what keeps per-stripe versions strictly increasing, which
			// the ring lookup's newest-record argument rests on.
			x.info.Set(tm.CauseWriteWrite, trace.AddrKey(uint64(e.Addr)), tm.NoBlock)
			x.releaseAcquired()
			return false
		}
		if !st.lock.CompareAndSwap(lw, x.slot<<1|1) {
			x.info.Set(tm.CauseWriteWrite, trace.AddrKey(uint64(e.Addr)), tm.NoBlock)
			x.releaseAcquired()
			return false
		}
		x.th.lockAcquires++
		x.acquired = append(x.acquired, lockRec{idx: idx, old: lw})
	}
	wv, validate := x.sys.clock.CommitTick(x.rv)
	if validate {
		for _, idx := range x.reads.Slice() {
			e := x.sys.stripes[idx].lock.Load()
			if owner, locked := lockedBy(e); locked {
				if owner != x.slot {
					x.info.Set(tm.CauseReadValidation, trace.StripeKey(uint64(idx)), x.sys.blockOf(owner))
					x.releaseAcquired()
					return false
				}
			} else if versionOf(e) > x.rv {
				x.info.Set(tm.CauseReadValidation, trace.StripeKey(uint64(idx)), tm.NoBlock)
				x.releaseAcquired()
				return false
			}
		}
	}
	// Ring maintenance, before the writeback so pre-image records can read
	// the overwritten values, while every written stripe is still locked
	// (snapshot readers wait on the lock, so append order is invisible).
	epoch := x.sys.ringEpoch.Load()
	for _, e := range x.wset.Entries() {
		idx := x.sys.index(e.Addr)
		if x.sys.stripes[idx].epoch.Load() != epoch {
			x.sys.ringReset(idx, epoch)
		}
		if !x.sys.ringHas(idx, e.Addr) {
			// First ring-era write to this address: retain the pre-image
			// from the stripe's pre-commit version, so snapshots older
			// than this commit can still be served.
			x.sys.ringAppend(idx, x.oldVersionOf(idx)+1, e.Addr, x.sys.cfg.Arena.Load(e.Addr))
		}
		x.sys.ringAppend(idx, wv+1, e.Addr, e.Val)
	}
	for _, e := range x.wset.Entries() {
		x.sys.cfg.Arena.Store(e.Addr, e.Val)
	}
	// Failpoint: stall after ring publication and writeback, while every
	// written stripe is still locked and snapshot readers wait on us.
	x.sys.chaos.Stall(chaos.MVRingPublish, x.th.id)
	for _, rec := range x.acquired {
		x.sys.stripes[rec.idx].lock.Store(wv << 1)
	}
	x.acquired = x.acquired[:0]
	return true
}
