package htmsim

import (
	"testing"
	"testing/quick"

	"github.com/stamp-go/stamp/internal/mem"
)

func TestLineSetInsertContains(t *testing.T) {
	s := newLineSet(64)
	for l := mem.Line(1); l <= 50; l++ {
		added, ok := s.insert(l)
		if !ok || !added {
			t.Fatalf("insert %d: added=%v ok=%v", l, added, ok)
		}
	}
	if s.len() != 50 {
		t.Fatalf("len = %d", s.len())
	}
	for l := mem.Line(1); l <= 50; l++ {
		if !s.contains(l) {
			t.Fatalf("missing %d", l)
		}
	}
	if s.contains(99) {
		t.Fatal("phantom member")
	}
	// Duplicate insert.
	if added, ok := s.insert(7); added || !ok {
		t.Fatalf("duplicate insert: added=%v ok=%v", added, ok)
	}
}

func TestLineSetRemoveTombstones(t *testing.T) {
	s := newLineSet(32)
	for l := mem.Line(1); l <= 30; l++ {
		s.insert(l)
	}
	for l := mem.Line(1); l <= 30; l += 2 {
		s.remove(l)
	}
	if s.len() != 15 {
		t.Fatalf("len = %d", s.len())
	}
	for l := mem.Line(1); l <= 30; l++ {
		want := l%2 == 0
		if s.contains(l) != want {
			t.Fatalf("contains(%d) = %v after removals", l, !want)
		}
	}
	// Reinsertion through tombstones must not duplicate.
	if added, _ := s.insert(2); added {
		t.Fatal("existing member re-added through tombstone probe")
	}
	if added, _ := s.insert(1); !added {
		t.Fatal("removed member not re-addable")
	}
}

func TestLineSetClear(t *testing.T) {
	s := newLineSet(16)
	for l := mem.Line(1); l <= 10; l++ {
		s.insert(l)
	}
	s.remove(3) // leave a tombstone
	s.clear()
	if s.len() != 0 {
		t.Fatalf("len after clear = %d", s.len())
	}
	for l := mem.Line(1); l <= 10; l++ {
		if s.contains(l) {
			t.Fatalf("clear left %d", l)
		}
	}
	if added, ok := s.insert(3); !added || !ok {
		t.Fatal("insert after clear failed")
	}
}

func TestLineSetFullReportsOverflow(t *testing.T) {
	s := newLineSet(2) // 4 slots
	inserted := 0
	for l := mem.Line(1); l <= 10; l++ {
		if _, ok := s.insert(l); ok {
			inserted++
		} else {
			break
		}
	}
	if inserted < 2 || inserted > 4 {
		t.Fatalf("inserted %d before overflow, expected 2..4", inserted)
	}
}

func TestLineSetModelProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := newLineSet(256)
		model := map[mem.Line]bool{}
		for i, op := range ops {
			l := mem.Line(op%200 + 1)
			switch i % 3 {
			case 0, 1:
				added, ok := s.insert(l)
				if !ok {
					return false // cannot overflow at this size
				}
				if added == model[l] {
					return false
				}
				model[l] = true
			case 2:
				s.remove(l)
				delete(model, l)
			}
			if s.contains(l) != model[l] {
				return false
			}
		}
		if s.len() != len(model) {
			return false
		}
		for l := range model {
			if !s.contains(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
