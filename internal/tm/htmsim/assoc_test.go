package htmsim

import (
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

func TestSetTrackerWays(t *testing.T) {
	s := newSetTracker(tm.Config{CapacityLines: 16, CapacityAssoc: 2}) // 8 sets, 2 ways
	// Lines mapping to the same set: multiples of 8.
	if !s.add(8) || !s.add(16) {
		t.Fatal("first two ways must fit")
	}
	if s.add(24) {
		t.Fatal("third way in one set must overflow")
	}
	s.drop(8)
	if !s.add(24) {
		t.Fatal("way freed by drop not reusable")
	}
	s.reset()
	if !s.add(8) || !s.add(16) {
		t.Fatal("reset did not clear counters")
	}
}

func TestSetTrackerDisabled(t *testing.T) {
	s := newSetTracker(tm.Config{CapacityLines: 16, CapacityAssoc: 0})
	for l := mem.Line(0); l < 1000; l++ {
		if !s.add(l) {
			t.Fatal("disabled tracker must never overflow")
		}
	}
	s.drop(1) // must not panic
	s.reset()
}

// TestLazyAssociativityOverflow: a transaction whose lines collide in one
// cache set must overflow (serialize) even though its total footprint is
// far below CapacityLines — the paper's bayes/labyrinth+ behaviour.
func TestLazyAssociativityOverflow(t *testing.T) {
	arena := mem.NewArena(1 << 20)
	sys, err := NewLazy(tm.Config{
		Arena: arena, Threads: 1,
		CapacityLines: 1024, CapacityAssoc: 2, // 512 sets, 2 ways
	})
	if err != nil {
		t.Fatal(err)
	}
	// Allocate lines 512 apart so they all land in one set.
	step := 512 * mem.WordsPerLine
	if _, err := arena.Alloc(8*step+16), error(nil); err != nil {
		t.Fatal(err)
	}
	th := sys.Thread(0)
	th.Atomic(func(tx tm.Tx) {
		for i := 0; i < 6; i++ { // 6 lines, one set, 2 ways => overflow
			tx.Store(mem.Addr(4+i*step), uint64(i))
		}
	})
	for i := 0; i < 6; i++ {
		if got := arena.Load(mem.Addr(4 + i*step)); got != uint64(i) {
			t.Fatalf("word %d = %d after overflow commit", i, got)
		}
	}
	if sys.Stats().Total.Aborts == 0 {
		t.Fatal("expected at least one overflow abort before serial retry")
	}
}

// TestEagerAssociativitySpills: the eager HTM must switch to signature mode
// on an associativity conflict and still commit correctly.
func TestEagerAssociativitySpills(t *testing.T) {
	arena := mem.NewArena(1 << 20)
	sys, err := NewEager(tm.Config{
		Arena: arena, Threads: 1,
		CapacityLines: 1024, CapacityAssoc: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	step := 512 * mem.WordsPerLine
	arena.Alloc(8*step + 16)
	th := sys.Thread(0)
	th.Atomic(func(tx tm.Tx) {
		for i := 0; i < 6; i++ {
			tx.Store(mem.Addr(4+i*step), uint64(i)+100)
		}
	})
	for i := 0; i < 6; i++ {
		if got := arena.Load(mem.Addr(4 + i*step)); got != uint64(i)+100 {
			t.Fatalf("word %d = %d after sig-mode commit", i, got)
		}
	}
	if sys.txs[0].overflowed.Load() {
		t.Fatal("overflow flag must clear after commit")
	}
}
