// Package htmsim implements software simulations of the paper's two
// hardware TM systems: a lazy-versioning TCC-style HTM and an eager-
// versioning LogTM-style HTM. "Hardware" here means: conflict detection at
// 32-byte cache-line granularity, a bounded speculative capacity with the
// paper's overflow behaviours (serialized execution for the lazy HTM, Bloom
// signatures with false conflicts for the eager HTM), implicit barriers
// (early release actually matters), and no software read/write-buffer
// overhead models beyond what the simulation itself costs.
package htmsim

import (
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
)

const (
	emptySlot     = 0          // line 0 is never allocated (word 0 is reserved)
	tombstoneSlot = 0xffffffff // deleted marker (early release)
)

// lineSet is a fixed-capacity open-addressing hash set of cache lines with
// single-writer / multi-reader atomicity: the owning transaction inserts and
// removes, while committing transactions probe it concurrently during
// conflict detection. All slot accesses are atomic, so probes are race-free;
// a probe that overlaps an insert may miss it, which the lazy HTM's commit
// epoch protocol compensates for (see lazy.go).
type lineSet struct {
	slots []atomic.Uint32
	mask  uint32
	count int // live entries; owner-only
}

func newLineSet(capacity int) *lineSet {
	n := uint32(4)
	for int(n) < 2*capacity {
		n <<= 1
	}
	return &lineSet{slots: make([]atomic.Uint32, n), mask: n - 1}
}

func (s *lineSet) hash(l mem.Line) uint32 {
	x := uint32(l) * 2654435761
	return (x ^ x>>16) & s.mask
}

// insert adds l; reports whether it was new. Owner-only. Returns ok=false
// when the set is full (capacity overflow).
func (s *lineSet) insert(l mem.Line) (added, ok bool) {
	i := s.hash(l)
	free := uint32(0xffffffff) // first tombstone seen, if any
	for probes := uint32(0); probes <= s.mask; probes++ {
		v := s.slots[i].Load()
		switch v {
		case uint32(l):
			return false, true
		case emptySlot:
			if free == 0xffffffff {
				free = i
			}
			s.slots[free].Store(uint32(l))
			s.count++
			return true, true
		case tombstoneSlot:
			if free == 0xffffffff {
				free = i
			}
		}
		i = (i + 1) & s.mask
	}
	if free != 0xffffffff {
		s.slots[free].Store(uint32(l))
		s.count++
		return true, true
	}
	return false, false
}

// contains probes for l. Safe for concurrent use against the owner.
func (s *lineSet) contains(l mem.Line) bool {
	i := s.hash(l)
	for probes := uint32(0); probes <= s.mask; probes++ {
		v := s.slots[i].Load()
		switch v {
		case uint32(l):
			return true
		case emptySlot:
			return false
		}
		i = (i + 1) & s.mask
	}
	return false
}

// remove deletes l if present (early release). Owner-only.
func (s *lineSet) remove(l mem.Line) {
	i := s.hash(l)
	for probes := uint32(0); probes <= s.mask; probes++ {
		v := s.slots[i].Load()
		switch v {
		case uint32(l):
			s.slots[i].Store(tombstoneSlot)
			s.count--
			return
		case emptySlot:
			return
		}
		i = (i + 1) & s.mask
	}
}

// clear empties the set (including tombstones). Owner-only.
func (s *lineSet) clear() {
	for i := range s.slots {
		if s.slots[i].Load() != emptySlot {
			s.slots[i].Store(emptySlot)
		}
	}
	s.count = 0
}

// len returns the number of live entries. Owner-only.
func (s *lineSet) len() int { return s.count }
