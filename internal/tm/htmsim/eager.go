package htmsim

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/sig"
	"github.com/stamp-go/stamp/internal/tm/trace"
	"github.com/stamp-go/stamp/internal/tm/txset"
)

// Eager simulates the paper's LogTM-style eager HTM: data versioning is
// eager (writes go to memory in place, old values to an undo log), conflict
// detection is early (at access time, through a line-ownership directory
// that models the coherence protocol), granularity is the 32-byte line, the
// requester loses on conflict and restarts immediately with no backoff, a
// transaction that has aborted PriorityAfter (32) times gains high priority
// so others cannot abort it (the livelock escape), and capacity overflow
// moves a transaction's addresses into a Bloom-filter signature whose false
// positives cause the conservative extra aborts the paper observes.
type Eager struct {
	cfg     tm.Config
	dir     *directory
	threads []*eagerThread
	txs     []*eagerTx
	chaos   *chaos.Injector // nil unless Config.Chaos armed failpoints
}

// NewEager constructs the LogTM-style HTM simulation.
func NewEager(cfg tm.Config) (*Eager, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Hardware conflict resolution (requester loses, priority escape) is
	// part of the simulated machine and stays fixed; the pluggable policy
	// only governs the restart delay, which the paper's HTM does not apply
	// — hence the "none" default.
	pool, err := tm.NewCMPool(cfg, tm.NoCM)
	if err != nil {
		return nil, err
	}
	s := &Eager{cfg: cfg, dir: newDirectory(), chaos: pool.Chaos()}
	s.threads = make([]*eagerThread, cfg.Threads)
	s.txs = make([]*eagerTx, cfg.Threads)
	for i := range s.threads {
		x := &eagerTx{
			sys:        s,
			slot:       i,
			res:        cfg.NewReserver(),
			sets:       newSetTracker(cfg),
			readLines:  make(map[mem.Line]struct{}),
			writeLines: make(map[mem.Line]struct{}),
		}
		s.txs[i] = x
		t := &eagerThread{id: i, sys: s, tx: x}
		t.stats.Tracer = cfg.NewTracer()
		t.cm = pool.ForThread(i, &t.stats)
		s.threads[i] = t
	}
	return s, nil
}

// Name implements tm.System.
func (s *Eager) Name() string { return "htm-eager" }

// Arena implements tm.System.
func (s *Eager) Arena() *mem.Arena { return s.cfg.Arena }

// NThreads implements tm.System.
func (s *Eager) NThreads() int { return s.cfg.Threads }

// Thread implements tm.System.
func (s *Eager) Thread(id int) tm.Thread { return s.threads[id] }

// Stats implements tm.System.
func (s *Eager) Stats() tm.Stats {
	per := make([]*tm.ThreadStats, len(s.threads))
	for i, t := range s.threads {
		per[i] = &t.stats
	}
	return tm.Aggregate(per)
}

// blockOf returns the atomic block the transaction in slot is currently
// executing (tm.NoBlock when idle or out of range), for blaming the enemy
// call site in conflict attribution.
func (s *Eager) blockOf(slot int) tm.BlockID {
	if slot >= 0 && slot < len(s.threads) {
		return tm.BlockID(s.threads[slot].curBlock.Load())
	}
	return tm.NoBlock
}

type eagerThread struct {
	id    int
	sys   *Eager
	stats tm.ThreadStats
	tx    *eagerTx
	cm    tm.ContentionManager
	timer tm.AtomicTimer

	// curBlock publishes the block this thread is currently inside, so
	// enemies that abort against us (or that we kill) can blame the call
	// site.
	curBlock atomic.Int32
}

func (t *eagerThread) ID() int                { return t.id }
func (t *eagerThread) Stats() *tm.ThreadStats { return &t.stats }

func (t *eagerThread) Atomic(fn func(tm.Tx)) { t.AtomicAt(tm.NoBlock, fn) }

func (t *eagerThread) AtomicAt(b tm.BlockID, fn func(tm.Tx)) {
	t.timer.BeginBlock()
	t.stats.Starts++
	t.stats.Tracer.SampleBlock(t.id, int32(b))
	t.curBlock.Store(int32(b))
	t.cm.OnStart()
	aborts := 0
	for {
		t.tx.begin(aborts >= t.sys.cfg.PriorityAfter)
		if tm.Attempt(t.tx, fn) && t.tx.commit() {
			break
		}
		t.tx.rollback()
		aborts++
		t.stats.Aborts++
		t.stats.RecordAbort(b, t.tx.info.Cause, t.tx.info.Key, t.tx.info.Blame)
		t.stats.Tracer.Emit(trace.EvAbort, t.tx.info.Cause, t.id, int32(b), t.tx.info.Key)
		t.stats.Wasted += t.tx.loads + t.tx.stores
		t.tx.res.OnAbort()
		if t.tx.info.Err != nil {
			// Terminal alloc exhaustion: the abort is accounted, rollback
			// replayed the undo log and withdrew the directory marks —
			// unwind the block instead of retrying.
			t.curBlock.Store(int32(tm.NoBlock))
			tm.AbandonBlock(t.cm)
			t.tx.info.BailAlloc()
		}
		// Default policy is "none": immediate restart, no backoff (Section
		// IV); the undo-log replay itself is the only delay, as the paper
		// notes. An explicit Config.CM adds its delay here.
		t.cm.OnAbort(aborts)
	}
	t.tx.res.OnCommit()
	t.curBlock.Store(int32(tm.NoBlock))
	t.cm.OnCommit()
	t.stats.Commits++
	t.stats.Tracer.Emit(trace.EvCommit, tm.CauseUnknown, t.id, int32(b), 0)
	t.stats.RecordBlock(b, "htm-eager", uint64(aborts), t.tx.loads, t.tx.stores)
	t.stats.Loads += t.tx.loads
	t.stats.Stores += t.tx.stores
	t.stats.LoadsHist.Add(int(t.tx.loads))
	t.stats.StoresHist.Add(int(t.tx.stores))
	t.stats.ReadLinesHist.Add(len(t.tx.readLines))
	t.stats.WriteLinesHist.Add(len(t.tx.writeLines))
	t.stats.TxTimeNs += int64(t.timer.EndBlock())
}

type eagerTx struct {
	sys  *Eager
	slot int
	res  *mem.Reserver // thread-private allocation chunk

	active   atomic.Bool
	aborted  atomic.Bool
	priority atomic.Bool
	killedBy atomic.Uint64 // who flagged us and on what line (see killPack)
	info     tm.AbortInfo  // pending-abort cause/location/blame registers

	readLines  map[mem.Line]struct{} // lines I hold reader marks on (or sig entries)
	writeLines map[mem.Line]struct{} // lines I hold the writer mark on (or sig entries)
	sets       *setTracker           // associativity model (Table V: 4-way)
	undo       txset.WriteSet        // addr → old value; doubles as the written-set

	// Overflow mode: addresses past capacity live in signatures instead of
	// the directory; other transactions test them conservatively.
	overflowed atomic.Bool
	readSig    sig.Signature
	writeSig   sig.Signature

	loads  uint64
	stores uint64
}

func (x *eagerTx) begin(priority bool) {
	x.loads, x.stores = 0, 0
	x.info.Reset()
	clear(x.readLines)
	clear(x.writeLines)
	x.sets.reset()
	x.undo.Reset()
	x.killedBy.Store(0)
	x.aborted.Store(false)
	x.priority.Store(priority)
	x.readSig.Clear()
	x.writeSig.Clear()
	x.overflowed.Store(false)
	x.active.Store(true)
}

// rollback restores memory from the undo log and withdraws all conflict-
// detection state, then leaves the transaction inactive.
func (x *eagerTx) rollback() {
	undo := x.undo.Entries()
	for i := len(undo) - 1; i >= 0; i-- {
		x.sys.cfg.Arena.Store(undo[i].Addr, undo[i].Val)
	}
	x.undo.Reset()
	x.releaseMarks()
	x.active.Store(false)
}

// commit publishes by withdrawing conflict-detection state; the data is
// already in place.
func (x *eagerTx) commit() bool {
	// Eager conflict detection keeps running transactions disjoint, so no
	// commit-time validation is needed; only a pending abort request (from a
	// priority transaction) can invalidate us here.
	if x.aborted.Load() {
		blame, key := tm.KillUnpack(x.killedBy.Load())
		x.info.Set(tm.CauseCMKill, key, blame)
		return false
	}
	x.undo.Reset()
	x.releaseMarks()
	x.active.Store(false)
	return true
}

func (x *eagerTx) releaseMarks() {
	for l := range x.readLines {
		x.sys.dir.dropReader(l, x.slot)
	}
	for l := range x.writeLines {
		x.sys.dir.dropWriter(l, x.slot)
	}
	// Signatures are cleared only after memory is restored (rollback runs
	// the undo log first), so a reader that raced past a cleared signature
	// can only observe restored or committed data.
	x.readSig.Clear()
	x.writeSig.Clear()
	x.overflowed.Store(false)
}

func (x *eagerTx) pollAbort() {
	if x.aborted.Load() {
		// Flagged by a priority transaction — arbitration killed us.
		blame, key := tm.KillUnpack(x.killedBy.Load())
		x.info.Fail(tm.CauseCMKill, key, blame)
	}
}

// conflictWith resolves a conflict on line l against victim, attributing a
// requester-loses abort to cause (htm-conflict for precise directory hits,
// signature-conflict for Bloom hits). Requester loses: the caller aborts
// itself — unless it holds priority and outranks the victim, in which case
// the victim is flagged and the caller waits for it to withdraw (the
// paper's high-priority escape). When both hold priority the lower slot
// wins, so priority conflicts always have a global winner and cannot
// livelock. Returns only when the caller may retry the barrier.
func (x *eagerTx) conflictWith(victim *eagerTx, l mem.Line, cause tm.AbortCause) {
	if victim == nil {
		x.info.Fail(cause, trace.LineKey(uint64(l)), tm.NoBlock)
	}
	win := x.priority.Load() && (!victim.priority.Load() || x.slot < victim.slot)
	if !win {
		// Requester loses; blame the line's current holder.
		x.info.Fail(cause, trace.LineKey(uint64(l)), x.sys.blockOf(victim.slot))
	}
	victim.killedBy.Store(tm.KillPack(x.sys.blockOf(x.slot), l))
	victim.aborted.Store(true)
	for victim.active.Load() && victim.aborted.Load() {
		x.pollAbort() // a cycle of priority waits resolves through flags
		tm.Spin(64)
		runtime.Gosched() // the victim may need our core to roll back
	}
}

// checkOverflowSigs tests every other overflowed transaction's signatures
// for line l. write=true also conflicts with readers. The caller has
// already published its own mark (directory entry or signature bit), so of
// two racing conflicting transactions at least one sees the other.
func (x *eagerTx) checkOverflowSigs(l mem.Line, write bool) {
	for _, other := range x.sys.txs {
		if other.slot == x.slot {
			continue
		}
		for other.active.Load() && other.overflowed.Load() &&
			(other.writeSig.Test(uint32(l)) || (write && other.readSig.Test(uint32(l)))) {
			// Retries us, or waits out the victim. Bloom hits include false
			// positives, so they carry their own cause.
			x.conflictWith(other, l, tm.CauseSignatureConflict)
		}
	}
}

// trackCapacity accounts a newly acquired line in the capacity model and
// reports whether the speculative buffer still holds everything (false
// means the transaction must spill to signatures).
func (x *eagerTx) trackCapacity(l mem.Line) bool {
	if len(x.readLines)+len(x.writeLines) >= x.sys.cfg.CapacityLines {
		return false
	}
	return x.sets.add(l)
}

// Load implements the eager read barrier.
func (x *eagerTx) Load(a mem.Addr) uint64 {
	x.loads++
	x.pollAbort()
	l := mem.LineOf(a)
	if _, mine := x.readLines[l]; mine {
		return x.sys.cfg.Arena.Load(a)
	}
	if _, mine := x.writeLines[l]; mine {
		return x.sys.cfg.Arena.Load(a)
	}
	// Ordering matters: (1) publish our own access (signature bit when
	// overflowed), (2) the directory operation (atomic publish+check for
	// directory-tracked transactions), (3) probe other transactions'
	// signatures, (4) touch memory. With every transaction publishing
	// before it probes, at least one side of any race sees the other.
	x.readLines[l] = struct{}{}
	if !x.overflowed.Load() && !x.trackCapacity(l) {
		x.spillToSignatures()
	}
	sigOnly := x.overflowed.Load()
	if sigOnly {
		x.readSig.Insert(uint32(l))
	}
	for {
		x.pollAbort()
		writer := x.sys.dir.addReader(l, x.slot, sigOnly)
		if writer < 0 {
			break
		}
		x.conflictWith(x.sys.txs[writer], l, tm.CauseHTMConflict)
	}
	x.checkOverflowSigs(l, false)
	return x.sys.cfg.Arena.Load(a)
}

// Store implements the eager write barrier: gain exclusive ownership, log
// the old value, write in place.
func (x *eagerTx) Store(a mem.Addr, v uint64) {
	x.stores++
	x.pollAbort()
	l := mem.LineOf(a)
	// Failpoint: a spurious abort at the ownership claim looks exactly like
	// a precise directory conflict, so it carries that site's natural cause.
	// The undo log makes aborting here safe at any point in the attempt.
	if x.sys.chaos.Fire(chaos.HTMArbitrate, x.slot) {
		x.info.Fail(tm.CauseHTMConflict, trace.LineKey(uint64(l)), tm.NoBlock)
	}
	if _, mine := x.writeLines[l]; !mine {
		// Publish-then-probe; see the ordering comment in Load.
		x.writeLines[l] = struct{}{}
		if _, alsoRead := x.readLines[l]; !alsoRead && !x.overflowed.Load() && !x.trackCapacity(l) {
			x.spillToSignatures()
		}
		sigOnly := x.overflowed.Load()
		if sigOnly {
			x.writeSig.Insert(uint32(l))
		}
		for {
			x.pollAbort()
			writerVictim, readers := x.sys.dir.claimWriter(l, x.slot, sigOnly, x.priority.Load())
			if writerVictim >= 0 {
				x.conflictWith(x.sys.txs[writerVictim], l, tm.CauseHTMConflict)
				continue
			}
			if readers == 0 {
				break
			}
			if !x.priority.Load() {
				// Requester loses against the reader set; blame the first
				// reader holding the line.
				x.info.Fail(tm.CauseHTMConflict, trace.LineKey(uint64(l)),
					x.sys.blockOf(bits.TrailingZeros64(readers)))
			}
			// Priority: the reservation above blocks new readers; flag the
			// current ones and wait until each drops its mark.
			for r := 0; r < 64; r++ {
				if readers&(1<<uint(r)) == 0 {
					continue
				}
				victim := x.sys.txs[r]
				for x.sys.dir.hasReader(l, r) {
					x.pollAbort()
					if !victim.priority.Load() || x.slot < victim.slot {
						victim.killedBy.Store(tm.KillPack(x.sys.blockOf(x.slot), l))
						victim.aborted.Store(true)
					} else {
						// Outranked; give way.
						x.info.Fail(tm.CauseHTMConflict, trace.LineKey(uint64(l)),
							x.sys.blockOf(victim.slot))
					}
					tm.Spin(64)
					runtime.Gosched()
				}
			}
		}
		x.checkOverflowSigs(l, true)
	}
	// Log the old value only on the first store to a.
	if !x.undo.Contains(a) {
		x.undo.Insert(a, x.sys.cfg.Arena.Load(a))
	}
	x.sys.cfg.Arena.Store(a, v)
}

// spillToSignatures enters overflow mode: current and future lines are
// summarized in Bloom signatures that other transactions check
// conservatively. Directory marks for already-held lines are kept (they are
// precise and harmless); new lines stop acquiring directory marks.
func (x *eagerTx) spillToSignatures() {
	for l := range x.readLines {
		x.readSig.Insert(uint32(l))
	}
	for l := range x.writeLines {
		x.writeSig.Insert(uint32(l))
	}
	x.overflowed.Store(true)
}

// Alloc draws from the thread-private reservation chunk; line-aligned
// chunks keep one thread's allocations off another's conflict-detection
// lines (line granularity makes allocator false sharing a real abort —
// recycled free-list blocks weaken that disjointness, trading spurious
// conflicts for a bounded arena high-water). A real capacity miss unwinds
// terminally via FailAlloc; the alloc-exhaust failpoint injects only the
// abort (the undo log makes either a plain rollback).
func (x *eagerTx) Alloc(n int) mem.Addr {
	if x.sys.chaos.Fire(chaos.AllocExhaust, x.slot) {
		x.info.Fail(tm.CauseAllocExhausted, 0, tm.NoBlock)
	}
	a, err := x.res.TxAlloc(n)
	if err != nil {
		x.info.FailAlloc(err)
	}
	return a
}

// Free defers the release to commit time (rollback drops it), recycling the
// block through the thread's free lists.
func (x *eagerTx) Free(a mem.Addr, n int) { x.res.TxFree(a, n) }

// EarlyRelease drops the reader mark for a line ("the eager HTM cannot
// perform early-release on addresses that hit in the Bloom filter", so in
// overflow mode the signature entry stays and keeps generating conflicts —
// the exact labyrinth+ behaviour from Section V).
func (x *eagerTx) EarlyRelease(a mem.Addr) {
	if !x.sys.cfg.EnableEarlyRelease {
		return
	}
	l := mem.LineOf(a)
	if _, mine := x.readLines[l]; !mine {
		return
	}
	if _, alsoWrite := x.writeLines[l]; alsoWrite {
		return
	}
	if x.overflowed.Load() {
		return // cannot remove from a Bloom filter
	}
	x.sys.dir.dropReader(l, x.slot)
	delete(x.readLines, l)
}

// Peek is an uninstrumented read (see the lazy HTM note).
func (x *eagerTx) Peek(a mem.Addr) uint64 { return x.sys.cfg.Arena.Load(a) }

// Restart implements tm.Tx.
func (x *eagerTx) Restart() { x.info.Fail(tm.CauseExplicitRetry, 0, tm.NoBlock) }

// directory models the coherence-protocol side of conflict detection: for
// each line touched by a running transaction it records the writing
// transaction (exclusive) and the reader set (shared), sharded by line hash.
type directory struct {
	shards [256]dirShard
}

type dirShard struct {
	mu sync.Mutex
	m  map[mem.Line]lineOwn
	_  [40]byte // pad shards apart
}

type lineOwn struct {
	writer  int32 // slot, or -1
	readers uint64
}

func newDirectory() *directory {
	d := &directory{}
	for i := range d.shards {
		d.shards[i].m = make(map[mem.Line]lineOwn)
	}
	return d
}

func (d *directory) shard(l mem.Line) *dirShard {
	return &d.shards[(uint32(l)*2654435761)>>24]
}

// addReader records slot as a reader of l unless another transaction holds
// the writer mark; it returns that writer's slot, or -1 on success. In
// overflow mode (sigOnly) the conflict check still happens but no mark is
// recorded (the caller records a signature instead).
func (d *directory) addReader(l mem.Line, slot int, sigOnly bool) int32 {
	s := d.shard(l)
	s.mu.Lock()
	own, ok := s.m[l]
	if !ok {
		own = lineOwn{writer: -1}
	}
	if own.writer >= 0 && own.writer != int32(slot) {
		w := own.writer
		s.mu.Unlock()
		return w
	}
	if !sigOnly {
		own.readers |= 1 << uint(slot)
		s.m[l] = own
	}
	s.mu.Unlock()
	return -1
}

// claimWriter tries to make slot the exclusive writer of l.
//
// It returns (writerConflict, readerMask): writerConflict >= 0 names another
// transaction holding the writer slot; otherwise readerMask holds the other
// current readers (0 = success, the line is ours). With reserve set (the
// high-priority escape), the writer slot is claimed even while readers
// remain — the reservation blocks new readers so the priority transaction
// can drain the existing ones instead of chasing rejoining readers forever
// (LogTM's sticky-state trick; without it a priority writer livelocks
// against a crowd of readers on a hot line).
func (d *directory) claimWriter(l mem.Line, slot int, sigOnly, reserve bool) (int32, uint64) {
	s := d.shard(l)
	s.mu.Lock()
	own, ok := s.m[l]
	if !ok {
		own = lineOwn{writer: -1}
	}
	if own.writer >= 0 && own.writer != int32(slot) {
		w := own.writer
		s.mu.Unlock()
		return w, 0
	}
	others := own.readers &^ (1 << uint(slot))
	switch {
	case others == 0 && !sigOnly:
		own.writer = int32(slot) // clean exclusive claim
		s.m[l] = own
	case others != 0 && reserve:
		own.writer = int32(slot) // reservation: block new readers, drain old
		s.m[l] = own
	}
	s.mu.Unlock()
	return -1, others
}

// hasReader reports whether slot currently holds a reader mark on l.
func (d *directory) hasReader(l mem.Line, slot int) bool {
	s := d.shard(l)
	s.mu.Lock()
	own, ok := s.m[l]
	s.mu.Unlock()
	return ok && own.readers&(1<<uint(slot)) != 0
}

// dropReader removes slot's reader mark on l.
func (d *directory) dropReader(l mem.Line, slot int) {
	s := d.shard(l)
	s.mu.Lock()
	if own, ok := s.m[l]; ok {
		own.readers &^= 1 << uint(slot)
		if own.readers == 0 && own.writer < 0 {
			delete(s.m, l)
		} else {
			s.m[l] = own
		}
	}
	s.mu.Unlock()
}

// dropWriter removes slot's writer mark on l.
func (d *directory) dropWriter(l mem.Line, slot int) {
	s := d.shard(l)
	s.mu.Lock()
	if own, ok := s.m[l]; ok && own.writer == int32(slot) {
		own.writer = -1
		if own.readers == 0 {
			delete(s.m, l)
		} else {
			s.m[l] = own
		}
	}
	s.mu.Unlock()
}
