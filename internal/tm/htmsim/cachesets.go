package htmsim

import (
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

// setTracker models the set-associative structure of the speculative buffer
// (Table V: 64 KB, 4-way, 32 B lines => 512 sets of 4 ways). A transaction
// whose footprint puts more than `ways` distinct lines into one set cannot
// keep them all buffered and must take its system's overflow path — this is
// what makes the paper's bayes and labyrinth+ working sets overflow long
// before the total line budget is reached. ways == 0 disables the model
// (fully associative buffer).
type setTracker struct {
	counts []uint16
	mask   uint32
	ways   uint16
}

func newSetTracker(cfg tm.Config) *setTracker {
	if cfg.CapacityAssoc <= 0 {
		return &setTracker{}
	}
	nSets := cfg.CapacityLines / cfg.CapacityAssoc
	n := uint32(1)
	for int(n) < nSets {
		n <<= 1
	}
	return &setTracker{
		counts: make([]uint16, n),
		mask:   n - 1,
		ways:   uint16(cfg.CapacityAssoc),
	}
}

// add records a newly tracked line; it reports false when the line's set is
// already full (capacity overflow).
func (s *setTracker) add(l mem.Line) bool {
	if s.counts == nil {
		return true
	}
	i := uint32(l) & s.mask
	if s.counts[i] >= s.ways {
		return false
	}
	s.counts[i]++
	return true
}

// drop releases a tracked line (early release).
func (s *setTracker) drop(l mem.Line) {
	if s.counts == nil {
		return
	}
	i := uint32(l) & s.mask
	if s.counts[i] > 0 {
		s.counts[i]--
	}
}

// reset clears all set counters for the next transaction.
func (s *setTracker) reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
}
