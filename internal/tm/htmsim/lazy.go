package htmsim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/trace"
	"github.com/stamp-go/stamp/internal/tm/txset"
)

// Lazy simulates the paper's TCC-style lazy HTM: speculative writes are
// buffered, conflict detection happens at commit through the "coherence
// protocol" (here: a commit arbiter that probes every active transaction's
// line sets and aborts overlapping ones — committer wins), detection is at
// 32-byte line granularity, aborted transactions restart immediately with no
// backoff, and capacity overflow temporarily serializes transaction
// execution, exactly as described in Section IV.
//
// Commit atomicity versus racing read barriers uses a seqlock-style epoch:
// the arbiter makes the epoch odd while it probes victim sets and writes
// back; a read barrier that overlaps an odd epoch (or observes the epoch
// change under it) retries its insert+load, so a victim can never keep a
// stale value without either being flagged or re-reading the committed one.
type Lazy struct {
	cfg      tm.Config
	commitMu sync.Mutex
	serialMu sync.RWMutex
	epoch    atomic.Uint64
	threads  []*lazyThread
	txs      []*lazyTx
	chaos    *chaos.Injector // nil unless Config.Chaos armed failpoints
}

// NewLazy constructs the TCC-style HTM simulation.
func NewLazy(cfg tm.Config) (*Lazy, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// As on the eager HTM, hardware conflict resolution (committer wins)
	// stays fixed; the pluggable policy only governs the restart delay,
	// defaulting to the paper's immediate restart.
	pool, err := tm.NewCMPool(cfg, tm.NoCM)
	if err != nil {
		return nil, err
	}
	s := &Lazy{cfg: cfg, chaos: pool.Chaos()}
	s.threads = make([]*lazyThread, cfg.Threads)
	s.txs = make([]*lazyTx, cfg.Threads)
	for i := range s.threads {
		x := &lazyTx{
			sys:        s,
			slot:       i,
			res:        cfg.NewReserver(),
			readSet:    newLineSet(cfg.CapacityLines),
			writeSet:   newLineSet(cfg.CapacityLines),
			sets:       newSetTracker(cfg),
			serialRead: make(map[mem.Line]struct{}),
			serialWrit: make(map[mem.Line]struct{}),
		}
		s.txs[i] = x
		t := &lazyThread{id: i, sys: s, tx: x}
		t.stats.Tracer = cfg.NewTracer()
		t.cm = pool.ForThread(i, &t.stats)
		s.threads[i] = t
	}
	return s, nil
}

// Name implements tm.System.
func (s *Lazy) Name() string { return "htm-lazy" }

// Arena implements tm.System.
func (s *Lazy) Arena() *mem.Arena { return s.cfg.Arena }

// NThreads implements tm.System.
func (s *Lazy) NThreads() int { return s.cfg.Threads }

// Thread implements tm.System.
func (s *Lazy) Thread(id int) tm.Thread { return s.threads[id] }

// Stats implements tm.System.
func (s *Lazy) Stats() tm.Stats {
	per := make([]*tm.ThreadStats, len(s.threads))
	for i, t := range s.threads {
		per[i] = &t.stats
	}
	return tm.Aggregate(per)
}

type lazyThread struct {
	id    int
	sys   *Lazy
	stats tm.ThreadStats
	tx    *lazyTx
	cm    tm.ContentionManager
	timer tm.AtomicTimer

	// curBlock publishes the block this thread is currently inside, so a
	// committer that flags us can blame the call site in the attribution
	// it deposits (see killPack).
	curBlock atomic.Int32
}

func (t *lazyThread) ID() int                { return t.id }
func (t *lazyThread) Stats() *tm.ThreadStats { return &t.stats }

func (t *lazyThread) Atomic(fn func(tm.Tx)) { t.AtomicAt(tm.NoBlock, fn) }

func (t *lazyThread) AtomicAt(b tm.BlockID, fn func(tm.Tx)) {
	t.timer.BeginBlock()
	t.stats.Starts++
	t.stats.Tracer.SampleBlock(t.id, int32(b))
	t.curBlock.Store(int32(b))
	t.cm.OnStart()
	aborts := 0
	for {
		t.tx.begin()
		ok := tm.Attempt(t.tx, fn) && t.tx.commit()
		if !ok {
			// Serial (overflow) attempts store in place; replay their undo
			// log before end releases the serial lock, so no other
			// transaction observes a failed attempt's partial writes.
			t.tx.rollbackSerial()
		}
		t.tx.end()
		if ok {
			break
		}
		aborts++
		t.stats.Aborts++
		t.stats.RecordAbort(b, t.tx.info.Cause, t.tx.info.Key, t.tx.info.Blame)
		t.stats.Tracer.Emit(trace.EvAbort, t.tx.info.Cause, t.id, int32(b), t.tx.info.Key)
		t.stats.Wasted += t.tx.loads + t.tx.stores
		t.tx.res.OnAbort()
		if t.tx.info.Err != nil {
			// Terminal alloc exhaustion: the abort is accounted and end
			// already released the serial/active state — unwind the block
			// instead of retrying.
			t.curBlock.Store(int32(tm.NoBlock))
			tm.AbandonBlock(t.cm)
			t.tx.info.BailAlloc()
		}
		// Default policy is "none": the lazy HTM restarts aborted
		// transactions immediately (Section IV). Overflowed attempts retry
		// in serial mode; that switch happens inside begin via tx.serial.
		t.cm.OnAbort(aborts)
	}
	t.tx.res.OnCommit()
	t.curBlock.Store(int32(tm.NoBlock))
	t.cm.OnCommit()
	t.stats.Commits++
	t.stats.Tracer.Emit(trace.EvCommit, tm.CauseUnknown, t.id, int32(b), 0)
	t.stats.RecordBlock(b, "htm-lazy", uint64(aborts), t.tx.loads, t.tx.stores)
	t.stats.Loads += t.tx.loads
	t.stats.Stores += t.tx.stores
	t.stats.LoadsHist.Add(int(t.tx.loads))
	t.stats.StoresHist.Add(int(t.tx.stores))
	t.stats.ReadLinesHist.Add(t.tx.readLineCount())
	t.stats.WriteLinesHist.Add(t.tx.writeLineCount())
	t.stats.TxTimeNs += int64(t.timer.EndBlock())
	t.tx.serial = false
}

type lazyTx struct {
	sys  *Lazy
	slot int
	res  *mem.Reserver // thread-private allocation chunk

	active   atomic.Bool
	aborted  atomic.Bool
	killedBy atomic.Uint64 // who flagged us and on what line (see killPack)
	info     tm.AbortInfo  // pending-abort cause/location/blame registers

	readSet  *lineSet
	writeSet *lineSet
	sets     *setTracker    // associativity model (Table V: 4-way)
	wbuf     txset.WriteSet // speculative word buffer (redo log)

	// serial (overflow) mode: the transaction runs alone with direct memory
	// access; plain maps suffice and have no capacity limit. serial selects
	// the mode for the next attempt; heldSerial records which lock the
	// current attempt actually took (overflow flips serial mid-attempt).
	serial     bool
	heldSerial bool
	serialRead map[mem.Line]struct{}
	serialWrit map[mem.Line]struct{}
	serialUndo []undoRec // old values of serial-mode in-place stores

	loads  uint64
	stores uint64
}

// undoRec is one serial-mode in-place store's pre-image (see rollbackSerial).
type undoRec struct {
	a mem.Addr
	v uint64
}

func (x *lazyTx) readLineCount() int {
	if x.serial {
		return len(x.serialRead)
	}
	return x.readSet.len()
}

func (x *lazyTx) writeLineCount() int {
	if x.serial {
		return len(x.serialWrit)
	}
	return x.writeSet.len()
}

func (x *lazyTx) begin() {
	x.loads, x.stores = 0, 0
	x.info.Reset()
	x.heldSerial = x.serial
	if x.serial {
		// Overflow: wait until we are the only transaction in the system,
		// then execute non-speculatively ("temporarily serializes the
		// execution of transactions").
		x.sys.serialMu.Lock()
		clear(x.serialRead)
		clear(x.serialWrit)
		x.serialUndo = x.serialUndo[:0]
		return
	}
	x.sys.serialMu.RLock()
	x.readSet.clear()
	x.writeSet.clear()
	x.sets.reset()
	x.wbuf.Reset()
	x.killedBy.Store(0)
	x.aborted.Store(false)
	x.active.Store(true)
}

// setKilled stamps the pending-abort registers from the attribution the
// flagging committer deposited in killedBy.
func (x *lazyTx) setKilled() {
	blame, key := tm.KillUnpack(x.killedBy.Load())
	x.info.Set(tm.CauseHTMConflict, key, blame)
}

// failKilled is setKilled plus the retry unwind, for flag polls inside the
// attempt.
func (x *lazyTx) failKilled() {
	x.setKilled()
	tm.Retry()
}

// rollbackSerial replays a failed serial attempt's undo log (newest first)
// while the serial lock is still held, so an explicit Restart or a terminal
// allocation miss in overflow mode never exposes partial in-place writes.
// No-op for speculative attempts (their writes never left the buffer).
func (x *lazyTx) rollbackSerial() {
	if !x.heldSerial {
		return
	}
	for i := len(x.serialUndo) - 1; i >= 0; i-- {
		x.sys.cfg.Arena.Store(x.serialUndo[i].a, x.serialUndo[i].v)
	}
	x.serialUndo = x.serialUndo[:0]
}

// end releases begin's locks after a commit or an abort.
func (x *lazyTx) end() {
	if x.heldSerial {
		x.sys.serialMu.Unlock()
		return
	}
	x.active.Store(false)
	x.sys.serialMu.RUnlock()
}

// overflow switches the next attempt to serial mode and aborts this one,
// attributing the abort to the line whose insert tripped the capacity or
// associativity limit.
func (x *lazyTx) overflow(l mem.Line) {
	x.serial = true
	x.info.Fail(tm.CauseHTMCapacity, trace.LineKey(uint64(l)), tm.NoBlock)
}

// Load implements the HTM read barrier (in hardware this is an implicit,
// free cache access; the bookkeeping here is the simulation's price).
func (x *lazyTx) Load(a mem.Addr) uint64 {
	x.loads++
	if x.serial {
		x.serialRead[mem.LineOf(a)] = struct{}{}
		return x.sys.cfg.Arena.Load(a)
	}
	if v, ok := x.wbuf.Get(a); ok {
		return v
	}
	l := mem.LineOf(a)
	for {
		if x.aborted.Load() {
			x.failKilled()
		}
		e := x.sys.epoch.Load()
		if e&1 == 1 { // a commit is being arbitrated; wait like a snooping cache
			runtime.Gosched()
			continue
		}
		added, ok := x.readSet.insert(l)
		if !ok || (added && x.readSet.len()+x.writeSet.len() > x.sys.cfg.CapacityLines) {
			x.overflow(l)
		}
		if added && !x.writeSet.contains(l) && !x.sets.add(l) {
			x.overflow(l) // associativity conflict in the speculative buffer
		}
		v := x.sys.cfg.Arena.Load(a)
		if x.sys.epoch.Load() == e {
			// Recheck the flag after the stable-epoch confirmation: a commit
			// that flagged us can complete entirely between the loop-top flag
			// poll and the first epoch load (flag store precedes its closing
			// epoch bump, so a stable epoch makes the flag visible here). The
			// loop-top poll alone can read a stale false and return the
			// committed value while earlier loads predate the writeback.
			if x.aborted.Load() {
				x.failKilled()
			}
			return v
		}
		// A commit overlapped this insert+load window; redo so the value is
		// either pre-commit-with-visible-insert or the committed one.
	}
}

// Store implements the HTM write barrier: buffer the word, track the line.
func (x *lazyTx) Store(a mem.Addr, v uint64) {
	x.stores++
	if x.serial {
		x.serialWrit[mem.LineOf(a)] = struct{}{}
		x.serialUndo = append(x.serialUndo, undoRec{a: a, v: x.sys.cfg.Arena.Load(a)})
		x.sys.cfg.Arena.Store(a, v)
		return
	}
	if x.aborted.Load() {
		x.failKilled()
	}
	x.wbuf.Put(a, v)
	l := mem.LineOf(a)
	added, ok := x.writeSet.insert(l)
	if !ok || (added && x.readSet.len()+x.writeSet.len() > x.sys.cfg.CapacityLines) {
		x.overflow(l)
	}
	if added && !x.readSet.contains(l) && !x.sets.add(l) {
		x.overflow(l)
	}
}

// Alloc draws from the thread-private reservation chunk; line-aligned
// chunks keep one thread's allocations off another's conflict-detection
// lines (line granularity makes allocator false sharing a real abort —
// recycled free-list blocks weaken that disjointness, trading spurious
// conflicts for a bounded arena high-water). A real capacity miss unwinds
// terminally via FailAlloc; the alloc-exhaust failpoint injects only the
// abort (safe even mid serial attempt — rollbackSerial undoes the in-place
// stores before the retry).
func (x *lazyTx) Alloc(n int) mem.Addr {
	if x.sys.chaos.Fire(chaos.AllocExhaust, x.slot) {
		x.info.Fail(tm.CauseAllocExhausted, 0, tm.NoBlock)
	}
	a, err := x.res.TxAlloc(n)
	if err != nil {
		x.info.FailAlloc(err)
	}
	return a
}

// Free defers the release to commit time (abort drops it), recycling the
// block through the thread's free lists.
func (x *lazyTx) Free(a mem.Addr, n int) { x.res.TxFree(a, n) }

// EarlyRelease drops a line from the speculative read set so it no longer
// raises conflicts — the labyrinth optimization. Lines also in the write set
// stay tracked.
func (x *lazyTx) EarlyRelease(a mem.Addr) {
	if !x.sys.cfg.EnableEarlyRelease {
		return
	}
	l := mem.LineOf(a)
	if x.serial {
		delete(x.serialRead, l)
		return
	}
	if !x.writeSet.contains(l) {
		if x.readSet.contains(l) {
			x.sets.drop(l)
		}
		x.readSet.remove(l)
	}
}

// Peek is an uninstrumented read. On a real HTM all accesses are implicitly
// tracked, so STAMP only uses Peek on software/hybrid systems; it is still
// provided here for API uniformity.
func (x *lazyTx) Peek(a mem.Addr) uint64 { return x.sys.cfg.Arena.Load(a) }

// Restart implements tm.Tx.
func (x *lazyTx) Restart() { x.info.Fail(tm.CauseExplicitRetry, 0, tm.NoBlock) }

// commit arbitrates: flag every active transaction whose read or write set
// overlaps our write set, then write back. Committer wins.
func (x *lazyTx) commit() bool {
	if x.serial {
		// Never inject here: serial mode already wrote memory in place, so a
		// spurious abort would be unrecoverable (there is no undo log).
		return true // ran alone with direct stores
	}
	// Failpoint: a spurious abort at commit arbitration looks exactly like
	// losing the committer-wins race, so it carries that natural cause.
	if x.sys.chaos.Fire(chaos.HTMArbitrate, x.slot) {
		x.info.Set(tm.CauseHTMConflict, 0, tm.NoBlock)
		return false
	}
	if x.wbuf.Len() == 0 {
		// Read-only: correctness is guaranteed by the abort flag (any
		// conflicting committer flagged us before writing back).
		if x.aborted.Load() {
			x.setKilled()
			return false
		}
		return true
	}
	x.sys.commitMu.Lock()
	if x.aborted.Load() {
		x.setKilled()
		x.sys.commitMu.Unlock()
		return false
	}
	writes := x.wbuf.Entries()
	myBlock := tm.BlockID(x.sys.threads[x.slot].curBlock.Load())
	x.sys.epoch.Add(1) // odd: commit in progress
	for _, other := range x.sys.txs {
		if other.slot == x.slot || !other.active.Load() {
			continue
		}
		for _, e := range writes {
			l := mem.LineOf(e.Addr)
			if other.readSet.contains(l) || other.writeSet.contains(l) {
				// Deposit the attribution before raising the flag so the
				// victim's flag poll always finds it.
				other.killedBy.Store(tm.KillPack(myBlock, l))
				other.aborted.Store(true)
				break
			}
		}
	}
	for _, e := range writes {
		x.sys.cfg.Arena.Store(e.Addr, e.Val)
	}
	x.sys.epoch.Add(1) // even: done
	x.sys.commitMu.Unlock()
	return true
}
