// Package txset provides the hot-path read/write-set data structures shared
// by every concurrent TM runtime in the suite.
//
// The paper's characterization is only as credible as the per-barrier cost
// of the runtimes, and the Go map probe the write buffers used to pay on
// every Load and Store dominated exactly the read-barrier overhead the paper
// calls out for lazy STMs. txset replaces those maps with structures shaped
// for the transactional access pattern:
//
//   - WriteSet is a redo/undo log with O(1) membership: an insertion-order
//     entry log (which IS the writeback/rollback order), an open-addressed
//     power-of-two hash index over it, an inline small-set fast path that
//     linear-scans the log while it holds at most smallMax entries (no
//     hashing at all — most STAMP transactions never leave this regime),
//     and a one-word bloom-style write filter so a Load that cannot hit the
//     write buffer — the common case in read-dominated vacation and genome —
//     skips lookup entirely after one multiply and one branch.
//   - ReadSet is the append-only value-validation log NOrec revalidates,
//     with last-entry dedup so tight re-read loops do not grow it.
//   - IndexSet is the append-only stripe log the TL2 runtimes validate at
//     commit, with the same last-entry dedup.
//
// All three types are owner-thread-only, except that a published
// WriteSet/ReadSet Entries() slice may be read by another thread while the
// owner is quiescent (the NOrec commit-combining protocol relies on this).
// Reset is O(1): the hash index is invalidated by bumping an epoch instead
// of clearing slots.
package txset

import "github.com/stamp-go/stamp/internal/mem"

// smallMax is the write-set size up to which lookups linear-scan the entry
// log instead of probing the hash index. Scanning ≤8 entries newest-first is
// faster than hashing, and covers the bulk of STAMP's transactions (Table VI
// write sets are mostly under 8 words).
const smallMax = 8

// minSlots is the initial hash-index size (power of two, ≥ 2*smallMax so
// the index starts at load factor ≤ 0.5 when the small regime overflows).
const minSlots = 32

// Entry is one write-set record: the address and the value logged for it
// (the redo value for lazy runtimes, the undo value for eager ones).
type Entry struct {
	Addr mem.Addr
	Val  uint64
}

// filterBit hashes an address to one bit of the one-word write filter.
// Fibonacci mixing spreads the strided address patterns the container
// library produces (line-padded nodes would alias a plain addr&63).
func filterBit(a mem.Addr) uint64 {
	return 1 << ((uint64(a) * 0x9E3779B97F4A7C15) >> 58)
}

// slotHash spreads addresses over the hash index.
func slotHash(a mem.Addr) uint32 {
	x := uint32(a) * 2654435761
	return x ^ x>>16
}

// islot is one hash-index slot: an entry-log position stamped with the
// epoch it was written in. Slots from earlier transactions are invalidated
// wholesale by bumping WriteSet.epoch, never by clearing.
type islot struct {
	epoch uint32
	pos   int32
}

// WriteSet is the write buffer / undo log. The zero value is ready to use;
// call Reset at transaction begin.
type WriteSet struct {
	entries []Entry
	filter  uint64
	slots   []islot
	mask    uint32
	epoch   uint32
}

// Reset discards all entries in O(1) (the hash index is epoch-invalidated,
// not cleared).
func (w *WriteSet) Reset() {
	w.entries = w.entries[:0]
	w.filter = 0
	w.epoch++
	if w.epoch == 0 { // epoch wrapped: stale stamps could collide, clear for real
		for i := range w.slots {
			w.slots[i] = islot{}
		}
		w.epoch = 1
	}
}

// Len returns the number of distinct addresses written.
func (w *WriteSet) Len() int { return len(w.entries) }

// Entries returns the log in insertion order (first-store order). The slice
// aliases internal storage: it is invalidated by the next Put/Insert/Reset,
// and callers iterating it must not mutate the set.
func (w *WriteSet) Entries() []Entry { return w.entries }

// MayContain is the one-word write filter: false means a is definitely not
// in the set, so the caller can skip the lookup entirely. True means maybe.
func (w *WriteSet) MayContain(a mem.Addr) bool { return w.filter&filterBit(a) != 0 }

// Get returns the value logged for a. The filter rejects definite misses
// before any scanning or hashing happens.
func (w *WriteSet) Get(a mem.Addr) (uint64, bool) {
	if w.filter&filterBit(a) == 0 {
		return 0, false
	}
	if i := w.find(a); i >= 0 {
		return w.entries[i].Val, true
	}
	return 0, false
}

// Contains reports whether a has been written.
func (w *WriteSet) Contains(a mem.Addr) bool {
	return w.filter&filterBit(a) != 0 && w.find(a) >= 0
}

// Put logs value v for address a, overwriting any earlier value (redo-log
// semantics). It reports whether a was newly inserted.
func (w *WriteSet) Put(a mem.Addr, v uint64) bool {
	if w.filter&filterBit(a) != 0 {
		if i := w.find(a); i >= 0 {
			w.entries[i].Val = v
			return false
		}
	}
	w.append(a, v)
	return true
}

// Insert logs value v for address a only if a is absent (undo-log
// semantics: the first store's old value wins). It reports whether it
// inserted.
func (w *WriteSet) Insert(a mem.Addr, v uint64) bool {
	if w.filter&filterBit(a) != 0 && w.find(a) >= 0 {
		return false
	}
	w.append(a, v)
	return true
}

// find returns the entry-log position of a, or -1. The caller has already
// consulted the filter.
func (w *WriteSet) find(a mem.Addr) int32 {
	if len(w.entries) <= smallMax {
		// Small-set fast path: newest-first linear scan, no hashing.
		// Newest-first makes the common read-after-write of the most
		// recently stored address a one-comparison hit.
		for i := len(w.entries) - 1; i >= 0; i-- {
			if w.entries[i].Addr == a {
				return int32(i)
			}
		}
		return -1
	}
	i := slotHash(a) & w.mask
	for {
		s := w.slots[i]
		if s.epoch != w.epoch {
			return -1 // empty (or stale from an earlier transaction)
		}
		if w.entries[s.pos].Addr == a {
			return s.pos
		}
		i = (i + 1) & w.mask
	}
}

// append adds a new entry and maintains the hash index once the set has
// outgrown the small-scan regime.
func (w *WriteSet) append(a mem.Addr, v uint64) {
	pos := int32(len(w.entries))
	w.entries = append(w.entries, Entry{Addr: a, Val: v})
	w.filter |= filterBit(a)
	if len(w.entries) <= smallMax {
		return
	}
	if len(w.entries) == smallMax+1 || len(w.entries)*2 > len(w.slots) {
		// Crossing out of the small regime (nothing indexed yet — the index
		// may still hold a previous transaction's slots) or outgrowing the
		// table: (re)index the whole log.
		w.rebuild()
		return
	}
	w.index(a, pos)
}

// index inserts one entry-log position into the hash table.
func (w *WriteSet) index(a mem.Addr, pos int32) {
	i := slotHash(a) & w.mask
	for w.slots[i].epoch == w.epoch {
		i = (i + 1) & w.mask
	}
	w.slots[i] = islot{epoch: w.epoch, pos: pos}
}

// rebuild sizes the hash index to at least 4× the live entries (load factor
// ≤ 0.25 right after a rebuild, ≤ 0.5 before the next) and indexes the whole
// log. A table that is already big enough is kept and epoch-invalidated
// instead of reallocated, so a workload whose transactions repeatedly write
// ~the same medium-sized set grows the table once, not once per
// transaction.
func (w *WriteSet) rebuild() {
	n := uint32(minSlots)
	for int(n) < 4*len(w.entries) {
		n <<= 1
	}
	if int(n) > len(w.slots) {
		w.slots = make([]islot, n) // fresh slots are epoch 0, i.e. empty
		w.mask = n - 1
	} else {
		w.epoch++
	}
	if w.epoch == 0 { // zero-value set, or epoch wrapped: make stamps unambiguous
		for i := range w.slots {
			w.slots[i] = islot{}
		}
		w.epoch = 1
	}
	for pos, e := range w.entries {
		w.index(e.Addr, int32(pos))
	}
}

// ReadEntry is one read-set record: the address and the value observed
// there (NOrec validates by value).
type ReadEntry struct {
	Addr mem.Addr
	Val  uint64
}

// ReadSet is the append-only value-validation log. The zero value is ready
// to use; call Reset at transaction begin.
type ReadSet struct {
	entries []ReadEntry
}

// Reset discards all entries.
func (r *ReadSet) Reset() { r.entries = r.entries[:0] }

// Len returns the number of logged reads.
func (r *ReadSet) Len() int { return len(r.entries) }

// Add logs an observed (address, value) pair. Consecutive re-reads of the
// same address are deduplicated, so a tight loop over one location costs
// one entry instead of one per load; non-adjacent duplicates are kept
// (validating them twice is always safe).
func (r *ReadSet) Add(a mem.Addr, v uint64) {
	if n := len(r.entries); n > 0 && r.entries[n-1].Addr == a && r.entries[n-1].Val == v {
		return
	}
	r.entries = append(r.entries, ReadEntry{Addr: a, Val: v})
}

// Entries returns the log in append order. The slice aliases internal
// storage and is invalidated by the next Add/Reset.
func (r *ReadSet) Entries() []ReadEntry { return r.entries }

// IndexSet is the append-only log of stripe (lock-table) indices the TL2
// runtimes validate at commit, with last-entry dedup: adjacent words of one
// container node usually map to the same stripe, so the common field-walk
// costs one entry. The zero value is ready to use.
type IndexSet struct {
	idx []uint32
}

// Reset discards all entries.
func (s *IndexSet) Reset() { s.idx = s.idx[:0] }

// Len returns the number of logged indices.
func (s *IndexSet) Len() int { return len(s.idx) }

// Add logs index i, skipping a consecutive duplicate.
func (s *IndexSet) Add(i uint32) {
	if n := len(s.idx); n > 0 && s.idx[n-1] == i {
		return
	}
	s.idx = append(s.idx, i)
}

// Slice returns the log in append order. The slice aliases internal storage
// and is invalidated by the next Add/Reset.
func (s *IndexSet) Slice() []uint32 { return s.idx }
