package txset

import (
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
)

func TestWriteSetBasic(t *testing.T) {
	var w WriteSet
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("empty Len = %d", w.Len())
	}
	if _, ok := w.Get(7); ok {
		t.Fatal("Get on empty set hit")
	}
	if !w.Put(7, 100) {
		t.Fatal("first Put not reported as new")
	}
	if w.Put(7, 200) {
		t.Fatal("overwriting Put reported as new")
	}
	if v, ok := w.Get(7); !ok || v != 200 {
		t.Fatalf("Get(7) = %d,%v, want 200,true", v, ok)
	}
	if !w.Contains(7) || w.Contains(8) {
		t.Fatal("Contains wrong")
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1", w.Len())
	}
}

func TestWriteSetInsertKeepsFirstValue(t *testing.T) {
	var w WriteSet
	w.Reset()
	if !w.Insert(3, 10) {
		t.Fatal("first Insert not reported")
	}
	if w.Insert(3, 20) {
		t.Fatal("second Insert reported as inserted")
	}
	if v, _ := w.Get(3); v != 10 {
		t.Fatalf("Insert overwrote: got %d, want 10", v)
	}
}

// TestWriteSetGrowth crosses the small-scan threshold and several index
// rebuilds, checking every address stays retrievable.
func TestWriteSetGrowth(t *testing.T) {
	var w WriteSet
	w.Reset()
	const n = 4096
	for i := 0; i < n; i++ {
		a := mem.Addr(i*3 + 1)
		if !w.Put(a, uint64(i)) {
			t.Fatalf("Put(%d) not new", a)
		}
		if i == smallMax-1 || i == smallMax || i == smallMax+1 {
			// Around the transition, re-check everything inserted so far.
			for j := 0; j <= i; j++ {
				if v, ok := w.Get(mem.Addr(j*3 + 1)); !ok || v != uint64(j) {
					t.Fatalf("at size %d: Get(%d) = %d,%v", i+1, j*3+1, v, ok)
				}
			}
		}
	}
	if w.Len() != n {
		t.Fatalf("Len = %d, want %d", w.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := w.Get(mem.Addr(i*3 + 1)); !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = %d,%v, want %d,true", i*3+1, v, ok, i)
		}
	}
	if _, ok := w.Get(2); ok {
		t.Fatal("absent address hit after growth")
	}
}

// TestWriteSetCollisions exercises addresses engineered to collide in the
// hash index (same slotHash masked value for a small table).
func TestWriteSetCollisions(t *testing.T) {
	var w WriteSet
	w.Reset()
	// Fill past smallMax so the index is live, with a stride that maps many
	// addresses onto few slots of the minSlots-sized table.
	const stride = 1 << 16 // slotHash's low bits repeat under small masks
	for i := 0; i < 64; i++ {
		w.Put(mem.Addr(1+i*stride), uint64(i))
	}
	for i := 0; i < 64; i++ {
		if v, ok := w.Get(mem.Addr(1 + i*stride)); !ok || v != uint64(i) {
			t.Fatalf("colliding Get(%d) = %d,%v, want %d", 1+i*stride, v, ok, i)
		}
	}
	if _, ok := w.Get(mem.Addr(1 + 64*stride)); ok {
		t.Fatal("absent colliding address hit")
	}
}

// TestWriteSetInsertionOrder: Entries must iterate in first-store order —
// the writeback order lazy runtimes and the rollback order (reversed) eager
// runtimes rely on.
func TestWriteSetInsertionOrder(t *testing.T) {
	var w WriteSet
	w.Reset()
	addrs := []mem.Addr{9, 3, 200, 3, 77, 9, 1000, 5}
	for i, a := range addrs {
		w.Put(a, uint64(i))
	}
	want := []mem.Addr{9, 3, 200, 77, 1000, 5}
	es := w.Entries()
	if len(es) != len(want) {
		t.Fatalf("entries = %d, want %d", len(es), len(want))
	}
	for i, e := range es {
		if e.Addr != want[i] {
			t.Fatalf("entry %d = addr %d, want %d", i, e.Addr, want[i])
		}
	}
	// Re-stored addresses keep their original position with the new value.
	if es[0].Val != 5 || es[1].Val != 3 {
		t.Fatalf("overwrite values = %d,%d, want 5,3", es[0].Val, es[1].Val)
	}
}

// TestWriteSetResetIsolation: entries from a previous transaction must be
// invisible after Reset, including stale hash-index slots (the epoch trick),
// across both small and hashed regimes.
func TestWriteSetResetIsolation(t *testing.T) {
	var w WriteSet
	for round := 0; round < 2000; round++ {
		w.Reset()
		n := 1 + round%40 // alternate small and hashed sizes
		for i := 0; i < n; i++ {
			w.Put(mem.Addr(1+i+round), uint64(round))
		}
		// Addresses from the previous round that are not in this round must
		// miss even when a stale slot points at a plausible entry position.
		if round > 0 {
			stale := mem.Addr(1 + (round - 1) + 100)
			if v, ok := w.Get(stale); ok && v != uint64(round) {
				t.Fatalf("round %d: stale value leaked: %d", round, v)
			}
		}
		for i := 0; i < n; i++ {
			if v, ok := w.Get(mem.Addr(1 + i + round)); !ok || v != uint64(round) {
				t.Fatalf("round %d: Get = %d,%v", round, v, ok)
			}
		}
	}
}

// TestWriteSetFilter: the one-word filter must never produce a false
// negative (a written address reporting MayContain false); false positives
// are allowed and measured loosely.
func TestWriteSetFilter(t *testing.T) {
	var w WriteSet
	w.Reset()
	for i := 0; i < 4; i++ {
		a := mem.Addr(1 + i*97)
		w.Put(a, 1)
		if !w.MayContain(a) {
			t.Fatalf("false negative for written address %d", a)
		}
	}
	// With 4 distinct filter bits set out of 64, a big sample of absent
	// addresses must mostly be rejected by the filter alone.
	rejected := 0
	const sample = 10000
	for i := 0; i < sample; i++ {
		a := mem.Addr(100000 + i)
		if !w.MayContain(a) {
			rejected++
		}
		if v, ok := w.Get(a); ok {
			t.Fatalf("absent address %d hit with value %d", a, v)
		}
	}
	if rejected < sample/2 {
		t.Fatalf("filter rejected only %d/%d absent addresses; expected a majority", rejected, sample)
	}
}

// TestWriteSetDifferential drives WriteSet and a plain map with the same
// randomized operation stream and requires identical observable behavior —
// the semantics-preservation proof for the map replacement.
func TestWriteSetDifferential(t *testing.T) {
	r := rng.New(42)
	var w WriteSet
	for round := 0; round < 200; round++ {
		w.Reset()
		ref := make(map[mem.Addr]uint64)
		var order []mem.Addr
		nops := 1 + r.Intn(300)
		addrSpace := 1 + r.Intn(64) // small spaces force overwrites and collisions
		for op := 0; op < nops; op++ {
			a := mem.Addr(1 + r.Intn(addrSpace))
			switch r.Intn(4) {
			case 0, 1: // Put
				v := uint64(r.Intn(1000))
				isNew := w.Put(a, v)
				_, existed := ref[a]
				if isNew == existed {
					t.Fatalf("round %d op %d: Put new=%v, map existed=%v", round, op, isNew, existed)
				}
				if !existed {
					order = append(order, a)
				}
				ref[a] = v
			case 2: // Insert
				v := uint64(r.Intn(1000))
				ins := w.Insert(a, v)
				_, existed := ref[a]
				if ins == existed {
					t.Fatalf("round %d op %d: Insert=%v, map existed=%v", round, op, ins, existed)
				}
				if !existed {
					ref[a] = v
					order = append(order, a)
				}
			case 3: // Get
				v, ok := w.Get(a)
				rv, rok := ref[a]
				if ok != rok || (ok && v != rv) {
					t.Fatalf("round %d op %d: Get(%d) = %d,%v, map %d,%v", round, op, a, v, ok, rv, rok)
				}
			}
		}
		if w.Len() != len(ref) {
			t.Fatalf("round %d: Len = %d, map %d", round, w.Len(), len(ref))
		}
		es := w.Entries()
		if len(es) != len(order) {
			t.Fatalf("round %d: entries %d, want %d", round, len(es), len(order))
		}
		for i, e := range es {
			if e.Addr != order[i] {
				t.Fatalf("round %d: entry %d addr %d, want %d (insertion order)", round, i, e.Addr, order[i])
			}
			if e.Val != ref[e.Addr] {
				t.Fatalf("round %d: entry %d val %d, map %d", round, i, e.Val, ref[e.Addr])
			}
		}
	}
}

func TestReadSetDedup(t *testing.T) {
	var rs ReadSet
	rs.Reset()
	rs.Add(5, 10)
	rs.Add(5, 10) // consecutive duplicate: dropped
	rs.Add(5, 10)
	rs.Add(6, 1)
	rs.Add(5, 10) // non-adjacent duplicate: kept (safe, still validated)
	rs.Add(5, 11) // same addr, new value: kept (validation must see it)
	if rs.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rs.Len())
	}
	want := []ReadEntry{{5, 10}, {6, 1}, {5, 10}, {5, 11}}
	for i, e := range rs.Entries() {
		if e != want[i] {
			t.Fatalf("entry %d = %v, want %v", i, e, want[i])
		}
	}
	rs.Reset()
	if rs.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestIndexSetDedup(t *testing.T) {
	var s IndexSet
	s.Reset()
	for _, i := range []uint32{1, 1, 1, 2, 2, 1, 3} {
		s.Add(i)
	}
	want := []uint32{1, 2, 1, 3}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

// Microbenchmarks of the structure itself; the runtime-level barrier costs
// are tracked by BenchmarkBarrier in the repository root.

func BenchmarkWriteSetFilterSkip(b *testing.B) {
	var w WriteSet
	w.Reset()
	w.Put(1, 1)
	b.ResetTimer()
	miss := 0
	for i := 0; i < b.N; i++ {
		if _, ok := w.Get(mem.Addr(1000 + i&1023)); !ok {
			miss++
		}
	}
	_ = miss
}

func BenchmarkWriteSetSmallHit(b *testing.B) {
	var w WriteSet
	w.Reset()
	for i := 0; i < smallMax; i++ {
		w.Put(mem.Addr(1+i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Get(mem.Addr(1 + i&7))
	}
}

func BenchmarkWriteSetHashedHit(b *testing.B) {
	var w WriteSet
	w.Reset()
	for i := 0; i < 256; i++ {
		w.Put(mem.Addr(1+i*5), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Get(mem.Addr(1 + (i&255)*5))
	}
}

func BenchmarkWriteSetPutReset(b *testing.B) {
	var w WriteSet
	for i := 0; i < b.N; i++ {
		w.Reset()
		for j := 0; j < 16; j++ {
			w.Put(mem.Addr(1+j*3), uint64(j))
		}
	}
}

func BenchmarkMapPutClear(b *testing.B) {
	m := make(map[mem.Addr]uint64)
	for i := 0; i < b.N; i++ {
		clear(m)
		for j := 0; j < 16; j++ {
			m[mem.Addr(1+j*3)] = uint64(j)
		}
	}
}
