// Package chaos is the deterministic fault-injection layer under the TM
// runtimes. It sits below package tm (like package trace) so both tm and the
// runtime subpackages can arm failpoints without an import cycle.
//
// A failpoint is a named Site in a runtime's conflict or commit path. A
// chaos spec — "seed:site:prob[,site:prob...]" — arms a subset of sites with
// per-site firing probabilities; every worker thread draws from its own
// seeded splitmix64 stream, so a given (spec, thread count, schedule) fires
// the same points in the same per-thread order on every run. Disarmed chaos
// is a nil *Injector, and every method is a nil-receiver no-op, so the hot
// path of a normal run pays one pointer test per site.
//
// Sites come in three kinds:
//
//   - spurious-abort: the runtime aborts the attempt as if the protocol had
//     detected a real conflict there, stamped with the site's natural abort
//     cause (so the closed-taxonomy invariant — no unknown causes — holds
//     under injection too);
//   - stall: the runtime spins for a bounded window at a point where it
//     holds protocol resources (stripe locks, the sequence lock, a quiesce),
//     widening the race windows other threads conflict against;
//   - drop-wait: a contention-manager wait decision is overridden to an
//     immediate abort, as if the policy had no patience.
//
// Stalls and drops perturb timing only; spurious aborts add retries. None of
// the kinds may break safety — conformance sweeps assert conservation and
// cause accounting with every site armed.
package chaos

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"github.com/stamp-go/stamp/internal/rng"
)

// Site names one failpoint location in a runtime's conflict/commit path.
type Site uint8

const (
	// TL2LockAcquire fires in the TL2-style commit paths (stm-lazy,
	// stm-eager, stm-mv writers) where the committer acquires per-stripe
	// locks: a spurious lost-acquisition abort.
	TL2LockAcquire Site = iota
	// TL2LockRelease stalls a TL2-style committer between writeback and
	// stripe-lock release — the window other transactions see the locks
	// held.
	TL2LockRelease
	// NorecSeqTick stalls a NOrec committer while it holds the sequence
	// lock (between writeback and the release store), stretching the
	// window every other commit serializes behind.
	NorecSeqTick
	// NorecValidate fires in the NOrec commit/validation path: a spurious
	// value-validation failure.
	NorecValidate
	// HybridSigCheck fires at the hybrid runtimes' signature probes: a
	// spurious signature conflict.
	HybridSigCheck
	// HTMArbitrate fires in the simulated HTMs' conflict paths: a spurious
	// line-conflict abort (never in the lazy HTM's serialized overflow
	// mode, which performs direct stores).
	HTMArbitrate
	// MVRingPublish stalls an stm-mv committer mid version-ring publish,
	// while it holds its stripe locks.
	MVRingPublish
	// AdaptiveHandoff stalls the stm-adaptive switcher between quiescing
	// the team and installing the new mode.
	AdaptiveHandoff
	// CMWaitDrop overrides a contention-manager wait decision
	// (tm.WaitOrAbort) to an immediate abort.
	CMWaitDrop
	// AllocExhaust fires in every runtime's tx.Alloc: a spurious
	// alloc-exhausted abort, as if the arena had run dry at that allocation
	// (without the terminal unwind a real capacity miss adds, so the
	// attempt retries — and starvation escalation, which suppresses chaos,
	// guarantees progress under a probability-1 arm).
	AllocExhaust
	// SwapStall stalls the serving-mode epoch-swap recycler between
	// quiescing the worker pool and installing the fresh arena, stretching
	// the window requests are held at admission.
	SwapStall

	// NumSites bounds per-site arrays.
	NumSites
)

// SiteInfo describes one registered failpoint for listings (-list-chaos).
type SiteInfo struct {
	Site        Site
	Name        string
	Kind        string // "spurious-abort", "stall", or "drop-wait"
	Description string
}

var siteInfos = [NumSites]SiteInfo{
	TL2LockAcquire:  {TL2LockAcquire, "tl2-lock-acquire", "spurious-abort", "TL2-style commit loses a stripe-lock acquisition (stm-lazy, stm-eager, stm-mv writers)"},
	TL2LockRelease:  {TL2LockRelease, "tl2-lock-release", "stall", "TL2-style committer stalls holding its stripe locks, after writeback"},
	NorecSeqTick:    {NorecSeqTick, "norec-seq-tick", "stall", "NOrec committer stalls holding the global sequence lock"},
	NorecValidate:   {NorecValidate, "norec-validate", "spurious-abort", "NOrec value validation spuriously fails (stm-norec, stm-norec-ro)"},
	HybridSigCheck:  {HybridSigCheck, "hybrid-sig-check", "spurious-abort", "hybrid signature probe spuriously reports a conflict (hybrid-lazy, hybrid-eager)"},
	HTMArbitrate:    {HTMArbitrate, "htm-arbitrate", "spurious-abort", "simulated-HTM conflict detection spuriously fires (htm-lazy, htm-eager; never in serialized overflow mode)"},
	MVRingPublish:   {MVRingPublish, "mv-ring-publish", "stall", "stm-mv committer stalls mid version-ring publish, stripe locks held"},
	AdaptiveHandoff: {AdaptiveHandoff, "adaptive-handoff", "stall", "stm-adaptive switcher stalls between team quiesce and mode install"},
	CMWaitDrop:      {CMWaitDrop, "cm-wait-drop", "drop-wait", "a contention-manager wait decision becomes an immediate abort"},
	AllocExhaust:    {AllocExhaust, "alloc-exhaust", "spurious-abort", "tx.Alloc spuriously reports the arena exhausted (every runtime; the attempt retries)"},
	SwapStall:       {SwapStall, "swap-stall", "stall", "serving-mode epoch swap stalls between worker-pool quiesce and arena install"},
}

// Sites returns every registered failpoint in enum order.
func Sites() []SiteInfo {
	out := make([]SiteInfo, NumSites)
	copy(out, siteInfos[:])
	return out
}

// Name returns the registry name of the site (e.g. "tl2-lock-acquire").
func (s Site) Name() string {
	if s < NumSites {
		return siteInfos[s].Name
	}
	return "invalid"
}

func siteByName(name string) (Site, bool) {
	for _, info := range siteInfos {
		if info.Name == name {
			return info.Site, true
		}
	}
	return 0, false
}

// Plan is a parsed chaos spec: the base seed and one firing probability per
// site (0 = disarmed).
type Plan struct {
	Seed  uint64
	Probs [NumSites]float64
}

// Parse parses a chaos spec of the form "seed:site:prob[,site:prob...]".
// The empty spec means chaos off and returns (nil, nil). Probabilities are
// in [0, 1]; a site listed twice is an error.
func Parse(spec string) (*Plan, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	head := strings.SplitN(parts[0], ":", 2)
	if len(head) != 2 {
		return nil, fmt.Errorf("chaos: spec %q: want seed:site:prob[,site:prob...]", spec)
	}
	seed, err := strconv.ParseUint(head[0], 0, 64)
	if err != nil {
		return nil, fmt.Errorf("chaos: spec %q: bad seed %q: %v", spec, head[0], err)
	}
	p := &Plan{Seed: seed}
	parts[0] = head[1]
	seen := [NumSites]bool{}
	for _, arm := range parts {
		sp := strings.Split(arm, ":")
		if len(sp) != 2 {
			return nil, fmt.Errorf("chaos: spec %q: arm %q: want site:prob", spec, arm)
		}
		site, ok := siteByName(sp[0])
		if !ok {
			return nil, fmt.Errorf("chaos: spec %q: unknown site %q (known: %v)", spec, sp[0], siteNames())
		}
		if seen[site] {
			return nil, fmt.Errorf("chaos: spec %q: site %q armed twice", spec, sp[0])
		}
		seen[site] = true
		prob, err := strconv.ParseFloat(sp[1], 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("chaos: spec %q: site %q: probability %q not in [0, 1]", spec, sp[0], sp[1])
		}
		p.Probs[site] = prob
	}
	return p, nil
}

func siteNames() []string {
	names := make([]string, NumSites)
	for i, info := range siteInfos {
		names[i] = info.Name
	}
	return names
}

// thresholdOf maps a probability to a uint64 comparison threshold so Fire is
// one rng step and one compare. prob 1 always fires; prob 0 never does.
func thresholdOf(prob float64) uint64 {
	if prob <= 0 {
		return 0
	}
	if prob >= 1 {
		return ^uint64(0)
	}
	// Scale into [0, 2^63) then double, staying clear of the float→uint64
	// conversion edge at exactly 2^64.
	return uint64(prob*float64(1<<63)) << 1
}

// injThread is one worker's injection state, padded so neighboring workers'
// rng draws never share a cache line.
type injThread struct {
	r        *rng.Rand
	suppress bool // owner-thread flag: an irrevocable attempt is running
	_        [48]byte
}

// Injector is one system's armed failpoint set. A nil Injector is the
// disarmed state; all methods are nil-receiver no-ops. Fire/Stall/Suppress
// are called only by the owning worker thread (tid), so per-thread state
// needs no atomics.
type Injector struct {
	thresholds [NumSites]uint64
	threads    []injThread
}

// New parses spec and builds the injector for a system with the given
// worker count. The empty spec returns (nil, nil) — chaos off.
func New(spec string, threads int) (*Injector, error) {
	plan, err := Parse(spec)
	if plan == nil || err != nil {
		return nil, err
	}
	return NewInjector(plan, threads), nil
}

// NewInjector builds an injector from a parsed plan. Each worker thread gets
// an independent stream seeded from the plan seed, so firing sequences are
// deterministic per thread regardless of interleaving.
func NewInjector(plan *Plan, threads int) *Injector {
	if plan == nil {
		return nil
	}
	if threads < 1 {
		threads = 1
	}
	inj := &Injector{threads: make([]injThread, threads)}
	for s := range plan.Probs {
		inj.thresholds[s] = thresholdOf(plan.Probs[s])
	}
	for i := range inj.threads {
		inj.threads[i].r = rng.New(plan.Seed + uint64(i)*0x9e3779b97f4a7c15 + 1)
	}
	return inj
}

// Fire reports whether the failpoint at site fires for worker tid this time.
// It returns false on a nil (disarmed) injector, on an unarmed site, and
// while the thread is suppressed (running an irrevocable attempt that must
// commit).
func (inj *Injector) Fire(site Site, tid int) bool {
	if inj == nil {
		return false
	}
	th := &inj.threads[tid]
	if th.suppress || inj.thresholds[site] == 0 {
		return false
	}
	// <= so a probability-1 arm fires on every draw, which the liveness
	// conformance storms rely on.
	return th.r.Uint64() <= inj.thresholds[site]
}

// stallSpins bounds a stall site's busy window. Large enough to widen the
// protocol windows other threads race against, small enough that a
// probability-1 arm still makes progress.
const stallSpins = 1 << 14

// Stall applies the site's bounded delay if the failpoint fires: a busy spin
// with periodic yields, so a stalled lock holder still lets its victims run
// on fewer cores than threads. No-op on a nil injector or unarmed site.
func (inj *Injector) Stall(site Site, tid int) {
	if !inj.Fire(site, tid) {
		return
	}
	for i := 0; i < stallSpins; i++ {
		if i%1024 == 1023 {
			runtime.Gosched()
		}
	}
}

// Suppress sets worker tid's suppression flag: while set, no failpoint fires
// for that thread. The escalation layer suppresses a thread for the span of
// its irrevocable attempt, which must commit. Owner-thread only.
func (inj *Injector) Suppress(tid int, on bool) {
	if inj == nil {
		return
	}
	inj.threads[tid].suppress = on
}
