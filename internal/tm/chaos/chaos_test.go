package chaos

import (
	"strings"
	"testing"
)

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"noseed",
		"x:tl2-lock-acquire:1",                  // non-numeric seed
		"1:tl2-lock-acquire",                    // missing prob
		"1:nonesuch:0.5",                        // unknown site
		"1:tl2-lock-acquire:1.5",                // prob out of range
		"1:tl2-lock-acquire:-0.1",               // negative prob
		"1:tl2-lock-acquire:zz",                 // non-numeric prob
		"1:norec-validate:1,norec-validate:0.5", // duplicate site
		"1:",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestParseSpec(t *testing.T) {
	if p, err := Parse(""); p != nil || err != nil {
		t.Fatalf("Parse(\"\") = %v, %v; want nil, nil", p, err)
	}
	p, err := Parse("42:tl2-lock-acquire:1,norec-validate:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Errorf("seed = %d, want 42", p.Seed)
	}
	if p.Probs[TL2LockAcquire] != 1 || p.Probs[NorecValidate] != 0.25 {
		t.Errorf("probs = %v", p.Probs)
	}
	if p.Probs[HybridSigCheck] != 0 {
		t.Error("unarmed site has nonzero probability")
	}
}

func TestSitesCoverRegistry(t *testing.T) {
	infos := Sites()
	if len(infos) != int(NumSites) {
		t.Fatalf("Sites() has %d entries, want %d", len(infos), NumSites)
	}
	seen := map[string]bool{}
	for i, info := range infos {
		if info.Name == "" || info.Kind == "" || info.Description == "" {
			t.Errorf("site %d incompletely described: %+v", i, info)
		}
		if seen[info.Name] {
			t.Errorf("duplicate site name %q", info.Name)
		}
		seen[info.Name] = true
		switch info.Kind {
		case "spurious-abort", "stall", "drop-wait":
		default:
			t.Errorf("site %q has unknown kind %q", info.Name, info.Kind)
		}
		got, ok := siteByName(info.Name)
		if !ok || got != info.Site {
			t.Errorf("siteByName(%q) = %v, %v", info.Name, got, ok)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Fire(TL2LockAcquire, 0) {
		t.Error("nil injector fired")
	}
	inj.Stall(NorecSeqTick, 0) // must not panic
	inj.Suppress(0, true)      // must not panic
}

func TestFireProbabilityEdges(t *testing.T) {
	inj, err := New("7:tl2-lock-acquire:1,norec-validate:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if !inj.Fire(TL2LockAcquire, 0) {
			t.Fatal("probability-1 site failed to fire")
		}
		if inj.Fire(NorecValidate, 0) {
			t.Fatal("probability-0 site fired")
		}
		if inj.Fire(HybridSigCheck, 0) {
			t.Fatal("unarmed site fired")
		}
	}
}

func TestFireDeterministicPerThread(t *testing.T) {
	mk := func() *Injector {
		inj, err := New("99:hybrid-sig-check:0.5", 4)
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	a, b := mk(), mk()
	for tid := 0; tid < 4; tid++ {
		for i := 0; i < 500; i++ {
			if a.Fire(HybridSigCheck, tid) != b.Fire(HybridSigCheck, tid) {
				t.Fatalf("tid %d draw %d diverged between identical injectors", tid, i)
			}
		}
	}
	// Distinct threads draw distinct streams: at prob 0.5 over 500 draws,
	// identical sequences would mean the seeds collapsed.
	c, d := mk(), mk()
	same := 0
	for i := 0; i < 500; i++ {
		if c.Fire(HybridSigCheck, 0) == d.Fire(HybridSigCheck, 1) {
			same++
		}
	}
	if same == 500 {
		t.Error("threads 0 and 1 drew identical firing sequences")
	}
}

func TestSuppressStopsFiring(t *testing.T) {
	inj, err := New("3:htm-arbitrate:1", 2)
	if err != nil {
		t.Fatal(err)
	}
	inj.Suppress(0, true)
	for i := 0; i < 100; i++ {
		if inj.Fire(HTMArbitrate, 0) {
			t.Fatal("suppressed thread fired")
		}
	}
	if !inj.Fire(HTMArbitrate, 1) {
		t.Error("suppressing thread 0 also silenced thread 1")
	}
	inj.Suppress(0, false)
	if !inj.Fire(HTMArbitrate, 0) {
		t.Error("unsuppressed thread did not fire")
	}
}

func TestParseErrorNamesKnownSites(t *testing.T) {
	_, err := Parse("1:bogus:1")
	if err == nil || !strings.Contains(err.Error(), "tl2-lock-acquire") {
		t.Errorf("unknown-site error should list known sites, got: %v", err)
	}
}
