package tl2

import (
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/trace"
	"github.com/stamp-go/stamp/internal/tm/txset"
)

// Lazy is the TL2 lazy STM: speculative writes go to a software write
// buffer, conflicts are detected with a global version clock and per-stripe
// versioned locks, and the write set is locked only at commit. Reads
// validate against the transaction's read version on every load, so doomed
// transactions never observe inconsistent state (opacity).
//
// The two shared serial points are configurable: the version clock's
// commit scheme through tm.Config.Clock (gv1 fetch-add, gv4
// pass-on-failure CAS, gv5 no-tick; see tm.ClockNames) and the stripe
// table size through tm.Config.LockTableBits (derived from the arena by
// default).
type Lazy struct {
	cfg     tm.Config
	locks   *lockTable
	clock   tm.VersionClock
	threads []*lazyThread
	cms     []tm.ContentionManager // per-slot, for conflict arbitration
	chaos   *chaos.Injector        // nil unless Config.Chaos armed failpoints
}

// NewLazy constructs the lazy STM.
func NewLazy(cfg tm.Config) (*Lazy, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool, err := tm.NewCMPool(cfg, tm.DefaultCM)
	if err != nil {
		return nil, err
	}
	clock, err := tm.NewVersionClock(cfg)
	if err != nil {
		return nil, err
	}
	s := &Lazy{cfg: cfg, locks: newLockTable(lockTableBitsFor(cfg)), clock: clock, chaos: pool.Chaos()}
	s.threads = make([]*lazyThread, cfg.Threads)
	s.cms = make([]tm.ContentionManager, cfg.Threads)
	for i := range s.threads {
		t := &lazyThread{id: i, sys: s}
		t.stats.Tracer = cfg.NewTracer()
		t.cm = pool.ForThread(i, &t.stats)
		s.cms[i] = t.cm
		t.tx = &lazyTx{sys: s, slot: uint64(i), th: t, res: cfg.NewReserver()}
		if cfg.ProfileSets {
			t.tx.readLines = make(map[mem.Line]struct{})
			t.tx.writeLines = make(map[mem.Line]struct{})
		}
		s.threads[i] = t
	}
	return s, nil
}

// ClockNow returns the current version-clock value (stats/bench hook: the
// delta over a run counts the clock writes the selected scheme performed).
func (s *Lazy) ClockNow() uint64 { return s.clock.Now() }

// LockTableStripes returns the stripe count of this instance's lock table.
func (s *Lazy) LockTableStripes() int { return len(s.locks.entries) }

// cmOf returns the contention manager of the transaction occupying slot, or
// nil for an out-of-range slot (a corrupt lock word arbitrates as unknown).
func (s *Lazy) cmOf(slot uint64) tm.ContentionManager {
	if slot < uint64(len(s.cms)) {
		return s.cms[slot]
	}
	return nil
}

// blockOf returns the atomic block the transaction occupying slot is
// currently executing (tm.NoBlock when idle or out of range), for blaming
// the enemy call site in conflict attribution.
func (s *Lazy) blockOf(slot uint64) tm.BlockID {
	if slot < uint64(len(s.threads)) {
		return tm.BlockID(s.threads[slot].curBlock.Load())
	}
	return tm.NoBlock
}

// Name implements tm.System.
func (s *Lazy) Name() string { return "stm-lazy" }

// Arena implements tm.System.
func (s *Lazy) Arena() *mem.Arena { return s.cfg.Arena }

// NThreads implements tm.System.
func (s *Lazy) NThreads() int { return s.cfg.Threads }

// Thread implements tm.System.
func (s *Lazy) Thread(id int) tm.Thread { return s.threads[id] }

// Stats implements tm.System.
func (s *Lazy) Stats() tm.Stats {
	per := make([]*tm.ThreadStats, len(s.threads))
	for i, t := range s.threads {
		per[i] = &t.stats
	}
	return tm.Aggregate(per)
}

type lazyThread struct {
	id    int
	sys   *Lazy
	stats tm.ThreadStats
	tx    *lazyTx
	cm    tm.ContentionManager
	timer tm.AtomicTimer

	// curBlock publishes the block this thread is currently inside, so
	// enemies that abort against our stripe locks can blame the call site.
	curBlock atomic.Int32
}

func (t *lazyThread) ID() int                { return t.id }
func (t *lazyThread) Stats() *tm.ThreadStats { return &t.stats }

func (t *lazyThread) Atomic(fn func(tm.Tx)) { t.AtomicAt(tm.NoBlock, fn) }

func (t *lazyThread) AtomicAt(b tm.BlockID, fn func(tm.Tx)) {
	t.timer.BeginBlock()
	t.stats.Starts++
	t.stats.Tracer.SampleBlock(t.id, int32(b))
	t.curBlock.Store(int32(b))
	t.cm.OnStart()
	aborts := 0
	for {
		t.tx.begin()
		if tm.Attempt(t.tx, fn) && t.tx.commit() {
			break
		}
		t.tx.abort()
		aborts++
		t.stats.Aborts++
		t.stats.RecordAbort(b, t.tx.info.Cause, t.tx.info.Key, t.tx.info.Blame)
		t.stats.Tracer.Emit(trace.EvAbort, t.tx.info.Cause, t.id, int32(b), t.tx.info.Key)
		t.stats.Wasted += t.tx.loads + t.tx.stores
		t.tx.res.OnAbort()
		if t.tx.info.Err != nil {
			// Terminal alloc exhaustion: the abort is accounted, protocol
			// state is released — unwind the block instead of retrying.
			t.curBlock.Store(int32(tm.NoBlock))
			tm.AbandonBlock(t.cm)
			t.tx.info.BailAlloc()
		}
		t.cm.OnAbort(aborts)
	}
	t.tx.res.OnCommit()
	t.curBlock.Store(int32(tm.NoBlock))
	t.cm.OnCommit()
	t.stats.Commits++
	t.stats.Tracer.Emit(trace.EvCommit, tm.CauseUnknown, t.id, int32(b), 0)
	t.stats.RecordBlock(b, "stm-lazy", uint64(aborts), t.tx.loads, t.tx.stores)
	t.stats.Loads += t.tx.loads
	t.stats.Stores += t.tx.stores
	t.stats.LoadsHist.Add(int(t.tx.loads))
	t.stats.StoresHist.Add(int(t.tx.stores))
	if t.tx.readLines != nil {
		t.stats.ReadLinesHist.Add(len(t.tx.readLines))
		t.stats.WriteLinesHist.Add(len(t.tx.writeLines))
	}
	t.stats.TxTimeNs += int64(t.timer.EndBlock())
}

type lazyTx struct {
	sys  *Lazy
	th   *lazyThread
	slot uint64
	res  *mem.Reserver // thread-private allocation chunk

	rv       uint64
	reads    txset.IndexSet // stripe indices for commit-time validation
	wset     txset.WriteSet // redo log (insertion order = writeback order)
	acquired []lockRec
	info     tm.AbortInfo // pending-abort cause/location/blame registers

	loads  uint64
	stores uint64

	readLines  map[mem.Line]struct{} // profiling only
	writeLines map[mem.Line]struct{}
}

func (x *lazyTx) begin() {
	x.rv = x.sys.clock.Begin()
	x.reads.Reset()
	x.wset.Reset()
	x.acquired = x.acquired[:0]
	x.info.Reset()
	x.loads, x.stores = 0, 0
	if x.readLines != nil {
		clear(x.readLines)
		clear(x.writeLines)
	}
}

// abort releases nothing (locks are only held inside commit, which releases
// them itself on failure); it only notifies the clock scheme, which gv5
// uses to advance an epoch the aborted attempt tripped on.
func (x *lazyTx) abort() { x.sys.clock.OnAbort(x.rv) }

// Load implements the TL2 read barrier: write-buffer lookup first (the cost
// the paper calls out for lazy STM read barriers — the txset write filter
// reduces it to one multiply and a branch when the buffer cannot hit), then
// a validated read.
func (x *lazyTx) Load(a mem.Addr) uint64 {
	x.loads++
	if v, ok := x.wset.Get(a); ok {
		return v
	}
	idx := x.sys.locks.index(a)
	e1 := x.sys.locks.load(idx)
	for probe := 0; ; probe++ {
		owner, locked := lockedBy(e1)
		if !locked {
			break
		}
		// Conflict point: the stripe is locked by a committing writer.
		// Arbitrate — requester-loses policies abort here; priority
		// policies may wait the (short) commit out and re-probe.
		if tm.WaitOrAbort(x.th.cm, x.sys.cmOf(owner), probe) {
			x.info.Fail(tm.CauseOrDisplaced(x.th.cm, tm.CauseStripeLockBusy), trace.AddrKey(uint64(a)), x.sys.blockOf(owner))
		}
		e1 = x.sys.locks.load(idx)
	}
	v := x.sys.cfg.Arena.Load(a)
	e2 := x.sys.locks.load(idx)
	if e2 != e1 || versionOf(e1) > x.rv {
		x.info.Fail(tm.CauseReadValidation, trace.AddrKey(uint64(a)), tm.NoBlock)
	}
	x.reads.Add(idx)
	if x.readLines != nil {
		x.readLines[mem.LineOf(a)] = struct{}{}
	}
	return v
}

// Store implements the lazy write barrier: buffer the value.
func (x *lazyTx) Store(a mem.Addr, v uint64) {
	x.stores++
	x.wset.Put(a, v)
	if x.writeLines != nil {
		x.writeLines[mem.LineOf(a)] = struct{}{}
	}
}

// Alloc carves from the thread's reserver (free lists, then the private
// chunk, then the shared arena). A real capacity miss unwinds terminally
// via FailAlloc; the alloc-exhaust failpoint injects only the abort.
func (x *lazyTx) Alloc(n int) mem.Addr {
	if x.sys.chaos.Fire(chaos.AllocExhaust, x.th.id) {
		x.info.Fail(tm.CauseAllocExhausted, 0, tm.NoBlock)
	}
	a, err := x.res.TxAlloc(n)
	if err != nil {
		x.info.FailAlloc(err)
	}
	return a
}

// Free defers the release to commit time (abort drops it), recycling the
// block through the thread's free lists.
func (x *lazyTx) Free(a mem.Addr, n int) { x.res.TxFree(a, n) }

// EarlyRelease is a no-op: TL2's commit-time validation makes removal of
// individual read entries unnecessary for the workloads that use it (the
// paper notes STMs avoid early release in labyrinth by using uninstrumented
// reads instead, which is what Peek provides).
func (x *lazyTx) EarlyRelease(mem.Addr) {}

// Peek is an uninstrumented read; it does not see the transaction's own
// buffered writes (documented on tm.Tx).
func (x *lazyTx) Peek(a mem.Addr) uint64 { return x.sys.cfg.Arena.Load(a) }

// Restart implements tm.Tx.
func (x *lazyTx) Restart() { x.info.Fail(tm.CauseExplicitRetry, 0, tm.NoBlock) }

func (x *lazyTx) releaseAcquired() {
	for _, rec := range x.acquired {
		x.sys.locks.store(rec.idx, rec.old)
	}
	x.acquired = x.acquired[:0]
}

// commit performs the TL2 commit: lock the write set, increment the global
// clock, validate the read set, write back, release with the new version.
func (x *lazyTx) commit() bool {
	if x.wset.Len() == 0 {
		return true // read-only transactions were validated on every read
	}
	// Failpoint: a spurious abort at lock acquisition looks exactly like
	// losing a writer-writer race, so it carries that site's natural cause.
	if x.sys.chaos.Fire(chaos.TL2LockAcquire, x.th.id) {
		x.info.Set(tm.CauseWriteWrite, 0, tm.NoBlock)
		return false
	}
	for _, e := range x.wset.Entries() {
		idx := x.sys.locks.index(e.Addr)
		lw := x.sys.locks.load(idx)
		if owner, locked := lockedBy(lw); locked {
			if owner == x.slot {
				continue // stripe already acquired (another word, same stripe)
			}
			x.info.Set(tm.CauseWriteWrite, trace.AddrKey(uint64(e.Addr)), x.sys.blockOf(owner))
			x.releaseAcquired()
			return false
		}
		if versionOf(lw) > x.rv {
			// The stripe was committed past our snapshot. Acquiring it would
			// hide that from read-set validation (a self-locked stripe
			// validates trivially), so abort here. This is the standard TL2
			// guard; it is slightly conservative for blind writes.
			x.info.Set(tm.CauseWriteWrite, trace.AddrKey(uint64(e.Addr)), tm.NoBlock)
			x.releaseAcquired()
			return false
		}
		if !x.sys.locks.cas(idx, lw, x.slot<<1|1) {
			x.info.Set(tm.CauseWriteWrite, trace.AddrKey(uint64(e.Addr)), tm.NoBlock)
			x.releaseAcquired()
			return false
		}
		x.acquired = append(x.acquired, lockRec{idx: idx, old: lw})
	}
	wv, validate := x.sys.clock.CommitTick(x.rv)
	if validate {
		for _, idx := range x.reads.Slice() {
			e := x.sys.locks.load(idx)
			if owner, locked := lockedBy(e); locked {
				if owner != x.slot {
					x.info.Set(tm.CauseReadValidation, trace.StripeKey(uint64(idx)), x.sys.blockOf(owner))
					x.releaseAcquired()
					return false
				}
			} else if versionOf(e) > x.rv {
				x.info.Set(tm.CauseReadValidation, trace.StripeKey(uint64(idx)), tm.NoBlock)
				x.releaseAcquired()
				return false
			}
		}
	}
	for _, e := range x.wset.Entries() {
		x.sys.cfg.Arena.Store(e.Addr, e.Val)
	}
	// Failpoint: stall between writeback and release — the window where this
	// transaction holds every write-set stripe lock and peers pile up on it.
	x.sys.chaos.Stall(chaos.TL2LockRelease, x.th.id)
	for _, rec := range x.acquired {
		x.sys.locks.store(rec.idx, wv<<1)
	}
	x.acquired = x.acquired[:0]
	return true
}
