package tl2

import (
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/trace"
	"github.com/stamp-go/stamp/internal/tm/txset"
)

// Eager is the paper's eager variant of TL2: writes acquire the stripe lock
// at encounter time, update memory in place, and log the old value in an
// undo log that is replayed on abort. Locks are held until commit, so a
// conflicting transaction fails fast (early conflict detection) — which is
// exactly the behaviour that livelocks on genome in the paper. Read
// barriers are shorter than the lazy STM's (no write-buffer lookup), which
// is why the eager STM wins on read-heavy kmeans.
type Eager struct {
	cfg     tm.Config
	locks   *lockTable
	clock   tm.VersionClock
	threads []*eagerThread
	cms     []tm.ContentionManager // per-slot, for conflict arbitration
	chaos   *chaos.Injector        // nil unless Config.Chaos armed failpoints
}

// NewEager constructs the eager STM.
func NewEager(cfg tm.Config) (*Eager, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool, err := tm.NewCMPool(cfg, tm.DefaultCM)
	if err != nil {
		return nil, err
	}
	clock, err := tm.NewVersionClock(cfg)
	if err != nil {
		return nil, err
	}
	s := &Eager{cfg: cfg, locks: newLockTable(lockTableBitsFor(cfg)), clock: clock, chaos: pool.Chaos()}
	s.threads = make([]*eagerThread, cfg.Threads)
	s.cms = make([]tm.ContentionManager, cfg.Threads)
	for i := range s.threads {
		t := &eagerThread{id: i, sys: s}
		t.stats.Tracer = cfg.NewTracer()
		t.cm = pool.ForThread(i, &t.stats)
		s.cms[i] = t.cm
		t.tx = &eagerTx{sys: s, slot: uint64(i), th: t, res: cfg.NewReserver()}
		if cfg.ProfileSets {
			t.tx.readLines = make(map[mem.Line]struct{})
			t.tx.writeLines = make(map[mem.Line]struct{})
		}
		s.threads[i] = t
	}
	return s, nil
}

// ClockNow returns the current version-clock value (stats/bench hook).
func (s *Eager) ClockNow() uint64 { return s.clock.Now() }

// LockTableStripes returns the stripe count of this instance's lock table.
func (s *Eager) LockTableStripes() int { return len(s.locks.entries) }

// cmOf returns the contention manager of the transaction occupying slot, or
// nil for an out-of-range slot.
func (s *Eager) cmOf(slot uint64) tm.ContentionManager {
	if slot < uint64(len(s.cms)) {
		return s.cms[slot]
	}
	return nil
}

// blockOf returns the atomic block the transaction occupying slot is
// currently executing (tm.NoBlock when idle or out of range), for blaming
// the enemy call site in conflict attribution.
func (s *Eager) blockOf(slot uint64) tm.BlockID {
	if slot < uint64(len(s.threads)) {
		return tm.BlockID(s.threads[slot].curBlock.Load())
	}
	return tm.NoBlock
}

// Name implements tm.System.
func (s *Eager) Name() string { return "stm-eager" }

// Arena implements tm.System.
func (s *Eager) Arena() *mem.Arena { return s.cfg.Arena }

// NThreads implements tm.System.
func (s *Eager) NThreads() int { return s.cfg.Threads }

// Thread implements tm.System.
func (s *Eager) Thread(id int) tm.Thread { return s.threads[id] }

// Stats implements tm.System.
func (s *Eager) Stats() tm.Stats {
	per := make([]*tm.ThreadStats, len(s.threads))
	for i, t := range s.threads {
		per[i] = &t.stats
	}
	return tm.Aggregate(per)
}

type eagerThread struct {
	id    int
	sys   *Eager
	stats tm.ThreadStats
	tx    *eagerTx
	cm    tm.ContentionManager
	timer tm.AtomicTimer

	// curBlock publishes the block this thread is currently inside, so
	// enemies that abort against our stripe locks can blame the call site.
	curBlock atomic.Int32
}

func (t *eagerThread) ID() int                { return t.id }
func (t *eagerThread) Stats() *tm.ThreadStats { return &t.stats }

func (t *eagerThread) Atomic(fn func(tm.Tx)) { t.AtomicAt(tm.NoBlock, fn) }

func (t *eagerThread) AtomicAt(b tm.BlockID, fn func(tm.Tx)) {
	t.timer.BeginBlock()
	t.stats.Starts++
	t.stats.Tracer.SampleBlock(t.id, int32(b))
	t.curBlock.Store(int32(b))
	t.cm.OnStart()
	aborts := 0
	for {
		t.tx.begin()
		if tm.Attempt(t.tx, fn) && t.tx.commit() {
			break
		}
		t.tx.rollback()
		aborts++
		t.stats.Aborts++
		t.stats.RecordAbort(b, t.tx.info.Cause, t.tx.info.Key, t.tx.info.Blame)
		t.stats.Tracer.Emit(trace.EvAbort, t.tx.info.Cause, t.id, int32(b), t.tx.info.Key)
		t.stats.Wasted += t.tx.loads + t.tx.stores
		t.tx.res.OnAbort()
		if t.tx.info.Err != nil {
			// Terminal alloc exhaustion: the abort is accounted, the undo log
			// replayed, locks released — unwind instead of retrying.
			t.curBlock.Store(int32(tm.NoBlock))
			tm.AbandonBlock(t.cm)
			t.tx.info.BailAlloc()
		}
		t.cm.OnAbort(aborts)
	}
	t.tx.res.OnCommit()
	t.curBlock.Store(int32(tm.NoBlock))
	t.cm.OnCommit()
	t.stats.Commits++
	t.stats.Tracer.Emit(trace.EvCommit, tm.CauseUnknown, t.id, int32(b), 0)
	t.stats.RecordBlock(b, "stm-eager", uint64(aborts), t.tx.loads, t.tx.stores)
	t.stats.Loads += t.tx.loads
	t.stats.Stores += t.tx.stores
	t.stats.LoadsHist.Add(int(t.tx.loads))
	t.stats.StoresHist.Add(int(t.tx.stores))
	if t.tx.readLines != nil {
		t.stats.ReadLinesHist.Add(len(t.tx.readLines))
		t.stats.WriteLinesHist.Add(len(t.tx.writeLines))
	}
	t.stats.TxTimeNs += int64(t.timer.EndBlock())
}

type eagerTx struct {
	sys  *Eager
	th   *eagerThread
	slot uint64
	res  *mem.Reserver // thread-private allocation chunk

	rv       uint64
	reads    txset.IndexSet
	acquired []lockRec
	undo     txset.WriteSet // addr → old value; doubles as the written-set
	info     tm.AbortInfo   // pending-abort cause/location/blame registers

	loads  uint64
	stores uint64

	readLines  map[mem.Line]struct{}
	writeLines map[mem.Line]struct{}
}

func (x *eagerTx) begin() {
	x.rv = x.sys.clock.Begin()
	x.reads.Reset()
	x.acquired = x.acquired[:0]
	x.undo.Reset()
	x.info.Reset()
	x.loads, x.stores = 0, 0
	if x.readLines != nil {
		clear(x.readLines)
		clear(x.writeLines)
	}
}

// rollback replays the undo log (newest first), releases the stripe locks
// (restoring their pre-acquisition entries), and notifies the clock scheme
// (gv5 advances an epoch the aborted attempt tripped on).
func (x *eagerTx) rollback() {
	x.sys.clock.OnAbort(x.rv)
	undo := x.undo.Entries()
	for i := len(undo) - 1; i >= 0; i-- {
		x.sys.cfg.Arena.Store(undo[i].Addr, undo[i].Val)
	}
	x.undo.Reset()
	for i := len(x.acquired) - 1; i >= 0; i-- {
		x.sys.locks.store(x.acquired[i].idx, x.acquired[i].old)
	}
	x.acquired = x.acquired[:0]
}

// Load implements the eager read barrier: no write-buffer lookup; stripes
// locked by this transaction read their in-place value directly.
func (x *eagerTx) Load(a mem.Addr) uint64 {
	x.loads++
	idx := x.sys.locks.index(a)
	e1 := x.sys.locks.load(idx)
	for probe := 0; ; probe++ {
		owner, locked := lockedBy(e1)
		if !locked {
			break
		}
		if owner == x.slot {
			return x.sys.cfg.Arena.Load(a)
		}
		// Early conflict detection: the stripe is held by a running writer.
		// Requester-loses policies fail fast here; priority policies may
		// wait the holder out and re-probe.
		if tm.WaitOrAbort(x.th.cm, x.sys.cmOf(owner), probe) {
			x.info.Fail(tm.CauseOrDisplaced(x.th.cm, tm.CauseStripeLockBusy), trace.AddrKey(uint64(a)), x.sys.blockOf(owner))
		}
		e1 = x.sys.locks.load(idx)
	}
	if versionOf(e1) > x.rv {
		x.info.Fail(tm.CauseReadValidation, trace.AddrKey(uint64(a)), tm.NoBlock)
	}
	v := x.sys.cfg.Arena.Load(a)
	if x.sys.locks.load(idx) != e1 {
		x.info.Fail(tm.CauseReadValidation, trace.AddrKey(uint64(a)), tm.NoBlock)
	}
	x.reads.Add(idx)
	if x.readLines != nil {
		x.readLines[mem.LineOf(a)] = struct{}{}
	}
	return v
}

// Store implements the eager write barrier: acquire the stripe lock, log the
// old value, write in place.
func (x *eagerTx) Store(a mem.Addr, v uint64) {
	x.stores++
	// Failpoint: a spurious abort at encounter-time acquisition looks like
	// losing a writer-writer race, so it carries that site's natural cause.
	if x.sys.chaos.Fire(chaos.TL2LockAcquire, x.th.id) {
		x.info.Fail(tm.CauseWriteWrite, trace.AddrKey(uint64(a)), tm.NoBlock)
	}
	idx := x.sys.locks.index(a)
	for probe := 0; ; probe++ {
		e := x.sys.locks.load(idx)
		owner, locked := lockedBy(e)
		if locked && owner == x.slot {
			break // stripe already held
		}
		if locked {
			if tm.WaitOrAbort(x.th.cm, x.sys.cmOf(owner), probe) {
				x.info.Fail(tm.CauseOrDisplaced(x.th.cm, tm.CauseWriteWrite), trace.AddrKey(uint64(a)), x.sys.blockOf(owner))
			}
			continue
		}
		if versionOf(e) > x.rv {
			// Stripe committed past our snapshot; keep it simple and retry.
			x.info.Fail(tm.CauseWriteWrite, trace.AddrKey(uint64(a)), tm.NoBlock)
		}
		if x.sys.locks.cas(idx, e, x.slot<<1|1) {
			x.acquired = append(x.acquired, lockRec{idx: idx, old: e})
			break
		}
		// CAS raced with another acquirer; re-probe and arbitrate.
	}
	// Log the old value only on the first store to a (undo-log semantics);
	// the Contains guard keeps repeat stores from even reading the arena.
	if !x.undo.Contains(a) {
		x.undo.Insert(a, x.sys.cfg.Arena.Load(a))
	}
	x.sys.cfg.Arena.Store(a, v)
	if x.writeLines != nil {
		x.writeLines[mem.LineOf(a)] = struct{}{}
	}
}

// Alloc carves from the thread's reserver; a real capacity miss unwinds
// terminally via FailAlloc, the alloc-exhaust failpoint injects only the
// abort (the undo log makes either path a plain rollback).
func (x *eagerTx) Alloc(n int) mem.Addr {
	if x.sys.chaos.Fire(chaos.AllocExhaust, x.th.id) {
		x.info.Fail(tm.CauseAllocExhausted, 0, tm.NoBlock)
	}
	a, err := x.res.TxAlloc(n)
	if err != nil {
		x.info.FailAlloc(err)
	}
	return a
}

// Free defers the release to commit time (rollback drops it), recycling the
// block through the thread's free lists.
func (x *eagerTx) Free(a mem.Addr, n int) { x.res.TxFree(a, n) }

// EarlyRelease is a no-op for the STM, as in the paper.
func (x *eagerTx) EarlyRelease(mem.Addr) {}

// Peek is an uninstrumented read. With eager versioning it may observe
// another transaction's in-place speculative value; the only sanctioned use
// (labyrinth privatization) tolerates stale or in-flight grid data by
// revalidating inside the transaction, exactly as the paper describes.
func (x *eagerTx) Peek(a mem.Addr) uint64 { return x.sys.cfg.Arena.Load(a) }

// Restart implements tm.Tx.
func (x *eagerTx) Restart() { x.info.Fail(tm.CauseExplicitRetry, 0, tm.NoBlock) }

// commit validates the read set and publishes by releasing locks at the new
// version; data is already in place.
func (x *eagerTx) commit() bool {
	if len(x.acquired) == 0 && x.undo.Len() == 0 {
		return true // read-only
	}
	wv, validate := x.sys.clock.CommitTick(x.rv)
	if validate {
		for _, idx := range x.reads.Slice() {
			e := x.sys.locks.load(idx)
			if owner, locked := lockedBy(e); locked {
				if owner != x.slot {
					x.info.Set(tm.CauseReadValidation, trace.StripeKey(uint64(idx)), x.sys.blockOf(owner))
					x.failCommit()
					return false
				}
			} else if versionOf(e) > x.rv {
				x.info.Set(tm.CauseReadValidation, trace.StripeKey(uint64(idx)), tm.NoBlock)
				x.failCommit()
				return false
			}
		}
	}
	// Failpoint: stall before release — data is already in place and every
	// written stripe is still locked, so peers pile up on this transaction.
	x.sys.chaos.Stall(chaos.TL2LockRelease, x.th.id)
	for i := range x.acquired {
		x.sys.locks.store(x.acquired[i].idx, wv<<1)
	}
	x.acquired = x.acquired[:0]
	x.undo.Reset()
	return true
}

// failCommit rolls back in-place writes and releases locks after a failed
// commit-time validation.
func (x *eagerTx) failCommit() {
	undo := x.undo.Entries()
	for i := len(undo) - 1; i >= 0; i-- {
		x.sys.cfg.Arena.Store(undo[i].Addr, undo[i].Val)
	}
	x.undo.Reset()
	for i := len(x.acquired) - 1; i >= 0; i-- {
		x.sys.locks.store(x.acquired[i].idx, x.acquired[i].old)
	}
	x.acquired = x.acquired[:0]
}
