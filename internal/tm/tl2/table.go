// Package tl2 implements the two software TM systems of the paper: a lazy
// STM that is a port of TL2 (Dice, Shalev, Shavit — "Transactional Locking
// II"), and the paper's eager variant of TL2 (undo log plus encounter-time
// write locks). Both detect conflicts at word granularity, which is the
// property that lets the STMs beat the line-granularity HTMs on bayes and
// vacation in the paper.
package tl2

import (
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

// Lock-table size bounds, in log2 stripes. The table is sized from the
// arena (one stripe per word, next power of two) unless
// tm.Config.LockTableBits pins it; either way it stays within
// [minLockTableBits, maxLockTableBits]. The historical table was a fixed
// 2^20 stripes (8 MiB of metadata) regardless of workload — small
// workloads paid that in cold cache misses on every barrier, and
// stm-adaptive paid it twice. Beyond 2^maxLockTableBits words, addresses
// hash onto stripes, which only introduces (rare, harmless) false
// conflicts.
const (
	minLockTableBits = 12 // 4096 stripes, 32 KiB — floor for tiny arenas
	maxLockTableBits = 20 // 2^20 stripes, 8 MiB — the historical fixed size
)

// lockTableBitsFor derives the stripe count for a config: explicit
// LockTableBits clamped to the bounds, else the smallest power of two
// covering the arena word for word.
func lockTableBitsFor(cfg tm.Config) int {
	bits := cfg.LockTableBits
	if bits == 0 {
		bits = minLockTableBits
		for bits < maxLockTableBits && 1<<bits < cfg.Arena.Cap() {
			bits++
		}
		return bits
	}
	if bits < minLockTableBits {
		return minLockTableBits
	}
	if bits > maxLockTableBits {
		return maxLockTableBits
	}
	return bits
}

// A lock entry encodes either a version (unlocked) or an owner (locked):
//
//	unlocked: version<<1 | 0
//	locked:   owner<<1   | 1
type lockTable struct {
	entries []atomic.Uint64
	shift   uint32
}

func newLockTable(bits int) *lockTable {
	return &lockTable{entries: make([]atomic.Uint64, uint32(1)<<bits), shift: uint32(32 - bits)}
}

// index maps a word address to its stripe (word granularity).
func (t *lockTable) index(a mem.Addr) uint32 {
	// Knuth multiplicative mix spreads structured address patterns; the
	// high product bits carry the mixing, so a right-sized (smaller) table
	// keeps them rather than the low bits.
	return (uint32(a) * 2654435761) >> t.shift
}

func (t *lockTable) load(idx uint32) uint64     { return t.entries[idx].Load() }
func (t *lockTable) store(idx uint32, v uint64) { t.entries[idx].Store(v) }
func (t *lockTable) cas(idx uint32, o, n uint64) bool {
	return t.entries[idx].CompareAndSwap(o, n)
}

func lockedBy(e uint64) (owner uint64, locked bool) { return e >> 1, e&1 == 1 }

func versionOf(e uint64) uint64 { return e >> 1 }

type lockRec struct {
	idx uint32
	old uint64 // entry value before acquisition (restored on abort)
}
