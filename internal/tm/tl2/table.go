// Package tl2 implements the two software TM systems of the paper: a lazy
// STM that is a port of TL2 (Dice, Shalev, Shavit — "Transactional Locking
// II"), and the paper's eager variant of TL2 (undo log plus encounter-time
// write locks). Both detect conflicts at word granularity, which is the
// property that lets the STMs beat the line-granularity HTMs on bayes and
// vacation in the paper.
package tl2

import (
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
)

// lockTableBits sizes the versioned-lock array (stripes). One stripe per
// word up to 2^20 stripes; beyond that, addresses hash onto stripes, which
// only introduces (rare, harmless) false conflicts.
const lockTableBits = 20

// A lock entry encodes either a version (unlocked) or an owner (locked):
//
//	unlocked: version<<1 | 0
//	locked:   owner<<1   | 1
type lockTable struct {
	entries []atomic.Uint64
	mask    uint32
}

func newLockTable() *lockTable {
	n := uint32(1) << lockTableBits
	return &lockTable{entries: make([]atomic.Uint64, n), mask: n - 1}
}

// index maps a word address to its stripe (word granularity).
func (t *lockTable) index(a mem.Addr) uint32 {
	// Knuth multiplicative mix spreads structured address patterns.
	return (uint32(a) * 2654435761) & t.mask
}

func (t *lockTable) load(idx uint32) uint64     { return t.entries[idx].Load() }
func (t *lockTable) store(idx uint32, v uint64) { t.entries[idx].Store(v) }
func (t *lockTable) cas(idx uint32, o, n uint64) bool {
	return t.entries[idx].CompareAndSwap(o, n)
}

func lockedBy(e uint64) (owner uint64, locked bool) { return e >> 1, e&1 == 1 }

func versionOf(e uint64) uint64 { return e >> 1 }

type lockRec struct {
	idx uint32
	old uint64 // entry value before acquisition (restored on abort)
}
