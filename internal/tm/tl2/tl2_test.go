package tl2

import (
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

func TestLockEntryEncoding(t *testing.T) {
	// unlocked: version<<1; locked: owner<<1|1.
	if owner, locked := lockedBy(0); locked || owner != 0 {
		t.Fatal("zero entry must be unlocked version 0")
	}
	if v := versionOf(42 << 1); v != 42 {
		t.Fatalf("version = %d", v)
	}
	if owner, locked := lockedBy(7<<1 | 1); !locked || owner != 7 {
		t.Fatalf("owner = %d locked = %v", owner, locked)
	}
}

func TestLockTableIndexStable(t *testing.T) {
	for _, bits := range []int{minLockTableBits, 16, maxLockTableBits} {
		lt := newLockTable(bits)
		for _, a := range []mem.Addr{0, 1, 4, 1 << 20, 1<<31 - 1} {
			if lt.index(a) != lt.index(a) {
				t.Fatal("index not deterministic")
			}
			if int(lt.index(a)) >= len(lt.entries) {
				t.Fatal("index out of range")
			}
		}
	}
}

// TestLockTableRightSizing pins the arena-derived table size and the
// clamping of explicit tm.Config.LockTableBits values.
func TestLockTableRightSizing(t *testing.T) {
	cases := []struct {
		arenaWords int
		bits       int // Config.LockTableBits
		want       int // stripes
	}{
		{1 << 10, 0, 1 << minLockTableBits},  // tiny arena: floor
		{1 << 14, 0, 1 << 14},                // one stripe per word
		{1<<14 + 1, 0, 1 << 15},              // rounds up to the next power of two
		{1 << 24, 0, 1 << maxLockTableBits},  // huge arena: historical cap
		{1 << 10, 18, 1 << 18},               // explicit wins over derivation
		{1 << 10, 30, 1 << maxLockTableBits}, // explicit clamps high
		{1 << 24, 4, 1 << minLockTableBits},  // explicit clamps low
	}
	for _, c := range cases {
		cfg := tm.Config{Arena: mem.NewArena(c.arenaWords), Threads: 2, LockTableBits: c.bits}
		lazy, err := NewLazy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := lazy.LockTableStripes(); got != c.want {
			t.Errorf("lazy stripes(arena=%d, bits=%d) = %d, want %d", c.arenaWords, c.bits, got, c.want)
		}
		eager, err := NewEager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := eager.LockTableStripes(); got != c.want {
			t.Errorf("eager stripes(arena=%d, bits=%d) = %d, want %d", c.arenaWords, c.bits, got, c.want)
		}
	}
}

func TestUnknownClockSchemeErrors(t *testing.T) {
	cfg := tm.Config{Arena: mem.NewArena(64), Threads: 1, Clock: "gv9"}
	if _, err := NewLazy(cfg); err == nil {
		t.Fatal("NewLazy accepted an unknown clock scheme")
	}
	if _, err := NewEager(cfg); err == nil {
		t.Fatal("NewEager accepted an unknown clock scheme")
	}
}

func TestLazyReadOnlyCommitsWithoutClockTick(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	a := arena.Alloc(1)
	sys, err := NewLazy(tm.Config{Arena: arena, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := sys.clock.Now()
	sys.Thread(0).Atomic(func(tx tm.Tx) { tx.Load(a) })
	if sys.clock.Now() != before {
		t.Fatal("read-only transaction advanced the global clock")
	}
}

func TestLazyWriteAdvancesClock(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	a := arena.Alloc(1)
	sys, _ := NewLazy(tm.Config{Arena: arena, Threads: 1})
	before := sys.clock.Now()
	sys.Thread(0).Atomic(func(tx tm.Tx) { tx.Store(a, 1) })
	if sys.clock.Now() != before+1 {
		t.Fatalf("clock moved %d, want 1", sys.clock.Now()-before)
	}
}

func TestLazyLocksReleasedAfterCommit(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	a := arena.Alloc(1)
	sys, _ := NewLazy(tm.Config{Arena: arena, Threads: 1})
	sys.Thread(0).Atomic(func(tx tm.Tx) { tx.Store(a, 9) })
	e := sys.locks.load(sys.locks.index(a))
	if _, locked := lockedBy(e); locked {
		t.Fatal("stripe still locked after commit")
	}
	if versionOf(e) == 0 {
		t.Fatal("stripe version not published")
	}
}

func TestEagerLocksReleasedAfterAbortAndCommit(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	a := arena.Alloc(1)
	arena.Store(a, 5)
	sys, _ := NewEager(tm.Config{Arena: arena, Threads: 1})
	first := true
	sys.Thread(0).Atomic(func(tx tm.Tx) {
		tx.Store(a, 6)
		if first {
			first = false
			// Mid-transaction the stripe must be encounter-locked.
			if _, locked := lockedBy(sys.locks.load(sys.locks.index(a))); !locked {
				t.Error("stripe not locked at encounter time")
			}
			tx.Restart()
		}
	})
	e := sys.locks.load(sys.locks.index(a))
	if _, locked := lockedBy(e); locked {
		t.Fatal("stripe still locked after commit")
	}
	if arena.Load(a) != 6 {
		t.Fatalf("final value %d", arena.Load(a))
	}
}

func TestEagerUndoRestoresOnAbort(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	a := arena.Alloc(1)
	b := arena.Alloc(1)
	arena.Store(a, 10)
	arena.Store(b, 20)
	sys, _ := NewEager(tm.Config{Arena: arena, Threads: 1})
	attempt := 0
	sys.Thread(0).Atomic(func(tx tm.Tx) {
		attempt++
		if attempt == 1 {
			tx.Store(a, 11)
			tx.Store(b, 21)
			tx.Store(a, 12) // second write to a: only one undo entry
			tx.Restart()
		}
		// After rollback both must read their originals.
		if tx.Load(a) != 10 || tx.Load(b) != 20 {
			t.Errorf("rollback incomplete: a=%d b=%d", tx.Load(a), tx.Load(b))
		}
	})
	if attempt != 2 {
		t.Fatalf("attempts = %d", attempt)
	}
}

func TestLazyStripeCollisionSelfCompatible(t *testing.T) {
	// Two addresses mapping to the same stripe within one transaction must
	// not deadlock or double-acquire at commit.
	arena := mem.NewArena(1 << 22)
	sys, _ := NewLazy(tm.Config{Arena: arena, Threads: 1})
	// Find two addresses sharing a stripe.
	var a1, a2 mem.Addr
	a1 = arena.Alloc(1)
	idx := sys.locks.index(a1)
	for {
		c := arena.Alloc(1)
		if sys.locks.index(c) == idx {
			a2 = c
			break
		}
	}
	sys.Thread(0).Atomic(func(tx tm.Tx) {
		tx.Store(a1, 1)
		tx.Store(a2, 2)
	})
	if arena.Load(a1) != 1 || arena.Load(a2) != 2 {
		t.Fatal("colliding-stripe writes lost")
	}
}
