package tl2

import (
	"sync"
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/tm"
)

// tl2System abstracts the two runtimes for the clock-scheme tests.
type tl2System interface {
	tm.System
	ClockNow() uint64
}

func newTL2(t *testing.T, eager bool, cfg tm.Config) tl2System {
	t.Helper()
	var sys tl2System
	var err error
	if eager {
		sys, err = NewEager(cfg)
	} else {
		sys, err = NewLazy(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestClockSchemeOpacityForcedRace is the gv4/gv5 opacity regression test:
// a reader snapshots two words with a writer's commit forced into the
// middle of its read set — begin, read X, *then* let the writer commit
// {X, Y}, then read Y. Whatever the clock scheme does (share a write
// version on a failed CAS, publish clock+1 without ticking), the reader
// must never return X-old together with Y-new: it has to abort and re-run
// with a consistent snapshot. The orchestration is deterministic, so every
// iteration exercises exactly the clock-race window; a violation here is a
// stale read the scheme let through.
func TestClockSchemeOpacityForcedRace(t *testing.T) {
	const iters = 200
	for _, scheme := range tm.ClockNames() {
		for _, eager := range []bool{false, true} {
			name := scheme + "/lazy"
			if eager {
				name = scheme + "/eager"
			}
			t.Run(name, func(t *testing.T) {
				arena := mem.NewArena(1 << 12)
				x := arena.AllocLines(1)
				y := arena.AllocLines(1)
				sys := newTL2(t, eager, tm.Config{Arena: arena, Threads: 2, Clock: scheme})
				for i := 0; i < iters; i++ {
					arena.Store(x, 0)
					arena.Store(y, 0)
					readX := make(chan struct{}) // reader has read X
					wrote := make(chan struct{}) // writer has committed
					var torn bool
					var wg sync.WaitGroup
					wg.Add(2)
					go func() {
						defer wg.Done()
						first := true
						sys.Thread(0).Atomic(func(tx tm.Tx) {
							vx := tx.Load(x)
							if first {
								first = false
								close(readX)
								<-wrote // the writer commits inside our read set
							}
							vy := tx.Load(y)
							if vx != vy {
								torn = true
							}
						})
					}()
					go func() {
						defer wg.Done()
						<-readX
						sys.Thread(1).Atomic(func(tx tm.Tx) {
							tx.Store(x, uint64(i)+1)
							tx.Store(y, uint64(i)+1)
						})
						close(wrote)
					}()
					wg.Wait()
					if torn {
						t.Fatalf("iteration %d: reader observed X and Y from different snapshots", i)
					}
				}
			})
		}
	}
}

// TestClockSchemeInvariantStress runs the bank-transfer invariant over
// every scheme on both TL2 runtimes at full concurrency (run with -race):
// no scheme may admit a torn total, and gv5's non-ticking commits must not
// livelock the retry loop.
func TestClockSchemeInvariantStress(t *testing.T) {
	const (
		threads  = 8
		accounts = 16
		total    = 800
		perT     = 400
	)
	for _, scheme := range tm.ClockNames() {
		for _, eager := range []bool{false, true} {
			name := scheme + "/lazy"
			if eager {
				name = scheme + "/eager"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				arena := mem.NewArena(1 << 12)
				accs := make([]mem.Addr, accounts)
				for i := range accs {
					accs[i] = arena.AllocLines(1)
				}
				arena.Store(accs[0], total)
				sys := newTL2(t, eager, tm.Config{Arena: arena, Threads: threads, Clock: scheme})
				var violations [threads]int64
				var wg sync.WaitGroup
				for tid := 0; tid < threads; tid++ {
					wg.Add(1)
					go func(tid int) {
						defer wg.Done()
						th := sys.Thread(tid)
						r := rng.New(uint64(tid)*131 + 7)
						for i := 0; i < perT; i++ {
							if i%4 == 0 {
								th.Atomic(func(tx tm.Tx) {
									var sum uint64
									for _, a := range accs {
										sum += tx.Load(a)
									}
									if sum != total {
										violations[tid]++
									}
								})
								continue
							}
							from, to := r.Intn(accounts), r.Intn(accounts)
							amount := uint64(r.Intn(4))
							th.Atomic(func(tx tm.Tx) {
								f := tx.Load(accs[from])
								if f < amount {
									return
								}
								tx.Store(accs[from], f-amount)
								tx.Store(accs[to], tx.Load(accs[to])+amount)
							})
						}
					}(tid)
				}
				wg.Wait()
				for tid, v := range violations {
					if v != 0 {
						t.Fatalf("thread %d observed %d torn snapshots under %s", tid, v, scheme)
					}
				}
				var sum uint64
				for _, a := range accs {
					sum += arena.Load(a)
				}
				if sum != total {
					t.Fatalf("final total = %d, want %d", sum, total)
				}
			})
		}
	}
}

// TestGV5SystemMakesProgress pins the abort-hook plumbing: on a hot word,
// every gv5 commit leaves a version the next begin's stale snapshot trips
// on, so only the OnAbort bump lets each retry through — if a runtime
// forgot to call OnAbort this test would spin forever instead of
// finishing. (This worst-case workload advances the clock about once per
// commit; the quiet-clock property is pinned separately below.)
func TestGV5SystemMakesProgress(t *testing.T) {
	for _, eager := range []bool{false, true} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(1 << 10)
			hot := arena.Alloc(1)
			sys := newTL2(t, eager, tm.Config{Arena: arena, Threads: 1, Clock: "gv5"})
			th := sys.Thread(0)
			const n = 500
			for i := 0; i < n; i++ {
				th.Atomic(func(tx tm.Tx) {
					tx.Store(hot, tx.Load(hot)+1)
				})
			}
			if got := arena.Load(hot); got != n {
				t.Fatalf("counter = %d, want %d", got, n)
			}
		})
	}
}

// TestGV5ClockStaysQuietWithoutRereads pins gv5's reason to exist: a
// workload that does not re-read its own recent writes (disjoint cells,
// visited round-robin with a long revisit distance) commits without a
// single clock write — ClockNow must stay far below the commit count. A
// regression that ticked the clock per commit (gv1-like behavior behind
// the gv5 name) fails this immediately.
func TestGV5ClockStaysQuietWithoutRereads(t *testing.T) {
	for _, eager := range []bool{false, true} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		t.Run(name, func(t *testing.T) {
			const cells = 64
			const n = 1000
			arena := mem.NewArena(1 << 12)
			addrs := make([]mem.Addr, cells)
			for i := range addrs {
				addrs[i] = arena.AllocLines(1)
			}
			sys := newTL2(t, eager, tm.Config{Arena: arena, Threads: 1, Clock: "gv5"})
			th := sys.Thread(0)
			for i := 0; i < n; i++ {
				a := addrs[i%cells]
				th.Atomic(func(tx tm.Tx) {
					tx.Store(a, uint64(i)) // blind store: no read of a stale-epoch version
				})
			}
			// Blind stores to cells whose versions only trip the commit-time
			// write-lock guard on revisit: each cell is revisited after 63
			// other commits, and since none of those ticked the clock the
			// revisit still sees version rv+1 and aborts once per epoch at
			// most. The clock must stay an order of magnitude below commits.
			if now := sys.ClockNow(); now > n/10 {
				t.Fatalf("gv5 clock advanced %d times over %d commits (want rare advances)", now, n)
			}
			if st := sys.Stats(); st.Total.Commits != n {
				t.Fatalf("commits = %d, want %d", st.Total.Commits, n)
			}
		})
	}
}
