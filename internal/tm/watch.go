package tm

import "sync/atomic"

// HaltSignal is the panic value a worker unwinds with when the liveness
// watchdog has halted the run (see Watch.Halt). It deliberately is not
// RetrySignal: tm.Attempt does not recover it, so it propagates out of the
// atomic block, through the runtime's retry loop, and up to thread.Team.Run,
// which re-raises it on the caller once the team has drained. The harness
// recovers it there and turns the run into a diagnosable failure instead of
// a hang.
type HaltSignal struct {
	// Reason says why the run was halted (e.g. "no commits for 2s").
	Reason string
}

// Watch is the liveness watchdog's shared state: a per-thread padded commit
// counter the monitor reads for progress, and a halt latch every blocked or
// retrying transaction polls at attempt boundaries. A nil *Watch is the
// disarmed state — all methods are nil-receiver no-ops costing one pointer
// test — so runtimes thread Config.Watch through unconditionally.
type Watch struct {
	slots  []PaddedUint64 // per-thread commit counts (no false sharing)
	halted atomic.Bool
	reason atomic.Pointer[string]
}

// NewWatch builds a watch for a team of the given worker count.
func NewWatch(threads int) *Watch {
	if threads < 1 {
		threads = 1
	}
	return &Watch{slots: make([]PaddedUint64, threads)}
}

// Bump credits one commit to worker tid. Runtimes call it once per committed
// atomic block (the Governor does it for every CM-managed runtime; seq bumps
// directly).
func (w *Watch) Bump(tid int) {
	if w == nil {
		return
	}
	w.slots[tid].Add(1)
}

// Commits returns the global commit count: the monitor's progress signal.
// Safe to call concurrently with workers.
func (w *Watch) Commits() uint64 {
	if w == nil {
		return 0
	}
	var sum uint64
	for i := range w.slots {
		sum += w.slots[i].Load()
	}
	return sum
}

// Halt latches the halt flag with the given reason. The first caller wins;
// later reasons are dropped. Workers observe the latch at their next Poll
// and unwind with HaltSignal.
func (w *Watch) Halt(reason string) {
	if w == nil {
		return
	}
	if w.reason.CompareAndSwap(nil, &reason) {
		// Reason is published before the latch, so a Poll that observes
		// halted always finds the winner's reason.
		w.halted.Store(true)
	}
}

// Halted reports whether the watch has been halted.
func (w *Watch) Halted() bool { return w != nil && w.halted.Load() }

// Reason returns the halt reason ("" while running).
func (w *Watch) Reason() string {
	if w == nil {
		return ""
	}
	if r := w.reason.Load(); r != nil {
		return *r
	}
	return ""
}

// Poll panics with HaltSignal if the watch has been halted. Workers call it
// at attempt boundaries and inside every unbounded wait loop the escalation
// layer owns, so a halted run drains instead of spinning forever. No-op on a
// nil watch.
func (w *Watch) Poll() {
	if w == nil || !w.halted.Load() {
		return
	}
	panic(HaltSignal{Reason: w.Reason()})
}
