package factory

import (
	"errors"
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// TestChaosStormAllocExhaust arms the alloc-exhaust failpoint at
// probability 1 on every concurrent runtime: every tx.Alloc spuriously
// reports the arena exhausted, so no allocating transaction can commit the
// ordinary way and termination proves the starvation-escalation guarantee
// covers the allocation path (the injector is suppressed for irrevocable
// attempts, whose allocations then succeed for real). The injected aborts
// must carry the alloc-exhausted cause and the run must never unwind with
// tm.AllocFailure — injection is a retryable abort, not real exhaustion.
func TestChaosStormAllocExhaust(t *testing.T) {
	const threads = 4
	const perT = 10
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(1 << 14)
			hot := arena.Alloc(1)
			sys, err := New(name, tm.Config{
				Arena:       arena,
				Threads:     threads,
				Chaos:       "7:alloc-exhaust:1",
				StarveAfter: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				for j := 0; j < perT; j++ {
					th.Atomic(func(tx tm.Tx) {
						n := tx.Alloc(2)
						tx.Store(n, 1)
						tx.Store(hot, tx.Load(hot)+1)
					})
				}
			})
			st := sys.Stats()
			if got := (mem.Direct{A: arena}).Load(hot); got != threads*perT {
				t.Fatalf("hot counter = %d, want %d", got, threads*perT)
			}
			if st.Total.Escalations == 0 {
				t.Error("storm terminated with zero escalations — allocating commits leaked past the armed failpoint")
			}
			if st.AbortCauses()[tm.CauseAllocExhausted] == 0 {
				t.Error("no abort carries the alloc-exhausted cause under a probability-1 alloc-exhaust storm")
			}
			assertCauseAccounting(t, name, st)
		})
	}
}

// TestAllocExhaustedTerminalTyped pins the real-exhaustion contract on
// every registered runtime, the sequential baseline included: when the
// arena genuinely cannot hold a transaction's allocation, the attempt
// aborts once with the alloc-exhausted cause (accounted in the closed
// taxonomy) and the block unwinds with tm.AllocFailure wrapping
// mem.ErrArenaFull — never a raw allocator panic, and never an infinite
// retry loop.
func TestAllocExhaustedTerminalTyped(t *testing.T) {
	for _, name := range Names() {
		threads := 2
		if name == "seq" {
			threads = 1
		}
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(64) // smaller than one reservation chunk
			sys, err := New(name, tm.Config{Arena: arena, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			var failure any
			func() {
				defer func() { failure = recover() }()
				team := thread.NewTeam(threads)
				team.Run(func(tid int) {
					th := sys.Thread(tid)
					for j := 0; j < 1<<10; j++ {
						th.Atomic(func(tx tm.Tx) {
							tx.Store(tx.Alloc(32), 1)
						})
					}
				})
			}()
			af, ok := failure.(tm.AllocFailure)
			if !ok {
				t.Fatalf("exhaustion unwound with %T (%v), want tm.AllocFailure", failure, failure)
			}
			if !errors.Is(af.Err, mem.ErrArenaFull) {
				t.Fatalf("AllocFailure.Err = %v, want errors.Is ErrArenaFull", af.Err)
			}
			st := sys.Stats()
			if st.AbortCauses()[tm.CauseAllocExhausted] == 0 {
				t.Error("terminal exhaustion recorded no alloc-exhausted abort")
			}
			assertCauseAccounting(t, name, st)
		})
	}
}

// TestSeqIgnoresAllocExhaustChaos pins the documented asymmetry: seq has no
// chaos injector (it has no escalation layer, so a probability-1 arm could
// never terminate), so an armed alloc-exhaust site must not fire there and
// the workload completes without aborts.
func TestSeqIgnoresAllocExhaustChaos(t *testing.T) {
	arena := mem.NewArena(1 << 12)
	hot := arena.Alloc(1)
	sys, err := New("seq", tm.Config{Arena: arena, Threads: 1, Chaos: "7:alloc-exhaust:1"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	team := thread.NewTeam(1)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for j := 0; j < n; j++ {
			th.Atomic(func(tx tm.Tx) {
				tx.Store(tx.Alloc(2), 1)
				tx.Store(hot, tx.Load(hot)+1)
			})
		}
	})
	if got := (mem.Direct{A: arena}).Load(hot); got != n {
		t.Fatalf("hot counter = %d, want %d", got, n)
	}
	if aborts := sys.Stats().Total.Aborts; aborts != 0 {
		t.Fatalf("seq recorded %d aborts under an armed alloc-exhaust site (no injector expected)", aborts)
	}
}

// TestTransactionalFreeRecyclesAcrossRuntimes drives balanced alloc/free
// churn far past the arena's raw capacity on every concurrent runtime: with
// the reserver free lists recycling committed frees, the loop completes
// inside a fixed arena where the seed's leak-everything allocator would
// exhaust it many times over.
func TestTransactionalFreeRecyclesAcrossRuntimes(t *testing.T) {
	const threads = 2
	const perT = 1 << 11 // 2 threads × 2^11 × 6 words ≈ 24k words of churn
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(1 << 13) // 8k words: must be recycled to fit
			sys, err := New(name, tm.Config{Arena: arena, Threads: threads, AllocChunk: 256})
			if err != nil {
				t.Fatal(err)
			}
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				for j := 0; j < perT; j++ {
					th.Atomic(func(tx tm.Tx) {
						n := tx.Alloc(6)
						tx.Store(n, uint64(j))
						tx.Free(n, 6)
					})
				}
			})
			if used, capW := arena.Used(), arena.Cap(); used > capW {
				t.Fatalf("high-water %d exceeds cap %d", used, capW)
			}
		})
	}
}
