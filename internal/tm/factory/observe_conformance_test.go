package factory

import (
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// assertCauseAccounting checks the abort-attribution invariants every
// runtime must satisfy on a completed run: the per-cause counters sum to
// the aggregate abort count with nothing left in the CauseUnknown bucket,
// and the per-block cause breakdown accounts for the same total.
func assertCauseAccounting(t *testing.T, name string, st tm.Stats) {
	t.Helper()
	causes := st.AbortCauses()
	var sum uint64
	for _, n := range causes {
		sum += n
	}
	if sum != st.Total.Aborts {
		t.Errorf("%s: per-cause counters sum to %d, want Aborts = %d (%v)",
			name, sum, st.Total.Aborts, causes)
	}
	if causes[tm.CauseUnknown] != 0 {
		t.Errorf("%s: %d aborts left unattributed (CauseUnknown)", name, causes[tm.CauseUnknown])
	}
	var blockSum uint64
	for _, row := range st.Blocks() {
		for _, n := range row.Causes {
			blockSum += n
		}
	}
	if blockSum != st.Total.Aborts {
		t.Errorf("%s: per-block cause counters sum to %d, want Aborts = %d",
			name, blockSum, st.Total.Aborts)
	}
}

// TestCauseConformanceRestart drives every registered runtime — including
// the sequential baseline — through transactions that explicitly Restart on
// their first attempt, the one abort every runtime can produce
// deterministically, and asserts the full attribution invariant plus the
// explicit-retry floor.
func TestCauseConformanceRestart(t *testing.T) {
	const perT = 20
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			threads := 4
			if name == "seq" {
				threads = 1
			}
			arena := mem.NewArena(1 << 14)
			cells := make([]mem.Addr, threads)
			for i := range cells {
				cells[i] = arena.AllocLines(1)
			}
			sys := newSys(t, name, arena, threads)
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				a := cells[tid]
				for j := 0; j < perT; j++ {
					first := true
					th.Atomic(func(tx tm.Tx) {
						if first {
							first = false
							tx.Restart()
						}
						tx.Store(a, tx.Load(a)+1)
					})
				}
			})
			st := sys.Stats()
			want := uint64(threads * perT)
			if st.Total.Commits != want {
				t.Fatalf("%s: commits = %d, want %d", name, st.Total.Commits, want)
			}
			if st.Total.Aborts < want {
				t.Errorf("%s: aborts = %d, want >= %d (one Restart per block)",
					name, st.Total.Aborts, want)
			}
			if got := st.AbortCauses()[tm.CauseExplicitRetry]; got < want {
				t.Errorf("%s: explicit-retry aborts = %d, want >= %d", name, got, want)
			}
			assertCauseAccounting(t, name, st)
		})
	}
}

// TestCauseConformanceContended hammers one hot word from every worker on
// every concurrent runtime: whatever aborts the protocol produces under
// real contention, each one must carry a non-unknown taxonomy cause.
func TestCauseConformanceContended(t *testing.T) {
	const threads = 8
	const perT = 400
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(1 << 12)
			hot := arena.Alloc(1)
			sys := newSys(t, name, arena, threads)
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				for j := 0; j < perT; j++ {
					th.Atomic(func(tx tm.Tx) {
						tx.Store(hot, tx.Load(hot)+1)
					})
				}
			})
			st := sys.Stats()
			if got := (mem.Direct{A: arena}).Load(hot); got != threads*perT {
				t.Fatalf("%s: hot counter = %d, want %d", name, got, threads*perT)
			}
			assertCauseAccounting(t, name, st)
		})
	}
}

// TestCauseHTMCapacityAttribution overflows the lazy HTM's speculative
// buffer deterministically (64 written lines against an 8-line capacity)
// and checks the aborts land in the htm-capacity bucket with the tripping
// line in the conflict heatmap.
func TestCauseHTMCapacityAttribution(t *testing.T) {
	const lines = 64
	arena := mem.NewArena(1 << 14)
	addrs := make([]mem.Addr, lines)
	for i := range addrs {
		addrs[i] = arena.AllocLines(1)
	}
	sys, err := New("htm-lazy", tm.Config{Arena: arena, Threads: 1, CapacityLines: 8})
	if err != nil {
		t.Fatal(err)
	}
	th := sys.Thread(0)
	for k := 0; k < 3; k++ {
		th.Atomic(func(tx tm.Tx) {
			for _, a := range addrs {
				tx.Store(a, tx.Load(a)+1)
			}
		})
	}
	st := sys.Stats()
	if st.Total.Aborts == 0 {
		t.Fatal("htm-lazy: 64-line transactions against 8-line capacity produced no aborts")
	}
	if got := st.AbortCauses()[tm.CauseHTMCapacity]; got == 0 {
		t.Errorf("htm-lazy: no aborts attributed to htm-capacity (%v)", st.AbortCauses())
	}
	assertCauseAccounting(t, "htm-lazy", st)
	rows := st.TopConflicts()
	if len(rows) == 0 {
		t.Fatal("htm-lazy: capacity aborts recorded no conflict-heatmap rows")
	}
	if rows[0].Causes[tm.CauseHTMCapacity] == 0 {
		t.Errorf("htm-lazy: hottest heatmap row has no htm-capacity conflicts: %+v", rows[0])
	}
}

// TestTraceEventsSweep runs every concurrent runtime with full tracing and
// checks the sampled event stream is coherent: time-sorted, every block
// commit paired with a begin, and every abort event carrying a non-unknown
// cause.
func TestTraceEventsSweep(t *testing.T) {
	const threads = 4
	const perT = 50
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(1 << 12)
			hot := arena.Alloc(1)
			sys, err := New(name, tm.Config{Arena: arena, Threads: threads, Trace: 1})
			if err != nil {
				t.Fatal(err)
			}
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				for j := 0; j < perT; j++ {
					th.Atomic(func(tx tm.Tx) {
						tx.Store(hot, tx.Load(hot)+1)
					})
				}
			})
			evs := tm.TraceEvents(sys)
			if len(evs) == 0 {
				t.Fatalf("%s: Trace=1 produced no events", name)
			}
			var begins, commits uint64
			for i, ev := range evs {
				if i > 0 && ev.TimeNs < evs[i-1].TimeNs {
					t.Fatalf("%s: events not time-sorted at %d", name, i)
				}
				switch ev.Kind {
				case tm.EvBegin:
					begins++
				case tm.EvCommit:
					commits++
				case tm.EvAbort:
					if ev.Cause == tm.CauseUnknown {
						t.Errorf("%s: abort event with unknown cause: %+v", name, ev)
					}
				}
			}
			want := uint64(threads * perT)
			if commits != want {
				t.Errorf("%s: %d commit events, want %d", name, commits, want)
			}
			if begins != want {
				t.Errorf("%s: %d begin events, want %d", name, begins, want)
			}
		})
	}
}
