package factory

import (
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// TestClockConformance sweeps every concurrent runtime × every commit-clock
// scheme through the condensed correctness suite (blind-increment
// atomicity, invariant-preserving transfers with reader snapshots, and
// transactional allocation), mirroring TestCMConformance on the clock
// axis. The TL2 runtimes and the adaptive wrapper's TL2 delegate exercise
// the scheme for real; the other runtimes must ignore Config.Clock without
// misbehaving, so a new runtime or scheme is screened automatically.
// TestUnknownClockRejectedEverywhere: a typoed Config.Clock must error on
// every runtime — including the ones without a version clock — so a run
// can never be mislabeled with a scheme that does not exist.
func TestUnknownClockRejectedEverywhere(t *testing.T) {
	for _, sysName := range Names() {
		if _, err := New(sysName, tm.Config{
			Arena: mem.NewArena(256), Threads: 1, Clock: "gv4x",
		}); err == nil {
			t.Errorf("%s accepted unknown clock scheme", sysName)
		}
	}
}

func TestClockConformance(t *testing.T) {
	const (
		threads  = 4
		perT     = 250
		accounts = 8
		total    = 400
	)
	for _, clockName := range tm.ClockNames() {
		for _, sysName := range concurrentNames() {
			t.Run(clockName+"/"+sysName, func(t *testing.T) {
				t.Parallel()
				arena := mem.NewArena(1 << 14)
				counter := arena.Alloc(1)
				accs := make([]mem.Addr, accounts)
				for i := range accs {
					accs[i] = arena.AllocLines(1)
				}
				arena.Store(accs[0], total)
				head := arena.Alloc(1)
				sys, err := New(sysName, tm.Config{
					Arena: arena, Threads: threads, Clock: clockName,
				})
				if err != nil {
					t.Fatalf("New(%s, clock=%s): %v", sysName, clockName, err)
				}
				team := thread.NewTeam(threads)
				var violations [threads]int64
				team.Run(func(tid int) {
					th := sys.Thread(tid)
					r := rng.New(uint64(tid)*53 + 11)
					for i := 0; i < perT; i++ {
						switch i % 4 {
						case 0:
							th.Atomic(func(tx tm.Tx) {
								tx.Store(counter, tx.Load(counter)+1)
							})
						case 1:
							from, to := r.Intn(accounts), r.Intn(accounts)
							amount := uint64(r.Intn(4))
							th.Atomic(func(tx tm.Tx) {
								f := tx.Load(accs[from])
								if f < amount {
									return
								}
								tx.Store(accs[from], f-amount)
								tx.Store(accs[to], tx.Load(accs[to])+amount)
							})
						case 2:
							// Transactional allocation rides along so the
							// per-thread reservation path is swept too.
							th.Atomic(func(tx tm.Tx) {
								node := tx.Alloc(2)
								tx.Store(node, uint64(tid))
								tx.Store(node+1, tx.Load(head))
								tx.Store(head, uint64(node))
							})
						default:
							th.Atomic(func(tx tm.Tx) {
								var sum uint64
								for _, a := range accs {
									sum += tx.Load(a)
								}
								if sum != total {
									violations[tid]++
								}
							})
						}
					}
				})
				wantCounter := uint64(threads * ((perT + 3) / 4))
				if got := arena.Load(counter); got != wantCounter {
					t.Fatalf("counter = %d, want %d (lost updates)", got, wantCounter)
				}
				var sum uint64
				for _, a := range accs {
					sum += arena.Load(a)
				}
				if sum != total {
					t.Fatalf("account total = %d, want %d", sum, total)
				}
				for tid, v := range violations {
					if v != 0 {
						t.Fatalf("thread %d observed %d torn snapshots", tid, v)
					}
				}
				// The allocation list must hold every transactionally
				// allocated node exactly once.
				wantNodes := threads * (perT / 4)
				seen := 0
				for p := mem.Addr(arena.Load(head)); p != mem.Nil; p = mem.Addr(arena.Load(p + 1)) {
					seen++
					if seen > wantNodes {
						t.Fatal("allocation list longer than expected (overlapping allocations?)")
					}
				}
				if seen != wantNodes {
					t.Fatalf("allocation list has %d nodes, want %d", seen, wantNodes)
				}
			})
		}
	}
}
