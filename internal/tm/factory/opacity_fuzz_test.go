package factory

import (
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/adaptive"
)

// Atomic-block call sites for the fuzz workload. The snapshot-sum block
// carries the read-only mark so stm-mv serves it from the begin-timestamp
// snapshot (ring lookups included); every other runtime ignores the mark
// and the block behaves like a plain reader.
var (
	blkFuzzSum  = tm.NewROBlock("opacity-fuzz/snapshot-sum")
	blkFuzzXfer = tm.NewBlock("opacity-fuzz/transfer")
)

// TestOpacityFuzz is the cross-runtime opacity fuzz suite: randomized
// concurrent transfers between accounts, interleaved with read-only
// sum transactions, swept over every registered concurrent runtime. Two
// oracles check the histories:
//
//   - Conserved sum: transfers move value but never create or destroy it,
//     so the direct post-run sum must equal the initial total.
//   - Per-transaction snapshot consistency, captured via read-recording:
//     each read-only block records the values its committed attempt loaded;
//     if they were not one consistent snapshot their sum differs from the
//     total. This is the opacity oracle — a runtime that lets a reader see
//     account A before a transfer and account B after it fails here.
//
// The config pins MVVersions to a small ring so stm-mv readers are forced
// through the version-ring lookup constantly (writers outrun the snapshot,
// rings overflow, mv-version-missing retries fire) rather than staying on
// the easy arena fast path. The transaction bodies yield at random points:
// on the few-core machines tests run on, goroutines otherwise interleave
// only at ~10ms preemption boundaries and short transactions almost never
// overlap — the yields are what make writer commits land between a
// reader's loads, which is the window every oracle violation needs.
//
// Mutation-tested: this suite was verified to catch a deliberately broken
// mv ring. Either of these single-line mutations in ringScan's filter
// (internal/tm/mv/mv.go) makes the stm-mv case fail within one run, with
// hundreds of torn snapshots:
//
//   - Off-by-one in the snapshot bound (`v1 > rv+2` instead of `v1 > rv+1`),
//     admitting a version committed after the snapshot: the reader sums a
//     future value of one account against present values of the rest.
//   - Broken newest-record selection (`best != 0` instead of `v1 <= best`,
//     first-found-wins): the reader is served a stale older version of an
//     account whose newer committed value was also within the snapshot.
func TestOpacityFuzz(t *testing.T) {
	const (
		threads  = 4
		accounts = 8
		total    = 4096
		perT     = 3000
	)
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			arena := mem.NewArena(1 << 12)
			accs := make([]mem.Addr, accounts)
			for i := range accs {
				accs[i] = arena.Alloc(1)
				arena.Store(accs[i], total/accounts)
			}
			sys, err := New(name, tm.Config{
				Arena: arena, Threads: threads,
				MVVersions: 4, // tiny rings: force stm-mv through overflow + retry
				// The yields make the eager in-place runtimes livelock-prone
				// (attempts perpetually killing each other — the simulated
				// HTMs default to no contention manager at all), so every
				// runtime gets the serialize fallback, which guarantees
				// progress without muting any conflict.
				CM: "serialize", SerializeAfter: 3,
			})
			if err != nil {
				t.Fatalf("New(%s): %v", name, err)
			}
			var torn [threads]int64
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				r := rng.New(uint64(tid)*2654435761 + 99)
				for i := 0; i < perT; i++ {
					if r.Intn(3) == 0 {
						// Read-only sum at a snapshot; judge the recorded
						// reads only if the attempt committed.
						var sum uint64
						th.AtomicAt(blkFuzzSum, func(tx tm.Tx) {
							sum = 0
							for _, a := range accs {
								sum += tx.Load(a)
								if r.Intn(2) == 0 {
									runtime.Gosched()
								}
							}
						})
						if sum != total {
							torn[tid]++
						}
						continue
					}
					from, to := r.Intn(accounts), r.Intn(accounts)
					amount := uint64(r.Intn(7))
					th.AtomicAt(blkFuzzXfer, func(tx tm.Tx) {
						f := tx.Load(accs[from])
						if f < amount {
							return
						}
						if r.Intn(4) == 0 {
							runtime.Gosched()
						}
						tx.Store(accs[from], f-amount)
						tx.Store(accs[to], tx.Load(accs[to])+amount)
					})
				}
			})
			for tid, v := range torn {
				if v != 0 {
					t.Errorf("thread %d committed %d inconsistent snapshots", tid, v)
				}
			}
			var sum uint64
			for _, a := range accs {
				sum += arena.Load(a)
			}
			if sum != total {
				t.Errorf("final sum = %d, want %d (value created or destroyed)", sum, total)
			}
			st := sys.Stats()
			if st.Total.Commits != threads*perT {
				t.Errorf("commits = %d, want %d", st.Total.Commits, threads*perT)
			}
			if unattr := st.AbortCauses()[tm.CauseUnknown]; unattr != 0 {
				t.Errorf("%d aborts left unattributed (CauseUnknown)", unattr)
			}
		})
	}
}

// TestAdaptiveMVReadDelegateHandoff runs the same transfer/snapshot-sum
// workload on stm-adaptive with stm-mv selected as the read delegate, while
// forced handoffs bounce the runtime between the delegates the whole time.
// This pins the ring-invalidation contract: every stm-lazy tenure writes the
// arena without maintaining mv's version rings, so the handoff back must
// invalidate them (System.OnHandoff bumps mv's ring epoch) or a later
// snapshot reader would be served a stale pre-handoff value and sum a torn
// total. Verified by mutation: commenting out the OnHandoff call in
// adaptive.switchTo makes this test fail.
func TestAdaptiveMVReadDelegateHandoff(t *testing.T) {
	const (
		threads  = 4
		accounts = 8
		total    = 2048
		perT     = 2500
	)
	arena := mem.NewArena(1 << 12)
	accs := make([]mem.Addr, accounts)
	for i := range accs {
		accs[i] = arena.Alloc(1)
		arena.Store(accs[i], total/accounts)
	}
	sys, err := New("stm-adaptive", tm.Config{
		Arena: arena, Threads: threads,
		AdaptiveRead: "stm-mv", MVVersions: 4,
		CM: "serialize", SerializeAfter: 3,
		// Quiet window: the forced flips own the protocol schedule.
		AdaptiveWindow: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	asys := sys.(*adaptive.System)
	read, write := asys.Delegates()
	if read != "stm-mv" {
		t.Fatalf("read delegate = %s, want stm-mv", read)
	}

	// Worker 0 forces a handoff between its own blocks (progress-driven, so
	// the schedule survives single-CPU race-detector runs); the forced
	// tenures alternate writer-heavy arena churn with mv snapshot reads.
	const flipEvery = 128
	var forceErr atomic.Value
	var torn [threads]int64
	team := thread.NewTeam(threads)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		r := rng.New(uint64(tid)*7919 + 5)
		for i := 0; i < perT; i++ {
			if tid == 0 && i%flipEvery == 0 {
				target := read
				if (i/flipEvery)%2 == 0 {
					target = write
				}
				if err := asys.ForceMode(target); err != nil {
					forceErr.Store(err)
					return
				}
			}
			if r.Intn(3) == 0 {
				var sum uint64
				th.AtomicAt(blkFuzzSum, func(tx tm.Tx) {
					sum = 0
					for _, a := range accs {
						sum += tx.Load(a)
						if r.Intn(2) == 0 {
							runtime.Gosched()
						}
					}
				})
				if sum != total {
					torn[tid]++
				}
				continue
			}
			from, to := r.Intn(accounts), r.Intn(accounts)
			amount := uint64(r.Intn(5))
			th.AtomicAt(blkFuzzXfer, func(tx tm.Tx) {
				f := tx.Load(accs[from])
				if f < amount {
					return
				}
				if r.Intn(4) == 0 {
					runtime.Gosched()
				}
				tx.Store(accs[from], f-amount)
				tx.Store(accs[to], tx.Load(accs[to])+amount)
			})
		}
	})
	if err := forceErr.Load(); err != nil {
		t.Fatalf("ForceMode: %v", err)
	}
	for tid, v := range torn {
		if v != 0 {
			t.Errorf("thread %d committed %d inconsistent snapshots across handoffs", tid, v)
		}
	}
	var sum uint64
	for _, a := range accs {
		sum += arena.Load(a)
	}
	if sum != total {
		t.Errorf("final sum = %d, want %d", sum, total)
	}
	if asys.Switches() == 0 {
		t.Fatal("no handoff happened; the test exercised nothing")
	}
	st := sys.Stats()
	if st.Total.Commits != threads*perT {
		t.Errorf("commits = %d, want %d", st.Total.Commits, threads*perT)
	}
	if unattr := st.AbortCauses()[tm.CauseUnknown]; unattr != 0 {
		t.Errorf("%d aborts left unattributed (CauseUnknown)", unattr)
	}
}
