package factory

import (
	"fmt"
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// concurrentNames lists the systems that must be correct under concurrency:
// every registered runtime except the sequential baseline. Deriving the
// list from Names() means any newly registered runtime is picked up by the
// whole cross-system conformance suite automatically.
func concurrentNames() []string {
	var names []string
	for _, n := range Names() {
		if n != "seq" {
			names = append(names, n)
		}
	}
	return names
}

// eagerInPlace lists the runtimes whose speculative writes go to memory in
// place (undo-log systems); everything else is assumed to buffer writes
// (redo-log systems). New registrations default to the buffered branch of
// the Peek semantics test — an in-place runtime must be added here.
var eagerInPlace = map[string]bool{
	"stm-eager": true, "htm-eager": true, "hybrid-eager": true,
}

func newSys(t *testing.T, name string, arena *mem.Arena, threads int) tm.System {
	t.Helper()
	sys, err := New(name, tm.Config{Arena: arena, Threads: threads, EnableEarlyRelease: true})
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return sys
}

func TestNamesComplete(t *testing.T) {
	want := map[string]bool{
		"seq": true, "stm-lazy": true, "stm-eager": true,
		"stm-norec": true, "stm-norec-ro": true, "stm-adaptive": true, "stm-mv": true,
		"htm-lazy": true, "htm-eager": true, "hybrid-lazy": true, "hybrid-eager": true,
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Fatalf("unexpected system %q", n)
		}
	}
}

// TestRosterSupersets pins the relationship between the two rosters:
// TMNames() stays the paper's six systems so regenerated tables and figures
// keep their shape, while Names() must carry every registered runtime —
// in particular the post-paper ones (stm-norec, stm-adaptive), so any sweep
// that iterates Names() cannot silently miss them.
func TestRosterSupersets(t *testing.T) {
	if got := TMNames(); len(got) != 6 {
		t.Fatalf("TMNames() must stay the paper's six systems, got %v", got)
	}
	all := make(map[string]bool)
	for _, n := range Names() {
		all[n] = true
	}
	var want []string
	want = append(want, TMNames()...)
	want = append(want, "stm-norec", "stm-adaptive", "stm-mv")
	for _, n := range want {
		if !all[n] {
			t.Fatalf("Names() = %v is missing %q", Names(), n)
		}
	}
}

func TestUnknownNameErrors(t *testing.T) {
	if _, err := New("nope", tm.Config{Arena: mem.NewArena(64), Threads: 1}); err == nil {
		t.Fatal("expected error for unknown system")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New("stm-lazy", tm.Config{Threads: 1}); err == nil {
		t.Fatal("expected error for nil arena")
	}
	if _, err := New("stm-lazy", tm.Config{Arena: mem.NewArena(64), Threads: 100}); err == nil {
		t.Fatal("expected error for >64 threads")
	}
}

// TestCounterAtomicity: concurrent blind increments must not lose updates.
func TestCounterAtomicity(t *testing.T) {
	const (
		threads = 8
		perT    = 2000
	)
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			arena := mem.NewArena(1 << 12)
			counter := arena.Alloc(1)
			sys := newSys(t, name, arena, threads)
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				for i := 0; i < perT; i++ {
					th.Atomic(func(tx tm.Tx) {
						tx.Store(counter, tx.Load(counter)+1)
					})
				}
			})
			if got := arena.Load(counter); got != threads*perT {
				t.Fatalf("counter = %d, want %d", got, threads*perT)
			}
			st := sys.Stats()
			if st.Total.Commits != threads*perT {
				t.Fatalf("commits = %d, want %d", st.Total.Commits, threads*perT)
			}
		})
	}
}

// TestInvariantIsolation: transfers between accounts preserve the total, and
// no transaction (reader or writer) ever observes a torn total — this is the
// opacity / zombie-safety test.
func TestInvariantIsolation(t *testing.T) {
	const (
		threads  = 8
		accounts = 16
		total    = 1000
		perT     = 1500
	)
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			arena := mem.NewArena(1 << 12)
			// Spread accounts across distinct lines to exercise both word-
			// and line-granularity systems.
			accs := make([]mem.Addr, accounts)
			for i := range accs {
				accs[i] = arena.AllocLines(1)
			}
			arena.Store(accs[0], total)
			sys := newSys(t, name, arena, threads)
			team := thread.NewTeam(threads)
			var violations [threads]int64
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				r := rng.New(uint64(tid) + 1)
				for i := 0; i < perT; i++ {
					from, to := r.Intn(accounts), r.Intn(accounts)
					amount := uint64(r.Intn(5))
					if i%5 == 0 {
						// Reader transaction: verify the invariant inside.
						th.Atomic(func(tx tm.Tx) {
							var sum uint64
							for _, a := range accs {
								sum += tx.Load(a)
							}
							if sum != total {
								violations[tid]++
							}
						})
						continue
					}
					th.Atomic(func(tx tm.Tx) {
						f := tx.Load(accs[from])
						if f < amount {
							return
						}
						tx.Store(accs[from], f-amount)
						tx.Store(accs[to], tx.Load(accs[to])+amount)
					})
				}
			})
			for tid, v := range violations {
				if v != 0 {
					t.Fatalf("thread %d observed %d torn snapshots", tid, v)
				}
			}
			var sum uint64
			for _, a := range accs {
				sum += arena.Load(a)
			}
			if sum != total {
				t.Fatalf("final total = %d, want %d", sum, total)
			}
		})
	}
}

// TestReadOwnWrites: a transaction must observe its own earlier stores.
func TestReadOwnWrites(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(1 << 10)
			a := arena.Alloc(1)
			sys := newSys(t, name, arena, 1)
			sys.Thread(0).Atomic(func(tx tm.Tx) {
				tx.Store(a, 41)
				if got := tx.Load(a); got != 41 {
					t.Errorf("read-own-write = %d", got)
				}
				tx.Store(a, tx.Load(a)+1)
			})
			if got := arena.Load(a); got != 42 {
				t.Fatalf("after commit = %d", got)
			}
		})
	}
}

// TestSameLineDifferentWords: word-granularity systems must not conflate
// distinct words, and line-granularity systems must still be correct (only
// more conservative).
func TestSameLineDifferentWords(t *testing.T) {
	const threads = 4
	const perT = 2000
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			arena := mem.NewArena(1 << 10)
			base := arena.AllocLines(1) // 4 words, one line
			sys := newSys(t, name, arena, threads)
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				slot := base + mem.Addr(tid%mem.WordsPerLine)
				for i := 0; i < perT; i++ {
					th.Atomic(func(tx tm.Tx) {
						tx.Store(slot, tx.Load(slot)+1)
					})
				}
			})
			for w := 0; w < threads && w < mem.WordsPerLine; w++ {
				if got := arena.Load(base + mem.Addr(w)); got != perT {
					t.Fatalf("word %d = %d, want %d", w, got, perT)
				}
			}
		})
	}
}

// TestRestart: a user restart retries the block until its condition holds.
func TestRestart(t *testing.T) {
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(1 << 10)
			a := arena.Alloc(1)
			sys := newSys(t, name, arena, 1)
			th := sys.Thread(0)
			tries := 0
			th.Atomic(func(tx tm.Tx) {
				tries++
				if tries < 4 {
					tx.Restart()
				}
				tx.Store(a, uint64(tries))
			})
			if tries != 4 {
				t.Fatalf("tries = %d", tries)
			}
			if arena.Load(a) != 4 {
				t.Fatalf("value = %d", arena.Load(a))
			}
			if got := sys.Stats().Total.Aborts; got != 3 {
				t.Fatalf("aborts = %d, want 3", got)
			}
		})
	}
}

// TestAbortRollsBack: an aborted attempt must leave no trace in memory
// (write buffering or undo-log replay, depending on the system).
func TestAbortRollsBack(t *testing.T) {
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(1 << 10)
			a := arena.Alloc(1)
			arena.Store(a, 7)
			sys := newSys(t, name, arena, 1)
			th := sys.Thread(0)
			first := true
			th.Atomic(func(tx tm.Tx) {
				if first {
					first = false
					tx.Store(a, 999)
					// The speculative store must not be visible after the
					// restart below — eager systems wrote in place and must
					// undo; lazy systems only buffered.
					tx.Restart()
				}
				if got := tx.Load(a); got != 7 {
					t.Errorf("speculative store leaked: %d", got)
				}
				tx.Store(a, 8)
			})
			if got := arena.Load(a); got != 8 {
				t.Fatalf("final = %d", got)
			}
		})
	}
}

// TestAllocInsideTx: transactional allocation yields usable, disjoint memory.
func TestAllocInsideTx(t *testing.T) {
	const threads = 4
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			arena := mem.NewArena(1 << 16)
			head := arena.Alloc(1) // linked-list head
			sys := newSys(t, name, arena, threads)
			team := thread.NewTeam(threads)
			const perT = 200
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				for i := 0; i < perT; i++ {
					th.Atomic(func(tx tm.Tx) {
						node := tx.Alloc(2)
						tx.Store(node, uint64(tid*1000+i)) // payload
						tx.Store(node+1, tx.Load(head))    // next
						tx.Store(head, uint64(node))
					})
				}
			})
			// Walk the list: must contain exactly threads*perT nodes.
			seen := 0
			for p := mem.Addr(arena.Load(head)); p != mem.Nil; p = mem.Addr(arena.Load(p + 1)) {
				seen++
				if seen > threads*perT {
					t.Fatal("list longer than expected (cycle?)")
				}
			}
			if seen != threads*perT {
				t.Fatalf("list has %d nodes, want %d", seen, threads*perT)
			}
		})
	}
}

// TestHTMLazyOverflowSerializes: transactions exceeding HTM capacity must
// still commit (via serialized execution) and stay correct under
// concurrency.
func TestHTMLazyOverflowSerializes(t *testing.T) {
	const threads = 4
	const lines = 64 // >> capacity below
	arena := mem.NewArena(1 << 14)
	addrs := make([]mem.Addr, lines)
	for i := range addrs {
		addrs[i] = arena.AllocLines(1)
	}
	sys, err := New("htm-lazy", tm.Config{Arena: arena, Threads: threads, CapacityLines: 8})
	if err != nil {
		t.Fatal(err)
	}
	team := thread.NewTeam(threads)
	const perT = 50
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for i := 0; i < perT; i++ {
			th.Atomic(func(tx tm.Tx) {
				// Touch every line: guaranteed overflow.
				for _, a := range addrs {
					tx.Store(a, tx.Load(a)+1)
				}
			})
		}
	})
	for _, a := range addrs {
		if got := arena.Load(a); got != threads*perT {
			t.Fatalf("lost updates under overflow: %d, want %d", got, threads*perT)
		}
	}
}

// TestHTMEagerOverflowSignatures: the eager HTM must survive capacity
// overflow through its Bloom-filter path, with extra (false) conflicts but
// no lost updates.
func TestHTMEagerOverflowSignatures(t *testing.T) {
	const threads = 4
	const lines = 48
	arena := mem.NewArena(1 << 14)
	addrs := make([]mem.Addr, lines)
	for i := range addrs {
		addrs[i] = arena.AllocLines(1)
	}
	sys, err := New("htm-eager", tm.Config{Arena: arena, Threads: threads, CapacityLines: 8})
	if err != nil {
		t.Fatal(err)
	}
	team := thread.NewTeam(threads)
	const perT = 30
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for i := 0; i < perT; i++ {
			th.Atomic(func(tx tm.Tx) {
				for _, a := range addrs {
					tx.Store(a, tx.Load(a)+1)
				}
			})
		}
	})
	for _, a := range addrs {
		if got := arena.Load(a); got != threads*perT {
			t.Fatalf("lost updates under sig overflow: %d, want %d", got, threads*perT)
		}
	}
}

// TestEarlyReleaseAllowsConcurrentCommit: after early release, another
// transaction's commit to the released line must not abort the releasing
// transaction on the HTMs (functional check: both commit and the final
// state is consistent).
func TestEarlyReleaseAllowsConcurrentCommit(t *testing.T) {
	for _, name := range []string{"htm-lazy", "htm-eager"} {
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(1 << 12)
			shared := arena.AllocLines(1)
			private := arena.AllocLines(1)
			sys := newSys(t, name, arena, 2)
			team := thread.NewTeam(2)
			ready := make(chan struct{})
			done := make(chan struct{})
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				if tid == 0 {
					th.Atomic(func(tx tm.Tx) {
						_ = tx.Load(shared)
						tx.EarlyRelease(shared)
						select {
						case <-ready:
						default:
							close(ready)
						}
						<-done // hold the transaction open while tid 1 commits
						tx.Store(private, 1)
					})
				} else {
					<-ready
					th.Atomic(func(tx tm.Tx) {
						tx.Store(shared, 42)
					})
					close(done)
				}
			})
			if arena.Load(shared) != 42 || arena.Load(private) != 1 {
				t.Fatalf("state = %d/%d", arena.Load(shared), arena.Load(private))
			}
			// tid 0 must not have aborted: its read was released before the
			// conflicting commit.
			if aborts := sys.Stats().Total.Aborts; aborts != 0 {
				t.Fatalf("unexpected aborts: %d", aborts)
			}
		})
	}
}

// TestPeekSemantics documents Peek: buffered (redo-log) systems do not show
// own speculative writes; in-place (undo-log) systems do.
func TestPeekSemantics(t *testing.T) {
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(1 << 10)
			a := arena.Alloc(1)
			arena.Store(a, 5)
			sys := newSys(t, name, arena, 1)
			sys.Thread(0).Atomic(func(tx tm.Tx) {
				tx.Store(a, 6)
				got := tx.Peek(a)
				if !eagerInPlace[name] && got != 5 {
					t.Errorf("buffered Peek saw speculative write: %d", got)
				}
				if eagerInPlace[name] && got != 6 {
					t.Errorf("in-place Peek missed speculative write: %d", got)
				}
			})
		})
	}
}

// TestStatsAccounting: barrier counts and retry accounting line up under a
// contended workload.
func TestStatsAccounting(t *testing.T) {
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const threads = 4
			const perT = 500
			arena := mem.NewArena(1 << 10)
			hot := arena.Alloc(1)
			sys := newSys(t, name, arena, threads)
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				for i := 0; i < perT; i++ {
					th.Atomic(func(tx tm.Tx) {
						tx.Store(hot, tx.Load(hot)+1)
					})
				}
			})
			st := sys.Stats()
			if st.Total.Starts != threads*perT || st.Total.Commits != threads*perT {
				t.Fatalf("starts/commits = %d/%d", st.Total.Starts, st.Total.Commits)
			}
			if st.Total.Loads != threads*perT || st.Total.Stores != threads*perT {
				t.Fatalf("loads/stores = %d/%d (want %d committed barriers each)",
					st.Total.Loads, st.Total.Stores, threads*perT)
			}
			if st.Total.LoadsHist.N() != threads*perT {
				t.Fatalf("hist N = %d", st.Total.LoadsHist.N())
			}
			if mean := st.MeanLoads(); mean != 1 {
				t.Fatalf("mean loads = %v, want 1", mean)
			}
		})
	}
}

// TestManyLinesManyThreads is a broader stress: random read-modify-writes
// over a few hundred lines; total sum is conserved.
func TestManyLinesManyThreads(t *testing.T) {
	const (
		threads = 8
		cells   = 256
		perT    = 800
	)
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			arena := mem.NewArena(1 << 14)
			cellAddr := make([]mem.Addr, cells)
			for i := range cellAddr {
				cellAddr[i] = arena.Alloc(1)
				arena.Store(cellAddr[i], 10)
			}
			sys := newSys(t, name, arena, threads)
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				r := rng.New(uint64(tid)*77 + 13)
				for i := 0; i < perT; i++ {
					a := cellAddr[r.Intn(cells)]
					b := cellAddr[r.Intn(cells)]
					th.Atomic(func(tx tm.Tx) {
						va := tx.Load(a)
						if va == 0 {
							return
						}
						tx.Store(a, va-1)
						tx.Store(b, tx.Load(b)+1)
					})
				}
			})
			var sum uint64
			for _, a := range cellAddr {
				sum += arena.Load(a)
			}
			if sum != cells*10 {
				t.Fatalf("sum = %d, want %d", sum, cells*10)
			}
		})
	}
}

// TestSeqMatchesModel: single-threaded random program produces identical
// results on every system and on a plain map model.
func TestSeqMatchesModel(t *testing.T) {
	const cells = 64
	const steps = 5000
	type opRec struct {
		kind int // 0: add, 1: copy, 2: xor
		a, b int
	}
	r := rng.New(12345)
	ops := make([]opRec, steps)
	for i := range ops {
		ops[i] = opRec{kind: r.Intn(3), a: r.Intn(cells), b: r.Intn(cells)}
	}
	ref := make([]uint64, cells)
	for i := range ref {
		ref[i] = uint64(i * 3)
	}
	for _, op := range ops {
		switch op.kind {
		case 0:
			ref[op.a] += ref[op.b] + 1
		case 1:
			ref[op.a] = ref[op.b]
		case 2:
			ref[op.a] ^= ref[op.b] + 7
		}
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(1 << 10)
			base := arena.Alloc(cells)
			for i := 0; i < cells; i++ {
				arena.Store(base+mem.Addr(i), uint64(i*3))
			}
			sys := newSys(t, name, arena, 1)
			th := sys.Thread(0)
			for _, op := range ops {
				op := op
				th.Atomic(func(tx tm.Tx) {
					a := base + mem.Addr(op.a)
					b := base + mem.Addr(op.b)
					switch op.kind {
					case 0:
						tx.Store(a, tx.Load(a)+tx.Load(b)+1)
					case 1:
						tx.Store(a, tx.Load(b))
					case 2:
						tx.Store(a, tx.Load(a)^(tx.Load(b)+7))
					}
				})
			}
			for i := 0; i < cells; i++ {
				if got := arena.Load(base + mem.Addr(i)); got != ref[i] {
					t.Fatalf("cell %d = %d, want %d", i, got, ref[i])
				}
			}
		})
	}
}

// TestCMConformance runs a condensed correctness suite — blind-increment
// atomicity plus invariant-preserving transfers with reader snapshots — over
// every concurrent runtime × every registered contention manager, so a new
// policy (or a new runtime) is automatically screened against lost updates,
// torn reads, and livelock under all arbitration paths.
func TestCMConformance(t *testing.T) {
	const (
		threads  = 4
		perT     = 250
		accounts = 8
		total    = 400
	)
	for _, cmName := range tm.CMNames() {
		for _, sysName := range concurrentNames() {
			t.Run(cmName+"/"+sysName, func(t *testing.T) {
				t.Parallel()
				arena := mem.NewArena(1 << 12)
				counter := arena.Alloc(1)
				accs := make([]mem.Addr, accounts)
				for i := range accs {
					accs[i] = arena.AllocLines(1)
				}
				arena.Store(accs[0], total)
				sys, err := New(sysName, tm.Config{
					Arena: arena, Threads: threads, CM: cmName,
					// A low threshold exercises the serialize fallback on a
					// workload this short; other policies ignore it.
					SerializeAfter: 4,
				})
				if err != nil {
					t.Fatalf("New(%s, cm=%s): %v", sysName, cmName, err)
				}
				team := thread.NewTeam(threads)
				var violations [threads]int64
				team.Run(func(tid int) {
					th := sys.Thread(tid)
					r := rng.New(uint64(tid)*31 + 7)
					for i := 0; i < perT; i++ {
						switch i % 3 {
						case 0:
							th.Atomic(func(tx tm.Tx) {
								tx.Store(counter, tx.Load(counter)+1)
							})
						case 1:
							from, to := r.Intn(accounts), r.Intn(accounts)
							amount := uint64(r.Intn(4))
							th.Atomic(func(tx tm.Tx) {
								f := tx.Load(accs[from])
								if f < amount {
									return
								}
								tx.Store(accs[from], f-amount)
								tx.Store(accs[to], tx.Load(accs[to])+amount)
							})
						default:
							th.Atomic(func(tx tm.Tx) {
								var sum uint64
								for _, a := range accs {
									sum += tx.Load(a)
								}
								if sum != total {
									violations[tid]++
								}
							})
						}
					}
				})
				wantCounter := uint64(threads * ((perT + 2) / 3))
				if got := arena.Load(counter); got != wantCounter {
					t.Fatalf("counter = %d, want %d (lost updates)", got, wantCounter)
				}
				var sum uint64
				for _, a := range accs {
					sum += arena.Load(a)
				}
				if sum != total {
					t.Fatalf("account total = %d, want %d", sum, total)
				}
				for tid, v := range violations {
					if v != 0 {
						t.Fatalf("thread %d observed %d torn snapshots", tid, v)
					}
				}
				st := sys.Stats()
				if st.Total.Starts != uint64(threads*perT) || st.Total.Commits != uint64(threads*perT) {
					t.Fatalf("starts/commits = %d/%d, want %d each",
						st.Total.Starts, st.Total.Commits, threads*perT)
				}
			})
		}
	}
}

func ExampleNew() {
	arena := mem.NewArena(1 << 10)
	sys, _ := New("stm-lazy", tm.Config{Arena: arena, Threads: 1})
	a := arena.Alloc(1)
	sys.Thread(0).Atomic(func(tx tm.Tx) {
		tx.Store(a, 7)
	})
	fmt.Println(arena.Load(a))
	// Output: 7
}
