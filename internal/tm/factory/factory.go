// Package factory constructs TM systems by registry name, decoupling the
// harness and applications from the individual runtime packages.
package factory

import (
	"fmt"
	"sort"

	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/adaptive"
	"github.com/stamp-go/stamp/internal/tm/htmsim"
	"github.com/stamp-go/stamp/internal/tm/hybrid"
	"github.com/stamp-go/stamp/internal/tm/mv"
	"github.com/stamp-go/stamp/internal/tm/norec"
	"github.com/stamp-go/stamp/internal/tm/tl2"
)

// constructors maps registry names to runtime constructors.
var constructors = map[string]func(tm.Config) (tm.System, error){
	"seq":          func(c tm.Config) (tm.System, error) { return tm.NewSeq(c) },
	"stm-lazy":     func(c tm.Config) (tm.System, error) { return tl2.NewLazy(c) },
	"stm-eager":    func(c tm.Config) (tm.System, error) { return tl2.NewEager(c) },
	"stm-norec":    func(c tm.Config) (tm.System, error) { return norec.New(c) },
	"stm-norec-ro": func(c tm.Config) (tm.System, error) { return norec.NewRO(c) },
	"stm-mv":       func(c tm.Config) (tm.System, error) { return mv.New(c) },
	"htm-lazy":     func(c tm.Config) (tm.System, error) { return htmsim.NewLazy(c) },
	"htm-eager":    func(c tm.Config) (tm.System, error) { return htmsim.NewEager(c) },
	"hybrid-lazy":  func(c tm.Config) (tm.System, error) { return hybrid.NewLazy(c) },
	"hybrid-eager": func(c tm.Config) (tm.System, error) { return hybrid.NewEager(c) },
}

// stm-adaptive is registered in init: its constructor closes over New (to
// build delegates by name), which would be an initialization cycle in the
// map literal above.
func init() {
	constructors["stm-adaptive"] = func(c tm.Config) (tm.System, error) {
		return adaptive.New(c, newDelegate)
	}
}

// newDelegate constructs a delegate runtime for the adaptive meta-runtime:
// any registered concurrent system except stm-adaptive itself (no
// self-nesting) and seq (no concurrency control to delegate to).
func newDelegate(name string, cfg tm.Config) (tm.System, error) {
	if name == "stm-adaptive" || name == "seq" {
		return nil, fmt.Errorf("factory: %q cannot be an adaptive delegate", name)
	}
	return New(name, cfg)
}

// New constructs the named TM system.
func New(name string, cfg tm.Config) (tm.System, error) {
	ctor, ok := constructors[name]
	if !ok {
		return nil, fmt.Errorf("factory: unknown TM system %q (known: %v)", name, Names())
	}
	return ctor(cfg)
}

// Names returns all registry names, sorted.
func Names() []string {
	names := make([]string, 0, len(constructors))
	for n := range constructors {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TMNames returns the six transactional systems of the paper's evaluation,
// in the order Figure 1's legend lists them. It intentionally stays fixed
// at the paper's roster even as Names() grows (stm-norec, stm-norec-ro,
// ...), so the regenerated tables and figures keep the paper's shape;
// extra runtimes are selected explicitly by name.
func TMNames() []string {
	return []string{"htm-eager", "htm-lazy", "hybrid-eager", "hybrid-lazy", "stm-eager", "stm-lazy"}
}
