package factory

import (
	"fmt"
	"testing"
	"time"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
)

// stormArms maps each concurrent runtime to the probability-1 arm list that
// sits on its writer commit path, so ordinary commits become impossible and
// progress requires starvation escalation. A runtime registered without an
// entry here fails the storm test loudly — every new runtime must name its
// commit-path failpoint.
var stormArms = map[string]string{
	"stm-lazy":     "tl2-lock-acquire:1",
	"stm-eager":    "tl2-lock-acquire:1",
	"stm-mv":       "tl2-lock-acquire:1",
	"stm-norec":    "norec-validate:1",
	"stm-norec-ro": "norec-validate:1",
	"hybrid-lazy":  "hybrid-sig-check:1",
	"hybrid-eager": "hybrid-sig-check:1",
	"htm-lazy":     "htm-arbitrate:1",
	"htm-eager":    "htm-arbitrate:1",
	// The adaptive runtime delegates to TL2 and NOrec, so both commit-path
	// sites are armed; whichever mode is live, writers cannot commit.
	"stm-adaptive": "tl2-lock-acquire:1,norec-validate:1",
}

// allSitesSpec arms every registered failpoint at a low probability — the
// package-doc invariant says no armed site may break safety on any runtime.
func allSitesSpec(seed uint64) string {
	spec := fmt.Sprintf("%d:", seed)
	for i, site := range chaos.Sites() {
		if i > 0 {
			spec += ","
		}
		spec += site.Name + ":0.02"
	}
	return spec
}

// TestChaosStormEscalation arms the writer commit path of every concurrent
// runtime with a probability-1 spurious abort: no transaction can commit the
// ordinary way, so termination itself proves the starvation escalation
// guarantee (the storm is suppressed only for irrevocable attempts). The
// run must conserve the hot counter, record escalations, and leave no abort
// unattributed.
func TestChaosStormEscalation(t *testing.T) {
	const threads = 4
	const perT = 15
	for _, name := range concurrentNames() {
		arms, ok := stormArms[name]
		if !ok {
			t.Fatalf("%s: no storm failpoint registered in stormArms — add the runtime's commit-path site", name)
		}
		for _, seed := range []uint64{1, 7, 42} {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				arena := mem.NewArena(1 << 12)
				hot := arena.Alloc(1)
				sys, err := New(name, tm.Config{
					Arena:       arena,
					Threads:     threads,
					Chaos:       fmt.Sprintf("%d:%s", seed, arms),
					StarveAfter: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				team := thread.NewTeam(threads)
				team.Run(func(tid int) {
					th := sys.Thread(tid)
					for j := 0; j < perT; j++ {
						th.Atomic(func(tx tm.Tx) {
							tx.Store(hot, tx.Load(hot)+1)
						})
					}
				})
				st := sys.Stats()
				if got := (mem.Direct{A: arena}).Load(hot); got != threads*perT {
					t.Fatalf("%s: hot counter = %d, want %d", name, got, threads*perT)
				}
				if st.Total.Escalations == 0 {
					t.Errorf("%s: storm terminated with zero escalations — commits leaked past the armed failpoint", name)
				}
				if st.Total.EscalatedCommits == 0 {
					t.Errorf("%s: escalations recorded but none committed irrevocably", name)
				}
				assertCauseAccounting(t, name, st)
			})
		}
	}
}

// TestChaosAllSitesSweep runs every concurrent runtime with every registered
// failpoint armed at low probability — spurious aborts, bounded stalls while
// holding protocol locks, and dropped CM waits all at once. Safety must
// hold: the counter is conserved and every abort carries a taxonomy cause.
func TestChaosAllSitesSweep(t *testing.T) {
	const threads = 8
	const perT = 150
	spec := allSitesSpec(3)
	for _, name := range concurrentNames() {
		t.Run(name, func(t *testing.T) {
			arena := mem.NewArena(1 << 12)
			hot := arena.Alloc(1)
			sys, err := New(name, tm.Config{Arena: arena, Threads: threads, Chaos: spec})
			if err != nil {
				t.Fatal(err)
			}
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				for j := 0; j < perT; j++ {
					th.Atomic(func(tx tm.Tx) {
						tx.Store(hot, tx.Load(hot)+1)
					})
				}
			})
			st := sys.Stats()
			if got := (mem.Direct{A: arena}).Load(hot); got != threads*perT {
				t.Fatalf("%s: hot counter = %d, want %d", name, got, threads*perT)
			}
			assertCauseAccounting(t, name, st)
		})
	}
}

// TestChaosStormNoEscalationHalts is the mutation test for the escalation
// guarantee: with starvation escalation disabled (StarveAfter < 0) the same
// probability-1 storm can never commit, and the only way out is the watch —
// exactly the situation the harness progress watchdog exists for. The test
// plays the watchdog's role: halt the watch and assert every worker unwinds
// with tm.HaltSignal having committed nothing.
func TestChaosStormNoEscalationHalts(t *testing.T) {
	const threads = 4
	arena := mem.NewArena(1 << 12)
	hot := arena.Alloc(1)
	watch := tm.NewWatch(threads)
	sys, err := New("stm-lazy", tm.Config{
		Arena:       arena,
		Threads:     threads,
		Chaos:       "42:tl2-lock-acquire:1",
		StarveAfter: -1,
		Watch:       watch,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		if watch.Commits() != 0 {
			// Let the team finish; the main goroutine will fail the test.
			return
		}
		watch.Halt("liveness mutation test: no commit progress")
	}()
	halted := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(tm.HaltSignal); !ok {
					panic(r)
				}
				halted = true
			}
		}()
		team := thread.NewTeam(threads)
		team.Run(func(tid int) {
			th := sys.Thread(tid)
			th.Atomic(func(tx tm.Tx) {
				tx.Store(hot, tx.Load(hot)+1)
			})
		})
	}()
	if !halted {
		t.Fatal("storm with escalation disabled completed — a commit leaked past the probability-1 failpoint")
	}
	if got := watch.Commits(); got != 0 {
		t.Fatalf("watch counted %d commits under a full storm with escalation disabled", got)
	}
	if got := sys.Stats().Total.Escalations; got != 0 {
		t.Fatalf("StarveAfter = -1 still escalated %d times", got)
	}
}
