package norec

import (
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

func newSysT(t *testing.T, ro bool, arena *mem.Arena, threads int) *System {
	t.Helper()
	ctor := New
	if ro {
		ctor = NewRO
	}
	sys, err := ctor(tm.Config{Arena: arena, Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(tm.Config{Threads: 1}); err == nil {
		t.Fatal("expected error for nil arena")
	}
	if _, err := NewRO(tm.Config{Arena: mem.NewArena(64), Threads: 100}); err == nil {
		t.Fatal("expected error for >64 threads")
	}
}

func TestNames(t *testing.T) {
	arena := mem.NewArena(64)
	if sys := newSysT(t, false, arena, 1); sys.Name() != "stm-norec" {
		t.Fatalf("Name() = %q", sys.Name())
	}
	if sys := newSysT(t, true, arena, 1); sys.Name() != "stm-norec-ro" {
		t.Fatalf("Name() = %q", sys.Name())
	}
}

// TestWriterCommitTicksSeqByTwo: each writer commit acquires (odd) and
// releases (next even) the sequence lock, so seq advances by exactly 2 and
// always rests even.
func TestWriterCommitTicksSeqByTwo(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	a := arena.Alloc(1)
	sys := newSysT(t, false, arena, 1)
	before := sys.Seq()
	sys.Thread(0).Atomic(func(tx tm.Tx) { tx.Store(a, 1) })
	after := sys.Seq()
	if after != before+2 {
		t.Fatalf("seq moved %d, want 2", after-before)
	}
	if after&1 != 0 {
		t.Fatal("seq rests odd after commit")
	}
	if got := sys.LockAcquires(); got != 1 {
		t.Fatalf("lock acquires = %d, want 1", got)
	}
}

// TestROFastPathSkipsLock is the acceptance-criteria hook: on stm-norec-ro,
// read-only transactions commit without ever touching the sequence lock; on
// plain stm-norec every commit serializes through it.
func TestROFastPathSkipsLock(t *testing.T) {
	const threads = 4
	const perT = 500
	for _, ro := range []bool{true, false} {
		arena := mem.NewArena(1 << 10)
		a := arena.Alloc(1)
		arena.Store(a, 7)
		sys := newSysT(t, ro, arena, threads)
		team := thread.NewTeam(threads)
		team.Run(func(tid int) {
			th := sys.Thread(tid)
			for i := 0; i < perT; i++ {
				th.Atomic(func(tx tm.Tx) {
					if tx.Load(a) != 7 {
						t.Errorf("read %d, want 7", tx.Load(a))
					}
				})
			}
		})
		st := sys.Stats()
		if st.Total.Commits != threads*perT {
			t.Fatalf("ro=%v: commits = %d", ro, st.Total.Commits)
		}
		acq := sys.LockAcquires()
		if ro && acq != 0 {
			t.Fatalf("stm-norec-ro read-only txs acquired the lock %d times", acq)
		}
		if !ro && acq != threads*perT {
			t.Fatalf("stm-norec: lock acquires = %d, want %d", acq, threads*perT)
		}
		if ro && sys.Seq() != 0 {
			t.Fatalf("stm-norec-ro read-only txs ticked the clock to %d", sys.Seq())
		}
	}
}

// TestValueValidationToleratesSilentStore: a concurrent commit that writes
// back the value a reader already observed must not abort the reader —
// the NOrec property version-based STMs (TL2) do not have.
func TestValueValidationToleratesSilentStore(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	a := arena.Alloc(1)
	b := arena.Alloc(1)
	arena.Store(a, 5)
	sys := newSysT(t, false, arena, 2)
	team := thread.NewTeam(2)
	ready := make(chan struct{})
	done := make(chan struct{})
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		if tid == 0 {
			th.Atomic(func(tx tm.Tx) {
				_ = tx.Load(a)
				select {
				case <-ready:
				default:
					close(ready)
				}
				<-done // hold the tx open across the silent store's commit
				// The clock moved, so this load revalidates the read set by
				// value; (a, 5) still matches.
				tx.Store(b, tx.Load(a))
			})
		} else {
			<-ready
			th.Atomic(func(tx tm.Tx) { tx.Store(a, 5) }) // silent store
			close(done)
		}
	})
	if arena.Load(b) != 5 {
		t.Fatalf("b = %d", arena.Load(b))
	}
	if aborts := sys.Stats().Total.Aborts; aborts != 0 {
		t.Fatalf("silent store aborted the reader: %d aborts", aborts)
	}
}

// TestConflictingCommitAbortsReader: the mirror image — a commit that
// changes an observed value must abort the still-running reader.
func TestConflictingCommitAbortsReader(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	a := arena.Alloc(1)
	arena.Store(a, 5)
	sys := newSysT(t, false, arena, 2)
	team := thread.NewTeam(2)
	ready := make(chan struct{})
	done := make(chan struct{})
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		if tid == 0 {
			attempt := 0
			th.Atomic(func(tx tm.Tx) {
				attempt++
				v := tx.Load(a)
				if attempt == 1 {
					close(ready)
					<-done
					// Revalidation on this load must observe the mismatch and
					// restart the block.
					_ = tx.Load(a)
					t.Error("zombie attempt survived a conflicting commit")
				}
				if attempt > 1 && v != 9 {
					t.Errorf("retry read %d, want 9", v)
				}
			})
		} else {
			<-ready
			th.Atomic(func(tx tm.Tx) { tx.Store(a, 9) })
			close(done)
		}
	})
	if aborts := sys.Stats().Total.Aborts; aborts != 1 {
		t.Fatalf("aborts = %d, want 1", aborts)
	}
}

// TestPeekAndEarlyRelease: Peek does not see buffered writes; EarlyRelease
// is a no-op that leaves commit behaviour unchanged.
func TestPeekAndEarlyRelease(t *testing.T) {
	for _, ro := range []bool{false, true} {
		arena := mem.NewArena(1 << 10)
		a := arena.Alloc(1)
		arena.Store(a, 5)
		sys := newSysT(t, ro, arena, 1)
		sys.Thread(0).Atomic(func(tx tm.Tx) {
			tx.Store(a, 6)
			if got := tx.Peek(a); got != 5 {
				t.Errorf("Peek saw buffered write: %d", got)
			}
			tx.EarlyRelease(a) // no-op; must not disturb the write set
		})
		if got := arena.Load(a); got != 6 {
			t.Fatalf("final = %d", got)
		}
	}
}

// TestCounterLinearizable: the basic linearizability smoke test — blind
// concurrent increments lose no updates on either variant.
func TestCounterLinearizable(t *testing.T) {
	const threads = 8
	const perT = 2000
	for _, ro := range []bool{false, true} {
		arena := mem.NewArena(1 << 10)
		c := arena.Alloc(1)
		sys := newSysT(t, ro, arena, threads)
		team := thread.NewTeam(threads)
		team.Run(func(tid int) {
			th := sys.Thread(tid)
			for i := 0; i < perT; i++ {
				th.Atomic(func(tx tm.Tx) {
					tx.Store(c, tx.Load(c)+1)
				})
			}
		})
		if got := arena.Load(c); got != threads*perT {
			t.Fatalf("ro=%v: counter = %d, want %d", ro, got, threads*perT)
		}
	}
}

// TestSnapshotConsistency: readers scanning a multi-word invariant under
// concurrent transfers must never observe a torn total (opacity via
// value-based revalidation).
func TestSnapshotConsistency(t *testing.T) {
	const (
		threads  = 8
		accounts = 16
		total    = 1000
		perT     = 1200
	)
	for _, ro := range []bool{false, true} {
		arena := mem.NewArena(1 << 12)
		accs := make([]mem.Addr, accounts)
		for i := range accs {
			accs[i] = arena.Alloc(1)
		}
		arena.Store(accs[0], total)
		sys := newSysT(t, ro, arena, threads)
		team := thread.NewTeam(threads)
		var torn [threads]int64
		team.Run(func(tid int) {
			th := sys.Thread(tid)
			r := rng.New(uint64(tid) + 99)
			for i := 0; i < perT; i++ {
				if i%4 == 0 {
					th.Atomic(func(tx tm.Tx) {
						var sum uint64
						for _, a := range accs {
							sum += tx.Load(a)
						}
						if sum != total {
							torn[tid]++
						}
					})
					continue
				}
				from, to := r.Intn(accounts), r.Intn(accounts)
				amount := uint64(r.Intn(4))
				th.Atomic(func(tx tm.Tx) {
					f := tx.Load(accs[from])
					if f < amount {
						return
					}
					tx.Store(accs[from], f-amount)
					tx.Store(accs[to], tx.Load(accs[to])+amount)
				})
			}
		})
		for tid, v := range torn {
			if v != 0 {
				t.Fatalf("ro=%v: thread %d observed %d torn snapshots", ro, tid, v)
			}
		}
		var sum uint64
		for _, a := range accs {
			sum += arena.Load(a)
		}
		if sum != total {
			t.Fatalf("ro=%v: total = %d, want %d", ro, sum, total)
		}
	}
}

// TestStatsAccounting: commit/abort/barrier accounting lines up on a
// contended workload, and contention actually produces aborts (nonzero
// retries) at 8 threads. The spin between load and store yields to the
// scheduler, so transactions interleave even on a single-CPU host.
func TestStatsAccounting(t *testing.T) {
	const threads = 8
	const perT = 200
	arena := mem.NewArena(1 << 10)
	hot := arena.Alloc(1)
	sys := newSysT(t, false, arena, threads)
	team := thread.NewTeam(threads)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for i := 0; i < perT; i++ {
			th.Atomic(func(tx tm.Tx) {
				v := tx.Load(hot)
				tm.Spin(1200) // widen the conflict window across a Gosched
				tx.Store(hot, v+1)
			})
		}
	})
	st := sys.Stats()
	if st.Total.Starts != threads*perT || st.Total.Commits != threads*perT {
		t.Fatalf("starts/commits = %d/%d", st.Total.Starts, st.Total.Commits)
	}
	if st.Total.Loads != threads*perT || st.Total.Stores != threads*perT {
		t.Fatalf("committed barriers = %d/%d, want %d each", st.Total.Loads, st.Total.Stores, threads*perT)
	}
	if st.Total.Aborts == 0 {
		t.Fatal("hot counter at 8 threads produced zero aborts")
	}
	if st.Total.Wasted == 0 {
		t.Fatal("aborts recorded but no wasted barriers")
	}
	if st.Total.LoadsHist.N() != threads*perT {
		t.Fatalf("hist N = %d", st.Total.LoadsHist.N())
	}
}

// TestProfileSetsTracked: with ProfileSets the read/write line histograms
// fill in (the characterization harness relies on this).
func TestProfileSetsTracked(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	a := arena.AllocLines(1)
	b := arena.AllocLines(1)
	sys, err := New(tm.Config{Arena: arena, Threads: 1, ProfileSets: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Thread(0).Atomic(func(tx tm.Tx) {
		_ = tx.Load(a)
		tx.Store(b, 1)
	})
	st := sys.Stats()
	if st.Total.ReadLinesHist.Mean() != 1 || st.Total.WriteLinesHist.Mean() != 1 {
		t.Fatalf("line sets = %v/%v, want 1/1",
			st.Total.ReadLinesHist.Mean(), st.Total.WriteLinesHist.Mean())
	}
}
