// Package norec implements the NOrec STM (Dalessandro, Spear & Scott,
// "NOrec: Streamlining STM by Abolishing Ownership Records", PPoPP 2010):
// a lazy-versioning STM whose only global metadata is a single sequence
// lock. There is no per-location lock table at all — conflicts are found by
// value-based validation of the read set, so the runtime trades TL2's
// lock-table cache pressure for revalidation work whenever the global clock
// moves. That trade wins exactly where the paper says it does: low thread
// counts and read-dominated workloads whose read sets rarely change value
// (vacation, genome), and it loses under heavy write commit rates, because
// every writeback is serialized through the one lock.
//
// The sequence lock protocol:
//
//   - seq even: no writeback in progress (quiescent).
//   - seq odd: exactly one committer holds the lock and is writing back.
//
// A transaction snapshots an even seq at begin. Every Load rechecks seq
// after reading memory; if it moved, the whole read set is revalidated by
// value against a new quiescent snapshot (mismatch => abort, match =>
// adopt the newer snapshot and continue). A writer commits by CAS-ing
// seq from its snapshot to snapshot+1 (acquiring the lock), writing its
// redo log back, and releasing with snapshot+2. Read-set validity at the
// moment the CAS succeeds follows from seq not having moved since the last
// validation, which gives opacity without any per-read version check.
//
// # Commit combining
//
// The single lock makes writebacks the scaling wall at high thread counts.
// To move it, writers publish their validated redo and read logs to a
// per-thread combining slot for the whole duration of their commit attempt.
// The committer that wins the sequence-lock CAS becomes the combiner: after
// its own writeback it scans the slots and, for each pending request whose
// read set still validates by value against current memory, applies that
// request's writes too — absorbing the commit under the same lock
// acquisition, with a single seq tick for the whole batch (so concurrent
// readers revalidate once instead of once per commit). A request whose read
// set no longer validates (an overlapping write set changed a value it
// observed) is rejected, and its owner falls back to the ordinary
// revalidate-and-retry loop. Before releasing, the combiner holds the lock
// open for a bounded beat while other writers are mid-commit, so batches
// form even when goroutines outnumber cores. tm.ThreadStats counts absorbed
// commits (CombinedCommits) and rejections (CombineFallbacks);
// tm.Config.NoCombine disables the whole mechanism for ablations.
//
// Two registered variants expose the cost of the read-only commit rule as
// a comparison axis:
//
//	stm-norec     read-only transactions also serialize through the
//	              sequence lock at commit (every commit ticks the clock)
//	stm-norec-ro  the paper's read-only fast path: a transaction with an
//	              empty write set commits immediately, with no lock
//	              acquisition and no clock tick
package norec

import (
	"runtime"
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/trace"
	"github.com/stamp-go/stamp/internal/tm/txset"
)

// Combining-request states. A slot belongs to its thread while reqIdle; a
// combiner takes ownership with a pending→claimed CAS and hands it back by
// resolving to reqDone or reqRejected. Claims happen only under the
// sequence lock, which is what makes the requester's own "CAS the lock,
// then retract my pending request with a plain store" sequence safe: a
// successful lock CAS proves no combiner tenure overlapped it.
const (
	reqIdle uint32 = iota
	reqPending
	reqClaimed
	reqDone
	reqRejected
)

// combineRounds bounds how many drain passes (and scheduler yields) one
// lock acquisition may spend absorbing peers, so readers waiting for
// quiescence are delayed by at most a few beats.
const combineRounds = 4

// combineYieldMinThreads is the thread count from which writers always
// yield between publishing their request and attempting the lock CAS, so
// commit batches form even when goroutines outnumber cores. Below it the
// yield happens only when another writer is observably mid-commit: the
// writeback wall is a high-thread-count phenomenon, and an uncontended or
// lightly-threaded commit should not pay a scheduler round-trip.
const combineYieldMinThreads = 8

// combineReq is one thread's combining slot. The slices are published by
// the owner (plain writes, then an atomic status store) and read by the
// combiner between claim and resolve; the owner is spinning on status the
// whole time, so they never race.
type combineReq struct {
	status atomic.Uint32
	reads  []txset.ReadEntry
	writes []txset.Entry
	_      [64]byte // pad slots apart (combiners scan the array cross-thread)
}

// System is one NOrec runtime instance. The entire shared state of the
// algorithm is the seq word plus the combining array; everything else is
// per-thread.
type System struct {
	cfg    tm.Config
	name   string
	roFast bool // read-only commit fast path (the stm-norec-ro variant)

	// seq is the global sequence lock: even = quiescent, odd = a committer
	// is writing back. It doubles as the version clock transactions
	// snapshot at begin. It is the hottest word in the system — every
	// writer commit CASes it and every in-flight reader polls it — so it
	// is padded onto its own cache line to stop the commit traffic from
	// false-sharing with the counters below.
	seq tm.PaddedUint64

	// lockAcquires counts successful sequence-lock acquisitions, the test
	// hook that lets callers assert the read-only fast path never takes
	// the lock. Absorbed (combined) commits do not acquire the lock and do
	// not count here — that is the point of combining.
	lockAcquires atomic.Uint64

	// combining enables commit combining (default; tm.Config.NoCombine
	// turns it off for ablations).
	combining bool

	// inCommit counts writers currently inside a commit attempt; the
	// combiner uses it to decide whether holding the lock open one more
	// beat could absorb anyone.
	inCommit atomic.Int32

	combine []combineReq // one slot per thread

	chaos *chaos.Injector // nil unless Config.Chaos armed failpoints

	threads []*norecThread
}

// New constructs the plain NOrec runtime ("stm-norec").
func New(cfg tm.Config) (*System, error) { return newSystem(cfg, "stm-norec", false) }

// NewRO constructs the NOrec runtime with the read-only commit fast path
// ("stm-norec-ro").
func NewRO(cfg tm.Config) (*System, error) { return newSystem(cfg, "stm-norec-ro", true) }

func newSystem(cfg tm.Config, name string, roFast bool) (*System, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool, err := tm.NewCMPool(cfg, tm.DefaultCM)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, name: name, roFast: roFast, combining: !cfg.NoCombine, chaos: pool.Chaos()}
	s.combine = make([]combineReq, cfg.Threads)
	s.threads = make([]*norecThread, cfg.Threads)
	for i := range s.threads {
		t := &norecThread{id: i, sys: s}
		t.stats.Tracer = cfg.NewTracer()
		t.cm = pool.ForThread(i, &t.stats)
		t.tx = &norecTx{sys: s, th: t, res: cfg.NewReserver()}
		if cfg.ProfileSets {
			t.tx.readLines = make(map[mem.Line]struct{})
			t.tx.writeLines = make(map[mem.Line]struct{})
		}
		s.threads[i] = t
	}
	return s, nil
}

// Name implements tm.System.
func (s *System) Name() string { return s.name }

// Arena implements tm.System.
func (s *System) Arena() *mem.Arena { return s.cfg.Arena }

// NThreads implements tm.System.
func (s *System) NThreads() int { return s.cfg.Threads }

// Thread implements tm.System.
func (s *System) Thread(id int) tm.Thread { return s.threads[id] }

// Stats implements tm.System.
func (s *System) Stats() tm.Stats {
	per := make([]*tm.ThreadStats, len(s.threads))
	for i, t := range s.threads {
		per[i] = &t.stats
	}
	return tm.Aggregate(per)
}

// Seq returns the current sequence-lock value (even = quiescent).
func (s *System) Seq() uint64 { return s.seq.Load() }

// LockAcquires returns how many commits acquired the sequence lock. With
// the read-only fast path, read-only transactions never contribute here;
// with combining, absorbed commits don't either.
func (s *System) LockAcquires() uint64 { return s.lockAcquires.Load() }

// waitQuiescent spins until seq is even and returns it. It yields to the
// scheduler periodically so a committer that holds the lock can finish its
// writeback even when goroutines outnumber cores.
func (s *System) waitQuiescent() uint64 {
	for spins := 0; ; spins++ {
		if v := s.seq.Load(); v&1 == 0 {
			return v
		}
		if spins&127 == 127 {
			runtime.Gosched()
		}
	}
}

// drainCombine is the combiner side of commit combining. The caller holds
// the sequence lock (seq odd) and has finished its own writeback. Each
// pass claims every pending request, value-validates its read set against
// current memory (which includes all writes applied so far in this batch),
// and either applies its redo log or rejects it. Passes repeat while they
// absorb anything; when nothing is pending but other writers are mid-commit,
// the lock is held open for one scheduler beat so they can publish —
// bounded by combineRounds so waiting readers are not starved.
func (s *System) drainCombine(self int) {
	for round := 0; round < combineRounds; round++ {
		absorbed := false
		for i := range s.combine {
			if i == self {
				continue
			}
			r := &s.combine[i]
			if r.status.Load() != reqPending {
				continue
			}
			if !r.status.CompareAndSwap(reqPending, reqClaimed) {
				continue // the owner withdrew it first
			}
			valid := true
			for _, e := range r.reads {
				if s.cfg.Arena.Load(e.Addr) != e.Val {
					valid = false
					break
				}
			}
			if !valid {
				r.status.Store(reqRejected)
				continue
			}
			for _, e := range r.writes {
				s.cfg.Arena.Store(e.Addr, e.Val)
			}
			r.status.Store(reqDone)
			absorbed = true
		}
		if absorbed {
			continue // our writes may have been the batch-mates others waited on
		}
		if round == combineRounds-1 || s.inCommit.Load() <= 1 {
			return // nobody left to absorb (inCommit counts us too)
		}
		if runtime.GOMAXPROCS(0) == 1 {
			// No parallelism: every writer that could publish in this beat
			// already parked at its post-publish yield, so holding the lock
			// open only delays waiting readers.
			return
		}
		runtime.Gosched() // the combining window: let a mid-commit writer publish
	}
}

type norecThread struct {
	id    int
	sys   *System
	stats tm.ThreadStats
	tx    *norecTx
	cm    tm.ContentionManager
	timer tm.AtomicTimer
}

func (t *norecThread) ID() int                { return t.id }
func (t *norecThread) Stats() *tm.ThreadStats { return &t.stats }

func (t *norecThread) Atomic(fn func(tm.Tx)) { t.AtomicAt(tm.NoBlock, fn) }

func (t *norecThread) AtomicAt(b tm.BlockID, fn func(tm.Tx)) {
	t.timer.BeginBlock()
	t.stats.Starts++
	t.stats.Tracer.SampleBlock(t.id, int32(b))
	t.cm.OnStart()
	aborts := 0
	for {
		t.tx.begin()
		if tm.Attempt(t.tx, fn) && t.tx.commit() {
			break
		}
		aborts++
		t.stats.Aborts++
		t.stats.RecordAbort(b, t.tx.info.Cause, t.tx.info.Key, t.tx.info.Blame)
		t.stats.Tracer.Emit(trace.EvAbort, t.tx.info.Cause, t.id, int32(b), t.tx.info.Key)
		t.stats.Wasted += t.tx.loads + t.tx.stores
		t.tx.res.OnAbort()
		if t.tx.info.Err != nil {
			// Terminal alloc exhaustion: the abort is accounted and NOrec
			// holds no protocol state between attempts (the combining slot is
			// idle outside commit) — unwind instead of retrying.
			tm.AbandonBlock(t.cm)
			t.tx.info.BailAlloc()
		}
		// NOrec conflicts surface as value-validation failures with no
		// identifiable enemy, so only the delay hooks apply here; priority
		// policies degrade to their delay behavior on this runtime (and
		// conflict attribution blames no block — only the first stale
		// address the revalidation pass tripped on is known).
		t.cm.OnAbort(aborts)
	}
	t.tx.res.OnCommit()
	t.cm.OnCommit()
	t.stats.Commits++
	t.stats.Tracer.Emit(trace.EvCommit, tm.CauseUnknown, t.id, int32(b), 0)
	t.stats.RecordBlock(b, t.sys.name, uint64(aborts), t.tx.loads, t.tx.stores)
	t.stats.Loads += t.tx.loads
	t.stats.Stores += t.tx.stores
	t.stats.LoadsHist.Add(int(t.tx.loads))
	t.stats.StoresHist.Add(int(t.tx.stores))
	if t.tx.readLines != nil {
		t.stats.ReadLinesHist.Add(len(t.tx.readLines))
		t.stats.WriteLinesHist.Add(len(t.tx.writeLines))
	}
	t.stats.TxTimeNs += int64(t.timer.EndBlock())
}

type norecTx struct {
	sys *System
	th  *norecThread
	res *mem.Reserver // thread-private allocation chunk

	snapshot uint64         // even seq value the read set is known valid at
	rset     txset.ReadSet  // value-validation log (NOrec validates by value)
	wset     txset.WriteSet // redo log (insertion order = writeback order)
	info     tm.AbortInfo   // pending-abort cause/location registers

	loads  uint64
	stores uint64

	readLines  map[mem.Line]struct{} // profiling only
	writeLines map[mem.Line]struct{}
}

func (x *norecTx) begin() {
	x.snapshot = x.sys.waitQuiescent()
	x.rset.Reset()
	x.wset.Reset()
	x.info.Reset()
	x.loads, x.stores = 0, 0
	if x.readLines != nil {
		clear(x.readLines)
		clear(x.writeLines)
	}
}

// Load implements the NOrec read barrier: write-buffer lookup (one filter
// word rejects the common no-possible-hit case before any probing), then a
// read that is consistent with the snapshot. If the global clock moved since
// the snapshot, the whole read set is revalidated by value before the read
// is retried, so a doomed transaction can never observe a mixed-epoch state
// (opacity).
func (x *norecTx) Load(a mem.Addr) uint64 {
	x.loads++
	if v, ok := x.wset.Get(a); ok {
		return v
	}
	v := x.sys.cfg.Arena.Load(a)
	for x.sys.seq.Load() != x.snapshot {
		s, bad, ok := x.revalidate()
		if !ok {
			x.info.Fail(tm.CauseSeqChanged, trace.AddrKey(uint64(bad)), tm.NoBlock)
		}
		x.snapshot = s
		v = x.sys.cfg.Arena.Load(a)
	}
	x.rset.Add(a, v)
	if x.readLines != nil {
		x.readLines[mem.LineOf(a)] = struct{}{}
	}
	return v
}

// revalidate is NOrec's value-based validation: wait for a quiescent seq,
// re-read every read-set address, and succeed only if all values still
// match and seq did not move during the pass. On success the returned seq
// becomes the transaction's new snapshot; on failure bad is the first
// read-set address whose value no longer matches (the conflict-heatmap
// location — the only one NOrec can name, having no per-location metadata).
// The read set deduplicates consecutive re-reads, so this pass is
// O(distinct-ish addresses) rather than O(total loads) on re-read-heavy
// workloads.
func (x *norecTx) revalidate() (seq uint64, bad mem.Addr, ok bool) {
	for {
		t := x.sys.waitQuiescent()
		for _, r := range x.rset.Entries() {
			if x.sys.cfg.Arena.Load(r.Addr) != r.Val {
				return 0, r.Addr, false
			}
		}
		if x.sys.seq.Load() == t {
			return t, 0, true
		}
	}
}

// Store implements the lazy write barrier: buffer the value.
func (x *norecTx) Store(a mem.Addr, v uint64) {
	x.stores++
	x.wset.Put(a, v)
	if x.writeLines != nil {
		x.writeLines[mem.LineOf(a)] = struct{}{}
	}
}

// Alloc carves from the thread's reserver; a real capacity miss unwinds
// terminally via FailAlloc, the alloc-exhaust failpoint injects only the
// abort.
func (x *norecTx) Alloc(n int) mem.Addr {
	if x.sys.chaos.Fire(chaos.AllocExhaust, x.th.id) {
		x.info.Fail(tm.CauseAllocExhausted, 0, tm.NoBlock)
	}
	a, err := x.res.TxAlloc(n)
	if err != nil {
		x.info.FailAlloc(err)
	}
	return a
}

// Free defers the release to commit time (abort drops it), recycling the
// block through the thread's free lists.
func (x *norecTx) Free(a mem.Addr, n int) { x.res.TxFree(a, n) }

// EarlyRelease is a no-op: there is no per-location metadata to release,
// and dropping a read record would only skip one value comparison. Keeping
// the entry is always safe (value-based validation never manufactures false
// conflicts at word granularity).
func (x *norecTx) EarlyRelease(mem.Addr) {}

// Peek is an uninstrumented read; with lazy versioning it does not see the
// transaction's own buffered writes (documented on tm.Tx).
func (x *norecTx) Peek(a mem.Addr) uint64 { return x.sys.cfg.Arena.Load(a) }

// Restart implements tm.Tx.
func (x *norecTx) Restart() { x.info.Fail(tm.CauseExplicitRetry, 0, tm.NoBlock) }

// commit acquires the sequence lock (CAS even -> odd), writes the redo log
// back, and releases (snapshot+2). A failed CAS means some other commit
// ticked the clock; with combining enabled the transaction's logs are
// published for the lock holder to absorb, otherwise (and as the fallback)
// the read set is revalidated and the CAS retried from the newer snapshot.
// With the read-only fast path enabled, an empty write set commits
// immediately: every Load already validated against a quiescent snapshot,
// so the read set was atomically valid at that snapshot.
func (x *norecTx) commit() bool {
	// Failpoint: a spurious abort at writer-commit validation looks exactly
	// like a value-validation failure, so it carries that natural cause.
	// Read-only commits are exempt — they have nothing to starve on.
	if x.wset.Len() > 0 && x.sys.chaos.Fire(chaos.NorecValidate, x.th.id) {
		x.info.Set(tm.CauseSeqChanged, 0, tm.NoBlock)
		return false
	}
	if x.wset.Len() == 0 {
		if x.sys.roFast {
			return true
		}
		// Plain variant: read-only commits serialize through the lock, one
		// acquisition each (the LockAcquires contract). They publish no
		// request, so combining never absorbs them; commitDirect's
		// writeback loop is empty here.
		return x.commitDirect()
	}
	if !x.sys.combining {
		return x.commitDirect()
	}
	return x.commitCombining()
}

// commitDirect is the original NOrec writer commit (used with combining
// disabled): CAS loop with revalidation, then writeback under the lock.
func (x *norecTx) commitDirect() bool {
	for !x.sys.seq.CompareAndSwap(x.snapshot, x.snapshot+1) {
		s, bad, ok := x.revalidate()
		if !ok {
			x.info.Set(tm.CauseSeqChanged, trace.AddrKey(uint64(bad)), tm.NoBlock)
			return false
		}
		x.snapshot = s
	}
	x.sys.lockAcquires.Add(1)
	for _, e := range x.wset.Entries() {
		x.sys.cfg.Arena.Store(e.Addr, e.Val)
	}
	// Failpoint: stall between writeback and the release tick — the window
	// where this committer holds the one global lock and everyone waits.
	x.sys.chaos.Stall(chaos.NorecSeqTick, x.th.id)
	x.sys.seq.Store(x.snapshot + 2)
	return true
}

// commitCombining is the writer commit with combining: publish our logs,
// then either win the lock (and combine peers) or get absorbed by whoever
// did. See the package comment for the protocol and its safety argument.
func (x *norecTx) commitCombining() bool {
	sys := x.sys
	sys.inCommit.Add(1)
	defer sys.inCommit.Add(-1)
	r := &sys.combine[x.th.id]
	r.reads = x.rset.Entries()
	r.writes = x.wset.Entries()
	r.status.Store(reqPending)
	if sys.cfg.Threads >= combineYieldMinThreads || sys.inCommit.Load() > 1 {
		// One yield between publish and the first CAS lets batches form even
		// when goroutines outnumber cores: every writer scheduled in this
		// beat parks its request first, and whichever one wins the lock
		// drains all of them under a single acquisition. On idle multicore
		// hardware the yield returns immediately.
		runtime.Gosched()
	}
	for spins := 0; ; spins++ {
		switch r.status.Load() {
		case reqDone:
			r.status.Store(reqIdle)
			x.th.stats.CombinedCommits++
			return true
		case reqRejected:
			// The combiner saw one of our read values change under its
			// batch; fall back to the ordinary revalidate path, which
			// usually aborts (and tolerates the rare value that changed
			// back, in which case we republish).
			r.status.Store(reqIdle)
			x.th.stats.CombineFallbacks++
			s, bad, ok := x.revalidate()
			if !ok {
				x.info.Set(tm.CauseSeqChanged, trace.AddrKey(uint64(bad)), tm.NoBlock)
				return false
			}
			x.snapshot = s
			r.status.Store(reqPending)
			continue
		case reqClaimed:
			// A combiner is validating/applying our logs; it resolves the
			// slot before it releases the lock.
			if spins&127 == 127 {
				runtime.Gosched()
			}
			continue
		}
		// Still pending: try to win the lock ourselves. A successful CAS
		// proves no combiner tenure overlapped since we (re)published —
		// claims happen only under the lock — so retracting our request
		// with a plain store cannot race a claim.
		if sys.seq.CompareAndSwap(x.snapshot, x.snapshot+1) {
			r.status.Store(reqIdle)
			sys.lockAcquires.Add(1)
			for _, e := range x.wset.Entries() {
				sys.cfg.Arena.Store(e.Addr, e.Val)
			}
			sys.drainCombine(x.th.id)
			// Failpoint: stall while holding the sequence lock (see
			// commitDirect); with combining the whole batch is held open.
			sys.chaos.Stall(chaos.NorecSeqTick, x.th.id)
			sys.seq.Store(x.snapshot + 2)
			return true
		}
		if sys.seq.Load()&1 != 0 {
			// A combiner holds the lock: stay published — this is exactly
			// the window in which it can absorb us.
			if spins&127 == 127 {
				runtime.Gosched()
			}
			continue
		}
		// Quiescent but our snapshot is stale. Revalidate while still
		// published (a new lock holder may absorb us meanwhile), then
		// re-check the slot before acting on the result.
		s, bad, ok := x.revalidate()
		switch r.status.Load() {
		case reqDone:
			r.status.Store(reqIdle)
			x.th.stats.CombinedCommits++
			return true
		case reqRejected:
			r.status.Store(reqIdle)
			x.th.stats.CombineFallbacks++
			if !ok {
				x.info.Set(tm.CauseSeqChanged, trace.AddrKey(uint64(bad)), tm.NoBlock)
				return false
			}
			x.snapshot = s
			r.status.Store(reqPending)
			continue
		case reqClaimed:
			continue // resolves shortly; the loop re-checks the slot
		}
		if !ok {
			// Abort — but withdraw the request first; losing the withdraw
			// race to a claimer means the outcome is about to be decided
			// for us, so loop and honor it instead.
			if r.status.CompareAndSwap(reqPending, reqIdle) {
				x.info.Set(tm.CauseSeqChanged, trace.AddrKey(uint64(bad)), tm.NoBlock)
				return false
			}
			continue
		}
		x.snapshot = s
	}
}
