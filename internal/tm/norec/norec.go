// Package norec implements the NOrec STM (Dalessandro, Spear & Scott,
// "NOrec: Streamlining STM by Abolishing Ownership Records", PPoPP 2010):
// a lazy-versioning STM whose only global metadata is a single sequence
// lock. There is no per-location lock table at all — conflicts are found by
// value-based validation of the read set, so the runtime trades TL2's
// lock-table cache pressure for revalidation work whenever the global clock
// moves. That trade wins exactly where the paper says it does: low thread
// counts and read-dominated workloads whose read sets rarely change value
// (vacation, genome), and it loses under heavy write commit rates, because
// every writeback is serialized through the one lock.
//
// The sequence lock protocol:
//
//   - seq even: no writeback in progress (quiescent).
//   - seq odd: exactly one committer holds the lock and is writing back.
//
// A transaction snapshots an even seq at begin. Every Load rechecks seq
// after reading memory; if it moved, the whole read set is revalidated by
// value against a new quiescent snapshot (mismatch => abort, match =>
// adopt the newer snapshot and continue). A writer commits by CAS-ing
// seq from its snapshot to snapshot+1 (acquiring the lock), writing its
// redo log back, and releasing with snapshot+2. Read-set validity at the
// moment the CAS succeeds follows from seq not having moved since the last
// validation, which gives opacity without any per-read version check.
//
// Two registered variants expose the cost of the read-only commit rule as
// a comparison axis:
//
//	stm-norec     read-only transactions also serialize through the
//	              sequence lock at commit (every commit ticks the clock)
//	stm-norec-ro  the paper's read-only fast path: a transaction with an
//	              empty write set commits immediately, with no lock
//	              acquisition and no clock tick
package norec

import (
	"runtime"
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

// System is one NOrec runtime instance. The entire shared state of the
// algorithm is the seq word; everything else is per-thread.
type System struct {
	cfg    tm.Config
	name   string
	roFast bool // read-only commit fast path (the stm-norec-ro variant)

	// seq is the global sequence lock: even = quiescent, odd = a committer
	// is writing back. It doubles as the version clock transactions
	// snapshot at begin.
	seq atomic.Uint64

	// lockAcquires counts successful sequence-lock acquisitions, the test
	// hook that lets callers assert the read-only fast path never takes
	// the lock.
	lockAcquires atomic.Uint64

	threads []*norecThread
}

// New constructs the plain NOrec runtime ("stm-norec").
func New(cfg tm.Config) (*System, error) { return newSystem(cfg, "stm-norec", false) }

// NewRO constructs the NOrec runtime with the read-only commit fast path
// ("stm-norec-ro").
func NewRO(cfg tm.Config) (*System, error) { return newSystem(cfg, "stm-norec-ro", true) }

func newSystem(cfg tm.Config, name string, roFast bool) (*System, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pool, err := tm.NewCMPool(cfg, tm.DefaultCM)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, name: name, roFast: roFast}
	s.threads = make([]*norecThread, cfg.Threads)
	for i := range s.threads {
		t := &norecThread{id: i, sys: s}
		t.cm = pool.ForThread(i, &t.stats)
		t.tx = &norecTx{sys: s, th: t, wbuf: make(map[mem.Addr]uint64)}
		if cfg.ProfileSets {
			t.tx.readLines = make(map[mem.Line]struct{})
			t.tx.writeLines = make(map[mem.Line]struct{})
		}
		s.threads[i] = t
	}
	return s, nil
}

// Name implements tm.System.
func (s *System) Name() string { return s.name }

// Arena implements tm.System.
func (s *System) Arena() *mem.Arena { return s.cfg.Arena }

// NThreads implements tm.System.
func (s *System) NThreads() int { return s.cfg.Threads }

// Thread implements tm.System.
func (s *System) Thread(id int) tm.Thread { return s.threads[id] }

// Stats implements tm.System.
func (s *System) Stats() tm.Stats {
	per := make([]*tm.ThreadStats, len(s.threads))
	for i, t := range s.threads {
		per[i] = &t.stats
	}
	return tm.Aggregate(per)
}

// Seq returns the current sequence-lock value (even = quiescent).
func (s *System) Seq() uint64 { return s.seq.Load() }

// LockAcquires returns how many commits acquired the sequence lock. With
// the read-only fast path, read-only transactions never contribute here.
func (s *System) LockAcquires() uint64 { return s.lockAcquires.Load() }

// waitQuiescent spins until seq is even and returns it. It yields to the
// scheduler periodically so a committer that holds the lock can finish its
// writeback even when goroutines outnumber cores.
func (s *System) waitQuiescent() uint64 {
	for spins := 0; ; spins++ {
		if v := s.seq.Load(); v&1 == 0 {
			return v
		}
		if spins&127 == 127 {
			runtime.Gosched()
		}
	}
}

type norecThread struct {
	id    int
	sys   *System
	stats tm.ThreadStats
	tx    *norecTx
	cm    tm.ContentionManager
	timer tm.AtomicTimer
}

func (t *norecThread) ID() int                { return t.id }
func (t *norecThread) Stats() *tm.ThreadStats { return &t.stats }

func (t *norecThread) Atomic(fn func(tm.Tx)) {
	t.timer.BeginBlock()
	t.stats.Starts++
	t.cm.OnStart()
	aborts := 0
	for {
		t.tx.begin()
		if tm.Attempt(t.tx, fn) && t.tx.commit() {
			break
		}
		aborts++
		t.stats.Aborts++
		t.stats.Wasted += t.tx.loads + t.tx.stores
		// NOrec conflicts surface as value-validation failures with no
		// identifiable enemy, so only the delay hooks apply here; priority
		// policies degrade to their delay behavior on this runtime.
		t.cm.OnAbort(aborts)
	}
	t.cm.OnCommit()
	t.stats.Commits++
	t.stats.Loads += t.tx.loads
	t.stats.Stores += t.tx.stores
	t.stats.LoadsHist.Add(int(t.tx.loads))
	t.stats.StoresHist.Add(int(t.tx.stores))
	if t.tx.readLines != nil {
		t.stats.ReadLinesHist.Add(len(t.tx.readLines))
		t.stats.WriteLinesHist.Add(len(t.tx.writeLines))
	}
	t.stats.TxTimeNs += int64(t.timer.EndBlock())
}

// readRec is one read-set entry: the address and the value observed there.
// NOrec validates by value — a concurrent commit that stores the same value
// back (a silent store) does not abort readers.
type readRec struct {
	addr mem.Addr
	val  uint64
}

type norecTx struct {
	sys *System
	th  *norecThread

	snapshot uint64 // even seq value the read set is known valid at
	rset     []readRec
	wbuf     map[mem.Addr]uint64
	worder   []mem.Addr // write-set addresses in first-store order

	loads  uint64
	stores uint64

	readLines  map[mem.Line]struct{} // profiling only
	writeLines map[mem.Line]struct{}
}

func (x *norecTx) begin() {
	x.snapshot = x.sys.waitQuiescent()
	x.rset = x.rset[:0]
	x.worder = x.worder[:0]
	clear(x.wbuf)
	x.loads, x.stores = 0, 0
	if x.readLines != nil {
		clear(x.readLines)
		clear(x.writeLines)
	}
}

// Load implements the NOrec read barrier: write-buffer lookup, then a read
// that is consistent with the snapshot. If the global clock moved since the
// snapshot, the whole read set is revalidated by value before the read is
// retried, so a doomed transaction can never observe a mixed-epoch state
// (opacity).
func (x *norecTx) Load(a mem.Addr) uint64 {
	x.loads++
	if v, ok := x.wbuf[a]; ok {
		return v
	}
	v := x.sys.cfg.Arena.Load(a)
	for x.sys.seq.Load() != x.snapshot {
		s, ok := x.revalidate()
		if !ok {
			tm.Retry()
		}
		x.snapshot = s
		v = x.sys.cfg.Arena.Load(a)
	}
	x.rset = append(x.rset, readRec{addr: a, val: v})
	if x.readLines != nil {
		x.readLines[mem.LineOf(a)] = struct{}{}
	}
	return v
}

// revalidate is NOrec's value-based validation: wait for a quiescent seq,
// re-read every read-set address, and succeed only if all values still
// match and seq did not move during the pass. On success the returned seq
// becomes the transaction's new snapshot.
func (x *norecTx) revalidate() (uint64, bool) {
	for {
		t := x.sys.waitQuiescent()
		for _, r := range x.rset {
			if x.sys.cfg.Arena.Load(r.addr) != r.val {
				return 0, false
			}
		}
		if x.sys.seq.Load() == t {
			return t, true
		}
	}
}

// Store implements the lazy write barrier: buffer the value.
func (x *norecTx) Store(a mem.Addr, v uint64) {
	x.stores++
	if _, ok := x.wbuf[a]; !ok {
		x.worder = append(x.worder, a)
	}
	x.wbuf[a] = v
	if x.writeLines != nil {
		x.writeLines[mem.LineOf(a)] = struct{}{}
	}
}

func (x *norecTx) Alloc(n int) mem.Addr { return x.sys.cfg.Arena.Alloc(n) }
func (x *norecTx) Free(mem.Addr)        {}

// EarlyRelease is a no-op: there is no per-location metadata to release,
// and dropping a readRec would only skip one value comparison. Keeping the
// entry is always safe (value-based validation never manufactures false
// conflicts at word granularity).
func (x *norecTx) EarlyRelease(mem.Addr) {}

// Peek is an uninstrumented read; with lazy versioning it does not see the
// transaction's own buffered writes (documented on tm.Tx).
func (x *norecTx) Peek(a mem.Addr) uint64 { return x.sys.cfg.Arena.Load(a) }

// Restart implements tm.Tx.
func (x *norecTx) Restart() { tm.Retry() }

// commit acquires the sequence lock (CAS even -> odd), writes the redo log
// back, and releases (snapshot+2). A failed CAS means some other commit
// ticked the clock, so the read set is revalidated and the CAS retried from
// the newer snapshot. With the read-only fast path enabled, an empty write
// set commits immediately: every Load already validated against a quiescent
// snapshot, so the read set was atomically valid at that snapshot.
func (x *norecTx) commit() bool {
	if len(x.worder) == 0 && x.sys.roFast {
		return true
	}
	for !x.sys.seq.CompareAndSwap(x.snapshot, x.snapshot+1) {
		s, ok := x.revalidate()
		if !ok {
			return false
		}
		x.snapshot = s
	}
	x.sys.lockAcquires.Add(1)
	for _, a := range x.worder {
		x.sys.cfg.Arena.Store(a, x.wbuf[a])
	}
	x.sys.seq.Store(x.snapshot + 2)
	return true
}
