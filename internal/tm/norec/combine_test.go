package norec

import (
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/txset"
)

// TestDrainCombineAbsorbsDisjoint is the deterministic white-box test of
// the combiner protocol: with the lock held, a pending request whose read
// set validates by value is applied and resolved reqDone; one whose read
// set no longer matches memory is rejected without applying its writes.
func TestDrainCombineAbsorbsDisjoint(t *testing.T) {
	arena := mem.NewArena(1 << 10)
	a := arena.Alloc(1) // read by both requests
	b := arena.Alloc(1) // written by request 1
	c := arena.Alloc(1) // written by request 2
	arena.Store(a, 5)
	sys, err := New(tm.Config{Arena: arena, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Thread 0 plays the combiner: acquire the lock by hand.
	if !sys.seq.CompareAndSwap(0, 1) {
		t.Fatal("could not acquire seq lock")
	}

	// Thread 1 publishes a valid request: read (a,5), write b=10.
	r1 := &sys.combine[1]
	r1.reads = []txset.ReadEntry{{Addr: a, Val: 5}}
	r1.writes = []txset.Entry{{Addr: b, Val: 10}}
	r1.status.Store(reqPending)

	// Thread 2 publishes a stale request: it observed (a,4), which no
	// longer matches memory, so it must be rejected and c left untouched.
	r2 := &sys.combine[2]
	r2.reads = []txset.ReadEntry{{Addr: a, Val: 4}}
	r2.writes = []txset.Entry{{Addr: c, Val: 20}}
	r2.status.Store(reqPending)

	sys.drainCombine(0)
	sys.seq.Store(2)

	if got := r1.status.Load(); got != reqDone {
		t.Fatalf("valid request status = %d, want reqDone", got)
	}
	if got := arena.Load(b); got != 10 {
		t.Fatalf("absorbed write not applied: b = %d, want 10", got)
	}
	if got := r2.status.Load(); got != reqRejected {
		t.Fatalf("stale request status = %d, want reqRejected", got)
	}
	if got := arena.Load(c); got != 0 {
		t.Fatalf("rejected write was applied: c = %d, want 0", got)
	}
}

// TestCombiningDisjointWriters is the concurrency end-to-end check: many
// writers with disjoint read/write sets must all commit correctly with
// combining on, and (on a machine where commits actually overlap) some of
// them should be absorbed by a peer's lock acquisition.
func TestCombiningDisjointWriters(t *testing.T) {
	const threads = 8
	const perT = 3000
	arena := mem.NewArena(1 << 12)
	cells := make([]mem.Addr, threads)
	for i := range cells {
		cells[i] = arena.Alloc(1)
	}
	sys, err := New(tm.Config{Arena: arena, Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	team := thread.NewTeam(threads)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		mine := cells[tid]
		for i := 0; i < perT; i++ {
			th.Atomic(func(tx tm.Tx) {
				tm.Spin(200) // widen the commit window so attempts overlap
				tx.Store(mine, tx.Load(mine)+1)
			})
		}
	})
	for i, c := range cells {
		if got := arena.Load(c); got != perT {
			t.Fatalf("cell %d = %d, want %d", i, got, perT)
		}
	}
	st := sys.Stats()
	if st.Total.Commits != threads*perT {
		t.Fatalf("commits = %d, want %d", st.Total.Commits, threads*perT)
	}
	// Disjoint sets can never fail value validation, so a fallback here
	// would be a protocol bug.
	if st.Total.CombineFallbacks != 0 {
		t.Fatalf("disjoint writers produced %d combine fallbacks", st.Total.CombineFallbacks)
	}
	// Every absorbed commit must be balanced by the seq-lock arithmetic:
	// total commits = acquisitions + absorbed.
	if got := sys.LockAcquires() + st.Total.CombinedCommits; got != threads*perT {
		t.Fatalf("acquisitions(%d) + combined(%d) = %d, want %d",
			sys.LockAcquires(), st.Total.CombinedCommits, got, threads*perT)
	}
	if st.Total.CombinedCommits == 0 {
		t.Error("no commits were combined despite overlapping disjoint writers")
	}
	t.Logf("combined %d of %d commits (%d acquisitions)",
		st.Total.CombinedCommits, st.Total.Commits, sys.LockAcquires())
}

// TestCombiningConflictingWriters: overlapping writers must still be
// linearizable — combining may only absorb a commit whose read set is
// untouched, so a shared counter loses no increments.
func TestCombiningConflictingWriters(t *testing.T) {
	const threads = 8
	const perT = 2000
	for _, noCombine := range []bool{false, true} {
		arena := mem.NewArena(1 << 10)
		c := arena.Alloc(1)
		sys, err := New(tm.Config{Arena: arena, Threads: threads, NoCombine: noCombine})
		if err != nil {
			t.Fatal(err)
		}
		team := thread.NewTeam(threads)
		team.Run(func(tid int) {
			th := sys.Thread(tid)
			for i := 0; i < perT; i++ {
				th.Atomic(func(tx tm.Tx) {
					tx.Store(c, tx.Load(c)+1)
				})
			}
		})
		if got := arena.Load(c); got != threads*perT {
			t.Fatalf("noCombine=%v: counter = %d, want %d", noCombine, got, threads*perT)
		}
		st := sys.Stats()
		if noCombine && st.Total.CombinedCommits+st.Total.CombineFallbacks != 0 {
			t.Fatalf("NoCombine still combined: %d/%d",
				st.Total.CombinedCommits, st.Total.CombineFallbacks)
		}
	}
}

// TestCombiningMixedReadWrite: readers scanning a multi-word invariant
// while combined transfers drain must never observe a torn total — the
// batch publishes under one seq tick, so opacity must survive combining.
func TestCombiningMixedReadWrite(t *testing.T) {
	const (
		threads  = 8
		accounts = 16
		total    = 800
		perT     = 1000
	)
	arena := mem.NewArena(1 << 12)
	accs := make([]mem.Addr, accounts)
	for i := range accs {
		accs[i] = arena.Alloc(1)
	}
	arena.Store(accs[0], total)
	sys, err := NewRO(tm.Config{Arena: arena, Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	team := thread.NewTeam(threads)
	var torn [threads]int64
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for i := 0; i < perT; i++ {
			if tid%2 == 0 {
				th.Atomic(func(tx tm.Tx) {
					var sum uint64
					for _, a := range accs {
						sum += tx.Load(a)
					}
					if sum != total {
						torn[tid]++
					}
				})
				continue
			}
			from := (tid + i) % accounts
			to := (tid*3 + i*7) % accounts
			th.Atomic(func(tx tm.Tx) {
				f := tx.Load(accs[from])
				if f == 0 {
					return
				}
				tx.Store(accs[from], f-1)
				tx.Store(accs[to], tx.Load(accs[to])+1)
			})
		}
	})
	for tid, v := range torn {
		if v != 0 {
			t.Fatalf("thread %d observed %d torn snapshots", tid, v)
		}
	}
	var sum uint64
	for _, a := range accs {
		sum += arena.Load(a)
	}
	if sum != total {
		t.Fatalf("total = %d, want %d", sum, total)
	}
}
