// Package tm defines the portable transactional-memory API that every STAMP
// application in this suite is written against, mirroring the C macro layer
// of the original benchmark (TM_BEGIN / TM_SHARED_READ / TM_SHARED_WRITE /
// TM_EARLY_RELEASE / TM_RESTART). The same application code runs unchanged
// on all nine runtimes:
//
//	seq           sequential baseline (no concurrency control; speedup denominator)
//	stm-lazy      TL2-style lazy STM (write buffer, commit-time locking, word granularity)
//	stm-eager     eager TL2 variant (undo log, encounter-time locking, word granularity)
//	stm-norec     NOrec STM (single global sequence lock, value-based validation,
//	              no per-location metadata; every commit serializes through the
//	              lock, with commit combining batching disjoint writers)
//	stm-norec-ro  NOrec with the read-only commit fast path (empty write set
//	              commits without acquiring the sequence lock)
//	htm-lazy      simulated TCC-style HTM (lazy versioning, commit arbitration,
//	              line granularity, capacity overflow => serialized execution)
//	htm-eager     simulated LogTM-style HTM (eager versioning, directory conflict
//	              detection, requester loses, priority after 32 aborts, Bloom overflow)
//	hybrid-lazy   simulated SigTM (software write buffer + hardware signatures)
//	hybrid-eager  eager SigTM variant (software undo log + hardware signatures)
//	stm-adaptive  meta-runtime wrapping two of the STMs above (NOrec with the
//	              read-only fast path, and TL2 lazy, by default) and switching
//	              between them online from sampled commit/abort and
//	              read/write-set signals, with an epoch-based quiesce so no
//	              transaction straddles a protocol handoff
//	stm-mv        multi-version STM: TL2-style writers append committed values
//	              to per-stripe bounded version rings (Config.MVVersions), so
//	              read-only transactions read a consistent snapshot at their
//	              begin timestamp with zero validation, zero aborts, and zero
//	              lock acquisitions while writers commit concurrently
//
// The paper's evaluation covers six of these (factory.TMNames()); the NOrec
// and adaptive runtimes extend the comparison axis beyond the paper and are
// selected explicitly by name (factory.Names() lists everything registered).
//
// Transactional data lives in a mem.Arena; Tx.Load and Tx.Store are the read
// and write barriers. Conflicts abort the current attempt by panicking with
// a private signal that Thread.Atomic recovers from before retrying, so an
// atomic block may execute any number of times. The one rule applications
// must follow (the same rule the C suite follows implicitly via setjmp):
// any non-arena state mutated inside the block must be reset at block entry.
//
// How aggressively a runtime retries is governed by a pluggable
// ContentionManager selected through Config.CM — see the interface and the
// policy registry (CMNames) in cm.go. The zero Config reproduces the
// paper's behavior: randomized linear backoff on the software-managed
// systems, immediate restart on the simulated HTMs.
package tm

import (
	"fmt"
	"time"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm/chaos"
)

// Mem is the minimal read/write/allocate contract shared by transactions and
// by the non-transactional mem.Direct accessor. The container library is
// written against Mem so the same data-structure code serves transactional
// and setup/verification phases.
type Mem interface {
	Load(a mem.Addr) uint64
	Store(a mem.Addr, v uint64)
	Alloc(n int) mem.Addr
	// Free releases the n-word block at a (n is the size passed to the
	// Alloc that produced it). Inside a transaction the free is deferred to
	// commit and recycled through the thread's free lists (see
	// mem.Reserver); mem.Direct ignores it.
	Free(a mem.Addr, n int)
}

// Tx is the per-attempt transactional context handed to atomic blocks.
type Tx interface {
	Mem

	// EarlyRelease removes a previously read address from the transaction's
	// read set so it no longer generates conflicts (Herlihy et al.; used by
	// labyrinth exactly as in the paper). Systems without early release
	// treat it as a no-op, which is always safe.
	EarlyRelease(a mem.Addr)

	// Peek performs an uninstrumented read, modelling an access the compiler
	// did not wrap in a barrier. On lazy-versioning systems it does not see
	// the transaction's own buffered writes. Labyrinth uses Peek for its
	// grid privatization on the software and hybrid systems, as the paper
	// describes.
	Peek(a mem.Addr) uint64

	// Restart aborts the current attempt and retries the atomic block
	// (TM_RESTART). It never returns.
	Restart()
}

// Thread is a per-worker handle bound to one TM system instance. Thread
// values are not safe for concurrent use; each worker goroutine owns one.
type Thread interface {
	// ID returns the worker id in [0, System.NThreads()).
	ID() int
	// Atomic executes fn as one transaction, retrying until it commits.
	// Statistics are attributed to NoBlock.
	Atomic(fn func(Tx))
	// AtomicAt is Atomic with the transaction attributed to the atomic-block
	// call site b (see NewBlock) in the per-block statistics.
	AtomicAt(b BlockID, fn func(Tx))
	// Stats returns this worker's statistics record.
	Stats() *ThreadStats
}

// System is one TM runtime instance bound to an arena and a fixed thread
// count.
type System interface {
	// Name returns the registry name (e.g. "stm-lazy").
	Name() string
	// Arena returns the arena all transactional data lives in.
	Arena() *mem.Arena
	// NThreads returns the number of worker slots.
	NThreads() int
	// Thread returns the worker handle for slot id. Each slot must be used
	// by at most one goroutine at a time.
	Thread(id int) Thread
	// Stats returns the aggregated statistics across all worker slots.
	Stats() Stats
}

// Config carries the knobs shared by the runtime implementations; the zero
// value is completed by Defaults.
type Config struct {
	Arena   *mem.Arena
	Threads int

	// CapacityLines is the speculative-buffer capacity of the simulated
	// HTMs, in 32-byte lines. Table V's machine has a 64 KB L1 with 32 B
	// lines => 2048 lines.
	CapacityLines int

	// CapacityAssoc is the associativity of the speculative buffer
	// (Table V: 4-way). A transaction overflows when more than
	// CapacityAssoc of its lines map to one of the CapacityLines /
	// CapacityAssoc sets — which is how the paper's bayes and labyrinth+
	// footprints (~450-780 lines) overflow a 2048-line L1 long before
	// filling it. Set to 0 to model a fully associative buffer.
	CapacityAssoc int

	// Clock selects the TL2 commit-clock scheme by registry name (see
	// ClockNames): "gv1" (fetch-add per writer commit), "gv4"
	// (pass-on-failure CAS; concurrent committers share one clock write),
	// or "gv5" (commits publish clock+1 without ticking; aborts advance
	// the clock). Empty selects DefaultClock (gv1), reproducing the
	// original TL2 behavior. Runtimes without a version clock (NOrec, the
	// simulated HTMs, the hybrids) ignore this field; the adaptive
	// meta-runtime forwards it to its TL2 delegate.
	Clock string

	// AllocChunk is the per-thread arena reservation size in words: each
	// worker's tx.Alloc bump-allocates from a private, line-aligned chunk
	// of this many words and touches the shared arena pointer only to
	// refill — one contended atomic per chunk instead of per allocation.
	// 0 selects the default (4096 words, capped to a fraction of the
	// arena so reservation tails cannot exhaust small arenas); a negative
	// value disables reservation entirely (every tx.Alloc hits the shared
	// pointer, the pre-reservation behavior — the ablation arm).
	AllocChunk int

	// NoRecycle disables the per-thread free-list recycling of
	// transactional allocation (mem.Reserver): tx.Free drops its argument,
	// aborted attempts leak their allocations, and chunk tails abandoned at
	// refill are never reused — the seed allocator's behavior, kept as the
	// ablation arm (BenchmarkAblationTransactionalFree) and for A/B
	// comparisons of arena high-water growth. Recycling is on by default.
	NoRecycle bool

	// MVVersions is the per-stripe version-ring depth of the stm-mv
	// runtime: how many committed (version, address, value) records each
	// stripe retains for snapshot readers. 0 selects DefaultMVVersions (8).
	// 1 degrades to single-version behavior — a snapshot reader that finds
	// its stripe committed past its begin timestamp always misses the ring
	// and aborts with mv-version-missing, exactly like a TL2 read
	// validation failure. Negative values are rejected by Validate. Only
	// the stm-mv runtime reads this field.
	MVVersions int

	// LockTableBits sizes the TL2 versioned-lock table at 2^bits stripes.
	// 0 derives the size from the arena (one stripe per word, rounded up
	// to a power of two, clamped to [2^12, 2^20]), so small workloads stop
	// paying 8 MiB of cold lock-table metadata per TL2 instance — doubled
	// under stm-adaptive, which constructs two delegates. Explicit values
	// are clamped to the same range. Only the TL2 runtimes read this.
	LockTableBits int

	// CM selects the contention-management policy by registry name (see
	// CMNames): "randlin", "expo", "greedy", "karma", "serialize", or
	// "none". Empty selects the runtime's historical default — randomized
	// linear backoff for STMs and hybrids, immediate restart for the
	// simulated HTMs — so the zero value reproduces the paper's behavior.
	CM string

	// BackoffAfter is the abort count after which the delay-based
	// contention managers (randlin, expo, karma, serialize) start delaying
	// (the paper uses 3).
	BackoffAfter int

	// SerializeAfter is the abort count after which the "serialize"
	// contention manager falls back to running the block alone under a
	// global lock (default 8). Ignored by every other policy.
	SerializeAfter int

	// PriorityAfter is the abort count after which the eager HTM grants a
	// transaction high priority so others cannot abort it (the paper's
	// livelock escape, 32).
	PriorityAfter int

	// EnableEarlyRelease controls whether EarlyRelease has any effect on the
	// HTM simulators ("since early-release is not available on all TM
	// systems, its use can be disabled").
	EnableEarlyRelease bool

	// NoCombine disables NOrec commit combining (losing committers publish
	// their validated redo logs so the sequence-lock holder can drain
	// disjoint write sets under one acquisition). Combining is on by
	// default; this switch exists for ablations of the writeback wall.
	NoCombine bool

	// AdaptiveRead and AdaptiveWrite name the two delegate runtimes of the
	// stm-adaptive meta-runtime: the protocol preferred in read-dominated /
	// low-contention phases and the one preferred under write-heavy commit
	// pressure. Defaults are "stm-norec-ro" (NOrec with the paper's
	// read-only commit rule) and "stm-lazy" (TL2). Other runtimes ignore
	// these fields.
	AdaptiveRead  string
	AdaptiveWrite string

	// AdaptiveWindow is the number of committed blocks per stm-adaptive
	// sampling window (default 128); at each window boundary the selection
	// policy re-evaluates the sampled signals.
	AdaptiveWindow int

	// AdaptiveHysteresis is how many consecutive windows must agree on the
	// other protocol before stm-adaptive performs a handoff (default 2), so
	// one noisy window cannot trigger a quiesce.
	AdaptiveHysteresis int

	// ProfileSets makes the sequential system track read/write line sets for
	// characterization (the concurrent systems track them anyway).
	ProfileSets bool

	// Chaos arms the deterministic fault-injection layer with a spec of the
	// form "seed:site:prob[,site:prob...]" — see internal/tm/chaos for the
	// site registry (tl2-lock-acquire, norec-seq-tick, hybrid-sig-check,
	// ...) and cmd/stamp -list-chaos for the listing. Empty — the default —
	// means chaos off: no injector is built and every failpoint is a single
	// nil test. Spurious-abort sites stamp the site's natural abort cause,
	// so the closed-taxonomy invariant holds under injection. The seq
	// baseline has no conflict paths and ignores the field (the spec is
	// still validated).
	Chaos string

	// StarveAfter is the consecutive-abort count past which a starving
	// atomic block escalates to irrevocable mode under *every* contention
	// manager: it acquires the global irrevocability token, drains
	// in-flight peers, runs alone with fault injection suppressed, and
	// must commit (counted in ThreadStats.Escalations/EscalatedCommits;
	// peers it displaces abort with killed-for-irrevocable). 0 selects
	// DefaultStarveAfter; negative disables escalation — the watchdog
	// mutation-test arm, which reintroduces the possibility of livelock.
	StarveAfter int

	// StarveAfterNs is the age-based escalation trigger: a block whose
	// first attempt started more than this many wall nanoseconds ago
	// escalates at its next abort even below the StarveAfter count. 0 —
	// the default — disables the age trigger (the abort-count trigger is
	// the deterministic one; age catches long transactions starved at a
	// low abort rate).
	StarveAfterNs int64

	// Watch, when non-nil, is the liveness watchdog's shared progress
	// counter: every runtime bumps the committing thread's slot on commit,
	// and blocks poll it at attempt boundaries, unwinding with HaltSignal
	// once Halt has been called. The harness arms it for
	// Options.ProgressTimeout; nil — the default — costs one nil test per
	// commit.
	Watch *Watch

	// Trace enables the sampled event tracer: every Trace-th atomic block
	// per thread records begin/abort/commit/wait events into that thread's
	// ring buffer (1 traces every block). 0 — the default — disables
	// tracing entirely: no rings are allocated and the per-event hot path
	// is a nil-receiver no-op.
	Trace int

	// TraceBuf is the per-thread tracer ring capacity in events (rounded up
	// to a power of two; 0 selects DefaultTraceBuf). The ring keeps the
	// newest events when it wraps.
	TraceBuf int

	// Seed seeds per-thread backoff jitter.
	Seed uint64
}

// Defaults fills unset fields with the paper's parameters.
func (c Config) Defaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.CapacityLines == 0 {
		c.CapacityLines = 2048
		if c.CapacityAssoc == 0 {
			c.CapacityAssoc = 4
		}
	}
	if c.BackoffAfter == 0 {
		c.BackoffAfter = 3
	}
	if c.SerializeAfter == 0 {
		c.SerializeAfter = 8
	}
	if c.PriorityAfter == 0 {
		c.PriorityAfter = 32
	}
	if c.MVVersions == 0 {
		c.MVVersions = DefaultMVVersions
	}
	if c.AdaptiveRead == "" {
		c.AdaptiveRead = "stm-norec-ro"
	}
	if c.AdaptiveWrite == "" {
		c.AdaptiveWrite = "stm-lazy"
	}
	if c.AdaptiveWindow == 0 {
		c.AdaptiveWindow = 128
	}
	if c.AdaptiveHysteresis == 0 {
		c.AdaptiveHysteresis = 2
	}
	if c.Seed == 0 {
		c.Seed = 0x5742757374616d70
	}
	if c.StarveAfter == 0 {
		c.StarveAfter = DefaultStarveAfter
	}
	return c
}

// Validate reports configuration errors a constructor should reject.
func (c Config) Validate() error {
	if c.Arena == nil {
		return fmt.Errorf("tm: config needs an arena")
	}
	if c.Threads < 1 {
		return fmt.Errorf("tm: config needs at least one thread, got %d", c.Threads)
	}
	if c.Threads > 64 {
		return fmt.Errorf("tm: at most 64 threads supported (reader masks), got %d", c.Threads)
	}
	if c.Trace < 0 {
		return fmt.Errorf("tm: trace sampling interval must be >= 0, got %d", c.Trace)
	}
	if c.MVVersions < 0 {
		return fmt.Errorf("tm: mv version-ring depth must be >= 1, got %d", c.MVVersions)
	}
	// Clock is validated here — not just in the TL2 constructors that
	// consume it — so a typoed scheme errors uniformly on every runtime
	// instead of being silently ignored (and mislabeling Result.Clock) on
	// the runtimes without a version clock.
	if c.Clock != "" {
		if _, ok := clockRegistry[c.Clock]; !ok {
			return fmt.Errorf("tm: unknown clock scheme %q (known: %v)", c.Clock, ClockNames())
		}
	}
	// Chaos is likewise validated on every runtime (including seq, which
	// ignores the armed sites) so a typoed spec errors instead of silently
	// running an un-injected experiment.
	if _, err := chaos.Parse(c.Chaos); err != nil {
		return fmt.Errorf("tm: %w", err)
	}
	if c.StarveAfterNs < 0 {
		return fmt.Errorf("tm: StarveAfterNs must be >= 0, got %d", c.StarveAfterNs)
	}
	return nil
}

// DefaultStarveAfter is the consecutive-abort escalation threshold when
// Config.StarveAfter is 0. It sits far above the other thresholds that act
// on the same counter (BackoffAfter 3, SerializeAfter 8, PriorityAfter 32):
// escalation drains the whole system, so it is the last resort — but unlike
// every policy below it, it is a guarantee, not a heuristic.
const DefaultStarveAfter = 512

// DefaultAllocChunk is the per-thread reservation size tx.Alloc refills in
// when Config.AllocChunk is 0 (in words; ~32 KiB of arena per refill).
const DefaultAllocChunk = 4096

// DefaultMVVersions is the stm-mv per-stripe version-ring depth when
// Config.MVVersions is 0.
const DefaultMVVersions = 8

// ReserveChunk resolves Config.AllocChunk to the effective per-thread
// reservation size: negative disables reservation (returns 0), 0 selects
// DefaultAllocChunk, and any chunk is capped to Cap/(Threads*16) so the
// reserved-but-unconsumed tails can never exhaust a tightly sized arena
// (a cap of 0 degrades to passthrough, which is exactly right for tiny
// test arenas). The divisor budgets for *two* reservers per thread — the
// stm-adaptive meta-runtime constructs two delegate systems over one
// arena — keeping worst-case stranded tails at or below 1/8 of the arena
// even there.
func (c Config) ReserveChunk() int {
	if c.AllocChunk < 0 {
		return 0
	}
	chunk := c.AllocChunk
	if chunk == 0 {
		chunk = DefaultAllocChunk
	}
	if c.Arena != nil && c.Threads > 0 {
		if most := c.Arena.Cap() / (c.Threads * 16); chunk > most {
			chunk = most
		}
	}
	return chunk
}

// NewReserver builds one worker slot's allocation handle per the config:
// chunk size from ReserveChunk, free-list recycling per NoRecycle. Every
// runtime constructor calls this once per thread so tx.Alloc/tx.Free share
// one policy across protocols.
func (c Config) NewReserver() *mem.Reserver {
	r := c.Arena.NewReserver(c.ReserveChunk())
	r.SetRecycle(!c.NoRecycle)
	return r
}

// RetrySignal is the panic value used to unwind an aborted attempt. It is
// exported so runtime subpackages (tl2, htmsim, hybrid) can raise it; the
// application-facing way to raise it is Tx.Restart.
type RetrySignal struct{}

// AllocFailure is the panic value that unwinds an atomic block after a real
// (non-injected) arena capacity miss: the attempt first aborts normally
// with CauseAllocExhausted — releasing protocol resources and keeping the
// taxonomy closed — then the retry loop, seeing AbortInfo.Err set, raises
// AllocFailure instead of retrying (exhaustion does not heal by optimism).
// Attempt does NOT recover it: it propagates out of Atomic/AtomicAt to the
// harness and the serving mode, which convert it into an error wrapping
// mem.ErrArenaFull. Err is that error.
type AllocFailure struct{ Err error }

// Error lets AllocFailure read as an error in contexts that stringify
// recovered panic values.
func (f AllocFailure) Error() string { return f.Err.Error() }

// Retry aborts the current attempt. It never returns.
func Retry() { panic(RetrySignal{}) }

// Attempt runs fn(tx), converting a retry panic into ok=false. Any other
// panic propagates.
func Attempt(tx Tx, fn func(Tx)) (ok bool) {
	defer func() {
		r := recover()
		switch {
		case r == nil:
			ok = true
		case isRetry(r):
			ok = false
		default:
			panic(r)
		}
	}()
	fn(tx)
	return true
}

func isRetry(r any) bool {
	_, ok := r.(RetrySignal)
	return ok
}

// Float helpers over the Mem contract: several applications store float64
// bit patterns in arena words.

// LoadF64 reads a float64 stored at a.
func LoadF64(m Mem, a mem.Addr) float64 { return mem.W2F(m.Load(a)) }

// StoreF64 writes a float64 at a.
func StoreF64(m Mem, a mem.Addr, f float64) { m.Store(a, mem.F2W(f)) }

// LoadInt reads a signed integer stored at a.
func LoadInt(m Mem, a mem.Addr) int64 { return int64(m.Load(a)) }

// StoreInt writes a signed integer at a.
func StoreInt(m Mem, a mem.Addr, v int64) { m.Store(a, uint64(v)) }

// AtomicTimer wraps the common bookkeeping every runtime performs around an
// atomic block: attempt loop timing and commit/abort accounting. Runtime
// implementations call Begin/Commit once per block and Abort per failed
// attempt.
type AtomicTimer struct {
	start time.Time
}

// BeginBlock starts timing an atomic block.
func (t *AtomicTimer) BeginBlock() { t.start = time.Now() }

// EndBlock returns the elapsed wall time of the block.
func (t *AtomicTimer) EndBlock() time.Duration { return time.Since(t.start) }
