package tm

import (
	"fmt"
	"sync"
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
)

func TestBlockRegistry(t *testing.T) {
	a := NewBlock("block-test/a")
	b := NewBlock("block-test/b")
	if a == b || a == NoBlock || b == NoBlock {
		t.Fatalf("ids not distinct: a=%d b=%d", a, b)
	}
	if again := NewBlock("block-test/a"); again != a {
		t.Fatalf("re-registration not idempotent: %d then %d", a, again)
	}
	if got := BlockName(a); got != "block-test/a" {
		t.Fatalf("BlockName(a) = %q", got)
	}
	if got := BlockName(NoBlock); got != "(unattributed)" {
		t.Fatalf("BlockName(NoBlock) = %q", got)
	}
	if got := BlockName(BlockID(1 << 20)); got != "" {
		t.Fatalf("unknown id named %q", got)
	}
	if got := NewBlock(""); got != NoBlock {
		t.Fatalf("empty name = %d, want NoBlock", got)
	}
	if n := NumBlocks(); n < 3 {
		t.Fatalf("NumBlocks() = %d", n)
	}
}

func TestBlockRegistryConcurrent(t *testing.T) {
	const workers = 8
	ids := make([][]BlockID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ids[w] = append(ids[w], NewBlock(fmt.Sprintf("block-test/conc-%d", i)))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range ids[w] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got id %d for name %d, worker 0 got %d",
					w, ids[w][i], i, ids[0][i])
			}
		}
	}
}

func TestRecordBlockAndMerge(t *testing.T) {
	blk := NewBlock("block-test/record")
	var a, b ThreadStats
	a.RecordBlock(blk, "stm-norec-ro", 2, 10, 1)
	a.RecordBlock(blk, "stm-norec-ro", 0, 20, 3)
	b.RecordBlock(blk, "stm-lazy", 1, 30, 2)
	b.RecordBlock(NoBlock, "stm-lazy", 0, 5, 0)

	agg := Aggregate([]*ThreadStats{&a, &b})
	rows := agg.Blocks()
	byName := map[string]BlockRow{}
	for _, row := range rows {
		byName[row.Name] = row
	}
	row, ok := byName["block-test/record"]
	if !ok {
		t.Fatalf("no row for the recorded block: %v", rows)
	}
	if row.Commits != 3 || row.Aborts != 3 || row.Loads != 60 || row.Stores != 6 {
		t.Fatalf("row = %+v", row.BlockStats)
	}
	if got := row.MeanLoads(); got != 20 {
		t.Fatalf("MeanLoads = %v", got)
	}
	if got := row.MeanStores(); got != 2 {
		t.Fatalf("MeanStores = %v", got)
	}
	if res := row.Residency(); res["stm-norec-ro"] != 2 || res["stm-lazy"] != 1 {
		t.Fatalf("residency = %v", res)
	}
	un, ok := byName["(unattributed)"]
	if !ok || un.Commits != 1 {
		t.Fatalf("unattributed row = %+v (ok=%v)", un.BlockStats, ok)
	}
	// Source records must be untouched by aggregation.
	if a.Blocks[blk].Commits != 2 || b.Blocks[blk].Commits != 1 {
		t.Fatalf("aggregation mutated sources: %d / %d", a.Blocks[blk].Commits, b.Blocks[blk].Commits)
	}
}

// TestSeqRecordsBlocks pins the end-to-end flow on the simplest runtime:
// AtomicAt attributes, Atomic lands on (unattributed), and per-block totals
// sum to the aggregate commit count.
func TestSeqRecordsBlocks(t *testing.T) {
	blk := NewBlock("block-test/seq")
	sys := mustSeq(t, 1)
	th := sys.Thread(0)
	a := sys.Arena().Alloc(1)
	for i := 0; i < 5; i++ {
		th.AtomicAt(blk, func(tx Tx) { tx.Store(a, tx.Load(a)+1) })
	}
	th.Atomic(func(tx Tx) { tx.Store(a, tx.Load(a)+1) })

	st := sys.Stats()
	var sum uint64
	var found bool
	for _, row := range st.Blocks() {
		sum += row.Commits
		if row.Name == "block-test/seq" {
			found = true
			if row.Commits != 5 || row.Residency()["seq"] != 5 {
				t.Fatalf("block row = %+v", row.BlockStats)
			}
		}
	}
	if !found {
		t.Fatalf("no row for the annotated block: %+v", st.Blocks())
	}
	if sum != st.Total.Commits {
		t.Fatalf("per-block commits sum to %d, aggregate says %d", sum, st.Total.Commits)
	}
}

func mustSeq(t *testing.T, threads int) *Seq {
	t.Helper()
	sys, err := NewSeq(Config{Arena: mem.NewArena(1 << 10), Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
