// Package trace is the observability layer under the TM runtimes: the
// closed abort-cause taxonomy every runtime stamps its aborts with, the
// per-thread top-K conflict sketches behind the "hottest addresses" table,
// and the sampled per-thread event rings behind the Chrome-trace exporter.
// It sits below package tm (it imports nothing from the TM layer) so the
// runtime subpackages and tm itself can both use it; tm re-exports the
// application-facing names (tm.AbortCause, tm.ConflictRow, ...).
package trace

// AbortCause classifies why one transactional attempt failed. The taxonomy
// is closed: every abort site in every runtime stamps exactly one cause, and
// the conformance suite asserts that per-cause sums equal the aggregate
// abort counter with CauseUnknown at zero — an unknown-cause abort is a
// runtime bug, not a reporting gap.
type AbortCause uint8

const (
	// CauseUnknown is the reset value; a nonzero counter under it means an
	// abort site forgot to stamp a cause.
	CauseUnknown AbortCause = iota
	// CauseReadValidation is a read-set validation failure: a TL2 load or
	// commit found a stripe versioned past the transaction's snapshot.
	CauseReadValidation
	// CauseStripeLockBusy is a TL2 reader aborted at a stripe lock held by a
	// committing (lazy) or running (eager) writer.
	CauseStripeLockBusy
	// CauseSeqChanged is a NOrec value-validation failure: the global
	// sequence lock moved and some read-set value no longer matches memory.
	CauseSeqChanged
	// CauseWriteWrite is a writer-writer collision: a TL2 store or commit
	// lost a stripe to another writer (lock held, stale version, or a lost
	// acquisition race).
	CauseWriteWrite
	// CauseSignatureConflict is a Bloom-signature hit on the hybrid systems
	// or the eager HTM's overflow path (conservative: includes the false
	// positives the paper attributes to signatures).
	CauseSignatureConflict
	// CauseHTMConflict is a precise line conflict on the simulated HTMs:
	// committer-wins arbitration (lazy) or requester-loses directory
	// conflicts (eager).
	CauseHTMConflict
	// CauseHTMCapacity is a speculative-buffer overflow on the lazy HTM
	// (capacity or associativity); the next attempt runs serialized.
	CauseHTMCapacity
	// CauseCMKill is an abort forced by arbitration: a higher-priority
	// transaction flagged this one (the eager HTM's priority escape).
	CauseCMKill
	// CauseExplicitRetry is an application-raised Tx.Restart (TM_RESTART).
	CauseExplicitRetry
	// CauseMVVersionMissing is a multi-version ring overflow: a snapshot
	// reader's begin timestamp predates every version of a location still
	// retained in its stripe's bounded ring (stm-mv; the ring is sized by
	// tm.Config.MVVersions). The retry begins with a fresh snapshot.
	CauseMVVersionMissing
	// CauseKilledForIrrevocable is an attempt that aborted itself to yield
	// to a starving transaction escalating to irrevocable mode (the
	// guaranteed-progress fallback; see tm.Config.StarveAfter). The
	// escalator drains in-flight peers, runs alone, and must commit; the
	// displaced victims retry once it releases the irrevocability token.
	CauseKilledForIrrevocable
	// CauseAllocExhausted is a tx.Alloc that found the arena (and the
	// thread's recycling free lists) out of capacity. The attempt aborts
	// once with this cause for the taxonomy's sake, then the block unwinds
	// with a typed failure (tm.AllocFailure → mem.ErrArenaFull) instead of
	// retrying — exhaustion is not cured by optimism. The chaos failpoint
	// "alloc-exhaust" injects the abort spuriously (without the unwind), so
	// the recovery path is deterministically testable.
	CauseAllocExhausted

	// NumCauses bounds the per-cause counter arrays.
	NumCauses
)

var causeNames = [NumCauses]string{
	CauseUnknown:              "unknown",
	CauseReadValidation:       "read-validation",
	CauseStripeLockBusy:       "stripe-lock-busy",
	CauseSeqChanged:           "seq-changed",
	CauseWriteWrite:           "write-write",
	CauseSignatureConflict:    "signature-conflict",
	CauseHTMConflict:          "htm-conflict",
	CauseHTMCapacity:          "htm-capacity",
	CauseCMKill:               "cm-kill",
	CauseExplicitRetry:        "explicit-retry",
	CauseMVVersionMissing:     "mv-version-missing",
	CauseKilledForIrrevocable: "killed-for-irrevocable",
	CauseAllocExhausted:       "alloc-exhausted",
}

// String returns the registry name of the cause (e.g. "write-write").
func (c AbortCause) String() string {
	if c < NumCauses {
		return causeNames[c]
	}
	return "invalid"
}

// CauseNames returns every cause name in enum order, CauseUnknown first.
func CauseNames() []string {
	names := make([]string, NumCauses)
	copy(names, causeNames[:])
	return names
}
