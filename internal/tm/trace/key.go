package trace

import "fmt"

// A conflict Key names the contended location of an abort in one word, so
// the hot-path recording (sketch slot compare, ring word) never touches a
// string or an interface. The top two bits tag the granularity the runtime
// detects conflicts at — a word address (NOrec value validation), a TL2
// stripe index, or a 32-byte line (the HTMs and hybrids) — and the low 62
// bits carry the index. Key 0 ("no location") is reserved: conflict points
// with no identifiable location (e.g. a pending-abort flag polled far from
// the conflicting access) record nothing in the heatmap.
type Key uint64

const (
	keyTagShift      = 62
	keyTagAddr   Key = 1 << keyTagShift
	keyTagStripe Key = 2 << keyTagShift
	keyTagLine   Key = 3 << keyTagShift
	keyIndexMask Key = 1<<keyTagShift - 1
)

// AddrKey tags a word address.
func AddrKey(a uint64) Key { return keyTagAddr | (Key(a) & keyIndexMask) }

// StripeKey tags a TL2 lock-table stripe index.
func StripeKey(idx uint64) Key { return keyTagStripe | (Key(idx) & keyIndexMask) }

// LineKey tags a 32-byte conflict-detection line.
func LineKey(l uint64) Key { return keyTagLine | (Key(l) & keyIndexMask) }

// Index returns the untagged location index.
func (k Key) Index() uint64 { return uint64(k & keyIndexMask) }

// String renders the key for reports: "addr 0x2a", "stripe 17", "line 0x3".
func (k Key) String() string {
	switch k & ^keyIndexMask {
	case keyTagAddr:
		return fmt.Sprintf("addr 0x%x", k.Index())
	case keyTagStripe:
		return fmt.Sprintf("stripe %d", k.Index())
	case keyTagLine:
		return fmt.Sprintf("line 0x%x", k.Index())
	default:
		return "(none)"
	}
}
