package trace

import "sort"

// SketchSlots is the fixed slot count of a ConflictSketch. Space-saving
// guarantees that any location responsible for more than 1/SketchSlots of
// the recorded conflicts is present in the sketch, which is far finer than
// a heatmap needs — STAMP conflict mass concentrates on a handful of
// structures (queue heads, tree roots, counters).
const SketchSlots = 32

// ConflictSketch is a fixed-size space-saving top-K sketch over conflict
// keys. Each worker owns one inside its ThreadStats and records into it
// without synchronization (the same single-writer discipline as every other
// per-thread counter); sketches are merged after the team joins. Recording
// is a linear scan over at most SketchSlots inline slots — no allocation,
// no hashing, no pointers — so it is safe on the abort path of every
// runtime.
type ConflictSketch struct {
	used  int
	slots [SketchSlots]sketchSlot
}

type sketchSlot struct {
	key   Key
	count uint64 // space-saving overestimate (inherits the evicted minimum)
	// causes attributes the conflicts recorded since the key (last) entered
	// the sketch; their sum can undercut count by the inherited error.
	causes [NumCauses]uint64
	// Blamed block: Boyer–Moore majority vote over the enemy block IDs seen
	// at this key (0 = unattributed / unknown owner).
	blameID    int32
	blameVotes uint64
}

// Record accounts one conflict at key with the given cause, optionally
// blaming the enemy transaction's block (blame 0 = unknown). Key 0 is
// ignored.
func (s *ConflictSketch) Record(key Key, cause AbortCause, blame int32) {
	if key == 0 {
		return
	}
	min := 0
	for i := 0; i < s.used; i++ {
		if s.slots[i].key == key {
			s.slots[i].bump(1, cause, blame, 1)
			return
		}
		if s.slots[i].count < s.slots[min].count {
			min = i
		}
	}
	if s.used < SketchSlots {
		i := s.used
		s.used++
		s.slots[i] = sketchSlot{key: key}
		s.slots[i].bump(1, cause, blame, 1)
		return
	}
	// Space-saving eviction: the new key takes the minimum slot and
	// inherits its count (the classical overestimate bound).
	inherited := s.slots[min].count
	s.slots[min] = sketchSlot{key: key, count: inherited}
	s.slots[min].bump(1, cause, blame, 1)
}

func (sl *sketchSlot) bump(n uint64, cause AbortCause, blame int32, votes uint64) {
	sl.count += n
	sl.causes[cause] += n
	if blame == 0 {
		return
	}
	switch {
	case sl.blameVotes == 0:
		sl.blameID, sl.blameVotes = blame, votes
	case sl.blameID == blame:
		sl.blameVotes += votes
	case sl.blameVotes <= votes:
		sl.blameID, sl.blameVotes = blame, votes-sl.blameVotes
	default:
		sl.blameVotes -= votes
	}
}

// Merge folds o into s (aggregation after the team joins; both sketches are
// quiescent). Shared keys combine exactly; distinct keys compete through
// the same space-saving eviction as Record.
func (s *ConflictSketch) Merge(o *ConflictSketch) {
	for i := 0; i < o.used; i++ {
		s.mergeSlot(&o.slots[i])
	}
}

func (s *ConflictSketch) mergeSlot(in *sketchSlot) {
	min := 0
	for i := 0; i < s.used; i++ {
		if s.slots[i].key == in.key {
			s.slots[i].count += in.count
			for c := range in.causes {
				s.slots[i].causes[c] += in.causes[c]
			}
			s.slots[i].bump(0, CauseUnknown, in.blameID, in.blameVotes)
			return
		}
		if s.slots[i].count < s.slots[min].count {
			min = i
		}
	}
	if s.used < SketchSlots {
		s.slots[s.used] = *in
		s.used++
		return
	}
	if s.slots[min].count < in.count {
		s.slots[min] = *in
	}
}

// ConflictRow is one entry of the aggregated heatmap: a contended location,
// its (over)estimated conflict count, the cause mix recorded against it,
// and the majority-blamed enemy block (0 when no owner was identifiable).
type ConflictRow struct {
	Key    Key
	Count  uint64
	Causes [NumCauses]uint64
	Blame  int32
}

// Top returns the sketch's rows, hottest first (ties broken by key for
// deterministic output).
func (s *ConflictSketch) Top() []ConflictRow {
	rows := make([]ConflictRow, 0, s.used)
	for i := 0; i < s.used; i++ {
		sl := &s.slots[i]
		rows = append(rows, ConflictRow{Key: sl.key, Count: sl.count, Causes: sl.causes, Blame: sl.blameID})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Key < rows[j].Key
	})
	return rows
}
