package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteChrome renders events as a Chrome trace-event JSON array (the format
// Perfetto and chrome://tracing load): one "B"/"E" duration pair per traced
// block on a per-thread track, plus instant events for aborts (with cause
// and conflict key) and CM waits. blockName resolves block IDs to display
// names; nil falls back to "block<id>". Timestamps are microseconds from
// the tracer epoch.
func WriteChrome(w io.Writer, events []Event, blockName func(int32) string) error {
	if blockName == nil {
		blockName = func(id int32) string { return "block" + strconv.Itoa(int(id)) }
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	first := true
	for _, ev := range events {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		us := float64(ev.TimeNs) / 1e3
		name := blockName(ev.Block)
		if name == "" {
			name = "block" + strconv.Itoa(int(ev.Block))
		}
		switch ev.Kind {
		case EvBegin:
			fmt.Fprintf(bw, `{"name":%q,"ph":"B","ts":%.3f,"pid":1,"tid":%d}`,
				name, us, ev.Thread)
		case EvCommit:
			fmt.Fprintf(bw, `{"name":%q,"ph":"E","ts":%.3f,"pid":1,"tid":%d}`,
				name, us, ev.Thread)
		case EvAbort:
			fmt.Fprintf(bw, `{"name":"abort","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":%d,"args":{"block":%q,"cause":%q,"at":%q}}`,
				us, ev.Thread, name, ev.Cause.String(), ev.Key.String())
		case EvWait:
			fmt.Fprintf(bw, `{"name":"cm-wait","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":%d,"args":{"block":%q}}`,
				us, ev.Thread, name)
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}
