package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCauseNames(t *testing.T) {
	names := CauseNames()
	if len(names) != int(NumCauses) {
		t.Fatalf("CauseNames returned %d names, want %d", len(names), NumCauses)
	}
	seen := make(map[string]bool)
	for c := AbortCause(0); c < NumCauses; c++ {
		name := c.String()
		if name == "" || name == "invalid" {
			t.Fatalf("cause %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate cause name %q", name)
		}
		seen[name] = true
		if names[c] != name {
			t.Fatalf("CauseNames()[%d] = %q, want %q", c, names[c], name)
		}
	}
	if names[0] != "unknown" {
		t.Fatalf("cause 0 = %q, want unknown", names[0])
	}
	if AbortCause(200).String() != "invalid" {
		t.Fatalf("out-of-range cause should stringify as invalid")
	}
}

func TestKeyTags(t *testing.T) {
	cases := []struct {
		key  Key
		idx  uint64
		text string
	}{
		{AddrKey(42), 42, "addr 0x2a"},
		{StripeKey(17), 17, "stripe 17"},
		{LineKey(3), 3, "line 0x3"},
		{0, 0, "(none)"},
	}
	for _, c := range cases {
		if c.key.Index() != c.idx {
			t.Errorf("%v.Index() = %d, want %d", c.key, c.key.Index(), c.idx)
		}
		if c.key.String() != c.text {
			t.Errorf("key string = %q, want %q", c.key.String(), c.text)
		}
	}
	if AddrKey(7) == StripeKey(7) || StripeKey(7) == LineKey(7) {
		t.Fatalf("tags must distinguish equal indices")
	}
}

func TestSketchRecordAndTop(t *testing.T) {
	var s ConflictSketch
	for i := 0; i < 10; i++ {
		s.Record(AddrKey(1), CauseWriteWrite, 3)
	}
	for i := 0; i < 5; i++ {
		s.Record(AddrKey(2), CauseReadValidation, 0)
	}
	s.Record(AddrKey(3), CauseStripeLockBusy, 7)
	s.Record(0, CauseWriteWrite, 1) // key 0 is ignored

	rows := s.Top()
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0].Key != AddrKey(1) || rows[0].Count != 10 {
		t.Fatalf("hottest row = %+v, want addr 1 x10", rows[0])
	}
	if rows[0].Causes[CauseWriteWrite] != 10 || rows[0].Blame != 3 {
		t.Fatalf("row 0 cause/blame = %+v", rows[0])
	}
	if rows[1].Key != AddrKey(2) || rows[1].Blame != 0 {
		t.Fatalf("row 1 = %+v, want addr 2 unblamed", rows[1])
	}
}

func TestSketchEviction(t *testing.T) {
	var s ConflictSketch
	// Fill every slot with count-2 keys, then hammer one new key: it must
	// evict a minimum slot and, by the space-saving bound, end with
	// count >= its true frequency.
	for i := 0; i < SketchSlots; i++ {
		s.Record(AddrKey(uint64(100+i)), CauseWriteWrite, 0)
		s.Record(AddrKey(uint64(100+i)), CauseWriteWrite, 0)
	}
	const hot = 50
	for i := 0; i < hot; i++ {
		s.Record(AddrKey(7), CauseSeqChanged, 0)
	}
	rows := s.Top()
	if rows[0].Key != AddrKey(7) {
		t.Fatalf("hot key missing after eviction: top = %+v", rows[0])
	}
	if rows[0].Count < hot {
		t.Fatalf("space-saving count %d undercuts true frequency %d", rows[0].Count, hot)
	}
	if got := rows[0].Causes[CauseSeqChanged]; got != hot {
		t.Fatalf("cause counter = %d, want %d", got, hot)
	}
}

func TestSketchMerge(t *testing.T) {
	var a, b ConflictSketch
	for i := 0; i < 4; i++ {
		a.Record(AddrKey(1), CauseWriteWrite, 2)
	}
	a.Record(AddrKey(9), CauseReadValidation, 0)
	for i := 0; i < 6; i++ {
		b.Record(AddrKey(1), CauseStripeLockBusy, 2)
	}
	b.Record(AddrKey(5), CauseHTMConflict, 4)

	a.Merge(&b)
	rows := a.Top()
	if rows[0].Key != AddrKey(1) || rows[0].Count != 10 {
		t.Fatalf("merged hot row = %+v, want addr 1 x10", rows[0])
	}
	if rows[0].Causes[CauseWriteWrite] != 4 || rows[0].Causes[CauseStripeLockBusy] != 6 {
		t.Fatalf("merged cause mix = %+v", rows[0].Causes)
	}
	if rows[0].Blame != 2 {
		t.Fatalf("merged blame = %d, want 2", rows[0].Blame)
	}
	if len(rows) != 3 {
		t.Fatalf("merged row count = %d, want 3", len(rows))
	}
}

func TestRingSamplingAndWrap(t *testing.T) {
	r := NewRing(4, 2) // 4 slots, every 2nd block
	for block := int32(1); block <= 4; block++ {
		r.SampleBlock(0, block)
		r.Emit(EvCommit, CauseUnknown, 0, block, 0)
	}
	evs := r.Snapshot()
	// Blocks 1 and 3 are sampled (4 events); the ring holds exactly 4.
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(evs), evs)
	}
	wantBlocks := []int32{1, 1, 3, 3}
	wantKinds := []EventKind{EvBegin, EvCommit, EvBegin, EvCommit}
	for i, ev := range evs {
		if ev.Block != wantBlocks[i] || ev.Kind != wantKinds[i] {
			t.Fatalf("event %d = %+v, want block %d kind %v", i, ev, wantBlocks[i], wantKinds[i])
		}
	}
	// Two more sampled blocks must overwrite the oldest lap.
	for block := int32(5); block <= 6; block++ {
		r.SampleBlock(0, block)
		r.Emit(EvAbort, CauseWriteWrite, 0, block, AddrKey(9))
	}
	evs = r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("after wrap: got %d events, want 4", len(evs))
	}
	if evs[0].Block != 3 || evs[3].Block != 5 && evs[3].Block != 6 {
		t.Fatalf("after wrap: unexpected window %+v", evs)
	}
	for _, ev := range evs {
		if ev.Kind == EvAbort && (ev.Cause != CauseWriteWrite || ev.Key != AddrKey(9)) {
			t.Fatalf("abort event lost cause/key: %+v", ev)
		}
	}
}

func TestRingNilAndDisabled(t *testing.T) {
	var r *Ring
	r.SampleBlock(0, 1) // must not panic
	r.Emit(EvCommit, CauseUnknown, 0, 1, 0)
	if evs := r.Snapshot(); evs != nil {
		t.Fatalf("nil ring snapshot = %+v, want nil", evs)
	}
}

// TestRingConcurrentSnapshot is the -race tracer stress: one owner writing
// flat out while other goroutines snapshot mid-run. The seqlock must keep
// the race detector quiet and every decoded event well-formed.
func TestRingConcurrentSnapshot(t *testing.T) {
	r := NewRing(64, 1)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, ev := range r.Snapshot() {
					if ev.Kind < EvBegin || ev.Kind > EvWait {
						panic("torn event escaped the seqlock")
					}
				}
			}
		}()
	}
	for block := int32(1); block <= 5000; block++ {
		r.SampleBlock(3, block)
		r.Emit(EvAbort, CauseHTMConflict, 3, block, LineKey(uint64(block)))
		r.Emit(EvCommit, CauseUnknown, 3, block, 0)
	}
	close(done)
	wg.Wait()
	for _, ev := range r.Snapshot() {
		if ev.Thread != 3 {
			t.Fatalf("event thread = %d, want 3", ev.Thread)
		}
	}
}

func TestWriteChrome(t *testing.T) {
	r := NewRing(16, 1)
	r.SampleBlock(1, 7)
	r.Emit(EvAbort, CauseSeqChanged, 1, 7, AddrKey(33))
	r.Emit(EvWait, CauseUnknown, 1, 7, 0)
	r.Emit(EvCommit, CauseUnknown, 1, 7, 0)

	var sb strings.Builder
	err := WriteChrome(&sb, r.Snapshot(), func(id int32) string { return "deposit" })
	if err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	out := sb.String()
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(parsed) != 4 {
		t.Fatalf("got %d records, want 4: %s", len(parsed), out)
	}
	if parsed[0]["ph"] != "B" || parsed[0]["name"] != "deposit" {
		t.Fatalf("first record = %+v, want B/deposit", parsed[0])
	}
	if parsed[3]["ph"] != "E" {
		t.Fatalf("last record = %+v, want E", parsed[3])
	}
	abort := parsed[1]
	args, _ := abort["args"].(map[string]any)
	if abort["ph"] != "i" || args["cause"] != "seq-changed" || args["at"] != "addr 0x21" {
		t.Fatalf("abort record = %+v", abort)
	}
}
