package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// EventKind discriminates the tracer's event stream.
type EventKind uint8

const (
	// EvBegin marks the first attempt of an atomic block (re-executions
	// after an abort do not re-emit it, so Begin/Commit pairs bracket the
	// whole block including its retries).
	EvBegin EventKind = iota + 1
	// EvAbort marks one failed attempt, stamped with its cause and key.
	EvAbort
	// EvCommit marks the successful attempt completing the block.
	EvCommit
	// EvWait marks a contention-manager delay (backoff spin).
	EvWait
)

var kindNames = [...]string{"", "begin", "abort", "commit", "wait"}

// String returns "begin", "abort", "commit", or "wait".
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// Event is one decoded tracer record.
type Event struct {
	TimeNs int64 // monotonic, relative to the package epoch (process start)
	Kind   EventKind
	Cause  AbortCause // EvAbort only
	Thread int
	Block  int32
	Key    Key // conflict location for EvAbort (0 when none)
}

// epoch anchors all tracer timestamps so now() is a plain time.Since —
// monotonic and allocation-free.
var epoch = time.Now()

func now() int64 { return int64(time.Since(epoch)) }

// ringSlot is one published event: a per-slot sequence word guarding three
// payload words. The writer publishes seq = 2*gen+1 (busy), fills the
// payload, then seq = 2*gen+2 (done); a reader that sees an odd or changed
// sequence discards the slot. gen = i/len(slots) disambiguates wraparound,
// so a torn read across lap boundaries is detected, never misdecoded.
type ringSlot struct {
	seq    atomic.Uint64
	ts     atomic.Int64
	packed atomic.Uint64 // kind<<56 | cause<<48 | thread<<32 | uint32(block)
	key    atomic.Uint64
}

// Ring is a per-thread fixed-size event buffer. Exactly one goroutine (the
// owning worker) writes; Snapshot may run concurrently from any goroutine
// and is race-detector-clean thanks to the per-slot seqlock. When the ring
// wraps, the oldest events are overwritten — a tracer is a tail window, not
// a log. A nil *Ring is the "tracing off" state: every method no-ops.
type Ring struct {
	sample uint64 // record every sample-th block (1 = all)
	count  uint64 // blocks seen, for the sampling decision (owner-only)
	open   bool   // current block is being recorded (owner-only)
	next   uint64 // next slot index, monotonically increasing (owner-only)
	slots  []ringSlot
}

// NewRing returns a ring of n slots recording every sample-th atomic block
// (sample <= 1 records all). n is rounded up to a power of two.
func NewRing(n, sample int) *Ring {
	if n < 2 {
		n = 2
	}
	size := 2
	for size < n {
		size *= 2
	}
	if sample < 1 {
		sample = 1
	}
	return &Ring{sample: uint64(sample), slots: make([]ringSlot, size)}
}

// SampleBlock decides whether the block starting now is traced, and if so
// emits its EvBegin. Call once per atomic block, before the retry loop.
func (r *Ring) SampleBlock(thread int, block int32) {
	if r == nil {
		return
	}
	r.count++
	r.open = (r.count-1)%r.sample == 0
	if r.open {
		r.emit(EvBegin, CauseUnknown, thread, block, 0)
	}
}

// Emit records one event for the current block if it is being traced.
func (r *Ring) Emit(kind EventKind, cause AbortCause, thread int, block int32, key Key) {
	if r == nil || !r.open {
		return
	}
	r.emit(kind, cause, thread, block, key)
}

func (r *Ring) emit(kind EventKind, cause AbortCause, thread int, block int32, key Key) {
	i := r.next
	r.next++
	mask := uint64(len(r.slots) - 1)
	sl := &r.slots[i&mask]
	gen := i / uint64(len(r.slots))
	sl.seq.Store(2*gen + 1)
	sl.ts.Store(now())
	sl.packed.Store(uint64(kind)<<56 | uint64(cause)<<48 |
		uint64(uint16(thread))<<32 | uint64(uint32(block)))
	sl.key.Store(uint64(key))
	sl.seq.Store(2*gen + 2)
}

// Snapshot decodes the ring's currently readable events, oldest first. It
// is safe against a concurrently writing owner: slots caught mid-write (or
// lapped during the read) are skipped.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	evs := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		sl := &r.slots[i]
		seq1 := sl.seq.Load()
		if seq1 == 0 || seq1%2 == 1 {
			continue
		}
		ts := sl.ts.Load()
		packed := sl.packed.Load()
		key := sl.key.Load()
		if sl.seq.Load() != seq1 {
			continue
		}
		evs = append(evs, Event{
			TimeNs: ts,
			Kind:   EventKind(packed >> 56),
			Cause:  AbortCause(packed >> 48),
			Thread: int(uint16(packed >> 32)),
			Block:  int32(uint32(packed)),
			Key:    Key(key),
		})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].TimeNs < evs[j].TimeNs })
	return evs
}
