package server

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestLatIndexRoundTrip: every value must land in a bucket whose range
// contains it, and bucket upper bounds must be monotonically increasing.
func TestLatIndexRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1 << 30, 1 << 40, math.MaxUint64}
	for _, v := range values {
		idx := latIndex(v)
		if idx < 0 || idx >= latBuckets {
			t.Fatalf("latIndex(%d) = %d out of range", v, idx)
		}
		if u := latUpper(idx); v > u && idx < latBuckets-1 {
			t.Fatalf("latIndex(%d) = %d but bucket upper bound is %d", v, idx, u)
		}
	}
	prev := uint64(0)
	for i := 1; i < latBuckets; i++ {
		u := latUpper(i)
		if u <= prev {
			t.Fatalf("latUpper not monotone at %d: %d <= %d", i, u, prev)
		}
		prev = u
	}
}

// TestLatHistQuantiles: the reported quantiles of a uniform stream must be
// within the histogram's ~3% relative-error bound.
func TestLatHistQuantiles(t *testing.T) {
	var h LatHist
	const n = 100000
	for i := 1; i <= n; i++ {
		h.Add(time.Duration(i) * time.Microsecond)
	}
	s := h.Summary()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	check := func(name string, got uint64, wantNs float64) {
		t.Helper()
		rel := math.Abs(float64(got)-wantNs) / wantNs
		if rel > 0.04 {
			t.Errorf("%s = %d, want ~%.0f (rel err %.3f)", name, got, wantNs, rel)
		}
		// Conservative: a quantile must never under-report.
		if float64(got) < wantNs*(1-1e-9) {
			t.Errorf("%s = %d under-reports %.0f", name, got, wantNs)
		}
	}
	check("p50", s.P50Ns, 0.50*n*1000)
	check("p99", s.P99Ns, 0.99*n*1000)
	check("p999", s.P999Ns, 0.999*n*1000)
	if s.MaxNs != n*1000 {
		t.Errorf("max = %d, want %d", s.MaxNs, n*1000)
	}
	if s.P999Ns > s.MaxNs {
		t.Errorf("p999 %d exceeds max %d", s.P999Ns, s.MaxNs)
	}
	wantMean := float64(n+1) / 2 * 1000
	if math.Abs(s.MeanNs-wantMean)/wantMean > 1e-9 {
		t.Errorf("mean = %f, want %f", s.MeanNs, wantMean)
	}
}

// TestLatHistEmpty: an untouched histogram summarizes to zeros.
func TestLatHistEmpty(t *testing.T) {
	var h LatHist
	if s := h.Summary(); s != (LatSummary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

// TestLatHistNegativeClamp: negative durations (clock steps) clamp to zero
// instead of corrupting a bucket index.
func TestLatHistNegativeClamp(t *testing.T) {
	var h LatHist
	h.Add(-time.Second)
	s := h.Summary()
	if s.Count != 1 || s.P50Ns != 0 || s.MaxNs != 0 {
		t.Fatalf("negative observation mis-recorded: %+v", s)
	}
}

// TestLatHistConcurrent: concurrent Adds must not lose observations (run
// under -race this also proves the wait-free claim).
func TestLatHistConcurrent(t *testing.T) {
	var h LatHist
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Add(time.Duration(w*each+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*each {
		t.Fatalf("lost observations: %d of %d", got, workers*each)
	}
}
