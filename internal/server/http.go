package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"github.com/stamp-go/stamp/internal/apps/vacation"
)

// apiRequest is the JSON body of the POST operation endpoints.
type apiRequest struct {
	Customer int               `json:"customer,omitempty"`
	Items    []vacation.Item   `json:"items,omitempty"`
	Updates  []vacation.Update `json:"updates,omitempty"`
}

// apiResponse is the JSON reply of the POST operation endpoints.
type apiResponse struct {
	Op        string `json:"op"`
	Value     uint64 `json:"value,omitempty"`
	Torn      uint64 `json:"torn,omitempty"`
	LatencyNs int64  `json:"latency_ns"`
	Error     string `json:"error,omitempty"`
}

// Handler exposes the server over HTTP with JSON bodies:
//
//	POST /reserve  {"customer": 7, "items": [{"Typ":0,"ID":12}, ...]}
//	POST /cancel   {"customer": 7}
//	POST /update   {"updates": [{"Typ":1,"ID":3,"Add":true,"Num":2,"Price":90}]}
//	POST /query    {"items": [{"Typ":2,"ID":5}, ...]}
//	GET  /stats    live Gauges (always safe; server-side atomics only)
//	GET  /healthz  200 while serving, 500 once the pool is halted
//
// Admission rejections, deadline misses, and arena-exhaustion failures
// (retry budget spent) map to 503 Service Unavailable with a Retry-After
// hint (shed load, retry after the epoch swap or queue drain completes); a
// halted pool maps to 500 on every endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	op := func(kind OpKind) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			var body apiRequest
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
				http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
				return
			}
			resp := s.Do(&Request{
				Op:       kind,
				Customer: body.Customer,
				Items:    body.Items,
				Updates:  body.Updates,
			})
			out := apiResponse{
				Op: kind.String(), Value: resp.Value, Torn: resp.Torn,
				LatencyNs: int64(resp.Latency),
			}
			status := http.StatusOK
			if resp.Err != nil {
				out.Error = resp.Err.Error()
				switch {
				case errors.Is(resp.Err, ErrQueueFull),
					errors.Is(resp.Err, ErrDeadline),
					errors.Is(resp.Err, ErrRetriesExhausted),
					errors.Is(resp.Err, ErrArenaFull):
					// Overload, not breakage: shed and invite a retry after
					// the epoch swap (or queue drain) completes.
					status = http.StatusServiceUnavailable
					w.Header().Set("Retry-After", "1")
				default:
					status = http.StatusInternalServerError
				}
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(out)
		}
	}
	mux.Handle("/reserve", op(OpReserve))
	mux.Handle("/cancel", op(OpCancel))
	mux.Handle("/update", op(OpUpdate))
	mux.Handle("/query", op(OpQuery))
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok\n"))
	})
	return mux
}
