package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stamp-go/stamp/internal/apps/vacation"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/tm"
)

// LoadOptions shapes one load-generation run against a Server.
type LoadOptions struct {
	// Clients is the number of concurrent request generators (0 = 4).
	Clients int
	// Rate is the total target arrival rate in requests/second across all
	// clients. Positive rates run OPEN LOOP: arrivals are scheduled on the
	// wall clock regardless of completions, so a saturated server sees
	// queue growth and rejections instead of the generator politely
	// slowing down (coordinated omission). 0 runs closed loop: each client
	// submits its next request when the previous one completes.
	Rate float64
	// Duration bounds the run (0 = 1s).
	Duration time.Duration
	// UserPct is the percentage of read-write requests that are
	// reservations; of the remainder, half cancel and half update
	// inventory — vacation's -u knob (0 = 90, vacation-high's; use -1 for
	// a literal 0).
	UserPct int
	// ROPct is the percentage of all requests that are read-only queries
	// (OpQuery), the serving-mode mix knob the batch suite lacks
	// (0 = all read-write; 100 = all queries).
	ROPct int
	// QueriesPerTx is the items examined per request — vacation's -n
	// (0 = 4, vacation-high's).
	QueriesPerTx int
	// QueryRangePct spans requests over this percentage of the records —
	// vacation's -q (0 = 60, vacation-high's).
	QueryRangePct int
	// Seed makes the generated request stream deterministic per client.
	Seed uint64
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Clients == 0 {
		o.Clients = 4
	}
	if o.Duration == 0 {
		o.Duration = time.Second
	}
	if o.UserPct == 0 {
		o.UserPct = 90
	}
	if o.UserPct < 0 {
		o.UserPct = 0
	}
	if o.QueriesPerTx == 0 {
		o.QueriesPerTx = 4
	}
	if o.QueryRangePct == 0 {
		o.QueryRangePct = 60
	}
	return o
}

// Validate reports every invalid field at once.
func (o LoadOptions) Validate() error {
	var errs []error
	bad := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if o.Clients < 0 {
		bad("clients must be >= 0 (0 = 4), got %d", o.Clients)
	}
	if o.Rate < 0 {
		bad("rate must be >= 0 (0 = closed loop), got %g", o.Rate)
	}
	if o.Duration < 0 {
		bad("duration must be >= 0 (0 = 1s), got %v", o.Duration)
	}
	if o.UserPct > 100 {
		bad("user pct must be <= 100, got %d", o.UserPct)
	}
	if o.ROPct < 0 || o.ROPct > 100 {
		bad("ro pct must be in [0, 100], got %d", o.ROPct)
	}
	if o.QueriesPerTx < 0 {
		bad("queries per tx must be >= 0 (0 = 4), got %d", o.QueriesPerTx)
	}
	if o.QueryRangePct < 0 || o.QueryRangePct > 100 {
		bad("query range pct must be in [0, 100], got %d", o.QueryRangePct)
	}
	return errors.Join(errs...)
}

// Report is one load run's outcome: admission accounting, client-observed
// latency percentiles (queue wait included) overall and per op, and the
// pool's transactional statistics.
type Report struct {
	Options LoadOptions
	Elapsed time.Duration

	Offered   uint64 // requests the generators tried to submit
	Completed uint64 // requests that returned success
	Rejected  uint64 // admission rejections (ErrQueueFull)
	Failed    uint64 // requests that returned any other error
	Lost      uint64 // accepted requests unanswered at drain timeout (wedged worker)
	Torn      uint64 // query snapshot violations observed (must stay 0)

	Latency LatSummary
	PerOp   map[string]LatSummary

	TM tm.Stats // pool statistics at drain (zero value if Lost > 0)
}

// Throughput is completed requests per second.
func (r Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// nextRequest draws one request from the configured op mix.
func nextRequest(r *rng.Rand, opt LoadOptions, records int) *Request {
	queryRange := records * opt.QueryRangePct / 100
	if queryRange < 1 {
		queryRange = 1
	}
	items := func() []vacation.Item {
		out := make([]vacation.Item, opt.QueriesPerTx)
		for i := range out {
			out[i] = vacation.Item{Typ: r.Intn(vacation.NumTypes), ID: r.Intn(queryRange) + 1}
		}
		return out
	}
	if r.Intn(100) < opt.ROPct {
		return &Request{Op: OpQuery, Items: items()}
	}
	action := r.Intn(100)
	switch {
	case action < opt.UserPct:
		return &Request{Op: OpReserve, Customer: r.Intn(queryRange) + 1, Items: items()}
	case action < opt.UserPct+(100-opt.UserPct)/2:
		return &Request{Op: OpCancel, Customer: r.Intn(queryRange) + 1}
	default:
		updates := make([]vacation.Update, opt.QueriesPerTx)
		for i := range updates {
			updates[i] = vacation.Update{
				Typ: r.Intn(vacation.NumTypes), ID: r.Intn(queryRange) + 1,
				Add: r.Intn(2) == 0, Num: r.Intn(5) + 1, Price: r.Intn(450) + 50,
			}
		}
		return &Request{Op: OpUpdate, Updates: updates}
	}
}

// RunLoad drives opt's request mix at the server and blocks until every
// accepted request has answered (or a drain timeout expires — a halted pool
// answers its queue fast, so a long drain means a wedged worker). The server
// stays open: callers own its lifecycle and may run several loads in
// sequence.
func RunLoad(s *Server, opt LoadOptions) (Report, error) {
	if err := opt.Validate(); err != nil {
		return Report{}, fmt.Errorf("server: invalid load options: %w", err)
	}
	opt = opt.withDefaults()
	rep := Report{Options: opt, PerOp: make(map[string]LatSummary)}

	var offered, rejected, accepted, collected atomic.Uint64
	responses := make(chan Response, 1024)

	// Collector: single goroutine owns the per-run histograms (the server's
	// own histograms are cumulative across runs). Every worker's response
	// send happens-before its receive here, and the collector's exit
	// happens-before RunLoad returns — that chain is what makes the final
	// TMStats read race-free.
	var latAll LatHist
	var latOp [numOps]LatHist
	var completed, failed, torn uint64
	stopCollect := make(chan struct{})
	collectorDone := make(chan struct{})
	collect := func(resp Response) {
		collected.Add(1)
		if resp.Err != nil {
			failed++
			return
		}
		completed++
		torn += resp.Torn
		latAll.Add(resp.Latency)
		if resp.Op >= 0 && resp.Op < numOps {
			latOp[resp.Op].Add(resp.Latency)
		}
	}
	go func() {
		defer close(collectorDone)
		for {
			select {
			case resp := <-responses:
				collect(resp)
			case <-stopCollect:
				for {
					select {
					case resp := <-responses:
						collect(resp)
					default:
						return
					}
				}
			}
		}
	}()

	start := time.Now()
	deadline := start.Add(opt.Duration)
	var clientWG sync.WaitGroup
	for c := 0; c < opt.Clients; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			r := rng.New(opt.Seed ^ 0x6c6f6164 ^ uint64(c)<<32)
			if opt.Rate > 0 {
				// Open loop: fixed wall-clock arrival schedule; responses
				// flow straight to the shared collector.
				interval := time.Duration(float64(opt.Clients) / opt.Rate * float64(time.Second))
				if interval <= 0 {
					interval = time.Nanosecond
				}
				next := start.Add(time.Duration(c) * interval / time.Duration(opt.Clients))
				for time.Now().Before(deadline) {
					if wait := time.Until(next); wait > 0 {
						time.Sleep(wait)
					}
					next = next.Add(interval) // no catch-up compression when behind
					req := nextRequest(r, opt, s.opt.Records)
					req.done = responses
					offered.Add(1)
					if err := s.Submit(req); err != nil {
						if errors.Is(err, ErrQueueFull) {
							rejected.Add(1)
							continue // shed and keep the schedule
						}
						return // halted or closed
					}
					accepted.Add(1)
				}
				return
			}
			// Closed loop: wait for each response, then forward it to the
			// collector and issue the next request.
			mine := make(chan Response, 1)
			for time.Now().Before(deadline) {
				req := nextRequest(r, opt, s.opt.Records)
				req.done = mine
				offered.Add(1)
				if err := s.Submit(req); err != nil {
					if errors.Is(err, ErrQueueFull) {
						rejected.Add(1)
						continue
					}
					return // halted or closed
				}
				accepted.Add(1)
				responses <- <-mine
			}
		}(c)
	}
	clientWG.Wait()
	rep.Elapsed = time.Since(start)

	// Drain: each accepted request produces exactly one response (halted
	// workers answer their queue with fast errors), so wait for the counts
	// to meet. Only a wedged worker can make this time out.
	drainDeadline := time.Now().Add(30 * time.Second)
	for collected.Load() < accepted.Load() && time.Now().Before(drainDeadline) {
		time.Sleep(2 * time.Millisecond)
	}
	close(stopCollect)
	<-collectorDone

	rep.Offered = offered.Load()
	rep.Rejected = rejected.Load()
	rep.Completed = completed
	rep.Failed = failed
	rep.Torn = torn
	if acc := accepted.Load(); completed+failed < acc {
		rep.Lost = acc - completed - failed
	}
	rep.Latency = latAll.Summary()
	for op := OpKind(0); op < numOps; op++ {
		if sum := latOp[op].Summary(); sum.Count > 0 {
			rep.PerOp[op.String()] = sum
		}
	}
	if rep.Lost == 0 {
		// Quiescent: every worker's last response delivery happens-before
		// this read. With lost requests a worker may still be running, so
		// leave TM zeroed rather than read unsynchronized counters.
		rep.TM = s.TMStats()
	}
	return rep, nil
}
