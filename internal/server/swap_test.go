package server

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/stamp-go/stamp/internal/apps/vacation"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/factory"
)

// swapOptions is a server sized so arena churn crosses the swap threshold
// within a few load rounds: the arena holds the live store about three
// times over, so every swap has compaction headroom but the bump high-water
// reaches SwapAt quickly.
func swapOptions(system string) Options {
	return Options{
		System:      system,
		Workers:     4,
		Records:     128,
		ArenaWords:  3 * vacation.StoreWords(128),
		Seed:        11,
		Diagnostics: &bytes.Buffer{},
	}
}

// soak drives closed-loop mixed load at s in rounds until want swaps have
// happened (or the round budget runs out), asserting every round completes
// with zero failed, lost, or torn requests — an epoch swap must be
// invisible to clients apart from latency.
func soak(t *testing.T, s *Server, want uint64) (completed uint64) {
	t.Helper()
	for round := 0; round < 60; round++ {
		rep, err := RunLoad(s, LoadOptions{
			Clients: 8, Duration: 50 * time.Millisecond,
			ROPct: 30, Seed: uint64(round + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed != 0 || rep.Lost != 0 || rep.Torn != 0 {
			t.Fatalf("round %d: failed=%d lost=%d torn=%d (swaps so far %d)",
				round, rep.Failed, rep.Lost, rep.Torn, s.Snapshot().Swaps)
		}
		completed += rep.Completed
		if s.Snapshot().Swaps >= want {
			return completed
		}
	}
	t.Fatalf("only %d swaps after the round budget, want >= %d", s.Snapshot().Swaps, want)
	return completed
}

// TestServerEpochSwapSoak is the lifecycle e2e the PR exists for: a server
// whose arena is far too small for its cumulative churn survives a mixed
// read-write load through at least three epoch swaps with no failed or
// hanging request, table invariants intact, statistics continuous across
// the retired epochs, and the abort-cause taxonomy still closed.
func TestServerEpochSwapSoak(t *testing.T) {
	for _, sys := range []string{"stm-mv", "stm-lazy"} {
		t.Run(sys, func(t *testing.T) {
			s, err := New(swapOptions(sys))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			completed := soak(t, s, 3)

			g := s.Snapshot()
			if g.Swaps < 3 {
				t.Fatalf("swaps = %d, want >= 3", g.Swaps)
			}
			if g.Epoch != g.Swaps {
				t.Fatalf("epoch %d != swaps %d", g.Epoch, g.Swaps)
			}
			if g.SwapPauseNs <= 0 || g.LastSwapPauseNs <= 0 || g.SwapPauseNs < g.LastSwapPauseNs {
				t.Fatalf("swap pause gauges inconsistent: total=%d last=%d", g.SwapPauseNs, g.LastSwapPauseNs)
			}
			if g.ArenaUsed > g.ArenaCap {
				t.Fatalf("arena gauge %d/%d", g.ArenaUsed, g.ArenaCap)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("invariants after %d swaps: %v", g.Swaps, err)
			}
			// Stats must span the retired epochs: commits across all epochs
			// cover every mutating request, and the cause taxonomy stays
			// closed (no unknown aborts introduced by swap plumbing).
			st := s.TMStats()
			if st.Total.Commits < uint64(completed) {
				t.Fatalf("merged commits %d < completed requests %d — retired-epoch stats dropped",
					st.Total.Commits, completed)
			}
			causes := st.AbortCauses()
			if causes[tm.CauseUnknown] != 0 {
				t.Fatalf("%d unknown-cause aborts", causes[tm.CauseUnknown])
			}
			var sum uint64
			for _, n := range causes {
				sum += n
			}
			if sum != st.Total.Aborts {
				t.Fatalf("cause sum %d != total aborts %d", sum, st.Total.Aborts)
			}
		})
	}
}

// TestChaosSwapStallStorm arms the swap-stall failpoint at probability 1 on
// every registered concurrent runtime: every epoch swap wedges inside its
// quiesce window (workers held at the gate, requests parked at admission).
// The server must still come out the other side — swaps complete, no
// request fails or hangs, invariants hold. The name keeps it inside the CI
// liveness job's chaos regex.
func TestChaosSwapStallStorm(t *testing.T) {
	for _, sys := range serverSystems() {
		t.Run(sys, func(t *testing.T) {
			skipSimulatedHWShort(t, sys)
			opt := swapOptions(sys)
			opt.Chaos = "1:swap-stall:1"
			s, err := New(opt)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			soak(t, s, 1)
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if s.Err() != nil {
				t.Fatalf("server failed under swap-stall storm: %v", s.Err())
			}
		})
	}
}

// TestChaosAllocExhaustServing arms the alloc-exhaust failpoint at low
// probability under serving load on every registered concurrent runtime:
// injected exhaustion aborts must be absorbed by the runtime retry loop —
// no request-visible failure, no unknown-cause abort — while real
// capacity pressure still drives epoch swaps underneath.
func TestChaosAllocExhaustServing(t *testing.T) {
	for _, sys := range serverSystems() {
		t.Run(sys, func(t *testing.T) {
			skipSimulatedHWShort(t, sys)
			opt := swapOptions(sys)
			opt.Chaos = "3:alloc-exhaust:0.02"
			s, err := New(opt)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			soak(t, s, 1)
			causes := s.TMStats().AbortCauses()
			if causes[tm.CauseAllocExhausted] == 0 {
				t.Error("armed alloc-exhaust site never attributed an abort")
			}
			if causes[tm.CauseUnknown] != 0 {
				t.Fatalf("%d unknown-cause aborts", causes[tm.CauseUnknown])
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestServerTinyOpBudgetSurvives is the regression the seed would fail: a
// server provisioned for a tiny operation budget serves an order of
// magnitude more requests than it was budgeted for. Transactional free
// keeps the steady-state high-water bounded and epoch swaps reclaim what
// fragmentation still leaks, so exhaustion never reaches a client.
func TestServerTinyOpBudgetSurvives(t *testing.T) {
	opt := Options{
		Workers: 4, Records: 64, OpBudget: 64, Seed: 5,
		Diagnostics: &bytes.Buffer{},
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var completed uint64
	budget := uint64(opt.OpBudget)
	for round := 0; round < 120 && completed < 10*budget; round++ {
		rep, err := RunLoad(s, LoadOptions{
			Clients: 8, Duration: 25 * time.Millisecond, ROPct: 20, Seed: uint64(round + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed != 0 || rep.Lost != 0 {
			t.Fatalf("round %d: failed=%d lost=%d after %d completed (budget %d)",
				round, rep.Failed, rep.Lost, completed, budget)
		}
		completed += rep.Completed
	}
	if completed < 10*budget {
		t.Fatalf("completed %d, want >= 10x the %d-op budget", completed, budget)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestServerRequestDeadline: with a deadline the pool cannot possibly meet,
// every request fails typed (ErrDeadline) instead of being served late or
// hanging, and the failure is client-visible accounting, not a server
// fault.
func TestServerRequestDeadline(t *testing.T) {
	opt := testOptions()
	opt.RequestDeadline = time.Nanosecond
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan Response, 1)
	if err := s.Submit(&Request{Op: OpQuery, done: done}); err != nil {
		t.Fatal(err)
	}
	resp := <-done
	if !errors.Is(resp.Err, ErrDeadline) {
		t.Fatalf("response error %v, want ErrDeadline", resp.Err)
	}
	if s.Err() != nil {
		t.Fatalf("deadline miss must not fail the server: %v", s.Err())
	}
}

// skipSimulatedHWShort skips the simulated-hardware runtimes in short mode,
// the same policy as the apps integration suite: capacity overflow
// serializes them, so soaking to an epoch swap under the race detector
// blows the round budget without testing anything the STM cells don't.
func skipSimulatedHWShort(t *testing.T, sys string) {
	t.Helper()
	if testing.Short() && (strings.HasPrefix(sys, "htm") || strings.HasPrefix(sys, "hybrid")) {
		t.Skip("simulated-hardware system skipped in short mode")
	}
}

// serverSystems is factory.Names() minus the sequential baseline, which
// serving mode rejects (a worker pool needs a concurrent runtime).
func serverSystems() []string {
	names := factory.Names()
	out := names[:0:0]
	for _, n := range names {
		if n != "seq" {
			out = append(out, n)
		}
	}
	return out
}
