// Package server is the serving harness: a long-lived transactional arena
// behind a bounded admission queue and a goroutine worker pool mapped onto
// tm.Thread slots, exposing the vacation operations (see
// internal/apps/vacation.Store) as request handlers — the paper's batch
// benchmark recast as an open-loop service with tail-latency accounting.
package server

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The latency histogram is log-linear (HDR-style): 2^latSubBits linear
// sub-buckets per power of two of nanoseconds, so relative error is bounded
// by 1/latSub (~3%) at every magnitude, the Add path is one atomic
// increment, and the whole histogram is a fixed ~10 KiB array — safe to
// share between worker goroutines with no locks.
const (
	latSubBits = 5
	latSub     = 1 << latSubBits // 32 linear buckets per octave
	latGroups  = 40              // covers up to 2^(latSubBits+latGroups) ns ≈ 9.7 h
	latBuckets = latSub * (latGroups + 1)
)

// latIndex maps a nanosecond value to its bucket.
func latIndex(ns uint64) int {
	if ns < latSub {
		return int(ns)
	}
	g := bits.Len64(ns) - latSubBits - 1
	if g >= latGroups {
		g = latGroups - 1
	}
	return (g+1)*latSub + int((ns>>uint(g))&(latSub-1))
}

// latUpper returns the inclusive upper bound of a bucket, so quantiles are
// conservative (never under-reported).
func latUpper(idx int) uint64 {
	if idx < latSub {
		return uint64(idx)
	}
	g := idx/latSub - 1
	pos := idx % latSub
	return (uint64(latSub+pos+1))<<uint(g) - 1
}

// LatHist is a concurrent log-linear latency histogram. Add is wait-free;
// Summary reads a racy-but-consistent-enough snapshot (each counter is
// individually atomic), which is exact once writers have quiesced.
type LatHist struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [latBuckets]atomic.Uint64
}

// Add records one latency observation.
func (h *LatHist) Add(d time.Duration) {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[latIndex(ns)].Add(1)
}

// Count returns the number of observations.
func (h *LatHist) Count() uint64 { return h.count.Load() }

// LatSummary is one histogram's percentile readout, in nanoseconds.
type LatSummary struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  uint64  `json:"p50_ns"`
	P99Ns  uint64  `json:"p99_ns"`
	P999Ns uint64  `json:"p999_ns"`
	MaxNs  uint64  `json:"max_ns"`
}

// Summary computes count, mean, p50/p99/p999 (bucket upper bounds, ≤3.2%
// relative error) and the exact max.
func (h *LatHist) Summary() LatSummary {
	var counts [latBuckets]uint64
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	s := LatSummary{Count: total, MaxNs: h.max.Load()}
	if total == 0 {
		return s
	}
	s.MeanNs = float64(h.sum.Load()) / float64(total)
	quantile := func(q float64) uint64 {
		rank := uint64(q * float64(total))
		if rank >= total {
			rank = total - 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen > rank {
				u := latUpper(i)
				if u > s.MaxNs {
					u = s.MaxNs // never report past the observed max
				}
				return u
			}
		}
		return s.MaxNs
	}
	s.P50Ns = quantile(0.50)
	s.P99Ns = quantile(0.99)
	s.P999Ns = quantile(0.999)
	return s
}
