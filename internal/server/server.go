package server

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stamp-go/stamp/internal/apps/vacation"
	"github.com/stamp-go/stamp/internal/harness"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/factory"
)

// OpKind selects which vacation operation a Request runs.
type OpKind int

const (
	// OpReserve books the best-priced available item of each type among
	// Request.Items for Request.Customer (vacation's make-reservation).
	OpReserve OpKind = iota
	// OpCancel releases all of Request.Customer's bookings and removes the
	// customer (vacation's delete-customer).
	OpCancel
	// OpUpdate applies Request.Updates to the inventory (vacation's
	// update-tables).
	OpUpdate
	// OpQuery sums the free inventory of Request.Items — the read-only
	// operation, registered through tm.NewROBlock so stm-mv serves it from
	// begin-timestamp snapshots with zero aborts.
	OpQuery
	numOps
)

// opProbe is the test hook: it runs Request.probe as the atomic block, so
// tests can wedge or instrument a worker deterministically. Not reachable
// through the public surface.
const opProbe OpKind = 255

func (k OpKind) String() string {
	switch k {
	case OpReserve:
		return "reserve"
	case OpCancel:
		return "cancel"
	case OpUpdate:
		return "update"
	case OpQuery:
		return "query"
	case opProbe:
		return "probe"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Atomic-block call sites of the served operations, registered once so
// tm.Stats.Blocks attributes per-operation commit/abort/protocol rows.
var (
	blkReserve = tm.NewBlock("stampd/reserve")
	blkCancel  = tm.NewBlock("stampd/cancel")
	blkUpdate  = tm.NewBlock("stampd/update")
	blkQuery   = tm.NewROBlock("stampd/query")
	blkProbe   = tm.NewBlock("stampd/probe")
)

// Errors of the admission path. ErrStalled (the watchdog verdict) is
// harness.ErrStalled so one sentinel spans batch and serving modes.
var (
	// ErrQueueFull reports an admission rejection: the bounded queue was at
	// capacity when the request arrived. Open-loop clients count it and move
	// on; closed-loop clients may retry with backoff.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrClosed reports a Submit after Close.
	ErrClosed = errors.New("server: closed")
	// ErrStalled re-exports the progress-watchdog sentinel: once the pool
	// is halted every pending and future request fails wrapping it.
	ErrStalled = harness.ErrStalled
	// ErrDeadline reports that a request exceeded Options.RequestDeadline
	// (measured from admission, so queue wait and epoch-swap hold time
	// count). The request was abandoned without (further) execution.
	ErrDeadline = errors.New("server: request deadline exceeded")
	// ErrRetriesExhausted reports that a request hit arena exhaustion on
	// every attempt of its Options.RequestRetries budget, each retry
	// following an epoch swap. Errors wrapping it also wrap the final
	// attempt's mem.ErrArenaFull.
	ErrRetriesExhausted = errors.New("server: retry budget exhausted")
	// ErrArenaFull re-exports the arena capacity sentinel so callers can
	// match overload responses without importing internal/mem.
	ErrArenaFull = mem.ErrArenaFull
)

// Options configures a Server. The zero value serves the default store on
// stm-mv; Validate reports every invalid field at once.
type Options struct {
	// System names the TM runtime the pool runs on ("" = "stm-mv", whose
	// multi-version rings serve OpQuery snapshots abort-free).
	System string
	// Workers is the goroutine pool size, each owning one tm.Thread slot
	// (0 = 4; max 64, the runtime's reader-mask width).
	Workers int
	// Queue bounds the admission queue (0 = 4×Workers). Submit rejects
	// with ErrQueueFull when it is at capacity — load shedding, not
	// buffering, is the overload response.
	Queue int
	// Records sizes the store: rows per reservation table (0 = 16384, the
	// paper's vacation-high -r).
	Records int
	// OpBudget sizes the arena's operation slack: the number of requests
	// the server is provisioned to absorb over its lifetime (0 = 1<<18).
	// Transactional allocation is bump-only (aborted attempts leak words,
	// like STAMP's tmalloc), so a long-lived server must budget for churn;
	// New fails fast if the arena cannot hold the store plus this slack.
	OpBudget int
	// ArenaWords overrides the derived arena size entirely (0 = derive
	// from Records and OpBudget).
	ArenaWords int

	// SwapAt is the arena high-water fraction that triggers a proactive
	// epoch swap: once Used/Cap crosses it after a served request, the pool
	// quiesces, the live store is compacted into a fresh arena, and serving
	// resumes (0 = 0.85; must be < 1). Reactive swaps — a request actually
	// hitting arena exhaustion — happen regardless.
	SwapAt float64
	// RequestDeadline bounds each request's admission-to-completion time:
	// a request still unserved past it (queued behind a stalled swap, or
	// burning its retry budget) fails with an ErrDeadline-wrapped error
	// instead of waiting forever (0 = no deadline).
	RequestDeadline time.Duration
	// RequestRetries is how many times a request that hits arena
	// exhaustion is retried, each retry behind an epoch swap, before
	// failing with ErrRetriesExhausted (0 = 3).
	RequestRetries int
	// NoRecycle disables the runtime's transactional free lists (every
	// tx.Free becomes a leak, as in the original suite's tmalloc) — the
	// ablation knob of tm.Config.NoRecycle.
	NoRecycle bool

	// CM, Clock, Chaos, MVVersions, AdaptiveRead, AdaptiveWrite mirror the
	// harness.Options knobs of the same names.
	CM            string
	Clock         string
	Chaos         string
	MVVersions    int
	AdaptiveRead  string
	AdaptiveWrite string

	// ProgressTimeout arms the progress watchdog: if the pool has requests
	// in flight but the global commit count stays flat across a full
	// window, the pool is halted, diagnostics are dumped to Diagnostics,
	// and every pending and future request fails with an
	// ErrStalled-wrapped error instead of the listener hanging (0 = off).
	ProgressTimeout time.Duration
	// Diagnostics receives the stall post-mortem (nil = os.Stderr).
	Diagnostics io.Writer

	// Seed seeds store population (and the runtime's backoff jitter).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.System == "" {
		o.System = "stm-mv"
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Queue == 0 {
		o.Queue = 4 * o.Workers
	}
	if o.Records == 0 {
		o.Records = 16384
	}
	if o.OpBudget == 0 {
		o.OpBudget = 1 << 18
	}
	if o.SwapAt == 0 {
		o.SwapAt = 0.85
	}
	if o.RequestRetries == 0 {
		o.RequestRetries = 3
	}
	if o.Diagnostics == nil {
		o.Diagnostics = os.Stderr
	}
	return o
}

// opSlackWords is the arena-churn budget per served operation: a reserve
// session may insert a customer (rb node + list header + list node) and the
// bump allocator additionally leaks every aborted attempt's allocations.
const opSlackWords = 40

// Validate reports every invalid field at once (errors.Join), in the same
// all-errors-at-once style as harness.Options.Validate.
func (o Options) Validate() error {
	var errs []error
	bad := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	if o.Workers < 0 || o.Workers > 64 {
		bad("workers must be in [0, 64] (0 = 4), got %d", o.Workers)
	}
	if o.Queue < 0 {
		bad("queue must be >= 0 (0 = 4×workers), got %d", o.Queue)
	}
	if o.Records < 0 {
		bad("records must be >= 0 (0 = 16384), got %d", o.Records)
	}
	if o.OpBudget < 0 {
		bad("op budget must be >= 0 (0 = 1<<18), got %d", o.OpBudget)
	}
	if o.ArenaWords < 0 {
		bad("arena words must be >= 0 (0 = derived), got %d", o.ArenaWords)
	}
	if o.SwapAt < 0 || o.SwapAt >= 1 {
		bad("swap threshold must be in [0, 1) (0 = 0.85), got %g", o.SwapAt)
	}
	if o.RequestDeadline < 0 {
		bad("request deadline must be >= 0 (0 = none), got %v", o.RequestDeadline)
	}
	if o.RequestRetries < 0 {
		bad("request retries must be >= 0 (0 = 3), got %d", o.RequestRetries)
	}
	if o.System == "seq" {
		bad("seq has no concurrency control and cannot serve a worker pool")
	}
	// Delegate the per-knob registry checks to the harness validator so the
	// two Options surfaces cannot drift.
	ho := harness.Options{
		System: o.System, CM: o.CM, Clock: o.Clock, Chaos: o.Chaos,
		MVVersions:   o.MVVersions,
		AdaptiveRead: o.AdaptiveRead, AdaptiveWrite: o.AdaptiveWrite,
		ProgressTimeout: o.ProgressTimeout,
	}
	if err := ho.Validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Request is one operation submission.
type Request struct {
	Op       OpKind
	Customer int               // OpReserve, OpCancel
	Items    []vacation.Item   // OpReserve, OpQuery
	Updates  []vacation.Update // OpUpdate

	arrive time.Time
	probe  func(tm.Tx) // opProbe body (tests only)
	done   chan Response
}

// Response is one operation's outcome. Latency is measured from admission
// (Submit) to completion, so it includes queue wait — the client-visible
// number, not just service time.
type Response struct {
	Op      OpKind // echoes the request's op (shared-channel consumers key on it)
	Value   uint64 // OpQuery: total free inventory seen
	Torn    uint64 // OpQuery: snapshot-consistency violations observed (must be 0)
	Latency time.Duration
	Err     error
}

// Gauges is the server's live operational readout. Every field is
// maintained with atomics, so Snapshot is safe (and exact per counter)
// while requests are in flight — unlike TMStats, which wants quiescence.
type Gauges struct {
	Served     uint64 `json:"served"`
	Rejected   uint64 `json:"rejected"`
	Failed     uint64 `json:"failed"`
	Inflight   int64  `json:"inflight"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	QueueHW    int64  `json:"queue_high_water"`
	Workers    int    `json:"workers"`
	ArenaUsed  int    `json:"arena_used_words"`
	ArenaCap   int    `json:"arena_cap_words"`

	// Epoch counts arena generations (0 = the arena New built); Swaps is
	// the number of completed epoch swaps (== Epoch). SwapPauseNs is the
	// cumulative quiesce-to-resume pause across all swaps and
	// LastSwapPauseNs the most recent one — the serving-mode availability
	// cost of arena compaction.
	Epoch           uint64 `json:"epoch"`
	Swaps           uint64 `json:"swaps"`
	SwapPauseNs     int64  `json:"swap_pause_ns_total"`
	LastSwapPauseNs int64  `json:"last_swap_pause_ns"`

	Latency LatSummary            `json:"latency"`
	PerOp   map[string]LatSummary `json:"per_op"`
}

// epochState is one arena generation: the arena, the TM system running on
// it, and the store rooted in it. The three swap together atomically — a
// worker serving a request resolves all of them from one pointer load under
// the swap gate's read lock.
type epochState struct {
	epoch uint64
	arena *mem.Arena
	sys   tm.System
	store vacation.Store
}

// Server is a long-lived worker pool serving vacation operations over a
// sequence of arena epochs: when the current arena's high-water crosses
// Options.SwapAt (or a request actually hits exhaustion), the pool
// quiesces, the live store is compacted into a fresh arena, and serving
// resumes on the new epoch.
type Server struct {
	opt        Options
	arenaWords int // per-epoch arena size
	watch      *tm.Watch
	chaos      *chaos.Injector // serving-mode failpoints (swap-stall)

	// cur is the live epoch. Workers read it under swapGate.RLock; trySwap
	// replaces it under swapGate.Lock (the quiesce barrier). swapMu
	// single-flights swaps and guards retired, the retired epochs'
	// transactional statistics.
	cur      atomic.Pointer[epochState]
	swapGate sync.RWMutex
	swapMu   sync.Mutex
	retired  []tm.Stats

	mu     sync.RWMutex // guards queue close vs Submit sends
	queue  chan *Request
	closed bool

	wg          sync.WaitGroup
	stopMonitor chan struct{}
	monitorDone chan struct{}

	fatal    atomic.Pointer[error]
	inflight atomic.Int64
	served   atomic.Uint64
	rejected atomic.Uint64
	failed   atomic.Uint64
	queueHW  atomic.Int64

	swaps           atomic.Uint64
	swapPauseNs     atomic.Int64
	lastSwapPauseNs atomic.Int64

	latAll LatHist
	lat    [numOps]LatHist
}

// New builds the store in a fresh long-lived arena, constructs the TM
// system with one thread slot per worker, and starts the pool.
func New(opt Options) (*Server, error) {
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("server: invalid options: %w", err)
	}
	opt = opt.withDefaults()
	words := opt.ArenaWords
	if words == 0 {
		words = vacation.StoreWords(opt.Records) + opt.OpBudget*opSlackWords + 1<<16
	}
	s := &Server{
		opt:         opt,
		arenaWords:  words,
		queue:       make(chan *Request, opt.Queue),
		stopMonitor: make(chan struct{}),
		monitorDone: make(chan struct{}),
	}
	// The server's own injector drives the serving-layer failpoints
	// (swap-stall); the runtime sites are armed independently inside each
	// epoch's system from the same spec.
	inj, err := chaos.New(opt.Chaos, 1)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.chaos = inj
	if opt.ProgressTimeout > 0 {
		s.watch = tm.NewWatch(opt.Workers)
	}
	arena := mem.NewArena(words)
	store := vacation.NewStore(mem.Direct{A: arena}, opt.Records, opt.Seed)
	sys, err := s.newSystem(arena)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.cur.Store(&epochState{arena: arena, sys: sys, store: store})
	s.wg.Add(opt.Workers)
	for tid := 0; tid < opt.Workers; tid++ {
		go s.worker(tid)
	}
	if s.watch != nil {
		go s.monitor()
	} else {
		close(s.monitorDone)
	}
	return s, nil
}

// newSystem constructs one epoch's TM system over arena, sharing the
// server-lifetime watch so commit progress accumulates across swaps.
func (s *Server) newSystem(arena *mem.Arena) (tm.System, error) {
	return factory.New(s.opt.System, tm.Config{
		Arena:              arena,
		Threads:            s.opt.Workers,
		EnableEarlyRelease: true,
		CM:                 s.opt.CM,
		Clock:              s.opt.Clock,
		Chaos:              s.opt.Chaos,
		MVVersions:         s.opt.MVVersions,
		AdaptiveRead:       s.opt.AdaptiveRead,
		AdaptiveWrite:      s.opt.AdaptiveWrite,
		NoRecycle:          s.opt.NoRecycle,
		Watch:              s.watch,
		Seed:               s.opt.Seed,
	})
}

// Err returns the server's fatal error: non-nil once the pool has been
// halted by the watchdog or a worker hit an unrecoverable panic. Every
// Submit after that fails fast with it.
func (s *Server) Err() error {
	if p := s.fatal.Load(); p != nil {
		return *p
	}
	return nil
}

func (s *Server) fail(err error) { s.fatal.CompareAndSwap(nil, &err) }

// Submit enqueues a request without blocking: ErrQueueFull when the
// admission queue is at capacity, ErrClosed after Close, the fatal error
// once the pool is halted. On success the response is delivered on
// req.done (if non-nil) when a worker completes the operation.
func (s *Server) Submit(req *Request) error {
	if err := s.Err(); err != nil {
		return err
	}
	req.arrive = time.Now()
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case s.queue <- req:
		if d := int64(len(s.queue)); d > s.queueHW.Load() {
			s.queueHW.Store(d) // racy max: a gauge, not an invariant
		}
		return nil
	default:
		s.rejected.Add(1)
		return fmt.Errorf("%w (capacity %d)", ErrQueueFull, cap(s.queue))
	}
}

// Do submits req and waits for its response (closed-loop convenience).
func (s *Server) Do(req *Request) Response {
	req.done = make(chan Response, 1)
	if err := s.Submit(req); err != nil {
		return Response{Err: err}
	}
	return <-req.done
}

// worker owns tm.Thread slot tid (of every epoch's system) for the server's
// lifetime and drains the admission queue into named atomic blocks.
func (s *Server) worker(tid int) {
	defer s.wg.Done()
	for req := range s.queue {
		var resp Response
		if err := s.Err(); err != nil {
			// Halted pool: drain the queue with fast errors, never
			// touching the TM runtime again (a halted or panicked
			// protocol may hold locks).
			resp.Err = err
		} else {
			s.inflight.Add(1)
			resp = s.execute(tid, req)
			s.inflight.Add(-1)
		}
		resp.Op = req.Op
		resp.Latency = time.Since(req.arrive)
		if resp.Err == nil {
			s.served.Add(1)
			s.latAll.Add(resp.Latency)
			if req.Op >= 0 && req.Op < numOps {
				s.lat[req.Op].Add(resp.Latency)
			}
		} else {
			s.failed.Add(1)
		}
		if req.done != nil {
			req.done <- resp
		}
	}
}

// execute runs one request to completion across epoch swaps: each attempt
// serves on the current epoch under the swap gate's read lock; an attempt
// that hits arena exhaustion triggers a swap and retries on the fresh
// epoch, up to the retry budget and the request deadline. A request that
// arrives while a swap holds the gate waits at admission — and fails with
// ErrDeadline instead of serving if the wait consumed its deadline.
func (s *Server) execute(tid int, req *Request) Response {
	var deadline time.Time
	if s.opt.RequestDeadline > 0 {
		deadline = req.arrive.Add(s.opt.RequestDeadline)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }
	for attempt := 0; ; attempt++ {
		if expired() {
			return Response{Err: fmt.Errorf("%w (%v since admission)",
				ErrDeadline, time.Since(req.arrive).Round(time.Millisecond))}
		}
		s.swapGate.RLock()
		if expired() {
			// The wait for an in-progress swap consumed the deadline.
			s.swapGate.RUnlock()
			return Response{Err: fmt.Errorf("%w (%v since admission, held at epoch swap)",
				ErrDeadline, time.Since(req.arrive).Round(time.Millisecond))}
		}
		ep := s.cur.Load()
		resp := s.serve(ep, tid, req)
		s.swapGate.RUnlock()
		if resp.Err == nil || !errors.Is(resp.Err, mem.ErrArenaFull) {
			if resp.Err == nil && float64(ep.arena.Used()) >= s.opt.SwapAt*float64(ep.arena.Cap()) {
				s.trySwap(ep.epoch) // proactive: high-water crossed the threshold
			}
			return resp
		}
		if err := s.Err(); err != nil {
			return Response{Err: err}
		}
		if attempt >= s.opt.RequestRetries {
			return Response{Err: fmt.Errorf("%w (%d attempts): %w",
				ErrRetriesExhausted, attempt+1, resp.Err)}
		}
		s.trySwap(ep.epoch) // reactive: this request could not be placed
	}
}

// serve executes one request as one named atomic block on epoch ep,
// converting watchdog halts (and any other panic out of the runtime) into
// errors on the response instead of killing the worker. Arena exhaustion
// (tm.AllocFailure) is a per-request, recoverable outcome — execute retries
// it behind an epoch swap — not a pool-fatal one.
func (s *Server) serve(ep *epochState, tid int, req *Request) (resp Response) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if hs, ok := r.(tm.HaltSignal); ok {
			err := fmt.Errorf("%w: %s", ErrStalled, hs.Reason)
			s.fail(err)
			resp.Err = err
			return
		}
		if af, ok := r.(tm.AllocFailure); ok {
			resp.Err = fmt.Errorf("server: %s: %w", req.Op, af.Err)
			return
		}
		err := fmt.Errorf("server: %s worker panicked: %v", req.Op, r)
		s.fail(err)
		resp.Err = err
	}()
	th := ep.sys.Thread(tid)
	switch req.Op {
	case OpReserve:
		th.AtomicAt(blkReserve, func(tx tm.Tx) {
			ep.store.MakeReservation(tx, req.Customer, req.Items)
		})
	case OpCancel:
		th.AtomicAt(blkCancel, func(tx tm.Tx) {
			ep.store.DeleteCustomer(tx, req.Customer)
		})
	case OpUpdate:
		th.AtomicAt(blkUpdate, func(tx tm.Tx) {
			ep.store.UpdateTables(tx, req.Updates)
		})
	case OpQuery:
		th.AtomicAt(blkQuery, func(tx tm.Tx) {
			free, torn := ep.store.QueryFree(tx, req.Items)
			resp.Value, resp.Torn = free, uint64(torn)
		})
	case opProbe:
		th.AtomicAt(blkProbe, req.probe)
	default:
		resp.Err = fmt.Errorf("server: unknown op %d", int(req.Op))
	}
	return resp
}

// trySwap retires the epoch numbered fromEpoch: it quiesces the worker pool
// (write-locking the swap gate drains every in-flight serve), compacts the
// live store into a fresh arena, installs a new system, and resumes.
// Swaps are single-flight — concurrent triggers for the same epoch collapse
// into one, and a caller whose epoch has already been retired returns
// immediately (its request simply retries on the fresh one).
func (s *Server) trySwap(fromEpoch uint64) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	old := s.cur.Load()
	if old.epoch != fromEpoch || s.Err() != nil {
		return
	}
	start := time.Now()
	s.swapGate.Lock()
	// Failpoint: wedge between worker-pool quiesce and arena install — the
	// window where every request is held at admission.
	s.chaos.Stall(chaos.SwapStall, 0)
	arena := mem.NewArena(s.arenaWords)
	store := old.store.CompactInto(mem.Direct{A: old.arena}, mem.Direct{A: arena})
	sys, err := s.newSystem(arena)
	if err != nil {
		// Unreachable in practice: the same options built the old epoch.
		s.swapGate.Unlock()
		s.fail(fmt.Errorf("server: epoch swap: %w", err))
		return
	}
	// The pool is quiesced, so the retiring system's per-thread counters
	// are exact; bank them for TMStats before dropping the epoch (and its
	// arena) to the collector.
	s.retired = append(s.retired, old.sys.Stats())
	s.cur.Store(&epochState{epoch: old.epoch + 1, arena: arena, sys: sys, store: store})
	s.swapGate.Unlock()
	pause := time.Since(start).Nanoseconds()
	s.swaps.Add(1)
	s.swapPauseNs.Add(pause)
	s.lastSwapPauseNs.Store(pause)
}

// monitor is the serving-mode progress watchdog: unlike the batch
// harness's (which expects the run to finish), an idle server legitimately
// commits nothing, so a stall verdict additionally requires requests in
// flight at both edges of a flat-commit window.
func (s *Server) monitor() {
	defer close(s.monitorDone)
	window := s.opt.ProgressTimeout
	ticker := time.NewTicker(window)
	defer ticker.Stop()
	lastCommits := s.watch.Commits()
	lastBusy := false
	for {
		select {
		case <-s.stopMonitor:
			return
		case <-ticker.C:
			commits := s.watch.Commits()
			busy := s.inflight.Load() > 0
			if commits != lastCommits || !busy || !lastBusy {
				lastCommits, lastBusy = commits, busy
				continue
			}
			reason := fmt.Sprintf("no commit progress for %v with requests in flight (commits stuck at %d)",
				window, commits)
			err := fmt.Errorf("%w: %s", ErrStalled, reason)
			s.fail(err)
			s.watch.Halt(reason)
			// Grace period: workers observe the halt at their next poll and
			// unwind; if every in-flight request drains we can read exact
			// statistics, otherwise dump partial counters only.
			grace := window
			if grace < time.Second {
				grace = time.Second
			}
			deadline := time.Now().Add(grace)
			quiesced := false
			for time.Now().Before(deadline) {
				if s.inflight.Load() == 0 {
					quiesced = true
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			s.dumpStall(reason, quiesced)
			return
		}
	}
}

// dumpStall writes the serving-mode post-mortem: pool gauges plus (when the
// pool quiesced) the abort-cause table and hottest conflicts.
func (s *Server) dumpStall(reason string, quiesced bool) {
	out := s.opt.Diagnostics
	fmt.Fprintf(out, "server: progress watchdog: %s\n", reason)
	fmt.Fprintf(out, "server: system=%s workers=%d epoch=%d served=%d rejected=%d inflight=%d queued=%d/%d\n",
		s.System(), s.opt.Workers, s.cur.Load().epoch, s.served.Load(), s.rejected.Load(),
		s.inflight.Load(), len(s.queue), cap(s.queue))
	if !quiesced {
		fmt.Fprintf(out, "server: pool did not quiesce within the grace period; partial diagnostics only\n")
		return
	}
	st := s.TMStats()
	fmt.Fprintf(out, "  starts=%d commits=%d aborts=%d escalations=%d cm-waits=%d\n",
		st.Total.Starts, st.Total.Commits, st.Total.Aborts, st.Total.Escalations, st.Total.CMWaits)
	names := tm.CauseNames()
	for c, n := range st.AbortCauses() {
		if n != 0 {
			fmt.Fprintf(out, "  cause %-24s %d\n", names[c], n)
		}
	}
	conflicts := st.TopConflicts()
	if len(conflicts) > 8 {
		conflicts = conflicts[:8]
	}
	for _, row := range conflicts {
		fmt.Fprintf(out, "  conflict %-16s aborts=%d\n", row.Key.String(), row.Count)
	}
}

// Snapshot returns the live gauges: admission counters, queue depth and
// high-water, arena usage, and latency percentiles overall and per op.
func (s *Server) Snapshot() Gauges {
	ep := s.cur.Load()
	g := Gauges{
		Served:          s.served.Load(),
		Rejected:        s.rejected.Load(),
		Failed:          s.failed.Load(),
		Inflight:        s.inflight.Load(),
		QueueDepth:      len(s.queue),
		QueueCap:        cap(s.queue),
		QueueHW:         s.queueHW.Load(),
		Workers:         s.opt.Workers,
		ArenaUsed:       ep.arena.Used(),
		ArenaCap:        ep.arena.Cap(),
		Epoch:           ep.epoch,
		Swaps:           s.swaps.Load(),
		SwapPauseNs:     s.swapPauseNs.Load(),
		LastSwapPauseNs: s.lastSwapPauseNs.Load(),
		Latency:         s.latAll.Summary(),
		PerOp:           make(map[string]LatSummary, int(numOps)),
	}
	for op := OpKind(0); op < numOps; op++ {
		if sum := s.lat[op].Summary(); sum.Count > 0 {
			g.PerOp[op.String()] = sum
		}
	}
	return g
}

// TMStats returns the pool's transactional statistics (abort causes,
// escalations, CM waits, per-block rows), merged across every retired
// epoch plus the current one. The live system's per-thread counters are
// unsynchronized by design, so call it quiescently: after Close, or after
// every submitted request has completed (a response delivery
// happens-before this read for that requester).
func (s *Server) TMStats() tm.Stats {
	cur := s.cur.Load().sys.Stats()
	s.swapMu.Lock()
	per := make([]*tm.ThreadStats, 0, len(s.retired)+1)
	for i := range s.retired {
		per = append(per, &s.retired[i].Total)
	}
	s.swapMu.Unlock()
	per = append(per, &cur.Total)
	st := tm.Aggregate(per)
	st.Threads = s.opt.Workers
	return st
}

// System exposes the pool's runtime name.
func (s *Server) System() string { return s.cur.Load().sys.Name() }

// CheckInvariants re-counts the store's conserved quantities (per-record
// used+free==total, bookings vs customer lists) outside any transaction.
// Quiescent use only, like TMStats.
func (s *Server) CheckInvariants() error {
	ep := s.cur.Load()
	return ep.store.Check(mem.Direct{A: ep.arena}, s.opt.Records)
}

// Close stops admission, drains the queue, joins the workers and the
// watchdog monitor, and returns the server's fatal error, if any.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		<-s.monitorDone
		return s.Err()
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	close(s.stopMonitor)
	<-s.monitorDone
	return s.Err()
}
