package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/stamp-go/stamp/internal/tm"
)

// testOptions keeps e2e servers small and fast.
func testOptions() Options {
	return Options{
		Workers: 4, Records: 512, OpBudget: 1 << 15, Seed: 7,
		Diagnostics: &bytes.Buffer{},
	}
}

func TestServerOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero Options must validate: %v", err)
	}
	err := Options{
		System: "seq", Workers: 99, Queue: -1, Records: -1,
		OpBudget: -1, ArenaWords: -1, CM: "nope",
	}.Validate()
	if err == nil {
		t.Fatal("invalid Options validated")
	}
	for _, want := range []string{
		"seq", "workers", "queue", "records",
		"op budget", "arena words", "unknown contention manager",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q is missing %q", err, want)
		}
	}
	if _, err := New(Options{Workers: -1}); err == nil {
		t.Fatal("New accepted invalid options")
	}
}

func TestLoadOptionsValidate(t *testing.T) {
	if err := (LoadOptions{}).Validate(); err != nil {
		t.Fatalf("zero LoadOptions must validate: %v", err)
	}
	err := LoadOptions{
		Clients: -1, Rate: -1, Duration: -time.Second,
		UserPct: 101, ROPct: 101, QueriesPerTx: -1, QueryRangePct: -1,
	}.Validate()
	if err == nil {
		t.Fatal("invalid LoadOptions validated")
	}
	for _, want := range []string{
		"clients", "rate", "duration", "user pct",
		"ro pct", "queries per tx", "query range pct",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q is missing %q", err, want)
		}
	}
}

// TestServerMixedLoad is the serving-mode e2e: a mixed read-write /
// read-only load at several client counts against one warm server, then
// table invariants, snapshot consistency, and abort-cause hygiene. Run
// under -race this is also the data-race proof for the whole admission →
// worker → response → stats path.
func TestServerMixedLoad(t *testing.T) {
	for _, sys := range []string{"stm-mv", "stm-lazy"} {
		t.Run(sys, func(t *testing.T) {
			opt := testOptions()
			opt.System = sys
			s, err := New(opt)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for _, clients := range []int{2, 8} {
				for _, roPct := range []int{0, 50} {
					rep, err := RunLoad(s, LoadOptions{
						Clients: clients, Duration: 120 * time.Millisecond,
						ROPct: roPct, Seed: uint64(clients),
					})
					if err != nil {
						t.Fatal(err)
					}
					if rep.Completed == 0 {
						t.Fatalf("c%d/ro%d: no requests completed: %+v", clients, roPct, rep)
					}
					if rep.Lost != 0 || rep.Failed != 0 {
						t.Fatalf("c%d/ro%d: lost=%d failed=%d", clients, roPct, rep.Lost, rep.Failed)
					}
					if rep.Torn != 0 {
						t.Fatalf("c%d/ro%d: %d torn query snapshots", clients, roPct, rep.Torn)
					}
					if rep.Latency.Count != rep.Completed {
						t.Fatalf("c%d/ro%d: latency count %d != completed %d",
							clients, roPct, rep.Latency.Count, rep.Completed)
					}
					if rep.Latency.P50Ns > rep.Latency.P99Ns || rep.Latency.P99Ns > rep.Latency.P999Ns {
						t.Fatalf("c%d/ro%d: quantiles not monotone: %+v", clients, roPct, rep.Latency)
					}
					if n := rep.TM.AbortCauses()[tm.CauseUnknown]; n != 0 {
						t.Fatalf("c%d/ro%d: %d unknown-cause aborts", clients, roPct, n)
					}
					if roPct > 0 {
						if _, ok := rep.PerOp[OpQuery.String()]; !ok {
							t.Fatalf("c%d/ro%d: no query latency recorded: %v", clients, roPct, rep.PerOp)
						}
					}
					if err := s.CheckInvariants(); err != nil {
						t.Fatalf("c%d/ro%d: invariants violated: %v", clients, roPct, err)
					}
				}
			}
			// On stm-mv the read-only block must have been snapshot-served:
			// its row may not abort.
			if sys == "stm-mv" {
				for _, row := range s.TMStats().Blocks() {
					if row.Name == "stampd/query" && row.Aborts != 0 {
						t.Fatalf("stm-mv query block aborted %d times", row.Aborts)
					}
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestServerOpenLoopRate: a feasible fixed rate is sustained and the
// latency histogram sees every completion.
func TestServerOpenLoopRate(t *testing.T) {
	s, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := RunLoad(s, LoadOptions{
		Clients: 4, Rate: 2000, Duration: 250 * time.Millisecond, ROPct: 30, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2000 * 0.25
	if float64(rep.Offered) < want*0.5 {
		t.Fatalf("open loop under-offered: %d of ~%.0f", rep.Offered, want)
	}
	if rep.Completed+rep.Rejected+rep.Failed != rep.Offered {
		t.Fatalf("accounting leak: completed %d + rejected %d + failed %d != offered %d",
			rep.Completed, rep.Rejected, rep.Failed, rep.Offered)
	}
}

// wedge blocks n workers inside transactions until release is closed.
func wedge(t *testing.T, s *Server, n int) (release chan struct{}, done chan Response) {
	t.Helper()
	release = make(chan struct{})
	done = make(chan Response, n)
	for i := 0; i < n; i++ {
		req := &Request{Op: opProbe, probe: func(tm.Tx) { <-release }, done: done}
		if err := s.Submit(req); err != nil {
			t.Fatalf("wedge submit %d: %v", i, err)
		}
	}
	// Wait until all n probes are actually inside workers.
	deadline := time.Now().Add(2 * time.Second)
	for s.inflight.Load() < int64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("probes not picked up: inflight=%d", s.inflight.Load())
		}
		time.Sleep(time.Millisecond)
	}
	return release, done
}

// TestServerQueueRejection: with every worker wedged, the bounded queue
// fills and Submit sheds load with ErrQueueFull instead of buffering.
func TestServerQueueRejection(t *testing.T) {
	opt := testOptions()
	opt.Workers = 2
	opt.Queue = 2
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	release, done := wedge(t, s, 2)

	// Workers are busy; the next Queue submissions park, then rejection.
	for i := 0; i < opt.Queue; i++ {
		if err := s.Submit(&Request{Op: OpQuery, Items: nil, done: done}); err != nil {
			t.Fatalf("fill submit %d: %v", i, err)
		}
	}
	err = s.Submit(&Request{Op: OpQuery, done: done})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit: got %v, want ErrQueueFull", err)
	}
	if g := s.Snapshot(); g.Rejected != 1 || g.QueueDepth != opt.Queue {
		t.Fatalf("gauges after rejection: %+v", g)
	}

	close(release)
	for i := 0; i < 2+opt.Queue; i++ {
		if resp := <-done; resp.Err != nil {
			t.Fatalf("drained request %d failed: %v", i, resp.Err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServerStallWatchdog: a wedged pool with work in flight must trip the
// progress watchdog — pending and future requests fail with ErrStalled
// instead of the server hanging — and the post-mortem must reach the
// Diagnostics writer.
func TestServerStallWatchdog(t *testing.T) {
	var diag bytes.Buffer
	opt := testOptions()
	opt.System = "stm-lazy"
	opt.Workers = 2
	opt.ProgressTimeout = 30 * time.Millisecond
	opt.Diagnostics = &diag
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	release, done := wedge(t, s, 2)

	deadline := time.Now().Add(5 * time.Second)
	for s.Err() == nil {
		if time.Now().After(deadline) {
			close(release)
			t.Fatal("watchdog never tripped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(s.Err(), ErrStalled) {
		t.Fatalf("fatal error %v is not ErrStalled", s.Err())
	}
	if err := s.Submit(&Request{Op: OpQuery}); !errors.Is(err, ErrStalled) {
		t.Fatalf("post-stall submit: got %v, want ErrStalled", err)
	}

	close(release) // un-wedge so Close can join the workers
	for i := 0; i < 2; i++ {
		<-done
	}
	if err := s.Close(); !errors.Is(err, ErrStalled) {
		t.Fatalf("Close: got %v, want ErrStalled", err)
	}
	if !strings.Contains(diag.String(), "progress watchdog") {
		t.Fatalf("diagnostics missing watchdog post-mortem: %q", diag.String())
	}
}

// TestServerIdleNoFalseStall: an idle server commits nothing — that must
// NOT read as a stall (the batch watchdog's rule would misfire here).
func TestServerIdleNoFalseStall(t *testing.T) {
	opt := testOptions()
	opt.ProgressTimeout = 20 * time.Millisecond
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // several idle windows
	if err := s.Err(); err != nil {
		t.Fatalf("idle server reported fatal error: %v", err)
	}
	if resp := s.Do(&Request{Op: OpQuery, Items: nil}); resp.Err != nil {
		t.Fatalf("request after idle period failed: %v", resp.Err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerSubmitAfterClose(t *testing.T) {
	s, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(&Request{Op: OpQuery}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: got %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestServerHTTP drives the JSON front-end end to end: operations, live
// stats, health, and the 503 load-shedding path.
func TestServerHTTP(t *testing.T) {
	opt := testOptions()
	opt.Workers = 2
	opt.Queue = 2
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) (int, apiResponse) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out apiResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: bad response body: %v", path, err)
		}
		return resp.StatusCode, out
	}

	if code, out := post("/reserve", `{"customer": 3, "items": [{"Typ":0,"ID":5},{"Typ":1,"ID":9}]}`); code != 200 || out.Error != "" {
		t.Fatalf("/reserve: %d %+v", code, out)
	}
	code, out := post("/query", `{"items": [{"Typ":0,"ID":5}]}`)
	if code != 200 || out.Torn != 0 || out.LatencyNs <= 0 {
		t.Fatalf("/query: %d %+v", code, out)
	}
	if code, _ := post("/cancel", `{"customer": 3}`); code != 200 {
		t.Fatalf("/cancel: %d", code)
	}
	if code, _ := post("/update", `{"updates": [{"Typ":2,"ID":4,"Add":true,"Num":1,"Price":80}]}`); code != 200 {
		t.Fatalf("/update: %d", code)
	}

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var g Gauges
	if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if g.Served < 4 || g.Workers != 2 || g.Latency.Count < 4 {
		t.Fatalf("/stats gauges: %+v", g)
	}
	if hr, err := ts.Client().Get(ts.URL + "/healthz"); err != nil || hr.StatusCode != 200 {
		t.Fatalf("/healthz: %v %v", hr, err)
	} else {
		hr.Body.Close()
	}

	// Load shedding over HTTP: wedge both workers, fill the queue, and the
	// next request must answer 503 with the queue-full error.
	release, done := wedge(t, s, 2)
	for i := 0; i < opt.Queue; i++ {
		if err := s.Submit(&Request{Op: OpQuery, done: done}); err != nil {
			t.Fatal(err)
		}
	}
	if code, out := post("/query", `{}`); code != 503 || !strings.Contains(out.Error, "queue full") {
		t.Fatalf("over-capacity POST: %d %+v", code, out)
	}
	close(release)
	for i := 0; i < 2+opt.Queue; i++ {
		<-done
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
