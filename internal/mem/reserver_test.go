package mem

import (
	"strings"
	"sync"
	"testing"
)

// TestReserverAddressesDistinct is the concurrent refill stress test (run
// with -race): many reservers bump-allocating in parallel must hand out
// distinct, non-Nil addresses, and — because chunks are line-aligned and
// span whole lines — no two reservers' words may ever share a cache line.
func TestReserverAddressesDistinct(t *testing.T) {
	const (
		workers = 8
		perW    = 5000
		chunk   = 64
	)
	arena := NewArena(workers*perW*2 + 1<<12)
	got := make([][]Addr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := arena.NewReserver(chunk)
			addrs := make([]Addr, 0, perW)
			for i := 0; i < perW; i++ {
				a := r.Alloc(1 + i%3)
				if a == Nil {
					t.Errorf("worker %d: Reserver returned Nil", w)
					return
				}
				addrs = append(addrs, a)
			}
			got[w] = addrs
		}(w)
	}
	wg.Wait()
	owner := make(map[Addr]int)     // word → worker
	lineOwner := make(map[Line]int) // line → worker
	for w, addrs := range got {
		for i, a := range addrs {
			// Every word of the allocation must be unclaimed.
			n := 1 + i%3
			for off := 0; off < n; off++ {
				word := a + Addr(off)
				if prev, dup := owner[word]; dup {
					t.Fatalf("word %d handed to workers %d and %d", word, prev, w)
				}
				owner[word] = w
				l := LineOf(word)
				if prev, seen := lineOwner[l]; seen && prev != w {
					t.Fatalf("line %d shared by workers %d and %d", l, prev, w)
				}
				lineOwner[l] = w
			}
		}
	}
}

// TestReserverRefillCount pins the contended-atomic budget: allocating W
// words through a chunkWords reserver must go to the shared bump pointer
// at most ceil(W/chunk)+1 times — one contended atomic per chunk, not per
// allocation.
func TestReserverRefillCount(t *testing.T) {
	const chunk = 256
	arena := NewArena(1 << 16)
	r := arena.NewReserver(chunk)
	words := 0
	for i := 0; i < 4000; i++ {
		r.Alloc(1)
		words++
	}
	maxRefills := uint64(words/chunk + 1)
	if got := r.Refills(); got == 0 || got > maxRefills {
		t.Fatalf("refills = %d for %d words (chunk %d), want 1..%d", got, words, chunk, maxRefills)
	}
	// Mixed sizes still amortize: only whole-chunk exhaustion refills.
	r2 := arena.NewReserver(chunk)
	words = 0
	for i := 0; i < 1000; i++ {
		n := 1 + i%7
		r2.Alloc(n)
		words += n
	}
	// Each refill strands at most one partial allocation's worth of tail,
	// so the bound gains a small slack factor for the discarded tails.
	maxRefills = uint64(words/chunk + words/chunk/8 + 2)
	if got := r2.Refills(); got > maxRefills {
		t.Fatalf("mixed-size refills = %d for %d words (chunk %d), want <= %d", got, words, chunk, maxRefills)
	}
}

// TestReserverChunksLineAligned: every refill starts on a line boundary
// even when the shared pointer is left misaligned by direct Allocs.
func TestReserverChunksLineAligned(t *testing.T) {
	arena := NewArena(1 << 12)
	arena.Alloc(3) // misalign the shared pointer
	r := arena.NewReserver(8)
	for i := 0; i < 20; i++ {
		a := r.Alloc(8) // == chunk, so every call starts a fresh chunk
		if a%WordsPerLine != 0 {
			t.Fatalf("chunk start %d not line-aligned", a)
		}
		arena.Alloc(1) // re-misalign between refills
	}
}

// TestReserverPassthrough: chunk < 1 must behave exactly like Arena.Alloc
// (the ablation arm) and never refill.
func TestReserverPassthrough(t *testing.T) {
	arena := NewArena(1 << 10)
	r := arena.NewReserver(0)
	before := arena.Used()
	a := r.Alloc(5)
	if a == Nil || arena.Used() != before+5 {
		t.Fatalf("passthrough alloc: addr=%d used %d -> %d", a, before, arena.Used())
	}
	if r.Refills() != 0 {
		t.Fatal("passthrough reserver counted a refill")
	}
}

// TestReserverOversized: a request larger than the chunk goes to the
// shared pointer, line-aligned, without disturbing the private chunk.
func TestReserverOversized(t *testing.T) {
	arena := NewArena(1 << 12)
	r := arena.NewReserver(8)
	small := r.Alloc(2) // populate a chunk
	big := r.Alloc(100)
	if big%WordsPerLine != 0 {
		t.Fatalf("oversized alloc %d not line-aligned", big)
	}
	next := r.Alloc(2)
	if next != small+2 {
		t.Fatalf("oversized alloc disturbed the chunk: %d then %d", small, next)
	}
}

// TestReserverExhaustionPanics: refill exhaustion must raise the same
// actionable message as Arena.Alloc.
func TestReserverExhaustionPanics(t *testing.T) {
	arena := NewArena(16)
	r := arena.NewReserver(8)
	r.Alloc(8)
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("expected exhaustion panic")
		}
		msg, ok := rec.(string)
		if !ok || !strings.Contains(msg, "mem: arena exhausted (cap 16 words") {
			t.Fatalf("panic %v lacks the actionable arena-exhausted message", rec)
		}
	}()
	r.Alloc(8) // second chunk cannot fit (line 0 is burned)
}

// TestReserverUsedHighWater documents Used(): it includes the unconsumed
// tails of reserved chunks, so it may exceed the words handed out.
func TestReserverUsedHighWater(t *testing.T) {
	arena := NewArena(1 << 10)
	base := arena.Used()
	r := arena.NewReserver(64)
	r.Alloc(1)
	if used := arena.Used() - base; used != 64 {
		t.Fatalf("Used() advanced %d after a 1-word alloc, want the whole 64-word chunk", used)
	}
}
