package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocNeverReturnsNil(t *testing.T) {
	a := NewArena(1024)
	for i := 0; i < 100; i++ {
		if addr := a.Alloc(1); addr == Nil {
			t.Fatalf("Alloc returned Nil at iteration %d", i)
		}
	}
}

func TestAllocDistinctRegions(t *testing.T) {
	a := NewArena(1024)
	x := a.Alloc(4)
	y := a.Alloc(4)
	if y < x+4 {
		t.Fatalf("overlapping allocations: x=%d y=%d", x, y)
	}
}

func TestAllocZeroOrNegativeGetsOneWord(t *testing.T) {
	a := NewArena(64)
	x := a.Alloc(0)
	y := a.Alloc(-5)
	if x == y {
		t.Fatalf("zero-size allocations must still be distinct: %d %d", x, y)
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arena exhaustion")
		}
	}()
	a := NewArena(8)
	a.Alloc(100)
}

func TestAllocLinesAlignment(t *testing.T) {
	a := NewArena(4096)
	a.Alloc(3) // misalign the bump pointer
	for i := 1; i <= 9; i++ {
		addr := a.AllocLines(i)
		if addr%WordsPerLine != 0 {
			t.Fatalf("AllocLines(%d) = %d not line aligned", i, addr)
		}
	}
}

func TestAllocLinesWholeLines(t *testing.T) {
	a := NewArena(4096)
	x := a.AllocLines(1)
	y := a.AllocLines(1)
	if y-x != WordsPerLine {
		t.Fatalf("AllocLines(1) blocks should be exactly one line apart: %d %d", x, y)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	a := NewArena(128)
	addr := a.Alloc(2)
	a.Store(addr, 0xdeadbeefcafef00d)
	if got := a.Load(addr); got != 0xdeadbeefcafef00d {
		t.Fatalf("Load = %#x", got)
	}
	if got := a.Load(addr + 1); got != 0 {
		t.Fatalf("adjacent word dirtied: %#x", got)
	}
}

func TestCompareAndSwap(t *testing.T) {
	a := NewArena(64)
	addr := a.Alloc(1)
	a.Store(addr, 7)
	if a.CompareAndSwap(addr, 8, 9) {
		t.Fatal("CAS with wrong old succeeded")
	}
	if !a.CompareAndSwap(addr, 7, 9) {
		t.Fatal("CAS with right old failed")
	}
	if a.Load(addr) != 9 {
		t.Fatalf("Load after CAS = %d", a.Load(addr))
	}
}

func TestLineMapping(t *testing.T) {
	if LineOf(0) != 0 || LineOf(3) != 0 || LineOf(4) != 1 || LineOf(7) != 1 || LineOf(8) != 2 {
		t.Fatal("LineOf mapping wrong")
	}
	for l := Line(0); l < 16; l++ {
		if LineOf(LineStart(l)) != l {
			t.Fatalf("LineStart/LineOf mismatch at %d", l)
		}
	}
}

func TestF2WRoundTrip(t *testing.T) {
	f := func(x float64) bool { return W2F(F2W(x)) == x || x != x } // NaN is fine either way
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocDisjoint(t *testing.T) {
	const (
		goroutines = 8
		perG       = 1000
	)
	a := NewArena(goroutines*perG*2 + 64)
	var wg sync.WaitGroup
	got := make([][]Addr, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				got[g] = append(got[g], a.Alloc(2))
			}
		}(g)
	}
	wg.Wait()
	seen := map[Addr]bool{}
	for _, list := range got {
		for _, addr := range list {
			if seen[addr] {
				t.Fatalf("address %d allocated twice", addr)
			}
			seen[addr] = true
		}
	}
}

func TestDirectSatisfiesContract(t *testing.T) {
	a := NewArena(64)
	d := Direct{A: a}
	addr := d.Alloc(1)
	d.Store(addr, 42)
	if d.Load(addr) != 42 {
		t.Fatal("Direct round trip failed")
	}
	d.Free(addr, 1) // no-op, must not panic
}
