package mem

import (
	"errors"
	"strings"
	"testing"
)

// TestTryAllocTypedFailure pins the recoverable-exhaustion contract: a
// request that does not fit returns an ErrArenaFull-wrapped error, leaves
// the bump pointer where it was, and a smaller request still succeeds — no
// one-way ratchet, no panic.
func TestTryAllocTypedFailure(t *testing.T) {
	a := NewArena(8)
	used := a.Used() // line 0 is burned so Nil is never allocated
	if _, err := a.TryAlloc(16); !errors.Is(err, ErrArenaFull) {
		t.Fatalf("TryAlloc(16) on an 8-word arena: err = %v, want ErrArenaFull", err)
	}
	if a.Used() != used {
		t.Fatalf("failed TryAlloc moved the bump pointer %d -> %d", used, a.Used())
	}
	if _, err := a.TryAlloc(4); err != nil {
		t.Fatalf("TryAlloc(4) after a failed oversized request: %v", err)
	}
}

// TestAllocPanicMessageStable pins the setup-path panic: same wording family
// as the seed ("mem: arena exhausted"), now derived from the typed sentinel.
func TestAllocPanicMessageStable(t *testing.T) {
	a := NewArena(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Alloc past capacity did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "mem: arena exhausted") {
			t.Fatalf("panic value %v, want string containing %q", r, "mem: arena exhausted")
		}
	}()
	a.Alloc(64)
}

// TestTxFreeRecyclesOnCommit: a committed free reaches the size-class lists
// and the very next same-size allocation reuses the block without touching
// the shared pointer.
func TestTxFreeRecyclesOnCommit(t *testing.T) {
	a := NewArena(1 << 10)
	r := a.NewReserver(64)
	addr, err := r.TxAlloc(3)
	if err != nil {
		t.Fatal(err)
	}
	r.OnCommit()
	r.TxFree(addr, 3)
	r.OnCommit()
	used := a.Used()
	got, err := r.TxAlloc(3)
	if err != nil {
		t.Fatal(err)
	}
	r.OnCommit()
	if got != addr {
		t.Fatalf("allocation after a committed free returned %d, want the recycled block %d", got, addr)
	}
	if a.Used() != used {
		t.Fatalf("recycled allocation advanced the arena high-water %d -> %d", used, a.Used())
	}
	if r.Recycled() == 0 {
		t.Fatal("Recycled() = 0 after a free-list hit")
	}
}

// TestTxFreeDroppedOnAbort: an aborted attempt's frees never take effect —
// the freed block must NOT be recycled into a later allocation (its frees
// were speculative and the block is still live).
func TestTxFreeDroppedOnAbort(t *testing.T) {
	a := NewArena(1 << 10)
	r := a.NewReserver(64)
	addr, err := r.TxAlloc(3)
	if err != nil {
		t.Fatal(err)
	}
	r.OnCommit() // addr is now live
	r.TxFree(addr, 3)
	r.OnAbort() // attempt failed: the free must be dropped
	got, err := r.TxAlloc(3)
	if err != nil {
		t.Fatal(err)
	}
	if got == addr {
		t.Fatal("aborted attempt's TxFree recycled a live block")
	}
}

// TestTxAllocReclaimedOnAbort: an aborted attempt's allocations return to
// the free lists — nothing committed can reference them — so the retry
// reuses the same words instead of leaking them (the seed's tmalloc leak).
func TestTxAllocReclaimedOnAbort(t *testing.T) {
	a := NewArena(1 << 10)
	r := a.NewReserver(64)
	addr, err := r.TxAlloc(5)
	if err != nil {
		t.Fatal(err)
	}
	r.OnAbort()
	got, err := r.TxAlloc(5)
	if err != nil {
		t.Fatal(err)
	}
	if got != addr {
		t.Fatalf("retry after abort allocated %d, want the reclaimed block %d", got, addr)
	}
}

// TestTxAllocBoundedHighWater is the allocator-level statement of the PR's
// capping claim: balanced alloc/free churn far past the arena's capacity
// completes with a bounded high-water mark. 2^14 iterations of a 6-word
// node through a 1<<10-word arena would need 98k words unrecycled.
func TestTxAllocBoundedHighWater(t *testing.T) {
	a := NewArena(1 << 10)
	r := a.NewReserver(64)
	for i := 0; i < 1<<14; i++ {
		addr, err := r.TxAlloc(6)
		if err != nil {
			t.Fatalf("iteration %d: %v (high-water not capped)", i, err)
		}
		r.TxFree(addr, 6)
		r.OnCommit()
	}
	if a.Used() > 1<<10 {
		t.Fatalf("Used() = %d > cap", a.Used())
	}
}

// TestSetRecycleOffLeaks pins the ablation arm: with recycling disabled the
// same churn loop must exhaust the arena (the seed behavior the free lists
// exist to fix).
func TestSetRecycleOffLeaks(t *testing.T) {
	a := NewArena(1 << 10)
	r := a.NewReserver(64)
	r.SetRecycle(false)
	exhausted := false
	for i := 0; i < 1<<12; i++ {
		addr, err := r.TxAlloc(6)
		if err != nil {
			if !errors.Is(err, ErrArenaFull) {
				t.Fatalf("iteration %d: err = %v, want ErrArenaFull", i, err)
			}
			exhausted = true
			break
		}
		r.TxFree(addr, 6)
		r.OnCommit()
	}
	if !exhausted {
		t.Fatal("norecycle churn loop never exhausted the arena — frees were recycled despite SetRecycle(false)")
	}
}

// TestReserverTailRetiredAtRefill: the words abandoned at the end of a chunk
// when a refill happens must land in the free lists, not leak — observable
// as recycled volume once an allocation is served from them.
func TestReserverTailRetiredAtRefill(t *testing.T) {
	a := NewArena(1 << 10)
	r := a.NewReserver(8) // tiny chunk: every few allocations refill
	for i := 0; i < 8; i++ {
		if _, err := r.TxAlloc(5); err != nil { // 5 of 8: leaves a 3-word tail
			t.Fatal(err)
		}
		r.OnCommit()
	}
	// The retired 3-word tails must satisfy 3-word requests with no arena
	// growth.
	used := a.Used()
	if _, err := r.TxAlloc(3); err != nil {
		t.Fatal(err)
	}
	r.OnCommit()
	if a.Used() != used {
		t.Fatalf("3-word allocation advanced the arena %d -> %d despite retired tails", used, a.Used())
	}
}

// TestTxAllocExhaustionFallsBackToSpares: when the shared pointer is dry,
// TxAlloc must still serve requests the spares can cover before reporting
// ErrArenaFull.
func TestTxAllocExhaustionFallsBackToSpares(t *testing.T) {
	a := NewArena(64)
	r := a.NewReserver(32)
	big, err := r.TxAlloc(24)
	if err != nil {
		t.Fatal(err)
	}
	r.OnCommit()
	r.TxFree(big, 24)
	r.OnCommit() // 24 words on the spares
	// Drain the arena: the remaining fresh words go to a second reserver.
	other := a.NewReserver(0)
	for {
		if _, err := other.TxAlloc(4); err != nil {
			break
		}
		other.OnCommit()
	}
	// The shared pointer is dry, but r's spare block must still serve this.
	if _, err := r.TxAlloc(24); err != nil {
		t.Fatalf("TxAlloc(24) with a 24-word spare available: %v", err)
	}
}
