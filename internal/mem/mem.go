// Package mem provides the word-addressed shared-memory arena that hosts all
// transactionally shared state in the suite.
//
// STAMP's transactional behaviours — cache-line-granularity conflict
// detection, address signatures, early release, padding a datum to a full
// line — only exist when shared data has addresses. The arena is a flat
// array of 8-byte words; an Addr is a word index and a Line is a 32-byte
// (4-word) cache line index, matching the line size of the paper's simulated
// machine (Table V).
//
// All word accesses use sync/atomic so that concurrent transactional systems
// built on top of the arena are free of Go data races even while they race
// at the semantic level (that is what the TM layers arbitrate).
package mem

import (
	"fmt"
	"math"
	"sync/atomic"
)

// WordsPerLine is the number of 8-byte words per simulated 32-byte cache
// line (Table V: 32 B lines).
const WordsPerLine = 4

// LineShift converts a word address to a line index: Line = Addr >> LineShift.
const LineShift = 2

// Addr is a word index into an Arena. Address 0 is reserved as the nil
// address; Alloc never returns it.
type Addr uint32

// Nil is the reserved null address.
const Nil Addr = 0

// Line is a 32-byte cache-line index (Addr >> LineShift).
type Line uint32

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// LineStart returns the first word address of line l.
func LineStart(l Line) Addr { return Addr(l) << LineShift }

// Arena is a fixed-capacity, non-moving word arena. Allocation is a
// lock-free bump pointer; there is no free list (mirroring STAMP's tmalloc,
// where transactional frees are deferred and, in practice, most benchmark
// allocations live for the whole run).
type Arena struct {
	words []uint64
	next  atomic.Uint32 // next free word
}

// NewArena returns an arena with capacity for nWords 8-byte words.
// Word 0 is reserved so that Addr 0 can serve as nil.
func NewArena(nWords int) *Arena {
	if nWords < WordsPerLine {
		nWords = WordsPerLine
	}
	a := &Arena{words: make([]uint64, nWords)}
	a.next.Store(WordsPerLine) // burn line 0 so Nil is never allocated
	return a
}

// Cap returns the arena capacity in words.
func (a *Arena) Cap() int { return len(a.words) }

// Used returns the number of words allocated so far.
func (a *Arena) Used() int { return int(a.next.Load()) }

// Alloc bump-allocates n words and returns the address of the first.
// It panics if the arena is exhausted: arenas are sized per workload by the
// harness, so exhaustion is a configuration bug, not a runtime condition.
func (a *Arena) Alloc(n int) Addr {
	if n <= 0 {
		n = 1
	}
	end := a.next.Add(uint32(n))
	if int(end) > len(a.words) {
		panic(fmt.Sprintf("mem: arena exhausted (cap %d words, need %d)", len(a.words), end))
	}
	return Addr(end - uint32(n))
}

// AllocLines allocates n words rounded up so the block starts on a line
// boundary and occupies whole lines. Labyrinth pads every grid point to a
// full line this way (the paper does the same so early release is sound at
// line granularity).
func (a *Arena) AllocLines(n int) Addr {
	if n <= 0 {
		n = 1
	}
	n = (n + WordsPerLine - 1) &^ (WordsPerLine - 1)
	for {
		cur := a.next.Load()
		start := (cur + WordsPerLine - 1) &^ (WordsPerLine - 1)
		end := start + uint32(n)
		if int(end) > len(a.words) {
			panic(fmt.Sprintf("mem: arena exhausted (cap %d words, need %d)", len(a.words), end))
		}
		if a.next.CompareAndSwap(cur, end) {
			return Addr(start)
		}
	}
}

// Load atomically reads the word at addr.
func (a *Arena) Load(addr Addr) uint64 { return atomic.LoadUint64(&a.words[addr]) }

// Store atomically writes the word at addr.
func (a *Arena) Store(addr Addr, v uint64) { atomic.StoreUint64(&a.words[addr], v) }

// CompareAndSwap atomically CASes the word at addr.
func (a *Arena) CompareAndSwap(addr Addr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&a.words[addr], old, new)
}

// Float helpers: several applications (kmeans, yada, bayes) store float64
// values in arena words as IEEE-754 bit patterns.

// F2W converts a float64 to its word representation.
func F2W(f float64) uint64 { return math.Float64bits(f) }

// W2F converts a word back to float64.
func W2F(w uint64) float64 { return math.Float64frombits(w) }

// Direct is a non-transactional accessor over an arena. It satisfies the
// same read/write/alloc contract as a transaction (tm.Mem), which lets the
// container library and application setup code run outside any transaction
// — exactly like STAMP's sequential initialization phases.
type Direct struct{ A *Arena }

// Load reads the word at addr without any transactional bookkeeping.
func (d Direct) Load(addr Addr) uint64 { return d.A.Load(addr) }

// Store writes the word at addr without any transactional bookkeeping.
func (d Direct) Store(addr Addr, v uint64) { d.A.Store(addr, v) }

// Alloc allocates from the underlying arena.
func (d Direct) Alloc(n int) Addr { return d.A.Alloc(n) }

// Free is a no-op (bump allocator); present to satisfy the tm.Mem contract.
func (d Direct) Free(Addr) {}
