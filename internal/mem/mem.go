// Package mem provides the word-addressed shared-memory arena that hosts all
// transactionally shared state in the suite.
//
// STAMP's transactional behaviours — cache-line-granularity conflict
// detection, address signatures, early release, padding a datum to a full
// line — only exist when shared data has addresses. The arena is a flat
// array of 8-byte words; an Addr is a word index and a Line is a 32-byte
// (4-word) cache line index, matching the line size of the paper's simulated
// machine (Table V).
//
// All word accesses use sync/atomic so that concurrent transactional systems
// built on top of the arena are free of Go data races even while they race
// at the semantic level (that is what the TM layers arbitrate).
package mem

import (
	"fmt"
	"math"
	"sync/atomic"
)

// WordsPerLine is the number of 8-byte words per simulated 32-byte cache
// line (Table V: 32 B lines).
const WordsPerLine = 4

// LineShift converts a word address to a line index: Line = Addr >> LineShift.
const LineShift = 2

// Addr is a word index into an Arena. Address 0 is reserved as the nil
// address; Alloc never returns it.
type Addr uint32

// Nil is the reserved null address.
const Nil Addr = 0

// Line is a 32-byte cache-line index (Addr >> LineShift).
type Line uint32

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// LineStart returns the first word address of line l.
func LineStart(l Line) Addr { return Addr(l) << LineShift }

// Arena is a fixed-capacity, non-moving word arena. Allocation is a
// lock-free bump pointer; there is no free list (mirroring STAMP's tmalloc,
// where transactional frees are deferred and, in practice, most benchmark
// allocations live for the whole run).
type Arena struct {
	words []uint64
	next  atomic.Uint32 // next free word
}

// NewArena returns an arena with capacity for nWords 8-byte words.
// Word 0 is reserved so that Addr 0 can serve as nil.
func NewArena(nWords int) *Arena {
	if nWords < WordsPerLine {
		nWords = WordsPerLine
	}
	a := &Arena{words: make([]uint64, nWords)}
	a.next.Store(WordsPerLine) // burn line 0 so Nil is never allocated
	return a
}

// Cap returns the arena capacity in words.
func (a *Arena) Cap() int { return len(a.words) }

// Used returns the allocation high-water mark in words: everything handed
// out by Alloc/AllocLines plus everything reserved by Reservers, including
// alignment gaps and the unconsumed tails of per-thread chunks. It is an
// upper bound on the words actually written, not an exact live count —
// sizing decisions should treat it as "words no longer available".
func (a *Arena) Used() int { return int(a.next.Load()) }

// Alloc bump-allocates n words and returns the address of the first.
// It panics if the arena is exhausted: arenas are sized per workload by the
// harness, so exhaustion is a configuration bug, not a runtime condition.
func (a *Arena) Alloc(n int) Addr {
	if n <= 0 {
		n = 1
	}
	end := a.next.Add(uint32(n))
	if int(end) > len(a.words) {
		panic(fmt.Sprintf("mem: arena exhausted (cap %d words, need %d)", len(a.words), end))
	}
	return Addr(end - uint32(n))
}

// AllocLines allocates n words rounded up so the block starts on a line
// boundary and occupies whole lines. Labyrinth pads every grid point to a
// full line this way (the paper does the same so early release is sound at
// line granularity).
func (a *Arena) AllocLines(n int) Addr {
	if n <= 0 {
		n = 1
	}
	return a.allocAligned((n + WordsPerLine - 1) &^ (WordsPerLine - 1))
}

// allocAligned carves n words (a whole-line multiple) off the shared bump
// pointer, starting on a line boundary. Shared by AllocLines and Reserver
// refills, so both exhaust with the same actionable message as Alloc.
func (a *Arena) allocAligned(n int) Addr {
	for {
		cur := a.next.Load()
		start := (cur + WordsPerLine - 1) &^ (WordsPerLine - 1)
		end := start + uint32(n)
		if int(end) > len(a.words) {
			panic(fmt.Sprintf("mem: arena exhausted (cap %d words, need %d)", len(a.words), end))
		}
		if a.next.CompareAndSwap(cur, end) {
			return Addr(start)
		}
	}
}

// Reserver is a thread-private allocation handle over an Arena: it
// bump-allocates from a private, line-aligned chunk and refills the chunk
// from the shared bump pointer only on exhaustion — one contended atomic
// per chunkWords allocations instead of one per allocation, which is what
// keeps tx.Alloc off the shared `next` word in the allocation-heavy STAMP
// apps (genome, vacation, yada, bayes). Because chunks start on a line
// boundary and span whole lines, two threads' transactional allocations
// never share a 32-byte line, so the line-granularity runtimes (HTMs,
// hybrids) see no false conflicts from the allocator either.
//
// A Reserver is owned by one worker and is not safe for concurrent use;
// the arena it draws from remains fully concurrent. Chunk tails abandoned
// at refill are never reused (they are part of the Used() high-water
// mark), mirroring STAMP's tmalloc, which leaks far more.
type Reserver struct {
	a       *Arena
	next    uint32 // next free word of the private chunk
	limit   uint32 // end of the private chunk (next == limit: empty)
	chunk   uint32 // refill size in words (0: passthrough to Arena.Alloc)
	refills uint64 // shared-pointer refills (the contended-atomic count)
}

// NewReserver returns a reservation handle that refills chunkWords words
// (rounded up to whole lines) at a time. chunkWords < 1 yields a
// passthrough Reserver whose every Alloc hits the shared bump pointer
// directly — the pre-reservation behavior, kept for ablations and for
// arenas too small to reserve from.
func (a *Arena) NewReserver(chunkWords int) *Reserver {
	if chunkWords < 1 {
		return &Reserver{a: a}
	}
	c := (chunkWords + WordsPerLine - 1) &^ (WordsPerLine - 1)
	return &Reserver{a: a, chunk: uint32(c)}
}

// Alloc bump-allocates n words from the private chunk, refilling from the
// shared arena pointer when the chunk is exhausted. Requests larger than
// the chunk go to the shared pointer directly (line-aligned, so the
// cross-thread line-disjointness of reserved memory is preserved). Like
// Arena.Alloc it panics when the arena is exhausted, and it never returns
// Nil.
func (r *Reserver) Alloc(n int) Addr {
	if n <= 0 {
		n = 1
	}
	if r.chunk == 0 {
		return r.a.Alloc(n)
	}
	if uint32(n) > r.chunk {
		return r.a.allocAligned((n + WordsPerLine - 1) &^ (WordsPerLine - 1))
	}
	if r.next+uint32(n) > r.limit {
		r.refills++
		start := uint32(r.a.allocAligned(int(r.chunk)))
		r.next, r.limit = start, start+r.chunk
	}
	addr := Addr(r.next)
	r.next += uint32(n)
	return addr
}

// Refills returns how many times this Reserver went to the shared bump
// pointer — the number of contended atomics its allocations have cost
// (excluding oversized requests, which always go shared).
func (r *Reserver) Refills() uint64 { return r.refills }

// Load atomically reads the word at addr.
func (a *Arena) Load(addr Addr) uint64 { return atomic.LoadUint64(&a.words[addr]) }

// Store atomically writes the word at addr.
func (a *Arena) Store(addr Addr, v uint64) { atomic.StoreUint64(&a.words[addr], v) }

// CompareAndSwap atomically CASes the word at addr.
func (a *Arena) CompareAndSwap(addr Addr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&a.words[addr], old, new)
}

// Float helpers: several applications (kmeans, yada, bayes) store float64
// values in arena words as IEEE-754 bit patterns.

// F2W converts a float64 to its word representation.
func F2W(f float64) uint64 { return math.Float64bits(f) }

// W2F converts a word back to float64.
func W2F(w uint64) float64 { return math.Float64frombits(w) }

// Direct is a non-transactional accessor over an arena. It satisfies the
// same read/write/alloc contract as a transaction (tm.Mem), which lets the
// container library and application setup code run outside any transaction
// — exactly like STAMP's sequential initialization phases.
type Direct struct{ A *Arena }

// Load reads the word at addr without any transactional bookkeeping.
func (d Direct) Load(addr Addr) uint64 { return d.A.Load(addr) }

// Store writes the word at addr without any transactional bookkeeping.
func (d Direct) Store(addr Addr, v uint64) { d.A.Store(addr, v) }

// Alloc allocates from the underlying arena.
func (d Direct) Alloc(n int) Addr { return d.A.Alloc(n) }

// Free is a no-op (bump allocator); present to satisfy the tm.Mem contract.
func (d Direct) Free(Addr) {}
