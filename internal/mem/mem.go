// Package mem provides the word-addressed shared-memory arena that hosts all
// transactionally shared state in the suite.
//
// STAMP's transactional behaviours — cache-line-granularity conflict
// detection, address signatures, early release, padding a datum to a full
// line — only exist when shared data has addresses. The arena is a flat
// array of 8-byte words; an Addr is a word index and a Line is a 32-byte
// (4-word) cache line index, matching the line size of the paper's simulated
// machine (Table V).
//
// All word accesses use sync/atomic so that concurrent transactional systems
// built on top of the arena are free of Go data races even while they race
// at the semantic level (that is what the TM layers arbitrate).
package mem

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// WordsPerLine is the number of 8-byte words per simulated 32-byte cache
// line (Table V: 32 B lines).
const WordsPerLine = 4

// LineShift converts a word address to a line index: Line = Addr >> LineShift.
const LineShift = 2

// Addr is a word index into an Arena. Address 0 is reserved as the nil
// address; Alloc never returns it.
type Addr uint32

// Nil is the reserved null address.
const Nil Addr = 0

// Line is a 32-byte cache-line index (Addr >> LineShift).
type Line uint32

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// LineStart returns the first word address of line l.
func LineStart(l Line) Addr { return Addr(l) << LineShift }

// ErrArenaFull reports an arena capacity miss: an allocation did not fit in
// the remaining words. It is a recoverable condition, not a crash — the TM
// runtimes turn it into an alloc-exhausted abort, the harness and the serving
// mode surface it as a typed error, and the server's epoch-swap recycler uses
// it as the trigger to compact into a fresh arena. Match with errors.Is.
var ErrArenaFull = errors.New("mem: arena exhausted")

// Arena is a fixed-capacity, non-moving word arena. Allocation is a
// lock-free bump pointer; freed words are recycled only through per-thread
// Reserver free lists (mirroring STAMP's tmalloc, where transactional frees
// are deferred and most benchmark allocations live for the whole run).
type Arena struct {
	words []uint64
	next  atomic.Uint32 // next free word
}

// exhausted is the one construction site of every capacity-miss failure, so
// Alloc, TryAlloc, and the aligned paths cannot drift apart in wording or in
// the sentinel they wrap.
func (a *Arena) exhausted(need uint32) error {
	return fmt.Errorf("%w (cap %d words, need %d)", ErrArenaFull, len(a.words), need)
}

// NewArena returns an arena with capacity for nWords 8-byte words.
// Word 0 is reserved so that Addr 0 can serve as nil.
func NewArena(nWords int) *Arena {
	if nWords < WordsPerLine {
		nWords = WordsPerLine
	}
	a := &Arena{words: make([]uint64, nWords)}
	a.next.Store(WordsPerLine) // burn line 0 so Nil is never allocated
	return a
}

// Cap returns the arena capacity in words.
func (a *Arena) Cap() int { return len(a.words) }

// Used returns the bump high-water mark in words: everything ever drawn
// from the shared pointer by Alloc/AllocLines plus everything reserved by
// Reservers, including alignment gaps and chunk tails. It is the high-water
// mark *net of free-list recycling*: words a Reserver recycles (transactional
// frees, reclaimed speculative allocations, retired chunk tails) are served
// again without advancing this mark, so on a long-lived workload with
// balanced alloc/free churn Used() plateaus instead of growing without
// bound. It is an upper bound on the words actually live, not an exact
// count — sizing and swap-threshold decisions should treat it as "words no
// longer available from the shared pointer".
func (a *Arena) Used() int { return int(a.next.Load()) }

// TryAlloc bump-allocates n words and returns the address of the first, or
// an ErrArenaFull-wrapped error when the request does not fit. The failure
// leaves the bump pointer unchanged, so exhaustion is observable and
// recoverable rather than a one-way ratchet.
func (a *Arena) TryAlloc(n int) (Addr, error) {
	if n <= 0 {
		n = 1
	}
	for {
		cur := a.next.Load()
		end := cur + uint32(n)
		if int(end) > len(a.words) {
			return Nil, a.exhausted(end)
		}
		if a.next.CompareAndSwap(cur, end) {
			return Addr(cur), nil
		}
	}
}

// Alloc bump-allocates n words and returns the address of the first.
// It panics if the arena is exhausted — the convenience form for setup and
// verification phases, where arenas are sized per workload by the harness
// and exhaustion is a configuration bug. Runtime allocation paths use
// TryAlloc (via Reserver.TxAlloc) and recover instead.
func (a *Arena) Alloc(n int) Addr {
	addr, err := a.TryAlloc(n)
	if err != nil {
		panic(err.Error())
	}
	return addr
}

// AllocLines allocates n words rounded up so the block starts on a line
// boundary and occupies whole lines. Labyrinth pads every grid point to a
// full line this way (the paper does the same so early release is sound at
// line granularity). Like Alloc it panics on exhaustion.
func (a *Arena) AllocLines(n int) Addr {
	if n <= 0 {
		n = 1
	}
	addr, err := a.tryAllocAligned((n + WordsPerLine - 1) &^ (WordsPerLine - 1))
	if err != nil {
		panic(err.Error())
	}
	return addr
}

// tryAllocAligned carves n words (a whole-line multiple) off the shared bump
// pointer, starting on a line boundary. Shared by AllocLines and Reserver
// refills, so both report exhaustion through the same ErrArenaFull failure
// path as TryAlloc.
func (a *Arena) tryAllocAligned(n int) (Addr, error) {
	for {
		cur := a.next.Load()
		start := (cur + WordsPerLine - 1) &^ (WordsPerLine - 1)
		end := start + uint32(n)
		if int(end) > len(a.words) {
			return Nil, a.exhausted(end)
		}
		if a.next.CompareAndSwap(cur, end) {
			return Addr(start), nil
		}
	}
}

// Reserver is a thread-private allocation handle over an Arena: it
// bump-allocates from a private, line-aligned chunk and refills the chunk
// from the shared bump pointer only on exhaustion — one contended atomic
// per chunkWords allocations instead of one per allocation, which is what
// keeps tx.Alloc off the shared `next` word in the allocation-heavy STAMP
// apps (genome, vacation, yada, bayes). Because chunks start on a line
// boundary and span whole lines, two threads' transactional allocations
// never share a 32-byte line, so the line-granularity runtimes (HTMs,
// hybrids) see no false conflicts from the allocator either.
//
// A Reserver is owned by one worker and is not safe for concurrent use;
// the arena it draws from remains fully concurrent.
//
// Beyond chunked reservation, a Reserver maintains per-thread free lists
// with abort-safe transactional semantics: TxFree defers a free to commit
// (OnCommit) so an aborted attempt's frees never take effect, and TxAlloc
// logs speculative allocations so an abort (OnAbort) reclaims them. Chunk
// tails abandoned at refill are retired into the same free lists instead of
// leaking. Together these cap the arena high-water mark on long-lived runs
// with balanced churn — where STAMP's tmalloc leaks every free and every
// aborted attempt. Recycling may hand one thread a block another thread
// freed, which weakens the strict cross-thread line-disjointness of fresh
// chunks to "recycled lines may be shared": that can cost the
// line-granularity runtimes spurious conflicts, never soundness.
type Reserver struct {
	a       *Arena
	next    uint32 // next free word of the private chunk
	limit   uint32 // end of the private chunk (next == limit: empty)
	chunk   uint32 // refill size in words (0: passthrough to Arena.TryAlloc)
	refills uint64 // shared-pointer refills (the contended-atomic count)

	norecycle bool // ablation arm: drop frees and tails (the seed behavior)

	// Free lists: classes[n] holds blocks of exactly n words (n <=
	// freeClasses); spares holds larger blocks and retired chunk tails.
	classes  [freeClasses + 1][]Addr
	spares   []span
	recycled uint64 // words served from the free lists instead of the arena

	// Per-attempt logs for the abort-safe protocol (see TxAlloc/TxFree).
	allocLog []span
	freeLog  []span
}

// freeClasses is the largest block size (in words) kept on an exact
// size-class free list. The transactional workloads free small fixed-size
// nodes (list nodes 3, reservation records 5, rbtree nodes 6); container
// data arrays and retired chunk tails land in the variable-size spares.
const freeClasses = 64

// span is one free or speculative block: address and size in words.
type span struct {
	addr Addr
	n    uint32
}

// NewReserver returns a reservation handle that refills chunkWords words
// (rounded up to whole lines) at a time. chunkWords < 1 yields a
// passthrough Reserver whose every miss hits the shared bump pointer
// directly — the pre-reservation behavior, kept for ablations and for
// arenas too small to reserve from. Free-list recycling works in both
// modes.
func (a *Arena) NewReserver(chunkWords int) *Reserver {
	if chunkWords < 1 {
		return &Reserver{a: a}
	}
	c := (chunkWords + WordsPerLine - 1) &^ (WordsPerLine - 1)
	return &Reserver{a: a, chunk: uint32(c)}
}

// SetRecycle enables or disables free-list recycling (enabled by default).
// Disabled, TxFree drops its argument and chunk tails leak at refill — the
// seed allocator's behavior, kept as the ablation arm behind
// tm.Config.NoRecycle.
func (r *Reserver) SetRecycle(on bool) { r.norecycle = !on }

// Alloc bump-allocates n words, panicking when the arena is exhausted — the
// setup-phase convenience, like Arena.Alloc. Transactional paths use
// TxAlloc and recover.
func (r *Reserver) Alloc(n int) Addr {
	addr, err := r.alloc(n)
	if err != nil {
		panic(err.Error())
	}
	return addr
}

// TxAlloc allocates n words for the current transactional attempt: free
// lists first, then the private chunk, then the shared pointer. The block
// is logged so OnAbort can reclaim it if the attempt fails. A capacity miss
// returns an ErrArenaFull-wrapped error (after the free lists, the chunk
// tail, and the spares have all been tried) — the runtimes turn that into
// an alloc-exhausted abort instead of a panic.
func (r *Reserver) TxAlloc(n int) (Addr, error) {
	addr, err := r.alloc(n)
	if err == nil && !r.norecycle {
		r.allocLog = append(r.allocLog, span{addr, allocSize(n)})
	}
	return addr, err
}

// allocSize normalizes a request to the size alloc actually hands out.
func allocSize(n int) uint32 {
	if n <= 0 {
		return 1
	}
	return uint32(n)
}

// alloc is the shared allocation path of Alloc and TxAlloc.
func (r *Reserver) alloc(n int) (Addr, error) {
	if n <= 0 {
		n = 1
	}
	// Exact size-class hit: the common case for node churn.
	if n <= freeClasses {
		if l := r.classes[n]; len(l) > 0 {
			addr := l[len(l)-1]
			r.classes[n] = l[:len(l)-1]
			r.recycled += uint64(n)
			return addr, nil
		}
	}
	if r.chunk == 0 { // passthrough mode
		if addr, ok := r.carveSpare(uint32(n)); ok {
			return addr, nil
		}
		return r.a.TryAlloc(n)
	}
	if uint32(n) > r.chunk { // oversized: never fits a chunk
		if addr, ok := r.carveSpare(uint32(n)); ok {
			return addr, nil
		}
		return r.a.tryAllocAligned((n + WordsPerLine - 1) &^ (WordsPerLine - 1))
	}
	if r.next+uint32(n) > r.limit {
		if err := r.refill(uint32(n)); err != nil {
			// Arena dry: fall back to carving any spare that fits before
			// reporting exhaustion.
			if addr, ok := r.carveSpare(uint32(n)); ok {
				return addr, nil
			}
			return Nil, err
		}
	}
	addr := Addr(r.next)
	r.next += uint32(n)
	return addr, nil
}

// refill retires the current chunk tail into the free lists, then installs
// a new chunk: a recycled spare when one is big enough for the pending
// request, otherwise a fresh line-aligned block from the shared pointer.
func (r *Reserver) refill(need uint32) error {
	if tail := r.limit - r.next; tail > 0 && !r.norecycle {
		r.release(Addr(r.next), tail)
	}
	r.next, r.limit = 0, 0
	// Adopt the largest spare as the new chunk when it covers the request:
	// recycled tails and large frees become bump space again.
	if best := r.largestSpare(); best >= 0 && r.spares[best].n >= need {
		sp := r.spares[best]
		r.spares[best] = r.spares[len(r.spares)-1]
		r.spares = r.spares[:len(r.spares)-1]
		r.recycled += uint64(sp.n)
		r.next, r.limit = uint32(sp.addr), uint32(sp.addr)+sp.n
		return nil
	}
	r.refills++
	start, err := r.a.tryAllocAligned(int(r.chunk))
	if err != nil {
		return err
	}
	r.next, r.limit = uint32(start), uint32(start)+r.chunk
	return nil
}

// largestSpare returns the index of the biggest spare block (-1 when none).
func (r *Reserver) largestSpare() int {
	best := -1
	for i := range r.spares {
		if best < 0 || r.spares[i].n > r.spares[best].n {
			best = i
		}
	}
	return best
}

// carveSpare takes an n-word prefix of any spare block that fits, returning
// the remainder to the free lists.
func (r *Reserver) carveSpare(n uint32) (Addr, bool) {
	for i := range r.spares {
		sp := r.spares[i]
		if sp.n < n {
			continue
		}
		r.spares[i] = r.spares[len(r.spares)-1]
		r.spares = r.spares[:len(r.spares)-1]
		r.recycled += uint64(n)
		if rest := sp.n - n; rest > 0 {
			r.release(sp.addr+Addr(n), rest)
		}
		return sp.addr, true
	}
	return Nil, false
}

// release files a free block under its size class (or the spares).
func (r *Reserver) release(addr Addr, n uint32) {
	if r.norecycle || addr == Nil || n == 0 {
		return
	}
	if n <= freeClasses {
		r.classes[n] = append(r.classes[n], addr)
		return
	}
	r.spares = append(r.spares, span{addr, n})
}

// TxFree records a transactional free of the n-word block at addr. The free
// is deferred: it reaches the free lists only when the attempt commits
// (OnCommit), so an aborted attempt's frees — whose loads may have been
// inconsistent — never recycle live memory.
func (r *Reserver) TxFree(addr Addr, n int) {
	if r.norecycle || addr == Nil || n <= 0 {
		return
	}
	r.freeLog = append(r.freeLog, span{addr, uint32(n)})
}

// Free releases a block immediately (non-transactional callers that know
// the block is unreachable, e.g. compaction discarding a dead arena region).
func (r *Reserver) Free(addr Addr, n int) {
	if n > 0 {
		r.release(addr, uint32(n))
	}
}

// OnCommit seals the current attempt: deferred frees reach the free lists
// and the speculative-allocation log is forgotten (the blocks are now
// reachable). Called once per committed atomic block by the runtimes.
func (r *Reserver) OnCommit() {
	for _, sp := range r.freeLog {
		r.release(sp.addr, sp.n)
	}
	r.freeLog = r.freeLog[:0]
	r.allocLog = r.allocLog[:0]
}

// OnAbort rolls the current attempt back: speculative allocations return to
// the free lists (nothing committed can reference them) and deferred frees
// are dropped. Called once per aborted attempt by the runtimes.
func (r *Reserver) OnAbort() {
	for _, sp := range r.allocLog {
		r.release(sp.addr, sp.n)
	}
	r.allocLog = r.allocLog[:0]
	r.freeLog = r.freeLog[:0]
}

// Refills returns how many times this Reserver went to the shared bump
// pointer — the number of contended atomics its allocations have cost
// (excluding oversized requests, which always go shared).
func (r *Reserver) Refills() uint64 { return r.refills }

// Recycled returns the words served from this Reserver's free lists instead
// of the shared pointer — the allocation volume that did not advance the
// arena high-water mark.
func (r *Reserver) Recycled() uint64 { return r.recycled }

// Load atomically reads the word at addr.
func (a *Arena) Load(addr Addr) uint64 { return atomic.LoadUint64(&a.words[addr]) }

// Store atomically writes the word at addr.
func (a *Arena) Store(addr Addr, v uint64) { atomic.StoreUint64(&a.words[addr], v) }

// CompareAndSwap atomically CASes the word at addr.
func (a *Arena) CompareAndSwap(addr Addr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&a.words[addr], old, new)
}

// Float helpers: several applications (kmeans, yada, bayes) store float64
// values in arena words as IEEE-754 bit patterns.

// F2W converts a float64 to its word representation.
func F2W(f float64) uint64 { return math.Float64bits(f) }

// W2F converts a word back to float64.
func W2F(w uint64) float64 { return math.Float64frombits(w) }

// Direct is a non-transactional accessor over an arena. It satisfies the
// same read/write/alloc contract as a transaction (tm.Mem), which lets the
// container library and application setup code run outside any transaction
// — exactly like STAMP's sequential initialization phases.
type Direct struct{ A *Arena }

// Load reads the word at addr without any transactional bookkeeping.
func (d Direct) Load(addr Addr) uint64 { return d.A.Load(addr) }

// Store writes the word at addr without any transactional bookkeeping.
func (d Direct) Store(addr Addr, v uint64) { d.A.Store(addr, v) }

// Alloc allocates from the underlying arena.
func (d Direct) Alloc(n int) Addr { return d.A.Alloc(n) }

// Free is a no-op: Direct has no per-thread free list to recycle into (the
// arena only recycles through Reservers); present to satisfy the tm.Mem
// contract's sized-free signature.
func (d Direct) Free(Addr, int) {}
