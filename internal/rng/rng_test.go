package rng

import (
	"math"
	"sort"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("gaussian mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("gaussian variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		q := append([]int(nil), p...)
		sort.Ints(q)
		for i, v := range q {
			if v != i {
				t.Fatalf("Perm(%d) missing %d", n, i)
			}
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(23)
	s := []int{5, 6, 7, 8, 9}
	r.ShuffleInts(s)
	q := append([]int(nil), s...)
	sort.Ints(q)
	for i, v := range q {
		if v != i+5 {
			t.Fatal("shuffle lost elements")
		}
	}
}

func TestUint32NotConstant(t *testing.T) {
	r := New(29)
	first := r.Uint32()
	for i := 0; i < 10; i++ {
		if r.Uint32() != first {
			return
		}
	}
	t.Fatal("Uint32 appears constant")
}
