// Package rng provides the suite's deterministic pseudo-random number
// generator. Every workload generator is seeded from its variant definition,
// so inputs — gene strings, network flows, point clouds, mazes, graphs — are
// bit-reproducible across runs and across TM systems, mirroring STAMP's
// random.c (a Mersenne twister). We use splitmix64, which is far smaller,
// passes the statistical tests that matter at benchmark scale, and needs no
// state array.
package rng

import "math"

// Rand is a deterministic splitmix64 generator. It is not safe for
// concurrent use; each thread derives its own stream with Split.
type Rand struct {
	state uint64
	// cached spare gaussian value (Box–Muller produces pairs)
	spare    float64
	hasSpare bool
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives an independent stream (for per-thread generators) from r.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal deviate via Box–Muller.
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
