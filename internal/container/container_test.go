package container

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
)

func direct() mem.Direct { return mem.Direct{A: mem.NewArena(1 << 22)} }

// --- List ---

func TestListBasics(t *testing.T) {
	m := direct()
	l := NewList(m)
	if l.Len(m) != 0 {
		t.Fatal("new list not empty")
	}
	if !l.Insert(m, 5, 50) || !l.Insert(m, 3, 30) || !l.Insert(m, 7, 70) {
		t.Fatal("insert failed")
	}
	if l.Insert(m, 5, 99) {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := l.Get(m, 5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	if l.Len(m) != 3 {
		t.Fatalf("len = %d", l.Len(m))
	}
	var keys []uint64
	l.Each(m, func(k, v uint64) bool { keys = append(keys, k); return true })
	if len(keys) != 3 || keys[0] != 3 || keys[1] != 5 || keys[2] != 7 {
		t.Fatalf("order = %v", keys)
	}
	if !l.Remove(m, 5) || l.Remove(m, 5) {
		t.Fatal("remove semantics wrong")
	}
	if l.Len(m) != 2 || l.Contains(m, 5) {
		t.Fatal("remove did not take effect")
	}
	if !l.Update(m, 3, 31) || l.Update(m, 99, 1) {
		t.Fatal("update semantics wrong")
	}
	if v, _ := l.Get(m, 3); v != 31 {
		t.Fatal("update lost")
	}
	if k, v, ok := l.First(m); !ok || k != 3 || v != 31 {
		t.Fatalf("First = %d,%d,%v", k, v, ok)
	}
}

func TestListEachStops(t *testing.T) {
	m := direct()
	l := NewList(m)
	for i := uint64(0); i < 10; i++ {
		l.Insert(m, i, i)
	}
	n := 0
	l.Each(m, func(k, v uint64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d", n)
	}
}

func TestListModelProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := direct()
		l := NewList(m)
		model := map[uint64]uint64{}
		for i, op := range ops {
			k := uint64(op % 64)
			switch i % 3 {
			case 0:
				inserted := l.Insert(m, k, uint64(i))
				_, existed := model[k]
				if inserted == existed {
					return false
				}
				if !existed {
					model[k] = uint64(i)
				}
			case 1:
				removed := l.Remove(m, k)
				_, existed := model[k]
				if removed != existed {
					return false
				}
				delete(model, k)
			case 2:
				v, ok := l.Get(m, k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			}
		}
		if l.Len(m) != len(model) {
			return false
		}
		// sorted order check
		var prev int64 = -1
		sorted := true
		l.Each(m, func(k, v uint64) bool {
			if int64(k) <= prev {
				sorted = false
			}
			prev = int64(k)
			return true
		})
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- Queue ---

func TestQueueFIFO(t *testing.T) {
	m := direct()
	q := NewQueue(m, 2)
	for i := uint64(0); i < 100; i++ {
		q.Push(m, i)
	}
	if q.Len(m) != 100 {
		t.Fatalf("len = %d", q.Len(m))
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := q.Pop(m)
		if !ok || v != i {
			t.Fatalf("pop %d = %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Pop(m); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestQueueInterleaved(t *testing.T) {
	m := direct()
	q := NewQueue(m, 2)
	r := rng.New(5)
	var model []uint64
	for i := 0; i < 2000; i++ {
		if r.Intn(3) != 0 {
			v := r.Uint64()
			q.Push(m, v)
			model = append(model, v)
		} else if len(model) > 0 {
			v, ok := q.Pop(m)
			if !ok || v != model[0] {
				t.Fatalf("step %d: pop = %d,%v want %d", i, v, ok, model[0])
			}
			model = model[1:]
		}
	}
	if q.Len(m) != len(model) {
		t.Fatalf("len = %d want %d", q.Len(m), len(model))
	}
}

// --- Vector ---

func TestVectorPushAtSet(t *testing.T) {
	m := direct()
	v := NewVector(m, 1)
	for i := uint64(0); i < 500; i++ {
		v.PushBack(m, i*2)
	}
	if v.Len(m) != 500 {
		t.Fatalf("len = %d", v.Len(m))
	}
	for i := 0; i < 500; i++ {
		if v.At(m, i) != uint64(i*2) {
			t.Fatalf("At(%d) = %d", i, v.At(m, i))
		}
	}
	v.Set(m, 10, 999)
	if v.At(m, 10) != 999 {
		t.Fatal("Set lost")
	}
	if val, ok := v.PopBack(m); !ok || val != 998 {
		t.Fatalf("PopBack = %d,%v", val, ok)
	}
	v.Clear(m)
	if v.Len(m) != 0 {
		t.Fatal("Clear failed")
	}
	if _, ok := v.PopBack(m); ok {
		t.Fatal("PopBack on empty")
	}
}

// --- Bitmap ---

func TestBitmapSetTestClear(t *testing.T) {
	m := direct()
	b := NewBitmap(m, 300)
	if b.Bits(m) != 300 {
		t.Fatalf("bits = %d", b.Bits(m))
	}
	for i := 0; i < 300; i += 3 {
		if !b.Set(m, i) {
			t.Fatalf("Set(%d) reported already set", i)
		}
	}
	if b.Set(m, 0) {
		t.Fatal("double Set(0) reported newly set")
	}
	if b.Count(m) != 100 {
		t.Fatalf("count = %d", b.Count(m))
	}
	for i := 0; i < 300; i++ {
		if b.Test(m, i) != (i%3 == 0) {
			t.Fatalf("Test(%d) wrong", i)
		}
	}
	b.Clear(m, 0)
	if b.Test(m, 0) {
		t.Fatal("Clear(0) failed")
	}
	if got := b.FindClear(m, 0); got != 0 {
		t.Fatalf("FindClear = %d", got)
	}
	if got := b.FindClear(m, 3); got != 4 {
		t.Fatalf("FindClear(3) = %d", got)
	}
}

func TestBitmapFindClearExhausted(t *testing.T) {
	m := direct()
	b := NewBitmap(m, 10)
	for i := 0; i < 10; i++ {
		b.Set(m, i)
	}
	if got := b.FindClear(m, 0); got != -1 {
		t.Fatalf("FindClear on full = %d", got)
	}
}

// --- Hashtable ---

func TestHashtableBasics(t *testing.T) {
	m := direct()
	h := NewHashtable(m, 16)
	for i := uint64(0); i < 1000; i++ {
		if !h.Insert(m, i*7, i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if h.Len(m) != 1000 {
		t.Fatalf("len = %d", h.Len(m))
	}
	if h.Insert(m, 7, 0) {
		t.Fatal("duplicate insert succeeded")
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := h.Get(m, i*7); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*7, v, ok)
		}
	}
	if h.Contains(m, 3) {
		t.Fatal("phantom key")
	}
	if !h.Remove(m, 14) || h.Remove(m, 14) {
		t.Fatal("remove semantics")
	}
	if h.Len(m) != 999 {
		t.Fatalf("len after remove = %d", h.Len(m))
	}
	count := 0
	h.Each(m, func(k, v uint64) bool { count++; return true })
	if count != 999 {
		t.Fatalf("Each visited %d", count)
	}
}

func TestHashtableModelProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		m := direct()
		h := NewHashtable(m, 8)
		model := map[uint64]uint64{}
		for i, k := range keys {
			switch i % 4 {
			case 0, 1:
				ins := h.Insert(m, k, uint64(i))
				_, ex := model[k]
				if ins == ex {
					return false
				}
				if !ex {
					model[k] = uint64(i)
				}
			case 2:
				rm := h.Remove(m, k)
				_, ex := model[k]
				if rm != ex {
					return false
				}
				delete(model, k)
			case 3:
				v, ok := h.Get(m, k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			}
		}
		return h.Len(m) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- Heap ---

func TestHeapOrdering(t *testing.T) {
	m := direct()
	h := NewHeap(m, 2)
	r := rng.New(42)
	var keys []uint64
	for i := 0; i < 500; i++ {
		k := r.Uint64() % 10000
		keys = append(keys, k)
		h.Push(m, k, k*10)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if h.Len(m) != 500 {
		t.Fatalf("len = %d", h.Len(m))
	}
	if k, _, ok := h.Peek(m); !ok || k != keys[0] {
		t.Fatalf("peek = %d want %d", k, keys[0])
	}
	for i, want := range keys {
		k, v, ok := h.Pop(m)
		if !ok || k != want || v != k*10 {
			t.Fatalf("pop %d = (%d,%d,%v) want key %d", i, k, v, ok, want)
		}
	}
	if _, _, ok := h.Pop(m); ok {
		t.Fatal("pop from empty")
	}
}

func TestHeapProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		m := direct()
		h := NewHeap(m, 2)
		for _, v := range vals {
			h.Push(m, v, 0)
		}
		prev := uint64(0)
		for range vals {
			k, _, ok := h.Pop(m)
			if !ok || k < prev {
				return false
			}
			prev = k
		}
		return h.Len(m) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// --- RBTree ---

func TestRBTreeBasics(t *testing.T) {
	m := direct()
	tr := NewRBTree(m)
	for i := uint64(0); i < 200; i++ {
		if !tr.Insert(m, i*3, i) {
			t.Fatalf("insert %d", i)
		}
	}
	if tr.Insert(m, 3, 0) {
		t.Fatal("duplicate insert")
	}
	if tr.Len(m) != 200 {
		t.Fatalf("len = %d", tr.Len(m))
	}
	if bh := tr.checkInvariants(m); bh < 0 {
		t.Fatal("red-black invariants violated after inserts")
	}
	for i := uint64(0); i < 200; i++ {
		if v, ok := tr.Get(m, i*3); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*3, v, ok)
		}
	}
	if tr.Contains(m, 1) {
		t.Fatal("phantom")
	}
	if k, v, ok := tr.Ceil(m, 4); !ok || k != 6 || v != 2 {
		t.Fatalf("Ceil(4) = %d,%d,%v", k, v, ok)
	}
	if k, _, ok := tr.Ceil(m, 0); !ok || k != 0 {
		t.Fatalf("Ceil(0) = %d", k)
	}
	if _, _, ok := tr.Ceil(m, 1000); ok {
		t.Fatal("Ceil past max")
	}
	// ordered traversal
	var prev int64 = -1
	tr.Each(m, func(k, v uint64) bool {
		if int64(k) <= prev {
			t.Fatalf("out of order at %d", k)
		}
		prev = int64(k)
		return true
	})
	// removals
	for i := uint64(0); i < 200; i += 2 {
		if !tr.Remove(m, i*3) {
			t.Fatalf("remove %d", i*3)
		}
	}
	if tr.Remove(m, 0) {
		t.Fatal("double remove")
	}
	if tr.Len(m) != 100 {
		t.Fatalf("len = %d", tr.Len(m))
	}
	if bh := tr.checkInvariants(m); bh < 0 {
		t.Fatal("red-black invariants violated after removals")
	}
}

func TestRBTreeUpdate(t *testing.T) {
	m := direct()
	tr := NewRBTree(m)
	tr.Insert(m, 9, 1)
	if !tr.Update(m, 9, 2) || tr.Update(m, 8, 2) {
		t.Fatal("update semantics")
	}
	if v, _ := tr.Get(m, 9); v != 2 {
		t.Fatal("update lost")
	}
}

func TestRBTreeModelProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := direct()
		tr := NewRBTree(m)
		model := map[uint64]uint64{}
		r := rng.New(seed)
		steps := int(n%512) + 64
		for i := 0; i < steps; i++ {
			k := uint64(r.Intn(128))
			switch r.Intn(3) {
			case 0:
				ins := tr.Insert(m, k, uint64(i))
				_, ex := model[k]
				if ins == ex {
					return false
				}
				if !ex {
					model[k] = uint64(i)
				}
			case 1:
				rm := tr.Remove(m, k)
				_, ex := model[k]
				if rm != ex {
					return false
				}
				delete(model, k)
			case 2:
				v, ok := tr.Get(m, k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			}
			if tr.checkInvariants(m) < 0 {
				return false
			}
		}
		if tr.Len(m) != len(model) {
			return false
		}
		// Full content comparison.
		got := map[uint64]uint64{}
		tr.Each(m, func(k, v uint64) bool { got[k] = v; return true })
		if len(got) != len(model) {
			return false
		}
		for k, v := range model {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeLargeSequential(t *testing.T) {
	m := direct()
	tr := NewRBTree(m)
	const n = 20000
	for i := uint64(0); i < n; i++ {
		tr.Insert(m, i, i)
	}
	if bh := tr.checkInvariants(m); bh < 0 {
		t.Fatal("invariants violated on sequential inserts")
	}
	// A balanced tree of 20k nodes has black height around log2(n)/2..log2(n).
	for i := uint64(0); i < n; i += 2 {
		tr.Remove(m, i)
	}
	if bh := tr.checkInvariants(m); bh < 0 {
		t.Fatal("invariants violated after deleting half")
	}
	if tr.Len(m) != n/2 {
		t.Fatalf("len = %d", tr.Len(m))
	}
}
