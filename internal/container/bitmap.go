package container

import (
	"math/bits"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

// Bitmap is a fixed-size bit array (the original suite's bitmap.c, used by
// ssca2 and bayes). The handle addresses [nbits, data...] stored inline.
type Bitmap struct{ H mem.Addr }

const bmBits = 0
const bmData = 1

// NewBitmap allocates a bitmap of n bits, all clear.
func NewBitmap(m tm.Mem, n int) Bitmap {
	words := (n + 63) / 64
	h := m.Alloc(1 + words)
	m.Store(h+bmBits, uint64(n))
	for i := 0; i < words; i++ {
		m.Store(h+bmData+mem.Addr(i), 0)
	}
	return Bitmap{H: h}
}

// Bits returns the bitmap size in bits.
func (b Bitmap) Bits(m tm.Mem) int { return int(m.Load(b.H + bmBits)) }

// Set sets bit i, reporting whether it was previously clear.
func (b Bitmap) Set(m tm.Mem, i int) bool {
	w := b.H + bmData + mem.Addr(i/64)
	old := m.Load(w)
	bit := uint64(1) << uint(i%64)
	if old&bit != 0 {
		return false
	}
	m.Store(w, old|bit)
	return true
}

// Clear clears bit i.
func (b Bitmap) Clear(m tm.Mem, i int) {
	w := b.H + bmData + mem.Addr(i/64)
	m.Store(w, m.Load(w)&^(uint64(1)<<uint(i%64)))
}

// Test reports bit i.
func (b Bitmap) Test(m tm.Mem, i int) bool {
	return m.Load(b.H+bmData+mem.Addr(i/64))&(uint64(1)<<uint(i%64)) != 0
}

// Count returns the number of set bits.
func (b Bitmap) Count(m tm.Mem) int {
	n := b.Bits(m)
	words := (n + 63) / 64
	total := 0
	for i := 0; i < words; i++ {
		total += bits.OnesCount64(m.Load(b.H + bmData + mem.Addr(i)))
	}
	return total
}

// FindClear returns the index of the first clear bit at or after from, or -1.
func (b Bitmap) FindClear(m tm.Mem, from int) int {
	n := b.Bits(m)
	for i := from; i < n; i++ {
		if !b.Test(m, i) {
			return i
		}
	}
	return -1
}
