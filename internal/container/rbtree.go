package container

import (
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

// RBTree is a red-black tree map with unique uint64 keys, mirroring the
// original suite's rbtree.c (vacation's database tables, intruder's session
// dictionary — "a dictionary implemented by a self-balancing tree"). The
// handle addresses a 2-word header: [root, size]. Nodes are 6 words:
// [key, val, left, right, parent, color].
type RBTree struct{ H mem.Addr }

const (
	rbRoot = 0
	rbSize = 1

	rnKey       = 0
	rnVal       = 1
	rnLeft      = 2
	rnRight     = 3
	rnParent    = 4
	rnColor     = 5
	rbNodeWords = 6

	black = 0
	red   = 1
)

// NewRBTree allocates an empty tree.
func NewRBTree(m tm.Mem) RBTree {
	h := m.Alloc(2)
	m.Store(h+rbRoot, uint64(mem.Nil))
	m.Store(h+rbSize, 0)
	return RBTree{H: h}
}

// Len returns the element count.
func (t RBTree) Len(m tm.Mem) int { return int(m.Load(t.H + rbSize)) }

func (t RBTree) root(m tm.Mem) mem.Addr { return mem.Addr(m.Load(t.H + rbRoot)) }

// colorOf treats nil as black, per the red-black invariants.
func colorOf(m tm.Mem, n mem.Addr) uint64 {
	if n == mem.Nil {
		return black
	}
	return m.Load(n + rnColor)
}

func left(m tm.Mem, n mem.Addr) mem.Addr   { return mem.Addr(m.Load(n + rnLeft)) }
func right(m tm.Mem, n mem.Addr) mem.Addr  { return mem.Addr(m.Load(n + rnRight)) }
func parent(m tm.Mem, n mem.Addr) mem.Addr { return mem.Addr(m.Load(n + rnParent)) }

// lookup returns the node with key k, or nil.
func (t RBTree) lookup(m tm.Mem, k uint64) mem.Addr {
	n := t.root(m)
	for n != mem.Nil {
		nk := m.Load(n + rnKey)
		switch {
		case k < nk:
			n = left(m, n)
		case k > nk:
			n = right(m, n)
		default:
			return n
		}
	}
	return mem.Nil
}

// Get returns the value stored under k.
func (t RBTree) Get(m tm.Mem, k uint64) (uint64, bool) {
	n := t.lookup(m, k)
	if n == mem.Nil {
		return 0, false
	}
	return m.Load(n + rnVal), true
}

// Contains reports whether k is present.
func (t RBTree) Contains(m tm.Mem, k uint64) bool { return t.lookup(m, k) != mem.Nil }

// Update stores v under existing key k.
func (t RBTree) Update(m tm.Mem, k, v uint64) bool {
	n := t.lookup(m, k)
	if n == mem.Nil {
		return false
	}
	m.Store(n+rnVal, v)
	return true
}

func (t RBTree) rotateLeft(m tm.Mem, x mem.Addr) {
	y := right(m, x)
	yl := left(m, y)
	m.Store(x+rnRight, uint64(yl))
	if yl != mem.Nil {
		m.Store(yl+rnParent, uint64(x))
	}
	xp := parent(m, x)
	m.Store(y+rnParent, uint64(xp))
	switch {
	case xp == mem.Nil:
		m.Store(t.H+rbRoot, uint64(y))
	case x == left(m, xp):
		m.Store(xp+rnLeft, uint64(y))
	default:
		m.Store(xp+rnRight, uint64(y))
	}
	m.Store(y+rnLeft, uint64(x))
	m.Store(x+rnParent, uint64(y))
}

func (t RBTree) rotateRight(m tm.Mem, x mem.Addr) {
	y := left(m, x)
	yr := right(m, y)
	m.Store(x+rnLeft, uint64(yr))
	if yr != mem.Nil {
		m.Store(yr+rnParent, uint64(x))
	}
	xp := parent(m, x)
	m.Store(y+rnParent, uint64(xp))
	switch {
	case xp == mem.Nil:
		m.Store(t.H+rbRoot, uint64(y))
	case x == right(m, xp):
		m.Store(xp+rnRight, uint64(y))
	default:
		m.Store(xp+rnLeft, uint64(y))
	}
	m.Store(y+rnRight, uint64(x))
	m.Store(x+rnParent, uint64(y))
}

// Insert adds (k, v); it reports false if k is already present.
func (t RBTree) Insert(m tm.Mem, k, v uint64) bool {
	var p mem.Addr = mem.Nil
	n := t.root(m)
	for n != mem.Nil {
		p = n
		nk := m.Load(n + rnKey)
		switch {
		case k < nk:
			n = left(m, n)
		case k > nk:
			n = right(m, n)
		default:
			return false
		}
	}
	z := m.Alloc(rbNodeWords)
	m.Store(z+rnKey, k)
	m.Store(z+rnVal, v)
	m.Store(z+rnLeft, uint64(mem.Nil))
	m.Store(z+rnRight, uint64(mem.Nil))
	m.Store(z+rnParent, uint64(p))
	m.Store(z+rnColor, red)
	switch {
	case p == mem.Nil:
		m.Store(t.H+rbRoot, uint64(z))
	case k < m.Load(p+rnKey):
		m.Store(p+rnLeft, uint64(z))
	default:
		m.Store(p+rnRight, uint64(z))
	}
	t.insertFixup(m, z)
	m.Store(t.H+rbSize, m.Load(t.H+rbSize)+1)
	return true
}

func (t RBTree) insertFixup(m tm.Mem, z mem.Addr) {
	for {
		zp := parent(m, z)
		if zp == mem.Nil || colorOf(m, zp) == black {
			break
		}
		zpp := parent(m, zp)
		if zp == left(m, zpp) {
			u := right(m, zpp)
			if colorOf(m, u) == red {
				m.Store(zp+rnColor, black)
				m.Store(u+rnColor, black)
				m.Store(zpp+rnColor, red)
				z = zpp
				continue
			}
			if z == right(m, zp) {
				z = zp
				t.rotateLeft(m, z)
				zp = parent(m, z)
				zpp = parent(m, zp)
			}
			m.Store(zp+rnColor, black)
			m.Store(zpp+rnColor, red)
			t.rotateRight(m, zpp)
		} else {
			u := left(m, zpp)
			if colorOf(m, u) == red {
				m.Store(zp+rnColor, black)
				m.Store(u+rnColor, black)
				m.Store(zpp+rnColor, red)
				z = zpp
				continue
			}
			if z == left(m, zp) {
				z = zp
				t.rotateRight(m, z)
				zp = parent(m, z)
				zpp = parent(m, zp)
			}
			m.Store(zp+rnColor, black)
			m.Store(zpp+rnColor, red)
			t.rotateLeft(m, zpp)
		}
	}
	m.Store(t.root(m)+rnColor, black)
}

// transplant replaces subtree u with subtree v (v may be nil).
func (t RBTree) transplant(m tm.Mem, u, v mem.Addr) {
	up := parent(m, u)
	switch {
	case up == mem.Nil:
		m.Store(t.H+rbRoot, uint64(v))
	case u == left(m, up):
		m.Store(up+rnLeft, uint64(v))
	default:
		m.Store(up+rnRight, uint64(v))
	}
	if v != mem.Nil {
		m.Store(v+rnParent, uint64(up))
	}
}

func (t RBTree) minimum(m tm.Mem, n mem.Addr) mem.Addr {
	for left(m, n) != mem.Nil {
		n = left(m, n)
	}
	return n
}

// Remove deletes key k, reporting whether it was present.
func (t RBTree) Remove(m tm.Mem, k uint64) bool {
	z := t.lookup(m, k)
	if z == mem.Nil {
		return false
	}
	yColor := colorOf(m, z)
	var x, xp mem.Addr
	switch {
	case left(m, z) == mem.Nil:
		x, xp = right(m, z), parent(m, z)
		t.transplant(m, z, right(m, z))
	case right(m, z) == mem.Nil:
		x, xp = left(m, z), parent(m, z)
		t.transplant(m, z, left(m, z))
	default:
		y := t.minimum(m, right(m, z))
		yColor = colorOf(m, y)
		x = right(m, y)
		if parent(m, y) == z {
			xp = y
		} else {
			xp = parent(m, y)
			t.transplant(m, y, right(m, y))
			zr := right(m, z)
			m.Store(y+rnRight, uint64(zr))
			m.Store(zr+rnParent, uint64(y))
		}
		t.transplant(m, z, y)
		zl := left(m, z)
		m.Store(y+rnLeft, uint64(zl))
		m.Store(zl+rnParent, uint64(y))
		m.Store(y+rnColor, colorOf(m, z))
	}
	if yColor == black {
		t.removeFixup(m, x, xp)
	}
	m.Free(z, rbNodeWords)
	m.Store(t.H+rbSize, m.Load(t.H+rbSize)-1)
	return true
}

// removeFixup restores the red-black invariants after removing a black
// node. x may be nil, so its parent xp is tracked explicitly.
func (t RBTree) removeFixup(m tm.Mem, x, xp mem.Addr) {
	for x != t.root(m) && colorOf(m, x) == black {
		if x == left(m, xp) {
			w := right(m, xp)
			if colorOf(m, w) == red {
				m.Store(w+rnColor, black)
				m.Store(xp+rnColor, red)
				t.rotateLeft(m, xp)
				w = right(m, xp)
			}
			if colorOf(m, left(m, w)) == black && colorOf(m, right(m, w)) == black {
				m.Store(w+rnColor, red)
				x, xp = xp, parent(m, xp)
			} else {
				if colorOf(m, right(m, w)) == black {
					wl := left(m, w)
					m.Store(wl+rnColor, black)
					m.Store(w+rnColor, red)
					t.rotateRight(m, w)
					w = right(m, xp)
				}
				m.Store(w+rnColor, colorOf(m, xp))
				m.Store(xp+rnColor, black)
				wr := right(m, w)
				if wr != mem.Nil {
					m.Store(wr+rnColor, black)
				}
				t.rotateLeft(m, xp)
				x, xp = t.root(m), mem.Nil
			}
		} else {
			w := left(m, xp)
			if colorOf(m, w) == red {
				m.Store(w+rnColor, black)
				m.Store(xp+rnColor, red)
				t.rotateRight(m, xp)
				w = left(m, xp)
			}
			if colorOf(m, right(m, w)) == black && colorOf(m, left(m, w)) == black {
				m.Store(w+rnColor, red)
				x, xp = xp, parent(m, xp)
			} else {
				if colorOf(m, left(m, w)) == black {
					wr := right(m, w)
					m.Store(wr+rnColor, black)
					m.Store(w+rnColor, red)
					t.rotateLeft(m, w)
					w = left(m, xp)
				}
				m.Store(w+rnColor, colorOf(m, xp))
				m.Store(xp+rnColor, black)
				wl := left(m, w)
				if wl != mem.Nil {
					m.Store(wl+rnColor, black)
				}
				t.rotateRight(m, xp)
				x, xp = t.root(m), mem.Nil
			}
		}
	}
	if x != mem.Nil {
		m.Store(x+rnColor, black)
	}
}

// Each calls fn(key, value) in ascending key order; fn returning false
// stops the walk.
func (t RBTree) Each(m tm.Mem, fn func(k, v uint64) bool) {
	// Iterative in-order traversal with an explicit (non-arena) stack.
	var stack []mem.Addr
	n := t.root(m)
	for n != mem.Nil || len(stack) > 0 {
		for n != mem.Nil {
			stack = append(stack, n)
			n = left(m, n)
		}
		n = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(m.Load(n+rnKey), m.Load(n+rnVal)) {
			return
		}
		n = right(m, n)
	}
}

// Ceil returns the smallest key >= k and its value.
func (t RBTree) Ceil(m tm.Mem, k uint64) (key, val uint64, ok bool) {
	n := t.root(m)
	best := mem.Nil
	for n != mem.Nil {
		nk := m.Load(n + rnKey)
		switch {
		case nk == k:
			return nk, m.Load(n + rnVal), true
		case nk > k:
			best = n
			n = left(m, n)
		default:
			n = right(m, n)
		}
	}
	if best == mem.Nil {
		return 0, 0, false
	}
	return m.Load(best + rnKey), m.Load(best + rnVal), true
}

// checkInvariants verifies the red-black properties (tests only): root is
// black, no red node has a red child, and every root-to-nil path has the
// same black height. It returns the black height or -1 on violation.
func (t RBTree) checkInvariants(m tm.Mem) int {
	root := t.root(m)
	if root == mem.Nil {
		return 0
	}
	if colorOf(m, root) != black {
		return -1
	}
	var walk func(n mem.Addr) int
	walk = func(n mem.Addr) int {
		if n == mem.Nil {
			return 1
		}
		l, r := left(m, n), right(m, n)
		if colorOf(m, n) == red && (colorOf(m, l) == red || colorOf(m, r) == red) {
			return -1
		}
		if l != mem.Nil && parent(m, l) != n {
			return -1
		}
		if r != mem.Nil && parent(m, r) != n {
			return -1
		}
		lh, rh := walk(l), walk(r)
		if lh < 0 || rh < 0 || lh != rh {
			return -1
		}
		if colorOf(m, n) == black {
			return lh + 1
		}
		return lh
	}
	return walk(root)
}
