package container

import (
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

// Vector is a growable word array (the original suite's vector.c). The
// handle addresses a 3-word header: [len, cap, dataPtr].
type Vector struct{ H mem.Addr }

const (
	vLen  = 0
	vCap  = 1
	vData = 2
)

// NewVector allocates an empty vector with the given initial capacity.
func NewVector(m tm.Mem, capacity int) Vector {
	if capacity < 1 {
		capacity = 1
	}
	h := m.Alloc(3)
	data := m.Alloc(capacity)
	m.Store(h+vLen, 0)
	m.Store(h+vCap, uint64(capacity))
	m.Store(h+vData, uint64(data))
	return Vector{H: h}
}

// Len returns the element count.
func (v Vector) Len(m tm.Mem) int { return int(m.Load(v.H + vLen)) }

// At returns element i (caller guarantees i < Len).
func (v Vector) At(m tm.Mem, i int) uint64 {
	data := mem.Addr(m.Load(v.H + vData))
	return m.Load(data + mem.Addr(i))
}

// Set overwrites element i (caller guarantees i < Len).
func (v Vector) Set(m tm.Mem, i int, val uint64) {
	data := mem.Addr(m.Load(v.H + vData))
	m.Store(data+mem.Addr(i), val)
}

// PushBack appends val, growing if needed.
func (v Vector) PushBack(m tm.Mem, val uint64) {
	n := m.Load(v.H + vLen)
	capa := m.Load(v.H + vCap)
	data := mem.Addr(m.Load(v.H + vData))
	if n == capa {
		newCap := capa * 2
		newData := m.Alloc(int(newCap))
		for i := uint64(0); i < n; i++ {
			m.Store(newData+mem.Addr(i), m.Load(data+mem.Addr(i)))
		}
		m.Free(data, int(capa))
		data = newData
		m.Store(v.H+vCap, newCap)
		m.Store(v.H+vData, uint64(data))
	}
	m.Store(data+mem.Addr(n), val)
	m.Store(v.H+vLen, n+1)
}

// PopBack removes and returns the last element.
func (v Vector) PopBack(m tm.Mem) (val uint64, ok bool) {
	n := m.Load(v.H + vLen)
	if n == 0 {
		return 0, false
	}
	data := mem.Addr(m.Load(v.H + vData))
	val = m.Load(data + mem.Addr(n-1))
	m.Store(v.H+vLen, n-1)
	return val, true
}

// Clear resets the length to zero (capacity is kept).
func (v Vector) Clear(m tm.Mem) { m.Store(v.H+vLen, 0) }
