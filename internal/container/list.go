// Package container is the transactional data-structure library the STAMP
// applications are built on, mirroring the original suite's lib/ directory
// (list, queue, hashtable, rbtree, heap, vector, bitmap). Every structure
// lives entirely in a mem.Arena and is manipulated through the tm.Mem
// contract, so the same code runs inside transactions (conflict-detected
// barrier accesses) and in sequential setup/verification phases (direct
// accesses via mem.Direct).
//
// Keys and values are uint64 words; applications layer typed views on top
// (float64 bit patterns, arena addresses of records, packed tuples). Keys
// compare as unsigned integers.
package container

import (
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

// List is a sorted singly-linked list with unique keys, the workhorse of
// the original suite (hashtable buckets, adjacency lists, reservation
// lists). The handle is the address of a 2-word header: [size, first].
type List struct{ H mem.Addr }

const (
	listSize  = 0 // header word offsets
	listFirst = 1

	nodeKey       = 0 // node word offsets
	nodeVal       = 1
	nodeNext      = 2
	listNodeWords = 3
)

// NewList allocates an empty list.
func NewList(m tm.Mem) List {
	h := m.Alloc(2)
	m.Store(h+listSize, 0)
	m.Store(h+listFirst, uint64(mem.Nil))
	return List{H: h}
}

// Len returns the number of elements.
func (l List) Len(m tm.Mem) int { return int(m.Load(l.H + listSize)) }

// find walks to the first node with key >= k, returning it and its
// predecessor (mem.Nil predecessor means the header's first pointer).
func (l List) find(m tm.Mem, k uint64) (prev, cur mem.Addr) {
	prev = mem.Nil
	cur = mem.Addr(m.Load(l.H + listFirst))
	for cur != mem.Nil {
		if m.Load(cur+nodeKey) >= k {
			return prev, cur
		}
		prev, cur = cur, mem.Addr(m.Load(cur+nodeNext))
	}
	return prev, mem.Nil
}

// Insert adds (k, v) keeping the list sorted; it reports false if k already
// exists (the value is left unchanged, as in the original list_insert).
func (l List) Insert(m tm.Mem, k, v uint64) bool {
	prev, cur := l.find(m, k)
	if cur != mem.Nil && m.Load(cur+nodeKey) == k {
		return false
	}
	n := m.Alloc(listNodeWords)
	m.Store(n+nodeKey, k)
	m.Store(n+nodeVal, v)
	m.Store(n+nodeNext, uint64(cur))
	if prev == mem.Nil {
		m.Store(l.H+listFirst, uint64(n))
	} else {
		m.Store(prev+nodeNext, uint64(n))
	}
	m.Store(l.H+listSize, m.Load(l.H+listSize)+1)
	return true
}

// Remove deletes key k, reporting whether it was present.
func (l List) Remove(m tm.Mem, k uint64) bool {
	prev, cur := l.find(m, k)
	if cur == mem.Nil || m.Load(cur+nodeKey) != k {
		return false
	}
	next := m.Load(cur + nodeNext)
	if prev == mem.Nil {
		m.Store(l.H+listFirst, next)
	} else {
		m.Store(prev+nodeNext, next)
	}
	m.Free(cur, listNodeWords)
	m.Store(l.H+listSize, m.Load(l.H+listSize)-1)
	return true
}

// Get returns the value stored under k.
func (l List) Get(m tm.Mem, k uint64) (v uint64, ok bool) {
	_, cur := l.find(m, k)
	if cur == mem.Nil || m.Load(cur+nodeKey) != k {
		return 0, false
	}
	return m.Load(cur + nodeVal), true
}

// Contains reports whether k is present.
func (l List) Contains(m tm.Mem, k uint64) bool {
	_, ok := l.Get(m, k)
	return ok
}

// Update stores v under existing key k, reporting whether k was present.
func (l List) Update(m tm.Mem, k, v uint64) bool {
	_, cur := l.find(m, k)
	if cur == mem.Nil || m.Load(cur+nodeKey) != k {
		return false
	}
	m.Store(cur+nodeVal, v)
	return true
}

// Each calls fn(key, value) in ascending key order; fn returning false stops
// the walk.
func (l List) Each(m tm.Mem, fn func(k, v uint64) bool) {
	for cur := mem.Addr(m.Load(l.H + listFirst)); cur != mem.Nil; cur = mem.Addr(m.Load(cur + nodeNext)) {
		if !fn(m.Load(cur+nodeKey), m.Load(cur+nodeVal)) {
			return
		}
	}
}

// First returns the smallest key and its value.
func (l List) First(m tm.Mem) (k, v uint64, ok bool) {
	cur := mem.Addr(m.Load(l.H + listFirst))
	if cur == mem.Nil {
		return 0, 0, false
	}
	return m.Load(cur + nodeKey), m.Load(cur + nodeVal), true
}
