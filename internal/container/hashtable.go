package container

import (
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

// Hashtable is a fixed-bucket chained hash map with unique uint64 keys,
// mirroring the original suite's hashtable.c (genome's segment set, among
// others). Each bucket is a sorted List. The handle addresses a 3-word
// header: [nbuckets, size, bucketsPtr]; bucket i's list header address is
// stored at bucketsPtr+i.
type Hashtable struct{ H mem.Addr }

const (
	htBuckets = 0
	htSize    = 1
	htData    = 2
)

// NewHashtable allocates a table with nBuckets chains.
func NewHashtable(m tm.Mem, nBuckets int) Hashtable {
	if nBuckets < 1 {
		nBuckets = 1
	}
	h := m.Alloc(3)
	data := m.Alloc(nBuckets)
	m.Store(h+htBuckets, uint64(nBuckets))
	m.Store(h+htSize, 0)
	m.Store(h+htData, uint64(data))
	for i := 0; i < nBuckets; i++ {
		l := NewList(m)
		m.Store(data+mem.Addr(i), uint64(l.H))
	}
	return Hashtable{H: h}
}

// mixKey spreads the key bits before bucket selection; keys may themselves
// be hashes or small dense integers.
func mixKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

func (t Hashtable) bucket(m tm.Mem, k uint64) List {
	n := m.Load(t.H + htBuckets)
	data := mem.Addr(m.Load(t.H + htData))
	i := mixKey(k) % n
	return List{H: mem.Addr(m.Load(data + mem.Addr(i)))}
}

// Len returns the element count.
func (t Hashtable) Len(m tm.Mem) int { return int(m.Load(t.H + htSize)) }

// Insert adds (k, v); it reports false if k is already present.
func (t Hashtable) Insert(m tm.Mem, k, v uint64) bool {
	if !t.bucket(m, k).Insert(m, k, v) {
		return false
	}
	m.Store(t.H+htSize, m.Load(t.H+htSize)+1)
	return true
}

// Remove deletes k, reporting whether it was present.
func (t Hashtable) Remove(m tm.Mem, k uint64) bool {
	if !t.bucket(m, k).Remove(m, k) {
		return false
	}
	m.Store(t.H+htSize, m.Load(t.H+htSize)-1)
	return true
}

// Get returns the value stored under k.
func (t Hashtable) Get(m tm.Mem, k uint64) (uint64, bool) {
	return t.bucket(m, k).Get(m, k)
}

// Contains reports whether k is present.
func (t Hashtable) Contains(m tm.Mem, k uint64) bool {
	return t.bucket(m, k).Contains(m, k)
}

// Update stores v under existing key k.
func (t Hashtable) Update(m tm.Mem, k, v uint64) bool {
	return t.bucket(m, k).Update(m, k, v)
}

// Each calls fn for every (key, value) pair, bucket by bucket; fn returning
// false stops the walk.
func (t Hashtable) Each(m tm.Mem, fn func(k, v uint64) bool) {
	n := int(m.Load(t.H + htBuckets))
	data := mem.Addr(m.Load(t.H + htData))
	for i := 0; i < n; i++ {
		l := List{H: mem.Addr(m.Load(data + mem.Addr(i)))}
		stop := false
		l.Each(m, func(k, v uint64) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}
