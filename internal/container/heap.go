package container

import (
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

// Heap is a growable binary min-heap of (key, value) pairs ordered by key
// (the original suite's heap.c, used by yada's work queue of skinny
// triangles). The handle addresses a 3-word header: [size, cap, dataPtr];
// entry i occupies data[2i] (key) and data[2i+1] (value).
type Heap struct{ H mem.Addr }

const (
	hSize = 0
	hCap  = 1
	hData = 2
)

// NewHeap allocates an empty heap with room for capacity entries.
func NewHeap(m tm.Mem, capacity int) Heap {
	if capacity < 2 {
		capacity = 2
	}
	h := m.Alloc(3)
	data := m.Alloc(2 * capacity)
	m.Store(h+hSize, 0)
	m.Store(h+hCap, uint64(capacity))
	m.Store(h+hData, uint64(data))
	return Heap{H: h}
}

// Len returns the entry count.
func (h Heap) Len(m tm.Mem) int { return int(m.Load(h.H + hSize)) }

func (h Heap) keyAt(m tm.Mem, data mem.Addr, i uint64) uint64 {
	return m.Load(data + mem.Addr(2*i))
}

func (h Heap) swap(m tm.Mem, data mem.Addr, i, j uint64) {
	ki, vi := m.Load(data+mem.Addr(2*i)), m.Load(data+mem.Addr(2*i+1))
	kj, vj := m.Load(data+mem.Addr(2*j)), m.Load(data+mem.Addr(2*j+1))
	m.Store(data+mem.Addr(2*i), kj)
	m.Store(data+mem.Addr(2*i+1), vj)
	m.Store(data+mem.Addr(2*j), ki)
	m.Store(data+mem.Addr(2*j+1), vi)
}

// Push inserts (key, val).
func (h Heap) Push(m tm.Mem, key, val uint64) {
	size := m.Load(h.H + hSize)
	capa := m.Load(h.H + hCap)
	data := mem.Addr(m.Load(h.H + hData))
	if size == capa {
		newCap := capa * 2
		newData := m.Alloc(int(2 * newCap))
		for i := uint64(0); i < 2*size; i++ {
			m.Store(newData+mem.Addr(i), m.Load(data+mem.Addr(i)))
		}
		m.Free(data, int(2*capa))
		data = newData
		m.Store(h.H+hCap, newCap)
		m.Store(h.H+hData, uint64(data))
	}
	m.Store(data+mem.Addr(2*size), key)
	m.Store(data+mem.Addr(2*size+1), val)
	m.Store(h.H+hSize, size+1)
	// Sift up.
	i := size
	for i > 0 {
		parent := (i - 1) / 2
		if h.keyAt(m, data, parent) <= h.keyAt(m, data, i) {
			break
		}
		h.swap(m, data, parent, i)
		i = parent
	}
}

// Pop removes and returns the minimum-key entry.
func (h Heap) Pop(m tm.Mem) (key, val uint64, ok bool) {
	size := m.Load(h.H + hSize)
	if size == 0 {
		return 0, 0, false
	}
	data := mem.Addr(m.Load(h.H + hData))
	key = m.Load(data)
	val = m.Load(data + 1)
	size--
	m.Store(h.H+hSize, size)
	if size > 0 {
		m.Store(data, m.Load(data+mem.Addr(2*size)))
		m.Store(data+1, m.Load(data+mem.Addr(2*size+1)))
		// Sift down.
		i := uint64(0)
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < size && h.keyAt(m, data, l) < h.keyAt(m, data, smallest) {
				smallest = l
			}
			if r < size && h.keyAt(m, data, r) < h.keyAt(m, data, smallest) {
				smallest = r
			}
			if smallest == i {
				break
			}
			h.swap(m, data, i, smallest)
			i = smallest
		}
	}
	return key, val, true
}

// Peek returns the minimum entry without removing it.
func (h Heap) Peek(m tm.Mem) (key, val uint64, ok bool) {
	if m.Load(h.H+hSize) == 0 {
		return 0, 0, false
	}
	data := mem.Addr(m.Load(h.H + hData))
	return m.Load(data), m.Load(data + 1), true
}
