package container

import (
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

// Queue is a growable circular-buffer FIFO of words, mirroring the original
// suite's queue.c (used by intruder's packet capture phase and labyrinth's
// work distribution). The handle addresses a 4-word header:
// [capacity, size, head, dataPtr].
type Queue struct{ H mem.Addr }

const (
	qCap  = 0
	qSize = 1
	qHead = 2
	qData = 3
)

// NewQueue allocates a queue with the given initial capacity (minimum 2).
func NewQueue(m tm.Mem, capacity int) Queue {
	if capacity < 2 {
		capacity = 2
	}
	h := m.Alloc(4)
	data := m.Alloc(capacity)
	m.Store(h+qCap, uint64(capacity))
	m.Store(h+qSize, 0)
	m.Store(h+qHead, 0)
	m.Store(h+qData, uint64(data))
	return Queue{H: h}
}

// Len returns the number of queued elements.
func (q Queue) Len(m tm.Mem) int { return int(m.Load(q.H + qSize)) }

// Empty reports whether the queue is empty.
func (q Queue) Empty(m tm.Mem) bool { return q.Len(m) == 0 }

// Push appends v, growing the buffer if full.
func (q Queue) Push(m tm.Mem, v uint64) {
	capa := m.Load(q.H + qCap)
	size := m.Load(q.H + qSize)
	head := m.Load(q.H + qHead)
	data := mem.Addr(m.Load(q.H + qData))
	if size == capa {
		newCap := capa * 2
		newData := m.Alloc(int(newCap))
		for i := uint64(0); i < size; i++ {
			m.Store(newData+mem.Addr(i), m.Load(data+mem.Addr((head+i)%capa)))
		}
		m.Free(data, int(capa))
		data, head, capa = newData, 0, newCap
		m.Store(q.H+qCap, capa)
		m.Store(q.H+qHead, 0)
		m.Store(q.H+qData, uint64(data))
	}
	m.Store(data+mem.Addr((head+size)%capa), v)
	m.Store(q.H+qSize, size+1)
}

// Pop removes and returns the oldest element.
func (q Queue) Pop(m tm.Mem) (v uint64, ok bool) {
	size := m.Load(q.H + qSize)
	if size == 0 {
		return 0, false
	}
	capa := m.Load(q.H + qCap)
	head := m.Load(q.H + qHead)
	data := mem.Addr(m.Load(q.H + qData))
	v = m.Load(data + mem.Addr(head))
	m.Store(q.H+qHead, (head+1)%capa)
	m.Store(q.H+qSize, size-1)
	return v, true
}
