package container

import (
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/tl2"
)

// These tests exercise the containers *inside transactions* under real
// concurrency — the way the applications use them — rather than through the
// Direct accessor.

func newSTM(t *testing.T, arena *mem.Arena, threads int) tm.System {
	t.Helper()
	sys, err := tl2.NewLazy(tm.Config{Arena: arena, Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestConcurrentRBTreeInserts(t *testing.T) {
	const threads = 8
	const perT = 400
	arena := mem.NewArena(1 << 22)
	d := mem.Direct{A: arena}
	tree := NewRBTree(d)
	sys := newSTM(t, arena, threads)
	team := thread.NewTeam(threads)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for i := 0; i < perT; i++ {
			k := uint64(tid*perT + i)
			th.Atomic(func(tx tm.Tx) {
				tree.Insert(tx, k, k*2)
			})
		}
	})
	if tree.Len(d) != threads*perT {
		t.Fatalf("len = %d, want %d", tree.Len(d), threads*perT)
	}
	if tree.checkInvariants(d) < 0 {
		t.Fatal("red-black invariants broken after concurrent inserts")
	}
	for k := uint64(0); k < threads*perT; k++ {
		if v, ok := tree.Get(d, k); !ok || v != k*2 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestConcurrentRBTreeMixedOps(t *testing.T) {
	const threads = 6
	const perT = 500
	arena := mem.NewArena(1 << 22)
	d := mem.Direct{A: arena}
	tree := NewRBTree(d)
	for k := uint64(0); k < 64; k++ {
		tree.Insert(d, k, 0)
	}
	sys := newSTM(t, arena, threads)
	team := thread.NewTeam(threads)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		r := rng.New(uint64(tid) + 99)
		for i := 0; i < perT; i++ {
			k := uint64(r.Intn(128))
			switch r.Intn(3) {
			case 0:
				th.Atomic(func(tx tm.Tx) { tree.Insert(tx, k, uint64(tid)) })
			case 1:
				th.Atomic(func(tx tm.Tx) { tree.Remove(tx, k) })
			default:
				th.Atomic(func(tx tm.Tx) { tree.Get(tx, k) })
			}
		}
	})
	if tree.checkInvariants(d) < 0 {
		t.Fatal("red-black invariants broken after concurrent mixed ops")
	}
}

func TestConcurrentQueueConservation(t *testing.T) {
	const threads = 8
	const items = 4000
	arena := mem.NewArena(1 << 20)
	d := mem.Direct{A: arena}
	q := NewQueue(d, 4)
	for i := 0; i < items; i++ {
		q.Push(d, uint64(i)+1)
	}
	sys := newSTM(t, arena, threads)
	team := thread.NewTeam(threads)
	popped := make([][]uint64, threads)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for {
			var v uint64
			var ok bool
			th.Atomic(func(tx tm.Tx) { v, ok = q.Pop(tx) })
			if !ok {
				return
			}
			popped[tid] = append(popped[tid], v)
		}
	})
	seen := map[uint64]bool{}
	total := 0
	for _, list := range popped {
		for _, v := range list {
			if seen[v] {
				t.Fatalf("value %d popped twice", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != items {
		t.Fatalf("popped %d of %d", total, items)
	}
}

func TestConcurrentHashtableDisjointKeys(t *testing.T) {
	const threads = 8
	const perT = 500
	arena := mem.NewArena(1 << 22)
	d := mem.Direct{A: arena}
	h := NewHashtable(d, 64)
	sys := newSTM(t, arena, threads)
	team := thread.NewTeam(threads)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for i := 0; i < perT; i++ {
			k := uint64(tid)<<32 | uint64(i)
			th.Atomic(func(tx tm.Tx) { h.Insert(tx, k, k) })
		}
	})
	if h.Len(d) != threads*perT {
		t.Fatalf("len = %d", h.Len(d))
	}
}

func TestConcurrentHeapDrain(t *testing.T) {
	const threads = 4
	const items = 2000
	arena := mem.NewArena(1 << 20)
	d := mem.Direct{A: arena}
	h := NewHeap(d, 16)
	r := rng.New(5)
	for i := 0; i < items; i++ {
		h.Push(d, r.Uint64()%1_000_000, uint64(i))
	}
	sys := newSTM(t, arena, threads)
	team := thread.NewTeam(threads)
	vals := make([]map[uint64]bool, threads)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		vals[tid] = map[uint64]bool{}
		for {
			var v uint64
			var ok bool
			th.Atomic(func(tx tm.Tx) { _, v, ok = h.Pop(tx) })
			if !ok {
				return
			}
			vals[tid][v] = true
		}
	})
	total := 0
	seen := map[uint64]bool{}
	for _, m := range vals {
		for v := range m {
			if seen[v] {
				t.Fatalf("payload %d popped twice", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != items {
		t.Fatalf("drained %d of %d", total, items)
	}
	if h.Len(d) != 0 {
		t.Fatal("heap not empty")
	}
}

func TestListAbortLeavesNoPartialInsert(t *testing.T) {
	// A transaction that inserts and then restarts must leave the list
	// untouched (write buffering); the retry path then completes it.
	arena := mem.NewArena(1 << 16)
	d := mem.Direct{A: arena}
	l := NewList(d)
	sys := newSTM(t, arena, 1)
	th := sys.Thread(0)
	first := true
	th.Atomic(func(tx tm.Tx) {
		l.Insert(tx, 5, 50)
		if first {
			first = false
			// Before restarting, the insert must be invisible outside.
			if l.Len(d) != 0 {
				t.Error("speculative insert visible before commit")
			}
			tx.Restart()
		}
	})
	if l.Len(d) != 1 || !l.Contains(d, 5) {
		t.Fatal("final insert missing")
	}
}
