package thread

import (
	"sync/atomic"
	"testing"
)

func TestTeamRunsAllIDs(t *testing.T) {
	team := NewTeam(8)
	var mask atomic.Uint32
	team.Run(func(tid int) { mask.Or(1 << uint(tid)) })
	if mask.Load() != 0xff {
		t.Fatalf("mask = %#x", mask.Load())
	}
}

func TestTeamMinimumOne(t *testing.T) {
	team := NewTeam(0)
	if team.N() != 1 {
		t.Fatalf("N = %d", team.N())
	}
	ran := false
	team.Run(func(tid int) { ran = tid == 0 })
	if !ran {
		t.Fatal("body did not run with tid 0")
	}
}

func TestTeamPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	NewTeam(4).Run(func(tid int) {
		if tid == 2 {
			panic("boom")
		}
	})
}

func TestBarrierPhases(t *testing.T) {
	const n = 6
	const phases = 50
	team := NewTeam(n)
	counters := make([]atomic.Int64, phases)
	team.Run(func(tid int) {
		for p := 0; p < phases; p++ {
			counters[p].Add(1)
			team.Barrier().Wait()
			// After the barrier, every party must have bumped this phase.
			if got := counters[p].Load(); got != n {
				t.Errorf("phase %d: counter %d after barrier", p, got)
			}
			team.Barrier().Wait()
		}
	})
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		b.Wait() // must never block
	}
}
