// Package thread provides the fork/join thread team and reusable barrier
// that STAMP's applications are written against (the original suite uses a
// small pthread wrapper with thread_startup/thread_start and thread_barrier).
// A "thread" here is a goroutine with a stable id in [0, N).
package thread

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
)

// Team runs parallel phases over a fixed number of workers.
type Team struct {
	n       int
	barrier *Barrier
	labels  []string // pprof label pairs applied to every worker goroutine
}

// NewTeam returns a team of n workers (n >= 1).
func NewTeam(n int) *Team {
	if n < 1 {
		n = 1
	}
	return &Team{n: n, barrier: NewBarrier(n)}
}

// N returns the team size.
func (t *Team) N() int { return t.n }

// SetLabels attaches pprof label pairs (key, value, key, value, ...) to
// every worker goroutine of subsequent Run calls, plus a per-worker
// "thread" label. CPU and goroutine profiles then break down by app,
// system, and worker instead of one anonymous blob.
func (t *Team) SetLabels(kv ...string) { t.labels = kv }

// Run invokes body(tid) on n goroutines with tid = 0..n-1 and waits for all
// of them. Panics in workers are re-raised on the caller.
func (t *Team) Run(body func(tid int)) {
	var wg sync.WaitGroup
	panics := make([]any, t.n)
	for tid := 0; tid < t.n; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[tid] = r
				}
			}()
			kv := append(append([]string{}, t.labels...), "thread", strconv.Itoa(tid))
			pprof.Do(context.Background(), pprof.Labels(kv...), func(context.Context) {
				body(tid)
			})
		}(tid)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// Barrier returns the team's reusable barrier; workers call Wait between
// phases, exactly like STAMP's thread_barrier.
func (t *Team) Barrier() *Barrier { return t.barrier }

// Barrier is a reusable (cyclic) barrier for a fixed party count.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
}

// NewBarrier returns a barrier for n parties.
func NewBarrier(n int) *Barrier {
	b := &Barrier{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all parties have called Wait, then releases them all.
// The barrier is immediately reusable for the next phase.
func (b *Barrier) Wait() {
	b.mu.Lock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for b.phase == phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
