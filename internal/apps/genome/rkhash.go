package genome

// Rabin–Karp rolling hashes for the sequencer's overlap matching ("when
// matching segments, Rabin-Karp string matching is used to speed up the
// comparison"). A string hashes to the polynomial
//
//	H(x[0..L)) = Σ x[i]·b^i  (mod 2^64)
//
// with an odd base b, which is invertible modulo 2^64, so both rolling
// directions the sequencer needs are O(1) per overlap round:
//
//   - the prefix of length L-1 drops the *last* character:
//     H' = H − x[L−1]·b^(L−1)
//   - the suffix of length L-1 drops the *first* character:
//     H' = (H − x[0]) · b⁻¹
//
// Equal strings always hash equally (the sequencer still confirms matches
// by comparing the actual strings, so collisions only cost a retry of the
// lookup, never correctness).

const (
	rkBase = 0x100000001b3 // odd => invertible mod 2^64
)

// rkBaseInv is the multiplicative inverse of rkBase modulo 2^64, computed
// by Newton iteration at package init (x_{n+1} = x_n(2 − b·x_n) doubles the
// valid bits each step).
var rkBaseInv = func() uint64 {
	x := uint64(rkBase) // correct to 3 bits (odd)
	for i := 0; i < 6; i++ {
		x *= 2 - rkBase*x
	}
	return x
}()

// rkHash computes H(s) directly (used to seed the rollers and in tests).
func rkHash(s string) uint64 {
	var h, pow uint64 = 0, 1
	for i := 0; i < len(s); i++ {
		h += uint64(s[i]) * pow
		pow *= rkBase
	}
	return h
}

// rkPow returns b^n mod 2^64.
func rkPow(n int) uint64 {
	pow := uint64(1)
	for i := 0; i < n; i++ {
		pow *= rkBase
	}
	return pow
}

// prefixRoller maintains H(seg[:L]) while L decreases one per round.
type prefixRoller struct {
	seg string
	l   int
	h   uint64
	pow uint64 // b^(L-1)
}

func newPrefixRoller(seg string, l int) prefixRoller {
	return prefixRoller{seg: seg, l: l, h: rkHash(seg[:l]), pow: rkPow(l - 1)}
}

// hash returns H(seg[:L]) for the current L.
func (r *prefixRoller) hash() uint64 { return r.h }

// shrink moves from L to L-1.
func (r *prefixRoller) shrink() {
	r.h -= uint64(r.seg[r.l-1]) * r.pow
	r.pow *= rkBaseInv
	r.l--
}

// suffixRoller maintains H(seg[len-L:]) while L decreases one per round.
type suffixRoller struct {
	seg string
	l   int
	h   uint64
}

func newSuffixRoller(seg string, l int) suffixRoller {
	return suffixRoller{seg: seg, l: l, h: rkHash(seg[len(seg)-l:])}
}

// hash returns H(seg[len-L:]) for the current L.
func (r *suffixRoller) hash() uint64 { return r.h }

// shrink moves from L to L-1.
func (r *suffixRoller) shrink() {
	first := uint64(r.seg[len(r.seg)-r.l])
	r.h = (r.h - first) * rkBaseInv
	r.l--
}
