// Package genome implements STAMP's genome benchmark: gene sequencing by
// overlap assembly. Phase 1 deduplicates the sampled DNA segments into a
// transactional hash set; phase 2 matches segment ends by decreasing overlap
// length using Rabin–Karp hashing, linking matches transactionally; phase 3
// walks the resulting chain to rebuild the gene. Transactions are of
// moderate length with moderate read/write sets, almost all of the
// execution is transactional, and contention is low.
package genome

import (
	"fmt"
	"strings"

	"github.com/stamp-go/stamp/internal/container"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// Atomic-block call sites, registered once for per-block statistics
// attribution (tm.Stats.Blocks) and adaptive protocol selection. The
// publish and link phases are read-mostly — most attempts bail out after a
// few loads (already matched, no hash hit, failed string confirm) without
// storing — so they carry the read-only mark and begin on stm-mv's
// zero-abort snapshot path; the attempts that do store fall through to the
// write-path commit.
var (
	blkDedup   = tm.NewBlock("genome/dedup-insert")
	blkPublish = tm.NewROBlock("genome/publish-ends")
	blkLink    = tm.NewROBlock("genome/link-overlap")
)

// Config mirrors the Table IV arguments: -g (gene length), -s (segment
// length), -n (segment count).
type Config struct {
	GeneLength    int // -g
	SegmentLength int // -s
	Segments      int // -n
	Seed          uint64
}

// App is one genome instance.
type App struct {
	cfg      Config
	gene     string
	segments []string // sampled segments (with duplicates), immutable

	// Unique segments after phase 1 (filled during Run; Go-side mirrors of
	// arena decisions, one slot per thread merged at the barrier).
	unique []int // segment indices

	// Arena layout.
	dedup    container.Hashtable // content hash -> segment index
	links    mem.Addr            // per unique slot: [successor+1, startLinked, endLinked]
	uniqueAt mem.Addr            // arena copy of the unique ids (for link slots)

	result string
}

const (
	linkSucc  = 0 // successor unique-slot + 1 (0 = none)
	linkStart = 1 // this segment's start is matched (has predecessor)
	linkEnd   = 2 // this segment's end is matched (has successor)
	linkHead  = 3 // chain head slot + 1 (valid at the chain's tail)
	linkTail  = 4 // chain tail slot + 1 (valid at the chain's head)
	linkWords = 5
)

var nucleotides = []byte("ACGT")

// New generates the gene and samples its segments. Every start position is
// guaranteed to be sampled at least once (all Table IV configs oversample
// heavily: n >> g-s+1), so assembly can always reconstruct the full gene.
func New(cfg Config) *App {
	if cfg.SegmentLength < 2 {
		cfg.SegmentLength = 2
	}
	if cfg.GeneLength < cfg.SegmentLength {
		cfg.GeneLength = cfg.SegmentLength
	}
	positions := cfg.GeneLength - cfg.SegmentLength + 1
	if cfg.Segments < positions {
		cfg.Segments = positions
	}
	r := rng.New(cfg.Seed ^ 0x67656e6f6d65)
	var sb strings.Builder
	for i := 0; i < cfg.GeneLength; i++ {
		sb.WriteByte(nucleotides[r.Intn(4)])
	}
	a := &App{cfg: cfg, gene: sb.String()}
	a.segments = make([]string, cfg.Segments)
	for i := 0; i < positions; i++ { // guaranteed coverage
		a.segments[i] = a.gene[i : i+cfg.SegmentLength]
	}
	for i := positions; i < cfg.Segments; i++ {
		p := r.Intn(positions)
		a.segments[i] = a.gene[p : p+cfg.SegmentLength]
	}
	r.Shuffle(len(a.segments), func(i, j int) {
		a.segments[i], a.segments[j] = a.segments[j], a.segments[i]
	})
	return a
}

// Name implements apps.App.
func (a *App) Name() string { return "genome" }

// Gene returns the source gene (for tests).
func (a *App) Gene() string { return a.gene }

// ArenaWords implements apps.App. Includes abort-retry allocation churn
// (aborted attempts leak their node allocations, like STAMP's tmalloc).
func (a *App) ArenaWords() int {
	n := a.cfg.Segments
	// dedup table (buckets + nodes), link slots, per-round match tables.
	perRound := 3 + n/4 + 1 + (n+1)*4 // header + buckets + node slack
	return (3+n+8*n+linkWords*n+n)*6 + a.cfg.SegmentLength*perRound*2 + 1<<16
}

// hash64 is FNV-1a over a segment substring.
func hash64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Setup implements apps.App.
func (a *App) Setup(ar *mem.Arena) {
	d := mem.Direct{A: ar}
	a.dedup = container.NewHashtable(d, maxInt(a.cfg.Segments/4, 16))
	a.links = ar.Alloc(linkWords * a.cfg.Segments)
	a.uniqueAt = ar.Alloc(1)
	a.unique = nil
	a.result = ""
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Run implements apps.App.
func (a *App) Run(sys tm.System, team *thread.Team) {
	n := len(a.segments)
	direct := mem.Direct{A: sys.Arena()}
	perThreadUnique := make([][]int, team.N())

	team.Run(func(tid int) {
		th := sys.Thread(tid)
		lo, hi := tid*n/team.N(), (tid+1)*n/team.N()

		// Phase 1: deduplicate segments into the shared hash set. Equal
		// content hashes are treated as equal content (64-bit FNV over
		// <=64-nt strings; collisions are astronomically unlikely and would
		// be caught by Verify).
		for i := lo; i < hi; i++ {
			i := i
			h := hash64(a.segments[i])
			inserted := false
			th.AtomicAt(blkDedup, func(tx tm.Tx) {
				inserted = a.dedup.Insert(tx, h, uint64(i))
			})
			if inserted {
				perThreadUnique[tid] = append(perThreadUnique[tid], i)
			}
		}
		team.Barrier().Wait()

		// Merge the unique list (master) so phase 2 has a dense indexing,
		// and initialize each unique segment as its own one-element chain.
		if tid == 0 {
			for _, list := range perThreadUnique {
				a.unique = append(a.unique, list...)
			}
			for s := range a.unique {
				slot := a.links + mem.Addr(linkWords*s)
				direct.Store(slot+linkHead, uint64(s)+1)
				direct.Store(slot+linkTail, uint64(s)+1)
			}
		}
		team.Barrier().Wait()

		// Phase 2: match ends by decreasing overlap. For each overlap
		// length L, publish unmatched ends keyed by suffix hash, then link
		// unmatched starts whose prefix hash hits — re-validating the links
		// transactionally. Hashes are Rabin–Karp rolling hashes updated in
		// O(1) per round per segment.
		u := len(a.unique)
		segLen := a.cfg.SegmentLength
		ulo, uhi := tid*u/team.N(), (tid+1)*u/team.N()
		prefs := make([]prefixRoller, uhi-ulo)
		sufs := make([]suffixRoller, uhi-ulo)
		for s := ulo; s < uhi; s++ {
			seg := a.segments[a.unique[s]]
			prefs[s-ulo] = newPrefixRoller(seg, segLen-1)
			sufs[s-ulo] = newSuffixRoller(seg, segLen-1)
		}
		for L := segLen - 1; L >= 1; L-- {
			// Build: one shared table per round, created by the master.
			if tid == 0 {
				t := container.NewHashtable(direct, maxInt(u/4, 16))
				direct.Store(a.uniqueAt, uint64(t.H))
			}
			team.Barrier().Wait()
			table := container.Hashtable{H: mem.Addr(direct.Load(a.uniqueAt))}

			for s := ulo; s < uhi; s++ {
				slot := a.links + mem.Addr(linkWords*s)
				sufHash := sufs[s-ulo].hash()
				th.AtomicAt(blkPublish, func(tx tm.Tx) {
					if tx.Load(slot+linkEnd) != 0 {
						return // already matched at a longer overlap
					}
					table.Insert(tx, sufHash, uint64(s))
				})
			}
			team.Barrier().Wait()

			for s := ulo; s < uhi; s++ {
				seg := a.segments[a.unique[s]]
				slot := a.links + mem.Addr(linkWords*s)
				preHash := prefs[s-ulo].hash()
				th.AtomicAt(blkLink, func(tx tm.Tx) {
					if tx.Load(slot+linkStart) != 0 {
						return
					}
					otherU, ok := table.Get(tx, preHash)
					if !ok {
						return
					}
					o := int(otherU)
					if o == s {
						return // self-overlap
					}
					oSlot := a.links + mem.Addr(linkWords*o)
					if tx.Load(oSlot+linkEnd) != 0 {
						return // the candidate's end got matched meanwhile
					}
					// Confirm the overlap on the actual strings (hashes can
					// collide across rounds).
					oSeg := a.segments[a.unique[o]]
					if oSeg[segLen-L:] != seg[:L] {
						return
					}
					// Cycle guard, as in the original sequencer's construct-
					// entry chains: o is the tail of its chain, s the head
					// of its own; refuse to link a chain back onto itself.
					headA := tx.Load(oSlot + linkHead)
					if headA == uint64(s)+1 {
						return
					}
					tailB := tx.Load(slot + linkTail)
					tx.Store(oSlot+linkEnd, 1)
					tx.Store(oSlot+linkSucc, uint64(s)+1)
					tx.Store(slot+linkStart, 1)
					// Splice the chain metadata: the merged chain's tail
					// learns its new head, and vice versa.
					tx.Store(a.links+mem.Addr(linkWords*int(tailB-1))+linkHead, headA)
					tx.Store(a.links+mem.Addr(linkWords*int(headA-1))+linkTail, tailB)
				})
			}
			if L > 1 {
				for i := range prefs {
					prefs[i].shrink()
					sufs[i].shrink()
				}
			}
			team.Barrier().Wait()
		}

		// Phase 3: single-thread chain walk to rebuild the gene.
		if tid == 0 {
			a.result = a.assemble(direct)
		}
	})
}

// assemble follows the successor links from the unique segment with an
// unmatched start, concatenating the non-overlapping tails.
func (a *App) assemble(d mem.Direct) string {
	u := len(a.unique)
	segLen := a.cfg.SegmentLength
	start := -1
	for s := 0; s < u; s++ {
		if d.Load(a.links+mem.Addr(linkWords*s)+linkStart) == 0 {
			if start != -1 {
				return "" // more than one chain: assembly failed
			}
			start = s
		}
	}
	if start == -1 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(a.segments[a.unique[start]])
	prev := a.segments[a.unique[start]]
	cur := start
	for steps := 0; steps <= u; steps++ {
		succ := d.Load(a.links + mem.Addr(linkWords*cur) + linkSucc)
		if succ == 0 {
			return sb.String()
		}
		cur = int(succ - 1)
		seg := a.segments[a.unique[cur]]
		// Overlap length: longest suffix of prev equal to prefix of seg.
		overlap := 0
		for L := segLen - 1; L >= 1; L-- {
			if prev[segLen-L:] == seg[:L] {
				overlap = L
				break
			}
		}
		sb.WriteString(seg[overlap:])
		prev = seg
	}
	return "" // cycle
}

// Verify implements apps.App: the assembled string must equal the gene.
func (a *App) Verify(*mem.Arena) error {
	if a.result == "" {
		return fmt.Errorf("genome: assembly produced no (or an ambiguous) chain")
	}
	if a.result != a.gene {
		return fmt.Errorf("genome: assembled %d nt != source gene %d nt", len(a.result), len(a.gene))
	}
	return nil
}
