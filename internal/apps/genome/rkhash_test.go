package genome

import (
	"testing"
	"testing/quick"

	"github.com/stamp-go/stamp/internal/rng"
)

func TestRKBaseInverse(t *testing.T) {
	if rkBase*rkBaseInv != 1 {
		t.Fatalf("b·b⁻¹ = %#x, want 1", uint64(rkBase)*rkBaseInv)
	}
}

func TestRKHashEqualStringsEqualHashes(t *testing.T) {
	f := func(s []byte) bool {
		a := string(s)
		return rkHash(a) == rkHash(string(append([]byte(nil), a...)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixRollerMatchesDirect(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(60) + 4
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = nucleotides[r.Intn(4)]
		}
		seg := string(buf)
		pr := newPrefixRoller(seg, n-1)
		for l := n - 1; l >= 1; l-- {
			if pr.hash() != rkHash(seg[:l]) {
				t.Fatalf("prefix roller diverged at L=%d for %q", l, seg)
			}
			if l > 1 {
				pr.shrink()
			}
		}
	}
}

func TestSuffixRollerMatchesDirect(t *testing.T) {
	r := rng.New(37)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(60) + 4
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = nucleotides[r.Intn(4)]
		}
		seg := string(buf)
		sr := newSuffixRoller(seg, n-1)
		for l := n - 1; l >= 1; l-- {
			if sr.hash() != rkHash(seg[n-l:]) {
				t.Fatalf("suffix roller diverged at L=%d for %q", l, seg)
			}
			if l > 1 {
				sr.shrink()
			}
		}
	}
}

func TestOverlapHashesAgree(t *testing.T) {
	// The sequencer's core property: seg A's suffix of length L equals seg
	// B's prefix of length L iff the substring matches; hashes must agree
	// exactly on real overlaps.
	gene := "ACGTACGGTTACGATCGATTACG"
	for L := 1; L < 8; L++ {
		// b (the next 8-mer, shifted by 8-L) must fit inside the gene.
		for i := 0; i+16-L <= len(gene); i++ {
			a := gene[i : i+8]
			b := gene[i+8-L : i+16-L]
			if rkHash(a[8-L:]) != rkHash(b[:L]) {
				t.Fatalf("overlap hash mismatch at i=%d L=%d", i, L)
			}
		}
	}
}
