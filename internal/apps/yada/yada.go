// Package yada implements STAMP's yada benchmark (Yet Another Delaunay
// Application): Ruppert-style Delaunay mesh refinement. Each work item pops
// a skinny triangle from the shared queue, carves the Bowyer–Watson cavity
// of its circumcenter (or of a boundary-segment midpoint when the
// circumcenter would encroach), retriangulates, and queues any new skinny
// triangles — all as one transaction. Transactions are long, read and write
// sets large, essentially all execution time is transactional, and
// contention is moderate.
package yada

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/stamp-go/stamp/internal/container"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// Atomic-block call sites, registered once for per-block statistics
// attribution (tm.Stats.Blocks) and adaptive protocol selection.
var (
	blkPopWork = tm.NewBlock("yada/pop-work")
	blkRefine  = tm.NewBlock("yada/refine")
)

// Config mirrors the Table IV arguments: -a (minimum angle) and the input
// mesh, which we generate: Elements approximates the element count of the
// original input files (633.2 has 1264, ttimeu10000.2 has 19998).
type Config struct {
	MinAngle float64 // -a
	Elements int     // target initial element count (points ~ Elements/2)
	Seed     uint64

	// GrowthCap bounds total inserted points as a multiple of the initial
	// point count (safety net guaranteeing termination; 0 means 16x).
	GrowthCap int
}

// App is one yada instance.
type App struct {
	cfg      Config
	initPts  []Point
	initTris [][3]int32
	boundary map[uint64]bool // initial boundary segment keys

	ms   mesh
	init int // initial point count

	// triangle registry for Verify: initial + per-thread created.
	initTriAddrs []mem.Addr
	created      [][]mem.Addr
	skipped      atomic.Int64 // work items dropped by safety guards
	capped       atomic.Bool  // growth cap reached

	ran bool
}

// New generates the input mesh: random interior points plus the four unit-
// square corners, Delaunay-triangulated; the square's hull edges are the
// boundary segments.
func New(cfg Config) *App {
	if cfg.MinAngle <= 0 {
		cfg.MinAngle = 20
	}
	if cfg.Elements < 8 {
		cfg.Elements = 8
	}
	if cfg.GrowthCap <= 0 {
		cfg.GrowthCap = 16
	}
	a := &App{cfg: cfg}
	r := rng.New(cfg.Seed ^ 0x79616461)
	nPts := cfg.Elements/2 + 2
	pts := []Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	for len(pts) < nPts {
		pts = append(pts, Point{
			X: 0.02 + 0.96*r.Float64(),
			Y: 0.02 + 0.96*r.Float64(),
		})
	}
	a.initPts = pts
	a.initTris = triangulate(pts)
	// Boundary segments: edges adjacent to exactly one triangle.
	edgeUse := map[uint64]int{}
	for _, t := range a.initTris {
		edgeUse[edgeKey(t[0], t[1])]++
		edgeUse[edgeKey(t[1], t[2])]++
		edgeUse[edgeKey(t[2], t[0])]++
	}
	a.boundary = map[uint64]bool{}
	for k, n := range edgeUse {
		if n == 1 {
			a.boundary[k] = true
		}
	}
	return a
}

// Name implements apps.App.
func (a *App) Name() string { return "yada" }

// InitialElements returns the generated element count (for tests).
func (a *App) InitialElements() int { return len(a.initTris) }

// maxPoints is the refinement safety cap.
func (a *App) maxPoints() int { return len(a.initPts) * a.cfg.GrowthCap }

// ArenaWords implements apps.App: sized for the growth cap plus allocator
// churn (dead triangles and edge-list nodes are never reused).
func (a *App) ArenaWords() int {
	mp := a.maxPoints()
	churn := 64 * mp // triangles + edge records + hash nodes + heap growth
	return 2*mp + 2 + churn + 1<<16
}

// Setup implements apps.App: stages the initial mesh and seeds the work
// queue with every skinny triangle.
func (a *App) Setup(ar *mem.Arena) {
	d := mem.Direct{A: ar}
	mp := a.maxPoints()
	a.ms = mesh{
		ptsBase:   ar.Alloc(2 * mp),
		ptsCursor: ar.Alloc(1),
		maxPoints: mp,
		edges:     container.NewHashtable(d, maxInt(mp/2, 64)),
		segments:  container.NewHashtable(d, 256),
		work:      container.NewHeap(d, maxInt(len(a.initTris), 16)),
	}
	for _, p := range a.initPts {
		a.ms.addPoint(d, p)
	}
	a.init = len(a.initPts)
	a.initTriAddrs = a.initTriAddrs[:0]
	for _, t := range a.initTris {
		addr := a.ms.newTriangle(d, t[0], t[1], t[2])
		a.initTriAddrs = append(a.initTriAddrs, addr)
		ang := minAngleDeg(a.initPts[t[0]], a.initPts[t[1]], a.initPts[t[2]])
		if ang < a.cfg.MinAngle {
			a.ms.work.Push(d, badnessKey(ang), uint64(addr))
		}
	}
	for k := range a.boundary {
		a.ms.segments.Insert(d, k, 1)
	}
	a.skipped.Store(0)
	a.capped.Store(false)
	a.ran = false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// cavityGuard bounds cavity growth against numerical blowup.
const cavityGuard = 256

// Run implements apps.App.
func (a *App) Run(sys tm.System, team *thread.Team) {
	a.created = make([][]mem.Addr, team.N())
	var inflight atomic.Int64
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for {
			inflight.Add(1)
			var triAddr mem.Addr
			have := false
			th.AtomicAt(blkPopWork, func(tx tm.Tx) {
				_, v, ok := a.ms.work.Pop(tx)
				have = ok
				triAddr = mem.Addr(v)
			})
			if have {
				a.refine(th, tid, triAddr)
				inflight.Add(-1)
				continue
			}
			// Queue empty: if no one is mid-refinement, no new work can
			// appear (pushes only happen between the inflight inc/dec).
			if inflight.Add(-1) == 0 {
				return
			}
			tm.Spin(200)
		}
	})
	a.ran = true
}

// refine processes one skinny triangle as a single transaction.
func (a *App) refine(th tm.Thread, tid int, triAddr mem.Addr) {
	type newTri struct {
		addr mem.Addr
		bad  float64 // < MinAngle if skinny, else >= MinAngle
	}
	var producedAddrs []mem.Addr

	th.AtomicAt(blkRefine, func(tx tm.Tx) {
		producedAddrs = producedAddrs[:0]
		ms := &a.ms
		if !ms.alive(tx, triAddr) {
			return // stale work item
		}
		v0, v1, v2 := ms.verts(tx, triAddr)
		p0, p1, p2 := ms.point(tx, v0), ms.point(tx, v1), ms.point(tx, v2)
		if minAngleDeg(p0, p1, p2) >= a.cfg.MinAngle {
			return
		}
		if int(tx.Load(ms.ptsCursor)) >= ms.maxPoints-4 {
			a.capped.Store(true)
			return // growth cap: stop refining, keep the mesh consistent
		}
		center, ok := circumcenter(p0, p1, p2)
		if !ok {
			a.skipped.Add(1)
			return
		}

		// Carve the cavity of the insertion point; if the point encroaches
		// a boundary segment on the cavity rim, switch to splitting that
		// segment instead (Ruppert's rule) and recompute the cavity.
		insertion := center
		startTri := triAddr
		var splitSeg uint64
		for attempt := 0; ; attempt++ {
			cav, rim, encroached, encOwner, ok := a.carve(tx, startTri, insertion, splitSeg)
			if !ok {
				a.skipped.Add(1)
				return
			}
			if encroached != 0 && attempt == 0 {
				// Replace the insertion with the segment midpoint and grow
				// the next cavity from the segment's own triangle.
				u := int32(uint32(encroached >> 32))
				w := int32(uint32(encroached))
				pu, pw := ms.point(tx, u), ms.point(tx, w)
				insertion = Point{(pu.X + pw.X) / 2, (pu.Y + pw.Y) / 2}
				splitSeg = encroached
				startTri = encOwner
				continue
			}
			if encroached != 0 {
				// Midpoint still encroaches another segment: drop the item
				// (full Ruppert recurses; the cap keeps us terminating).
				a.skipped.Add(1)
				return
			}
			// Commit point: insert, kill the cavity, fan the rim.
			pi := ms.addPoint(tx, insertion)
			for _, t := range cav {
				ms.killTriangle(tx, t)
			}
			if splitSeg != 0 {
				u := int32(uint32(splitSeg >> 32))
				w := int32(uint32(splitSeg))
				ms.segments.Remove(tx, splitSeg)
				ms.segments.Insert(tx, edgeKey(u, pi), 1)
				ms.segments.Insert(tx, edgeKey(w, pi), 1)
			}
			for _, e := range rim {
				nt := ms.newTriangle(tx, e[0], e[1], pi)
				producedAddrs = append(producedAddrs, nt)
				ang := minAngleDeg(ms.point(tx, e[0]), ms.point(tx, e[1]), insertion)
				if ang < a.cfg.MinAngle {
					ms.work.Push(tx, badnessKey(ang), uint64(nt))
				}
			}
			return
		}
	})
	a.created[tid] = append(a.created[tid], producedAddrs...)
}

// carve collects the cavity of the insertion point starting from start:
// live triangles whose circumcircle contains it, grown across non-segment
// edges. It returns the cavity, its oriented rim edges (excluding
// splitSeg, whose midpoint is the insertion point), the key and owning
// triangle of an encroached rim segment (0 if none), and ok=false on a
// guard violation.
func (a *App) carve(tx tm.Tx, start mem.Addr, p Point, splitSeg uint64) (cav []mem.Addr, rim [][2]int32, encroached uint64, encOwner mem.Addr, ok bool) {
	ms := &a.ms
	inCav := map[mem.Addr]bool{start: true}
	frontier := []mem.Addr{start}
	cav = []mem.Addr{start}
	for len(frontier) > 0 {
		t := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		v0, v1, v2 := ms.verts(tx, t)
		edges := [3][2]int32{{v0, v1}, {v1, v2}, {v2, v0}}
		for _, e := range edges {
			key := edgeKey(e[0], e[1])
			isSeg := ms.segments.Contains(tx, key)
			var other mem.Addr
			if !isSeg {
				other = ms.neighborAcross(tx, key, t)
			}
			if other != mem.Nil && inCav[other] {
				continue // internal edge
			}
			expand := false
			if other != mem.Nil && ms.alive(tx, other) {
				o0, o1, o2 := ms.verts(tx, other)
				q0, q1, q2 := ms.point(tx, o0), ms.point(tx, o1), ms.point(tx, o2)
				expand = inCircumcircle(q0, q1, q2, p)
			}
			if expand {
				inCav[other] = true
				cav = append(cav, other)
				frontier = append(frontier, other)
				if len(cav) > cavityGuard {
					return nil, nil, 0, mem.Nil, false
				}
				continue
			}
			// Rim edge. Encroachment applies to boundary segments only.
			if isSeg && key != splitSeg {
				pu, pw := ms.point(tx, e[0]), ms.point(tx, e[1])
				if encroaches(pu, pw, p) {
					return cav, nil, key, t, true
				}
			}
			if key == splitSeg {
				continue // the split segment is replaced by its halves
			}
			// Star-shapedness: the new triangle (e0, e1, p) must wind ccw.
			if orient(ms.point(tx, e[0]), ms.point(tx, e[1]), p) <= geomEps {
				return nil, nil, 0, mem.Nil, false
			}
			rim = append(rim, e)
		}
	}
	return cav, rim, 0, mem.Nil, true
}

// Verify implements apps.App: the refined mesh must remain conforming
// (every edge borders one or two live triangles; single-sided edges are
// exactly the boundary segments), cover the unit square, wind consistently,
// and contain no skinny triangle (unless the growth cap or a numeric guard
// fired, which the oracle reports as a tolerated-but-counted condition).
func (a *App) Verify(ar *mem.Arena) error {
	if !a.ran {
		return fmt.Errorf("yada: Run was never executed")
	}
	d := mem.Direct{A: ar}
	ms := &a.ms
	all := append([]mem.Addr(nil), a.initTriAddrs...)
	for _, list := range a.created {
		all = append(all, list...)
	}
	edgeUse := map[uint64]int{}
	area := 0.0
	skinny := 0
	aliveCount := 0
	for _, t := range all {
		if !ms.alive(d, t) {
			continue
		}
		aliveCount++
		v0, v1, v2 := ms.verts(d, t)
		p0, p1, p2 := ms.point(d, v0), ms.point(d, v1), ms.point(d, v2)
		o := orient(p0, p1, p2)
		if o <= 0 {
			return fmt.Errorf("yada: triangle %d is degenerate or flipped (orient %g)", t, o)
		}
		area += o / 2
		edgeUse[edgeKey(v0, v1)]++
		edgeUse[edgeKey(v1, v2)]++
		edgeUse[edgeKey(v2, v0)]++
		if minAngleDeg(p0, p1, p2) < a.cfg.MinAngle {
			skinny++
		}
	}
	if aliveCount == 0 {
		return fmt.Errorf("yada: no live triangles")
	}
	for key, n := range edgeUse {
		isSeg := ms.segments.Contains(d, key)
		switch {
		case n > 2:
			return fmt.Errorf("yada: edge %#x borders %d triangles", key, n)
		case n == 2 && isSeg:
			return fmt.Errorf("yada: boundary segment %#x is interior", key)
		case n == 1 && !isSeg:
			return fmt.Errorf("yada: interior edge %#x has one triangle", key)
		}
	}
	if math.Abs(area-1.0) > 1e-6 {
		return fmt.Errorf("yada: mesh area %.9f != 1 (coverage broken)", area)
	}
	if skinny > 0 && !a.capped.Load() && a.skipped.Load() == 0 {
		return fmt.Errorf("yada: %d skinny triangles remain without a cap/guard event", skinny)
	}
	if final := int(d.Load(ms.ptsCursor)); final <= a.init && skinny == 0 && len(a.initTris) > 0 {
		// No refinement at all is only acceptable if the input had no
		// skinny triangles to begin with.
		for _, t := range a.initTris {
			if minAngleDeg(a.initPts[t[0]], a.initPts[t[1]], a.initPts[t[2]]) < a.cfg.MinAngle {
				return fmt.Errorf("yada: input had skinny triangles but no points were added")
			}
		}
	}
	return nil
}

// FinalPoints returns the refined point count (for tests).
func (a *App) FinalPoints(ar *mem.Arena) int {
	return int(mem.Direct{A: ar}.Load(a.ms.ptsCursor))
}

// Skipped returns the number of guard-dropped work items (for tests).
func (a *App) Skipped() int { return int(a.skipped.Load()) }

// Capped reports whether the growth cap fired (for tests).
func (a *App) Capped() bool { return a.capped.Load() }
