package yada

import (
	"github.com/stamp-go/stamp/internal/container"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

// Arena mesh representation.
//
// Points live in a flat array of (x, y) float64 pairs with an append cursor;
// triangle records are [v0, v1, v2, alive]; undirected edges map (through a
// transactional hash table) to a 2-slot record of adjacent triangle
// addresses; boundary segments are a hash set of edge keys.

const (
	triV0    = 0
	triV1    = 1
	triV2    = 2
	triAlive = 3
	triWords = 4

	edgeT1    = 0
	edgeT2    = 1
	edgeWords = 2
)

// mesh bundles the arena handles; the struct itself is immutable during Run.
type mesh struct {
	ptsBase   mem.Addr // capacity*2 float64 words
	ptsCursor mem.Addr // next point index
	maxPoints int

	edges    container.Hashtable // edgeKey -> edge record addr
	segments container.Hashtable // edgeKey -> 1 (boundary segments)
	work     container.Heap      // badness -> triangle addr
}

func edgeKey(u, w int32) uint64 {
	if u > w {
		u, w = w, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(w))
}

// addPoint appends a point and returns its index.
func (ms *mesh) addPoint(m tm.Mem, p Point) int32 {
	idx := m.Load(ms.ptsCursor)
	m.Store(ms.ptsCursor, idx+1)
	if int(idx) >= ms.maxPoints {
		panic("yada: point capacity exceeded (raise the refinement cap)")
	}
	tm.StoreF64(m, ms.ptsBase+mem.Addr(2*idx), p.X)
	tm.StoreF64(m, ms.ptsBase+mem.Addr(2*idx+1), p.Y)
	return int32(idx)
}

// point reads point i's coordinates.
func (ms *mesh) point(m tm.Mem, i int32) Point {
	return Point{
		X: tm.LoadF64(m, ms.ptsBase+mem.Addr(2*int(i))),
		Y: tm.LoadF64(m, ms.ptsBase+mem.Addr(2*int(i)+1)),
	}
}

// newTriangle allocates a live triangle record and registers its three
// edges.
func (ms *mesh) newTriangle(m tm.Mem, v0, v1, v2 int32) mem.Addr {
	t := m.Alloc(triWords)
	m.Store(t+triV0, uint64(uint32(v0)))
	m.Store(t+triV1, uint64(uint32(v1)))
	m.Store(t+triV2, uint64(uint32(v2)))
	m.Store(t+triAlive, 1)
	ms.linkEdge(m, edgeKey(v0, v1), t)
	ms.linkEdge(m, edgeKey(v1, v2), t)
	ms.linkEdge(m, edgeKey(v2, v0), t)
	return t
}

func (ms *mesh) verts(m tm.Mem, t mem.Addr) (v0, v1, v2 int32) {
	return int32(uint32(m.Load(t + triV0))),
		int32(uint32(m.Load(t + triV1))),
		int32(uint32(m.Load(t + triV2)))
}

func (ms *mesh) alive(m tm.Mem, t mem.Addr) bool { return m.Load(t+triAlive) == 1 }

// linkEdge records t as adjacent to the edge, creating the record on first
// use. A third adjacency is a conformity violation and restarts the
// transaction defensively.
func (ms *mesh) linkEdge(m tm.Mem, key uint64, t mem.Addr) {
	recA, ok := ms.edges.Get(m, key)
	var rec mem.Addr
	if !ok {
		rec = m.Alloc(edgeWords)
		m.Store(rec+edgeT1, 0)
		m.Store(rec+edgeT2, 0)
		ms.edges.Insert(m, key, uint64(rec))
	} else {
		rec = mem.Addr(recA)
	}
	switch {
	case m.Load(rec+edgeT1) == 0:
		m.Store(rec+edgeT1, uint64(t))
	case m.Load(rec+edgeT2) == 0:
		m.Store(rec+edgeT2, uint64(t))
	default:
		if tx, isTx := m.(tm.Tx); isTx {
			tx.Restart() // transient inconsistency under contention
		}
		panic("yada: edge with three adjacent triangles")
	}
}

// unlinkEdge removes t from the edge record, deleting the record once
// orphaned.
func (ms *mesh) unlinkEdge(m tm.Mem, key uint64, t mem.Addr) {
	recA, ok := ms.edges.Get(m, key)
	if !ok {
		return
	}
	rec := mem.Addr(recA)
	if mem.Addr(m.Load(rec+edgeT1)) == t {
		m.Store(rec+edgeT1, 0)
	}
	if mem.Addr(m.Load(rec+edgeT2)) == t {
		m.Store(rec+edgeT2, 0)
	}
	if m.Load(rec+edgeT1) == 0 && m.Load(rec+edgeT2) == 0 {
		ms.edges.Remove(m, key)
		m.Free(rec, edgeWords)
	}
}

// neighborAcross returns the live triangle sharing the edge with t, or nil.
func (ms *mesh) neighborAcross(m tm.Mem, key uint64, t mem.Addr) mem.Addr {
	recA, ok := ms.edges.Get(m, key)
	if !ok {
		return mem.Nil
	}
	rec := mem.Addr(recA)
	t1 := mem.Addr(m.Load(rec + edgeT1))
	t2 := mem.Addr(m.Load(rec + edgeT2))
	if t1 != t && t1 != mem.Nil {
		return t1
	}
	if t2 != t && t2 != mem.Nil {
		return t2
	}
	return mem.Nil
}

// killTriangle marks t dead and unlinks its edges.
func (ms *mesh) killTriangle(m tm.Mem, t mem.Addr) {
	v0, v1, v2 := ms.verts(m, t)
	m.Store(t+triAlive, 0)
	ms.unlinkEdge(m, edgeKey(v0, v1), t)
	ms.unlinkEdge(m, edgeKey(v1, v2), t)
	ms.unlinkEdge(m, edgeKey(v2, v0), t)
}

// badnessKey encodes a triangle's priority for the work heap: skinnier
// first (smaller key pops first).
func badnessKey(minAngle float64) uint64 {
	return uint64(minAngle * 1e6)
}
