package yada

import (
	"math"
	"testing"

	"github.com/stamp-go/stamp/internal/rng"
)

func TestOrientSign(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if orient(a, b, Point{0, 1}) <= 0 {
		t.Fatal("ccw triangle not positive")
	}
	if orient(a, b, Point{0, -1}) >= 0 {
		t.Fatal("cw triangle not negative")
	}
	if orient(a, b, Point{2, 0}) != 0 {
		t.Fatal("collinear not zero")
	}
}

func TestCircumcenterEquidistant(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 200; trial++ {
		a := Point{r.Float64(), r.Float64()}
		b := Point{r.Float64(), r.Float64()}
		c := Point{r.Float64(), r.Float64()}
		if math.Abs(orient(a, b, c)) < 1e-6 {
			continue
		}
		cc, ok := circumcenter(a, b, c)
		if !ok {
			t.Fatalf("circumcenter failed for non-degenerate triangle")
		}
		da, db, dc := dist(cc, a), dist(cc, b), dist(cc, c)
		if math.Abs(da-db) > 1e-8 || math.Abs(da-dc) > 1e-8 {
			t.Fatalf("not equidistant: %g %g %g", da, db, dc)
		}
	}
}

func TestCircumcenterDegenerate(t *testing.T) {
	if _, ok := circumcenter(Point{0, 0}, Point{1, 1}, Point{2, 2}); ok {
		t.Fatal("collinear points produced a circumcenter")
	}
}

func TestInCircumcircle(t *testing.T) {
	a, b, c := Point{0, 0}, Point{1, 0}, Point{0, 1} // ccw
	if !inCircumcircle(a, b, c, Point{0.5, 0.5}) {
		t.Fatal("interior point not in circumcircle")
	}
	if inCircumcircle(a, b, c, Point{5, 5}) {
		t.Fatal("far point in circumcircle")
	}
}

func TestMinAngleKnownTriangles(t *testing.T) {
	// Equilateral: 60 degrees.
	eq := minAngleDeg(Point{0, 0}, Point{1, 0}, Point{0.5, math.Sqrt(3) / 2})
	if math.Abs(eq-60) > 1e-9 {
		t.Fatalf("equilateral min angle = %v", eq)
	}
	// Right isoceles: 45.
	ri := minAngleDeg(Point{0, 0}, Point{1, 0}, Point{0, 1})
	if math.Abs(ri-45) > 1e-9 {
		t.Fatalf("right isoceles min angle = %v", ri)
	}
	// Skinny: tiny.
	sk := minAngleDeg(Point{0, 0}, Point{1, 0}, Point{0.5, 0.001})
	if sk > 1 {
		t.Fatalf("skinny triangle min angle = %v", sk)
	}
}

func TestEncroaches(t *testing.T) {
	a, b := Point{0, 0}, Point{2, 0}
	if !encroaches(a, b, Point{1, 0.5}) {
		t.Fatal("point inside diametral circle not flagged")
	}
	if encroaches(a, b, Point{1, 1.5}) {
		t.Fatal("point outside diametral circle flagged")
	}
}

func TestTriangulateProducesValidDelaunay(t *testing.T) {
	r := rng.New(17)
	pts := []Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	for i := 0; i < 60; i++ {
		pts = append(pts, Point{0.05 + 0.9*r.Float64(), 0.05 + 0.9*r.Float64()})
	}
	tris := triangulate(pts)
	if len(tris) == 0 {
		t.Fatal("no triangles")
	}
	// All ccw, and total area equals the unit square.
	area := 0.0
	for _, tr := range tris {
		o := orient(pts[tr[0]], pts[tr[1]], pts[tr[2]])
		if o <= 0 {
			t.Fatalf("non-ccw triangle %v", tr)
		}
		area += o / 2
	}
	if math.Abs(area-1) > 1e-9 {
		t.Fatalf("area = %v, want 1 (triangulation has holes/overlaps)", area)
	}
	// Delaunay property: no point strictly inside any circumcircle.
	for _, tr := range tris {
		for pi := range pts {
			if int32(pi) == tr[0] || int32(pi) == tr[1] || int32(pi) == tr[2] {
				continue
			}
			if inCircumcircle(pts[tr[0]], pts[tr[1]], pts[tr[2]], pts[pi]) {
				t.Fatalf("Delaunay violated: point %d inside circumcircle of %v", pi, tr)
			}
		}
	}
}

func TestTriangulateTooFewPoints(t *testing.T) {
	if got := triangulate([]Point{{0, 0}, {1, 1}}); got != nil {
		t.Fatal("triangulation of 2 points should be nil")
	}
}
