package yada

import "math"

// Point is a 2-D vertex.
type Point struct{ X, Y float64 }

const geomEps = 1e-12

// orient returns twice the signed area of (a, b, c): positive when the
// triangle winds counter-clockwise.
func orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// inCircumcircle reports whether p lies strictly inside the circumcircle of
// the counter-clockwise triangle (a, b, c).
func inCircumcircle(a, b, c, p Point) bool {
	ax, ay := a.X-p.X, a.Y-p.Y
	bx, by := b.X-p.X, b.Y-p.Y
	cx, cy := c.X-p.X, c.Y-p.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > geomEps
}

// circumcenter returns the circumcenter of (a, b, c); ok is false for
// (near-)degenerate triangles.
func circumcenter(a, b, c Point) (Point, bool) {
	d := 2 * orient(a, b, c)
	if math.Abs(d) < geomEps {
		return Point{}, false
	}
	a2 := a.X*a.X + a.Y*a.Y
	b2 := b.X*b.X + b.Y*b.Y
	c2 := c.X*c.X + c.Y*c.Y
	ux := (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
	uy := (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
	return Point{ux, uy}, true
}

// minAngleDeg returns the smallest interior angle of (a, b, c) in degrees.
func minAngleDeg(a, b, c Point) float64 {
	la := dist(b, c)
	lb := dist(a, c)
	lc := dist(a, b)
	if la < geomEps || lb < geomEps || lc < geomEps {
		return 0
	}
	angA := angleFromSides(lb, lc, la)
	angB := angleFromSides(la, lc, lb)
	angC := 180 - angA - angB
	return math.Min(angA, math.Min(angB, angC))
}

// angleFromSides returns the angle (degrees) opposite side c via the law of
// cosines, for adjacent sides a and b.
func angleFromSides(a, b, c float64) float64 {
	cos := (a*a + b*b - c*c) / (2 * a * b)
	if cos > 1 {
		cos = 1
	}
	if cos < -1 {
		cos = -1
	}
	return math.Acos(cos) * 180 / math.Pi
}

func dist(a, b Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// encroaches reports whether p lies inside the diametral circle of the
// segment (a, b).
func encroaches(a, b, p Point) bool {
	mid := Point{(a.X + b.X) / 2, (a.Y + b.Y) / 2}
	r := dist(a, b) / 2
	return dist(mid, p) < r-geomEps
}

// triangulate computes the Delaunay triangulation of pts with the classic
// Bowyer–Watson algorithm (super-triangle, per-point cavity re-triangulation).
// It returns counter-clockwise triangles as point-index triples. Quadratic
// in the point count; used only for input generation.
func triangulate(pts []Point) [][3]int32 {
	n := len(pts)
	if n < 3 {
		return nil
	}
	// Bounding super-triangle.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	span := math.Max(maxX-minX, maxY-minY) * 16
	all := append(append([]Point(nil), pts...),
		Point{minX - span, minY - span},
		Point{minX + 2*span, minY - span},
		Point{minX, minY + 2*span},
	)
	s0, s1, s2 := int32(n), int32(n+1), int32(n+2)

	type tri = [3]int32
	tris := []tri{{s0, s1, s2}}
	for pi := 0; pi < n; pi++ {
		p := all[pi]
		// Cavity: triangles whose circumcircle contains p.
		var keep []tri
		edgeCount := map[[2]int32]int{}
		var boundary [][2]int32
		for _, t := range tris {
			if inCircumcircle(all[t[0]], all[t[1]], all[t[2]], p) {
				for e := 0; e < 3; e++ {
					u, w := t[e], t[(e+1)%3]
					key := [2]int32{u, w}
					rev := [2]int32{w, u}
					if edgeCount[rev] > 0 {
						edgeCount[rev]--
					} else {
						edgeCount[key]++
					}
				}
			} else {
				keep = append(keep, t)
			}
		}
		for key, cnt := range edgeCount {
			for i := 0; i < cnt; i++ {
				boundary = append(boundary, key)
			}
		}
		tris = keep
		for _, e := range boundary {
			nt := tri{e[0], e[1], int32(pi)}
			if orient(all[nt[0]], all[nt[1]], all[nt[2]]) < 0 {
				nt[0], nt[1] = nt[1], nt[0]
			}
			tris = append(tris, nt)
		}
	}
	// Drop triangles touching the super-triangle.
	var out [][3]int32
	for _, t := range tris {
		if t[0] >= int32(n) || t[1] >= int32(n) || t[2] >= int32(n) {
			continue
		}
		out = append(out, t)
	}
	return out
}
