package intruder

// Detector is the detection-phase substrate: Boyer–Moore–Horspool substring
// matchers, one per attack signature, compiled once at generation time. The
// detection phase is the non-transactional part of the pipeline (as in the
// paper: capture and reassembly run under transactions, detection runs on
// the privately owned reassembled flow), so a real matcher keeps the phase's
// share of execution time honest.
type Detector struct {
	matchers []bmh
}

type bmh struct {
	pattern string
	shift   [256]int
}

// NewDetector compiles the signature dictionary.
func NewDetector(signatures []string) *Detector {
	d := &Detector{matchers: make([]bmh, 0, len(signatures))}
	for _, sig := range signatures {
		if sig == "" {
			continue
		}
		m := bmh{pattern: sig}
		for i := range m.shift {
			m.shift[i] = len(sig)
		}
		for i := 0; i < len(sig)-1; i++ {
			m.shift[sig[i]] = len(sig) - 1 - i
		}
		d.matchers = append(d.matchers, m)
	}
	return d
}

// Match reports whether any signature occurs in text.
func (d *Detector) Match(text string) bool {
	for i := range d.matchers {
		if d.matchers[i].search(text) >= 0 {
			return true
		}
	}
	return false
}

// search returns the first match index of the pattern in text, or -1.
func (m *bmh) search(text string) int {
	n, k := len(text), len(m.pattern)
	if k == 0 || k > n {
		return -1
	}
	i := 0
	for i <= n-k {
		if text[i+k-1] == m.pattern[k-1] {
			j := 0
			for j < k && text[i+j] == m.pattern[j] {
				j++
			}
			if j == k {
				return i
			}
		}
		i += m.shift[text[i+k-1]]
	}
	return -1
}
