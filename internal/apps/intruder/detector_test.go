package intruder

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/stamp-go/stamp/internal/rng"
)

func TestDetectorBasics(t *testing.T) {
	d := NewDetector([]string{"ATTACK", "EXPLOIT"})
	cases := []struct {
		text string
		want bool
	}{
		{"", false},
		{"clean flow", false},
		{"ATTACK", true},
		{"xxATTACKyy", true},
		{"xxEXPLOIT", true},
		{"ATTAC", false},
		{"aATTACk", false}, // case-sensitive
		{"AATTACK", true},
		{strings.Repeat("A", 1000) + "TTACK", true},
	}
	for _, c := range cases {
		if got := d.Match(c.text); got != c.want {
			t.Errorf("Match(%.20q...) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestDetectorEmptyDictionary(t *testing.T) {
	d := NewDetector(nil)
	if d.Match("anything") {
		t.Fatal("empty dictionary matched")
	}
	d2 := NewDetector([]string{""})
	if d2.Match("anything") {
		t.Fatal("empty pattern matched")
	}
}

func TestBMHMatchesStringsIndex(t *testing.T) {
	f := func(hay []byte, needle []byte) bool {
		if len(needle) == 0 || len(needle) > 24 {
			return true
		}
		h, n := string(hay), string(needle)
		m := bmh{pattern: n}
		for i := range m.shift {
			m.shift[i] = len(n)
		}
		for i := 0; i < len(n)-1; i++ {
			m.shift[n[i]] = len(n) - 1 - i
		}
		return m.search(h) == strings.Index(h, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBMHRandomEmbedded(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 200; trial++ {
		pat := make([]byte, r.Intn(10)+2)
		for i := range pat {
			pat[i] = byte('A' + r.Intn(26))
		}
		body := make([]byte, r.Intn(200)+10)
		for i := range body {
			body[i] = byte('a' + r.Intn(26)) // disjoint alphabet from pattern
		}
		pos := r.Intn(len(body) - 1)
		text := string(body[:pos]) + string(pat) + string(body[pos:])
		d := NewDetector([]string{string(pat)})
		if !d.Match(text) {
			t.Fatalf("embedded pattern %q not found", pat)
		}
		if d.Match(string(body)) {
			t.Fatalf("pattern %q found in disjoint-alphabet body", pat)
		}
	}
}
