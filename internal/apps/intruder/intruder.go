// Package intruder implements STAMP's intruder benchmark: a signature-based
// network intrusion detection system modelled on Design 5 of Haagdorens et
// al. Packets flow through three phases — capture (a shared FIFO queue),
// reassembly (a dictionary keyed by session implemented with a red-black
// tree), and detection (substring scan against the attack dictionary).
// Capture and reassembly each run as one transaction; transactions are
// short, contention is moderate-to-high (the reassembly tree rebalances),
// and a moderate fraction of total time is transactional.
package intruder

import (
	"fmt"
	"sort"
	"strings"

	"github.com/stamp-go/stamp/internal/container"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// Atomic-block call sites, registered once for per-block statistics
// attribution (tm.Stats.Blocks) and adaptive protocol selection.
var (
	blkCapture    = tm.NewBlock("intruder/capture")
	blkReassembly = tm.NewBlock("intruder/reassembly")
	blkFlag       = tm.NewBlock("intruder/flag-attack")
)

// Config mirrors the Table IV arguments: -a (% flows with attacks),
// -l (max packets per flow), -n (flow count), -s (seed).
type Config struct {
	AttackPercent int    // -a
	MaxPackets    int    // -l
	Flows         int    // -n
	Seed          uint64 // -s
}

// packet is one generated fragment (immutable input).
type packet struct {
	flow  int32
	frag  int32
	nfrag int32
	data  string
}

// App is one intruder instance.
type App struct {
	cfg        Config
	dictionary []string  // attack signatures
	detector   *Detector // compiled Boyer–Moore–Horspool matchers
	packets    []packet  // globally shuffled fragments
	flows      []string  // full per-flow content (oracle)
	attacked   []bool    // per-flow injected-attack flag

	// Arena layout.
	capture  container.Queue  // packet indices
	sessions container.RBTree // flowId -> session record
	detected container.List   // flowId -> 1 (attack verdicts)

	// Per-thread reassembly transcripts, merged by Verify.
	reassembled [][]flowResult
}

type flowResult struct {
	flow    int32
	content string
}

// Session record layout: [received, total, fragment list header].
const (
	sesRecv  = 0
	sesTotal = 1
	sesList  = 2
	sesWords = 3
)

const (
	dictionarySize  = 16
	signatureLength = 12
	fragmentBytes   = 16
)

var alphabet = []byte("abcdefghijklmnopqrstuvwxyz0123456789")

// New generates the attack dictionary, the flows (AttackPercent of which
// embed a random signature), and the shuffled fragment stream.
func New(cfg Config) *App {
	if cfg.MaxPackets < 1 {
		cfg.MaxPackets = 1
	}
	if cfg.Flows < 1 {
		cfg.Flows = 1
	}
	a := &App{cfg: cfg}
	r := rng.New(cfg.Seed ^ 0x696e7472)
	randString := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for i := 0; i < dictionarySize; i++ {
		a.dictionary = append(a.dictionary, strings.ToUpper(randString(signatureLength)))
	}
	a.detector = NewDetector(a.dictionary)
	a.flows = make([]string, cfg.Flows)
	a.attacked = make([]bool, cfg.Flows)
	nAttacks := cfg.Flows * cfg.AttackPercent / 100
	for f := 0; f < cfg.Flows; f++ {
		nfrag := 1 + r.Intn(cfg.MaxPackets)
		content := randString(nfrag * fragmentBytes)
		if f < nAttacks {
			a.attacked[f] = true
			sig := a.dictionary[r.Intn(dictionarySize)]
			pos := r.Intn(len(content) - len(sig) + 1)
			content = content[:pos] + sig + content[pos+len(sig):]
		}
		a.flows[f] = content
		for frag := 0; frag < nfrag; frag++ {
			a.packets = append(a.packets, packet{
				flow:  int32(f),
				frag:  int32(frag),
				nfrag: int32(nfrag),
				data:  content[frag*fragmentBytes : (frag+1)*fragmentBytes],
			})
		}
	}
	r.Shuffle(len(a.packets), func(i, j int) {
		a.packets[i], a.packets[j] = a.packets[j], a.packets[i]
	})
	return a
}

// Name implements apps.App.
func (a *App) Name() string { return "intruder" }

// ArenaWords implements apps.App. Aborted attempts leak their allocations
// (bump allocator, like STAMP's tmalloc), so the budget includes generous
// retry churn on top of the live-data estimate.
func (a *App) ArenaWords() int {
	perFlow := sesWords + 8 /* rb node */ + 2 /* list hdr */ + 3
	perPkt := 3 /* list node */
	live := 4 + len(a.packets) + a.cfg.Flows*perFlow + len(a.packets)*perPkt + a.cfg.Flows*4
	return live*24 + 1<<18
}

// Setup implements apps.App: loads the capture queue with every fragment.
func (a *App) Setup(ar *mem.Arena) {
	d := mem.Direct{A: ar}
	a.capture = container.NewQueue(d, len(a.packets)+1)
	for i := range a.packets {
		a.capture.Push(d, uint64(i))
	}
	a.sessions = container.NewRBTree(d)
	a.detected = container.NewList(d)
	a.reassembled = nil
}

// Run implements apps.App: each thread loops capture -> reassembly ->
// detection until the stream is drained.
func (a *App) Run(sys tm.System, team *thread.Team) {
	a.reassembled = make([][]flowResult, team.N())
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		for {
			// Phase 1: capture (one transaction).
			pktIdx := -1
			th.AtomicAt(blkCapture, func(tx tm.Tx) {
				pktIdx = -1
				if v, ok := a.capture.Pop(tx); ok {
					pktIdx = int(v)
				}
			})
			if pktIdx < 0 {
				return // stream drained; every enqueued fragment is handled
			}
			pkt := &a.packets[pktIdx]

			// Phase 2: reassembly (one transaction). If the fragment
			// completes its session, collect the fragment list for decoding.
			var completed []int // packet indices in fragment order
			th.AtomicAt(blkReassembly, func(tx tm.Tx) {
				completed = completed[:0]
				sesA, ok := a.sessions.Get(tx, uint64(pkt.flow))
				var ses mem.Addr
				if !ok {
					ses = tx.Alloc(sesWords)
					tx.Store(ses+sesRecv, 0)
					tx.Store(ses+sesTotal, uint64(pkt.nfrag))
					tx.Store(ses+sesList, uint64(container.NewList(tx).H))
					a.sessions.Insert(tx, uint64(pkt.flow), uint64(ses))
				} else {
					ses = mem.Addr(sesA)
				}
				frags := container.List{H: mem.Addr(tx.Load(ses + sesList))}
				if !frags.Insert(tx, uint64(pkt.frag), uint64(pktIdx)) {
					return // duplicate fragment (cannot happen with our generator)
				}
				recv := tx.Load(ses+sesRecv) + 1
				tx.Store(ses+sesRecv, recv)
				if recv == tx.Load(ses+sesTotal) {
					frags.Each(tx, func(_, v uint64) bool {
						completed = append(completed, int(v))
						return true
					})
					a.sessions.Remove(tx, uint64(pkt.flow))
				}
			})
			if len(completed) == 0 {
				continue
			}

			// Phase 3: detection (non-transactional scan, then one
			// transaction to publish the verdict).
			var sb strings.Builder
			for _, pi := range completed {
				sb.WriteString(a.packets[pi].data)
			}
			content := sb.String()
			a.reassembled[tid] = append(a.reassembled[tid], flowResult{flow: pkt.flow, content: content})
			if a.detector.Match(content) {
				flow := pkt.flow
				th.AtomicAt(blkFlag, func(tx tm.Tx) {
					a.detected.Insert(tx, uint64(flow), 1)
				})
			}
		}
	})
}

// Verify implements apps.App: every flow reassembled exactly once and
// byte-identical to its source, and the detected set equals the injected
// attack set.
func (a *App) Verify(ar *mem.Arena) error {
	d := mem.Direct{A: ar}
	seen := make(map[int32]string, a.cfg.Flows)
	for _, results := range a.reassembled {
		for _, res := range results {
			if _, dup := seen[res.flow]; dup {
				return fmt.Errorf("intruder: flow %d reassembled twice", res.flow)
			}
			seen[res.flow] = res.content
		}
	}
	if len(seen) != a.cfg.Flows {
		return fmt.Errorf("intruder: %d flows reassembled, want %d", len(seen), a.cfg.Flows)
	}
	for f, want := range a.flows {
		if got := seen[int32(f)]; got != want {
			return fmt.Errorf("intruder: flow %d reassembled incorrectly", f)
		}
	}
	if a.sessions.Len(d) != 0 {
		return fmt.Errorf("intruder: %d sessions left in the reassembly tree", a.sessions.Len(d))
	}
	var gotAttacks []int
	a.detected.Each(d, func(k, _ uint64) bool {
		gotAttacks = append(gotAttacks, int(k))
		return true
	})
	var wantAttacks []int
	for f, att := range a.attacked {
		if att {
			wantAttacks = append(wantAttacks, f)
		}
	}
	sort.Ints(gotAttacks)
	if len(gotAttacks) != len(wantAttacks) {
		return fmt.Errorf("intruder: detected %d attacks, injected %d", len(gotAttacks), len(wantAttacks))
	}
	for i := range wantAttacks {
		if gotAttacks[i] != wantAttacks[i] {
			return fmt.Errorf("intruder: attack set mismatch at %d: %d != %d", i, gotAttacks[i], wantAttacks[i])
		}
	}
	return nil
}
