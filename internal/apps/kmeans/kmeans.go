// Package kmeans implements STAMP's kmeans benchmark: K-means clustering
// (taken from MineBench in the original suite) where each thread processes a
// partition of the points and a transaction protects the update of the
// cluster-center accumulators. Transactions are short with small read/write
// sets proportional to the dimensionality D, and little of the execution
// time is transactional — the bulk is the private nearest-center search.
package kmeans

import (
	"fmt"
	"math"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// Atomic-block call sites, registered once for per-block statistics
// attribution (tm.Stats.Blocks) and adaptive protocol selection.
var (
	blkCenter = tm.NewBlock("kmeans/center-update")
)

// Config mirrors the Table IV arguments: -m/-n (min/max clusters),
// -t (convergence threshold), and the generated input
// random-nPOINTS-dDIMS-cCENTERS.
type Config struct {
	MinClusters int     // -m
	MaxClusters int     // -n
	Threshold   float64 // -t
	Points      int     // input n
	Dims        int     // input d
	GenCenters  int     // input c: generator centers
	Seed        uint64
}

// maxIterations caps each clustering run, as in the original (500).
const maxIterations = 500

// App is one kmeans instance.
type App struct {
	cfg    Config
	points []float64 // Points × Dims, read-only after generation

	// Arena layout (per clustering run, reused across K):
	// accumulators: K rows of (Dims sums + 1 count).
	accBase mem.Addr

	// Results, filled by Run.
	converged  bool
	iterations int
	finalSSE   float64
	centers    []float64 // final centers of the last K run
}

// New generates the input point cloud: GenCenters gaussian blobs in the
// unit cube, matching the original random-n*-d*-c* inputs in spirit.
func New(cfg Config) *App {
	if cfg.MinClusters < 1 {
		cfg.MinClusters = 1
	}
	if cfg.MaxClusters < cfg.MinClusters {
		cfg.MaxClusters = cfg.MinClusters
	}
	r := rng.New(cfg.Seed ^ 0x6b6d65616e73)
	centers := make([]float64, cfg.GenCenters*cfg.Dims)
	for i := range centers {
		centers[i] = r.Float64()
	}
	pts := make([]float64, cfg.Points*cfg.Dims)
	for p := 0; p < cfg.Points; p++ {
		c := r.Intn(cfg.GenCenters)
		for d := 0; d < cfg.Dims; d++ {
			pts[p*cfg.Dims+d] = centers[c*cfg.Dims+d] + r.NormFloat64()*0.05
		}
	}
	return &App{cfg: cfg, points: pts}
}

// Name implements apps.App.
func (a *App) Name() string { return "kmeans" }

// ArenaWords implements apps.App.
func (a *App) ArenaWords() int {
	return a.cfg.MaxClusters*(a.cfg.Dims+1) + 64
}

// Setup implements apps.App: allocates the shared accumulator block.
func (a *App) Setup(ar *mem.Arena) {
	a.accBase = ar.Alloc(a.cfg.MaxClusters * (a.cfg.Dims + 1))
}

// accAddr returns the accumulator row for cluster k: Dims sums then count.
func (a *App) accAddr(k int) mem.Addr {
	return a.accBase + mem.Addr(k*(a.cfg.Dims+1))
}

// Run implements apps.App. For each K in [MinClusters, MaxClusters] (all
// Table IV configs use m == n) it iterates assignment + transactional
// accumulation until fewer than Threshold of the points change membership.
func (a *App) Run(sys tm.System, team *thread.Team) {
	for k := a.cfg.MinClusters; k <= a.cfg.MaxClusters; k++ {
		a.runOnce(sys, team, k)
	}
}

func (a *App) runOnce(sys tm.System, team *thread.Team, k int) {
	n, d := a.cfg.Points, a.cfg.Dims
	direct := mem.Direct{A: sys.Arena()}

	// Initial centers: the first K points (deterministic, as in MineBench).
	centers := make([]float64, k*d)
	for c := 0; c < k && c < n; c++ {
		copy(centers[c*d:(c+1)*d], a.points[c*d:(c+1)*d])
	}
	membership := make([]int32, n)
	for i := range membership {
		membership[i] = -1
	}
	deltas := make([]int64, team.N()*8) // strided to avoid false sharing
	stop := false
	iter := 0

	team.Run(func(tid int) {
		th := sys.Thread(tid)
		lo, hi := tid*n/team.N(), (tid+1)*n/team.N()
		for {
			team.Barrier().Wait()
			if stop {
				return
			}
			local := int64(0)
			for p := lo; p < hi; p++ {
				best, bestDist := 0, math.MaxFloat64
				for c := 0; c < k; c++ {
					dist := 0.0
					for j := 0; j < d; j++ {
						diff := a.points[p*d+j] - centers[c*d+j]
						dist += diff * diff
					}
					if dist < bestDist {
						best, bestDist = c, dist
					}
				}
				if membership[p] != int32(best) {
					membership[p] = int32(best)
					local++
				}
				p := p
				// The transaction of the paper: update the shared center
				// accumulator for the chosen cluster.
				th.AtomicAt(blkCenter, func(tx tm.Tx) {
					row := a.accAddr(best)
					for j := 0; j < d; j++ {
						addr := row + mem.Addr(j)
						tm.StoreF64(tx, addr, tm.LoadF64(tx, addr)+a.points[p*d+j])
					}
					tx.Store(row+mem.Addr(d), tx.Load(row+mem.Addr(d))+1)
				})
			}
			deltas[tid*8] = local
			team.Barrier().Wait()
			if tid == 0 {
				// Master: fold accumulators into the next iteration's
				// centers (sequential, like the original's barrier phase).
				total := int64(0)
				for _, t := range deltas {
					total += t
				}
				for c := 0; c < k; c++ {
					row := a.accAddr(c)
					cnt := direct.Load(row + mem.Addr(d))
					for j := 0; j < d; j++ {
						if cnt > 0 {
							centers[c*d+j] = tm.LoadF64(direct, row+mem.Addr(j)) / float64(cnt)
						}
						tm.StoreF64(direct, row+mem.Addr(j), 0)
					}
					direct.Store(row+mem.Addr(d), 0)
				}
				iter++
				if float64(total)/float64(n) <= a.cfg.Threshold || iter >= maxIterations {
					stop = true
					a.converged = float64(total)/float64(n) <= a.cfg.Threshold
					a.iterations = iter
				}
			}
		}
	})

	a.centers = centers
	a.finalSSE = a.sse(centers, k)
}

// sse is the total within-cluster sum of squared distances for the given
// centers.
func (a *App) sse(centers []float64, k int) float64 {
	n, d := a.cfg.Points, a.cfg.Dims
	total := 0.0
	for p := 0; p < n; p++ {
		best := math.MaxFloat64
		for c := 0; c < k; c++ {
			dist := 0.0
			for j := 0; j < d; j++ {
				diff := a.points[p*d+j] - centers[c*d+j]
				dist += diff * diff
			}
			if dist < best {
				best = dist
			}
		}
		total += best
	}
	return total
}

// Verify implements apps.App: the clustering must have converged (or hit
// the iteration cap) and its quality must match a sequential reference run
// within a small tolerance — transactional accumulation reorders float
// additions, so bit equality is not expected.
func (a *App) Verify(*mem.Arena) error {
	if a.iterations == 0 {
		return fmt.Errorf("kmeans: Run was never executed")
	}
	if !a.converged && a.iterations < maxIterations {
		return fmt.Errorf("kmeans: stopped without converging after %d iterations", a.iterations)
	}
	ref := a.referenceSSE(a.cfg.MaxClusters)
	if ref == 0 {
		return nil
	}
	rel := math.Abs(a.finalSSE-ref) / ref
	if rel > 0.05 {
		return fmt.Errorf("kmeans: SSE %.6g deviates %.2f%% from sequential reference %.6g",
			a.finalSSE, rel*100, ref)
	}
	return nil
}

// referenceSSE runs the same algorithm sequentially in plain Go.
func (a *App) referenceSSE(k int) float64 {
	n, d := a.cfg.Points, a.cfg.Dims
	centers := make([]float64, k*d)
	for c := 0; c < k && c < n; c++ {
		copy(centers[c*d:(c+1)*d], a.points[c*d:(c+1)*d])
	}
	membership := make([]int32, n)
	for i := range membership {
		membership[i] = -1
	}
	sums := make([]float64, k*d)
	counts := make([]int64, k)
	for iter := 0; iter < maxIterations; iter++ {
		changed := 0
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for p := 0; p < n; p++ {
			best, bestDist := 0, math.MaxFloat64
			for c := 0; c < k; c++ {
				dist := 0.0
				for j := 0; j < d; j++ {
					diff := a.points[p*d+j] - centers[c*d+j]
					dist += diff * diff
				}
				if dist < bestDist {
					best, bestDist = c, dist
				}
			}
			if membership[p] != int32(best) {
				membership[p] = int32(best)
				changed++
			}
			for j := 0; j < d; j++ {
				sums[best*d+j] += a.points[p*d+j]
			}
			counts[best]++
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				for j := 0; j < d; j++ {
					centers[c*d+j] = sums[c*d+j] / float64(counts[c])
				}
			}
		}
		if float64(changed)/float64(n) <= a.cfg.Threshold {
			break
		}
	}
	return a.sse(centers, k)
}

// Iterations reports how many iterations the last Run took (for tests).
func (a *App) Iterations() int { return a.iterations }

// SSE reports the final clustering quality of the last Run (for tests).
func (a *App) SSE() float64 { return a.finalSSE }
