// Package ssca2 implements STAMP's ssca2 benchmark: Kernel 1 of the
// Scalable Synthetic Compact Applications 2 graph suite, which constructs an
// efficient adjacency-array representation of a large directed weighted
// multigraph. Threads add nodes' edges to the arrays in parallel, with
// transactions protecting the degree counters and the placement cursors.
// Transactions are very short, read and write sets are tiny, and little of
// the total time is transactional — the low-stress end of the suite.
package ssca2

import (
	"fmt"
	"sort"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// Atomic-block call sites, registered once for per-block statistics
// attribution (tm.Stats.Blocks) and adaptive protocol selection.
var (
	blkDegree = tm.NewBlock("ssca2/degree-count")
	blkPlace  = tm.NewBlock("ssca2/adj-place")
)

// Config mirrors the Table IV arguments: -s (2^s nodes), -i/-u (inter-clique
// and unidirectional edge probabilities), -l (max path length, a generator
// detail), -p (max parallel edges).
type Config struct {
	Scale         int     // -s: 2^s nodes
	ProbInter     float64 // -i
	ProbUnidirect float64 // -u
	MaxPathLen    int     // -l (used to scale inter-clique fan-out)
	MaxParallel   int     // -p
	Seed          uint64
}

// App is one ssca2 instance.
type App struct {
	cfg Config
	n   int // node count

	// Generated edge tuples (the Scalable Data Generator output).
	src, dst []int32
	weights  []uint32

	// Arena layout.
	degBase mem.Addr // per-node out-degree counters (phase A)
	idxBase mem.Addr // per-node adjacency start index (prefix sums)
	curBase mem.Addr // per-node placement cursors (phase C)
	adjBase mem.Addr // adjacency array: destination nodes
	wgtBase mem.Addr // adjacency array: weights
}

// New runs the data generator: nodes are grouped into cliques (max size
// derived from scale), cliques are fully connected internally with up to
// MaxParallel parallel edges, and neighbouring cliques are linked with
// probability ProbInter; ProbUnidirect of all links are one-way.
func New(cfg Config) *App {
	if cfg.Scale < 2 {
		cfg.Scale = 2
	}
	if cfg.MaxParallel < 1 {
		cfg.MaxParallel = 1
	}
	if cfg.MaxPathLen < 1 {
		cfg.MaxPathLen = 1
	}
	a := &App{cfg: cfg, n: 1 << cfg.Scale}
	r := rng.New(cfg.Seed ^ 0x7373636132)

	maxClique := cfg.Scale // SSCA2 uses small cliques relative to n
	if maxClique < 2 {
		maxClique = 2
	}
	addEdge := func(u, v int) {
		par := 1 + r.Intn(cfg.MaxParallel)
		for p := 0; p < par; p++ {
			a.src = append(a.src, int32(u))
			a.dst = append(a.dst, int32(v))
			a.weights = append(a.weights, r.Uint32()%1024+1)
		}
	}
	var cliqueStart []int
	for base := 0; base < a.n; {
		cliqueStart = append(cliqueStart, base)
		size := 1 + r.Intn(maxClique)
		if base+size > a.n {
			size = a.n - base
		}
		// Intra-clique: full connectivity.
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				u, v := base+i, base+j
				addEdge(u, v)
				if r.Float64() >= cfg.ProbUnidirect {
					addEdge(v, u)
				}
			}
		}
		base += size
	}
	// Inter-clique links: each clique connects to a few following cliques
	// (fan-out scaled by MaxPathLen) with probability ProbInter.
	for ci, base := range cliqueStart {
		for hop := 1; hop <= cfg.MaxPathLen && ci+hop < len(cliqueStart); hop++ {
			if r.Float64() < cfg.ProbInter {
				u := base
				v := cliqueStart[ci+hop]
				addEdge(u, v)
				if r.Float64() >= cfg.ProbUnidirect {
					addEdge(v, u)
				}
			}
		}
	}
	return a
}

// Name implements apps.App.
func (a *App) Name() string { return "ssca2" }

// Edges returns the generated edge count (for tests).
func (a *App) Edges() int { return len(a.src) }

// ArenaWords implements apps.App.
func (a *App) ArenaWords() int {
	return 3*a.n + 2*len(a.src) + 256
}

// Setup implements apps.App: allocates the graph arrays.
func (a *App) Setup(ar *mem.Arena) {
	a.degBase = ar.Alloc(a.n)
	a.idxBase = ar.Alloc(a.n)
	a.curBase = ar.Alloc(a.n)
	a.adjBase = ar.Alloc(len(a.src))
	a.wgtBase = ar.Alloc(len(a.src))
}

// Run implements apps.App: Kernel 1.
func (a *App) Run(sys tm.System, team *thread.Team) {
	m := len(a.src)
	direct := mem.Direct{A: sys.Arena()}
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		lo, hi := tid*m/team.N(), (tid+1)*m/team.N()

		// Phase A: transactional out-degree counting.
		for e := lo; e < hi; e++ {
			u := mem.Addr(a.src[e])
			th.AtomicAt(blkDegree, func(tx tm.Tx) {
				d := a.degBase + u
				tx.Store(d, tx.Load(d)+1)
			})
		}
		team.Barrier().Wait()

		// Phase B: prefix sums (master), like the original's serial scan.
		if tid == 0 {
			var sum uint64
			for v := 0; v < a.n; v++ {
				direct.Store(a.idxBase+mem.Addr(v), sum)
				sum += direct.Load(a.degBase + mem.Addr(v))
			}
		}
		team.Barrier().Wait()

		// Phase C: transactional placement into the adjacency arrays.
		for e := lo; e < hi; e++ {
			u := mem.Addr(a.src[e])
			v := uint64(a.dst[e])
			w := uint64(a.weights[e])
			th.AtomicAt(blkPlace, func(tx tm.Tx) {
				cur := tx.Load(a.curBase + u)
				tx.Store(a.curBase+u, cur+1)
				pos := mem.Addr(tx.Load(a.idxBase+u) + cur)
				tx.Store(a.adjBase+pos, v)
				tx.Store(a.wgtBase+pos, w)
			})
		}
	})
}

// Verify implements apps.App: the adjacency arrays must hold exactly the
// generated edge multiset, segmented by source node.
func (a *App) Verify(ar *mem.Arena) error {
	d := mem.Direct{A: ar}
	// Degree check.
	want := make([]uint64, a.n)
	for _, u := range a.src {
		want[u]++
	}
	var sum uint64
	for v := 0; v < a.n; v++ {
		got := d.Load(a.degBase + mem.Addr(v))
		if got != want[v] {
			return fmt.Errorf("ssca2: node %d degree = %d, want %d", v, got, want[v])
		}
		if idx := d.Load(a.idxBase + mem.Addr(v)); idx != sum {
			return fmt.Errorf("ssca2: node %d index = %d, want %d", v, idx, sum)
		}
		if cur := d.Load(a.curBase + mem.Addr(v)); cur != want[v] {
			return fmt.Errorf("ssca2: node %d cursor = %d, want %d", v, cur, want[v])
		}
		sum += want[v]
	}
	// Edge multiset check per node: (dst, weight) pairs must match.
	wantAdj := make(map[int32][]ew, a.n)
	for e := range a.src {
		wantAdj[a.src[e]] = append(wantAdj[a.src[e]], ew{uint64(a.dst[e]), uint64(a.weights[e])})
	}
	for v := 0; v < a.n; v++ {
		start := d.Load(a.idxBase + mem.Addr(v))
		var got []ew
		for i := uint64(0); i < want[v]; i++ {
			got = append(got, ew{
				d.Load(a.adjBase + mem.Addr(start+i)),
				d.Load(a.wgtBase + mem.Addr(start+i)),
			})
		}
		exp := wantAdj[int32(v)]
		sortEW(got)
		sortEW(exp)
		for i := range exp {
			if got[i] != exp[i] {
				return fmt.Errorf("ssca2: node %d adjacency mismatch at %d: %v != %v", v, i, got[i], exp[i])
			}
		}
	}
	return nil
}

// ew is a (destination, weight) pair used by Verify.
type ew struct {
	v uint64
	w uint64
}

func sortEW(s []ew) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].v != s[j].v {
			return s[i].v < s[j].v
		}
		return s[i].w < s[j].w
	})
}
