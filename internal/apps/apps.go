// Package apps defines the contract every STAMP benchmark application
// implements. An App is constructed once per workload (deterministic input
// generation happens in the constructor), then can be staged into a fresh
// arena and executed on any TM system:
//
//	app := kmeans.New(cfg)
//	arena := mem.NewArena(app.ArenaWords())
//	app.Setup(arena)              // sequential, non-transactional staging
//	app.Run(sys, team)            // the timed, parallel, transactional region
//	err := app.Verify(arena)      // application-specific output oracle
//
// Setup/Run/Verify may be repeated with fresh arenas to run the same input
// on several systems, exactly like recompiling one STAMP benchmark against
// different TM libraries.
package apps

import (
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// App is one benchmark instance with a fixed, deterministic input.
type App interface {
	// Name returns the benchmark name ("kmeans", "vacation", ...).
	Name() string
	// ArenaWords returns the arena capacity (in 8-byte words) a run needs.
	ArenaWords() int
	// Setup stages the input into the arena. It must be called exactly once
	// per arena, before Run.
	Setup(a *mem.Arena)
	// Run executes the parallel transactional region on sys using team
	// (team.N() == sys.NThreads()). This is the region the paper times.
	Run(sys tm.System, team *thread.Team)
	// Verify checks the run's output against the application oracle.
	Verify(a *mem.Arena) error
}
