package bayes

import (
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
)

// buildFixture creates records and an adtree over them.
func buildFixture(t *testing.T, nVars, nRecords int, seed uint64) ([]uint64, mem.Addr, mem.Direct) {
	t.Helper()
	r := rng.New(seed)
	records := make([]uint64, nRecords)
	for i := range records {
		records[i] = r.Uint64() & ((1 << uint(nVars)) - 1)
	}
	arena := mem.NewArena(1 << 22)
	d := mem.Direct{A: arena}
	subset := make([]int, nRecords)
	for i := range subset {
		subset[i] = i
	}
	root := buildADTree(d, records, subset, 0, nVars)
	return records, root, d
}

// bruteCount scans the records directly.
func bruteCount(records []uint64, cons []varVal) int {
	n := 0
scan:
	for _, rec := range records {
		for _, c := range cons {
			if rec>>uint(c.v)&1 != c.val {
				continue scan
			}
		}
		n++
	}
	return n
}

func TestADTreeTotalCount(t *testing.T) {
	records, root, d := buildFixture(t, 10, 500, 1)
	if got := adCountQuery(d, records, root, nil, 0); got != 500 {
		t.Fatalf("unconstrained count = %d", got)
	}
}

func TestADTreeSingleVariable(t *testing.T) {
	records, root, d := buildFixture(t, 10, 500, 2)
	for v := 0; v < 10; v++ {
		for val := uint64(0); val <= 1; val++ {
			cons := []varVal{{v: v, val: val}}
			want := bruteCount(records, cons)
			if got := adCountQuery(d, records, root, cons, 0); got != want {
				t.Fatalf("count(v%d=%d) = %d, want %d", v, val, got, want)
			}
		}
	}
}

func TestADTreeMultiVariableMatchesBrute(t *testing.T) {
	records, root, d := buildFixture(t, 12, 800, 3)
	r := rng.New(99)
	for trial := 0; trial < 300; trial++ {
		nCons := r.Intn(5) + 1
		used := map[int]bool{}
		var cons []varVal
		for len(cons) < nCons {
			v := r.Intn(12)
			if used[v] {
				continue
			}
			used[v] = true
			cons = insertSorted(cons, varVal{v: v, val: uint64(r.Intn(2))})
		}
		want := bruteCount(records, cons)
		if got := adCountQuery(d, records, root, cons, 0); got != want {
			t.Fatalf("trial %d: count(%v) = %d, want %d", trial, cons, got, want)
		}
	}
}

func TestADTreeSmallRecordSetsLeaf(t *testing.T) {
	// Below the leaf cutoff everything is one leaf scan.
	records, root, d := buildFixture(t, 6, leafCutoff-1, 4)
	cons := []varVal{{v: 0, val: 1}, {v: 3, val: 0}}
	if got, want := adCountQuery(d, records, root, cons, 0), bruteCount(records, cons); got != want {
		t.Fatalf("leaf count = %d, want %d", got, want)
	}
}

func TestADTreeComplementarySplit(t *testing.T) {
	// count(v=0) + count(v=1) == total, for every variable (the MCV
	// subtraction path must be exact).
	records, root, d := buildFixture(t, 14, 1000, 5)
	for v := 0; v < 14; v++ {
		c0 := adCountQuery(d, records, root, []varVal{{v: v, val: 0}}, 0)
		c1 := adCountQuery(d, records, root, []varVal{{v: v, val: 1}}, 0)
		if c0+c1 != 1000 {
			t.Fatalf("v%d: %d + %d != 1000", v, c0, c1)
		}
	}
}

func TestInsertSortedKeepsOrder(t *testing.T) {
	cons := []varVal{{v: 2}, {v: 5}, {v: 9}}
	got := insertSorted(cons, varVal{v: 7})
	for i := 1; i < len(got); i++ {
		if got[i-1].v >= got[i].v {
			t.Fatalf("unsorted: %v", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	head := insertSorted(cons, varVal{v: 0})
	if head[0].v != 0 {
		t.Fatalf("head insert failed: %v", head)
	}
	tail := insertSorted(cons, varVal{v: 11})
	if tail[3].v != 11 {
		t.Fatalf("tail insert failed: %v", tail)
	}
}

func TestFamilyScoreImprovesWithTrueParent(t *testing.T) {
	// Generate data where v1 strongly depends on v0; the family score of
	// v1 with parent v0 must beat the empty family.
	r := rng.New(8)
	records := make([]uint64, 600)
	for i := range records {
		var rec uint64
		if r.Float64() < 0.5 {
			rec |= 1
		}
		// v1 copies v0 with 90% probability.
		if (rec&1 == 1) == (r.Float64() < 0.9) {
			rec |= 2
		}
		records[i] = rec
	}
	app := &App{cfg: Config{Vars: 2, Records: len(records)}, records: records}
	arena := mem.NewArena(1 << 20)
	d := mem.Direct{A: arena}
	subset := make([]int, len(records))
	for i := range subset {
		subset[i] = i
	}
	app.adRoot = buildADTree(d, records, subset, 0, 2)
	base := app.familyScore(d, 1, nil)
	withParent := app.familyScore(d, 1, []int{0})
	if withParent <= base {
		t.Fatalf("true parent did not improve score: %v <= %v", withParent, base)
	}
}
