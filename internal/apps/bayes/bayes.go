// Package bayes implements STAMP's bayes benchmark: learning the structure
// of a Bayesian network from observed data with a hill-climbing search over
// edge insertions, using an adtree for efficient sufficient statistics.
// Each learning step — scoring every candidate parent against the current
// network, checking acyclicity, and inserting the chosen dependency — is one
// transaction, so transactions are very long with large read sets, nearly
// all execution time is transactional, and contention is high because the
// dependency subgraphs change constantly.
package bayes

import (
	"fmt"
	"math"

	"github.com/stamp-go/stamp/internal/container"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// Atomic-block call sites, registered once for per-block statistics
// attribution (tm.Stats.Blocks) and adaptive protocol selection. The
// learn-edge block is a long read-mostly scan (it scores every candidate
// parent before deciding whether to insert one edge), so it carries the
// read-only mark: on stm-mv the scan runs on the zero-abort snapshot path,
// and the minority of attempts that insert fall through to the write-path
// commit.
var (
	blkPopTask  = tm.NewBlock("bayes/pop-task")
	blkLearn    = tm.NewROBlock("bayes/learn-edge")
	blkPushTask = tm.NewBlock("bayes/push-task")
)

// Config mirrors the Table IV arguments: -v (variables), -r (records),
// -n/-p (parent structure of the generating network), -i (edge insert
// penalty), -e (max edges learned per variable).
type Config struct {
	Vars          int // -v (max 48)
	Records       int // -r
	NumParent     int // -n: average parents per variable in the source net
	PercentParent int // -p: parent candidate pool percent
	InsertPenalty int // -i
	MaxEdgeLearn  int // -e
	Seed          uint64
}

// maxLearnParents caps the learned in-degree, like the original.
const maxLearnParents = 4

// App is one bayes instance.
type App struct {
	cfg     Config
	records []uint64 // one bitmask per record
	trueNet [][]int  // generating parents per var (for reference only)

	// Arena layout.
	adRoot  mem.Addr
	parents []container.List // learned parent list per variable
	edges   mem.Addr         // per-var learned edge counter
	tasks   container.Queue  // variable work queue

	ran bool
}

// New generates a random ground-truth network and samples records from it.
func New(cfg Config) *App {
	if cfg.Vars < 2 {
		cfg.Vars = 2
	}
	if cfg.Vars > 48 {
		cfg.Vars = 48
	}
	if cfg.Records < leafCutoff {
		cfg.Records = leafCutoff
	}
	if cfg.MaxEdgeLearn < 1 {
		cfg.MaxEdgeLearn = 1
	}
	a := &App{cfg: cfg}
	r := rng.New(cfg.Seed ^ 0x626179)

	// Ground truth: variables in topological order 0..v-1; each picks
	// NumParent parents on average from the PercentParent% of preceding
	// variables closest to it.
	a.trueNet = make([][]int, cfg.Vars)
	for v := 1; v < cfg.Vars; v++ {
		pool := v * cfg.PercentParent / 100
		if pool < 1 {
			pool = 1
		}
		for p := 0; p < cfg.NumParent; p++ {
			cand := v - 1 - r.Intn(pool)
			if cand < 0 {
				continue
			}
			dup := false
			for _, e := range a.trueNet[v] {
				if e == cand {
					dup = true
				}
			}
			if !dup {
				a.trueNet[v] = append(a.trueNet[v], cand)
			}
		}
	}
	// Conditional probability tables: each variable's chance of being 1
	// given the parity of its parents (a strong, learnable dependency).
	bias := make([]float64, cfg.Vars)
	for v := range bias {
		bias[v] = 0.1 + 0.8*r.Float64()
	}
	a.records = make([]uint64, cfg.Records)
	for i := range a.records {
		var rec uint64
		for v := 0; v < cfg.Vars; v++ {
			parity := uint64(0)
			for _, p := range a.trueNet[v] {
				parity ^= rec >> uint(p) & 1
			}
			prob := bias[v]
			if parity == 1 {
				prob = 1 - prob
			}
			if r.Float64() < prob {
				rec |= 1 << uint(v)
			}
		}
		a.records[i] = rec
	}
	return a
}

// Name implements apps.App.
func (a *App) Name() string { return "bayes" }

// ArenaWords implements apps.App: adtree dominates; size it empirically
// generous (MCV trees are near-linear in records × vars).
func (a *App) ArenaWords() int {
	ad := a.cfg.Records * a.cfg.Vars * 8
	net := a.cfg.Vars * (2 + maxLearnParents*4)
	return ad + net + a.cfg.Vars*8 + 4096
}

// Setup implements apps.App: builds the adtree and the empty network.
func (a *App) Setup(ar *mem.Arena) {
	d := mem.Direct{A: ar}
	subset := make([]int, len(a.records))
	for i := range subset {
		subset[i] = i
	}
	a.adRoot = buildADTree(d, a.records, subset, 0, a.cfg.Vars)
	a.parents = make([]container.List, a.cfg.Vars)
	for v := range a.parents {
		a.parents[v] = container.NewList(d)
	}
	a.edges = ar.Alloc(a.cfg.Vars)
	a.tasks = container.NewQueue(d, a.cfg.Vars+1)
	for v := 0; v < a.cfg.Vars; v++ {
		a.tasks.Push(d, uint64(v))
	}
	a.ran = false
}

// familyScore computes the log-likelihood of variable y given the parent
// set pa (sorted), via adtree counts read through m.
func (a *App) familyScore(m tm.Mem, y int, pa []int) float64 {
	nAssign := 1 << len(pa)
	score := 0.0
	cons := make([]varVal, 0, len(pa)+1)
	for mask := 0; mask < nAssign; mask++ {
		cons = cons[:0]
		for i, p := range pa {
			cons = append(cons, varVal{v: p, val: uint64(mask >> i & 1)})
		}
		nPa := adCountQuery(m, a.records, a.adRoot, cons, 0)
		if nPa == 0 {
			continue
		}
		consY := insertSorted(cons, varVal{v: y, val: 1})
		n1 := adCountQuery(m, a.records, a.adRoot, consY, 0)
		n0 := nPa - n1
		if n1 > 0 {
			score += float64(n1) * math.Log(float64(n1)/float64(nPa))
		}
		if n0 > 0 {
			score += float64(n0) * math.Log(float64(n0)/float64(nPa))
		}
	}
	return score
}

// insertSorted returns a fresh constraint slice with vv added in var order.
func insertSorted(cons []varVal, vv varVal) []varVal {
	out := make([]varVal, 0, len(cons)+1)
	added := false
	for _, c := range cons {
		if !added && vv.v < c.v {
			out = append(out, vv)
			added = true
		}
		out = append(out, c)
	}
	if !added {
		out = append(out, vv)
	}
	return out
}

// penalty is the structure cost of adding one parent to a family that
// already has k parents (BIC-flavoured, scaled by the -i argument).
func (a *App) penalty(k int) float64 {
	return float64(a.cfg.InsertPenalty) * 0.5 * math.Log2(float64(len(a.records))) * float64(int(1)<<uint(k))
}

// Run implements apps.App: threads drain the task queue; each task is one
// long transaction that scores all candidate parents for a variable and
// inserts the best dependency.
func (a *App) Run(sys tm.System, team *thread.Team) {
	v := a.cfg.Vars
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		htm := isHTM(sys.Name())
		var adMem tm.Mem
		for {
			var task uint64
			have := false
			th.AtomicAt(blkPopTask, func(tx tm.Tx) {
				task, have = a.tasks.Pop(tx)
			})
			if !have {
				return
			}
			y := int(task)
			inserted := false
			th.AtomicAt(blkLearn, func(tx tm.Tx) {
				inserted = false
				// adtree reads: implicitly tracked on HTMs, uninstrumented
				// on software systems (the original code has no barriers on
				// adtree accesses).
				if htm {
					adMem = tx
				} else {
					adMem = peekMem{tx}
				}
				// Read the current family transactionally.
				var pa []int
				a.parents[y].Each(tx, func(k, _ uint64) bool {
					pa = append(pa, int(k))
					return true
				})
				if len(pa) >= maxLearnParents {
					return
				}
				if tx.Load(a.edges+mem.Addr(y)) >= uint64(a.cfg.MaxEdgeLearn) {
					return
				}
				base := a.familyScore(adMem, y, pa)
				bestGain := 0.0
				bestX := -1
				for x := 0; x < v; x++ {
					if x == y || containsInt(pa, x) {
						continue
					}
					gain := a.familyScore(adMem, y, insertSortedInt(pa, x)) - base - a.penalty(len(pa))
					if gain > bestGain {
						bestGain, bestX = gain, x
					}
				}
				if bestX < 0 {
					return
				}
				// Acyclicity: adding bestX as parent of y is illegal if y is
				// an ancestor of bestX (transactional walk of parent lists).
				if a.reachesAncestor(tx, bestX, y) {
					return
				}
				a.parents[y].Insert(tx, uint64(bestX), 1)
				tx.Store(a.edges+mem.Addr(y), tx.Load(a.edges+mem.Addr(y))+1)
				inserted = true
			})
			if inserted {
				// More edges may be learnable for this variable.
				th.AtomicAt(blkPushTask, func(tx tm.Tx) {
					a.tasks.Push(tx, uint64(y))
				})
			}
		}
	})
	a.ran = true
}

// reachesAncestor reports whether target is an ancestor of start following
// parent links (transactional reads of the shared dependency graph).
func (a *App) reachesAncestor(tx tm.Tx, start, target int) bool {
	seen := make(map[int]bool)
	stack := []int{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == target {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		a.parents[n].Each(tx, func(k, _ uint64) bool {
			stack = append(stack, int(k))
			return true
		})
	}
	return false
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func insertSortedInt(s []int, x int) []int {
	out := make([]int, 0, len(s)+1)
	added := false
	for _, v := range s {
		if !added && x < v {
			out = append(out, x)
			added = true
		}
		out = append(out, v)
	}
	if !added {
		out = append(out, x)
	}
	return out
}

func isHTM(name string) bool {
	return len(name) >= 3 && name[:3] == "htm"
}

// peekMem reads through Tx.Peek (uninstrumented) while writes/allocs pass
// through; the adtree is immutable, so it is never written anyway.
type peekMem struct{ tx tm.Tx }

func (p peekMem) Load(a mem.Addr) uint64     { return p.tx.Peek(a) }
func (p peekMem) Store(a mem.Addr, v uint64) { p.tx.Store(a, v) }
func (p peekMem) Alloc(n int) mem.Addr       { return p.tx.Alloc(n) }
func (p peekMem) Free(a mem.Addr, n int)     { p.tx.Free(a, n) }

// Verify implements apps.App: the learned network must be acyclic, respect
// the in-degree caps, and every learned family must beat the empty family's
// score by more than the structure penalty it paid.
func (a *App) Verify(ar *mem.Arena) error {
	if !a.ran {
		return fmt.Errorf("bayes: Run was never executed")
	}
	d := mem.Direct{A: ar}
	v := a.cfg.Vars
	adj := make([][]int, v) // parent -> children
	indeg := make([]int, v)
	totalEdges := 0
	for y := 0; y < v; y++ {
		var pa []int
		a.parents[y].Each(d, func(k, _ uint64) bool {
			pa = append(pa, int(k))
			return true
		})
		if len(pa) > maxLearnParents {
			return fmt.Errorf("bayes: var %d has %d parents (cap %d)", y, len(pa), maxLearnParents)
		}
		totalEdges += len(pa)
		for _, p := range pa {
			adj[p] = append(adj[p], y)
			indeg[y]++
		}
		// Score check: the family must be worth its penalties.
		if len(pa) > 0 {
			gain := a.familyScore(d, y, pa) - a.familyScore(d, y, nil)
			cost := 0.0
			for k := 0; k < len(pa); k++ {
				cost += a.penalty(k)
			}
			if gain <= 0 {
				return fmt.Errorf("bayes: var %d's learned family does not improve the score (gain %.3f, cost %.3f)", y, gain, cost)
			}
		}
	}
	// Kahn's algorithm: the learned graph must be a DAG.
	queue := []int{}
	for y := 0; y < v; y++ {
		if indeg[y] == 0 {
			queue = append(queue, y)
		}
	}
	visited := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		visited++
		for _, c := range adj[n] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if visited != v {
		return fmt.Errorf("bayes: learned network has a cycle (%d of %d vars sorted)", visited, v)
	}
	if totalEdges == 0 {
		return fmt.Errorf("bayes: no dependencies learned")
	}
	return nil
}

// LearnedEdges counts the learned dependencies (for tests).
func (a *App) LearnedEdges(ar *mem.Arena) int {
	d := mem.Direct{A: ar}
	n := 0
	for y := 0; y < a.cfg.Vars; y++ {
		n += a.parents[y].Len(d)
	}
	return n
}
