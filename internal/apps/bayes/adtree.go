package bayes

import (
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/tm"
)

// adtree is the cached-sufficient-statistics structure of Moore & Lee,
// with the most-common-value (MCV) optimization: at each node, for every
// remaining variable, only the subtree for the *less* common value is
// materialized; counts for the common value are derived by subtraction.
// Small nodes fall back to leaf lists of record indices.
//
// The tree lives in the arena and is immutable after Setup. Queries walk it
// through a tm.Mem: on the simulated HTMs every access is implicitly
// tracked (producing the paper's large bayes read sets and overflows), while
// the STM/hybrid learner reads it uninstrumented, matching the original
// code where adtree accesses carry no read barriers.
//
// Node layout:  [count, startVar, leafLen, ptr]
//
//	leafLen > 0: ptr addresses leafLen record-index words
//	leafLen = 0: ptr addresses (nVars-startVar) vary entries of 2 words
//	             [mcv, childAddr]; childAddr = 0 when the minority side is
//	             empty.
const (
	adCount    = 0
	adStartVar = 1
	adLeafLen  = 2
	adPtr      = 3
	adWords    = 4

	leafCutoff = 16
)

// buildADTree constructs the tree for the given record subset (indices into
// records) considering variables [startVar, nVars).
func buildADTree(d mem.Direct, records []uint64, subset []int, startVar, nVars int) mem.Addr {
	node := d.Alloc(adWords)
	d.Store(node+adCount, uint64(len(subset)))
	d.Store(node+adStartVar, uint64(startVar))
	if len(subset) < leafCutoff || startVar >= nVars {
		d.Store(node+adLeafLen, uint64(len(subset)))
		leaf := d.Alloc(maxInt(len(subset), 1))
		for i, rec := range subset {
			d.Store(leaf+mem.Addr(i), uint64(rec))
		}
		d.Store(node+adPtr, uint64(leaf))
		return node
	}
	d.Store(node+adLeafLen, 0)
	vary := d.Alloc(2 * (nVars - startVar))
	d.Store(node+adPtr, uint64(vary))
	for j := startVar; j < nVars; j++ {
		var zero, one []int
		for _, rec := range subset {
			if records[rec]>>uint(j)&1 == 1 {
				one = append(one, rec)
			} else {
				zero = append(zero, rec)
			}
		}
		mcv, minority := uint64(0), one
		if len(one) > len(zero) {
			mcv, minority = 1, zero
		}
		entry := vary + mem.Addr(2*(j-startVar))
		d.Store(entry, mcv)
		if len(minority) == 0 {
			d.Store(entry+1, 0)
		} else {
			child := buildADTree(d, records, minority, j+1, nVars)
			d.Store(entry+1, uint64(child))
		}
	}
	return node
}

// varVal is one query constraint: variable v must equal val.
type varVal struct {
	v   int
	val uint64
}

// adCountQuery returns the number of records matching cons[qi:] under node.
// cons must be sorted by variable and all constrained variables must be
// >= the node's startVar.
func adCountQuery(m tm.Mem, records []uint64, node mem.Addr, cons []varVal, qi int) int {
	if node == mem.Nil {
		return 0
	}
	if qi >= len(cons) {
		return int(m.Load(node + adCount))
	}
	leafLen := m.Load(node + adLeafLen)
	count := m.Load(node + adCount)
	if leafLen > 0 || count == 0 {
		// Leaf: scan the record list.
		leaf := mem.Addr(m.Load(node + adPtr))
		n := 0
	scan:
		for i := uint64(0); i < leafLen; i++ {
			rec := records[m.Load(leaf+mem.Addr(i))]
			for _, c := range cons[qi:] {
				if rec>>uint(c.v)&1 != c.val {
					continue scan
				}
			}
			n++
		}
		return n
	}
	startVar := int(m.Load(node + adStartVar))
	j := cons[qi].v
	entry := mem.Addr(m.Load(node+adPtr)) + mem.Addr(2*(j-startVar))
	mcv := m.Load(entry)
	child := mem.Addr(m.Load(entry + 1))
	if cons[qi].val != mcv {
		if child == mem.Nil {
			return 0
		}
		return adCountQuery(m, records, child, cons, qi+1)
	}
	// MCV side: count(node, rest) - count(minority child, rest).
	total := adCountQuery(m, records, node, cons, qi+1)
	if child == mem.Nil {
		return total
	}
	return total - adCountQuery(m, records, child, cons, qi+1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
