package apps_test

import (
	"testing"

	"github.com/stamp-go/stamp/internal/apps"
	"github.com/stamp-go/stamp/internal/apps/bayes"
	"github.com/stamp-go/stamp/internal/apps/intruder"
	"github.com/stamp-go/stamp/internal/apps/labyrinth"
	"github.com/stamp-go/stamp/internal/apps/yada"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
)

func TestIntruderAllSystems(t *testing.T) {
	allSystems(t, func() apps.App {
		return intruder.New(intruder.Config{
			AttackPercent: 10, MaxPackets: 4, Flows: 512, Seed: 7,
		})
	}, 4)
}

func TestIntruderNoAttacks(t *testing.T) {
	app := intruder.New(intruder.Config{AttackPercent: 0, MaxPackets: 3, Flows: 128, Seed: 8})
	runOn(t, app, "stm-lazy", 2)
}

func TestIntruderAllAttacks(t *testing.T) {
	app := intruder.New(intruder.Config{AttackPercent: 100, MaxPackets: 2, Flows: 64, Seed: 9})
	runOn(t, app, "hybrid-lazy", 2)
}

func TestLabyrinthAllSystems(t *testing.T) {
	allSystems(t, func() apps.App {
		return labyrinth.New(labyrinth.Config{X: 16, Y: 16, Z: 3, Paths: 24, Seed: 10})
	}, 4)
}

func TestLabyrinthRoutesMost(t *testing.T) {
	app := labyrinth.New(labyrinth.Config{X: 32, Y: 32, Z: 3, Paths: 32, Seed: 11})
	runOn(t, app, "stm-lazy", 4)
	if app.Routed() < 24 {
		t.Fatalf("only %d/32 paths routed on a roomy maze", app.Routed())
	}
}

func TestBayesAllSystems(t *testing.T) {
	allSystems(t, func() apps.App {
		return bayes.New(bayes.Config{
			Vars: 12, Records: 512, NumParent: 2, PercentParent: 20,
			InsertPenalty: 2, MaxEdgeLearn: 2, Seed: 12,
		})
	}, 4)
}

func TestBayesLearnsSomething(t *testing.T) {
	app := bayes.New(bayes.Config{
		Vars: 16, Records: 1024, NumParent: 2, PercentParent: 20,
		InsertPenalty: 2, MaxEdgeLearn: 2, Seed: 13,
	})
	arena := mem.NewArena(app.ArenaWords())
	app.Setup(arena)
	sysRun(t, app, arena, "stm-eager", 4)
	if app.LearnedEdges(arena) == 0 {
		t.Fatal("no edges learned")
	}
	if err := app.Verify(arena); err != nil {
		t.Fatal(err)
	}
}

func TestYadaAllSystems(t *testing.T) {
	allSystems(t, func() apps.App {
		return yada.New(yada.Config{MinAngle: 20, Elements: 256, Seed: 14})
	}, 4)
}

func TestYadaRefinesAndGrows(t *testing.T) {
	app := yada.New(yada.Config{MinAngle: 20, Elements: 512, Seed: 15})
	arena := mem.NewArena(app.ArenaWords())
	app.Setup(arena)
	sysRun(t, app, arena, "stm-lazy", 4)
	if err := app.Verify(arena); err != nil {
		t.Fatal(err)
	}
	if app.FinalPoints(arena) <= app.InitialElements()/2 {
		t.Fatalf("mesh did not grow: %d points for %d initial elements",
			app.FinalPoints(arena), app.InitialElements())
	}
}

func TestYadaTightAngleStillConforming(t *testing.T) {
	// A tighter bound forces far more refinement; conformity must hold even
	// if the growth cap fires.
	app := yada.New(yada.Config{MinAngle: 26, Elements: 128, Seed: 16, GrowthCap: 8})
	arena := mem.NewArena(app.ArenaWords())
	app.Setup(arena)
	sysRun(t, app, arena, "stm-eager", 4)
	if err := app.Verify(arena); err != nil {
		t.Fatal(err)
	}
}

// sysRun is runOn without the fresh-arena staging (caller manages arena).
func sysRun(t *testing.T, app apps.App, arena *mem.Arena, sysName string, threads int) {
	t.Helper()
	sys := mustSys(t, sysName, arena, threads)
	app.Run(sys, thread.NewTeam(threads))
}
