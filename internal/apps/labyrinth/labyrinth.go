// Package labyrinth implements STAMP's labyrinth benchmark: a variant of
// Lee's routing algorithm (after LEE-TM-p-ws). Threads take (start, end)
// point pairs and connect them with paths of adjacent grid cells in a
// three-dimensional maze. The whole route — privatized grid copy, wavefront
// expansion, traceback, revalidation, and insertion — is one transaction, so
// transactions are very long with very large read/write sets, essentially
// all execution time is transactional, and contention is high.
//
// As in the paper, the grid privatization reads are uninstrumented (Peek)
// on the software and hybrid systems, while on the HTMs every access is
// implicitly tracked, so the copy loop issues real read barriers and then
// early-releases them; each grid point is padded to a full 32-byte cache
// line so early release is sound at line granularity.
package labyrinth

import (
	"fmt"
	"strings"

	"github.com/stamp-go/stamp/internal/container"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// Atomic-block call sites, registered once for per-block statistics
// attribution (tm.Stats.Blocks) and adaptive protocol selection.
var (
	blkPopJob = tm.NewBlock("labyrinth/pop-job")
	blkRoute  = tm.NewBlock("labyrinth/route-path")
)

// Config mirrors the Table IV arguments: the maze dimensions x, y, z and the
// number of paths n.
type Config struct {
	X, Y, Z int
	Paths   int
	Seed    uint64
}

// Cell values in the shared grid.
const (
	cellEmpty = 0
	// Path cells store pathID + cellPathBase.
	cellPathBase = 2
)

// App is one labyrinth instance.
type App struct {
	cfg   Config
	cells int
	work  []uint64 // packed (src, dst) pairs

	gridBase mem.Addr
	workQ    container.Queue

	// Per-thread routing transcripts, merged by Verify.
	routed [][]routedPath
	failed []int
}

type routedPath struct {
	id   int
	path []int32 // cell indices, src..dst
}

// New generates n random distinct (start, end) pairs in an empty maze, like
// the original random-x*-y*-z*-n* inputs.
func New(cfg Config) *App {
	if cfg.X < 2 {
		cfg.X = 2
	}
	if cfg.Y < 2 {
		cfg.Y = 2
	}
	if cfg.Z < 1 {
		cfg.Z = 1
	}
	a := &App{cfg: cfg, cells: cfg.X * cfg.Y * cfg.Z}
	r := rng.New(cfg.Seed ^ 0x6c616279)
	used := map[int]bool{}
	pick := func() int {
		for {
			c := r.Intn(a.cells)
			if !used[c] {
				used[c] = true
				return c
			}
		}
	}
	for p := 0; p < cfg.Paths && len(used)+2 <= a.cells; p++ {
		src, dst := pick(), pick()
		a.work = append(a.work, uint64(src)<<32|uint64(dst))
	}
	return a
}

// Name implements apps.App.
func (a *App) Name() string { return "labyrinth" }

// ArenaWords implements apps.App: one padded line per grid point plus the
// work queue.
func (a *App) ArenaWords() int {
	return a.cells*mem.WordsPerLine + 2*len(a.work) + 64
}

// Setup implements apps.App.
func (a *App) Setup(ar *mem.Arena) {
	a.gridBase = ar.AllocLines(a.cells * mem.WordsPerLine)
	a.workQ = container.NewQueue(mem.Direct{A: ar}, len(a.work)+1)
	d := mem.Direct{A: ar}
	for _, w := range a.work {
		a.workQ.Push(d, w)
	}
	a.routed = nil
	a.failed = nil
}

// cellAddr returns the padded arena address of cell c.
func (a *App) cellAddr(c int) mem.Addr {
	return a.gridBase + mem.Addr(c*mem.WordsPerLine)
}

// neighbors appends the orthogonal neighbours of cell c to buf.
func (a *App) neighbors(c int, buf []int32) []int32 {
	x := c % a.cfg.X
	y := (c / a.cfg.X) % a.cfg.Y
	z := c / (a.cfg.X * a.cfg.Y)
	if x > 0 {
		buf = append(buf, int32(c-1))
	}
	if x < a.cfg.X-1 {
		buf = append(buf, int32(c+1))
	}
	if y > 0 {
		buf = append(buf, int32(c-a.cfg.X))
	}
	if y < a.cfg.Y-1 {
		buf = append(buf, int32(c+a.cfg.X))
	}
	if z > 0 {
		buf = append(buf, int32(c-a.cfg.X*a.cfg.Y))
	}
	if z < a.cfg.Z-1 {
		buf = append(buf, int32(c+a.cfg.X*a.cfg.Y))
	}
	return buf
}

// Run implements apps.App.
func (a *App) Run(sys tm.System, team *thread.Team) {
	a.routed = make([][]routedPath, team.N())
	a.failed = make([]int, team.N())
	// HTMs track all accesses implicitly: privatization must read through
	// barriers and early-release; STMs and hybrids read uninstrumented.
	htm := strings.HasPrefix(sys.Name(), "htm")

	team.Run(func(tid int) {
		th := sys.Thread(tid)
		private := make([]int32, a.cells) // privatized grid (costs)
		var frontier, next, nbuf []int32
		for {
			var job uint64
			have := false
			th.AtomicAt(blkPopJob, func(tx tm.Tx) {
				job, have = a.workQ.Pop(tx)
			})
			if !have {
				return
			}
			src := int(job >> 32)
			dst := int(job & 0xffffffff)
			pathID := -1
			var path []int32

			th.AtomicAt(blkRoute, func(tx tm.Tx) {
				path = path[:0]
				// Privatize the grid ("a per-thread copy of the grid is
				// created and used for the route calculation").
				for c := 0; c < a.cells; c++ {
					addr := a.cellAddr(c)
					var v uint64
					if htm {
						v = tx.Load(addr)
						tx.EarlyRelease(addr)
					} else {
						v = tx.Peek(addr)
					}
					if v == cellEmpty {
						private[c] = 0
					} else {
						private[c] = -1 // occupied
					}
				}
				if private[src] != 0 || private[dst] != 0 {
					return // an endpoint was swallowed by another path: unroutable
				}
				// Lee wavefront expansion on the private copy.
				private[src] = 1
				frontier = append(frontier[:0], int32(src))
				found := false
				for len(frontier) > 0 && !found {
					next = next[:0]
					for _, c := range frontier {
						cost := private[c]
						nbuf = a.neighbors(int(c), nbuf[:0])
						for _, nb := range nbuf {
							if private[nb] != 0 {
								continue
							}
							private[nb] = cost + 1
							if int(nb) == dst {
								found = true
								break
							}
							next = append(next, nb)
						}
						if found {
							break
						}
					}
					frontier, next = next, frontier
				}
				if !found {
					return // no route in the current maze state
				}
				// Traceback from dst to src along decreasing cost.
				path = append(path, int32(dst))
				cur := int32(dst)
				for cur != int32(src) {
					cost := private[cur]
					nbuf = a.neighbors(int(cur), nbuf[:0])
					stepped := false
					for _, nb := range nbuf {
						if private[nb] == cost-1 && private[nb] > 0 {
							path = append(path, nb)
							cur = nb
							stepped = true
							break
						}
					}
					if !stepped {
						tx.Restart() // privatized copy went stale mid-trace
					}
				}
				// Revalidate and insert: re-read every path point
				// transactionally; conflict or occupancy restarts with a
				// fresh copy, exactly as the paper describes.
				for _, c := range path {
					if tx.Load(a.cellAddr(int(c))) != cellEmpty {
						tx.Restart()
					}
				}
				pathID = int(job % (1 << 31)) // unique per job
				for _, c := range path {
					tx.Store(a.cellAddr(int(c)), uint64(cellPathBase+pathID))
				}
			})

			if pathID >= 0 {
				cp := append([]int32(nil), path...)
				// reverse: traceback built dst..src
				for i, j := 0, len(cp)-1; i < j; i, j = i+1, j-1 {
					cp[i], cp[j] = cp[j], cp[i]
				}
				a.routed[tid] = append(a.routed[tid], routedPath{id: pathID, path: cp})
			} else {
				a.failed[tid]++
			}
		}
	})
}

// Verify implements apps.App: routed + failed == jobs; every routed path is
// connected, starts and ends at its endpoints, and owns its grid cells
// exclusively.
func (a *App) Verify(ar *mem.Arena) error {
	d := mem.Direct{A: ar}
	total := 0
	owner := map[int32]int{}
	for tid, paths := range a.routed {
		total += len(paths) + a.failed[tid]
		for _, rp := range paths {
			if len(rp.path) < 2 {
				return fmt.Errorf("labyrinth: path %d too short", rp.id)
			}
			for i, c := range rp.path {
				if got := d.Load(a.cellAddr(int(c))); got != uint64(cellPathBase+rp.id) {
					return fmt.Errorf("labyrinth: path %d cell %d holds %d", rp.id, c, got)
				}
				if prev, taken := owner[c]; taken {
					return fmt.Errorf("labyrinth: cell %d claimed by paths %d and %d", c, prev, rp.id)
				}
				owner[c] = rp.id
				if i > 0 && !a.adjacent(int(rp.path[i-1]), int(c)) {
					return fmt.Errorf("labyrinth: path %d not connected at step %d", rp.id, i)
				}
			}
		}
	}
	if total != len(a.work) {
		return fmt.Errorf("labyrinth: %d outcomes for %d jobs", total, len(a.work))
	}
	// Every non-empty grid cell must belong to some verified path.
	for c := 0; c < a.cells; c++ {
		v := d.Load(a.cellAddr(c))
		if v == cellEmpty {
			continue
		}
		if _, ok := owner[int32(c)]; !ok {
			return fmt.Errorf("labyrinth: orphan cell %d = %d", c, v)
		}
	}
	return nil
}

func (a *App) adjacent(c1, c2 int) bool {
	x1, y1, z1 := c1%a.cfg.X, (c1/a.cfg.X)%a.cfg.Y, c1/(a.cfg.X*a.cfg.Y)
	x2, y2, z2 := c2%a.cfg.X, (c2/a.cfg.X)%a.cfg.Y, c2/(a.cfg.X*a.cfg.Y)
	dx, dy, dz := abs(x1-x2), abs(y1-y2), abs(z1-z2)
	return dx+dy+dz == 1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Routed returns the number of successfully routed paths (for tests).
func (a *App) Routed() int {
	n := 0
	for _, p := range a.routed {
		n += len(p)
	}
	return n
}
