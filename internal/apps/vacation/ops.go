package vacation

import (
	"fmt"

	"github.com/stamp-go/stamp/internal/container"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/tm"
)

// NumTypes is the number of reservation tables (car, flight, room).
const NumTypes = numTypes

// Item names one reservation record a session touches: (table, id).
type Item struct {
	Typ int // reservation table: 0 car, 1 flight, 2 room
	ID  int
}

// Update is one inventory mutation of an update-tables session.
type Update struct {
	Typ   int
	ID    int
	Add   bool // grow (add seats / create record) vs retire
	Num   int
	Price int
}

// Store is the vacation database proper — the four red-black trees of
// manager_initialize — factored out of the batch App so the same operations
// can be served one request at a time by a long-lived server harness. Every
// method body is one transaction's worth of work: callers run it inside
// Thread.AtomicAt (or with mem.Direct for setup and offline checking).
type Store struct {
	Tables    [NumTypes]container.RBTree // id -> reservation record addr
	Customers container.RBTree           // id -> customer record addr (reservation list header)
}

// NewStore populates the four tables with records initial rows each, using
// the same RNG stream as the batch benchmark's Setup, so a served store and
// a batch run over equal seeds start from identical databases.
func NewStore(m tm.Mem, records int, seed uint64) Store {
	if records < 1 {
		records = 1
	}
	var st Store
	r := rng.New(seed ^ 0x696e6974)
	for t := 0; t < NumTypes; t++ {
		st.Tables[t] = container.NewRBTree(m)
		for id := 1; id <= records; id++ {
			rec := newReservation(m, id, r.Intn(300)+100, r.Intn(450)+50)
			st.Tables[t].Insert(m, uint64(id), uint64(rec))
		}
	}
	st.Customers = container.NewRBTree(m)
	for id := 1; id <= records; id++ {
		st.Customers.Insert(m, uint64(id), uint64(newCustomer(m)))
	}
	return st
}

// StoreWords returns the arena words NewStore allocates for records rows,
// plus per-operation slack is the caller's business (see App.ArenaWords for
// the batch sizing rule).
func StoreWords(records int) int {
	if records < 1 {
		records = 1
	}
	perRecord := resWords + 8 /* rb node */
	perCustomer := 8 + 4      /* rb node + list header */
	return NumTypes*records*perRecord + records*perCustomer
}

// MakeReservation queries the priced availability of items and books the
// highest-priced available item of each type for customer cust, inserting
// the customer if needed — the original's CLIENT_DO_MAKE_RESERVATION as one
// transaction body.
func (st *Store) MakeReservation(tx tm.Mem, cust int, items []Item) {
	var bestID [NumTypes]int
	var bestPrice [NumTypes]int64
	for t := range bestPrice {
		bestPrice[t] = -1
		bestID[t] = -1
	}
	for _, it := range items {
		recA, ok := st.Tables[it.Typ].Get(tx, uint64(it.ID))
		if !ok {
			continue
		}
		rec := mem.Addr(recA)
		if tx.Load(rec+resFree) > 0 {
			price := int64(tx.Load(rec + resPrice))
			if price > bestPrice[it.Typ] {
				bestPrice[it.Typ] = price
				bestID[it.Typ] = it.ID
			}
		}
	}
	custKey := uint64(cust)
	custA, ok := st.Customers.Get(tx, custKey)
	if !ok {
		custA = uint64(newCustomer(tx))
		st.Customers.Insert(tx, custKey, custA)
	}
	custList := container.List{H: mem.Addr(custA)}
	for t := 0; t < NumTypes; t++ {
		if bestID[t] < 0 {
			continue
		}
		recA, ok := st.Tables[t].Get(tx, uint64(bestID[t]))
		if !ok {
			continue
		}
		rec := mem.Addr(recA)
		free := tx.Load(rec + resFree)
		if free == 0 {
			continue
		}
		if !custList.Insert(tx, itemKey(t, bestID[t]), tx.Load(rec+resPrice)) {
			continue // customer already holds this exact item
		}
		tx.Store(rec+resFree, free-1)
		tx.Store(rec+resUsed, tx.Load(rec+resUsed)+1)
	}
}

// DeleteCustomer releases all of cust's reservations and removes the
// customer — one transaction body. Unknown customers are a no-op.
func (st *Store) DeleteCustomer(tx tm.Mem, cust int) {
	custA, ok := st.Customers.Get(tx, uint64(cust))
	if !ok {
		return
	}
	custList := container.List{H: mem.Addr(custA)}
	custList.Each(tx, func(k, v uint64) bool {
		typ := int(k >> 32)
		id := k & 0xffffffff
		if recA, ok := st.Tables[typ].Get(tx, id); ok {
			rec := mem.Addr(recA)
			tx.Store(rec+resFree, tx.Load(rec+resFree)+1)
			tx.Store(rec+resUsed, tx.Load(rec+resUsed)-1)
		}
		return true
	})
	st.Customers.Remove(tx, uint64(cust))
}

// UpdateTables grows or shrinks the inventory — the original's
// CLIENT_DO_UPDATE_TABLES as one transaction body.
func (st *Store) UpdateTables(tx tm.Mem, updates []Update) {
	for _, it := range updates {
		recA, ok := st.Tables[it.Typ].Get(tx, uint64(it.ID))
		if it.Add {
			if ok {
				rec := mem.Addr(recA)
				tx.Store(rec+resFree, tx.Load(rec+resFree)+uint64(it.Num))
				tx.Store(rec+resTotal, tx.Load(rec+resTotal)+uint64(it.Num))
				tx.Store(rec+resPrice, uint64(it.Price))
			} else {
				rec := newReservation(tx, it.ID, it.Num, it.Price)
				st.Tables[it.Typ].Insert(tx, uint64(it.ID), uint64(rec))
			}
			continue
		}
		if !ok {
			continue
		}
		rec := mem.Addr(recA)
		free := tx.Load(rec + resFree)
		if free < uint64(it.Num) {
			continue // cannot retire seats that are in use
		}
		tx.Store(rec+resFree, free-uint64(it.Num))
		tx.Store(rec+resTotal, tx.Load(rec+resTotal)-uint64(it.Num))
		if tx.Load(rec+resTotal) == 0 {
			st.Tables[it.Typ].Remove(tx, uint64(it.ID))
		}
	}
}

// QueryFree sums the free inventory of items and checks each record's
// used+free==total accounting as seen by this transaction. It is the
// read-only operation of the serving harness: free is the availability
// total, torn counts records whose accounting was observed mid-update —
// which a serializable snapshot must never see, so any nonzero torn is a
// consistency violation, not load-dependent noise.
func (st *Store) QueryFree(tx tm.Mem, items []Item) (free uint64, torn int) {
	for _, it := range items {
		recA, ok := st.Tables[it.Typ].Get(tx, uint64(it.ID))
		if !ok {
			continue
		}
		rec := mem.Addr(recA)
		f := tx.Load(rec + resFree)
		if tx.Load(rec+resUsed)+f != tx.Load(rec+resTotal) {
			torn++
		}
		free += f
	}
	return free, torn
}

// CompactInto deep-copies the live store reachable through src into a fresh
// arena through dst, returning the rebuilt Store. This is the serving mode's
// epoch-swap compactor: only live records, customers, and their reservation
// lists are copied, so the destination arena's high-water restarts at the
// live set — everything the bump allocator leaked to aborted attempts and
// everything the free lists could not recycle is left behind in the source
// arena. Quiescent use only (both sides are typically mem.Direct).
func (st *Store) CompactInto(src, dst tm.Mem) Store {
	var out Store
	for t := 0; t < NumTypes; t++ {
		out.Tables[t] = container.NewRBTree(dst)
		st.Tables[t].Each(src, func(id, recA uint64) bool {
			rec := mem.Addr(recA)
			nrec := dst.Alloc(resWords)
			for w := 0; w < resWords; w++ {
				dst.Store(nrec+mem.Addr(w), src.Load(rec+mem.Addr(w)))
			}
			out.Tables[t].Insert(dst, id, uint64(nrec))
			return true
		})
	}
	out.Customers = container.NewRBTree(dst)
	st.Customers.Each(src, func(id, custA uint64) bool {
		nl := container.NewList(dst)
		container.List{H: mem.Addr(custA)}.Each(src, func(k, v uint64) bool {
			nl.Insert(dst, k, v)
			return true
		})
		out.Customers.Insert(dst, id, uint64(nl.H))
		return true
	})
	return out
}

// Check verifies the store's conserved invariants quiescently (no
// concurrent transactions): per-record accounting (used + free == total)
// cross-checked against a global recount of all customer reservation lists.
// records > 0 additionally requires every table to be non-empty.
func (st *Store) Check(m tm.Mem, records int) error {
	booked := map[uint64]uint64{}
	st.Customers.Each(m, func(_, custA uint64) bool {
		l := container.List{H: mem.Addr(custA)}
		l.Each(m, func(k, _ uint64) bool {
			booked[k]++
			return true
		})
		return true
	})
	for t := 0; t < NumTypes; t++ {
		var err error
		seen := 0
		st.Tables[t].Each(m, func(id, recA uint64) bool {
			seen++
			rec := mem.Addr(recA)
			used := m.Load(rec + resUsed)
			free := m.Load(rec + resFree)
			total := m.Load(rec + resTotal)
			if used+free != total {
				err = fmt.Errorf("vacation: table %d id %d: used %d + free %d != total %d",
					t, id, used, free, total)
				return false
			}
			if got := booked[itemKey(t, int(id))]; got != used {
				err = fmt.Errorf("vacation: table %d id %d: used %d but %d customer bookings",
					t, id, used, got)
				return false
			}
			delete(booked, itemKey(t, int(id)))
			return true
		})
		if err != nil {
			return err
		}
		if seen == 0 && records > 0 {
			return fmt.Errorf("vacation: table %d is empty", t)
		}
	}
	// Any remaining booked entries reference deleted records: those bookings
	// must be zero-count (cannot happen: UpdateTables only deletes records
	// with total == 0, i.e. free == used == 0 given the invariant above).
	for k, n := range booked {
		if n != 0 {
			return fmt.Errorf("vacation: %d bookings reference missing record %#x", n, k)
		}
	}
	return nil
}
