// Package vacation implements STAMP's vacation benchmark: an online
// transaction processing system emulating a travel reservation service
// (the suite's analogue of SPECjbb2000). The database is a set of red-black
// trees — one table per reservation type (car, flight, room) plus a
// customer table — and every client session (reservation, cancellation, or
// table update) executes as one coarse-grain transaction. Transactions are
// of medium length with moderate read/write sets, most of the execution is
// transactional, and contention is tuned by the -n/-q/-u parameters.
package vacation

import (
	"github.com/stamp-go/stamp/internal/container"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// Atomic-block call sites, registered once for per-block statistics
// attribution (tm.Stats.Blocks) and adaptive protocol selection.
var (
	blkReserve = tm.NewBlock("vacation/make-reservation")
	blkDelete  = tm.NewBlock("vacation/delete-customer")
	blkUpdate  = tm.NewBlock("vacation/update-tables")
)

// Config mirrors the Table IV arguments.
type Config struct {
	QueriesPerTx int // -n: items examined per session
	QueryRange   int // -q: sessions span q% of the records
	PercentUser  int // -u: % of sessions that reserve/cancel (rest update tables)
	Records      int // -r: records per reservation table (and customers)
	Transactions int // -t: total sessions
	Seed         uint64
}

// Reservation record layout (arena): one per (table, id).
const (
	resID    = 0
	resUsed  = 1
	resFree  = 2
	resTotal = 3
	resPrice = 4
	resWords = 5
)

// Reservation types.
const (
	typeCar = iota
	typeFlight
	typeRoom
	numTypes
)

// App is one vacation instance.
type App struct {
	cfg Config

	store Store // the four tables (see ops.go for the operation bodies)

	// Pre-generated per-session scripts so every system executes the same
	// logical workload.
	sessions []session
}

type session struct {
	kind    int // 0 reserve, 1 delete customer, 2 update tables
	cust    int
	items   []Item   // reserve sessions
	updates []Update // update sessions
}

// New pre-generates the session scripts.
func New(cfg Config) *App {
	if cfg.QueriesPerTx < 1 {
		cfg.QueriesPerTx = 1
	}
	if cfg.Records < 1 {
		cfg.Records = 1
	}
	a := &App{cfg: cfg}
	r := rng.New(cfg.Seed ^ 0x766163)
	queryRange := cfg.Records * cfg.QueryRange / 100
	if queryRange < 1 {
		queryRange = 1
	}
	for s := 0; s < cfg.Transactions; s++ {
		action := r.Intn(100)
		var ses session
		switch {
		case action < cfg.PercentUser:
			ses.kind = 0
			ses.cust = r.Intn(queryRange) + 1
			n := cfg.QueriesPerTx
			for i := 0; i < n; i++ {
				ses.items = append(ses.items, Item{
					Typ: r.Intn(numTypes),
					ID:  r.Intn(queryRange) + 1,
				})
			}
		case action < cfg.PercentUser+(100-cfg.PercentUser)/2:
			ses.kind = 1
			ses.cust = r.Intn(queryRange) + 1
		default:
			ses.kind = 2
			for i := 0; i < cfg.QueriesPerTx; i++ {
				ses.updates = append(ses.updates, Update{
					Typ:   r.Intn(numTypes),
					ID:    r.Intn(queryRange) + 1,
					Add:   r.Intn(2) == 0,
					Num:   r.Intn(5) + 1,
					Price: r.Intn(450) + 50,
				})
			}
		}
		a.sessions = append(a.sessions, ses)
	}
	return a
}

// Name implements apps.App.
func (a *App) Name() string { return "vacation" }

// ArenaWords implements apps.App: trees, records, customer lists, and slack
// for session-created records plus abort-retry allocation churn (the bump
// allocator leaks aborted attempts' allocations, like STAMP's tmalloc).
func (a *App) ArenaWords() int {
	perRecord := resWords + 8 /* rb node */
	perCustomer := 8 + 4      /* rb node + list header */
	slack := a.cfg.Transactions * (a.cfg.QueriesPerTx + 2) * 40
	return numTypes*a.cfg.Records*perRecord + a.cfg.Records*perCustomer + slack + 1<<16
}

// Setup implements apps.App: populates the four tables, as in
// manager_initialize (see NewStore).
func (a *App) Setup(ar *mem.Arena) {
	a.store = NewStore(mem.Direct{A: ar}, a.cfg.Records, a.cfg.Seed)
}

func newReservation(m tm.Mem, id, total, price int) mem.Addr {
	rec := m.Alloc(resWords)
	m.Store(rec+resID, uint64(id))
	m.Store(rec+resUsed, 0)
	m.Store(rec+resFree, uint64(total))
	m.Store(rec+resTotal, uint64(total))
	m.Store(rec+resPrice, uint64(price))
	return rec
}

// newCustomer allocates a customer record: a list of (type<<32|id) ->
// booked price.
func newCustomer(m tm.Mem) mem.Addr {
	return container.NewList(m).H
}

func itemKey(typ, id int) uint64 { return uint64(typ)<<32 | uint64(id) }

// Run implements apps.App: threads split the session scripts and run each
// session as one transaction.
func (a *App) Run(sys tm.System, team *thread.Team) {
	n := len(a.sessions)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		lo, hi := tid*n/team.N(), (tid+1)*n/team.N()
		for s := lo; s < hi; s++ {
			ses := &a.sessions[s]
			switch ses.kind {
			case 0:
				a.makeReservation(th, ses)
			case 1:
				a.deleteCustomer(th, ses)
			case 2:
				a.updateTables(th, ses)
			}
		}
	})
}

// makeReservation runs the session's reservation as one transaction (see
// Store.MakeReservation).
func (a *App) makeReservation(th tm.Thread, ses *session) {
	th.AtomicAt(blkReserve, func(tx tm.Tx) {
		a.store.MakeReservation(tx, ses.cust, ses.items)
	})
}

// deleteCustomer runs the session's cancellation as one transaction (see
// Store.DeleteCustomer).
func (a *App) deleteCustomer(th tm.Thread, ses *session) {
	th.AtomicAt(blkDelete, func(tx tm.Tx) {
		a.store.DeleteCustomer(tx, ses.cust)
	})
}

// updateTables runs the session's inventory mutations as one transaction
// (see Store.UpdateTables).
func (a *App) updateTables(th tm.Thread, ses *session) {
	th.AtomicAt(blkUpdate, func(tx tm.Tx) {
		a.store.UpdateTables(tx, ses.updates)
	})
}

// Verify implements apps.App: per-record accounting (used + free == total),
// cross-checked against a global recount of all customer reservation lists
// (see Store.Check).
func (a *App) Verify(ar *mem.Arena) error {
	return a.store.Check(mem.Direct{A: ar}, a.cfg.Records)
}
