// Package vacation implements STAMP's vacation benchmark: an online
// transaction processing system emulating a travel reservation service
// (the suite's analogue of SPECjbb2000). The database is a set of red-black
// trees — one table per reservation type (car, flight, room) plus a
// customer table — and every client session (reservation, cancellation, or
// table update) executes as one coarse-grain transaction. Transactions are
// of medium length with moderate read/write sets, most of the execution is
// transactional, and contention is tuned by the -n/-q/-u parameters.
package vacation

import (
	"fmt"

	"github.com/stamp-go/stamp/internal/container"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/rng"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
)

// Atomic-block call sites, registered once for per-block statistics
// attribution (tm.Stats.Blocks) and adaptive protocol selection.
var (
	blkReserve = tm.NewBlock("vacation/make-reservation")
	blkDelete  = tm.NewBlock("vacation/delete-customer")
	blkUpdate  = tm.NewBlock("vacation/update-tables")
)

// Config mirrors the Table IV arguments.
type Config struct {
	QueriesPerTx int // -n: items examined per session
	QueryRange   int // -q: sessions span q% of the records
	PercentUser  int // -u: % of sessions that reserve/cancel (rest update tables)
	Records      int // -r: records per reservation table (and customers)
	Transactions int // -t: total sessions
	Seed         uint64
}

// Reservation record layout (arena): one per (table, id).
const (
	resID    = 0
	resUsed  = 1
	resFree  = 2
	resTotal = 3
	resPrice = 4
	resWords = 5
)

// Reservation types.
const (
	typeCar = iota
	typeFlight
	typeRoom
	numTypes
)

// App is one vacation instance.
type App struct {
	cfg Config

	tables    [numTypes]container.RBTree // id -> reservation record addr
	customers container.RBTree           // id -> customer record addr (reservation list header)

	// Pre-generated per-session scripts so every system executes the same
	// logical workload.
	sessions []session
}

type session struct {
	kind  int // 0 reserve, 1 delete customer, 2 update tables
	cust  int
	items []sessionItem
}

type sessionItem struct {
	typ   int
	id    int
	add   bool // update sessions: add vs delete
	num   int
	price int
}

// New pre-generates the session scripts.
func New(cfg Config) *App {
	if cfg.QueriesPerTx < 1 {
		cfg.QueriesPerTx = 1
	}
	if cfg.Records < 1 {
		cfg.Records = 1
	}
	a := &App{cfg: cfg}
	r := rng.New(cfg.Seed ^ 0x766163)
	queryRange := cfg.Records * cfg.QueryRange / 100
	if queryRange < 1 {
		queryRange = 1
	}
	for s := 0; s < cfg.Transactions; s++ {
		action := r.Intn(100)
		var ses session
		switch {
		case action < cfg.PercentUser:
			ses.kind = 0
			ses.cust = r.Intn(queryRange) + 1
			n := cfg.QueriesPerTx
			for i := 0; i < n; i++ {
				ses.items = append(ses.items, sessionItem{
					typ: r.Intn(numTypes),
					id:  r.Intn(queryRange) + 1,
				})
			}
		case action < cfg.PercentUser+(100-cfg.PercentUser)/2:
			ses.kind = 1
			ses.cust = r.Intn(queryRange) + 1
		default:
			ses.kind = 2
			for i := 0; i < cfg.QueriesPerTx; i++ {
				ses.items = append(ses.items, sessionItem{
					typ:   r.Intn(numTypes),
					id:    r.Intn(queryRange) + 1,
					add:   r.Intn(2) == 0,
					num:   r.Intn(5) + 1,
					price: r.Intn(450) + 50,
				})
			}
		}
		a.sessions = append(a.sessions, ses)
	}
	return a
}

// Name implements apps.App.
func (a *App) Name() string { return "vacation" }

// ArenaWords implements apps.App: trees, records, customer lists, and slack
// for session-created records plus abort-retry allocation churn (the bump
// allocator leaks aborted attempts' allocations, like STAMP's tmalloc).
func (a *App) ArenaWords() int {
	perRecord := resWords + 8 /* rb node */
	perCustomer := 8 + 4      /* rb node + list header */
	slack := a.cfg.Transactions * (a.cfg.QueriesPerTx + 2) * 40
	return numTypes*a.cfg.Records*perRecord + a.cfg.Records*perCustomer + slack + 1<<16
}

// Setup implements apps.App: populates the four tables, as in
// manager_initialize.
func (a *App) Setup(ar *mem.Arena) {
	d := mem.Direct{A: ar}
	r := rng.New(a.cfg.Seed ^ 0x696e6974)
	for t := 0; t < numTypes; t++ {
		a.tables[t] = container.NewRBTree(d)
		for id := 1; id <= a.cfg.Records; id++ {
			rec := newReservation(d, id, r.Intn(300)+100, r.Intn(450)+50)
			a.tables[t].Insert(d, uint64(id), uint64(rec))
		}
	}
	a.customers = container.NewRBTree(d)
	for id := 1; id <= a.cfg.Records; id++ {
		a.customers.Insert(d, uint64(id), uint64(newCustomer(d)))
	}
}

func newReservation(m tm.Mem, id, total, price int) mem.Addr {
	rec := m.Alloc(resWords)
	m.Store(rec+resID, uint64(id))
	m.Store(rec+resUsed, 0)
	m.Store(rec+resFree, uint64(total))
	m.Store(rec+resTotal, uint64(total))
	m.Store(rec+resPrice, uint64(price))
	return rec
}

// newCustomer allocates a customer record: a list of (type<<32|id) ->
// booked price.
func newCustomer(m tm.Mem) mem.Addr {
	return container.NewList(m).H
}

func itemKey(typ, id int) uint64 { return uint64(typ)<<32 | uint64(id) }

// Run implements apps.App: threads split the session scripts and run each
// session as one transaction.
func (a *App) Run(sys tm.System, team *thread.Team) {
	n := len(a.sessions)
	team.Run(func(tid int) {
		th := sys.Thread(tid)
		lo, hi := tid*n/team.N(), (tid+1)*n/team.N()
		for s := lo; s < hi; s++ {
			ses := &a.sessions[s]
			switch ses.kind {
			case 0:
				a.makeReservation(th, ses)
			case 1:
				a.deleteCustomer(th, ses)
			case 2:
				a.updateTables(th, ses)
			}
		}
	})
}

// makeReservation queries the priced availability of the session's items
// and books the highest-priced available item of each type for the
// customer, inserting the customer if needed — the original's
// CLIENT_DO_MAKE_RESERVATION in one transaction.
func (a *App) makeReservation(th tm.Thread, ses *session) {
	th.AtomicAt(blkReserve, func(tx tm.Tx) {
		var bestID [numTypes]int
		var bestPrice [numTypes]int64
		for t := range bestPrice {
			bestPrice[t] = -1
			bestID[t] = -1
		}
		for _, it := range ses.items {
			recA, ok := a.tables[it.typ].Get(tx, uint64(it.id))
			if !ok {
				continue
			}
			rec := mem.Addr(recA)
			if tx.Load(rec+resFree) > 0 {
				price := int64(tx.Load(rec + resPrice))
				if price > bestPrice[it.typ] {
					bestPrice[it.typ] = price
					bestID[it.typ] = it.id
				}
			}
		}
		custKey := uint64(ses.cust)
		custA, ok := a.customers.Get(tx, custKey)
		if !ok {
			custA = uint64(newCustomer(tx))
			a.customers.Insert(tx, custKey, custA)
		}
		custList := container.List{H: mem.Addr(custA)}
		for t := 0; t < numTypes; t++ {
			if bestID[t] < 0 {
				continue
			}
			recA, ok := a.tables[t].Get(tx, uint64(bestID[t]))
			if !ok {
				continue
			}
			rec := mem.Addr(recA)
			free := tx.Load(rec + resFree)
			if free == 0 {
				continue
			}
			if !custList.Insert(tx, itemKey(t, bestID[t]), tx.Load(rec+resPrice)) {
				continue // customer already holds this exact item
			}
			tx.Store(rec+resFree, free-1)
			tx.Store(rec+resUsed, tx.Load(rec+resUsed)+1)
		}
	})
}

// deleteCustomer releases all of a customer's reservations and removes the
// customer — one transaction.
func (a *App) deleteCustomer(th tm.Thread, ses *session) {
	th.AtomicAt(blkDelete, func(tx tm.Tx) {
		custA, ok := a.customers.Get(tx, uint64(ses.cust))
		if !ok {
			return
		}
		custList := container.List{H: mem.Addr(custA)}
		custList.Each(tx, func(k, v uint64) bool {
			typ := int(k >> 32)
			id := k & 0xffffffff
			if recA, ok := a.tables[typ].Get(tx, id); ok {
				rec := mem.Addr(recA)
				tx.Store(rec+resFree, tx.Load(rec+resFree)+1)
				tx.Store(rec+resUsed, tx.Load(rec+resUsed)-1)
			}
			return true
		})
		a.customers.Remove(tx, uint64(ses.cust))
	})
}

// updateTables grows or shrinks the inventory — the original's
// CLIENT_DO_UPDATE_TABLES in one transaction.
func (a *App) updateTables(th tm.Thread, ses *session) {
	th.AtomicAt(blkUpdate, func(tx tm.Tx) {
		for _, it := range ses.items {
			recA, ok := a.tables[it.typ].Get(tx, uint64(it.id))
			if it.add {
				if ok {
					rec := mem.Addr(recA)
					tx.Store(rec+resFree, tx.Load(rec+resFree)+uint64(it.num))
					tx.Store(rec+resTotal, tx.Load(rec+resTotal)+uint64(it.num))
					tx.Store(rec+resPrice, uint64(it.price))
				} else {
					rec := newReservation(tx, it.id, it.num, it.price)
					a.tables[it.typ].Insert(tx, uint64(it.id), uint64(rec))
				}
				continue
			}
			if !ok {
				continue
			}
			rec := mem.Addr(recA)
			free := tx.Load(rec + resFree)
			if free < uint64(it.num) {
				continue // cannot retire seats that are in use
			}
			tx.Store(rec+resFree, free-uint64(it.num))
			tx.Store(rec+resTotal, tx.Load(rec+resTotal)-uint64(it.num))
			if tx.Load(rec+resTotal) == 0 {
				a.tables[it.typ].Remove(tx, uint64(it.id))
			}
		}
	})
}

// Verify implements apps.App: per-record accounting (used + free == total),
// cross-checked against a global recount of all customer reservation lists.
func (a *App) Verify(ar *mem.Arena) error {
	d := mem.Direct{A: ar}
	// Recount bookings per (type, id) from the customer lists.
	booked := map[uint64]uint64{}
	custCount := 0
	a.customers.Each(d, func(_, custA uint64) bool {
		custCount++
		l := container.List{H: mem.Addr(custA)}
		l.Each(d, func(k, _ uint64) bool {
			booked[k]++
			return true
		})
		return true
	})
	for t := 0; t < numTypes; t++ {
		var err error
		seen := 0
		a.tables[t].Each(d, func(id, recA uint64) bool {
			seen++
			rec := mem.Addr(recA)
			used := d.Load(rec + resUsed)
			free := d.Load(rec + resFree)
			total := d.Load(rec + resTotal)
			if used+free != total {
				err = fmt.Errorf("vacation: table %d id %d: used %d + free %d != total %d",
					t, id, used, free, total)
				return false
			}
			if got := booked[itemKey(t, int(id))]; got != used {
				err = fmt.Errorf("vacation: table %d id %d: used %d but %d customer bookings",
					t, id, used, got)
				return false
			}
			delete(booked, itemKey(t, int(id)))
			return true
		})
		if err != nil {
			return err
		}
		if seen == 0 && a.cfg.Records > 0 {
			return fmt.Errorf("vacation: table %d is empty", t)
		}
	}
	// Any remaining booked entries reference deleted records: those bookings
	// must be zero-count (cannot happen: updateTables only deletes records
	// with total == 0, i.e. free == used == 0 given the invariant above).
	for k, n := range booked {
		if n != 0 {
			return fmt.Errorf("vacation: %d bookings reference missing record %#x", n, k)
		}
	}
	return nil
}
