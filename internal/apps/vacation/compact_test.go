package vacation

import (
	"testing"

	"github.com/stamp-go/stamp/internal/mem"
)

// TestCompactInto pins the epoch-swap compactor: after churn plus dead
// garbage in the source arena, the copied store passes the full invariant
// check, answers queries identically to the original, and lands in the
// destination arena at its live-set size — the garbage stays behind.
func TestCompactInto(t *testing.T) {
	const records = 64
	src := mem.NewArena(1 << 16)
	m := mem.Direct{A: src}
	st := NewStore(m, records, 42)

	// Churn: bookings for some customers, inventory updates, one customer
	// deleted again — so the compactor must follow non-trivial customer
	// lists and record states.
	items := make([]Item, 0, NumTypes)
	for typ := 0; typ < NumTypes; typ++ {
		items = append(items, Item{Typ: typ, ID: 3 + 2*typ})
	}
	for cust := 1; cust <= 8; cust++ {
		st.MakeReservation(m, cust, items)
	}
	st.UpdateTables(m, []Update{
		{Typ: 0, ID: 3, Add: true, Num: 10, Price: 99},
		{Typ: 1, ID: records + 1, Add: true, Num: 5, Price: 50},
	})
	st.DeleteCustomer(m, 8)
	if err := st.Check(m, records); err != nil {
		t.Fatalf("source store broken before compaction: %v", err)
	}

	// Dead weight the compactor must strand: raw allocations nothing
	// references, standing in for aborted-attempt leaks.
	for i := 0; i < 512; i++ {
		src.Alloc(8)
	}

	dst := mem.NewArena(1 << 16)
	dm := mem.Direct{A: dst}
	out := st.CompactInto(m, dm)

	if err := out.Check(dm, records); err != nil {
		t.Fatalf("compacted store fails invariants: %v", err)
	}
	wantFree, torn := st.QueryFree(m, items)
	if torn != 0 {
		t.Fatalf("source query torn=%d on a quiescent store", torn)
	}
	gotFree, torn := out.QueryFree(dm, items)
	if torn != 0 {
		t.Fatalf("compacted query torn=%d on a quiescent store", torn)
	}
	if gotFree != wantFree {
		t.Fatalf("compacted availability %d != source %d", gotFree, wantFree)
	}
	if dst.Used() >= src.Used() {
		t.Fatalf("compaction did not shrink: dst %d words >= src %d", dst.Used(), src.Used())
	}

	// The copy is deep: mutating the compacted store must not leak back.
	out.MakeReservation(dm, 9, items)
	afterFree, _ := st.QueryFree(m, items)
	if afterFree != wantFree {
		t.Fatalf("mutating the copy changed the source: %d -> %d", wantFree, afterFree)
	}
}
