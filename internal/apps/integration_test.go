package apps_test

import (
	"strings"
	"testing"

	"github.com/stamp-go/stamp/internal/apps"
	"github.com/stamp-go/stamp/internal/apps/genome"
	"github.com/stamp-go/stamp/internal/apps/kmeans"
	"github.com/stamp-go/stamp/internal/apps/ssca2"
	"github.com/stamp-go/stamp/internal/apps/vacation"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/factory"
)

// mustSys builds a TM system or fails the test.
func mustSys(t *testing.T, sysName string, arena *mem.Arena, threads int) tm.System {
	t.Helper()
	sys, err := factory.New(sysName, tm.Config{
		Arena: arena, Threads: threads, EnableEarlyRelease: true,
	})
	if err != nil {
		t.Fatalf("factory.New(%s): %v", sysName, err)
	}
	return sys
}

// runOn stages and runs app on one system and checks its oracle.
func runOn(t *testing.T, app apps.App, sysName string, threads int) {
	t.Helper()
	arena := mem.NewArena(app.ArenaWords())
	app.Setup(arena)
	sys := mustSys(t, sysName, arena, threads)
	app.Run(sys, thread.NewTeam(threads))
	if err := app.Verify(arena); err != nil {
		t.Fatalf("%s on %s: %v", app.Name(), sysName, err)
	}
	st := sys.Stats()
	if st.Total.Commits == 0 {
		t.Fatalf("%s on %s: no transactions committed", app.Name(), sysName)
	}
}

// allSystems runs the app constructor on every system at the given thread
// count (a fresh instance per system so arena state never leaks). In short
// mode the simulated-hardware systems are skipped: their per-line
// bookkeeping is an order of magnitude slower under the race detector, and
// they remain covered by the full run and the factory conformance suite.
func allSystems(t *testing.T, mk func() apps.App, threads int) {
	t.Helper()
	for _, name := range factory.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && (strings.HasPrefix(name, "htm") || strings.HasPrefix(name, "hybrid")) {
				t.Skip("simulated-hardware system skipped in short mode")
			}
			t.Parallel()
			n := threads
			if name == "seq" {
				n = 1
			}
			runOn(t, mk(), name, n)
		})
	}
}

func TestKMeansAllSystems(t *testing.T) {
	allSystems(t, func() apps.App {
		return kmeans.New(kmeans.Config{
			MinClusters: 8, MaxClusters: 8, Threshold: 0.05,
			Points: 1024, Dims: 8, GenCenters: 8, Seed: 1,
		})
	}, 4)
}

func TestKMeansLowContention(t *testing.T) {
	app := kmeans.New(kmeans.Config{
		MinClusters: 24, MaxClusters: 24, Threshold: 0.05,
		Points: 1024, Dims: 4, GenCenters: 8, Seed: 2,
	})
	runOn(t, app, "stm-lazy", 4)
}

func TestSSCA2AllSystems(t *testing.T) {
	allSystems(t, func() apps.App {
		return ssca2.New(ssca2.Config{
			Scale: 8, ProbInter: 0.5, ProbUnidirect: 0.3,
			MaxPathLen: 3, MaxParallel: 3, Seed: 3,
		})
	}, 4)
}

func TestSSCA2EdgeCountDeterminism(t *testing.T) {
	a := ssca2.New(ssca2.Config{Scale: 6, ProbInter: 1, ProbUnidirect: 1, MaxPathLen: 2, MaxParallel: 2, Seed: 9})
	b := ssca2.New(ssca2.Config{Scale: 6, ProbInter: 1, ProbUnidirect: 1, MaxPathLen: 2, MaxParallel: 2, Seed: 9})
	if a.Edges() != b.Edges() || a.Edges() == 0 {
		t.Fatalf("generator not deterministic: %d vs %d", a.Edges(), b.Edges())
	}
}

func TestVacationAllSystems(t *testing.T) {
	allSystems(t, func() apps.App {
		return vacation.New(vacation.Config{
			QueriesPerTx: 4, QueryRange: 60, PercentUser: 90,
			Records: 256, Transactions: 1024, Seed: 4,
		})
	}, 4)
}

func TestVacationHighUpdateRate(t *testing.T) {
	// Heavier table churn: more record creation/deletion paths.
	app := vacation.New(vacation.Config{
		QueriesPerTx: 2, QueryRange: 90, PercentUser: 40,
		Records: 128, Transactions: 2048, Seed: 5,
	})
	runOn(t, app, "stm-eager", 4)
}

func TestGenomeAllSystems(t *testing.T) {
	allSystems(t, func() apps.App {
		return genome.New(genome.Config{
			GeneLength: 256, SegmentLength: 16, Segments: 4096, Seed: 6,
		})
	}, 4)
}

// TestReadOnlyBlockAnnotations pins the harness's read-only block audit:
// the app call sites whose common path performs no store are registered
// through tm.NewROBlock — so stm-mv begins them on its zero-abort snapshot
// path — and the marks survive lookups (the mark is sticky; a plain
// NewBlock re-registration must not clear it). A genome run on stm-mv then
// proves the annotated blocks actually execute and commit there, with the
// whole run's abort accounting staying attributed.
func TestReadOnlyBlockAnnotations(t *testing.T) {
	roBlocks := []string{"genome/publish-ends", "genome/link-overlap", "bayes/learn-edge"}
	for _, name := range roBlocks {
		if !tm.BlockReadOnly(tm.NewBlock(name)) {
			t.Errorf("%s is not marked read-only", name)
		}
	}
	for _, name := range []string{"genome/dedup-insert", "bayes/pop-task"} {
		if tm.BlockReadOnly(tm.NewBlock(name)) {
			t.Errorf("%s is marked read-only but its common path stores", name)
		}
	}

	app := genome.New(genome.Config{
		GeneLength: 256, SegmentLength: 16, Segments: 4096, Seed: 6,
	})
	arena := mem.NewArena(app.ArenaWords())
	app.Setup(arena)
	sys := mustSys(t, "stm-mv", arena, 4)
	app.Run(sys, thread.NewTeam(4))
	if err := app.Verify(arena); err != nil {
		t.Fatalf("genome on stm-mv: %v", err)
	}
	st := sys.Stats()
	rows := make(map[string]tm.BlockRow)
	for _, row := range st.Blocks() {
		rows[row.Name] = row
	}
	for _, name := range []string{"genome/publish-ends", "genome/link-overlap"} {
		row, ok := rows[name]
		if !ok || row.Commits == 0 {
			t.Errorf("no commits recorded for annotated block %s (%+v)", name, rows)
		}
	}
	if unattr := st.AbortCauses()[tm.CauseUnknown]; unattr != 0 {
		t.Errorf("%d aborts left unattributed (CauseUnknown)", unattr)
	}
}

func TestGenomeSeededReconstruction(t *testing.T) {
	// Several seeds: the assembly oracle is exact (result == gene). Segment
	// length stays >= 16 as in all Table IV configs; shorter segments make
	// duplicate (s-1)-mers likely and assembly genuinely ambiguous.
	for seed := uint64(10); seed < 16; seed++ {
		app := genome.New(genome.Config{
			GeneLength: 128, SegmentLength: 16, Segments: 1024, Seed: seed,
		})
		runOn(t, app, "seq", 1)
	}
}
