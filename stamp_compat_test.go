package stamp_test

import (
	"testing"

	"github.com/stamp-go/stamp"
)

// Backward-compat coverage for the deprecated positional wrappers: each one
// must keep compiling and producing the same verified results as the
// Options-first entrypoint it forwards to. New code must use Run /
// Characterize / MeasureSpeedup with Options (CI greps for new callers of
// the deprecated forms outside this file).

func TestCompatRunCM(t *testing.T) {
	res, err := stamp.RunCM("ssca2", 0.05, "stm-lazy", 2, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify != nil {
		t.Fatalf("verification failed: %v", res.Verify)
	}
	if res.CM != "greedy" || res.System != "stm-lazy" || res.Threads != 2 {
		t.Fatalf("positional arguments not carried into result: %+v", res)
	}
}

func TestCompatRunOpts(t *testing.T) {
	// The positional arguments must override the corresponding opt fields.
	res, err := stamp.RunOpts("ssca2", 0.05, "stm-eager", 2,
		stamp.Options{System: "ignored", Threads: 99, Clock: "gv4"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify != nil {
		t.Fatalf("verification failed: %v", res.Verify)
	}
	if res.System != "stm-eager" || res.Threads != 2 || res.Clock != "gv4" {
		t.Fatalf("positional override broken: %+v", res)
	}
}

func TestCompatCharacterizeCM(t *testing.T) {
	c, err := stamp.CharacterizeCM("kmeans-high", 0.1, 2, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	if c.TxCount == 0 || len(c.Retries) != 6 {
		t.Fatalf("empty characterization: %+v", c)
	}
}

func TestCompatCharacterizeOpts(t *testing.T) {
	c, err := stamp.CharacterizeOpts("kmeans-high", 0.1, 2,
		stamp.Options{RetryThreads: 99, Clock: "gv4"})
	if err != nil {
		t.Fatal(err)
	}
	if c.TxCount == 0 || len(c.Retries) != 6 {
		t.Fatalf("empty characterization: %+v", c)
	}
}

func TestCompatMeasureSpeedupCM(t *testing.T) {
	s, err := stamp.MeasureSpeedupCM("ssca2", 0.05, []int{1}, []string{"stm-lazy"}, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	if s.Baseline <= 0 || len(s.Wall["stm-lazy"]) != 1 {
		t.Fatalf("empty series: %+v", s)
	}
}

func TestCompatMeasureSpeedupOpts(t *testing.T) {
	s, err := stamp.MeasureSpeedupOpts("ssca2", 0.05, []int{2}, []string{"htm-lazy"},
		stamp.Options{ThreadCounts: []int{99}, Systems: []string{"ignored"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Threads) != 1 || s.Threads[0] != 2 || len(s.Wall["htm-lazy"]) != 1 {
		t.Fatalf("positional override broken: %+v", s)
	}
}
