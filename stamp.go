package stamp

import (
	"fmt"
	"io"
	"strings"

	"github.com/stamp-go/stamp/internal/container"
	"github.com/stamp-go/stamp/internal/harness"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/chaos"
	"github.com/stamp-go/stamp/internal/tm/factory"
	"github.com/stamp-go/stamp/internal/tm/trace"
)

// Core transactional-memory types (see the tm package docs on each).
type (
	// Arena is the word-addressed shared memory all transactional data
	// lives in.
	Arena = mem.Arena
	// Addr is a word index into an Arena; Nil (0) is the null address.
	Addr = mem.Addr
	// Direct is a non-transactional accessor over an Arena, for setup and
	// verification phases.
	Direct = mem.Direct
	// Mem is the load/store/alloc contract shared by Tx and Direct.
	Mem = tm.Mem
	// Tx is the per-attempt transactional context passed to atomic blocks.
	Tx = tm.Tx
	// Thread is a per-worker handle bound to one TM system.
	Thread = tm.Thread
	// System is one TM runtime instance.
	System = tm.System
	// Config carries runtime construction knobs.
	Config = tm.Config
	// Stats is the aggregate transactional statistics of a run.
	Stats = tm.Stats
	// BlockID identifies one atomic-block call site for per-block
	// statistics (NewBlock, Thread.AtomicAt).
	BlockID = tm.BlockID
	// BlockRow is one per-block line of Stats.Blocks(): commits, aborts,
	// mean set sizes, and protocol residency for one call site.
	BlockRow = tm.BlockRow
	// Team is the fork/join worker group with a reusable barrier.
	Team = thread.Team
	// AbortCause classifies why one transactional attempt failed (see
	// CauseNames for the closed taxonomy).
	AbortCause = tm.AbortCause
	// ConflictKey names the contended location of an abort: an address, a
	// lock-table stripe, or a cache line (0 = no identifiable location).
	ConflictKey = tm.ConflictKey
	// ConflictRow is one row of the aggregated conflict heatmap
	// (Stats.TopConflicts): a contended location, its abort count, the
	// per-cause split, and the most-blamed enemy block.
	ConflictRow = tm.ConflictRow
	// TraceEvent is one sampled tracer record of a run (Result.Trace).
	TraceEvent = tm.TraceEvent
)

// Container types (arena-resident, usable inside and outside transactions).
type (
	// List is a sorted singly-linked list with unique uint64 keys.
	List = container.List
	// Queue is a growable circular-buffer FIFO.
	Queue = container.Queue
	// Hashtable is a fixed-bucket chained hash map.
	Hashtable = container.Hashtable
	// RBTree is a red-black tree map.
	RBTree = container.RBTree
	// Heap is a binary min-heap of (key, value) pairs.
	Heap = container.Heap
	// Vector is a growable word array.
	Vector = container.Vector
	// Bitmap is a fixed-size bit array.
	Bitmap = container.Bitmap
)

// Benchmark-suite types.
type (
	// Variant is one Table IV configuration row.
	Variant = harness.Variant
	// Options is the single per-run configuration struct: what to run on
	// (System, Threads, Scale) plus every per-run knob — set profiling,
	// contention-manager policy (CM), commit-clock scheme (Clock), tracing,
	// chaos, the progress watchdog, and the Characterize/MeasureSpeedup
	// sweep shapes. Options.Validate reports every invalid field at once.
	Options = harness.Options
	// Result is the outcome of one app × system × threads run.
	Result = harness.Result
	// Characterization is one Table VI row.
	Characterization = harness.Characterization
	// SpeedupSeries is one Figure 1 panel.
	SpeedupSeries = harness.SpeedupSeries
)

// NilAddr is the null arena address.
const NilAddr = mem.Nil

// The closed abort-cause taxonomy (Stats.AbortCauses indexes by these;
// CauseNames gives the matching display names in the same order).
const (
	CauseUnknown              = tm.CauseUnknown
	CauseReadValidation       = tm.CauseReadValidation
	CauseStripeLockBusy       = tm.CauseStripeLockBusy
	CauseSeqChanged           = tm.CauseSeqChanged
	CauseWriteWrite           = tm.CauseWriteWrite
	CauseSignatureConflict    = tm.CauseSignatureConflict
	CauseHTMConflict          = tm.CauseHTMConflict
	CauseHTMCapacity          = tm.CauseHTMCapacity
	CauseCMKill               = tm.CauseCMKill
	CauseExplicitRetry        = tm.CauseExplicitRetry
	CauseMVVersionMissing     = tm.CauseMVVersionMissing
	CauseKilledForIrrevocable = tm.CauseKilledForIrrevocable
	CauseAllocExhausted       = tm.CauseAllocExhausted
	NumCauses                 = tm.NumCauses
)

// ErrArenaFull is the typed arena-capacity sentinel: a tx.Alloc that found
// the arena out of words aborts its attempt with CauseAllocExhausted and
// surfaces from Run / Serve as an error wrapping this (never a panic).
// Match with errors.Is.
var ErrArenaFull = mem.ErrArenaFull

// ErrStalled is the distinguishable error Run (and the commands' -timeout
// flag, and the serving harness — see Serve) reports when the progress
// watchdog halts a run that made no commit progress for a full
// Options.ProgressTimeout window; match with errors.Is.
var ErrStalled = harness.ErrStalled

// ChaosSite describes one registered fault-injection failpoint for listings
// (name, kind, description); see ChaosSites and Options.Chaos.
type ChaosSite = chaos.SiteInfo

// ChaosSites returns every registered fault-injection failpoint in enum
// order. Failpoints are armed per run through Config.Chaos / Options.Chaos
// (or the -chaos flag of the commands) with a spec of the form
// "seed:site:prob[,site:prob...]".
func ChaosSites() []ChaosSite { return chaos.Sites() }

// ParseChaos validates a chaos spec ("seed:site:prob[,site:prob...]")
// against the failpoint registry. The empty string is allowed and means
// chaos off.
func ParseChaos(spec string) (string, error) {
	spec = strings.TrimSpace(spec)
	if _, err := chaos.Parse(spec); err != nil {
		return "", err
	}
	return spec, nil
}

// NewArena returns an arena with capacity for nWords 8-byte words.
func NewArena(nWords int) *Arena { return mem.NewArena(nWords) }

// NewSystem constructs a TM runtime by name: "seq", "stm-lazy", "stm-eager",
// "stm-norec", "stm-norec-ro", "stm-mv", "stm-adaptive", "htm-lazy",
// "htm-eager", "hybrid-lazy", or "hybrid-eager".
func NewSystem(name string, cfg Config) (System, error) { return factory.New(name, cfg) }

// NewBlock registers an atomic-block call site under a stable name and
// returns its ID for Thread.AtomicAt, so a run's statistics can be broken
// down per block (Stats.Blocks) — and so the stm-adaptive runtime can
// attribute its protocol choices to call sites. Registration is idempotent:
// the same name always yields the same ID.
func NewBlock(name string) BlockID { return tm.NewBlock(name) }

// NewROBlock registers an atomic-block call site like NewBlock and marks it
// read-mostly: runtimes with a read-optimized begin path (stm-mv's
// zero-abort snapshot reads) start the block's attempts there. The mark is
// a hint — a marked block that stores still commits correctly on every
// runtime.
func NewROBlock(name string) BlockID { return tm.NewROBlock(name) }

// BlockName returns the registered name of a block ID ("" if unknown).
func BlockName(id BlockID) string { return tm.BlockName(id) }

// Systems returns every runtime name, including the sequential baseline.
func Systems() []string { return factory.Names() }

// TMSystems returns the six transactional systems of the paper's
// evaluation.
func TMSystems() []string { return harness.TMSystems() }

// ParseSystems parses a comma-separated TM-system list and validates every
// entry against Systems(). Empty entries are skipped and duplicates removed
// (first occurrence wins), so measurement sweeps never run a system twice.
// With allowSeq false the sequential baseline is rejected: seq has no
// concurrency control, so running it at multiple threads corrupts the
// workload.
func ParseSystems(list string, allowSeq bool) ([]string, error) {
	known := make(map[string]bool)
	for _, name := range Systems() {
		known[name] = true
	}
	seen := make(map[string]bool)
	var systems []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("unknown TM system %q (known: %s)",
				name, strings.Join(Systems(), ", "))
		}
		if name == "seq" && !allowSeq {
			return nil, fmt.Errorf("seq is the sequential baseline (no concurrency control) and cannot be swept at multiple threads")
		}
		seen[name] = true
		systems = append(systems, name)
	}
	if len(systems) == 0 {
		return nil, fmt.Errorf("need at least one TM system (known: %s)",
			strings.Join(Systems(), ", "))
	}
	return systems, nil
}

// CauseNames returns every abort-cause display name in enum order,
// "unknown" first: the closed taxonomy every runtime stamps its aborts
// with (Stats.AbortCauses indexes by the same order).
func CauseNames() []string { return tm.CauseNames() }

// TraceEvents collects a system's sampled tracer events across all worker
// rings, time-sorted — nil unless the system was built with Config.Trace
// > 0. Library users call this after their workers join; harness runs get
// the same slice in Result.Trace.
func TraceEvents(sys System) []TraceEvent { return tm.TraceEvents(sys) }

// WriteChromeTrace renders a run's sampled tracer events (Result.Trace,
// produced with Options.Trace > 0) as Chrome trace-event JSON — loadable in
// Perfetto or chrome://tracing — resolving block IDs through the block
// registry.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return trace.WriteChrome(w, events, func(id int32) string {
		return tm.BlockName(tm.BlockID(id))
	})
}

// CMNames returns every registered contention-manager policy name, sorted:
// "expo", "greedy", "karma", "none", "randlin", "serialize". Policies are
// selected per run through Config.CM (or the -cm flag of the commands);
// an empty Config.CM keeps each runtime's historical default — randomized
// linear backoff ("randlin") for STMs and hybrids, immediate restart
// ("none") for the simulated HTMs.
func CMNames() []string { return tm.CMNames() }

// CMDescription returns the one-line description of a registered
// contention-manager policy (empty for unknown names).
func CMDescription(name string) string { return tm.CMDescription(name) }

// ClockNames returns every registered TL2 commit-clock scheme, sorted:
// "gv1" (fetch-add per writer commit, the default), "gv4" (pass-on-failure
// CAS — concurrent committers share one clock write), "gv5" (commits
// publish clock+1 without ticking; aborts advance the clock). Schemes are
// selected per run through Config.Clock (or the -clock flag of the
// commands); runtimes without a version clock ignore the setting.
func ClockNames() []string { return tm.ClockNames() }

// ClockDescription returns the one-line description of a registered
// commit-clock scheme (empty for unknown names).
func ClockDescription(name string) string { return tm.ClockDescription(name) }

// ParseClock validates a commit-clock scheme name against ClockNames. The
// empty string is allowed and means the default scheme (gv1).
func ParseClock(name string) (string, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil
	}
	for _, known := range ClockNames() {
		if name == known {
			return name, nil
		}
	}
	return "", fmt.Errorf("unknown clock scheme %q (known: %s)",
		name, strings.Join(ClockNames(), ", "))
}

// ParseCM validates a contention-manager name against CMNames. The empty
// string is allowed and means "each runtime's default policy".
func ParseCM(name string) (string, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil
	}
	for _, known := range CMNames() {
		if name == known {
			return name, nil
		}
	}
	return "", fmt.Errorf("unknown contention manager %q (known: %s)",
		name, strings.Join(CMNames(), ", "))
}

// NewTeam returns a fork/join team of n workers.
func NewTeam(n int) *Team { return thread.NewTeam(n) }

// NewList allocates an empty sorted list in m.
func NewList(m Mem) List { return container.NewList(m) }

// NewQueue allocates an empty FIFO with the given initial capacity.
func NewQueue(m Mem, capacity int) Queue { return container.NewQueue(m, capacity) }

// NewHashtable allocates a hash map with nBuckets chains.
func NewHashtable(m Mem, nBuckets int) Hashtable { return container.NewHashtable(m, nBuckets) }

// NewRBTree allocates an empty red-black tree.
func NewRBTree(m Mem) RBTree { return container.NewRBTree(m) }

// NewHeap allocates an empty min-heap with room for capacity entries.
func NewHeap(m Mem, capacity int) Heap { return container.NewHeap(m, capacity) }

// NewVector allocates an empty vector with the given initial capacity.
func NewVector(m Mem, capacity int) Vector { return container.NewVector(m, capacity) }

// NewBitmap allocates an n-bit bitmap, all clear.
func NewBitmap(m Mem, n int) Bitmap { return container.NewBitmap(m, n) }

// LoadF64 reads a float64 stored at a through m.
func LoadF64(m Mem, a Addr) float64 { return tm.LoadF64(m, a) }

// StoreF64 writes a float64 at a through m.
func StoreF64(m Mem, a Addr, f float64) { tm.StoreF64(m, a, f) }

// Variants returns all 30 Table IV configurations.
func Variants() []Variant { return harness.Variants() }

// SimVariants returns the 20 simulation-scale (non-'++') variants.
func SimVariants() []Variant { return harness.SimVariants() }

// FindVariant looks a variant up by name (e.g. "vacation-high+").
func FindVariant(name string) (Variant, error) { return harness.FindVariant(name) }

// Run executes one variant on opt.System (required) at opt.Threads workers
// (0 = 1), at opt.Scale (0 = 1.0, the paper's configuration), with every
// other per-run knob read from opt. It is the single entrypoint the former
// Run/RunCM/RunOpts accretion collapsed into; Options.Validate reports
// every configuration problem at once before anything runs.
func Run(variantName string, opt Options) (Result, error) {
	v, err := harness.FindVariant(variantName)
	if err != nil {
		return Result{}, err
	}
	return harness.RunVariant(v, opt)
}

// Characterize regenerates one Table VI row for a variant at opt.Scale,
// with the retry columns run at opt.RetryThreads (0 = 16, the paper's) and
// extended by opt.ExtraRetrySystems. The per-run knobs of opt apply to the
// retry-column runs; opt.System and opt.Threads are ignored — the columns
// pick their own. It replaces Characterize/CharacterizeCM/CharacterizeOpts.
func Characterize(variantName string, opt Options) (Characterization, error) {
	v, err := harness.FindVariant(variantName)
	if err != nil {
		return Characterization{}, err
	}
	return harness.Characterize(v, opt)
}

// MeasureSpeedup runs one Figure 1 panel for a variant at opt.Scale:
// opt.Systems (nil = the paper's six) swept over opt.ThreadCounts (nil =
// 1,2,4,8,16) against the sequential baseline. It replaces
// MeasureSpeedup/MeasureSpeedupCM/MeasureSpeedupOpts.
func MeasureSpeedup(variantName string, opt Options) (SpeedupSeries, error) {
	v, err := harness.FindVariant(variantName)
	if err != nil {
		return SpeedupSeries{}, err
	}
	return harness.MeasureSpeedup(v, opt)
}

// Deprecated: RunCM is the legacy positional form. Use Run with
// Options{Scale: scale, System: system, Threads: threads, CM: cm}.
func RunCM(variantName string, scale float64, system string, threads int, cm string) (Result, error) {
	return RunOpts(variantName, scale, system, threads, Options{CM: cm})
}

// Deprecated: RunOpts is the legacy positional form; the positional
// arguments override the corresponding opt fields. Use Run and set
// Options.Scale, Options.System, and Options.Threads directly.
func RunOpts(variantName string, scale float64, system string, threads int, opt Options) (Result, error) {
	opt.Scale, opt.System, opt.Threads = scale, system, threads
	return Run(variantName, opt)
}

// Deprecated: CharacterizeCM is the legacy positional form. Use
// Characterize with Options{Scale: scale, RetryThreads: retryThreads,
// CM: cm}.
func CharacterizeCM(variantName string, scale float64, retryThreads int, cm string) (Characterization, error) {
	return CharacterizeOpts(variantName, scale, retryThreads, Options{CM: cm})
}

// Deprecated: CharacterizeOpts is the legacy positional form; the
// positional arguments override the corresponding opt fields. Use
// Characterize and set Options.Scale and Options.RetryThreads directly.
func CharacterizeOpts(variantName string, scale float64, retryThreads int, opt Options) (Characterization, error) {
	opt.Scale, opt.RetryThreads = scale, retryThreads
	return Characterize(variantName, opt)
}

// Deprecated: MeasureSpeedupCM is the legacy positional form. Use
// MeasureSpeedup with Options{Scale: scale, ThreadCounts: threads,
// Systems: systems, CM: cm}.
func MeasureSpeedupCM(variantName string, scale float64, threads []int, systems []string, cm string) (SpeedupSeries, error) {
	return MeasureSpeedupOpts(variantName, scale, threads, systems, Options{CM: cm})
}

// Deprecated: MeasureSpeedupOpts is the legacy positional form; the
// positional arguments override the corresponding opt fields. Use
// MeasureSpeedup and set Options.Scale, Options.ThreadCounts, and
// Options.Systems directly.
func MeasureSpeedupOpts(variantName string, scale float64, threads []int, systems []string, opt Options) (SpeedupSeries, error) {
	opt.Scale, opt.ThreadCounts, opt.Systems = scale, threads, systems
	return MeasureSpeedup(variantName, opt)
}
