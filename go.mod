module github.com/stamp-go/stamp

go 1.24
