// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// family exists per table/figure (see DESIGN.md §5 for the index):
//
//	BenchmarkTableVI    — the characterization runs behind Table VI
//	                      (seq profiling run per variant)
//	BenchmarkFigure1    — one workload execution per variant × TM system
//	                      at a fixed thread count
//	BenchmarkFigure1Scaling — the thread sweep (1..16) for representative
//	                      variants of each behaviour class
//	BenchmarkTableV     — microbenchmarks of the Table V machine
//	                      parameters (signatures, barriers)
//
// Workloads run at benchScale of the paper's configuration so the full
// matrix finishes in minutes; use cmd/characterize and cmd/speedup with
// -scale 1 for full-size runs. Use -benchtime=1x for a single pass.
package stamp_test

import (
	"fmt"
	"testing"

	"github.com/stamp-go/stamp"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/factory"
	"github.com/stamp-go/stamp/internal/tm/sig"
)

const benchScale = 0.08

// benchRun executes one staged run per iteration, reusing the generated
// input across iterations.
func benchRun(b *testing.B, v stamp.Variant, sysName string, threads int) {
	b.Helper()
	app := v.Make(benchScale)
	b.ResetTimer()
	committed := uint64(0)
	aborted := uint64(0)
	for i := 0; i < b.N; i++ {
		arena := mem.NewArena(app.ArenaWords())
		app.Setup(arena)
		sys, err := factory.New(sysName, tm.Config{
			Arena: arena, Threads: threads, EnableEarlyRelease: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		app.Run(sys, thread.NewTeam(threads))
		if err := app.Verify(arena); err != nil {
			b.Fatalf("verification failed: %v", err)
		}
		st := sys.Stats()
		committed += st.Total.Commits
		aborted += st.Total.Aborts
	}
	b.ReportMetric(float64(committed)/float64(b.N), "tx/run")
	b.ReportMetric(float64(aborted)/float64(max(committed, 1)), "retries/tx")
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// BenchmarkTableVI times the sequential profiling run that produces each
// Table VI row's barrier counts and per-transaction proxies.
func BenchmarkTableVI(b *testing.B) {
	for _, v := range stamp.SimVariants() {
		b.Run(v.Name, func(b *testing.B) {
			benchRun(b, v, "seq", 1)
		})
	}
}

// figureSystems is every registered concurrent runtime — the paper's six
// evaluated systems plus whatever the registry has grown since (the NOrec
// pair, stm-adaptive). Derived from factory.Names() rather than a written
// list so a newly registered runtime joins the protocol-comparison axis
// automatically; only the sequential baseline is excluded (it is the
// denominator, not a competitor).
func figureSystems() []string {
	var systems []string
	for _, name := range factory.Names() {
		if name != "seq" {
			systems = append(systems, name)
		}
	}
	return systems
}

// BenchmarkFigure1 runs every simulation variant on every TM system at 4
// threads — one cell of each Figure 1 panel, with retries/tx reported.
func BenchmarkFigure1(b *testing.B) {
	for _, v := range stamp.SimVariants() {
		for _, sys := range figureSystems() {
			b.Run(fmt.Sprintf("%s/%s", v.Name, sys), func(b *testing.B) {
				benchRun(b, v, sys, 4)
			})
		}
	}
}

// BenchmarkFigure1Scaling sweeps the paper's core counts for one
// representative variant of each transactional behaviour class: genome
// (moderate txs, low contention), kmeans-high (tiny txs), vacation-low
// (tree-heavy OLTP), labyrinth (huge txs, privatization).
func BenchmarkFigure1Scaling(b *testing.B) {
	reps := []string{"genome", "kmeans-high", "vacation-low", "labyrinth"}
	for _, name := range reps {
		v, err := stamp.FindVariant(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, sys := range figureSystems() {
			// Three representative points of the paper's 1..16 sweep keep
			// the full matrix tractable; cmd/speedup runs the full sweep.
			for _, threads := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("%s/%s/t%d", name, sys, threads), func(b *testing.B) {
					benchRun(b, v, sys, threads)
				})
			}
		}
	}
}

// BenchmarkTableV microbenchmarks the simulated machine's TM primitives
// (Table V): signature insert/test and the per-system barrier costs that
// the cycle model discounts.
func BenchmarkTableV(b *testing.B) {
	b.Run("signature-insert", func(b *testing.B) {
		var s sig.Signature
		for i := 0; i < b.N; i++ {
			s.Insert(uint32(i))
		}
	})
	b.Run("signature-test", func(b *testing.B) {
		var s sig.Signature
		for i := 0; i < 1024; i++ {
			s.Insert(uint32(i * 7))
		}
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			if s.Test(uint32(i)) {
				hits++
			}
		}
		_ = hits
	})
	for _, sysName := range factory.Names() {
		b.Run("barrier/"+sysName, func(b *testing.B) {
			arena := mem.NewArena(1 << 16)
			base := arena.Alloc(1 << 10)
			sys, err := factory.New(sysName, tm.Config{Arena: arena, Threads: 1})
			if err != nil {
				b.Fatal(err)
			}
			th := sys.Thread(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Atomic(func(tx tm.Tx) {
					a := base + mem.Addr(i&1023)
					tx.Store(a, tx.Load(a)+1)
				})
			}
		})
	}
}

// BenchmarkBarrier extends the Table V family with per-runtime hot-path
// barrier microbenchmarks over the txset machinery, so barrier overheads
// are tracked per PR:
//
//	filter-skip     read barriers that cannot hit the write buffer (one
//	                buffered store, 64 reads elsewhere) — the txset write
//	                filter's fast path, the common case in read-dominated
//	                vacation/genome
//	wbuf-hit        read-after-write of the 8 most recent stores — the
//	                small-set linear-scan fast path
//	wbuf-miss-64w   reads against a 64-entry write buffer — hashed lookups
//	                and filter false positives
//	readset-64r1w   64 tracked reads plus one store — read-set append and
//	                the writer commit's validation path
//
// Single-threaded on purpose: these isolate per-barrier instruction cost,
// not contention (the ablation benchmarks cover that axis).
func BenchmarkBarrier(b *testing.B) {
	shapes := []struct {
		name string
		run  func(tx tm.Tx, base mem.Addr)
	}{
		{"filter-skip", func(tx tm.Tx, base mem.Addr) {
			tx.Store(base, 1)
			for i := 1; i <= 64; i++ {
				tx.Load(base + mem.Addr(i))
			}
		}},
		{"wbuf-hit", func(tx tm.Tx, base mem.Addr) {
			for i := 0; i < 8; i++ {
				tx.Store(base+mem.Addr(i), uint64(i))
			}
			for i := 0; i < 64; i++ {
				tx.Load(base + mem.Addr(i&7))
			}
		}},
		{"wbuf-miss-64w", func(tx tm.Tx, base mem.Addr) {
			for i := 0; i < 64; i++ {
				tx.Store(base+mem.Addr(i), uint64(i))
			}
			for i := 64; i < 128; i++ {
				tx.Load(base + mem.Addr(i))
			}
		}},
		{"readset-64r1w", func(tx tm.Tx, base mem.Addr) {
			for i := 0; i < 64; i++ {
				tx.Load(base + mem.Addr(i))
			}
			tx.Store(base, 1)
		}},
	}
	for _, shape := range shapes {
		for _, sysName := range factory.Names() {
			b.Run(shape.name+"/"+sysName, func(b *testing.B) {
				arena := mem.NewArena(1 << 16)
				base := arena.Alloc(1 << 10)
				sys, err := factory.New(sysName, tm.Config{Arena: arena, Threads: 1})
				if err != nil {
					b.Fatal(err)
				}
				th := sys.Thread(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					th.Atomic(func(tx tm.Tx) { shape.run(tx, base) })
				}
			})
		}
	}
}

// BenchmarkContainers covers the shared data-structure substrate under the
// seq system (pure operation cost, no conflicts).
func BenchmarkContainers(b *testing.B) {
	b.Run("rbtree-insert-get", func(b *testing.B) {
		arena := mem.NewArena(1 << 24)
		d := mem.Direct{A: arena}
		t := stamp.NewRBTree(d)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := uint64(i % (1 << 18))
			t.Insert(d, k, k)
			t.Get(d, k)
		}
	})
	b.Run("hashtable-insert-get", func(b *testing.B) {
		arena := mem.NewArena(1 << 24)
		d := mem.Direct{A: arena}
		t := stamp.NewHashtable(d, 1<<12)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := uint64(i % (1 << 18))
			t.Insert(d, k, k)
			t.Get(d, k)
		}
	})
	b.Run("heap-push-pop", func(b *testing.B) {
		arena := mem.NewArena(1 << 22)
		d := mem.Direct{A: arena}
		h := stamp.NewHeap(d, 1<<10)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Push(d, uint64(i*2654435761)%1000, 0)
			if h.Len(d) > 512 {
				h.Pop(d)
			}
		}
	})
}
