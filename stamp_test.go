package stamp_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/stamp-go/stamp"
)

func TestSystemsRoster(t *testing.T) {
	got := stamp.Systems()
	if len(got) != 11 {
		t.Fatalf("Systems() = %v", got)
	}
	// TMSystems stays pinned to the paper's six evaluated systems even as
	// the registry grows; the extra runtimes must still all be in Systems().
	tm := stamp.TMSystems()
	if len(tm) != 6 {
		t.Fatalf("TMSystems() = %v", tm)
	}
	for _, name := range tm {
		if name == "seq" {
			t.Fatal("seq listed as a TM system")
		}
	}
	all := make(map[string]bool)
	for _, name := range got {
		all[name] = true
	}
	for _, name := range append(tm, "stm-norec", "stm-norec-ro", "stm-mv", "stm-adaptive") {
		if !all[name] {
			t.Fatalf("Systems() = %v is missing %q", got, name)
		}
	}
}

func TestParseSystems(t *testing.T) {
	got, err := stamp.ParseSystems(" stm-norec,,stm-lazy , stm-norec,", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "stm-norec" || got[1] != "stm-lazy" {
		t.Fatalf("ParseSystems = %v (want dedup, trim, order preserved)", got)
	}
	if _, err := stamp.ParseSystems("nope", true); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := stamp.ParseSystems("", true); err == nil {
		t.Fatal("empty list accepted")
	}
	if _, err := stamp.ParseSystems("seq", false); err == nil {
		t.Fatal("seq accepted with allowSeq=false")
	}
	if got, err := stamp.ParseSystems("seq", true); err != nil || len(got) != 1 {
		t.Fatalf("seq rejected with allowSeq=true: %v %v", got, err)
	}
}

func TestCMRoster(t *testing.T) {
	names := stamp.CMNames()
	if len(names) != 6 {
		t.Fatalf("CMNames() = %v", names)
	}
	for _, name := range names {
		if stamp.CMDescription(name) == "" {
			t.Fatalf("policy %q has no description", name)
		}
	}
}

func TestParseCM(t *testing.T) {
	if got, err := stamp.ParseCM(" greedy "); err != nil || got != "greedy" {
		t.Fatalf("ParseCM(greedy) = %q, %v (want trimmed name)", got, err)
	}
	if got, err := stamp.ParseCM(""); err != nil || got != "" {
		t.Fatalf("ParseCM(\"\") = %q, %v (empty means per-runtime default)", got, err)
	}
	if _, err := stamp.ParseCM("nope"); err == nil {
		t.Fatal("unknown contention manager accepted")
	}
}

func TestClockRoster(t *testing.T) {
	names := stamp.ClockNames()
	want := []string{"gv1", "gv4", "gv5"}
	if len(names) != len(want) {
		t.Fatalf("ClockNames() = %v", names)
	}
	for i, name := range want {
		if names[i] != name {
			t.Fatalf("ClockNames() = %v, want %v", names, want)
		}
		if stamp.ClockDescription(name) == "" {
			t.Fatalf("scheme %q has no description", name)
		}
	}
}

func TestParseClock(t *testing.T) {
	if got, err := stamp.ParseClock(" gv4 "); err != nil || got != "gv4" {
		t.Fatalf("ParseClock(gv4) = %q, %v (want trimmed name)", got, err)
	}
	if got, err := stamp.ParseClock(""); err != nil || got != "" {
		t.Fatalf("ParseClock(\"\") = %q, %v (empty means the gv1 default)", got, err)
	}
	if _, err := stamp.ParseClock("gv9"); err == nil {
		t.Fatal("unknown clock scheme accepted")
	}
}

// TestRunClockEndToEnd: every registered clock scheme must run a real
// variant to a verified result on both TL2 runtimes (the runtimes that
// consume the setting) and be carried into the Result.
func TestRunClockEndToEnd(t *testing.T) {
	for _, clock := range stamp.ClockNames() {
		for _, sys := range []string{"stm-lazy", "stm-eager"} {
			res, err := stamp.Run("ssca2", stamp.Options{Scale: 0.05, System: sys, Threads: 4, Clock: clock})
			if err != nil {
				t.Fatalf("%s on %s: %v", clock, sys, err)
			}
			if res.Verify != nil {
				t.Fatalf("%s on %s failed verification: %v", clock, sys, res.Verify)
			}
			if res.Clock != clock {
				t.Fatalf("result Clock = %q, want %q", res.Clock, clock)
			}
		}
	}
	if _, err := stamp.Run("ssca2", stamp.Options{Scale: 0.05, System: "stm-lazy", Threads: 2, Clock: "gv9"}); err == nil {
		t.Fatal("unknown clock scheme accepted by Run")
	}
}

// TestRunCMEndToEnd: every registered policy must run a real variant to a
// verified result on a word-granularity and a line-granularity runtime.
func TestRunCMEndToEnd(t *testing.T) {
	for _, cm := range stamp.CMNames() {
		for _, sys := range []string{"stm-lazy", "hybrid-eager"} {
			res, err := stamp.Run("ssca2", stamp.Options{Scale: 0.05, System: sys, Threads: 4, CM: cm})
			if err != nil {
				t.Fatalf("%s on %s: %v", cm, sys, err)
			}
			if res.Verify != nil {
				t.Fatalf("%s on %s failed verification: %v", cm, sys, res.Verify)
			}
			if res.CM != cm {
				t.Fatalf("result CM = %q, want %q", res.CM, cm)
			}
		}
	}
	if _, err := stamp.Run("ssca2", stamp.Options{Scale: 0.05, System: "stm-lazy", Threads: 2, CM: "no-such-cm"}); err == nil {
		t.Fatal("unknown contention manager accepted by Run")
	}
}

func TestPublicAtomicRoundTrip(t *testing.T) {
	arena := stamp.NewArena(1 << 10)
	a := arena.Alloc(1)
	for _, name := range stamp.Systems() {
		sys, err := stamp.NewSystem(name, stamp.Config{Arena: arena, Threads: 1})
		if err != nil {
			t.Fatalf("NewSystem(%s): %v", name, err)
		}
		sys.Thread(0).Atomic(func(tx stamp.Tx) {
			tx.Store(a, tx.Load(a)+1)
		})
	}
	if got := arena.Load(a); got != uint64(len(stamp.Systems())) {
		t.Fatalf("counter = %d", got)
	}
}

func TestPublicContainers(t *testing.T) {
	arena := stamp.NewArena(1 << 16)
	d := stamp.Direct{A: arena}
	l := stamp.NewList(d)
	l.Insert(d, 1, 10)
	q := stamp.NewQueue(d, 4)
	q.Push(d, 7)
	h := stamp.NewHashtable(d, 8)
	h.Insert(d, 9, 90)
	tr := stamp.NewRBTree(d)
	tr.Insert(d, 3, 30)
	hp := stamp.NewHeap(d, 4)
	hp.Push(d, 2, 20)
	vec := stamp.NewVector(d, 4)
	vec.PushBack(d, 5)
	bm := stamp.NewBitmap(d, 64)
	bm.Set(d, 10)
	if v, _ := l.Get(d, 1); v != 10 {
		t.Fatal("list")
	}
	if v, _ := q.Pop(d); v != 7 {
		t.Fatal("queue")
	}
	if v, _ := h.Get(d, 9); v != 90 {
		t.Fatal("hashtable")
	}
	if v, _ := tr.Get(d, 3); v != 30 {
		t.Fatal("rbtree")
	}
	if _, v, _ := hp.Pop(d); v != 20 {
		t.Fatal("heap")
	}
	if vec.At(d, 0) != 5 {
		t.Fatal("vector")
	}
	if !bm.Test(d, 10) {
		t.Fatal("bitmap")
	}
	addr := arena.Alloc(1)
	stamp.StoreF64(d, addr, 1.5)
	if stamp.LoadF64(d, addr) != 1.5 {
		t.Fatal("float helpers")
	}
}

func TestPublicRunVariant(t *testing.T) {
	res, err := stamp.Run("ssca2", stamp.Options{Scale: 0.05, System: "stm-eager", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify != nil {
		t.Fatalf("verification failed: %v", res.Verify)
	}
	if res.Stats.Total.Commits == 0 {
		t.Fatal("no transactions")
	}
	if _, err := stamp.Run("no-such-variant", stamp.Options{System: "seq"}); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := stamp.Run("ssca2", stamp.Options{Scale: 0.05, System: "no-such-system"}); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := stamp.Run("ssca2", stamp.Options{Scale: 0.05}); err == nil {
		t.Fatal("missing System accepted")
	}
}

// ExampleNewSystem shows the core usage pattern: allocate transactional
// data in an arena, construct a runtime by name (here with an explicit
// contention-manager policy), and run atomic blocks through a worker's
// Thread handle.
func ExampleNewSystem() {
	arena := stamp.NewArena(1 << 10)
	account := arena.Alloc(1)
	sys, err := stamp.NewSystem("stm-lazy", stamp.Config{
		Arena:   arena,
		Threads: 1,
		CM:      "greedy", // pluggable contention management (see CMNames)
	})
	if err != nil {
		panic(err)
	}
	sys.Thread(0).Atomic(func(tx stamp.Tx) {
		tx.Store(account, tx.Load(account)+100)
	})
	fmt.Println(arena.Load(account))
	// Output: 100
}

// ExampleParseSystems shows the validation the commands apply to -systems:
// whitespace is trimmed, duplicates collapse, unknown names are rejected.
func ExampleParseSystems() {
	systems, _ := stamp.ParseSystems(" stm-lazy, stm-norec ,stm-lazy", true)
	fmt.Println(systems)

	_, err := stamp.ParseSystems("stm-fancy", true)
	fmt.Println(err != nil)
	// Output:
	// [stm-lazy stm-norec]
	// true
}

// ExampleRun_abortCauses shows the observability readout of a run: every
// abort carries a taxonomy cause (Stats.AbortCauses, indexed like
// CauseNames), and the conflict heatmap names the hottest contended
// locations (Stats.TopConflicts). Counts vary run to run, so the example
// prints the invariants instead: the cause counters account for every
// abort and nothing lands in the "unknown" bucket.
func ExampleRun_abortCauses() {
	res, err := stamp.Run("vacation-high", stamp.Options{Scale: 0.05, System: "stm-lazy", Threads: 4})
	if err != nil {
		panic(err)
	}
	causes := res.Stats.AbortCauses()
	var attributed uint64
	for _, n := range causes {
		attributed += n
	}
	fmt.Println("all aborts attributed:", attributed == res.Stats.Total.Aborts)
	fmt.Println("unknown-cause aborts:", causes[stamp.CauseUnknown])
	for _, row := range res.Stats.TopConflicts() {
		// row.Key.String() is e.g. "addr 0x2a"; row.Causes the per-cause
		// split; row.Blame the most-blamed enemy block.
		_ = row
	}
	// Output:
	// all aborts attributed: true
	// unknown-cause aborts: 0
}

// ExampleRun_readOnlySnapshot shows the stm-mv snapshot guarantee: a
// block registered through NewROBlock reads the state as of its begin
// timestamp, so a writer committing mid-transaction changes what later
// transactions see but never what this one sees — the second load is
// served from the stripe's version ring, not the (already newer) arena
// word, with no validation and no abort.
func ExampleRun_readOnlySnapshot() {
	arena := stamp.NewArena(1 << 10)
	x := arena.Alloc(1)
	arena.Store(x, 1)
	sys, err := stamp.NewSystem("stm-mv", stamp.Config{Arena: arena, Threads: 2})
	if err != nil {
		panic(err)
	}

	snap := stamp.NewROBlock("example/snapshot-reader")
	writerGo := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		<-writerGo
		sys.Thread(1).Atomic(func(tx stamp.Tx) {
			tx.Store(x, 2)
		})
		close(writerDone)
	}()

	sys.Thread(0).AtomicAt(snap, func(tx stamp.Tx) {
		first := tx.Load(x)
		close(writerGo) // a writer commits x=2 while this tx is live
		<-writerDone
		second := tx.Load(x) // still the snapshot value, from the ring
		fmt.Println("snapshot reads:", first, second)
	})
	fmt.Println("after:", arena.Load(x))
	fmt.Println("reader aborts:", sys.Thread(0).Stats().Aborts)
	// Output:
	// snapshot reads: 1 1
	// after: 2
	// reader aborts: 0
}

// ExampleCMNames lists the contention-manager registry the -cm flag (and
// Config.CM) selects from.
func ExampleCMNames() {
	fmt.Println(strings.Join(stamp.CMNames(), " "))
	// Output: expo greedy karma none randlin serialize
}

func TestTableIVArgsPinned(t *testing.T) {
	// Guard the Table IV argument strings against silent drift: spot-check
	// rows exactly as printed in the paper.
	want := map[string]string{
		"bayes":          "-v32 -r1024 -n2 -p20 -i2 -e2",
		"bayes++":        "-v32 -r4096 -n10 -p40 -i2 -e8 -s1",
		"genome++":       "-g16384 -s64 -n16777216",
		"kmeans-high++":  "-m15 -n15 -t0.00001 -i random-n65536-d32-c16",
		"labyrinth+":     "-i random-x48-y48-z3-n64",
		"ssca2+":         "-s14 -i1.0 -u1.0 -l9 -p9",
		"vacation-low++": "-n2 -q90 -u98 -r1048576 -t4194304",
		"vacation-high":  "-n4 -q60 -u90 -r16384 -t4096",
		"yada":           "-a20 -i 633.2",
		"yada++":         "-a15 -i ttimeu1000000.2",
	}
	for name, args := range want {
		v, err := stamp.FindVariant(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v.Args != args {
			t.Fatalf("%s args = %q, want %q", name, v.Args, args)
		}
	}
	// Every variant's app must be derivable from its name.
	for _, v := range stamp.Variants() {
		base := strings.TrimRight(v.Name, "+")
		if idx := strings.IndexByte(base, '-'); idx >= 0 {
			base = base[:idx]
		}
		if base != v.App {
			t.Fatalf("variant %q maps to app %q", v.Name, v.App)
		}
	}
}
