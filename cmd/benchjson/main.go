// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON file, so benchmark results can be recorded and
// diffed across PRs (the BENCH_*.json perf trajectory), and compares two
// such files as a perf-regression gate.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=1x . | go run ./cmd/benchjson -out BENCH_smoke.json
//	go run ./cmd/benchjson -in bench.out            # JSON to stdout
//	go run ./cmd/benchjson -in five-runs.out -median -out BENCH_PR5.json
//	go run ./cmd/benchjson -compare -tolerance 25 old.json new.json
//
// Every benchmark result line of the form
//
//	BenchmarkName/sub-8   	  123	  9876 ns/op	  1.5 tx/run
//
// becomes one record with the trailing -procs suffix split off and every
// value/unit pair collected under metrics. Context lines (goos, goarch,
// pkg, cpu) are captured into the header.
//
// With -median, repeated occurrences of the same benchmark (the
// interleaved-runs recording protocol: run the whole suite N times,
// concatenate the output) are collapsed to one record holding the
// per-metric median, which is how the committed BENCH_*.json baselines
// are produced — medians of interleaved runs absorb the noise a single
// pass would bake into the baseline.
//
// Compare mode matches results by name on the ns/op metric and prints a
// markdown delta table (suitable for a CI job summary). It exits 1 when
// any benchmark slowed down by more than -tolerance percent, so CI can
// treat regressions as a hard failure or, on noisy runners, downgrade the
// exit status to a warning annotation while still publishing the table.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the emitted document.
type File struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	var (
		in        = flag.String("in", "", "input file with `go test -bench` output (default: stdin)")
		out       = flag.String("out", "", "output JSON file (default: stdout)")
		compare   = flag.Bool("compare", false, "compare two BENCH_*.json files (args: old.json new.json) and print a delta table")
		median    = flag.Bool("median", false, "collapse repeated results (interleaved runs) to per-metric medians")
		tolerance = flag.Float64("tolerance", 25, "with -compare: ns/op slowdown percentage above which a benchmark counts as regressed")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		oldDoc, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		newDoc, err := load(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		report, regressed, latRegressed := Compare(oldDoc, newDoc, *tolerance)
		os.Stdout.WriteString(report)
		if latRegressed > 0 {
			// Tail latency is warn-only: noisy runners make p99 jumpy, so it
			// never fails the gate — only ns/op does.
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) exceeded the p99 latency tolerance (warn-only)\n", latRegressed)
		}
		if regressed > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%%\n", regressed, *tolerance)
			os.Exit(1)
		}
		return
	}

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	doc, err := Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines found in input")
		os.Exit(1)
	}
	if *median {
		doc.Results = Median(doc.Results)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(doc.Results), *out)
}

// load reads one emitted BENCH_*.json document back.
func load(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &File{}
	if err := json.Unmarshal(raw, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// key identifies one benchmark across files (sub-benchmark path plus the
// -procs suffix the parser split off).
func key(r Result) string { return fmt.Sprintf("%s-%d", r.Name, r.Procs) }

// Median collapses repeated occurrences of each benchmark into one record
// per benchmark holding the per-metric median (lower of the middle pair
// for even counts) and the summed iteration count. First-occurrence order
// is preserved so a medianed file diffs cleanly against its inputs.
func Median(results []Result) []Result {
	order := make([]string, 0, len(results))
	groups := make(map[string][]Result)
	for _, r := range results {
		k := key(r)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	out := make([]Result, 0, len(order))
	for _, k := range order {
		g := groups[k]
		m := Result{Name: g[0].Name, Procs: g[0].Procs, Metrics: map[string]float64{}}
		units := make(map[string][]float64)
		for _, r := range g {
			m.Iterations += r.Iterations
			for unit, v := range r.Metrics {
				units[unit] = append(units[unit], v)
			}
		}
		for unit, vs := range units {
			sort.Float64s(vs)
			m.Metrics[unit] = vs[(len(vs)-1)/2]
		}
		out = append(out, m)
	}
	return out
}

// Compare renders a markdown delta table of the ns/op metric between two
// documents and counts how many benchmarks slowed down by more than
// tolerance percent. Benchmarks present in only one file are listed but
// never count as regressions (the roster legitimately grows per PR).
// Benchmarks carrying a p99-ns metric in both files (the serving-mode
// stampd results) additionally get a tail-latency delta table; those count
// into latRegressed, which callers treat as warn-only — tail percentiles
// on shared runners are too noisy to hard-fail on.
func Compare(oldDoc, newDoc *File, tolerance float64) (report string, regressed, latRegressed int) {
	oldBy := make(map[string]Result, len(oldDoc.Results))
	for _, r := range oldDoc.Results {
		oldBy[key(r)] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### Benchmark delta (ns/op, tolerance %.0f%%)\n\n", tolerance)
	b.WriteString("| benchmark | old ns/op | new ns/op | delta |\n|---|---:|---:|---:|\n")
	matched := make(map[string]bool)
	for _, nr := range newDoc.Results {
		k := key(nr)
		or, ok := oldBy[k]
		nv, hasNew := nr.Metrics["ns/op"]
		if !hasNew {
			continue
		}
		if !ok {
			fmt.Fprintf(&b, "| %s | — | %.1f | new |\n", nr.Name, nv)
			continue
		}
		matched[k] = true
		ov := or.Metrics["ns/op"]
		if ov == 0 {
			continue
		}
		delta := (nv - ov) / ov * 100
		mark := ""
		if delta > tolerance {
			regressed++
			mark = " ⚠️"
		}
		fmt.Fprintf(&b, "| %s | %.1f | %.1f | %+.1f%%%s |\n", nr.Name, ov, nv, delta, mark)
	}
	var dropped []string
	for k, r := range oldBy {
		if !matched[k] {
			dropped = append(dropped, r.Name)
		}
	}
	sort.Strings(dropped)
	for _, name := range dropped {
		fmt.Fprintf(&b, "| %s | (baseline only) | — | gone |\n", name)
	}
	if regressed > 0 {
		fmt.Fprintf(&b, "\n**%d benchmark(s) regressed beyond the %.0f%% tolerance.**\n", regressed, tolerance)
	} else {
		fmt.Fprintf(&b, "\nNo regressions beyond the %.0f%% tolerance.\n", tolerance)
	}

	// Tail-latency section: only benchmarks measured in both files count.
	var lat strings.Builder
	for _, nr := range newDoc.Results {
		or, ok := oldBy[key(nr)]
		if !ok {
			continue
		}
		nv, hasNew := nr.Metrics["p99-ns"]
		ov, hasOld := or.Metrics["p99-ns"]
		if !hasNew || !hasOld || ov == 0 {
			continue
		}
		delta := (nv - ov) / ov * 100
		mark := ""
		if delta > tolerance {
			latRegressed++
			mark = " ⚠️"
		}
		fmt.Fprintf(&lat, "| %s | %.0f | %.0f | %+.1f%%%s |\n", nr.Name, ov, nv, delta, mark)
	}
	if lat.Len() > 0 {
		fmt.Fprintf(&b, "\n### Tail-latency delta (p99-ns, warn-only)\n\n")
		b.WriteString("| benchmark | old p99-ns | new p99-ns | delta |\n|---|---:|---:|---:|\n")
		b.WriteString(lat.String())
		if latRegressed > 0 {
			fmt.Fprintf(&b, "\n%d benchmark(s) exceeded the p99 tolerance — warning only, not a gate.\n", latRegressed)
		}
	}
	return b.String(), regressed, latRegressed
}

// Parse reads `go test -bench` output and collects the header context and
// every result line. Non-benchmark lines are ignored, so piping the whole
// test output through is fine.
func Parse(r io.Reader) (*File, error) {
	doc := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseResult(line); ok {
				doc.Results = append(doc.Results, res)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult parses one result line: name, iteration count, then
// value/unit pairs.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, len(res.Metrics) > 0
}
