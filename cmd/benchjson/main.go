// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON file, so benchmark results can be recorded and
// diffed across PRs (the BENCH_*.json perf trajectory).
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=1x . | go run ./cmd/benchjson -out BENCH_smoke.json
//	go run ./cmd/benchjson -in bench.out            # JSON to stdout
//
// Every benchmark result line of the form
//
//	BenchmarkName/sub-8   	  123	  9876 ns/op	  1.5 tx/run
//
// becomes one record with the trailing -procs suffix split off and every
// value/unit pair collected under metrics. Context lines (goos, goarch,
// pkg, cpu) are captured into the header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the emitted document.
type File struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	var (
		in  = flag.String("in", "", "input file with `go test -bench` output (default: stdin)")
		out = flag.String("out", "", "output JSON file (default: stdout)")
	)
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	doc, err := Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines found in input")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(doc.Results), *out)
}

// Parse reads `go test -bench` output and collects the header context and
// every result line. Non-benchmark lines are ignored, so piping the whole
// test output through is fine.
func Parse(r io.Reader) (*File, error) {
	doc := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseResult(line); ok {
				doc.Results = append(doc.Results, res)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult parses one result line: name, iteration count, then
// value/unit pairs.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, len(res.Metrics) > 0
}
