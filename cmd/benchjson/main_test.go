package main

import (
	"sort"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/stamp-go/stamp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableVI/genome         	       3	  27039779 ns/op	         0 retries/tx	      1502 tx/run
BenchmarkBarrier/filter-skip/stm-norec-8 	  211824	      5679 ns/op
BenchmarkFigure1/vacation-low/stm-norec  	       3	   2182913 ns/op	         0 retries/tx	       327.0 tx/run
PASS
ok  	github.com/stamp-go/stamp	3.324s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Fatalf("header = %q/%q", doc.Goos, doc.Goarch)
	}
	if doc.Pkg != "github.com/stamp-go/stamp" {
		t.Fatalf("pkg = %q", doc.Pkg)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("cpu = %q", doc.CPU)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(doc.Results))
	}

	r := doc.Results[0]
	if r.Name != "TableVI/genome" || r.Procs != 1 || r.Iterations != 3 {
		t.Fatalf("result 0 = %+v", r)
	}
	if r.Metrics["ns/op"] != 27039779 || r.Metrics["tx/run"] != 1502 {
		t.Fatalf("result 0 metrics = %v", r.Metrics)
	}

	r = doc.Results[1]
	if r.Name != "Barrier/filter-skip/stm-norec" || r.Procs != 8 {
		t.Fatalf("result 1 = %+v (procs suffix must be split off)", r)
	}
	if r.Iterations != 211824 || r.Metrics["ns/op"] != 5679 {
		t.Fatalf("result 1 = %+v", r)
	}

	r = doc.Results[2]
	if r.Metrics["tx/run"] != 327.0 {
		t.Fatalf("result 2 metrics = %v", r.Metrics)
	}
}

// mkFile builds a File with one ns/op result per (name, value) pair.
func mkFile(entries map[string]float64) *File {
	doc := &File{}
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		doc.Results = append(doc.Results, Result{
			Name: name, Procs: 1, Iterations: 1,
			Metrics: map[string]float64{"ns/op": entries[name]},
		})
	}
	return doc
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldDoc := mkFile(map[string]float64{"a": 100, "b": 100, "c": 100, "gone": 50})
	newDoc := mkFile(map[string]float64{"a": 110, "b": 130, "c": 90, "fresh": 42})
	report, regressed, _ := Compare(oldDoc, newDoc, 25)
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1 (only b is >25%% slower)\n%s", regressed, report)
	}
	for _, want := range []string{
		"| a | 100.0 | 110.0 | +10.0% |",
		"| b | 100.0 | 130.0 | +30.0% ⚠️ |",
		"| c | 100.0 | 90.0 | -10.0% |",
		"| fresh | — | 42.0 | new |",
		"| gone | (baseline only) | — | gone |",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestCompareCleanRun(t *testing.T) {
	doc := mkFile(map[string]float64{"a": 100, "b": 250})
	report, regressed, _ := Compare(doc, mkFile(map[string]float64{"a": 100, "b": 250}), 25)
	if regressed != 0 {
		t.Fatalf("identical files regressed = %d\n%s", regressed, report)
	}
	if !strings.Contains(report, "No regressions") {
		t.Fatalf("report missing all-clear line:\n%s", report)
	}
}

func TestCompareProcsDistinguished(t *testing.T) {
	oldDoc := &File{Results: []Result{
		{Name: "x", Procs: 1, Iterations: 1, Metrics: map[string]float64{"ns/op": 100}},
		{Name: "x", Procs: 8, Iterations: 1, Metrics: map[string]float64{"ns/op": 200}},
	}}
	newDoc := &File{Results: []Result{
		{Name: "x", Procs: 1, Iterations: 1, Metrics: map[string]float64{"ns/op": 100}},
		{Name: "x", Procs: 8, Iterations: 1, Metrics: map[string]float64{"ns/op": 300}},
	}}
	_, regressed, _ := Compare(oldDoc, newDoc, 25)
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1 (only the -8 variant slowed)", regressed)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := Parse(strings.NewReader("hello\nBenchmarkBroken abc\n--- FAIL: x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("results = %d, want 0", len(doc.Results))
	}
}

// TestMedianCollapsesInterleavedRuns pins the recording protocol: the same
// benchmark appearing once per interleaved run collapses to one record per
// benchmark with the per-metric median and summed iterations, preserving
// first-occurrence order.
func TestMedianCollapsesInterleavedRuns(t *testing.T) {
	mk := func(name string, ns float64, extra float64) Result {
		return Result{Name: name, Procs: 8, Iterations: 3,
			Metrics: map[string]float64{"ns/op": ns, "tx/run": extra}}
	}
	in := []Result{
		mk("B/x", 300, 10), mk("A/y", 50, 1),
		mk("B/x", 100, 30), mk("A/y", 70, 3),
		mk("B/x", 200, 20), mk("A/y", 60, 2),
	}
	got := Median(in)
	if len(got) != 2 {
		t.Fatalf("Median produced %d records, want 2", len(got))
	}
	if got[0].Name != "B/x" || got[1].Name != "A/y" {
		t.Fatalf("order not preserved: %s, %s", got[0].Name, got[1].Name)
	}
	if got[0].Metrics["ns/op"] != 200 || got[0].Metrics["tx/run"] != 20 {
		t.Fatalf("B/x medians = %v", got[0].Metrics)
	}
	if got[0].Iterations != 9 {
		t.Fatalf("iterations = %d, want summed 9", got[0].Iterations)
	}
	// Even count: the lower middle is taken (deterministic, pessimistic for
	// ns/op comparisons is the higher value, but stability matters more).
	even := Median(in[:4])
	if even[0].Metrics["ns/op"] != 100 {
		t.Fatalf("even-count median = %v", even[0].Metrics["ns/op"])
	}
	// Singletons pass through unchanged.
	single := Median(in[:2])
	if len(single) != 2 || single[0].Metrics["ns/op"] != 300 {
		t.Fatalf("singleton handling: %v", single)
	}
}

// TestCompareLatencyWarnOnly pins the serving-mode contract: p99-ns deltas
// get their own table and counter, but only ns/op drives the regressed
// count that gates CI.
func TestCompareLatencyWarnOnly(t *testing.T) {
	mk := func(ns, p99 float64) *File {
		return &File{Results: []Result{{
			Name: "Stampd/stm-mv/c4/ro50", Procs: 8, Iterations: 1000,
			Metrics: map[string]float64{"ns/op": ns, "p99-ns": p99},
		}}}
	}
	report, regressed, latRegressed := Compare(mk(100, 50000), mk(105, 90000), 25)
	if regressed != 0 {
		t.Fatalf("ns/op within tolerance but regressed = %d\n%s", regressed, report)
	}
	if latRegressed != 1 {
		t.Fatalf("latRegressed = %d, want 1 (p99 +80%%)\n%s", latRegressed, report)
	}
	for _, want := range []string{
		"Tail-latency delta (p99-ns, warn-only)",
		"| Stampd/stm-mv/c4/ro50 | 50000 | 90000 | +80.0% ⚠️ |",
		"warning only, not a gate",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}

	// No p99-ns on either side: no latency section at all.
	plain := mkFile(map[string]float64{"a": 100})
	report, _, latRegressed = Compare(plain, plain, 25)
	if latRegressed != 0 || strings.Contains(report, "Tail-latency") {
		t.Fatalf("latency section leaked into plain compare:\n%s", report)
	}
}
