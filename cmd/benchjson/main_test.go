package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/stamp-go/stamp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableVI/genome         	       3	  27039779 ns/op	         0 retries/tx	      1502 tx/run
BenchmarkBarrier/filter-skip/stm-norec-8 	  211824	      5679 ns/op
BenchmarkFigure1/vacation-low/stm-norec  	       3	   2182913 ns/op	         0 retries/tx	       327.0 tx/run
PASS
ok  	github.com/stamp-go/stamp	3.324s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Fatalf("header = %q/%q", doc.Goos, doc.Goarch)
	}
	if doc.Pkg != "github.com/stamp-go/stamp" {
		t.Fatalf("pkg = %q", doc.Pkg)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("cpu = %q", doc.CPU)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(doc.Results))
	}

	r := doc.Results[0]
	if r.Name != "TableVI/genome" || r.Procs != 1 || r.Iterations != 3 {
		t.Fatalf("result 0 = %+v", r)
	}
	if r.Metrics["ns/op"] != 27039779 || r.Metrics["tx/run"] != 1502 {
		t.Fatalf("result 0 metrics = %v", r.Metrics)
	}

	r = doc.Results[1]
	if r.Name != "Barrier/filter-skip/stm-norec" || r.Procs != 8 {
		t.Fatalf("result 1 = %+v (procs suffix must be split off)", r)
	}
	if r.Iterations != 211824 || r.Metrics["ns/op"] != 5679 {
		t.Fatalf("result 1 = %+v", r)
	}

	r = doc.Results[2]
	if r.Metrics["tx/run"] != 327.0 {
		t.Fatalf("result 2 metrics = %v", r.Metrics)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := Parse(strings.NewReader("hello\nBenchmarkBroken abc\n--- FAIL: x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("results = %d, want 0", len(doc.Results))
	}
}
