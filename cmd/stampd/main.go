// Command stampd runs the STAMP vacation workload as a long-lived service:
// a persistent transactional arena behind a bounded admission queue and a
// worker pool, with open-loop load generation and tail-latency reporting —
// the serving-mode counterpart of the batch `stamp` command.
//
// Usage:
//
//	stampd -bench [-system stm-mv] [-systems stm-mv,stm-lazy] [-workers 8] \
//	       [-clients 4,16] [-rate 20000] [-duration 2s] [-ro 0,50] \
//	       [-user 90] [-queries 4] [-qrange 60]
//	stampd -listen :8080 [-system stm-mv] [-workers 8] [-timeout 2s]
//
// Bench mode prints one human-readable report per (system × clients ×
// ro-mix) cell plus `go test -bench`-formatted result lines
// (BenchmarkStampd/...) whose ns/op is the mean client-observed latency,
// with p50-ns/p99-ns/p999-ns and req/s as extra metrics — pipe through
// `benchjson` to record or compare. -systems sweeps several runtimes in one
// invocation (each cell gets a fresh server); it overrides -system.
//
// Listen mode serves the operations over HTTP with JSON bodies
// (POST /reserve /cancel /update /query, GET /stats /healthz); admission
// rejections answer 503, a stalled pool answers 500 everywhere.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/stamp-go/stamp"
)

func main() {
	var (
		bench   = flag.Bool("bench", false, "run the built-in load generator and report latency percentiles")
		listen  = flag.String("listen", "", "serve the operations over HTTP on this address (e.g. :8080)")
		system  = flag.String("system", "stm-mv", "TM runtime for the worker pool (stm-mv serves queries snapshot-style)")
		systems = flag.String("systems", "", "comma-separated TM runtimes to sweep in bench mode (overrides -system)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines (one TM thread slot each, max 64)")
		queueN  = flag.Int("queue", 0, "admission queue bound (0 = 4×workers); full queue rejects, not buffers")
		records = flag.Int("records", 16384, "rows per reservation table (vacation -r)")
		budget  = flag.Int("op-budget", 0, "arena slack in operations the server can absorb (0 = 1<<18)")

		clients  = flag.String("clients", "4", "comma-separated client counts; each count is one bench cell")
		rate     = flag.Float64("rate", 0, "total open-loop arrival rate in req/s across clients (0 = closed loop)")
		duration = flag.Duration("duration", time.Second, "bench run length per cell")
		user     = flag.Int("user", 90, "percentage of read-write requests that are reservations (vacation -u)")
		ro       = flag.String("ro", "0", "comma-separated read-only query percentages; each is one bench cell")
		queries  = flag.Int("queries", 4, "items touched per request (vacation -n)")
		qrange   = flag.Int("qrange", 60, "percentage of records requests span (vacation -q)")
		seed     = flag.Uint64("seed", 1, "workload and store seed")

		cmFlag  = flag.String("cm", "", "contention-manager policy (default: per-runtime)")
		clkFlag = flag.String("clock", "", "TL2 commit-clock scheme (default: gv1)")
		chaos   = flag.String("chaos", "", "deterministic failpoints: seed:site:prob[,site:prob...]")
		mvVers  = flag.Int("mv-versions", 0, "stm-mv per-stripe version-ring depth (0 = default)")
		timeout = flag.Duration("timeout", 0, "progress watchdog: halt the pool and fail pending requests if commits stall this long with work in flight (0 = off)")

		swapAt    = flag.Float64("swap-at", 0, "arena high-water fraction that triggers an epoch swap (0 = 0.85)")
		deadline  = flag.Duration("deadline", 0, "per-request deadline from admission to completion (0 = none)")
		retries   = flag.Int("retries", 0, "retry budget for requests that hit arena exhaustion, one epoch swap per retry (0 = 3)")
		noRecycle = flag.Bool("no-recycle", false, "disable the transactional free lists (every tx.Free leaks, as in the original tmalloc) — the ablation baseline")
	)
	flag.Parse()
	if *workers > 64 {
		*workers = 64 // the runtime's reader-mask width caps thread slots
	}

	cm, err := stamp.ParseCM(*cmFlag)
	fatal(err)
	clock, err := stamp.ParseClock(*clkFlag)
	fatal(err)
	chaosSpec, err := stamp.ParseChaos(*chaos)
	fatal(err)

	opts := stamp.ServerOptions{
		System: *system, Workers: *workers, Queue: *queueN,
		Records: *records, OpBudget: *budget,
		CM: cm, Clock: clock, Chaos: chaosSpec, MVVersions: *mvVers,
		SwapAt: *swapAt, RequestDeadline: *deadline, RequestRetries: *retries,
		NoRecycle:       *noRecycle,
		ProgressTimeout: *timeout, Seed: *seed,
	}
	sweep := []string{*system}
	if *systems != "" {
		var err error
		sweep, err = stamp.ParseSystems(*systems, false)
		fatal(err)
	}

	switch {
	case *bench:
		runBench(opts, benchConfig{
			systems: sweep,
			clients: parseInts(*clients, "-clients"),
			roPcts:  parseInts(*ro, "-ro"),
			rate:    *rate, duration: *duration,
			user: *user, queries: *queries, qrange: *qrange, seed: *seed,
		})
	case *listen != "":
		runListen(opts, *listen)
	default:
		fmt.Fprintln(os.Stderr, "stampd: pick a mode: -bench or -listen ADDR")
		os.Exit(2)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stampd:", err)
		os.Exit(2)
	}
}

func parseInts(csv, flagName string) []int {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fatal(fmt.Errorf("%s: %q is not an integer", flagName, p))
		}
		out = append(out, n)
	}
	return out
}

type benchConfig struct {
	systems  []string
	clients  []int
	roPcts   []int
	rate     float64
	duration time.Duration
	user     int
	queries  int
	qrange   int
	seed     uint64
}

// runBench runs one load cell per (system × clients × ro) combination, each
// against a fresh server so the cells' statistics and arenas are
// independent.
func runBench(opts stamp.ServerOptions, cfg benchConfig) {
	fmt.Printf("goos: %s\ngoarch: %s\npkg: github.com/stamp-go/stamp/cmd/stampd\n",
		runtime.GOOS, runtime.GOARCH)
	exitCode := 0
	for _, sysName := range cfg.systems {
		opts.System = sysName
		for _, nc := range cfg.clients {
			for _, roPct := range cfg.roPcts {
				if err := benchCell(opts, cfg, nc, roPct); err != nil {
					fmt.Fprintln(os.Stderr, "stampd:", err)
					exitCode = 1
				}
			}
		}
	}
	os.Exit(exitCode)
}

func benchCell(opts stamp.ServerOptions, cfg benchConfig, nc, roPct int) error {
	srv, err := stamp.Serve(opts)
	if err != nil {
		return err
	}
	defer srv.Close()
	userPct := cfg.user
	if userPct == 0 {
		userPct = -1 // LoadOptions treats 0 as "default 90"
	}
	rep, err := stamp.RunLoad(srv, stamp.LoadOptions{
		Clients: nc, Rate: cfg.rate, Duration: cfg.duration,
		UserPct: userPct, ROPct: roPct,
		QueriesPerTx: cfg.queries, QueryRangePct: cfg.qrange, Seed: cfg.seed,
	})
	if err != nil {
		return err
	}

	loop := "closed-loop"
	if cfg.rate > 0 {
		loop = fmt.Sprintf("open-loop %.0f req/s", cfg.rate)
	}
	fmt.Printf("\n# cell        system=%s workers=%d clients=%d ro=%d%% user=%d%% (%s, %v)\n",
		srv.System(), opts.Workers, nc, roPct, userPct, loop, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("# requests    offered=%d completed=%d rejected=%d failed=%d lost=%d (%.0f req/s served)\n",
		rep.Offered, rep.Completed, rep.Rejected, rep.Failed, rep.Lost, rep.Throughput())
	l := rep.Latency
	fmt.Printf("# latency     p50=%v p99=%v p999=%v max=%v mean=%v\n",
		ns(l.P50Ns), ns(l.P99Ns), ns(l.P999Ns), ns(l.MaxNs), time.Duration(l.MeanNs).Round(time.Microsecond))
	ops := make([]string, 0, len(rep.PerOp))
	for op := range rep.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		s := rep.PerOp[op]
		fmt.Printf("# op %-8s n=%d p50=%v p99=%v p999=%v\n", op, s.Count, ns(s.P50Ns), ns(s.P99Ns), ns(s.P999Ns))
	}
	tot := rep.TM.Total
	fmt.Printf("# tm          starts=%d commits=%d aborts=%d escalations=%d cm-waits=%d\n",
		tot.Starts, tot.Commits, tot.Aborts, tot.Escalations, tot.CMWaits)
	if g := srv.Snapshot(); g.Swaps > 0 {
		fmt.Printf("# lifecycle   epoch=%d swaps=%d swap-pause-total=%v swap-pause-last=%v arena=%d/%d words\n",
			g.Epoch, g.Swaps, time.Duration(g.SwapPauseNs).Round(time.Microsecond),
			time.Duration(g.LastSwapPauseNs).Round(time.Microsecond), g.ArenaUsed, g.ArenaCap)
	}
	names := stamp.CauseNames()
	var causes []string
	for c, n := range rep.TM.AbortCauses() {
		if n != 0 {
			causes = append(causes, fmt.Sprintf("%s %d", names[c], n))
		}
	}
	if len(causes) > 0 {
		fmt.Printf("# aborts      %s\n", strings.Join(causes, ", "))
	}

	// The machine-readable line: go test -bench format, one per cell, so
	// `benchjson` records mean latency as ns/op and the tail percentiles as
	// extra metrics. The -N suffix slots the worker count where go puts
	// GOMAXPROCS.
	if rep.Completed > 0 {
		fmt.Printf("BenchmarkStampd/%s/c%d/ro%d-%d\t%d\t%.0f ns/op\t%d p50-ns\t%d p99-ns\t%d p999-ns\t%.0f req/s\n",
			srv.System(), nc, roPct, opts.Workers,
			rep.Completed, l.MeanNs, l.P50Ns, l.P99Ns, l.P999Ns, rep.Throughput())
	}

	if rep.Torn > 0 {
		return fmt.Errorf("cell c%d/ro%d: %d torn query snapshots (used+free != total mid-read)", nc, roPct, rep.Torn)
	}
	if err := srv.CheckInvariants(); err != nil {
		return fmt.Errorf("cell c%d/ro%d: store invariants violated after load: %w", nc, roPct, err)
	}
	if err := srv.Close(); err != nil {
		return fmt.Errorf("cell c%d/ro%d: %w", nc, roPct, err)
	}
	return nil
}

func ns(v uint64) time.Duration { return time.Duration(v).Round(time.Microsecond) }

// runListen serves the pool over HTTP until SIGINT/SIGTERM, then closes the
// pool (draining accepted requests) before exiting.
func runListen(opts stamp.ServerOptions, addr string) {
	srv, err := stamp.Serve(opts)
	fatal(err)
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		fmt.Fprintln(os.Stderr, "stampd: shutting down")
		httpSrv.Close()
	}()
	queueN := opts.Queue
	if queueN == 0 {
		queueN = 4 * opts.Workers
	}
	fmt.Printf("stampd: serving %s on %s (workers=%d queue=%d records=%d)\n",
		srv.System(), addr, opts.Workers, queueN, opts.Records)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "stampd:", err)
		os.Exit(1)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "stampd:", err)
		os.Exit(1)
	}
}
