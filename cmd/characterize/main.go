// Command characterize regenerates Table VI (the quantitative transactional
// characterization of the STAMP applications) and, with -qualitative, the
// derived Table III buckets.
//
// Usage:
//
//	characterize [-scale 0.25] [-retry-threads 16] [-variants genome,kmeans-high]
//	             [-systems stm-norec,stm-norec-ro] [-cm greedy] [-clock gv4]
//	             [-qualitative]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/stamp-go/stamp"
	"github.com/stamp-go/stamp/internal/harness"
)

func main() {
	var (
		scale       = flag.Float64("scale", 0.25, "workload scale (1 = the paper's configuration)")
		retry       = flag.Int("retry-threads", 16, "thread count for the retries-per-transaction columns (paper: 16)")
		only        = flag.String("variants", "", "comma-separated variant subset (default: all 20 simulation variants)")
		sysFlag     = flag.String("systems", "", "comma-separated extra retry-column systems beyond the paper's six (see stamp -list-systems)")
		cmFlag      = flag.String("cm", "", "contention-manager policy for the retry-column runs (see stamp -list-cms; default: per-runtime)")
		clockFlag   = flag.String("clock", "", "TL2 commit-clock scheme for the retry-column runs (see stamp -list-clocks; default: gv1)")
		mvVers      = flag.Int("mv-versions", 0, "stm-mv per-stripe version-ring depth (0 = default 8)")
		chaosArg    = flag.String("chaos", "", "arm deterministic failpoints for the retry-column runs: seed:site:prob[,...] (see stamp -list-chaos)")
		timeout     = flag.Duration("timeout", 0, "progress watchdog per run: fail if no commits for this long (0 = off)")
		qualitative = flag.Bool("qualitative", false, "also print the derived Table III buckets")
	)
	flag.Parse()

	cm, err := stamp.ParseCM(*cmFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(2)
	}
	clock, err := stamp.ParseClock(*clockFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(2)
	}
	chaosSpec, err := stamp.ParseChaos(*chaosArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(2)
	}

	var extraSystems []string
	if *sysFlag != "" {
		parsed, err := stamp.ParseSystems(*sysFlag, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(2)
		}
		paper := make(map[string]bool)
		for _, name := range stamp.TMSystems() {
			paper[name] = true
		}
		for _, name := range parsed {
			if paper[name] {
				fmt.Fprintf(os.Stderr, "characterize: %s is already a Table VI retry column; -systems is for runtimes beyond the paper's six\n", name)
				os.Exit(2)
			}
			extraSystems = append(extraSystems, name)
		}
	}

	var selected []stamp.Variant
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			v, err := stamp.FindVariant(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "characterize:", err)
				os.Exit(2)
			}
			selected = append(selected, v)
		}
	} else {
		selected = stamp.SimVariants()
	}

	var rows []stamp.Characterization
	for _, v := range selected {
		fmt.Fprintf(os.Stderr, "characterizing %s (scale %g)...\n", v.Name, *scale)
		c, err := harness.Characterize(v, harness.Options{
			Scale: *scale, RetryThreads: *retry, ExtraRetrySystems: extraSystems,
			CM: cm, Clock: clock, MVVersions: *mvVers,
			Chaos: chaosSpec, ProgressTimeout: *timeout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
		rows = append(rows, c)
	}
	fmt.Println("Table VI — transactional characterization (proxies per DESIGN.md):")
	harness.WriteTableVI(os.Stdout, rows)
	if *qualitative {
		fmt.Println()
		fmt.Println("Table III — qualitative buckets derived from the measurements:")
		var qs []harness.Qualitative
		for _, c := range rows {
			qs = append(qs, harness.Bucketize(c))
		}
		harness.WriteTableIII(os.Stdout, qs)
	}
}
