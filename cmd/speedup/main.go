// Command speedup regenerates Figure 1: speedup over sequential execution
// for every TM system across thread counts, per variant.
//
// Usage:
//
//	speedup [-scale 0.25] [-threads 1,2,4,8,16] [-variants genome,intruder]
//	        [-systems stm-lazy,stm-norec] [-cm greedy] [-clock gv4] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/stamp-go/stamp"
	"github.com/stamp-go/stamp/internal/harness"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.25, "workload scale (1 = the paper's configuration)")
		threads   = flag.String("threads", "1,2,4,8,16", "comma-separated thread counts")
		only      = flag.String("variants", "", "comma-separated variant subset (default: all 20 simulation variants)")
		sysFlag   = flag.String("systems", "", "comma-separated TM systems (default: the paper's six; see stamp -list-systems)")
		cmFlag    = flag.String("cm", "", "contention-manager policy for every TM run (see stamp -list-cms; default: per-runtime)")
		clockFlag = flag.String("clock", "", "TL2 commit-clock scheme for every TM run (see stamp -list-clocks; default: gv1)")
		mvVers    = flag.Int("mv-versions", 0, "stm-mv per-stripe version-ring depth (0 = default 8)")
		chaosArg  = flag.String("chaos", "", "arm deterministic failpoints for every TM run: seed:site:prob[,...] (see stamp -list-chaos)")
		timeout   = flag.Duration("timeout", 0, "progress watchdog per run: fail if no commits for this long (0 = off)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	cm, err := stamp.ParseCM(*cmFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(2)
	}
	clock, err := stamp.ParseClock(*clockFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(2)
	}
	chaosSpec, err := stamp.ParseChaos(*chaosArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "speedup:", err)
		os.Exit(2)
	}

	var systems []string
	if *sysFlag != "" {
		var err error
		// seq is already the baseline of every panel; sweeping it at
		// multiple threads would corrupt the workload, so reject it.
		systems, err = stamp.ParseSystems(*sysFlag, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "speedup:", err)
			os.Exit(2)
		}
	}

	var ts []int
	for _, s := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintln(os.Stderr, "speedup: bad -threads value:", s)
			os.Exit(2)
		}
		ts = append(ts, n)
	}
	var selected []stamp.Variant
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			v, err := stamp.FindVariant(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "speedup:", err)
				os.Exit(2)
			}
			selected = append(selected, v)
		}
	} else {
		selected = stamp.SimVariants()
	}

	var series []stamp.SpeedupSeries
	for _, v := range selected {
		fmt.Fprintf(os.Stderr, "measuring %s (scale %g)...\n", v.Name, *scale)
		s, err := harness.MeasureSpeedup(v, harness.Options{
			Scale: *scale, ThreadCounts: ts, Systems: systems,
			CM: cm, Clock: clock, MVVersions: *mvVers,
			Chaos: chaosSpec, ProgressTimeout: *timeout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "speedup:", err)
			os.Exit(1)
		}
		series = append(series, s)
	}
	if *csv {
		harness.WriteFigure1CSV(os.Stdout, series)
		return
	}
	fmt.Println("Figure 1 — speedup over sequential (wall clock, cycle-model estimate in parentheses):")
	harness.WriteFigure1(os.Stdout, series)
}
