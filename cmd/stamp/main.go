// Command stamp runs one STAMP variant on one TM system, the equivalent of
// invoking an original benchmark binary linked against a TM library.
//
// Usage:
//
//	stamp -list
//	stamp -variant vacation-low -sys stm-lazy -threads 8 [-scale 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/stamp-go/stamp"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list all Table IV variants and exit")
		variant = flag.String("variant", "", "variant name (see -list)")
		sysName = flag.String("sys", "stm-lazy", "TM system: seq, stm-lazy, stm-eager, htm-lazy, htm-eager, hybrid-lazy, hybrid-eager")
		threads = flag.Int("threads", 4, "worker threads")
		scale   = flag.Float64("scale", 1.0, "workload scale (1 = the paper's configuration)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-18s %-10s %s\n", "VARIANT", "APP", "TABLE IV ARGS")
		for _, v := range stamp.Variants() {
			fmt.Printf("%-18s %-10s %s\n", v.Name, v.App, v.Args)
		}
		return
	}
	if *variant == "" {
		fmt.Fprintln(os.Stderr, "stamp: -variant is required (use -list to enumerate)")
		os.Exit(2)
	}
	res, err := stamp.Run(*variant, *scale, *sysName, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stamp:", err)
		os.Exit(1)
	}
	fmt.Printf("variant      %s\n", res.Variant)
	fmt.Printf("system       %s\n", res.System)
	fmt.Printf("threads      %d\n", res.Threads)
	fmt.Printf("wall time    %v\n", res.Wall)
	fmt.Printf("transactions %d\n", res.Stats.Total.Commits)
	fmt.Printf("aborts       %d (%.3f retries/tx)\n", res.Stats.Total.Aborts, res.RetriesPerTx())
	fmt.Printf("barriers     %d loads, %d stores (%d wasted in aborted attempts)\n",
		res.Stats.Total.Loads, res.Stats.Total.Stores, res.Stats.Total.Wasted)
	fmt.Printf("tx time      %.1f%% of thread time\n", res.TxTimeFraction()*100)
	if res.Verify != nil {
		fmt.Printf("VERIFY       FAILED: %v\n", res.Verify)
		os.Exit(1)
	}
	fmt.Printf("verify       ok\n")
}
