// Command stamp runs one STAMP variant on one or more TM systems, the
// equivalent of invoking an original benchmark binary linked against a TM
// library.
//
// Usage:
//
//	stamp -list
//	stamp -list-systems
//	stamp -list-cms
//	stamp -list-clocks
//	stamp -list-causes
//	stamp -list-chaos
//	stamp -variant vacation-low -systems stm-lazy,stm-norec -threads 8 [-scale 1] [-cm greedy] [-clock gv4] [-mv-versions 16]
//	stamp -variant vacation-low -systems stm-lazy -threads 8 -trace 16 -trace-out tx.trace.json
//	stamp -variant vacation-low -systems stm-lazy -threads 8 -chaos 42:tl2-lock-acquire:0.01 -timeout 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/stamp-go/stamp"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list all Table IV variants and exit")
		listSys  = flag.Bool("list-systems", false, "list all registered TM systems and exit")
		listCMs  = flag.Bool("list-cms", false, "list all registered contention-manager policies and exit")
		listClks = flag.Bool("list-clocks", false, "list all registered TL2 commit-clock schemes and exit")
		listCaus = flag.Bool("list-causes", false, "list the abort-cause taxonomy and exit")
		variant  = flag.String("variant", "", "variant name (see -list)")
		sysNames = flag.String("systems", "stm-lazy", "comma-separated TM systems (see -list-systems)")
		threads  = flag.Int("threads", 4, "worker threads")
		scale    = flag.Float64("scale", 1.0, "workload scale (1 = the paper's configuration)")
		cmFlag   = flag.String("cm", "", "contention-manager policy (see -list-cms; default: per-runtime)")
		clkFlag  = flag.String("clock", "", "TL2 commit-clock scheme (see -list-clocks; default: gv1)")
		mvVers   = flag.Int("mv-versions", 0, "stm-mv per-stripe version-ring depth (0 = default 8; 1 = single-version)")
		traceN   = flag.Int("trace", 0, "sample every Nth atomic block into the event tracer (0 = off)")
		traceOut = flag.String("trace-out", "", "write sampled events as Chrome trace-event JSON (Perfetto-loadable); implies -trace 1 if -trace is unset")
		chaosArg = flag.String("chaos", "", "arm deterministic failpoints: seed:site:prob[,site:prob...] (see -list-chaos)")
		listChs  = flag.Bool("list-chaos", false, "list all registered fault-injection failpoints and exit")
		timeout  = flag.Duration("timeout", 0, "progress watchdog: fail (with diagnostics) if no transaction commits for this long (0 = off)")
	)
	flag.Parse()
	if *traceOut != "" && *traceN == 0 {
		*traceN = 1
	}

	if *list {
		fmt.Printf("%-18s %-10s %s\n", "VARIANT", "APP", "TABLE IV ARGS")
		for _, v := range stamp.Variants() {
			fmt.Printf("%-18s %-10s %s\n", v.Name, v.App, v.Args)
		}
		return
	}
	if *listSys {
		for _, name := range stamp.Systems() {
			fmt.Println(name)
		}
		return
	}
	if *listCMs {
		for _, name := range stamp.CMNames() {
			fmt.Printf("%-10s %s\n", name, stamp.CMDescription(name))
		}
		return
	}
	if *listClks {
		for _, name := range stamp.ClockNames() {
			fmt.Printf("%-10s %s\n", name, stamp.ClockDescription(name))
		}
		return
	}
	if *listCaus {
		for _, name := range stamp.CauseNames() {
			fmt.Println(name)
		}
		return
	}
	if *listChs {
		for _, site := range stamp.ChaosSites() {
			fmt.Printf("%-18s %-14s %s\n", site.Name, site.Kind, site.Description)
		}
		return
	}
	if *variant == "" {
		fmt.Fprintln(os.Stderr, "stamp: -variant is required (use -list to enumerate)")
		os.Exit(2)
	}
	systems, err := stamp.ParseSystems(*sysNames, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stamp:", err)
		os.Exit(2)
	}
	cm, err := stamp.ParseCM(*cmFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stamp:", err)
		os.Exit(2)
	}
	clock, err := stamp.ParseClock(*clkFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stamp:", err)
		os.Exit(2)
	}
	chaosSpec, err := stamp.ParseChaos(*chaosArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stamp:", err)
		os.Exit(2)
	}

	failed := false
	for i, sysName := range systems {
		if i > 0 {
			fmt.Println()
		}
		n := *threads
		if sysName == "seq" {
			n = 1 // seq has no concurrency control; >1 thread corrupts the run
		}
		res, err := stamp.Run(*variant, stamp.Options{
			System: sysName, Threads: n, Scale: *scale,
			CM: cm, Clock: clock, Trace: *traceN, MVVersions: *mvVers,
			Chaos: chaosSpec, ProgressTimeout: *timeout})
		if err != nil {
			fmt.Fprintln(os.Stderr, "stamp:", err)
			os.Exit(1)
		}
		cmName := res.CM
		if cmName == "" {
			cmName = "default"
		}
		fmt.Printf("variant      %s\n", res.Variant)
		fmt.Printf("system       %s\n", res.System)
		fmt.Printf("threads      %d\n", res.Threads)
		fmt.Printf("cm           %s (%d waits, %v waiting, %d serialized)\n",
			cmName, res.Stats.Total.CMWaits,
			time.Duration(res.Stats.Total.CMWaitNs).Round(time.Microsecond),
			res.Stats.Total.CMSerialized)
		if e := res.Stats.Total.Escalations; e > 0 {
			fmt.Printf("escalations  %d (%d committed irrevocably)\n",
				e, res.Stats.Total.EscalatedCommits)
		}
		clockName := res.Clock
		if clockName == "" {
			clockName = "default (gv1)"
		}
		fmt.Printf("clock        %s\n", clockName)
		fmt.Printf("wall time    %v\n", res.Wall)
		fmt.Printf("transactions %d\n", res.Stats.Total.Commits)
		if c, f := res.Stats.Total.CombinedCommits, res.Stats.Total.CombineFallbacks; c+f > 0 {
			fmt.Printf("combining    %d commits absorbed, %d fallbacks\n", c, f)
		}
		fmt.Printf("aborts       %d (%.3f retries/tx)\n", res.Stats.Total.Aborts, res.RetriesPerTx())
		fmt.Printf("barriers     %d loads, %d stores (%d wasted in aborted attempts)\n",
			res.Stats.Total.Loads, res.Stats.Total.Stores, res.Stats.Total.Wasted)
		fmt.Printf("tx time      %.1f%% of thread time\n", res.TxTimeFraction()*100)
		printCauses(res.Stats)
		printBlocks(res.Stats)
		printConflicts(res.Stats)
		if *traceOut != "" {
			if err := writeTrace(*traceOut, sysName, len(systems) > 1, res); err != nil {
				fmt.Fprintln(os.Stderr, "stamp:", err)
				os.Exit(1)
			}
		}
		if res.Verify != nil {
			fmt.Printf("VERIFY       FAILED: %v\n", res.Verify)
			failed = true
			continue
		}
		fmt.Printf("verify       ok\n")
	}
	if failed {
		os.Exit(1)
	}
}

// printCauses renders the run's abort breakdown by taxonomy cause, largest
// bucket first. Runs with no aborts print nothing.
func printCauses(st stamp.Stats) {
	counts := st.AbortCauses()
	if line := formatCauses(counts[:]); line != "" {
		fmt.Printf("abort causes %s\n", line)
	}
}

// printBlocks renders the per-block breakdown (the paper's per-region view:
// which atomic call sites commit, abort, and how big their sets are), with
// the protocol-residency split that shows where stm-adaptive ran each
// block and the abort-cause mix per call site. Runs whose app predates
// block annotation print nothing extra.
func printBlocks(st stamp.Stats) {
	rows := st.Blocks()
	if len(rows) == 0 {
		return
	}
	fmt.Printf("per block    %-28s %10s %9s %8s %8s  %-24s %s\n",
		"BLOCK", "COMMITS", "ABORTS", "LOADS/TX", "STORES/TX", "PROTOCOL RESIDENCY", "ABORT CAUSES")
	for _, row := range rows {
		causes := formatCauses(row.Causes[:])
		if causes == "" {
			causes = "-"
		}
		fmt.Printf("             %-28s %10d %9d %8.1f %8.1f  %-24s %s\n",
			row.Name, row.Commits, row.Aborts, row.MeanLoads(), row.MeanStores(),
			formatResidency(row), causes)
	}
}

// printConflicts renders the conflict heatmap: the hottest contended
// locations (addresses, lock-table stripes, or cache lines) with their
// abort counts, the majority-blamed enemy block, and the cause mix.
func printConflicts(st stamp.Stats) {
	rows := st.TopConflicts()
	if len(rows) == 0 {
		return
	}
	const maxRows = 8
	if len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	fmt.Printf("top conflicts %-16s %8s %-24s %s\n", "LOCATION", "ABORTS", "BLAMED BLOCK", "CAUSES")
	for _, row := range rows {
		blame := "-"
		if row.Blame != 0 {
			if name := stamp.BlockName(stamp.BlockID(row.Blame)); name != "" {
				blame = name
			}
		}
		fmt.Printf("              %-16s %8d %-24s %s\n",
			row.Key.String(), row.Count, blame, formatCauses(row.Causes[:]))
	}
}

// formatCauses renders non-zero per-cause counters as "name N, ...",
// largest first (empty when all are zero). The slice is indexed by
// stamp.AbortCause, matching stamp.CauseNames.
func formatCauses(counts []uint64) string {
	names := stamp.CauseNames()
	order := make([]int, 0, len(counts))
	for c, n := range counts {
		if n != 0 {
			order = append(order, c)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] > counts[order[j]]
		}
		return order[i] < order[j]
	})
	parts := make([]string, len(order))
	for i, c := range order {
		parts[i] = fmt.Sprintf("%s %d", names[c], counts[c])
	}
	return strings.Join(parts, ", ")
}

// writeTrace dumps a run's sampled events as Chrome trace-event JSON. With
// several systems in one invocation each system gets its own file (the
// system name is spliced in before the extension).
func writeTrace(path, sysName string, multi bool, res stamp.Result) error {
	if multi {
		ext := filepath.Ext(path)
		path = strings.TrimSuffix(path, ext) + "." + sysName + ext
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := stamp.WriteChromeTrace(f, res.Trace); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace        %d events -> %s\n", len(res.Trace), path)
	return nil
}

// formatResidency renders a block's commits-per-protocol split, largest
// share first, collapsing the common single-protocol case to one name.
func formatResidency(row stamp.BlockRow) string {
	res := row.Residency()
	if len(res) == 1 {
		for proto := range res {
			return proto
		}
	}
	protos := make([]string, 0, len(res))
	for proto := range res {
		protos = append(protos, proto)
	}
	sort.Slice(protos, func(i, j int) bool {
		if res[protos[i]] != res[protos[j]] {
			return res[protos[i]] > res[protos[j]]
		}
		return protos[i] < protos[j]
	})
	parts := make([]string, len(protos))
	for i, proto := range protos {
		parts[i] = fmt.Sprintf("%s %.0f%%", proto, 100*float64(res[proto])/float64(row.Commits))
	}
	return strings.Join(parts, ", ")
}
