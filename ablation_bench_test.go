// Ablation benchmarks for the design choices DESIGN.md calls out: early
// release, contention-management backoff, speculative-buffer associativity,
// and conflict-detection granularity. Each reports the metric the paper
// argues about (read-set size, retries, overflow serializations) alongside
// wall time.
package stamp_test

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/stamp-go/stamp"
	"github.com/stamp-go/stamp/internal/apps/labyrinth"
	"github.com/stamp-go/stamp/internal/apps/vacation"
	"github.com/stamp-go/stamp/internal/mem"
	"github.com/stamp-go/stamp/internal/thread"
	"github.com/stamp-go/stamp/internal/tm"
	"github.com/stamp-go/stamp/internal/tm/factory"
)

// BenchmarkAblationEarlyRelease: labyrinth on the lazy HTM with early
// release enabled vs disabled. Disabled, every privatization read stays in
// the speculative read set, so transactions overflow and serialize — the
// exact mechanism Section III.B.5 describes.
func BenchmarkAblationEarlyRelease(b *testing.B) {
	for _, enabled := range []bool{true, false} {
		b.Run(fmt.Sprintf("earlyRelease=%v", enabled), func(b *testing.B) {
			app := labyrinth.New(labyrinth.Config{X: 24, Y: 24, Z: 3, Paths: 24, Seed: 3})
			var readP90 int
			var aborts uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arena := mem.NewArena(app.ArenaWords())
				app.Setup(arena)
				sys, err := factory.New("htm-lazy", tm.Config{
					Arena: arena, Threads: 4, EnableEarlyRelease: enabled,
				})
				if err != nil {
					b.Fatal(err)
				}
				app.Run(sys, thread.NewTeam(4))
				if err := app.Verify(arena); err != nil {
					b.Fatal(err)
				}
				st := sys.Stats()
				readP90 = st.ReadSetP90()
				aborts += st.Total.Aborts
			}
			b.ReportMetric(float64(readP90), "readset-p90-lines")
			b.ReportMetric(float64(aborts)/float64(b.N), "aborts/run")
		})
	}
}

// BenchmarkAblationBackoff: a contended counter on the lazy STM with and
// without randomized linear backoff (the paper's contention manager kicks
// in after 3 aborts; BackoffAfter beyond any abort count disables it).
func BenchmarkAblationBackoff(b *testing.B) {
	for _, backoff := range []bool{true, false} {
		b.Run(fmt.Sprintf("backoff=%v", backoff), func(b *testing.B) {
			after := 3
			if !backoff {
				after = 1 << 30
			}
			var aborts, commits uint64
			for i := 0; i < b.N; i++ {
				arena := stamp.NewArena(1 << 10)
				hot := arena.Alloc(1)
				sys, err := factory.New("stm-lazy", tm.Config{
					Arena: arena, Threads: 8, BackoffAfter: after,
				})
				if err != nil {
					b.Fatal(err)
				}
				team := thread.NewTeam(8)
				team.Run(func(tid int) {
					th := sys.Thread(tid)
					for j := 0; j < 2000; j++ {
						th.Atomic(func(tx tm.Tx) {
							tx.Store(hot, tx.Load(hot)+1)
						})
					}
				})
				st := sys.Stats()
				aborts += st.Total.Aborts
				commits += st.Total.Commits
			}
			b.ReportMetric(float64(aborts)/float64(commits), "retries/tx")
		})
	}
}

// BenchmarkAblationContentionManager sweeps every registered contention-
// management policy over the same contended workload — a hot counter plus
// scattered transfers on the lazy STM at 8 threads — reporting retries/tx,
// CM delays, and serialize-fallback escalations per policy. This is the
// policy-curve ablation the Synchrobench comparison argues for: protocol
// fixed, contention manager varied.
func BenchmarkAblationContentionManager(b *testing.B) {
	for _, cm := range stamp.CMNames() {
		b.Run("cm="+cm, func(b *testing.B) {
			var aborts, commits, waits, serialized uint64
			for i := 0; i < b.N; i++ {
				arena := stamp.NewArena(1 << 12)
				hot := arena.Alloc(1)
				cells := make([]stamp.Addr, 32)
				for j := range cells {
					cells[j] = arena.AllocLines(1)
				}
				sys, err := factory.New("stm-lazy", tm.Config{
					Arena: arena, Threads: 8, CM: cm,
				})
				if err != nil {
					b.Fatal(err)
				}
				team := thread.NewTeam(8)
				team.Run(func(tid int) {
					th := sys.Thread(tid)
					for j := 0; j < 1500; j++ {
						if j%4 == 0 {
							a := cells[(tid*7+j)%len(cells)]
							c := cells[(tid+j*5)%len(cells)]
							th.Atomic(func(tx tm.Tx) {
								tx.Store(a, tx.Load(a)+1)
								tx.Store(c, tx.Load(c)+1)
							})
							continue
						}
						th.Atomic(func(tx tm.Tx) {
							tx.Store(hot, tx.Load(hot)+1)
						})
					}
				})
				st := sys.Stats()
				aborts += st.Total.Aborts
				commits += st.Total.Commits
				waits += st.Total.CMWaits
				serialized += st.Total.CMSerialized
			}
			b.ReportMetric(float64(aborts)/float64(max(commits, 1)), "retries/tx")
			b.ReportMetric(float64(waits)/float64(b.N), "cm-waits/run")
			b.ReportMetric(float64(serialized)/float64(b.N), "serialized/run")
		})
	}
}

// BenchmarkAblationAssociativity: bayes-sized read sets on the lazy HTM
// with the Table V 4-way buffer vs a fully associative one. The 4-way
// buffer overflows on footprints far below its total capacity, reproducing
// why the paper's bayes serializes on HTM.
func BenchmarkAblationAssociativity(b *testing.B) {
	for _, assoc := range []int{4, 0} {
		name := "4-way"
		if assoc == 0 {
			name = "full"
		}
		b.Run(name, func(b *testing.B) {
			var aborts uint64
			for i := 0; i < b.N; i++ {
				arena := stamp.NewArena(1 << 22)
				// ~700 scattered lines per transaction: below the 2048-line
				// total, above what 4-way sets absorb reliably.
				addrs := make([]stamp.Addr, 700)
				for j := range addrs {
					arena.Alloc(int(j%13) + 1) // scatter
					addrs[j] = arena.AllocLines(1)
				}
				sys, err := factory.New("htm-lazy", tm.Config{
					Arena: arena, Threads: 1,
					CapacityLines: 2048, CapacityAssoc: assoc,
				})
				if err != nil {
					b.Fatal(err)
				}
				th := sys.Thread(0)
				for k := 0; k < 10; k++ {
					th.Atomic(func(tx tm.Tx) {
						for _, a := range addrs {
							tx.Store(a, tx.Load(a)+1)
						}
					})
				}
				aborts += sys.Stats().Total.Aborts
			}
			b.ReportMetric(float64(aborts)/float64(b.N), "overflow-serializations/run")
		})
	}
}

// BenchmarkAblationGranularity: vacation on word-granularity (stm-lazy)
// vs line-granularity (hybrid-lazy) conflict detection at equal versioning
// policy. Line granularity manufactures false conflicts on the tree nodes
// (the bayes/vacation observation of Section V).
func BenchmarkAblationGranularity(b *testing.B) {
	for _, sysName := range []string{"stm-lazy", "hybrid-lazy"} {
		b.Run(sysName, func(b *testing.B) {
			app := vacation.New(vacation.Config{
				QueriesPerTx: 4, QueryRange: 60, PercentUser: 90,
				Records: 1024, Transactions: 4096, Seed: 4,
			})
			var aborts, commits uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arena := mem.NewArena(app.ArenaWords())
				app.Setup(arena)
				sys, err := factory.New(sysName, tm.Config{Arena: arena, Threads: 8})
				if err != nil {
					b.Fatal(err)
				}
				app.Run(sys, thread.NewTeam(8))
				if err := app.Verify(arena); err != nil {
					b.Fatal(err)
				}
				st := sys.Stats()
				aborts += st.Total.Aborts
				commits += st.Total.Commits
			}
			b.ReportMetric(float64(aborts)/float64(commits), "retries/tx")
		})
	}
}

// BenchmarkAblationSTMProtocol: the same read-dominated vacation workload
// across the STM concurrency-control protocols — TL2 lazy/eager
// (ownership-record table, per-read version checks) vs NOrec (single
// sequence lock, value-based validation) with and without the read-only
// commit fast path. This is the lock-table-pressure vs revalidation-cost
// trade the NOrec paper argues, measured as wall time and retries/tx.
func BenchmarkAblationSTMProtocol(b *testing.B) {
	for _, sysName := range []string{"stm-lazy", "stm-eager", "stm-norec", "stm-norec-ro"} {
		b.Run(sysName, func(b *testing.B) {
			app := vacation.New(vacation.Config{
				QueriesPerTx: 4, QueryRange: 60, PercentUser: 90,
				Records: 1024, Transactions: 4096, Seed: 11,
			})
			var aborts, commits uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arena := mem.NewArena(app.ArenaWords())
				app.Setup(arena)
				sys, err := factory.New(sysName, tm.Config{Arena: arena, Threads: 4})
				if err != nil {
					b.Fatal(err)
				}
				app.Run(sys, thread.NewTeam(4))
				if err := app.Verify(arena); err != nil {
					b.Fatal(err)
				}
				st := sys.Stats()
				aborts += st.Total.Aborts
				commits += st.Total.Commits
			}
			b.ReportMetric(float64(aborts)/float64(max(commits, 1)), "retries/tx")
		})
	}
}

// BenchmarkAblationNOrecCombining: write-heavy disjoint transactions on
// NOrec at 8 threads with commit combining on vs off. With combining, the
// committer that wins the sequence-lock CAS drains its peers' published
// redo logs under one acquisition, so the serialized-writeback wall the
// single lock imposes moves: commits per lock acquisition rise (reported
// as combined/run) and each batch costs concurrent readers one
// revalidation instead of one per commit. Caveat for reading ns/op: on a
// host with fewer cores than threads, the batches are formed by the
// publish-yield (a scheduler hop per writer commit) while the lock itself
// has no waiting cost to save, so wall time favors combine=false there;
// the lock-acquires/combined metrics are the protocol-level effect that
// translates to wall time once commits actually contend in parallel.
func BenchmarkAblationNOrecCombining(b *testing.B) {
	const threads = 8
	const perT = 1500
	const cellsPer = 8
	for _, combine := range []bool{true, false} {
		b.Run(fmt.Sprintf("combine=%v", combine), func(b *testing.B) {
			var combined, fallbacks, acquires, commits uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer() // keep arena/system construction out of ns/op
				arena := stamp.NewArena(1 << 12)
				cells := make([]stamp.Addr, threads*cellsPer)
				for j := range cells {
					cells[j] = arena.Alloc(1)
				}
				sys, err := factory.New("stm-norec", tm.Config{
					Arena: arena, Threads: threads, NoCombine: !combine,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				team := thread.NewTeam(threads)
				team.Run(func(tid int) {
					th := sys.Thread(tid)
					mine := cells[tid*cellsPer : (tid+1)*cellsPer]
					for j := 0; j < perT; j++ {
						th.Atomic(func(tx tm.Tx) {
							for k := 0; k < 4; k++ {
								a := mine[(j+k)%cellsPer]
								tx.Store(a, tx.Load(a)+1)
							}
						})
					}
				})
				st := sys.Stats()
				combined += st.Total.CombinedCommits
				fallbacks += st.Total.CombineFallbacks
				commits += st.Total.Commits
				if la, ok := sys.(interface{ LockAcquires() uint64 }); ok {
					acquires += la.LockAcquires()
				}
			}
			b.ReportMetric(float64(combined)/float64(b.N), "combined/run")
			b.ReportMetric(float64(fallbacks)/float64(b.N), "fallbacks/run")
			b.ReportMetric(float64(acquires)/float64(b.N), "lock-acquires/run")
			b.ReportMetric(float64(commits)/float64(b.N), "tx/run")
		})
	}
}

// BenchmarkAblationAdaptive sweeps the two static STM protocols and the
// stm-adaptive meta-runtime over two synthetic phases with opposite
// protocol preferences — the Synchrobench finding (protocol choice
// dominates) as one benchmark:
//
//	read-dominated    long read-mostly transactions over a large array.
//	                  NOrec reads touch only the data; every TL2 read also
//	                  probes its hashed 8 MB stripe table, so large
//	                  scattered read sets pay roughly one extra cache miss
//	                  per barrier.
//	write-heavy       small transactions with a 50% store mix on disjoint
//	                  per-thread cells at 8 threads. TL2 commits disjoint
//	                  write sets in parallel under per-stripe locks; NOrec
//	                  serializes every writeback through the sequence lock
//	                  (publish-yield batching, clock-tick revalidations).
//
// stm-adaptive starts on its read delegate and must land within a few
// sampling windows on whichever static protocol wins the phase; adaptive
// rows report the protocol handoffs and the share of commits that ran on
// the write delegate (write-residency).
func BenchmarkAblationAdaptive(b *testing.B) {
	const (
		threads   = 8
		readPerT  = 800
		readLen   = 128     // loads per read-dominated transaction
		readWords = 1 << 16 // array the read phase scans (512 KB of data)
		writePerT = 1500
		writeOps  = 8 // load+store pairs per write-heavy transaction
	)
	type phase struct {
		name string
		run  func(sys tm.System, arena *stamp.Arena, base stamp.Addr)
	}
	phases := []phase{
		{"read-dominated", func(sys tm.System, arena *stamp.Arena, base stamp.Addr) {
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				idx := uint64(tid)*0x9e3779b9 + 1
				var sink uint64
				for j := 0; j < readPerT; j++ {
					th.Atomic(func(tx tm.Tx) {
						for k := 0; k < readLen; k++ {
							idx = idx*6364136223846793005 + 1442695040888963407
							sink += tx.Load(base + mem.Addr(idx>>40)%readWords)
						}
						if j%64 == 0 {
							a := base + mem.Addr(tid)
							tx.Store(a, tx.Load(a)+1)
						}
					})
				}
				_ = sink
			})
		}},
		{"write-heavy", func(sys tm.System, arena *stamp.Arena, base stamp.Addr) {
			team := thread.NewTeam(threads)
			team.Run(func(tid int) {
				th := sys.Thread(tid)
				mine := base + mem.Addr(tid*64)
				for j := 0; j < writePerT; j++ {
					th.Atomic(func(tx tm.Tx) {
						for k := 0; k < writeOps; k++ {
							a := mine + mem.Addr((j+k*17)%64)
							tx.Store(a, tx.Load(a)+1)
						}
					})
				}
			})
		}},
	}
	for _, ph := range phases {
		for _, sysName := range []string{"stm-norec-ro", "stm-lazy", "stm-adaptive"} {
			b.Run(ph.name+"/"+sysName, func(b *testing.B) {
				var switches, writeResident, commits uint64
				for i := 0; i < b.N; i++ {
					b.StopTimer() // arena/system construction stays out of ns/op
					arena := stamp.NewArena(readWords + 1<<10)
					base := arena.Alloc(readWords)
					sys, err := factory.New(sysName, tm.Config{Arena: arena, Threads: threads})
					if err != nil {
						b.Fatal(err)
					}
					// Collect the previous iteration's system (TL2's lock
					// table alone is 8 MB; stm-adaptive constructs two
					// delegates) while the timer is stopped, so a GC cycle
					// triggered by construction garbage never lands inside
					// the measured region and biases the protocol
					// comparison.
					runtime.GC()
					b.StartTimer()
					ph.run(sys, arena, base)
					b.StopTimer()
					st := sys.Stats()
					commits += st.Total.Commits
					if ad, ok := sys.(interface {
						Switches() uint64
						Delegates() (string, string)
					}); ok {
						switches += ad.Switches()
						_, write := ad.Delegates()
						for _, row := range st.Blocks() {
							writeResident += row.Residency()[write]
						}
					}
					b.StartTimer()
				}
				if sysName == "stm-adaptive" {
					b.ReportMetric(float64(switches)/float64(b.N), "switches/run")
					b.ReportMetric(float64(writeResident)/float64(max(commits, 1)), "write-residency")
				}
				b.ReportMetric(float64(commits)/float64(b.N), "tx/run")
			})
		}
	}
}

// BenchmarkAblationClockScheme sweeps the TL2 commit-clock schemes (gv1
// fetch-add, gv4 pass-on-failure CAS, gv5 no-tick) over a clock-contended
// workload: tiny write transactions on disjoint per-thread cells at 8
// threads on stm-lazy, so the global version clock is the only shared
// write the protocol performs per commit. clock-advances/run counts the
// actual clock writes (read off the scheme before and after the run):
// gv1 writes once per writer commit, gv4 collapses racing committers onto
// one write, and gv5 only writes on the aborts its conservatism causes
// (reported as retries/tx). Caveat for reading ns/op: on a host with
// fewer cores than threads the clock line is never actually contended, so
// the wall-time separation shows up only on parallel hardware — the
// clock-advance counts are the protocol-level effect that translates to
// cache-line traffic there.
func BenchmarkAblationClockScheme(b *testing.B) {
	const (
		threads  = 8
		perT     = 1500
		cellsPer = 16
	)
	for _, clock := range stamp.ClockNames() {
		b.Run("clock="+clock, func(b *testing.B) {
			var advances, aborts, commits uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer() // arena/system construction stays out of ns/op
				arena := stamp.NewArena(1 << 14)
				cells := make([]stamp.Addr, threads*cellsPer)
				for j := range cells {
					cells[j] = arena.AllocLines(1)
				}
				sys, err := factory.New("stm-lazy", tm.Config{
					Arena: arena, Threads: threads, Clock: clock,
				})
				if err != nil {
					b.Fatal(err)
				}
				cn := sys.(interface{ ClockNow() uint64 })
				before := cn.ClockNow()
				b.StartTimer()
				team := thread.NewTeam(threads)
				team.Run(func(tid int) {
					th := sys.Thread(tid)
					mine := cells[tid*cellsPer : (tid+1)*cellsPer]
					for j := 0; j < perT; j++ {
						th.Atomic(func(tx tm.Tx) {
							a := mine[j%cellsPer]
							tx.Store(a, tx.Load(a)+1)
						})
					}
				})
				b.StopTimer()
				advances += cn.ClockNow() - before
				st := sys.Stats()
				aborts += st.Total.Aborts
				commits += st.Total.Commits
				b.StartTimer()
			}
			b.ReportMetric(float64(advances)/float64(b.N), "clock-advances/run")
			b.ReportMetric(float64(aborts)/float64(max(commits, 1)), "retries/tx")
			b.ReportMetric(float64(commits)/float64(b.N), "tx/run")
		})
	}
}

// BenchmarkAblationAllocChunk is the allocation-path contention
// microbench: 8 threads running allocation-heavy transactions (vacation/
// genome-shaped: allocate a node, link it into a per-thread list) with
// per-thread arena reservation disabled (chunk=direct — every tx.Alloc
// fetch-adds the shared bump pointer) versus enabled (the default ~4096-
// word chunks — one contended atomic per chunk). Unlike the cross-core
// protocol ablations, the reservation win is visible even single-core:
// the private-chunk path replaces a lock-prefixed RMW with a plain field
// bump on every allocation.
func BenchmarkAblationAllocChunk(b *testing.B) {
	const (
		threads = 8
		perT    = 1500
		allocsN = 8 // allocations per transaction
	)
	for _, arm := range []struct {
		name  string
		chunk int
	}{
		{"chunk=direct", -1},
		{"chunk=default", 0},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var commits uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// threads × perT × allocsN × 2 words plus reservation tails.
				arena := stamp.NewArena(1 << 19)
				heads := make([]stamp.Addr, threads)
				for j := range heads {
					heads[j] = arena.AllocLines(1)
				}
				sys, err := factory.New("stm-lazy", tm.Config{
					Arena: arena, Threads: threads, AllocChunk: arm.chunk,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				team := thread.NewTeam(threads)
				team.Run(func(tid int) {
					th := sys.Thread(tid)
					head := heads[tid]
					for j := 0; j < perT; j++ {
						th.Atomic(func(tx tm.Tx) {
							for k := 0; k < allocsN; k++ {
								node := tx.Alloc(2)
								tx.Store(node, uint64(j*allocsN+k))
								tx.Store(node+1, tx.Load(head))
								tx.Store(head, uint64(node))
							}
						})
					}
				})
				b.StopTimer()
				commits += sys.Stats().Total.Commits
				b.StartTimer()
			}
			b.ReportMetric(float64(commits)/float64(b.N), "tx/run")
			b.ReportMetric(float64(commits*allocsN)/float64(b.N), "allocs/run")
		})
	}
}

// BenchmarkAblationTraceOverhead measures what the observability layer
// costs on a contended workload (hot counter plus scattered transfers on
// the lazy STM at 8 threads — the same shape as the contention-manager
// ablation, where the abort path with its cause stamping and sketch
// recording actually runs): tracing off (the default; the acceptance bar is
// that the always-on attribution keeps ns/op within noise of the
// pre-observability baseline), sampling every 64th block, and tracing every
// block. The sampled arms also report how many ring events a run produces
// and the abort-cause mix, so the BENCH_*.json trajectory carries the cause
// counters.
func BenchmarkAblationTraceOverhead(b *testing.B) {
	const threads = 8
	const perT = 1500
	for _, arm := range []struct {
		name  string
		trace int
	}{
		{"trace=off", 0},
		{"trace=64", 64},
		{"trace=full", 1},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var aborts, commits, events uint64
			var causes [tm.NumCauses]uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer() // arena/system construction stays out of ns/op
				arena := stamp.NewArena(1 << 12)
				hot := arena.Alloc(1)
				cells := make([]stamp.Addr, 32)
				for j := range cells {
					cells[j] = arena.AllocLines(1)
				}
				sys, err := factory.New("stm-lazy", tm.Config{
					Arena: arena, Threads: threads, Trace: arm.trace,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				team := thread.NewTeam(threads)
				team.Run(func(tid int) {
					th := sys.Thread(tid)
					for j := 0; j < perT; j++ {
						if j%4 == 0 {
							a := cells[(tid*7+j)%len(cells)]
							c := cells[(tid+j*5)%len(cells)]
							th.Atomic(func(tx tm.Tx) {
								tx.Store(a, tx.Load(a)+1)
								tx.Store(c, tx.Load(c)+1)
							})
							continue
						}
						th.Atomic(func(tx tm.Tx) {
							tx.Store(hot, tx.Load(hot)+1)
						})
					}
				})
				b.StopTimer()
				st := sys.Stats()
				aborts += st.Total.Aborts
				commits += st.Total.Commits
				for c, n := range st.AbortCauses() {
					causes[c] += n
				}
				events += uint64(len(tm.TraceEvents(sys)))
				b.StartTimer()
			}
			b.ReportMetric(float64(aborts)/float64(max(commits, 1)), "retries/tx")
			b.ReportMetric(float64(events)/float64(b.N), "events/run")
			for c, n := range causes {
				if n != 0 {
					b.ReportMetric(float64(n)/float64(b.N), tm.AbortCause(c).String()+"/run")
				}
			}
		})
	}
}

// BenchmarkAblationChaosOverhead pins the cost of the fault-injection layer
// on the contended stm-lazy workload of the trace ablation: chaos off (the
// default — every site is one nil-pointer test) against an armed injector
// whose probabilities are all zero (the sites draw no randomness but do load
// per-thread injector state). The acceptance bar is that both arms stay
// within noise of each other — chaos must cost nothing when it cannot fire.
func BenchmarkAblationChaosOverhead(b *testing.B) {
	const threads = 8
	const perT = 1500
	for _, arm := range []struct {
		name string
		spec string
	}{
		{"chaos=off", ""},
		{"chaos=armed-p0", "1:tl2-lock-acquire:0,tl2-lock-release:0,cm-wait-drop:0"},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var aborts, commits uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer() // arena/system construction stays out of ns/op
				arena := stamp.NewArena(1 << 12)
				hot := arena.Alloc(1)
				cells := make([]stamp.Addr, 32)
				for j := range cells {
					cells[j] = arena.AllocLines(1)
				}
				sys, err := factory.New("stm-lazy", tm.Config{
					Arena: arena, Threads: threads, Chaos: arm.spec,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				team := thread.NewTeam(threads)
				team.Run(func(tid int) {
					th := sys.Thread(tid)
					for j := 0; j < perT; j++ {
						if j%4 == 0 {
							a := cells[(tid*7+j)%len(cells)]
							c := cells[(tid+j*5)%len(cells)]
							th.Atomic(func(tx tm.Tx) {
								tx.Store(a, tx.Load(a)+1)
								tx.Store(c, tx.Load(c)+1)
							})
							continue
						}
						th.Atomic(func(tx tm.Tx) {
							tx.Store(hot, tx.Load(hot)+1)
						})
					}
				})
				b.StopTimer()
				st := sys.Stats()
				aborts += st.Total.Aborts
				commits += st.Total.Commits
				b.StartTimer()
			}
			b.ReportMetric(float64(aborts)/float64(max(commits, 1)), "retries/tx")
		})
	}
}

// BenchmarkAblationHTMCapacity sweeps the lazy HTM's speculative capacity
// on labyrinth-style transactions, locating the serialization cliff.
func BenchmarkAblationHTMCapacity(b *testing.B) {
	for _, capacity := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("lines=%d", capacity), func(b *testing.B) {
			app := labyrinth.New(labyrinth.Config{X: 16, Y: 16, Z: 3, Paths: 16, Seed: 5})
			var aborts uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arena := mem.NewArena(app.ArenaWords())
				app.Setup(arena)
				sys, err := factory.New("htm-lazy", tm.Config{
					Arena: arena, Threads: 4,
					CapacityLines: capacity, EnableEarlyRelease: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				app.Run(sys, thread.NewTeam(4))
				if err := app.Verify(arena); err != nil {
					b.Fatal(err)
				}
				aborts += sys.Stats().Total.Aborts
			}
			b.ReportMetric(float64(aborts)/float64(b.N), "aborts/run")
		})
	}
}

// mvBenchBlocks are registered once: the read-only mark is what routes the
// sum blocks onto stm-mv's snapshot path (the other runtimes ignore it).
var (
	mvBenchSum   = tm.NewROBlock("mv-bench/sum")
	mvBenchWrite = tm.NewBlock("mv-bench/write")
)

// BenchmarkAblationMVReadHeavy: a read-dominated mix (15/16 read-only sums
// over a shared table, 1/16 writer increments) on the multi-version STM
// against the single-version TL2 and the read-only-optimized NOrec, across
// thread counts. The paper's read-dominated workloads are where validation
// and lock-probe costs dominate STM overhead; stm-mv's claim is that its
// snapshot readers pay zero validation and zero aborts (retries/tx stays at
// the writers' share) at the cost of the writers' ring maintenance. The
// lock-acquires/tx metric shows the reader side staying off the lock table
// entirely on stm-mv.
func BenchmarkAblationMVReadHeavy(b *testing.B) {
	const (
		cells = 64
		sumN  = 16 // cells read per read-only transaction
		perT  = 2000
	)
	for _, sysName := range []string{"stm-mv", "stm-lazy", "stm-norec-ro"} {
		for _, threads := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", sysName, threads), func(b *testing.B) {
				var aborts, commits, lockAcqs uint64
				hasLockMetric := false
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					arena := mem.NewArena(1 << 12)
					base := arena.Alloc(cells)
					sys, err := factory.New(sysName, tm.Config{Arena: arena, Threads: threads})
					if err != nil {
						b.Fatal(err)
					}
					team := thread.NewTeam(threads)
					team.Run(func(tid int) {
						th := sys.Thread(tid)
						var sink uint64
						for j := 0; j < perT; j++ {
							if j%16 == 0 {
								a := base + mem.Addr((tid*31+j)%cells)
								th.AtomicAt(mvBenchWrite, func(tx tm.Tx) {
									tx.Store(a, tx.Load(a)+1)
								})
								continue
							}
							th.AtomicAt(mvBenchSum, func(tx tm.Tx) {
								var s uint64
								for k := 0; k < sumN; k++ {
									s += tx.Load(base + mem.Addr((tid*17+j*7+k*5)%cells))
								}
								sink = s
							})
						}
						_ = sink
					})
					st := sys.Stats()
					aborts += st.Total.Aborts
					commits += st.Total.Commits
					if la, ok := sys.(interface{ LockAcquires() uint64 }); ok {
						lockAcqs += la.LockAcquires()
						hasLockMetric = true
					}
				}
				b.ReportMetric(float64(aborts)/float64(max(commits, 1)), "retries/tx")
				if hasLockMetric { // tl2 exposes no acquisition counter
					b.ReportMetric(float64(lockAcqs)/float64(max(commits, 1)), "lock-acquires/tx")
				}
			})
		}
	}
}

// BenchmarkAblationTransactionalFree is the allocator-lifecycle ablation:
// the same balanced alloc/free churn with the reserver free lists on (the
// default) vs off (NoRecycle, the seed's leak-everything tmalloc). Both
// arms get an arena big enough to survive without recycling, so the
// comparison isolates the free lists' speed and their effect on the arena
// high-water mark — the recycle arm's high-water must stay near the live
// set while the leak arm's grows with every transaction.
func BenchmarkAblationTransactionalFree(b *testing.B) {
	const (
		threads   = 8
		perT      = 1500
		nodeWords = 6
	)
	for _, arm := range []struct {
		name      string
		noRecycle bool
	}{
		{"recycle=on", false},
		{"recycle=off", true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			var highWater uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// The leak arm burns threads×perT×nodeWords plus chunk tails.
				arena := stamp.NewArena(1 << 17)
				sys, err := factory.New("stm-lazy", tm.Config{
					Arena: arena, Threads: threads, NoRecycle: arm.noRecycle,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				team := thread.NewTeam(threads)
				team.Run(func(tid int) {
					th := sys.Thread(tid)
					for j := 0; j < perT; j++ {
						th.Atomic(func(tx tm.Tx) {
							node := tx.Alloc(nodeWords)
							for w := 0; w < nodeWords; w++ {
								tx.Store(node+mem.Addr(w), uint64(j+w))
							}
							tx.Free(node, nodeWords)
						})
					}
				})
				b.StopTimer()
				highWater += uint64(arena.Used())
				b.StartTimer()
			}
			b.ReportMetric(float64(highWater)/float64(b.N), "high-water-words/run")
		})
	}
}

// BenchmarkAblationEpochSwapPause measures the serving-mode epoch swap's
// stop-the-world floor — the live-store compaction — as a function of
// store size. The swap pause a client can observe is this copy plus the
// in-flight request drain, so the scaling here is what bounds Options
// .SwapAt tuning: pause grows with the live set, not with the garbage
// being discarded.
func BenchmarkAblationEpochSwapPause(b *testing.B) {
	for _, records := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			words := vacation.StoreWords(records) + 1<<16
			var live uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				src := stamp.NewArena(words)
				sm := mem.Direct{A: src}
				st := vacation.NewStore(sm, records, 42)
				dst := stamp.NewArena(words)
				b.StartTimer()
				out := st.CompactInto(sm, mem.Direct{A: dst})
				b.StopTimer()
				_ = out
				live += uint64(dst.Used())
				b.StartTimer()
			}
			b.ReportMetric(float64(live)/float64(b.N), "live-words")
		})
	}
}
