package stamp_test

import (
	"errors"
	"testing"
	"time"

	"github.com/stamp-go/stamp"
)

// TestServeEndToEnd exercises the public serving-mode surface: Serve,
// Submit/Do, RunLoad, live gauges, and invariant checking.
func TestServeEndToEnd(t *testing.T) {
	srv, err := stamp.Serve(stamp.ServerOptions{
		Workers: 2, Records: 256, OpBudget: 1 << 14, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.System() != "stm-mv" {
		t.Fatalf("default system = %q, want stm-mv", srv.System())
	}

	rep, err := stamp.RunLoad(srv, stamp.LoadOptions{
		Clients: 4, Duration: 80 * time.Millisecond, ROPct: 40, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 || rep.Failed != 0 || rep.Torn != 0 {
		t.Fatalf("load report: %+v", rep)
	}
	if rep.Latency.P99Ns == 0 || rep.Latency.P99Ns > rep.Latency.P999Ns {
		t.Fatalf("latency summary: %+v", rep.Latency)
	}

	resp := srv.Do(&stamp.ServerRequest{Op: stamp.OpQuery})
	if resp.Err != nil || resp.Op != stamp.OpQuery {
		t.Fatalf("Do response: %+v", resp)
	}
	if g := srv.Snapshot(); g.Served == 0 || g.QueueCap == 0 {
		t.Fatalf("gauges: %+v", g)
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeRejectsInvalidOptions: Serve must surface every bad field at
// once, and ErrQueueFull must be matchable through the public alias.
func TestServeRejectsInvalidOptions(t *testing.T) {
	_, err := stamp.Serve(stamp.ServerOptions{Workers: -1, CM: "nope"})
	if err == nil {
		t.Fatal("invalid ServerOptions accepted")
	}
	if errors.Is(err, stamp.ErrQueueFull) {
		t.Fatal("validation error must not wrap ErrQueueFull")
	}
	if _, err := stamp.RunLoad(nil, stamp.LoadOptions{Clients: -1}); err == nil {
		t.Fatal("invalid LoadOptions accepted")
	}
}
