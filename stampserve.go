package stamp

import (
	"github.com/stamp-go/stamp/internal/server"
)

// Serving mode: the batch benchmark recast as a long-lived service. Serve
// builds a persistent transactional arena behind a bounded admission queue
// and a worker pool of tm.Thread slots, handling vacation operations as
// requests; RunLoad drives an open- or closed-loop client mix at it and
// reports tail latency plus the pool's transactional statistics.

// Server is a long-lived serving instance (see Serve).
type Server = server.Server

// ServerOptions configures Serve. The zero value serves the default
// vacation store on stm-mv (read-only queries are snapshot-served with zero
// aborts); Validate reports every invalid field at once.
type ServerOptions = server.Options

// ServerRequest is one operation submission for Server.Submit / Server.Do.
type ServerRequest = server.Request

// ServerResponse is one operation's outcome, including client-observed
// latency (queue wait included).
type ServerResponse = server.Response

// ServerGauges is the live operational readout returned by
// Server.Snapshot; safe to read while requests are in flight.
type ServerGauges = server.Gauges

// LoadOptions shapes one RunLoad run: client count, open-loop arrival rate
// (0 = closed loop), duration, and the vacation op mix.
type LoadOptions = server.LoadOptions

// LoadReport is one load run's outcome: admission accounting, p50/p99/p999
// latency overall and per op, and the pool's tm.Stats.
type LoadReport = server.Report

// LatencySummary is one latency histogram's percentile readout.
type LatencySummary = server.LatSummary

// Request op kinds for ServerRequest.Op.
const (
	OpReserve = server.OpReserve
	OpCancel  = server.OpCancel
	OpUpdate  = server.OpUpdate
	OpQuery   = server.OpQuery
)

// ErrQueueFull reports an admission rejection: the server sheds load when
// its bounded queue is full rather than buffering without bound.
var ErrQueueFull = server.ErrQueueFull

// ErrDeadline reports a served request that exceeded
// ServerOptions.RequestDeadline (admission to completion, queue wait and
// epoch-swap hold time included).
var ErrDeadline = server.ErrDeadline

// ErrRetriesExhausted reports a served request that hit arena exhaustion on
// every attempt of its ServerOptions.RequestRetries budget, each retry
// behind an epoch swap.
var ErrRetriesExhausted = server.ErrRetriesExhausted

// Serve starts a serving-mode instance: it populates the store in a fresh
// long-lived arena, starts opt.Workers worker goroutines (one tm.Thread
// slot each), and begins accepting requests. The caller owns the lifecycle
// and must Close it. With opt.ProgressTimeout set, a stalled pool is halted
// and every pending and future request fails with an ErrStalled-wrapped
// error instead of hanging.
func Serve(opt ServerOptions) (*Server, error) { return server.New(opt) }

// RunLoad drives opt's request mix at a served instance and blocks until
// every accepted request has answered. The server stays open, so loads can
// be run back to back against warm state.
func RunLoad(s *Server, opt LoadOptions) (LoadReport, error) {
	return server.RunLoad(s, opt)
}
